(* The reproduction harness: regenerates every table and figure of the
   paper's evaluation (plus the ablations) and prints paper-vs-measured
   rows.  Run all with `dune exec bench/main.exe`, or a subset with e.g.
   `dune exec bench/main.exe -- f8 t1`.  See DESIGN.md for the experiment
   index and EXPERIMENTS.md for the recorded outcomes. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let names = if args = [] then [ "all" ] else args in
  let bad = ref false in
  List.iter
    (fun name ->
      match Ilp_bench.Experiments.run_named name with
      | Ok () -> ()
      | Error msg ->
          bad := true;
          Printf.eprintf "%s (available: %s)\n" msg
            (String.concat ", " Ilp_bench.Experiments.names))
    names;
  if !bad then exit 1
