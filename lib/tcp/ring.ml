type entry = { addr : int; len : int; wasted : int (* tail skipped before this entry *) }

type t = {
  base : int;
  size : int;
  mutable head : int;  (* next write offset *)
  mutable used : int;  (* bytes consumed, including waste *)
  mutable wraps : int;  (* reservations that skipped a wasted tail *)
  mutable wasted_total : int;  (* cumulative tail bytes skipped *)
  entries : entry Queue.t;
}

let create (sim : Ilp_memsim.Sim.t) ~size =
  if size <= 0 then invalid_arg "Ring.create: size";
  let base = Ilp_memsim.Alloc.alloc sim.alloc ~align:64 size in
  { base; size; head = 0; used = 0; wraps = 0; wasted_total = 0;
    entries = Queue.create () }

let size t = t.size
let available t = t.size - t.used
let wraps t = t.wraps
let wasted_total t = t.wasted_total

let reserve t len =
  if len <= 0 || len > t.size then None
  else
    let to_end = t.size - t.head in
    let wasted = if len <= to_end then 0 else to_end in
    if t.used + wasted + len > t.size then None
    else begin
      let off = if wasted > 0 then 0 else t.head in
      if wasted > 0 then begin
        t.wraps <- t.wraps + 1;
        t.wasted_total <- t.wasted_total + wasted
      end;
      t.head <- (off + len) mod t.size;
      t.used <- t.used + wasted + len;
      Queue.add { addr = t.base + off; len; wasted } t.entries;
      Some (t.base + off)
    end

let release t =
  match Queue.take_opt t.entries with
  | None -> Error `Empty
  | Some e ->
      t.used <- t.used - e.len - e.wasted;
      Ok ()

let release_exn t =
  match release t with
  | Ok () -> ()
  | Error `Empty -> failwith "Ring.release: empty"

let peek_oldest t =
  match Queue.peek_opt t.entries with
  | None -> None
  | Some e -> Some (e.addr, e.len)

let in_flight t = Queue.length t.entries
