type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : int;
  window : int;
  checksum : int;
  urgent : int;
}

let size = 20
let fin = 0x01
let syn = 0x02
let rst = 0x04
let psh = 0x08
let ack_flag = 0x10
let has t flag = t.flags land flag <> 0

let make ?(seq = 0) ?(ack = 0) ?(flags = 0) ?(window = 0) ?(checksum = 0)
    ?(urgent = 0) ~src_port ~dst_port () =
  (* The window field is 16 bits on the wire (no scaling option).  A
     configuration advertising more must saturate here: the raw set_u16
     would otherwise truncate modulo 2^16 — 65536 becomes 0 and the
     sender reads a closed window instead of a huge one. *)
  let window = max 0 (min window 0xffff) in
  { src_port; dst_port; seq; ack; flags; window; checksum; urgent }

(* Data offset is fixed at 5 words (no options). *)
let off_flags t = (5 lsl 12) lor (t.flags land 0x3f)

let write_mem mem ~pos t =
  let open Ilp_memsim in
  Mem.set_u16 mem pos t.src_port;
  Mem.set_u16 mem (pos + 2) t.dst_port;
  Mem.set_u32 mem (pos + 4) t.seq;
  Mem.set_u32 mem (pos + 8) t.ack;
  Mem.set_u16 mem (pos + 12) (off_flags t);
  Mem.set_u16 mem (pos + 14) t.window;
  Mem.set_u16 mem (pos + 16) t.checksum;
  Mem.set_u16 mem (pos + 18) t.urgent;
  Machine.compute (Mem.machine mem) 16

let read_mem mem ~pos =
  let open Ilp_memsim in
  let src_port = Mem.get_u16 mem pos in
  let dst_port = Mem.get_u16 mem (pos + 2) in
  let seq = Mem.get_u32 mem (pos + 4) in
  let ack = Mem.get_u32 mem (pos + 8) in
  let off_flags = Mem.get_u16 mem (pos + 12) in
  let window = Mem.get_u16 mem (pos + 14) in
  let checksum = Mem.get_u16 mem (pos + 16) in
  let urgent = Mem.get_u16 mem (pos + 18) in
  Machine.compute (Mem.machine mem) 16;
  { src_port; dst_port; seq; ack; flags = off_flags land 0x3f; window; checksum; urgent }

let to_string t =
  let b = Bytes.create size in
  Bytes.set_uint16_be b 0 t.src_port;
  Bytes.set_uint16_be b 2 t.dst_port;
  Bytes.set_int32_be b 4 (Int32.of_int (t.seq land 0xffff_ffff));
  Bytes.set_int32_be b 8 (Int32.of_int (t.ack land 0xffff_ffff));
  Bytes.set_uint16_be b 12 (off_flags t);
  Bytes.set_uint16_be b 14 t.window;
  Bytes.set_uint16_be b 16 t.checksum;
  Bytes.set_uint16_be b 18 t.urgent;
  Bytes.unsafe_to_string b

let decode s ~pos =
  let b = Bytes.unsafe_of_string s in
  let u16 off = Bytes.get_uint16_be b (pos + off) in
  let u32 off = Int32.to_int (Bytes.get_int32_be b (pos + off)) land 0xffff_ffff in
  { src_port = u16 0;
    dst_port = u16 2;
    seq = u32 4;
    ack = u32 8;
    flags = u16 12 land 0x3f;
    window = u16 14;
    checksum = u16 16;
    urgent = u16 18 }

let of_string s ~pos =
  if pos < 0 || pos + size > String.length s then
    Error
      (Printf.sprintf "Tcp_header.of_string: truncated (%d bytes at %d, need %d)"
         (String.length s) pos size)
  else Ok (decode s ~pos)

let of_string_exn s ~pos =
  match of_string s ~pos with Ok t -> t | Error msg -> invalid_arg msg

let pseudo_acc t ~payload_len =
  let open Ilp_checksum in
  let acc = Internet.add_u16 Internet.empty t.src_port in
  let acc = Internet.add_u16 acc t.dst_port in
  let acc = Internet.add_u16 acc 6 (* protocol *) in
  Internet.add_u16 acc (size + payload_len)

let header_acc acc t =
  let open Ilp_checksum in
  let acc = Internet.add_u16 acc t.src_port in
  let acc = Internet.add_u16 acc t.dst_port in
  let acc = Internet.add_u16 acc (t.seq lsr 16) in
  let acc = Internet.add_u16 acc (t.seq land 0xffff) in
  let acc = Internet.add_u16 acc (t.ack lsr 16) in
  let acc = Internet.add_u16 acc (t.ack land 0xffff) in
  let acc = Internet.add_u16 acc (off_flags t) in
  let acc = Internet.add_u16 acc t.window in
  (* Checksum field counts as zero while checksumming. *)
  Internet.add_u16 acc t.urgent

let checksum t ~payload_acc ~payload_len =
  let open Ilp_checksum in
  let acc = header_acc (pseudo_acc t ~payload_len) t in
  let acc = Internet.combine acc payload_acc ~len_b:payload_len in
  Internet.finish acc

let pp ppf t =
  Format.fprintf ppf "%d->%d seq=%d ack=%d flags=%s%s%s%s%s win=%d"
    t.src_port t.dst_port t.seq t.ack
    (if has t syn then "S" else "")
    (if has t ack_flag then "A" else "")
    (if has t fin then "F" else "")
    (if has t rst then "R" else "")
    (if has t psh then "P" else "")
    t.window
