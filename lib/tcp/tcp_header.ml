type t = {
  src_port : int;
  dst_port : int;
  seq : int;
  ack : int;
  flags : int;
  window : int;
  checksum : int;
  urgent : int;
  sack : (int * int) list;
}

let size = 20
let max_sack_blocks = 3

(* NOP NOP SACK(kind=5, len=2+8n) — the canonical padded layout, so the
   option area is always a whole number of 32-bit words and the data
   offset describes it exactly. *)
let options_len t =
  match t.sack with [] -> 0 | blocks -> 4 + (8 * List.length blocks)

let wire_size t = size + options_len t
let max_wire_size = size + 4 + (8 * max_sack_blocks)
let fin = 0x01
let syn = 0x02
let rst = 0x04
let psh = 0x08
let ack_flag = 0x10
let has t flag = t.flags land flag <> 0

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let make ?(seq = 0) ?(ack = 0) ?(flags = 0) ?(window = 0) ?(checksum = 0)
    ?(urgent = 0) ?(sack = []) ~src_port ~dst_port () =
  (* The window field is 16 bits on the wire (no scaling option).  A
     configuration advertising more must saturate here: the raw set_u16
     would otherwise truncate modulo 2^16 — 65536 becomes 0 and the
     sender reads a closed window instead of a huge one. *)
  let window = max 0 (min window 0xffff) in
  (* At most 3 blocks fit the option budget this stack grants itself
     (RFC 2018 allows 4 without timestamps; 3 keeps headroom and matches
     the common case). *)
  let sack = take max_sack_blocks sack in
  { src_port; dst_port; seq; ack; flags; window; checksum; urgent; sack }

(* Data offset in 32-bit words: 5 for the bare header, 6..11 with the
   canonical SACK option attached. *)
let data_words t = (wire_size t) lsr 2
let off_flags t = (data_words t lsl 12) lor (t.flags land 0x3f)

(* The option bytes as 16-bit words, for checksumming and charged I/O:
   [0x0101; 0x05<<8 | len] then each block edge split high/low. *)
let fold_option_u16 t ~init ~f =
  match t.sack with
  | [] -> init
  | blocks ->
      let len = 2 + (8 * List.length blocks) in
      let acc = f init 0x0101 in
      let acc = f acc ((0x05 lsl 8) lor len) in
      List.fold_left
        (fun acc (l, r) ->
          let acc = f acc ((l lsr 16) land 0xffff) in
          let acc = f acc (l land 0xffff) in
          let acc = f acc ((r lsr 16) land 0xffff) in
          f acc (r land 0xffff))
        acc blocks

let write_mem mem ~pos t =
  let open Ilp_memsim in
  Mem.set_u16 mem pos t.src_port;
  Mem.set_u16 mem (pos + 2) t.dst_port;
  Mem.set_u32 mem (pos + 4) t.seq;
  Mem.set_u32 mem (pos + 8) t.ack;
  Mem.set_u16 mem (pos + 12) (off_flags t);
  Mem.set_u16 mem (pos + 14) t.window;
  Mem.set_u16 mem (pos + 16) t.checksum;
  Mem.set_u16 mem (pos + 18) t.urgent;
  let off = ref (pos + size) in
  ignore
    (fold_option_u16 t ~init:() ~f:(fun () w ->
         Mem.set_u16 mem !off w;
         off := !off + 2));
  Machine.compute (Mem.machine mem) (16 + (options_len t))

(* Charged parse of the option area at [pos + 20].  Anything but the one
   canonical SACK layout is a structural error — the caller drops the
   segment (the paper's fixed-header precondition means this stack never
   has to walk an arbitrary option list). *)
type parsed = { hdr : t; hdr_len : int; options_ok : bool }

let read_mem_v mem ~pos ~total =
  let open Ilp_memsim in
  let src_port = Mem.get_u16 mem pos in
  let dst_port = Mem.get_u16 mem (pos + 2) in
  let seq = Mem.get_u32 mem (pos + 4) in
  let ack = Mem.get_u32 mem (pos + 8) in
  let off_flags = Mem.get_u16 mem (pos + 12) in
  let window = Mem.get_u16 mem (pos + 14) in
  let checksum = Mem.get_u16 mem (pos + 16) in
  let urgent = Mem.get_u16 mem (pos + 18) in
  Machine.compute (Mem.machine mem) 16;
  let base =
    { src_port; dst_port; seq; ack; flags = off_flags land 0x3f; window;
      checksum; urgent; sack = [] }
  in
  let words = (off_flags lsr 12) land 0xf in
  if words = 5 then { hdr = base; hdr_len = size; options_ok = true }
  else
    let hdr_len = words * 4 in
    let opt_len = hdr_len - size in
    let n = (opt_len - 4) / 8 in
    if
      words < 5 || hdr_len > total
      || opt_len < 12 || opt_len > 4 + (8 * max_sack_blocks)
      || (opt_len - 4) mod 8 <> 0
    then { hdr = base; hdr_len = min hdr_len total; options_ok = false }
    else begin
      let kind_word = Mem.get_u16 mem (pos + size) in
      let len_word = Mem.get_u16 mem (pos + size + 2) in
      Machine.compute (Mem.machine mem) opt_len;
      if kind_word <> 0x0101 || len_word <> (0x05 lsl 8) lor (2 + (8 * n))
      then { hdr = base; hdr_len; options_ok = false }
      else begin
        let blocks = ref [] in
        for i = n - 1 downto 0 do
          let l = Mem.get_u32 mem (pos + size + 4 + (i * 8)) in
          let r = Mem.get_u32 mem (pos + size + 4 + (i * 8) + 4) in
          blocks := (l, r) :: !blocks
        done;
        { hdr = { base with sack = !blocks }; hdr_len; options_ok = true }
      end
    end

let read_mem mem ~pos = (read_mem_v mem ~pos ~total:size).hdr

let to_string t =
  let n = wire_size t in
  let b = Bytes.create n in
  Bytes.set_uint16_be b 0 t.src_port;
  Bytes.set_uint16_be b 2 t.dst_port;
  Bytes.set_int32_be b 4 (Int32.of_int (t.seq land 0xffff_ffff));
  Bytes.set_int32_be b 8 (Int32.of_int (t.ack land 0xffff_ffff));
  Bytes.set_uint16_be b 12 (off_flags t);
  Bytes.set_uint16_be b 14 t.window;
  Bytes.set_uint16_be b 16 t.checksum;
  Bytes.set_uint16_be b 18 t.urgent;
  let off = ref size in
  ignore
    (fold_option_u16 t ~init:() ~f:(fun () w ->
         Bytes.set_uint16_be b !off w;
         off := !off + 2));
  Bytes.unsafe_to_string b

let decode s ~pos =
  let b = Bytes.unsafe_of_string s in
  let u16 off = Bytes.get_uint16_be b (pos + off) in
  let u32 off = Int32.to_int (Bytes.get_int32_be b (pos + off)) land 0xffff_ffff in
  { src_port = u16 0;
    dst_port = u16 2;
    seq = u32 4;
    ack = u32 8;
    flags = u16 12 land 0x3f;
    window = u16 14;
    checksum = u16 16;
    urgent = u16 18;
    sack = [] }

let of_string s ~pos =
  if pos < 0 || pos + size > String.length s then
    Error
      (Printf.sprintf "Tcp_header.of_string: truncated (%d bytes at %d, need %d)"
         (String.length s) pos size)
  else
    let base = decode s ~pos in
    let b = Bytes.unsafe_of_string s in
    let words = (Bytes.get_uint16_be b (pos + 12)) lsr 12 land 0xf in
    if words = 5 then Ok base
    else
      let hdr_len = words * 4 in
      let opt_len = hdr_len - size in
      let n = (opt_len - 4) / 8 in
      if
        words < 5
        || pos + hdr_len > String.length s
        || opt_len < 12
        || opt_len > 4 + (8 * max_sack_blocks)
        || (opt_len - 4) mod 8 <> 0
      then Error "Tcp_header.of_string: malformed options"
      else if
        Bytes.get_uint16_be b (pos + size) <> 0x0101
        || Bytes.get_uint16_be b (pos + size + 2) <> (0x05 lsl 8) lor (2 + (8 * n))
      then Error "Tcp_header.of_string: non-canonical options"
      else begin
        let u32 off =
          Int32.to_int (Bytes.get_int32_be b (pos + off)) land 0xffff_ffff
        in
        let blocks = ref [] in
        for i = n - 1 downto 0 do
          let l = u32 (size + 4 + (i * 8)) in
          let r = u32 (size + 4 + (i * 8) + 4) in
          blocks := (l, r) :: !blocks
        done;
        Ok { base with sack = !blocks }
      end

let of_string_exn s ~pos =
  match of_string s ~pos with Ok t -> t | Error msg -> invalid_arg msg

let pseudo_acc t ~payload_len =
  let open Ilp_checksum in
  let acc = Internet.add_u16 Internet.empty t.src_port in
  let acc = Internet.add_u16 acc t.dst_port in
  let acc = Internet.add_u16 acc 6 (* protocol *) in
  Internet.add_u16 acc (wire_size t + payload_len)

let header_acc acc t =
  let open Ilp_checksum in
  let acc = Internet.add_u16 acc t.src_port in
  let acc = Internet.add_u16 acc t.dst_port in
  let acc = Internet.add_u16 acc (t.seq lsr 16) in
  let acc = Internet.add_u16 acc (t.seq land 0xffff) in
  let acc = Internet.add_u16 acc (t.ack lsr 16) in
  let acc = Internet.add_u16 acc (t.ack land 0xffff) in
  let acc = Internet.add_u16 acc (off_flags t) in
  let acc = Internet.add_u16 acc t.window in
  (* Checksum field counts as zero while checksumming. *)
  let acc = Internet.add_u16 acc t.urgent in
  fold_option_u16 t ~init:acc ~f:Internet.add_u16

let checksum t ~payload_acc ~payload_len =
  let open Ilp_checksum in
  let acc = header_acc (pseudo_acc t ~payload_len) t in
  let acc = Internet.combine acc payload_acc ~len_b:payload_len in
  Internet.finish acc

let pp ppf t =
  Format.fprintf ppf "%d->%d seq=%d ack=%d flags=%s%s%s%s%s win=%d"
    t.src_port t.dst_port t.seq t.ack
    (if has t syn then "S" else "")
    (if has t ack_flag then "A" else "")
    (if has t fin then "F" else "")
    (if has t rst then "R" else "")
    (if has t psh then "P" else "")
    t.window;
  match t.sack with
  | [] -> ()
  | blocks ->
      Format.fprintf ppf " sack=[%s]"
        (String.concat ";"
           (List.map (fun (l, r) -> Printf.sprintf "%d,%d" l r) blocks))
