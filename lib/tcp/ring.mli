(** The TCP send (retransmission) ring buffer, in simulated memory.

    "Because TCP uses a ring buffer, to which the data is transferred
    during the ILP loop, the structure of the TCP buffer must be known
    during the ILP loop."  Reservations are contiguous: when a message does
    not fit in the space remaining before the wrap point, that tail is
    wasted (recorded as padding) and the reservation starts at the buffer
    base, so a fused loop can always write its message with straight-line
    addressing.  Space is released strictly FIFO, which matches cumulative
    acknowledgements. *)

type t

(** [create sim ~size] allocates the ring in [sim]'s data space. *)
val create : Ilp_memsim.Sim.t -> size:int -> t

val size : t -> int

(** Bytes that can still be reserved (counting the possible wrap waste
    pessimistically is the caller's concern; this is raw free space). *)
val available : t -> int

(** [reserve t len] returns the simulated-memory address of a contiguous
    [len]-byte region, or [None] when it does not fit.  Regions must be
    released in reservation order. *)
val reserve : t -> int -> int option

(** [release t] frees the oldest reservation (plus any wrap padding that
    preceded it).  [Error `Empty] when there is nothing in flight — which,
    reached from TCP, means an acknowledgement arrived for data never
    reserved (an attacker-controlled or corrupted ack). *)
val release : t -> (unit, [ `Empty ]) result

(** Raising convenience wrapper for tests; [Failure] when empty. *)
val release_exn : t -> unit

(** Oldest reservation's address and length, for retransmission. *)
val peek_oldest : t -> (int * int) option

(** Number of live reservations. *)
val in_flight : t -> int

(** Reservations that wrapped: the tail before the wrap point was too
    short, was recorded as waste, and the region started back at the
    base.  A streaming sender cycles the ring continuously, so this is
    the direct witness that a transfer exercised the wrap path. *)
val wraps : t -> int

(** Cumulative wasted tail bytes across all wraps. *)
val wasted_total : t -> int
