(** The fixed-size TCP header of the paper's user-level TCP.

    "TCP header options are avoided to ensure fixed-size headers" — every
    segment carries exactly 20 bytes of header, so the ILP loop always
    knows where the payload starts (the paper's precondition that the
    header size be known before entering the loop).

    Charged encode/decode move the header through simulated memory in
    2- and 4-byte units, modelling the header processing of
    [tcp_output]/[tcp_input]; the pure forms serve tests and the wire. *)

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** sequence number (kept < 2^32; this stack does not wrap) *)
  ack : int;
  flags : int;
  window : int;
  checksum : int;
  urgent : int;
}

val size : int
(** 20 bytes. *)

(** Flag bits, as in RFC 793. *)
val fin : int

val syn : int
val rst : int
val psh : int
val ack_flag : int

val has : t -> int -> bool

val make :
  ?seq:int ->
  ?ack:int ->
  ?flags:int ->
  ?window:int ->
  ?checksum:int ->
  ?urgent:int ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t

(** Charged header I/O on simulated memory. *)
val write_mem : Ilp_memsim.Mem.t -> pos:int -> t -> unit

val read_mem : Ilp_memsim.Mem.t -> pos:int -> t

(** Pure forms (the wire representation). *)
val to_string : t -> string

(** Total decode: [Error] when fewer than {!size} bytes remain at [pos].
    A hostile wire can truncate any segment, so the receive path must be
    able to reject a short header without raising. *)
val of_string : string -> pos:int -> (t, string) result

(** Raising convenience wrapper for tests; [Invalid_argument] on a
    truncated header. *)
val of_string_exn : string -> pos:int -> t

(** [pseudo_acc t ~payload_len] starts an Internet-checksum accumulator
    with the pseudo-header (protocol 6, ports, segment length), mirroring
    "TCP ... calculates the checksum over the pseudo header and the
    data". *)
val pseudo_acc : t -> payload_len:int -> Ilp_checksum.Internet.acc

(** [header_acc acc t] folds the 20 header bytes with the checksum field
    read as zero. *)
val header_acc : Ilp_checksum.Internet.acc -> t -> Ilp_checksum.Internet.acc

(** [checksum t ~payload_acc ~payload_len] is the header checksum field
    value for a segment whose payload folds to [payload_acc]. *)
val checksum : t -> payload_acc:Ilp_checksum.Internet.acc -> payload_len:int -> int

val pp : Format.formatter -> t -> unit
