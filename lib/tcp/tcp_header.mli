(** The TCP header of the paper's user-level TCP.

    "TCP header options are avoided to ensure fixed-size headers" — every
    {e data} segment carries exactly 20 bytes of header, so the ILP loop
    always knows where the payload starts (the paper's precondition that
    the header size be known before entering the loop).  SACK (RFC 2018)
    rides exclusively on pure acknowledgements, which never enter the ILP
    loop: the option area is the one canonical padded layout
    [NOP NOP SACK(len=2+8n)] with up to {!max_sack_blocks} blocks, and
    anything else is a structural parse error the receive path drops.

    Charged encode/decode move the header through simulated memory in
    2- and 4-byte units, modelling the header processing of
    [tcp_output]/[tcp_input]; the pure forms serve tests and the wire. *)

type t = {
  src_port : int;
  dst_port : int;
  seq : int;  (** sequence number (kept < 2^32; this stack does not wrap) *)
  ack : int;
  flags : int;
  window : int;
  checksum : int;
  urgent : int;
  sack : (int * int) list;
      (** SACK blocks [(left, right)] — [left] inclusive, [right]
          exclusive, sequence-number space.  Empty for every data
          segment; at most {!max_sack_blocks} on a pure ack. *)
}

val size : int
(** 20 bytes: the bare header, and the full header of every data
    segment. *)

val max_sack_blocks : int
(** 3. *)

val wire_size : t -> int
(** [size] plus the canonical option area ([4 + 8n] bytes when [n] SACK
    blocks are attached, 0 otherwise). *)

val max_wire_size : int
(** [wire_size] of a header carrying {!max_sack_blocks} blocks (48). *)

(** Flag bits, as in RFC 793. *)
val fin : int

val syn : int
val rst : int
val psh : int
val ack_flag : int

val has : t -> int -> bool

val make :
  ?seq:int ->
  ?ack:int ->
  ?flags:int ->
  ?window:int ->
  ?checksum:int ->
  ?urgent:int ->
  ?sack:(int * int) list ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t

(** Charged header I/O on simulated memory. *)
val write_mem : Ilp_memsim.Mem.t -> pos:int -> t -> unit

val read_mem : Ilp_memsim.Mem.t -> pos:int -> t
(** Bare 20-byte read; any option area is left unread ([sack = []]). *)

(** Result of a charged parse that also walks the option area. *)
type parsed = {
  hdr : t;
  hdr_len : int;  (** bytes of header actually described by the data offset *)
  options_ok : bool;
      (** false when the data offset or option bytes are not the one
          canonical SACK layout — the segment is structurally hostile and
          must be dropped *)
}

val read_mem_v : Ilp_memsim.Mem.t -> pos:int -> total:int -> parsed
(** [read_mem_v mem ~pos ~total] reads the base header and, when the data
    offset claims options and [total] covers them, the canonical SACK
    option area. *)

(** Pure forms (the wire representation). *)
val to_string : t -> string

(** Total decode: [Error] when fewer than {!size} bytes remain at [pos],
    or when the data offset claims an option area that is truncated or
    not the canonical SACK layout.  A hostile wire can truncate any
    segment, so the receive path must be able to reject a short header
    without raising. *)
val of_string : string -> pos:int -> (t, string) result

(** Raising convenience wrapper for tests; [Invalid_argument] on a
    truncated header. *)
val of_string_exn : string -> pos:int -> t

(** [pseudo_acc t ~payload_len] starts an Internet-checksum accumulator
    with the pseudo-header (protocol 6, ports, segment length — header
    {e including options} plus payload), mirroring "TCP ... calculates
    the checksum over the pseudo header and the data". *)
val pseudo_acc : t -> payload_len:int -> Ilp_checksum.Internet.acc

(** [header_acc acc t] folds the header bytes (options included) with the
    checksum field read as zero. *)
val header_acc : Ilp_checksum.Internet.acc -> t -> Ilp_checksum.Internet.acc

(** [checksum t ~payload_acc ~payload_len] is the header checksum field
    value for a segment whose payload folds to [payload_acc]. *)
val checksum : t -> payload_acc:Ilp_checksum.Internet.acc -> payload_len:int -> int

val pp : Format.formatter -> t -> unit
