(** Retransmission-timeout estimation: Jacobson/Karels smoothed RTT with
    Karn's rule (handled by the caller by not sampling retransmitted
    segments) and exponential backoff. *)

type t

val create : ?initial_us:float -> ?min_us:float -> ?max_us:float -> unit -> t

(** [sample t rtt_us] folds one round-trip measurement. *)
val sample : t -> float -> unit

(** Current timeout in microseconds (backoff applied). *)
val timeout_us : t -> float

(** Double the timeout (retransmission occurred). *)
val backoff : t -> unit

(** Clear backoff after a successful new measurement. *)
val reset_backoff : t -> unit

val srtt_us : t -> float option
