open Ilp_memsim
module Simclock = Ilp_netsim.Simclock
module Datagram = Ilp_netsim.Datagram
module Ipv4 = Ilp_netsim.Ipv4

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Listen -> "LISTEN"
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Time_wait -> "TIME_WAIT"

(* Integer encoding of states for the flight recorder's [arg] slot. *)
let all_states =
  [| Closed; Listen; Syn_sent; Syn_rcvd; Established; Fin_wait_1; Fin_wait_2;
     Close_wait; Last_ack; Time_wait |]

let state_index = function
  | Closed -> 0
  | Listen -> 1
  | Syn_sent -> 2
  | Syn_rcvd -> 3
  | Established -> 4
  | Fin_wait_1 -> 5
  | Fin_wait_2 -> 6
  | Close_wait -> 7
  | Last_ack -> 8
  | Time_wait -> 9

type config = {
  mss : int;
  send_buffer : int;
  recv_window : int;
  rto_initial_us : float;
  rto_min_us : float;
  rto_max_us : float;
  max_retries : int;
  control_ops : int;
  ack_ops : int;
  blit_unit : int;
  ack_delay_us : float;
  dupack_threshold : int;
  congestion_control : bool;
  sack : bool;
  ooo_slots : int;
  persist_initial_us : float;
  persist_max_us : float;
  stall_deadline_us : float;
  max_pending_streams : int;
  max_tsdu : int;
}

let default_config =
  { mss = 1460;
    send_buffer = 16 * 1024;
    recv_window = 16 * 1024;
    rto_initial_us = 3_000.0;
    rto_min_us = 1_000.0;
    rto_max_us = 4_000_000.0;
    max_retries = 8;
    control_ops = 1200;
    ack_ops = 150;
    blit_unit = 4;
    ack_delay_us = 0.0;
    dupack_threshold = 3;
    congestion_control = true;
    sack = true;
    ooo_slots = 0;
    persist_initial_us = 5_000.0;
    persist_max_us = 320_000.0;
    stall_deadline_us = 3_000_000.0;
    max_pending_streams = 8;
    max_tsdu = 0 }

type rx_processing =
  | Rx_raw
  | Rx_separate of
      (Mem.t -> src:int -> dst_off:int -> len:int -> (unit, string) result)
  | Rx_integrated of
      (Mem.t ->
      src:int ->
      dst_off:int ->
      len:int ->
      (Ilp_checksum.Internet.acc, string) result)

type send_error = Not_established | Message_too_big | Buffer_full | Window_full

type drop_reason = Bad_ip | Bad_header | Bad_length | Bad_checksum | Out_of_window

let drop_reasons = [ Bad_ip; Bad_header; Bad_length; Bad_checksum; Out_of_window ]

let drop_reason_index = function
  | Bad_ip -> 0
  | Bad_header -> 1
  | Bad_length -> 2
  | Bad_checksum -> 3
  | Out_of_window -> 4

let drop_reason_to_string = function
  | Bad_ip -> "bad_ip"
  | Bad_header -> "bad_header"
  | Bad_length -> "bad_length"
  | Bad_checksum -> "bad_checksum"
  | Out_of_window -> "out_of_window"

type abort_reason =
  | Retry_exhausted
  | Handshake_failed
  | Close_timeout
  | Peer_stalled
  | Misbehaving_peer
  | Connection_reset

let abort_reason_to_string = function
  | Retry_exhausted -> "retransmission retries exhausted"
  | Handshake_failed -> "handshake retries exhausted"
  | Close_timeout -> "close (FIN) retries exhausted"
  | Peer_stalled -> "peer window stalled past the persist deadline"
  | Misbehaving_peer -> "peer acknowledged data that was never sent"
  | Connection_reset -> "connection reset by peer"

let all_abort_reasons =
  [| Retry_exhausted; Handshake_failed; Close_timeout; Peer_stalled;
     Misbehaving_peer; Connection_reset |]

let abort_reason_index = function
  | Retry_exhausted -> 0
  | Handshake_failed -> 1
  | Close_timeout -> 2
  | Peer_stalled -> 3
  | Misbehaving_peer -> 4
  | Connection_reset -> 5

type keepalive_verdict = Peer_alive | Peer_reset | Peer_silent

let keepalive_verdict_to_string = function
  | Peer_alive -> "peer alive"
  | Peer_reset -> "peer reset the connection"
  | Peer_silent -> "peer silent past the keepalive probe budget"

(* Unified-registry mirrors of the per-socket counters: bumped at the
   same sites as the mutable fields, so process totals equal the sum of
   per-socket [stats]/[drops] (checked by the conservation test). *)
module M = Ilp_obs.Metrics
module Trace = Ilp_obs.Trace
module Recorder = Ilp_obs.Recorder

(* The flight recorder stores bare ints; install the decoders for this
   module's encodings once so dumps print symbolic names. *)
let () =
  Recorder.set_arg_printer Recorder.State (fun i ->
      if i >= 0 && i < Array.length all_states then
        state_to_string all_states.(i)
      else string_of_int i);
  Recorder.set_arg_printer Recorder.Abort (fun i ->
      if i >= 0 && i < Array.length all_abort_reasons then
        abort_reason_to_string all_abort_reasons.(i)
      else string_of_int i)

let m_segments_sent = M.counter M.default "tcp.segments_sent"
let m_segments_received = M.counter M.default "tcp.segments_received"
let m_bytes_sent = M.counter M.default "tcp.bytes_sent"
let m_bytes_delivered = M.counter M.default "tcp.bytes_delivered"
let m_retransmissions = M.counter M.default "tcp.retransmissions"
let m_checksum_failures = M.counter M.default "tcp.checksum_failures"
let m_out_of_order = M.counter M.default "tcp.out_of_order"
let m_duplicates = M.counter M.default "tcp.duplicates"
let m_acks_sent = M.counter M.default "tcp.acks_sent"
let m_ip_errors = M.counter M.default "tcp.ip_errors"
let m_fast_retransmits = M.counter M.default "tcp.fast_retransmits"
let m_persist_probes = M.counter M.default "tcp.persist_probes"
let m_zero_window_stalls = M.counter M.default "tcp.zero_window_stalls"
let m_seg_payload = M.histogram M.default "tcp.segment_payload_bytes"

(* SACK loss recovery and misbehaving-peer hardening (PR 7). *)
(* Node crash/restart fault model (PR 8). *)
(* Receive-side contiguous zero-copy (PR 9): out-of-order segments of a
   framed TSDU verified and decrypted at arrival into final placement. *)
let m_ooo_placed = M.counter M.default "tcp.ooo_placed"

let m_rst_tx = M.counter M.default "tcp.rst_tx"
let m_rst_rx = M.counter M.default "tcp.rst_rx"
let m_keepalive_probes = M.counter M.default "tcp.keepalive_probes"

let m_rto_fallbacks = M.counter M.default "tcp.rto_fallbacks"
let m_sack_blocks_rx = M.counter M.default "tcp.sack_blocks_rx"
let m_sack_blocks_tx = M.counter M.default "tcp.sack_blocks_tx"
let m_sack_invalid = M.counter M.default "tcp.sack_invalid"
let m_sack_retransmits = M.counter M.default "tcp.sack_retransmits"
let m_spurious_retransmits = M.counter M.default "tcp.spurious_retransmits"

(* Congestion-control observability (last-writer-wins across sockets:
   meaningful for the usual one-bulk-sender worlds, and the conservation
   test pins them against that sender's final state). *)
let m_cwnd = M.gauge M.default "tcp.cwnd"
let m_ssthresh = M.gauge M.default "tcp.ssthresh"
let m_inflight = M.gauge M.default "tcp.segments_in_flight"

(* Per-segment retransmission counts, observed when a segment is finally
   acknowledged: bucket 0 counts segments delivered on their first
   transmission, the higher buckets the recovery tail. *)
let m_seg_rexmits = M.histogram M.default "tcp.segment_retransmits"

(* Per-segment ack RTT (Karn-filtered: only never-retransmitted segments
   are observed, same discipline as the RTO estimator).  The telemetry
   sampler derives p50/p90/p99 tracks and SLO verdicts from this. *)
let m_ack_rtt = M.histogram M.default "tcp.ack_rtt_us"

let m_drops =
  Array.of_list
    (List.map
       (fun r -> M.counter M.default ("tcp.drop." ^ drop_reason_to_string r))
       drop_reasons)

let abort_counter =
  let retry = M.counter M.default "tcp.abort.retry_exhausted" in
  let handshake = M.counter M.default "tcp.abort.handshake_failed" in
  let close = M.counter M.default "tcp.abort.close_timeout" in
  let stalled = M.counter M.default "tcp.abort.peer_stalled" in
  let misbehaving = M.counter M.default "tcp.abort.misbehaving_peer" in
  let reset = M.counter M.default "tcp.abort.connection_reset" in
  function
  | Retry_exhausted -> retry
  | Handshake_failed -> handshake
  | Close_timeout -> close
  | Peer_stalled -> stalled
  | Misbehaving_peer -> misbehaving
  | Connection_reset -> reset

type tx_seg = {
  seq : int;
  len : int;
  addr : int;
  psh : bool;  (* marks the final segment of a TSDU; preserved on retransmit *)
  mutable rexmit : bool;
  mutable rexmits : int;
  mutable sent_at : float;
  (* SACK scoreboard bits.  Both are hints, never ground truth: the ring
     releases only on cumulative ack, and an RTO clears them wholesale
     (RFC 2018 reneging rule), so a lying or forgetful receiver can at
     worst cost retransmissions, never data. *)
  mutable sacked : bool;
  mutable sack_rexmit : bool;  (* retransmitted by the scoreboard; eligible
                                  again [1.5 x srtt] later if still unsacked
                                  (the retransmission itself was lost) *)
  mutable sack_rexmit_at : float;  (* when the scoreboard last sent it *)
}

(* One TSDU queued for segmented transmission: [ps_fill] renders wire
   bytes [off, off+len) of the message at a ring address, so each
   MSS-sized piece gets its own fused pass straight into the ring. *)
type pending_stream = {
  ps_len : int;
  ps_unit : int;  (* segment boundaries fall on multiples of this *)
  ps_fill :
    Mem.t -> dst:int -> off:int -> len:int -> Ilp_checksum.Internet.acc option;
  mutable ps_off : int;  (* next byte of the TSDU to transmit *)
}

type stats = {
  segments_sent : int;
  segments_received : int;
  bytes_sent : int;
  bytes_delivered : int;
  retransmissions : int;
  checksum_failures : int;
  out_of_order : int;
  ooo_placed : int;
  duplicates : int;
  acks_sent : int;
  ip_errors : int;
  fast_retransmits : int;
  persist_probes : int;
  peak_in_flight : int;
  rto_fallbacks : int;
  sack_blocks_rx : int;
  sack_blocks_tx : int;
  sack_invalid : int;
  sack_retransmits : int;
  spurious_retransmits : int;
  rst_tx : int;
  rst_rx : int;
  keepalive_probes : int;
}

type t = {
  sim : Sim.t;
  clock : Simclock.t;
  cfg : config;
  local_port : int;
  wire_out : Datagram.t -> unit;
  ring : Ring.t;
  hdr_area : int;  (* user-space header build area *)
  tx_kernel : int;  (* kernel-side outgoing segment buffer *)
  kernel_rx : int;  (* kernel-side incoming segment buffer *)
  rx_staging : int;  (* user-space receive buffer *)
  ooo_base : int;  (* out-of-order stash slots *)
  code_ctrl : Code.region;  (* TCP control processing (tcp_output/tcp_input) *)
  code_kernel : Code.region;  (* syscall + kernel datagram path *)
  ooo_slots : int;  (* resolved stash capacity (auto-sized when cfg says 0) *)
  ooo_free : bool array;
  ooo : (int, int * int * int) Hashtbl.t;  (* seq -> slot, base addr, payload len *)
  mutable st : state;
  mutable remote_port : int;
  iss : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable rcv_nxt : int;
  mutable peer_window : int;
  mutable adv_window : int;  (* window this endpoint currently advertises *)
  txq : tx_seg Queue.t;
  streams : pending_stream Queue.t;
  mutable rto_timer : Simclock.timer option;
  rto : Rto.t;
  mutable retries : int;
  mutable dupacks : int;
  mutable fast_retransmits : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  (* NewReno-style fast recovery: [in_recovery] from the third duplicate
     ack until [recover] (snd_nxt at loss detection) is acknowledged. *)
  mutable in_recovery : bool;
  mutable recover : int;
  mutable peak_in_flight : int;
  (* RFC 3465-style byte counting for congestion avoidance: cwnd grows
     one MSS per cwnd bytes actually acknowledged, so a peer splitting
     one segment's worth of ack into many tiny acks (ack division) gains
     nothing. *)
  mutable cc_acked : int;
  (* Receive-side SACK generation state. *)
  mutable last_ooo_seq : int;  (* most recent out-of-order arrival *)
  mutable dsack_pending : (int * int) option;
      (* duplicate arrival to report as a D-SACK first block on the next ack *)
  (* Sender-side SACK/hardening ledgers. *)
  mutable rto_fallbacks_n : int;
  mutable sack_blocks_rx_n : int;
  mutable sack_blocks_tx_n : int;
  mutable sack_invalid_n : int;
  mutable sack_retransmits_n : int;
  mutable spurious_retransmits_n : int;
  (* Receive-side TSDU reassembly: bytes of the current multi-segment
     TSDU already accepted in order.  The engine rx handlers place each
     segment's plaintext at this offset in their application area; the
     raw path accumulates into [rx_asm].  Under v2 framing this counts
     engine (post-prelude) bytes. *)
  mutable rx_tsdu_off : int;
  (* v2 framed receive ({!Framing}): enabled per connection by the RPC
     layer's negotiation.  [fr_elen >= 0] while a framed TSDU is
     current: [fr_base] is the sequence number of its prelude byte 0,
     [fr_plen] the prelude length, [fr_elen] its engine (post-prelude)
     wire length — the extent that makes out-of-order final placement
     decidable. *)
  mutable rx_framing : bool;
  mutable fr_base : int;
  mutable fr_plen : int;
  mutable fr_elen : int;
  (* Out-of-order final placement: segments of the current framed TSDU
     verified and decrypted at arrival directly at their final TSDU
     offset, so the drain is pure bookkeeping; seq -> (payload_len,
     psh).  Disjoint from the [ooo] stash by construction. *)
  placed : (int, int * bool) Hashtbl.t;
  mutable ooo_placed_n : int;
  rx_asm : int;  (* Rx_raw reassembly area *)
  rx_asm_len : int;
  mutable delayed_ack : Simclock.timer option;
  (* Zero-window persistence: probe a peer that advertises no (or too
     little) space, with exponential backoff, until the window reopens or
     the stall deadline aborts the connection. *)
  mutable persist_timer : Simclock.timer option;
  mutable persist_shifts : int;
  mutable persist_want : int;  (* message length awaiting window space *)
  mutable stalled_since : float option;
  mutable persist_probes_n : int;
  probe_buf : int;  (* one already-acknowledged garbage byte to probe with *)
  mutable pending_close : bool;
  mutable ctl_timer : Simclock.timer option;  (* SYN / FIN retransmission *)
  mutable ctl_retries : int;
  mutable rx_proc : rx_processing;
  mutable on_message : src:int -> len:int -> unit;
  mutable segments_sent : int;
  mutable segments_received : int;
  mutable bytes_sent : int;
  mutable bytes_delivered : int;
  mutable retransmissions : int;
  mutable checksum_failures : int;
  mutable out_of_order_n : int;
  mutable duplicates : int;
  mutable acks_sent : int;
  mutable ip_errors : int;
  mutable ip_ident : int;
  mutable syscopy_send_cycles_us : float;
  drop_ledger : int array;  (* indexed by drop_reason_index *)
  mutable failed : abort_reason option;
  mutable on_abort : abort_reason -> unit;
  (* Node crash/restart fault model (PR 8).  [owner] tags every timer
     this socket schedules, so teardown can be audited with
     [Simclock.pending_count]; [destroyed] marks a socket torn down by a
     host crash — subsequent segments addressed to it answer with RST. *)
  owner : int;
  mutable destroyed : bool;
  mutable tw_timer : Simclock.timer option;  (* TIME_WAIT expiry *)
  mutable rst_tx_n : int;
  mutable rst_rx_n : int;
  (* Keepalive probing for half-open connections (peer restarted while
     this endpoint was idle): probe with an already-acknowledged byte at a
     fixed interval; an answering ack proves the peer alive, an RST or
     probe exhaustion yields a typed verdict. *)
  mutable ka_timer : Simclock.timer option;
  mutable ka_interval_us : float;
  mutable ka_max_probes : int;
  mutable ka_unanswered : int;
  mutable ka_on_result : (keepalive_verdict -> unit) option;
  mutable keepalive_probes_n : int;
}

let create (sim : Sim.t) clock cfg ~local_port ~wire_out =
  let seg_max = max Tcp_header.max_wire_size (Tcp_header.size + cfg.mss) in
  (* ooo_slots = 0 (the default) auto-sizes the stash to cover a full
     receive window of MSS segments plus reordering slack: PR 6 found
     that a fixed 8-slot stash under a 45-segment window serializes loss
     recovery into one segment per RTT.  An explicit positive value is
     honoured unchanged. *)
  let ooo_slots =
    if cfg.ooo_slots > 0 then cfg.ooo_slots
    else max 8 (((cfg.recv_window + cfg.mss - 1) / cfg.mss) + 4)
  in
  let ring = Ring.create sim ~size:cfg.send_buffer in
  let hdr_area = Alloc.alloc sim.alloc ~align:8 Tcp_header.max_wire_size in
  let tx_kernel = Alloc.alloc sim.alloc ~align:64 seg_max in
  let kernel_rx = Alloc.alloc sim.alloc ~align:64 seg_max in
  let rx_staging = Alloc.alloc sim.alloc ~align:64 seg_max in
  let ooo_base = Alloc.alloc sim.alloc ~align:64 (ooo_slots * seg_max) in
  let rx_asm_len = max cfg.mss cfg.max_tsdu in
  let rx_asm = Alloc.alloc sim.alloc ~align:64 rx_asm_len in
  let probe_buf = Alloc.alloc sim.alloc ~align:8 8 in
  let code_ctrl = Code.alloc sim.code ~len:2048 in
  let code_kernel = Code.alloc sim.code ~len:3072 in
  { sim;
    clock;
    cfg;
    local_port;
    wire_out;
    ring;
    hdr_area;
    tx_kernel;
    kernel_rx;
    rx_staging;
    ooo_base;
    code_ctrl;
    code_kernel;
    ooo_slots;
    ooo_free = Array.make ooo_slots true;
    ooo = Hashtbl.create 8;
    st = Closed;
    remote_port = -1;
    iss = 100_000 + (local_port * 131);
    snd_una = 0;
    snd_nxt = 0;
    rcv_nxt = 0;
    peer_window = 0;
    adv_window = cfg.recv_window;
    txq = Queue.create ();
    streams = Queue.create ();
    rto_timer = None;
    rto = Rto.create ~initial_us:cfg.rto_initial_us ~min_us:cfg.rto_min_us
            ~max_us:cfg.rto_max_us ();
    retries = 0;
    dupacks = 0;
    fast_retransmits = 0;
    cwnd = 2 * cfg.mss;
    ssthresh = 64 * 1024;
    in_recovery = false;
    recover = 0;
    peak_in_flight = 0;
    cc_acked = 0;
    last_ooo_seq = -1;
    dsack_pending = None;
    rto_fallbacks_n = 0;
    sack_blocks_rx_n = 0;
    sack_blocks_tx_n = 0;
    sack_invalid_n = 0;
    sack_retransmits_n = 0;
    spurious_retransmits_n = 0;
    rx_tsdu_off = 0;
    rx_framing = false;
    fr_base = 0;
    fr_plen = 0;
    fr_elen = -1;
    placed = Hashtbl.create 8;
    ooo_placed_n = 0;
    rx_asm;
    rx_asm_len;
    delayed_ack = None;
    persist_timer = None;
    persist_shifts = 0;
    persist_want = 0;
    stalled_since = None;
    persist_probes_n = 0;
    probe_buf;
    pending_close = false;
    ctl_timer = None;
    ctl_retries = 0;
    rx_proc = Rx_raw;
    on_message = (fun ~src:_ ~len:_ -> ());
    segments_sent = 0;
    segments_received = 0;
    bytes_sent = 0;
    bytes_delivered = 0;
    retransmissions = 0;
    checksum_failures = 0;
    out_of_order_n = 0;
    duplicates = 0;
    acks_sent = 0;
    ip_errors = 0;
    ip_ident = local_port * 1000;
    syscopy_send_cycles_us = 0.0;
    drop_ledger = Array.make (List.length drop_reasons) 0;
    failed = None;
    on_abort = (fun _ -> ());
    owner = Simclock.fresh_owner clock;
    destroyed = false;
    tw_timer = None;
    rst_tx_n = 0;
    rst_rx_n = 0;
    ka_timer = None;
    ka_interval_us = 0.0;
    ka_max_probes = 0;
    ka_unanswered = 0;
    ka_on_result = None;
    keepalive_probes_n = 0 }

let state t = t.st
let local_port t = t.local_port
let set_rx_processing t p = t.rx_proc <- p
let set_rx_framing t on = t.rx_framing <- on
let rx_framing t = t.rx_framing
let set_on_message t f = t.on_message <- f
let set_on_abort t f = t.on_abort <- f
let failure t = t.failed
let timer_owner t = t.owner
let destroyed t = t.destroyed
let count_drop t reason =
  t.drop_ledger.(drop_reason_index reason) <-
    t.drop_ledger.(drop_reason_index reason) + 1;
  M.inc m_drops.(drop_reason_index reason) 1
let drop_count t reason = t.drop_ledger.(drop_reason_index reason)
let drops t = List.map (fun r -> (r, drop_count t r)) drop_reasons
let drops_total t = Array.fold_left ( + ) 0 t.drop_ledger
let bytes_in_flight t = Queue.fold (fun acc seg -> acc + seg.len) 0 t.txq
let send_space t = Ring.available t.ring
let congestion_window t = t.cwnd
let peer_window t = t.peer_window
let advertised_window t = t.adv_window

(* Usable window space, clamped to >= 0: a peer may legally shrink its
   advertised window below the bytes already in flight, and the difference
   must never go negative (it would otherwise invite a negative-length
   segment or an exception downstream). *)
let send_window_space t =
  let cap =
    min t.peer_window (if t.cfg.congestion_control then t.cwnd else max_int)
  in
  max 0 (cap - bytes_in_flight t)

let set_advertised_window t w =
  t.adv_window <- max 0 (min w t.cfg.recv_window)

(* RFC 5681/6582-style reactions.  Every cwnd/ssthresh change mirrors
   into the registry gauges so a live snapshot shows the sender's
   congestion state. *)
let set_cc_gauges t =
  M.set m_cwnd t.cwnd;
  M.set m_ssthresh t.ssthresh

let on_congestion_loss t ~timeout =
  if t.cfg.congestion_control then begin
    t.ssthresh <- max (bytes_in_flight t / 2) (2 * t.cfg.mss);
    t.cwnd <- (if timeout then t.cfg.mss else t.ssthresh);
    set_cc_gauges t
  end

(* Byte-counted growth (RFC 3465): credit only the bytes this ack
   actually retired.  Slow start grows by min(acked, MSS) per ack;
   congestion avoidance accumulates acked bytes and grows one MSS per
   cwnd-worth retired.  Either way, a misbehaving receiver splitting one
   segment's acknowledgement into N tiny acks (ack division) earns
   exactly the same growth as the honest single ack. *)
let on_congestion_ack t ~acked =
  if t.cfg.congestion_control then begin
    if t.cwnd < t.ssthresh then
      t.cwnd <- t.cwnd + min acked t.cfg.mss (* slow start *)
    else begin
      t.cc_acked <- t.cc_acked + acked;
      if t.cc_acked >= t.cwnd then begin
        t.cc_acked <- t.cc_acked - t.cwnd;
        t.cwnd <- t.cwnd + t.cfg.mss (* congestion avoidance *)
      end
    end;
    set_cc_gauges t
  end

let stats t =
  { segments_sent = t.segments_sent;
    segments_received = t.segments_received;
    bytes_sent = t.bytes_sent;
    bytes_delivered = t.bytes_delivered;
    retransmissions = t.retransmissions;
    checksum_failures = t.checksum_failures;
    out_of_order = t.out_of_order_n;
    ooo_placed = t.ooo_placed_n;
    duplicates = t.duplicates;
    acks_sent = t.acks_sent;
    ip_errors = t.ip_errors;
    fast_retransmits = t.fast_retransmits;
    persist_probes = t.persist_probes_n;
    peak_in_flight = t.peak_in_flight;
    rto_fallbacks = t.rto_fallbacks_n;
    sack_blocks_rx = t.sack_blocks_rx_n;
    sack_blocks_tx = t.sack_blocks_tx_n;
    sack_invalid = t.sack_invalid_n;
    sack_retransmits = t.sack_retransmits_n;
    spurious_retransmits = t.spurious_retransmits_n;
    rst_tx = t.rst_tx_n;
    rst_rx = t.rst_rx_n;
    keepalive_probes = t.keepalive_probes_n }

let ooo_capacity t = t.ooo_slots

let pending_streams t = Queue.length t.streams
let ring_wraps t = Ring.wraps t.ring

let take_syscopy_send_us t =
  let v = t.syscopy_send_cycles_us in
  t.syscopy_send_cycles_us <- 0.0;
  v

(* ------------------------------------------------------------------ *)
(* Transmission plumbing *)

let machine t = t.sim.Sim.machine
let mem t = t.sim.Sim.mem

let base_header t ~flags =
  Tcp_header.make ~seq:t.snd_nxt ~ack:t.rcv_nxt ~flags ~window:t.adv_window
    ~src_port:t.local_port ~dst_port:t.remote_port ()

(* Write the finished header to the user header area, system-copy header
   (and payload, already in the ring at [payload]) into the kernel buffer,
   and put the resulting datagram on the wire. *)
let transmit t header ~payload =
  Machine.exec (machine t) t.code_ctrl;
  Machine.exec (machine t) t.code_kernel;
  Tcp_header.write_mem (mem t) ~pos:t.hdr_area header;
  (* Full tcp_output state processing for data segments; the short path
     for pure control segments. *)
  Machine.compute (machine t)
    (match payload with Some _ -> t.cfg.control_ops | None -> t.cfg.ack_ops);
  let payload_len = match payload with None -> 0 | Some (_, len) -> len in
  let hlen = Tcp_header.wire_size header in
  let before = Machine.micros (machine t) in
  Mem.blit (mem t) ~src:t.hdr_area ~dst:t.tx_kernel ~len:hlen
    ~unit_len:t.cfg.blit_unit;
  (match payload with
  | None -> ()
  | Some (addr, len) ->
      Mem.blit (mem t) ~src:addr ~dst:(t.tx_kernel + hlen) ~len
        ~unit_len:t.cfg.blit_unit);
  t.syscopy_send_cycles_us <-
    t.syscopy_send_cycles_us +. (Machine.micros (machine t) -. before);
  let segment =
    Bytes.unsafe_to_string
      (Mem.peek_bytes (mem t) ~pos:t.tx_kernel ~len:(hlen + payload_len))
  in
  (* The kernel part passes the segment to IP (loopback, never
     fragmented). *)
  t.ip_ident <- (t.ip_ident + 1) land 0xffff;
  let ip =
    Ipv4.make ~ident:t.ip_ident ~src:Ipv4.loopback ~dst:Ipv4.loopback
      ~payload_len:(String.length segment) ()
  in
  t.segments_sent <- t.segments_sent + 1;
  M.inc m_segments_sent 1;
  M.observe m_seg_payload payload_len;
  if Trace.enabled () && payload_len > 0 then
    Trace.instant ~arg:payload_len Trace.Send_link
      ~packet:(Trace.current_packet ()) ~ts:(Machine.micros (machine t));
  t.wire_out
    (Datagram.create ~src_port:t.local_port ~dst_port:t.remote_port
       ~payload:(Ipv4.encapsulate ip segment))

let send_control t ~flags =
  let h = base_header t ~flags in
  let ck =
    Tcp_header.checksum h ~payload_acc:Ilp_checksum.Internet.empty ~payload_len:0
  in
  transmit t { h with checksum = ck } ~payload:None

(* The SACK blocks this receiver currently has to report: the
   out-of-order stash merged into maximal contiguous ranges, ordered
   with the range containing the most recent arrival first (RFC 2018's
   "first block MUST specify the most recently received segment") and
   the rest by descending sequence.  Empty whenever the stash is — on a
   clean link the ack stream is wire-identical with SACK on or off. *)
let sack_ranges t =
  if
    (not t.cfg.sack)
    || (Hashtbl.length t.ooo = 0 && Hashtbl.length t.placed = 0)
  then []
  else begin
    let spans =
      Hashtbl.fold (fun seq (_, _, len) acc -> (seq, seq + len) :: acc) t.ooo []
    in
    (* Final-placement arrivals are held data exactly like the stash and
       must be reported, or the sender would retransmit them. *)
    let spans =
      Hashtbl.fold (fun seq (len, _) acc -> (seq, seq + len) :: acc) t.placed
        spans
    in
    let spans = List.sort (fun (a, _) (b, _) -> compare a b) spans in
    let merged =
      List.fold_left
        (fun acc (l, r) ->
          match acc with
          | (pl, pr) :: rest when l <= pr -> (pl, max pr r) :: rest
          | _ -> (l, r) :: acc)
        [] spans
    in
    (* [merged] is already in descending left-edge order (most recently
       sent data first); hoist the range holding the latest arrival. *)
    match
      List.partition
        (fun (l, r) -> l <= t.last_ooo_seq && t.last_ooo_seq < r)
        merged
    with
    | ([ recent ], rest) -> recent :: rest
    | _ -> merged
  end

(* Every pure acknowledgement flows through here: with nothing to report
   it is the legacy fixed-header ack, otherwise the canonical SACK option
   is attached (a pending D-SACK duplicate report rides as the first
   block, RFC 2883). *)
let send_ack_control t =
  let blocks =
    if not t.cfg.sack then []
    else
      match t.dsack_pending with
      | Some d -> d :: sack_ranges t
      | None -> sack_ranges t
  in
  t.dsack_pending <- None;
  if blocks = [] then send_control t ~flags:Tcp_header.ack_flag
  else begin
    let h =
      Tcp_header.make ~seq:t.snd_nxt ~ack:t.rcv_nxt
        ~flags:Tcp_header.ack_flag ~window:t.adv_window ~sack:blocks
        ~src_port:t.local_port ~dst_port:t.remote_port ()
    in
    let n = List.length h.Tcp_header.sack in
    t.sack_blocks_tx_n <- t.sack_blocks_tx_n + n;
    M.inc m_sack_blocks_tx n;
    if Trace.enabled () then
      Trace.instant ~arg:n Trace.Tcp_sack ~packet:(Trace.current_packet ())
        ~ts:(Machine.micros (machine t));
    let ck =
      Tcp_header.checksum h ~payload_acc:Ilp_checksum.Internet.empty
        ~payload_len:0
    in
    transmit t { h with checksum = ck } ~payload:None
  end

let send_ack_now t =
  (match t.delayed_ack with
  | Some timer ->
      Simclock.cancel timer;
      t.delayed_ack <- None
  | None -> ());
  t.acks_sent <- t.acks_sent + 1;
  M.inc m_acks_sent 1;
  send_ack_control t

(* RFC 1122-style delayed acknowledgement: hold the ack briefly so it can
   ride on (or be merged with) the next one; every second segment (a
   pending delayed ack already armed) acknowledges immediately. *)
let send_ack t =
  if t.cfg.ack_delay_us <= 0.0 then send_ack_now t
  else
    match t.delayed_ack with
    | Some _ -> send_ack_now t
    | None ->
        let timer =
          Simclock.schedule t.clock ~owner:t.owner ~after:t.cfg.ack_delay_us (fun () ->
              t.delayed_ack <- None;
              t.acks_sent <- t.acks_sent + 1;
              M.inc m_acks_sent 1;
              send_ack_control t)
        in
        t.delayed_ack <- Some timer

(* Every timer this socket can own: RTO, control (SYN/FIN), delayed ack,
   persist, TIME_WAIT expiry and keepalive.  Aborts and [destroy] must
   cancel all six — crash injection surfaces any leak as a ghost firing,
   and the soak asserts [Simclock.pending_count ~owner = 0] afterwards. *)
let cancel_all_timers t =
  Option.iter Simclock.cancel t.rto_timer;
  t.rto_timer <- None;
  Option.iter Simclock.cancel t.ctl_timer;
  t.ctl_timer <- None;
  Option.iter Simclock.cancel t.delayed_ack;
  t.delayed_ack <- None;
  Option.iter Simclock.cancel t.persist_timer;
  t.persist_timer <- None;
  Option.iter Simclock.cancel t.tw_timer;
  t.tw_timer <- None;
  Option.iter Simclock.cancel t.ka_timer;
  t.ka_timer <- None

(* Single funnel for TCP state changes: the flight recorder sees every
   transition with the new state encoded in [arg], keyed by the local
   port, so an abort dump replays the connection's whole life. *)
let transition t st =
  if t.st <> st then begin
    t.st <- st;
    Recorder.note Recorder.State ~conn:t.local_port ~arg:(state_index st)
      ~ts:(Machine.micros (machine t))
  end

(* Retry exhaustion: tear the connection down with a recorded reason so
   the application sees a typed failure, never a silent [Closed]. *)
let abort t reason =
  if t.failed = None then begin
    t.failed <- Some reason;
    M.inc (abort_counter reason) 1;
    Recorder.note Recorder.Abort ~conn:t.local_port
      ~arg:(abort_reason_index reason) ~ts:(Machine.micros (machine t));
    if Trace.enabled () then
      Trace.instant Trace.Tcp_abort ~packet:(Trace.current_packet ())
        ~ts:(Machine.micros (machine t))
  end;
  transition t Closed;
  Queue.clear t.streams;
  t.ka_on_result <- None;
  cancel_all_timers t;
  t.on_abort reason

(* Tear a socket down as a crashing host does: no FIN, no callback, just
   drop every queue, reservation and timer.  The socket answers later
   segments with RST (it is a dead connection, not a closed one). *)
let destroy t =
  t.destroyed <- true;
  transition t Closed;
  t.pending_close <- false;
  Queue.clear t.streams;
  Queue.clear t.txq;
  (* The ring and txq reserve/queue in lockstep; with the queue gone,
     release every live reservation so ring accounting stays balanced. *)
  let rec release_all () =
    match Ring.release t.ring with
    | Ok () -> release_all ()
    | Error `Empty -> ()
  in
  release_all ();
  Hashtbl.reset t.ooo;
  Array.fill t.ooo_free 0 (Array.length t.ooo_free) true;
  Hashtbl.reset t.placed;
  t.fr_elen <- -1;
  t.rx_tsdu_off <- 0;
  t.ka_on_result <- None;
  cancel_all_timers t

(* Control-segment (SYN / SYN-ACK / FIN) retransmission. *)
let rec arm_ctl_timer t ~flags =
  Option.iter Simclock.cancel t.ctl_timer;
  let timer =
    Simclock.schedule t.clock ~owner:t.owner ~after:(Rto.timeout_us t.rto) (fun () ->
        if t.ctl_retries >= t.cfg.max_retries then
          abort t
            (if flags land Tcp_header.syn <> 0 then Handshake_failed
             else Close_timeout)
        else begin
          t.ctl_retries <- t.ctl_retries + 1;
          Rto.backoff t.rto;
          (* Re-send with the sequence number the control segment used. *)
          let h = base_header t ~flags in
          let h = { h with seq = t.snd_nxt - 1 } in
          let ck =
            Tcp_header.checksum h ~payload_acc:Ilp_checksum.Internet.empty
              ~payload_len:0
          in
          transmit t { h with checksum = ck } ~payload:None;
          arm_ctl_timer t ~flags
        end)
  in
  t.ctl_timer <- Some timer

let cancel_ctl_timer t =
  Option.iter Simclock.cancel t.ctl_timer;
  t.ctl_timer <- None;
  t.ctl_retries <- 0

(* ------------------------------------------------------------------ *)
(* Zero-window persistence *)

let cancel_persist t =
  Option.iter Simclock.cancel t.persist_timer;
  t.persist_timer <- None;
  t.persist_shifts <- 0;
  t.persist_want <- 0;
  t.stalled_since <- None

(* A window probe: one already-acknowledged byte at [snd_nxt - 1].  The
   receiver's duplicate path acknowledges it immediately, and that ack
   carries the peer's current window — so a reopened window is discovered
   even if the peer's window-update ack was lost. *)
let send_probe t =
  t.persist_probes_n <- t.persist_probes_n + 1;
  M.inc m_persist_probes 1;
  Recorder.note Recorder.Persist_probe ~conn:t.local_port
    ~arg:t.persist_shifts ~ts:(Machine.micros (machine t));
  if Trace.enabled () then
    Trace.instant Trace.Tcp_persist_probe ~packet:(Trace.current_packet ())
      ~ts:(Machine.micros (machine t));
  let h = base_header t ~flags:Tcp_header.ack_flag in
  let h = { h with seq = t.snd_nxt - 1 } in
  let payload_acc =
    Ilp_checksum.Internet.checksum_mem (mem t) ~pos:t.probe_buf ~len:1
      ~acc:Ilp_checksum.Internet.empty
  in
  let ck = Tcp_header.checksum h ~payload_acc ~payload_len:1 in
  transmit t { h with checksum = ck } ~payload:(Some (t.probe_buf, 1))

(* ------------------------------------------------------------------ *)
(* RST generation (RFC 793 reset rules)

   A segment addressed to a dead connection — a socket torn down by a
   crash ([destroy]) or a typed abort — is answered with a reset so the
   peer learns immediately instead of retransmitting into a black hole:
   an arriving segment with ACK is answered <SEQ=SEG.ACK><CTL=RST>, one
   without (a SYN) by <SEQ=0><ACK=SEG.SEQ+SEG.LEN><CTL=RST,ACK>.  A
   cleanly closed socket stays silent, so clean-run wire traces are
   byte-identical to the pre-fault-model stack.  Resets are pure 20-byte
   control segments and never enter the fused ILP data path. *)

let rst_reply_header (h : Tcp_header.t) ~payload_len ~src_port =
  let seg_len =
    payload_len
    + (if Tcp_header.has h Tcp_header.syn then 1 else 0)
    + (if Tcp_header.has h Tcp_header.fin then 1 else 0)
  in
  let r =
    if Tcp_header.has h Tcp_header.ack_flag then
      Tcp_header.make ~seq:h.ack ~flags:Tcp_header.rst ~src_port
        ~dst_port:h.src_port ()
    else
      Tcp_header.make ~seq:0 ~ack:(h.seq + seg_len)
        ~flags:(Tcp_header.rst lor Tcp_header.ack_flag) ~src_port
        ~dst_port:h.src_port ()
  in
  let ck =
    Tcp_header.checksum r ~payload_acc:Ilp_checksum.Internet.empty
      ~payload_len:0
  in
  { r with checksum = ck }

let send_rst t (h : Tcp_header.t) ~payload_len =
  (* Never reset a reset: that way lies an RST storm. *)
  if not (Tcp_header.has h Tcp_header.rst) then begin
    let r = rst_reply_header h ~payload_len ~src_port:t.local_port in
    t.rst_tx_n <- t.rst_tx_n + 1;
    M.inc m_rst_tx 1;
    Recorder.note Recorder.Rst_tx ~conn:t.local_port ~arg:0
      ~ts:(Machine.micros (machine t));
    if Trace.enabled () then
      Trace.instant ~arg:1 Trace.Tcp_rst ~packet:(Trace.current_packet ())
        ~ts:(Machine.micros (machine t));
    (* Bypass [transmit]: the reset goes back to the segment's source
       port, not [t.remote_port] (stale or unset on a dead socket), and a
       dead socket charges only the short control path. *)
    Machine.compute (machine t) t.cfg.ack_ops;
    t.ip_ident <- (t.ip_ident + 1) land 0xffff;
    let wire = Tcp_header.to_string r in
    let ip =
      Ipv4.make ~ident:t.ip_ident ~src:Ipv4.loopback ~dst:Ipv4.loopback
        ~payload_len:(String.length wire) ()
    in
    t.segments_sent <- t.segments_sent + 1;
    M.inc m_segments_sent 1;
    t.wire_out
      (Datagram.create ~src_port:t.local_port ~dst_port:h.Tcp_header.src_port
         ~payload:(Ipv4.encapsulate ip wire))
  end

(* The reset a crashed host's address answers with while the host is
   down: no socket exists at all, so this is a pure function from the
   arriving datagram to the reset datagram (None for malformed input and
   for resets, which are never themselves reset). *)
let reset_for (dgram : Datagram.t) =
  match Ipv4.decapsulate dgram.Datagram.payload with
  | Error _ -> None
  | Ok (ip, _) when ip.Ipv4.protocol <> Ipv4.protocol_tcp -> None
  | Ok (_, wire) -> (
      match Tcp_header.of_string wire ~pos:0 with
      | Error _ -> None
      | Ok h ->
          if Tcp_header.has h Tcp_header.rst then None
          else begin
            let payload_len =
              max 0 (String.length wire - Tcp_header.wire_size h)
            in
            let r =
              rst_reply_header h ~payload_len ~src_port:dgram.Datagram.dst_port
            in
            M.inc m_rst_tx 1;
            Recorder.note Recorder.Rst_tx ~conn:dgram.Datagram.dst_port
              ~arg:0 ~ts:(Trace.now ());
            if Trace.enabled () then
              Trace.instant ~arg:1 Trace.Tcp_rst
                ~packet:(Trace.current_packet ()) ~ts:(Trace.now ());
            let wire_out = Tcp_header.to_string r in
            let ip =
              Ipv4.make ~src:Ipv4.loopback ~dst:Ipv4.loopback
                ~payload_len:(String.length wire_out) ()
            in
            Some
              (Datagram.create ~src_port:dgram.Datagram.dst_port
                 ~dst_port:h.Tcp_header.src_port
                 ~payload:(Ipv4.encapsulate ip wire_out))
          end)

(* ------------------------------------------------------------------ *)
(* Keepalive probing (half-open connection detection)

   A host that crashes and restarts forgets its connections; a peer with
   nothing to send never notices — the connection is half-open.  The
   keepalive timer probes an idle connection with one already-acknowledged
   garbage byte (the persist probe's wire shape): a live peer answers
   with a duplicate ack ([Peer_alive]), a restarted peer answers RST
   ([Peer_reset], and the connection aborts [Connection_reset]), and a
   black-holed peer stays silent until the probe budget is spent
   ([Peer_silent], aborting [Retry_exhausted]). *)

let probe_wire_states = [ Established; Close_wait; Fin_wait_1; Fin_wait_2 ]

let send_keepalive_probe t =
  t.keepalive_probes_n <- t.keepalive_probes_n + 1;
  M.inc m_keepalive_probes 1;
  Recorder.note Recorder.Keepalive ~conn:t.local_port ~arg:t.ka_unanswered
    ~ts:(Machine.micros (machine t));
  if Trace.enabled () then
    Trace.instant ~arg:t.ka_unanswered Trace.Tcp_keepalive
      ~packet:(Trace.current_packet ()) ~ts:(Machine.micros (machine t));
  let h = base_header t ~flags:Tcp_header.ack_flag in
  let h = { h with Tcp_header.seq = t.snd_nxt - 1 } in
  let payload_acc =
    Ilp_checksum.Internet.checksum_mem (mem t) ~pos:t.probe_buf ~len:1
      ~acc:Ilp_checksum.Internet.empty
  in
  let ck = Tcp_header.checksum h ~payload_acc ~payload_len:1 in
  transmit t { h with checksum = ck } ~payload:(Some (t.probe_buf, 1))

let rec arm_keepalive t =
  Option.iter Simclock.cancel t.ka_timer;
  let timer =
    Simclock.schedule t.clock ~owner:t.owner ~after:t.ka_interval_us (fun () ->
        t.ka_timer <- None;
        if
          t.failed = None && t.ka_on_result <> None
          && List.mem t.st probe_wire_states
        then begin
          if t.ka_unanswered >= t.ka_max_probes then begin
            match t.ka_on_result with
            | Some f ->
                t.ka_on_result <- None;
                f Peer_silent;
                abort t Retry_exhausted
            | None -> ()
          end
          else begin
            t.ka_unanswered <- t.ka_unanswered + 1;
            send_keepalive_probe t;
            arm_keepalive t
          end
        end)
  in
  t.ka_timer <- Some timer

let start_keepalive t ?(interval_us = 50_000.0) ?(probes = 3) ~on_result () =
  if interval_us <= 0.0 then
    invalid_arg "Socket.start_keepalive: interval_us must be positive";
  if probes < 1 then invalid_arg "Socket.start_keepalive: probes must be >= 1";
  t.ka_interval_us <- interval_us;
  t.ka_max_probes <- probes;
  t.ka_unanswered <- 0;
  t.ka_on_result <- Some on_result;
  arm_keepalive t

let stop_keepalive t =
  t.ka_on_result <- None;
  t.ka_unanswered <- 0;
  Option.iter Simclock.cancel t.ka_timer;
  t.ka_timer <- None

(* Any segment from the peer proves it alive: answer an outstanding
   probe's verdict and reset the unanswered count (keepalive keeps
   running — it is a monitor, not a one-shot). *)
let ka_note_activity t =
  if t.ka_unanswered > 0 then begin
    t.ka_unanswered <- 0;
    match t.ka_on_result with
    | Some f ->
        if Trace.enabled () then
          Trace.instant ~arg:0 Trace.Tcp_keepalive
            ~packet:(Trace.current_packet ())
            ~ts:(Machine.micros (machine t));
        f Peer_alive
    | None -> ()
  end

(* An acceptable inbound RST: the peer (or its restarted ghost) tore the
   connection down.  An outstanding keepalive probe gets its typed
   verdict before the abort callback fires. *)
let handle_reset t =
  (match t.ka_on_result with
  | Some f when t.ka_unanswered > 0 ->
      t.ka_on_result <- None;
      f Peer_reset
  | _ -> ());
  abort t Connection_reset

let persist_interval_us t =
  min t.cfg.persist_max_us
    (t.cfg.persist_initial_us *. (2.0 ** float_of_int t.persist_shifts))

let rec arm_persist t ~want =
  t.persist_want <- want;
  let stall_start =
    match t.stalled_since with
    | Some s -> s
    | None ->
        let now = Simclock.now t.clock in
        t.stalled_since <- Some now;
        M.inc m_zero_window_stalls 1;
        Recorder.note Recorder.Zero_window ~conn:t.local_port ~arg:want
          ~ts:(Machine.micros (machine t));
        if Trace.enabled () then
          Trace.instant Trace.Tcp_zero_window ~packet:(Trace.current_packet ())
            ~ts:(Machine.micros (machine t));
        now
  in
  Option.iter Simclock.cancel t.persist_timer;
  let timer =
    Simclock.schedule t.clock ~owner:t.owner ~after:(persist_interval_us t) (fun () ->
        t.persist_timer <- None;
        if t.st = Established || t.st = Close_wait then begin
          if Simclock.now t.clock -. stall_start >= t.cfg.stall_deadline_us then
            abort t Peer_stalled
          else begin
            send_probe t;
            t.persist_shifts <- t.persist_shifts + 1;
            arm_persist t ~want
          end
        end)
  in
  t.persist_timer <- Some timer

(* ------------------------------------------------------------------ *)
(* Retransmission of data segments *)

let rec arm_rto t =
  Option.iter Simclock.cancel t.rto_timer;
  if not (Queue.is_empty t.txq) then begin
    let timer = Simclock.schedule t.clock ~owner:t.owner ~after:(Rto.timeout_us t.rto) (fun () -> on_rto t) in
    t.rto_timer <- Some timer
  end
  else t.rto_timer <- None

and retransmit_seg t seg =
  t.retransmissions <- t.retransmissions + 1;
  M.inc m_retransmissions 1;
  Recorder.note Recorder.Retransmit ~conn:t.local_port ~arg:seg.seq
    ~ts:(Machine.micros (machine t));
  if Trace.enabled () then
    Trace.instant ~arg:seg.seq Trace.Tcp_retransmit
      ~packet:(Trace.current_packet ()) ~ts:(Machine.micros (machine t));
  seg.rexmit <- true;
  seg.rexmits <- seg.rexmits + 1;
  (* tcp_output for the retransmission: fresh checksum pass over the ring
     contents, fresh header.  The PSH bit must match the original — a
     mid-TSDU segment replayed with PSH would terminate the receiver's
     reassembly early. *)
  let flags =
    Tcp_header.ack_flag lor (if seg.psh then Tcp_header.psh else 0)
  in
  let h = base_header t ~flags in
  let h = { h with seq = seg.seq } in
  let payload_acc =
    Ilp_checksum.Internet.checksum_mem (mem t) ~pos:seg.addr ~len:seg.len
      ~acc:Ilp_checksum.Internet.empty
  in
  let ck = Tcp_header.checksum h ~payload_acc ~payload_len:seg.len in
  transmit t { h with checksum = ck } ~payload:(Some (seg.addr, seg.len))

and on_rto t =
  match Queue.peek_opt t.txq with
  | None -> t.rto_timer <- None
  | Some seg ->
      if t.retries >= t.cfg.max_retries then abort t Retry_exhausted
      else begin
        t.retries <- t.retries + 1;
        t.rto_fallbacks_n <- t.rto_fallbacks_n + 1;
        M.inc m_rto_fallbacks 1;
        (* Full reneging tolerance (RFC 2018 §8): on timeout every
           scoreboard hint is discarded and recovery restarts from the
           cumulative ack alone — a receiver that SACKed data and then
           threw it away can cost retransmissions, never correctness. *)
        Queue.iter
          (fun s ->
            s.sacked <- false;
            s.sack_rexmit <- false)
          t.txq;
        (* A timeout abandons any fast recovery in progress and restarts
           from slow start. *)
        t.in_recovery <- false;
        t.dupacks <- 0;
        on_congestion_loss t ~timeout:true;
        Rto.backoff t.rto;
        retransmit_seg t seg;
        arm_rto t
      end

(* ------------------------------------------------------------------ *)
(* SACK scoreboard (RFC 3517-style, segment granularity) *)

let first_unsacked t =
  Queue.fold
    (fun acc s ->
      match acc with
      | Some _ -> acc
      | None -> if s.sacked then None else Some s)
    None t.txq

let sacked_segments t =
  Queue.fold (fun n s -> if s.sacked then n + 1 else n) 0 t.txq

(* Retransmit every inferred hole the window allows: a segment is lost
   (RFC 3517 IsLost) when at least [dupack_threshold] SACKed segments
   lie above it.  Pipe counting bounds how much the retransmission burst
   can re-inflate the network; per RFC 3517 the pipe excludes both
   SACKed segments and inferred-lost segments whose retransmission is
   not believed in flight.  A hole goes out once per round trip: a
   segment still unsacked [1.5 x srtt] after the scoreboard last sent it
   had its retransmission lost too, and becomes eligible again — so a
   lost retransmission is retried ack-clocked instead of waiting for the
   RTO of last resort. *)
let sack_retransmit_holes t =
  if t.cfg.sack && t.in_recovery && not (Queue.is_empty t.txq) then begin
    let total_sacked = sacked_segments t in
    if total_sacked > 0 then begin
      let now = Simclock.now t.clock in
      let retry_after =
        match Rto.srtt_us t.rto with
        | Some s -> 1.5 *. s
        | None -> Rto.timeout_us t.rto /. 2.0
      in
      let eligible s =
        (not s.sack_rexmit) || now -. s.sack_rexmit_at >= retry_after
      in
      let cap = if t.cfg.congestion_control then t.cwnd else max_int in
      let pipe = ref 0 in
      let seen = ref 0 in
      Queue.iter
        (fun s ->
          if s.sacked then incr seen
          else begin
            let lost = total_sacked - !seen >= t.cfg.dupack_threshold in
            if (not lost) || not (eligible s) then pipe := !pipe + s.len
          end)
        t.txq;
      let seen = ref 0 in
      Queue.iter
        (fun s ->
          if s.sacked then incr seen
          else begin
            let sacked_above = total_sacked - !seen in
            if
              sacked_above >= t.cfg.dupack_threshold
              && eligible s && !pipe < cap
            then begin
              s.sack_rexmit <- true;
              s.sack_rexmit_at <- now;
              t.sack_retransmits_n <- t.sack_retransmits_n + 1;
              M.inc m_sack_retransmits 1;
              Recorder.note Recorder.Sack_retransmit ~conn:t.local_port
                ~arg:s.seq ~ts:(Machine.micros (machine t));
              if Trace.enabled () then
                Trace.instant ~arg:s.seq Trace.Tcp_sack_rexmit
                  ~packet:(Trace.current_packet ())
                  ~ts:(Machine.micros (machine t));
              retransmit_seg t s;
              pipe := !pipe + s.len
            end
          end)
        t.txq
    end
  end

(* Validate one ack's SACK blocks against what was actually sent, apply
   the survivors to the scoreboard.  Rejected shapes are counted, never
   trusted: a block that is empty or inverted, reaches beyond [snd_nxt]
   (acknowledging data never sent), or overlaps another block of the
   same ack is hostile or corrupt by construction.  A block entirely at
   or below the cumulative ack is a D-SACK duplicate report — evidence
   one of our retransmissions was spurious. *)
let process_sack t (h : Tcp_header.t) =
  match h.Tcp_header.sack with
  | [] -> ()
  | blocks ->
      let invalid () =
        t.sack_invalid_n <- t.sack_invalid_n + 1;
        M.inc m_sack_invalid 1
      in
      let accepted = ref [] in
      (* RFC 2883: a first block wholly contained in a later block of the
         same ack reports a duplicate arrival above the cumulative ack (a
         wire-duplicated or spuriously retransmitted out-of-order
         segment), not new scoreboard information — strip it here so the
         overlap rule below only condemns genuinely forged feedback.
         (The duplicate-below-cumack D-SACK form is the [r <= ack] case
         in the loop.) *)
      let blocks =
        match blocks with
        | (l, r) :: rest
          when l < r && r <= t.snd_nxt
               && List.exists (fun (al, ar) -> al <= l && r <= ar) rest ->
            t.spurious_retransmits_n <- t.spurious_retransmits_n + 1;
            M.inc m_spurious_retransmits 1;
            rest
        | _ -> blocks
      in
      List.iter
        (fun (l, r) ->
          if l >= r || r > t.snd_nxt then invalid ()
          else if r <= h.Tcp_header.ack then begin
            t.spurious_retransmits_n <- t.spurious_retransmits_n + 1;
            M.inc m_spurious_retransmits 1
          end
          else if List.exists (fun (al, ar) -> l < ar && al < r) !accepted
          then invalid ()
          else begin
            let l = max l h.Tcp_header.ack in
            accepted := (l, r) :: !accepted;
            t.sack_blocks_rx_n <- t.sack_blocks_rx_n + 1;
            M.inc m_sack_blocks_rx 1;
            Queue.iter
              (fun s ->
                if (not s.sacked) && s.seq >= l && s.seq + s.len <= r then
                  s.sacked <- true)
              t.txq
          end)
        blocks

(* ------------------------------------------------------------------ *)
(* Public send path *)

let maybe_send_fin t =
  if t.pending_close && Queue.is_empty t.txq && Queue.is_empty t.streams
  then begin
    t.pending_close <- false;
    (match t.st with
    | Established -> transition t Fin_wait_1
    | Close_wait -> transition t Last_ack
    | _ -> ());
    send_control t ~flags:(Tcp_header.fin lor Tcp_header.ack_flag);
    t.snd_nxt <- t.snd_nxt + 1;
    arm_ctl_timer t ~flags:(Tcp_header.fin lor Tcp_header.ack_flag)
  end

(* tcp_output's own checksum pass over ring contents, for fills that did
   not integrate it. *)
let ring_checksum t ~addr ~len =
  let tr = Trace.enabled () in
  let t0 = if tr then Machine.micros (machine t) else 0.0 in
  let acc =
    Ilp_checksum.Internet.checksum_mem (mem t) ~pos:addr ~len
      ~acc:Ilp_checksum.Internet.empty
  in
  if tr then
    Trace.span Trace.Send_checksum ~packet:(Trace.current_packet ()) ~ts:t0
      ~dur:(Machine.micros (machine t) -. t0);
  acc

(* Header build, transmit and bookkeeping shared by the one-shot and
   streaming senders.  The payload is already in the ring at [addr]. *)
let send_data_segment t ~addr ~len ~psh ~payload_acc =
  let flags = Tcp_header.ack_flag lor (if psh then Tcp_header.psh else 0) in
  let h = base_header t ~flags in
  let ck = Tcp_header.checksum h ~payload_acc ~payload_len:len in
  transmit t { h with checksum = ck } ~payload:(Some (addr, len));
  Queue.add
    { seq = t.snd_nxt; len; addr; psh; rexmit = false; rexmits = 0;
      sent_at = Simclock.now t.clock; sacked = false; sack_rexmit = false;
      sack_rexmit_at = 0.0 }
    t.txq;
  t.snd_nxt <- t.snd_nxt + len;
  t.bytes_sent <- t.bytes_sent + len;
  M.inc m_bytes_sent len;
  let fl = bytes_in_flight t in
  if fl > t.peak_in_flight then t.peak_in_flight <- fl;
  M.set m_inflight (Queue.length t.txq);
  if t.rto_timer = None then arm_rto t

(* The stream pump: push segments of the front TSDU while the usable
   window, the congestion window and the ring all have room.  Re-run from
   every ack (new data acked, a window update, or fast-recovery
   inflation) — this is what keeps multiple segments in flight. *)
let rec pump_streams t =
  if (t.st = Established || t.st = Close_wait) && t.failed = None then
    match Queue.peek_opt t.streams with
    | None -> ()
    | Some s ->
        if s.ps_off >= s.ps_len then begin
          ignore (Queue.pop t.streams);
          maybe_send_fin t;
          pump_streams t
        end
        else begin
          let max_seg = t.cfg.mss - (t.cfg.mss mod s.ps_unit) in
          let seg = min max_seg (s.ps_len - s.ps_off) in
          if seg > Ring.size t.ring then
            invalid_arg "Socket.send_stream: mss exceeds the send buffer";
          if seg > send_window_space t then begin
            (* Window too small for the next segment.  With data still in
               flight, acks (or the RTO) reopen it; with nothing in
               flight there is no timer running, so this is a zero-window
               stall mid-stream — run the persist machinery. *)
            if Queue.is_empty t.txq && t.persist_timer = None then
              arm_persist t ~want:seg
          end
          else
            match Ring.reserve t.ring seg with
            | None -> ()  (* ring full: acks release space and re-pump *)
            | Some addr ->
                if t.persist_timer <> None then cancel_persist t;
                let off = s.ps_off in
                s.ps_off <- off + seg;
                (* One fused (or separate) pass over just this segment's
                   byte range, straight into the ring. *)
                let acc_opt = s.ps_fill (mem t) ~dst:addr ~off ~len:seg in
                let payload_acc =
                  match acc_opt with
                  | Some acc -> acc
                  | None -> ring_checksum t ~addr ~len:seg
                in
                send_data_segment t ~addr ~len:seg ~psh:(s.ps_off >= s.ps_len)
                  ~payload_acc;
                pump_streams t
        end

let send_message t ~len ~fill =
  if t.st <> Established then Error Not_established
  else if len > t.cfg.mss then Error Message_too_big
  else if not (Queue.is_empty t.streams) then
    (* A stream is mid-flight: a one-shot message may not interleave with
       its segments (the receiver would fold it into the TSDU). *)
    Error Buffer_full
  else if len > send_window_space t then begin
    (* No usable window.  If nothing is in flight there is no RTO to keep
       the connection moving, so start (or keep) the persist machinery;
       with data in flight, incoming acks or the RTO drive recovery. *)
    if Queue.is_empty t.txq && t.persist_timer = None then arm_persist t ~want:len;
    Error Window_full
  end
  else
    match Ring.reserve t.ring len with
    | None -> Error Buffer_full
    | Some addr ->
        cancel_persist t;
        (* tcp_send: the caller's fill writes the payload into the ring
           (either a plain copy or the fused ILP loop). *)
        let acc_opt = fill (mem t) ~dst:addr in
        (* tcp_output: checksum (unless already integrated), header. *)
        let payload_acc =
          match acc_opt with
          | Some acc -> acc
          | None -> ring_checksum t ~addr ~len
        in
        send_data_segment t ~addr ~len ~psh:true ~payload_acc;
        Ok ()

(* Warning 16: every following argument is labelled, so [?seg_unit] can
   never be erased by partial application — harmless here. *)
let[@warning "-16"] send_stream t ?(seg_unit = 1) ~len ~fill =
  if seg_unit <= 0 || seg_unit > t.cfg.mss then
    invalid_arg "Socket.send_stream: seg_unit must be in [1, mss]";
  if len <= 0 || len mod seg_unit <> 0 then
    invalid_arg "Socket.send_stream: len must be a positive multiple of seg_unit";
  if t.st <> Established then Error Not_established
  else if Queue.length t.streams >= t.cfg.max_pending_streams then
    Error Buffer_full
  else begin
    Queue.add { ps_len = len; ps_unit = seg_unit; ps_fill = fill; ps_off = 0 }
      t.streams;
    pump_streams t;
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Connection management *)

let connect t ~remote_port =
  if t.st <> Closed then invalid_arg "Socket.connect: not closed";
  t.remote_port <- remote_port;
  t.snd_una <- t.iss;
  t.snd_nxt <- t.iss;
  transition t Syn_sent;
  send_control t ~flags:Tcp_header.syn;
  t.snd_nxt <- t.snd_nxt + 1;
  arm_ctl_timer t ~flags:Tcp_header.syn

let listen t =
  if t.st <> Closed then invalid_arg "Socket.listen: not closed";
  transition t Listen

let close t =
  match t.st with
  | Established | Close_wait ->
      t.pending_close <- true;
      maybe_send_fin t
  | Listen | Syn_sent ->
      transition t Closed;
      cancel_ctl_timer t
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Receive path *)

let alloc_ooo_slot t =
  let rec go i = if i = t.ooo_slots then None
    else if t.ooo_free.(i) then Some i
    else go (i + 1)
  in
  go 0

let seg_max t = max Tcp_header.max_wire_size (Tcp_header.size + t.cfg.mss)

(* Verify and deliver a data segment whose bytes start at [base] in user
   memory (receive staging or an out-of-order slot).

   TSDU reassembly: a segment without PSH is a piece of a larger TSDU —
   its plaintext is accumulated at the current reassembly offset (the
   engine handlers write [app_rx + dst_off]; the raw path copies into
   [rx_asm]) and delivery to the application waits for the PSH-marked
   final segment.  A PSH segment arriving with nothing accumulated is the
   legacy whole-TSDU-per-segment case and is delivered straight from the
   staging area, byte- and charge-identical to the pre-streaming stack. *)
let process_data t (h : Tcp_header.t) ~base ~payload_len =
  let open Ilp_checksum in
  let src = base + Tcp_header.size in
  let psh = Tcp_header.has h Tcp_header.psh in
  let framed =
    t.rx_framing && (match t.rx_proc with Rx_raw -> false | _ -> true)
  in
  let starting = framed && t.fr_elen < 0 in
  (* Framed geometry: the first segment of a framed TSDU carries the
     cleartext prelude ({!Framing}) announcing the TSDU's engine wire
     length; it is parsed (uncharged peeks — the charged pass over its
     bytes is the checksum walk) and stripped before the engine handler.
     The frame state is only committed once the segment's checksum
     verdict is [Ok], so a corrupt prelude can never wedge the
     connection's reassembly state. *)
  let frame =
    if not starting then Ok None
    else
      match Framing.parse_word0 (Mem.peek_u32 (mem t) src) with
      | Some plen when payload_len >= plen ->
          let elen = Mem.peek_u32 (mem t) (src + 4) in
          if elen > 0 && payload_len - plen <= elen then Ok (Some (plen, elen))
          else Error Bad_header
      | _ -> Error Bad_header
  in
  match frame with
  | Error reason ->
      count_drop t reason;
      false
  | Ok fr ->
  let plen = match fr with Some (p, _) -> p | None -> 0 in
  let eng_src = src + plen in
  let eng_len = payload_len - plen in
  let dst_off = t.rx_tsdu_off in
  let single = psh && dst_off = 0 in
  (* Each delivered data segment is one traced receive packet; the
     engine's rx handlers pick the id up via [Trace.current_packet]. *)
  if Trace.enabled () then ignore (Trace.begin_packet ());
  let verdict =
    (* Reassembly bound for the raw path (the engine handlers bound
       [dst_off + len] against their own application area): an
       accumulation that would overflow [rx_asm] is rejected without
       advancing [rcv_nxt] — the sender's retries end in a typed abort
       rather than silent truncation. *)
    if
      (match t.rx_proc with Rx_raw -> true | _ -> false)
      && (not single)
      && dst_off + payload_len > t.rx_asm_len
    then Error Bad_length
    else if framed && (not starting) && dst_off + eng_len > t.fr_elen then
      (* A framed continuation past the announced TSDU extent. *)
      Error Bad_length
    else
      match t.rx_proc with
      | Rx_raw | Rx_separate _ ->
          (* Separate checksum pass over the staged segment (header bytes
             included; the stored checksum field makes a valid segment fold
             to 0xffff). *)
          let tr = Trace.enabled () in
          let t0 = if tr then Machine.micros (machine t) else 0.0 in
          let acc = Tcp_header.pseudo_acc h ~payload_len in
          let acc =
            Internet.checksum_mem (mem t) ~pos:base ~len:(Tcp_header.size + payload_len)
              ~acc
          in
          if tr then
            Trace.span Trace.Recv_checksum ~packet:(Trace.current_packet ())
              ~ts:t0 ~dur:(Machine.micros (machine t) -. t0);
          if Internet.finish acc <> 0 then Error Bad_checksum
          else begin
            match t.rx_proc with
            | Rx_separate f ->
                if eng_len = 0 then Ok () (* prelude-only segment *)
                else (
                  match f (mem t) ~src:eng_src ~dst_off ~len:eng_len with
                  | Ok () -> Ok ()
                  | Error _ -> Error Bad_length)
            | Rx_raw | Rx_integrated _ -> Ok ()
          end
      | Rx_integrated f -> (
          (* The fused loop computes the payload sum while decrypting and
             unmarshalling; TCP folds in pseudo-header and header and decides
             acceptance afterwards (final stage of the three-stage model).
             A handler that cannot even start its loop (impossible payload
             length) rejects before any checksum verdict.  A framed
             prelude is checksummed by its own charged walk and folded in
             positionally ahead of the engine's accumulator. *)
          let eng_acc =
            if eng_len = 0 then Ok Internet.empty
            else f (mem t) ~src:eng_src ~dst_off ~len:eng_len
          in
          match eng_acc with
          | Error _ -> Error Bad_length
          | Ok acc ->
              let payload_acc =
                if plen = 0 then acc
                else
                  Internet.combine
                    (Internet.checksum_mem (mem t) ~pos:src ~len:plen
                       ~acc:Internet.empty)
                    acc ~len_b:eng_len
              in
              if Tcp_header.checksum h ~payload_acc ~payload_len = h.checksum then
                Ok ()
              else Error Bad_checksum)
  in
  Machine.compute (machine t) t.cfg.control_ops;
  match verdict with
  | Ok () ->
      t.rcv_nxt <- t.rcv_nxt + payload_len;
      t.bytes_delivered <- t.bytes_delivered + payload_len;
      M.inc m_bytes_delivered payload_len;
      (match fr with
      | Some (p, elen) ->
          t.fr_base <- h.seq;
          t.fr_plen <- p;
          t.fr_elen <- elen
      | None -> ());
      if single then begin
        if framed then t.fr_elen <- -1;
        t.on_message ~src:eng_src ~len:eng_len
      end
      else begin
        (match t.rx_proc with
        | Rx_raw ->
            (* Accumulate the raw payload into the reassembly area (the
               charged unmarshal-style copy the engine paths perform
               inside their handlers). *)
            Mem.blit (mem t) ~src ~dst:(t.rx_asm + dst_off) ~len:payload_len
              ~unit_len:t.cfg.blit_unit
        | Rx_separate _ | Rx_integrated _ -> ());
        t.rx_tsdu_off <- dst_off + eng_len;
        if psh then begin
          let n = t.rx_tsdu_off in
          t.rx_tsdu_off <- 0;
          if framed then t.fr_elen <- -1;
          (* [src] points at the raw path's reassembly area; engine-backed
             consumers read the TSDU from their application area. *)
          t.on_message ~src:t.rx_asm ~len:n
        end
      end;
      true
  | Error reason ->
      if reason = Bad_checksum then begin
        t.checksum_failures <- t.checksum_failures + 1;
        M.inc m_checksum_failures 1
      end;
      count_drop t reason;
      false

(* Final placement of an out-of-order segment (the single-copy receive
   path): when the current framed TSDU's extent is known and the segment
   lies wholly inside it, verify and decrypt it at arrival directly at
   its final TSDU offset — no stash copy, no reprocessing at drain time.
   Sound because the engine's receive kernels are stateless per segment
   (no cipher chaining across blocks' positions), exactly the property
   the send side's range fills already rely on.  A corrupt segment is
   dropped and never recorded; its retransmission overwrites whatever
   partial plaintext the failed pass left at [dst_off]. *)
let place_ooo t (h : Tcp_header.t) ~payload_len =
  let open Ilp_checksum in
  let src = t.rx_staging + Tcp_header.size in
  let dst_off = h.seq - t.fr_base - t.fr_plen in
  if Trace.enabled () then ignore (Trace.begin_packet ());
  let verdict =
    match t.rx_proc with
    | Rx_raw -> Error Bad_length (* placement requires an engine handler *)
    | Rx_separate f ->
        let acc = Tcp_header.pseudo_acc h ~payload_len in
        let acc =
          Internet.checksum_mem (mem t) ~pos:t.rx_staging
            ~len:(Tcp_header.size + payload_len) ~acc
        in
        if Internet.finish acc <> 0 then Error Bad_checksum
        else (
          match f (mem t) ~src ~dst_off ~len:payload_len with
          | Ok () -> Ok ()
          | Error _ -> Error Bad_length)
    | Rx_integrated f -> (
        match f (mem t) ~src ~dst_off ~len:payload_len with
        | Error _ -> Error Bad_length
        | Ok payload_acc ->
            if Tcp_header.checksum h ~payload_acc ~payload_len = h.checksum
            then Ok ()
            else Error Bad_checksum)
  in
  Machine.compute (machine t) t.cfg.control_ops;
  match verdict with
  | Ok () ->
      Hashtbl.add t.placed h.seq (payload_len, Tcp_header.has h Tcp_header.psh);
      t.last_ooo_seq <- h.seq;
      t.ooo_placed_n <- t.ooo_placed_n + 1;
      M.inc m_ooo_placed 1
  | Error reason ->
      if reason = Bad_checksum then begin
        t.checksum_failures <- t.checksum_failures + 1;
        M.inc m_checksum_failures 1
      end;
      count_drop t reason

let rec drain_ooo t =
  match Hashtbl.find_opt t.placed t.rcv_nxt with
  | Some (len, psh) ->
      (* Already verified and decrypted at its final offset when it
         arrived: advancing over it is pure bookkeeping — the re-copy the
         legacy stash drain performs has no counterpart here. *)
      Hashtbl.remove t.placed t.rcv_nxt;
      t.rcv_nxt <- t.rcv_nxt + len;
      t.bytes_delivered <- t.bytes_delivered + len;
      M.inc m_bytes_delivered len;
      t.rx_tsdu_off <- t.rx_tsdu_off + len;
      if psh then begin
        let n = t.rx_tsdu_off in
        t.rx_tsdu_off <- 0;
        t.fr_elen <- -1;
        t.on_message ~src:t.rx_asm ~len:n
      end;
      drain_ooo t
  | None -> (
      match Hashtbl.find_opt t.ooo t.rcv_nxt with
      | None -> ()
      | Some (slot, base, payload_len) ->
          Hashtbl.remove t.ooo t.rcv_nxt;
          t.ooo_free.(slot) <- true;
          let h = Tcp_header.read_mem (mem t) ~pos:base in
          if process_data t h ~base ~payload_len then drain_ooo t)

let handle_data t (h : Tcp_header.t) ~payload_len =
  if h.seq = t.rcv_nxt then begin
    if process_data t h ~base:t.rx_staging ~payload_len then begin
      drain_ooo t;
      send_ack t
    end
    (* Invalid checksum: silent drop; the sender's RTO recovers. *)
  end
  else if h.seq < t.rcv_nxt then begin
    (* Duplicate (e.g. a retransmission that crossed our ack).  Report it
       back as a D-SACK first block (RFC 2883) so the sender can tell a
       spurious retransmission from a lost ack; the 1-byte persist probes
       deliberately resend an acknowledged byte and are not reported. *)
    t.duplicates <- t.duplicates + 1;
    M.inc m_duplicates 1;
    if t.cfg.sack && payload_len > 1 then
      t.dsack_pending <- Some (h.seq, h.seq + payload_len);
    send_ack t
  end
  else begin
    (* Out of order: place at the final TSDU offset when the framing
       makes that decidable, otherwise stash the staged segment for
       later processing. *)
    t.out_of_order_n <- t.out_of_order_n + 1;
    M.inc m_out_of_order 1;
    (if Hashtbl.mem t.ooo h.seq || Hashtbl.mem t.placed h.seq then begin
       (* Duplicate of an already-held segment: also a D-SACK case. *)
       if t.cfg.sack && payload_len > 1 then
         t.dsack_pending <- Some (h.seq, h.seq + payload_len)
     end
     else if
       (* Eligible for final placement: framing on, an engine handler
          wired, the current TSDU's extent known from its prelude, and
          the segment wholly inside that extent.  Anything else — a
          TSDU-start arriving out of order, a segment of a future TSDU,
          a raw-path socket — falls back to the legacy stash. *)
       t.rx_framing && t.fr_elen >= 0 && payload_len > 0
       && (match t.rx_proc with Rx_raw -> false | _ -> true)
       && h.seq + payload_len <= t.fr_base + t.fr_plen + t.fr_elen
     then place_ooo t h ~payload_len
     else
       match alloc_ooo_slot t with
       | None ->
           (* No stash slot for this in-window segment: drop and count;
              retransmission will recover. *)
           count_drop t Out_of_window
       | Some slot ->
           let base = t.ooo_base + (slot * seg_max t) in
           Mem.blit (mem t) ~src:t.rx_staging ~dst:base
             ~len:(Tcp_header.size + payload_len) ~unit_len:t.cfg.blit_unit;
           t.ooo_free.(slot) <- false;
           Hashtbl.add t.ooo h.seq (slot, base, payload_len);
           t.last_ooo_seq <- h.seq);
    send_ack t
  end

let handle_ack t (h : Tcp_header.t) ~payload_len =
  (* An optimistic ack covers data this endpoint never sent: no honest
     (or merely lossy) network can produce it, only a peer trying to
     trick the sender into opening its window faster than the real
     round-trip allows.  Abort with a typed reason rather than let the
     forged clock drive transmission. *)
  if Tcp_header.has h Tcp_header.ack_flag && h.ack > t.snd_nxt then
    abort t Misbehaving_peer
  else begin
  let prev_window = t.peer_window in
  t.peer_window <- h.window;
  (* A window update (usually the ack to a persist probe) that makes the
     stalled message sendable ends the persist cycle; the application's
     retry then finds the space.  A probe ack still reporting too little
     space leaves the backoff running. *)
  if t.persist_timer <> None && send_window_space t >= t.persist_want then
    cancel_persist t;
  (* Scoreboard first: the dupack and partial-ack decisions below want
     this ack's selective information already applied. *)
  process_sack t h;
  (* A pure duplicate acknowledgement signals a lost segment ahead of
     still-arriving data: after [dupack_threshold] of them, retransmit the
     first unSACKed segment without waiting for the RTO (fast
     retransmit), then stay in fast recovery until the loss-time highwater
     mark is acknowledged.  An ack whose window differs is a window
     update, not evidence of loss, and does not count. *)
  if
    Tcp_header.has h Tcp_header.ack_flag
    && h.ack = t.snd_una && payload_len = 0
    && h.window = prev_window
    && (not (Tcp_header.has h Tcp_header.syn))
    && (not (Tcp_header.has h Tcp_header.fin))
    && not (Queue.is_empty t.txq)
  then begin
    t.dupacks <- t.dupacks + 1;
    (* SACK-based early retransmit (RFC 5827 style): with fewer segments
       outstanding than the duplicate-ack threshold could ever witness,
       and the scoreboard showing everything but the hole delivered, the
       full threshold is unreachable — lower it to what the flight can
       produce so a tail loss is recovered by fast retransmit instead of
       the RTO. *)
    let dup_thresh =
      let n = Queue.length t.txq in
      if
        t.cfg.sack && n > 0
        && n < 1 + t.cfg.dupack_threshold
        && sacked_segments t = n - 1
      then max 1 (n - 1)
      else t.cfg.dupack_threshold
    in
    if t.dupacks = dup_thresh && not t.in_recovery then begin
      match first_unsacked t with
      | Some seg ->
          t.fast_retransmits <- t.fast_retransmits + 1;
          M.inc m_fast_retransmits 1;
          Recorder.note Recorder.Fast_retransmit ~conn:t.local_port
            ~arg:seg.seq ~ts:(Machine.micros (machine t));
          t.in_recovery <- true;
          t.recover <- t.snd_nxt;
          on_congestion_loss t ~timeout:false;
          if t.cfg.congestion_control then begin
            (* Window inflation: the threshold duplicate acks witness
               segments that left the network (RFC 5681 step 3.2). *)
            t.cwnd <- t.cwnd + (t.cfg.dupack_threshold * t.cfg.mss);
            set_cc_gauges t
          end;
          seg.sack_rexmit <- true;
          seg.sack_rexmit_at <- Simclock.now t.clock;
          retransmit_seg t seg;
          (* With SACK information, every hole the scoreboard can already
             infer goes out in the same recovery round — this is the
             several-holes-per-RTT win over NewReno. *)
          sack_retransmit_holes t;
          arm_rto t
      | None -> ()
    end
    else if t.in_recovery && t.dupacks > dup_thresh then begin
      (* Each further duplicate ack means another segment was delivered:
         inflate and let the pump put new data in flight (RFC 5681 step
         3.4 — this keeps the ack clock ticking during recovery).  The
         inflation is bounded by the number of segments actually
         outstanding: each can produce at most one duplicate ack, so
         anything beyond that is forgery (or wire duplication) and earns
         no window. *)
      if t.cfg.congestion_control && t.dupacks <= Queue.length t.txq
      then begin
        t.cwnd <- t.cwnd + t.cfg.mss;
        set_cc_gauges t
      end;
      sack_retransmit_holes t
    end
  end;
  if Tcp_header.has h Tcp_header.ack_flag && h.ack > t.snd_una then begin
    let newly_acked = h.ack - t.snd_una in
    t.dupacks <- 0;
    if not t.in_recovery then on_congestion_ack t ~acked:newly_acked;
    let sampled = ref false in
    let now = Simclock.now t.clock in
    let rec pop () =
      match Queue.peek_opt t.txq with
      | Some seg when seg.seq + seg.len <= h.ack ->
          ignore (Queue.pop t.txq);
          (* The ring and txq are reserved/queued in lockstep, so a
             successful pop guarantees a live oldest reservation. *)
          (match Ring.release t.ring with Ok () -> () | Error `Empty -> ());
          M.observe m_seg_rexmits seg.rexmits;
          if Trace.enabled () then
            Trace.span ~arg:seg.len Trace.Tcp_segment
              ~packet:(Trace.current_packet ()) ~ts:seg.sent_at
              ~dur:(now -. seg.sent_at);
          if (not seg.rexmit) && not !sampled then begin
            Rto.sample t.rto (now -. seg.sent_at);
            M.observe m_ack_rtt (int_of_float (now -. seg.sent_at));
            sampled := true
          end;
          pop ()
      | _ -> ()
    in
    pop ();
    t.snd_una <- max t.snd_una h.ack;
    if t.in_recovery then begin
      if h.ack >= t.recover then begin
        (* Full ack: recovery over, deflate to ssthresh (RFC 6582). *)
        t.in_recovery <- false;
        Queue.iter (fun s -> s.sack_rexmit <- false) t.txq;
        if t.cfg.congestion_control then begin
          t.cwnd <- t.ssthresh;
          set_cc_gauges t
        end
      end
      else begin
        (* Partial ack: the next hole is known lost — retransmit it
           immediately instead of waiting for three more duplicates,
           then fill any further holes the scoreboard has inferred. *)
        (match first_unsacked t with
        | Some seg ->
            if not seg.sack_rexmit then begin
              seg.sack_rexmit <- true;
              seg.sack_rexmit_at <- Simclock.now t.clock;
              retransmit_seg t seg
            end
        | None -> t.in_recovery <- false);
        sack_retransmit_holes t
      end
    end;
    M.set m_inflight (Queue.length t.txq);
    if Trace.enabled () then
      Trace.instant ~arg:newly_acked Trace.Tcp_ack
        ~packet:(Trace.current_packet ()) ~ts:now;
    t.retries <- 0;
    Rto.reset_backoff t.rto;
    arm_rto t;
    maybe_send_fin t
  end;
  (* Whatever just changed — new data acked, a window update, recovery
     inflation — may have opened room for more stream segments. *)
  pump_streams t
  end

let enter_time_wait t =
  transition t Time_wait;
  Option.iter Simclock.cancel t.tw_timer;
  let timer =
    Simclock.schedule t.clock ~owner:t.owner ~after:(2.0 *. t.cfg.rto_max_us)
      (fun () ->
        t.tw_timer <- None;
        if t.st = Time_wait then transition t Closed)
  in
  t.tw_timer <- Some timer

let handle_datagram t (dgram : Datagram.t) =
  match Ipv4.decapsulate dgram.Datagram.payload with
  | Error _ ->
      t.ip_errors <- t.ip_errors + 1;
      M.inc m_ip_errors 1;
      count_drop t Bad_ip
  | Ok (ip, _) when ip.Ipv4.protocol <> Ipv4.protocol_tcp ->
      t.ip_errors <- t.ip_errors + 1;
      M.inc m_ip_errors 1;
      count_drop t Bad_ip
  | Ok (_, wire) ->
  let total = String.length wire in
  if total < Tcp_header.size then count_drop t Bad_header
  else if total > seg_max t then count_drop t Bad_length
  else begin
    t.segments_received <- t.segments_received + 1;
    M.inc m_segments_received 1;
    Machine.exec (machine t) t.code_kernel;
    Machine.exec (machine t) t.code_ctrl;
    (* Kernel demultiplexing and tcp_input connection lookup. *)
    Machine.compute (machine t) t.cfg.ack_ops;
    (* Network adapter DMA into the kernel buffer: not a CPU cost. *)
    Mem.poke_string (mem t) ~pos:t.kernel_rx wire;
    (* read(): system copy kernel -> user staging, then header parse
       (data offset included: an option area is walked and must be the
       one canonical SACK layout). *)
    Mem.blit (mem t) ~src:t.kernel_rx ~dst:t.rx_staging ~len:total
      ~unit_len:t.cfg.blit_unit;
    let parsed = Tcp_header.read_mem_v (mem t) ~pos:t.rx_staging ~total in
    let h = parsed.Tcp_header.hdr in
    let hdr_len = parsed.Tcp_header.hdr_len in
    if not parsed.Tcp_header.options_ok then
      (* Structurally hostile options (impossible data offset, truncated
         or non-canonical option bytes): drop before trusting any field
         that depends on knowing where the header ends. *)
      count_drop t Bad_header
    else if hdr_len > Tcp_header.size && total > hdr_len then
      (* Options on a data segment would break the paper's fixed-header
         ILP precondition (the fused loop must know the payload offset
         before it starts); this stack only ever puts SACK on pure acks,
         so anything else is a misbehaving peer's frame. *)
      count_drop t Bad_header
    else if
      hdr_len > Tcp_header.size
      && (let open Ilp_checksum in
          let acc = Tcp_header.pseudo_acc h ~payload_len:0 in
          let acc =
            Internet.checksum_mem (mem t) ~pos:t.rx_staging ~len:hdr_len ~acc
          in
          Internet.finish acc <> 0)
    then begin
      (* Pure acks normally skip checksum verification (they carry no
         payload to protect), but the SACK machinery acts on option
         contents — verify before letting a corrupt block reach the
         scoreboard. *)
      t.checksum_failures <- t.checksum_failures + 1;
      M.inc m_checksum_failures 1;
      count_drop t Bad_checksum
    end
    else begin
    let payload_len = total - hdr_len in
    if Tcp_header.has h Tcp_header.rst then begin
      (* Inbound reset.  Count every arrival, but only act on one whose
         sequence number is exactly what this endpoint expects next
         (RFC 5961-style strict acceptance: the resets this stack
         generates always echo the victim's own ack, so an honest reset
         always matches, while a blind off-window forgery is dropped and
         counted). *)
      t.rst_rx_n <- t.rst_rx_n + 1;
      M.inc m_rst_rx 1;
      Recorder.note Recorder.Rst_rx ~conn:t.local_port ~arg:h.seq
        ~ts:(Machine.micros (machine t));
      if Trace.enabled () then
        Trace.instant ~arg:0 Trace.Tcp_rst ~packet:(Trace.current_packet ())
          ~ts:(Machine.micros (machine t));
      match t.st with
      | Closed | Listen -> ()
      | Syn_sent ->
          (* Acceptable only when it acknowledges our SYN. *)
          if Tcp_header.has h Tcp_header.ack_flag && h.ack = t.snd_nxt then
            handle_reset t
          else count_drop t Out_of_window
      | Syn_rcvd | Established | Fin_wait_1 | Fin_wait_2 | Close_wait
      | Last_ack | Time_wait ->
          if h.seq = t.rcv_nxt then handle_reset t
          else count_drop t Out_of_window
    end
    else
    match t.st with
    | Closed ->
        (* A dead connection (crashed host or typed abort) answers with
           RST so the peer stops retransmitting into a black hole; a
           cleanly closed socket stays silent (clean wire traces must be
           byte-identical to the pre-fault-model stack). *)
        if t.destroyed || t.failed <> None then send_rst t h ~payload_len
    | Listen ->
        if Tcp_header.has h Tcp_header.syn then begin
          t.remote_port <- h.src_port;
          t.rcv_nxt <- h.seq + 1;
          t.peer_window <- h.window;
          t.snd_una <- t.iss;
          t.snd_nxt <- t.iss;
          transition t Syn_rcvd;
          send_control t ~flags:(Tcp_header.syn lor Tcp_header.ack_flag);
          t.snd_nxt <- t.snd_nxt + 1;
          arm_ctl_timer t ~flags:(Tcp_header.syn lor Tcp_header.ack_flag)
        end
    | Syn_sent ->
        if
          Tcp_header.has h Tcp_header.syn
          && Tcp_header.has h Tcp_header.ack_flag
          && h.ack = t.snd_nxt
        then begin
          t.rcv_nxt <- h.seq + 1;
          t.peer_window <- h.window;
          t.snd_una <- h.ack;
          transition t Established;
          cancel_ctl_timer t;
          send_ack t
        end
    | Syn_rcvd ->
        if Tcp_header.has h Tcp_header.syn then begin
          (* Retransmitted SYN: our SYN-ACK was lost; resend it with the
             original initial sequence number (snd_nxt already counts the
             SYN). *)
          let h = base_header t ~flags:(Tcp_header.syn lor Tcp_header.ack_flag) in
          let h = { h with seq = t.snd_nxt - 1 } in
          let ck =
            Tcp_header.checksum h ~payload_acc:Ilp_checksum.Internet.empty
              ~payload_len:0
          in
          transmit t { h with checksum = ck } ~payload:None
        end
        else if Tcp_header.has h Tcp_header.ack_flag && h.ack = t.snd_nxt then begin
          t.snd_una <- h.ack;
          t.peer_window <- h.window;
          transition t Established;
          cancel_ctl_timer t;
          if payload_len > 0 then handle_data t h ~payload_len
        end
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Last_ack | Time_wait ->
        ka_note_activity t;
        handle_ack t h ~payload_len;
        (* [handle_ack] may have aborted the connection (optimistic-ack
           forgery): nothing further in this datagram is trusted. *)
        if t.failed = None then begin
          (* A retransmitted SYN-ACK means our final handshake ACK was lost:
             acknowledge again so the peer can leave SYN_RCVD. *)
          if Tcp_header.has h Tcp_header.syn then send_ack t;
          if payload_len > 0 then handle_data t h ~payload_len;
          if Tcp_header.has h Tcp_header.fin && h.seq = t.rcv_nxt then begin
            t.rcv_nxt <- t.rcv_nxt + 1;
            send_ack t;
            match t.st with
            | Established -> transition t Close_wait
            | Fin_wait_1 ->
                (* Simultaneous close or FIN+ACK combined. *)
                if t.snd_una = t.snd_nxt then enter_time_wait t
                else transition t Close_wait
            | Fin_wait_2 -> enter_time_wait t
            | _ -> ()
          end;
          (* FIN acknowledged? *)
          (match t.st with
          | Fin_wait_1 when t.snd_una = t.snd_nxt ->
              cancel_ctl_timer t;
              transition t Fin_wait_2
          | Last_ack when t.snd_una = t.snd_nxt ->
              cancel_ctl_timer t;
              transition t Closed
          | _ -> ())
        end
    end
  end
