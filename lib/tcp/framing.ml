open Ilp_memsim

(* The v2 ("Reverso") stream framing: a cleartext prelude of [seg_unit]
   bytes in front of every streamed TSDU, so the receiver knows each
   arriving segment's final placement offset — and the current TSDU's
   extent — before any decryption runs.  That is what lets the fused
   receive pass land out-of-order segments at their final TSDU offset
   instead of staging them in the reassembly stash.

   Layout (big-endian words, [prelude_len] total bytes, all trailing
   bytes zero):

   {v
   +--------------------------+---------------------------+---0...0---+
   | "ILP\0" | prelude length | TSDU wire length (engine) |  padding  |
   +--------------------------+---------------------------+-----------+
   0                          4                           8           prelude_len
   v}

   The prelude length rides in the magic word's low byte so the receiver
   can parse a prelude of any (8-byte-multiple) size from the first two
   words alone.  Making the prelude exactly one [seg_unit] keeps every
   engine byte range [seg_unit]-aligned: segment offset [off] in the
   framed stream maps to engine offset [off - prelude_len], and the
   engine's alignment precondition is preserved unchanged. *)

let magic_tag = 0x494c5000 (* "ILP\000" *)
let min_prelude = 8

let word0 ~prelude_len = magic_tag lor prelude_len

(* [parse_word0 w] is the prelude length encoded in a valid first word. *)
let parse_word0 w =
  if w land 0xffff_ff00 <> magic_tag then None
  else
    let p = w land 0xff in
    if p >= min_prelude && p mod 8 = 0 then Some p else None

(* The prelude's bytes as they appear on the wire, for host-side checksum
   accumulation (the values are register-resident at build time). *)
let prelude_bytes ~prelude_len ~stream_len =
  let b = Bytes.make prelude_len '\000' in
  Bytes.set_int32_be b 0 (Int32.of_int (word0 ~prelude_len));
  Bytes.set_int32_be b 4 (Int32.of_int stream_len);
  b

(* [framed_stream ~seg_unit ~stream_len ~checksummed ~fill_range] wraps an
   engine [prepared_stream] range filler into the framed form for
   [Socket.send_stream]: ranges at [off >= prelude] pass through to the
   engine shifted by the prelude, the range at [off = 0] writes the
   prelude (charged stores — it is built by the measured CPU) followed by
   the engine's first bytes.  [checksummed] says whether [fill_range]
   returns positional checksum accumulators (ILP mode); when it does, the
   prelude's accumulator is folded in positionally so TCP needs no ring
   pass of its own.  Returns [(total_len, fill)] with
   [total_len = seg_unit + stream_len]. *)
let framed_stream ~seg_unit ~stream_len ~checksummed ~fill_range =
  if seg_unit < min_prelude || seg_unit mod 8 <> 0 then
    invalid_arg "Framing.framed_stream: seg_unit must be a positive multiple of 8";
  let prelude_len = seg_unit in
  let total = prelude_len + stream_len in
  let fill mem ~dst ~off ~len =
    if off > 0 then fill_range mem ~dst ~off:(off - prelude_len) ~len
    else begin
      let pre = prelude_bytes ~prelude_len ~stream_len in
      for i = 0 to (prelude_len / 4) - 1 do
        Mem.set_u32 mem (dst + (4 * i))
          (Int32.to_int (Bytes.get_int32_be pre (4 * i)) land 0xffff_ffff)
      done;
      let rest = len - prelude_len in
      let acc_engine =
        if rest = 0 then Some Ilp_checksum.Internet.empty
        else fill_range mem ~dst:(dst + prelude_len) ~off:0 ~len:rest
      in
      if not checksummed then None
      else
        let acc_pre =
          Ilp_checksum.Internet.add_bytes Ilp_checksum.Internet.empty pre ~off:0
            ~len:prelude_len
        in
        match acc_engine with
        | Some a -> Some (Ilp_checksum.Internet.combine acc_pre a ~len_b:rest)
        | None -> None
    end
  in
  (total, fill)
