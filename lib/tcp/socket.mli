(** The user-level TCP endpoint.

    This reproduces the architecture of the paper's section 3.1: a TCP that
    runs in user space on top of a kernel datagram service, with fixed-size
    headers, one application message per segment (ALF: one TSDU = one
    TPDU), a ring retransmission buffer in simulated memory, cumulative
    acknowledgements, Jacobson RTO with Karn's rule, and flow control from
    the advertised window.

    {2 Where the ILP loop plugs in}

    {b Send}: {!send_message} reserves contiguous ring space and calls the
    caller's [fill] function with its address.  A non-ILP stack fills it
    with a plain charged copy after marshalling and encrypting elsewhere; a
    fused stack marshals, encrypts and checksums while writing.  If [fill]
    returns the payload's checksum accumulator, [tcp_output] uses it;
    otherwise it performs its own charged checksum pass over the ring —
    exactly the difference between figure 3's two columns.

    {b Receive}: after the charged system copy of an in-order segment into
    the receive staging area, the configured {!rx_processing} runs: either
    TCP checksums the segment itself and then hands the payload to a
    separate manipulation pass, or an integrated handler does everything in
    one loop and returns the payload sum for TCP to verify (the paper's
    three-stage processing: the segment is accepted or rejected in the
    final stage). *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Time_wait

val state_to_string : state -> string

type config = {
  mss : int;  (** maximum payload bytes per segment *)
  send_buffer : int;  (** retransmission ring size in bytes *)
  recv_window : int;  (** advertised window *)
  rto_initial_us : float;
  rto_min_us : float;
  rto_max_us : float;
  max_retries : int;
  control_ops : int;
      (** ALU ops charged per data segment for tcp_output/tcp_input state
          processing *)
  ack_ops : int;
      (** ALU ops for the short path: pure control segments and the
          per-segment kernel demultiplex/lookup *)
  blit_unit : int;  (** access width of the copy loops, normally 4 *)
  ack_delay_us : float;
      (** 0 (the default, as in the paper's TCP) acknowledges every data
          segment immediately; > 0 enables RFC 1122-style delayed acks
          with this holding time *)
  dupack_threshold : int;
      (** duplicate acks that trigger a fast retransmit (3) *)
  congestion_control : bool;
      (** RFC 5681-style slow start / congestion avoidance / fast
          recovery on the sender (on by default; the paper's loopback
          experiments are never congestion-limited, but a production
          stack needs it) *)
  persist_initial_us : float;
      (** first zero-window persist probe interval; doubles per probe *)
  persist_max_us : float;  (** persist backoff ceiling *)
  stall_deadline_us : float;
      (** a peer window stalled (too small for the pending message) for
          this long aborts the connection with {!Peer_stalled} *)
}

val default_config : config

type rx_processing =
  | Rx_raw
      (** checksum pass by TCP, payload delivered as-is (control path and
          tests) *)
  | Rx_separate of (Ilp_memsim.Mem.t -> src:int -> len:int -> (unit, string) result)
      (** checksum pass by TCP, then the handler's own passes over the
          staging area (non-ILP); [Error] rejects the segment, which is
          dropped and counted, never delivered *)
  | Rx_integrated of
      (Ilp_memsim.Mem.t ->
      src:int ->
      len:int ->
      (Ilp_checksum.Internet.acc, string) result)
      (** one fused pass returning the payload checksum (ILP); [Error]
          (a length the loop cannot process) rejects the segment before
          any checksum verdict *)

type send_error = Not_established | Message_too_big | Buffer_full | Window_full

(** Why a received datagram was dropped rather than delivered:
    - [Bad_ip]: IP validation failed (bad version/IHL, header checksum,
      length mismatch from wire truncation or padding, wrong protocol);
    - [Bad_header]: too short to carry a 20-byte TCP header;
    - [Bad_length]: segment longer than this connection's maximum, or a
      payload length the configured receive processing rejected;
    - [Bad_checksum]: the end-to-end TCP checksum verdict failed;
    - [Out_of_window]: an in-window out-of-order segment arrived with no
      stash slot free. *)
type drop_reason = Bad_ip | Bad_header | Bad_length | Bad_checksum | Out_of_window

val drop_reasons : drop_reason list
val drop_reason_to_string : drop_reason -> string

(** Why the connection was torn down by the stack rather than by a clean
    close: data, handshake or FIN retransmissions hit [max_retries], or
    the peer's advertised window stayed too small for the pending message
    past [stall_deadline_us] ([Peer_stalled]). *)
type abort_reason =
  | Retry_exhausted
  | Handshake_failed
  | Close_timeout
  | Peer_stalled

val abort_reason_to_string : abort_reason -> string

type t

(** [create sim clock config ~local_port ~wire_out] builds an endpoint.
    [wire_out] injects a datagram into the network (usually
    [Link.send]). *)
val create :
  Ilp_memsim.Sim.t ->
  Ilp_netsim.Simclock.t ->
  config ->
  local_port:int ->
  wire_out:(Ilp_netsim.Datagram.t -> unit) ->
  t

(** Feed a datagram from the network (bind this via {!Demux.bind}). *)
val handle_datagram : t -> Ilp_netsim.Datagram.t -> unit

val connect : t -> remote_port:int -> unit
val listen : t -> unit

(** Half-close after all queued data is acknowledged. *)
val close : t -> unit

val state : t -> state
val local_port : t -> int

(** See module preamble.  [fill mem ~dst] must write exactly [len] bytes at
    [dst] and may return the payload checksum accumulator. *)
val send_message :
  t ->
  len:int ->
  fill:(Ilp_memsim.Mem.t -> dst:int -> Ilp_checksum.Internet.acc option) ->
  (unit, send_error) result

val set_rx_processing : t -> rx_processing -> unit

(** [set_on_message t f] — [f ~src ~len] fires after a data segment is
    accepted in order; [src] is the payload address in the receive staging
    area. *)
val set_on_message : t -> (src:int -> len:int -> unit) -> unit

(** [set_on_abort t f] — [f reason] fires once when retry exhaustion tears
    the connection down ({!failure} is set before the callback runs). *)
val set_on_abort : t -> (abort_reason -> unit) -> unit

(** Why the stack aborted this connection, if it did.  [None] after a
    clean lifecycle; set at the moment the state becomes [Closed] through
    retry exhaustion. *)
val failure : t -> abort_reason option

(** The per-reason drop ledger (every reason, in {!drop_reasons} order). *)
val drops : t -> (drop_reason * int) list

val drop_count : t -> drop_reason -> int
val drops_total : t -> int

(** Bytes sent but not yet acknowledged. *)
val bytes_in_flight : t -> int

(** Free contiguous-capable space in the send ring. *)
val send_space : t -> int

(** Current congestion window in bytes. *)
val congestion_window : t -> int

(** The window most recently advertised by the peer. *)
val peer_window : t -> int

(** The window this endpoint currently advertises. *)
val advertised_window : t -> int

(** Usable send window right now: [min peer_window cwnd - bytes_in_flight],
    clamped to >= 0 (a peer may legally shrink its window below what is
    already in flight). *)
val send_window_space : t -> int

(** [set_advertised_window t w] throttles what this endpoint advertises
    (clamped to [0, recv_window]).  Models a slow or stopped reader: a
    window of 0 makes a conforming sender hold data and run its persist
    timer. *)
val set_advertised_window : t -> int -> unit

type stats = {
  segments_sent : int;
  segments_received : int;
  bytes_sent : int;  (** payload bytes, first transmissions *)
  bytes_delivered : int;
  retransmissions : int;
  checksum_failures : int;
  out_of_order : int;
  duplicates : int;
  acks_sent : int;
  ip_errors : int;  (** datagrams dropped by the kernel's IP validation *)
  fast_retransmits : int;  (** recoveries triggered by duplicate acks *)
  persist_probes : int;  (** zero-window probes sent by the persist timer *)
}

val stats : t -> stats

(** Cycles spent in the send-side system copy (user to kernel boundary)
    since the last call, in microseconds — lets the harness separate
    "packet processing" from "system copy" as the paper's figure 3 does. *)
val take_syscopy_send_us : t -> float
