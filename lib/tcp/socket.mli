(** The user-level TCP endpoint.

    This reproduces the architecture of the paper's section 3.1: a TCP that
    runs in user space on top of a kernel datagram service, with fixed-size
    headers, one application message per segment (ALF: one TSDU = one
    TPDU), a ring retransmission buffer in simulated memory, cumulative
    acknowledgements, Jacobson RTO with Karn's rule, and flow control from
    the advertised window.

    {2 Where the ILP loop plugs in}

    {b Send}: {!send_message} reserves contiguous ring space and calls the
    caller's [fill] function with its address.  A non-ILP stack fills it
    with a plain charged copy after marshalling and encrypting elsewhere; a
    fused stack marshals, encrypts and checksums while writing.  If [fill]
    returns the payload's checksum accumulator, [tcp_output] uses it;
    otherwise it performs its own charged checksum pass over the ring —
    exactly the difference between figure 3's two columns.

    {b Receive}: after the charged system copy of an in-order segment into
    the receive staging area, the configured {!rx_processing} runs: either
    TCP checksums the segment itself and then hands the payload to a
    separate manipulation pass, or an integrated handler does everything in
    one loop and returns the payload sum for TCP to verify (the paper's
    three-stage processing: the segment is accepted or rejected in the
    final stage). *)

type state =
  | Closed
  | Listen
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Time_wait

val state_to_string : state -> string

type config = {
  mss : int;  (** maximum payload bytes per segment *)
  send_buffer : int;  (** retransmission ring size in bytes *)
  recv_window : int;  (** advertised window *)
  rto_initial_us : float;
  rto_min_us : float;
  rto_max_us : float;
  max_retries : int;
  control_ops : int;
      (** ALU ops charged per data segment for tcp_output/tcp_input state
          processing *)
  ack_ops : int;
      (** ALU ops for the short path: pure control segments and the
          per-segment kernel demultiplex/lookup *)
  blit_unit : int;  (** access width of the copy loops, normally 4 *)
  ack_delay_us : float;
      (** 0 (the default, as in the paper's TCP) acknowledges every data
          segment immediately; > 0 enables RFC 1122-style delayed acks
          with this holding time *)
  dupack_threshold : int;
      (** duplicate acks that trigger a fast retransmit (3) *)
  congestion_control : bool;
      (** RFC 5681-style slow start / congestion avoidance / fast
          recovery on the sender (on by default; the paper's loopback
          experiments are never congestion-limited, but a production
          stack needs it) *)
  sack : bool;
      (** selective acknowledgements (RFC 2018/3517), on by default: the
          receiver reports its out-of-order stash as SACK blocks on pure
          acks, and the sender keeps a per-segment scoreboard to
          retransmit every inferred hole per RTT during recovery.  With
          nothing out of order no options are emitted, so a clean-link
          run is wire-identical with this on or off.  Data segments
          never carry options (the paper's fixed-header ILP
          precondition); a data segment arriving with options is dropped
          as [Bad_header]. *)
  ooo_slots : int;
      (** out-of-order stash capacity in segments.  0 (the default)
          auto-sizes to cover a full receive window of MSS segments plus
          reordering slack, [max 8 (recv_window/mss + 4)]; an explicit
          positive value is honoured unchanged.  In-window segments
          beyond the stash are dropped (and recovered by
          retransmission), so an undersized stash degrades a multi-loss
          flight into serial per-RTT recovery — the failure mode the
          auto default exists to prevent *)
  persist_initial_us : float;
      (** first zero-window persist probe interval; doubles per probe *)
  persist_max_us : float;  (** persist backoff ceiling *)
  stall_deadline_us : float;
      (** a peer window stalled (too small for the pending message) for
          this long aborts the connection with {!Peer_stalled} *)
  max_pending_streams : int;
      (** TSDUs {!send_stream} will queue before reporting
          [Buffer_full] — the sender-side backpressure bound *)
  max_tsdu : int;
      (** largest reassembled TSDU the raw receive path accepts (sizes
          the [Rx_raw] reassembly area; clamped up to [mss]).  The
          engine-backed paths bound reassembly by their own
          [max_message] instead. *)
}

val default_config : config

type rx_processing =
  | Rx_raw
      (** checksum pass by TCP, payload delivered as-is (control path and
          tests) *)
  | Rx_separate of
      (Ilp_memsim.Mem.t ->
      src:int ->
      dst_off:int ->
      len:int ->
      (unit, string) result)
      (** checksum pass by TCP, then the handler's own passes over the
          staging area (non-ILP); [dst_off] is this segment's byte offset
          within the TSDU being reassembled (0 for a single-segment
          message); [Error] rejects the segment, which is dropped and
          counted, never delivered *)
  | Rx_integrated of
      (Ilp_memsim.Mem.t ->
      src:int ->
      dst_off:int ->
      len:int ->
      (Ilp_checksum.Internet.acc, string) result)
      (** one fused pass returning the payload checksum (ILP); [dst_off]
          as for [Rx_separate]; [Error] (a length the loop cannot
          process) rejects the segment before any checksum verdict *)

type send_error = Not_established | Message_too_big | Buffer_full | Window_full

(** Why a received datagram was dropped rather than delivered:
    - [Bad_ip]: IP validation failed (bad version/IHL, header checksum,
      length mismatch from wire truncation or padding, wrong protocol);
    - [Bad_header]: too short to carry a 20-byte TCP header;
    - [Bad_length]: segment longer than this connection's maximum, or a
      payload length the configured receive processing rejected;
    - [Bad_checksum]: the end-to-end TCP checksum verdict failed;
    - [Out_of_window]: an in-window out-of-order segment arrived with no
      stash slot free. *)
type drop_reason = Bad_ip | Bad_header | Bad_length | Bad_checksum | Out_of_window

val drop_reasons : drop_reason list
val drop_reason_to_string : drop_reason -> string

(** Why the connection was torn down by the stack rather than by a clean
    close: data, handshake or FIN retransmissions hit [max_retries], the
    peer's advertised window stayed too small for the pending message
    past [stall_deadline_us] ([Peer_stalled]), the peer acknowledged
    sequence space beyond anything this endpoint ever sent — an
    optimistic-ack attack trying to drive the sender faster than the
    real round-trip ([Misbehaving_peer]) — or the peer (typically a
    crashed-and-restarted host that no longer knows the connection)
    answered with an acceptable RST ([Connection_reset]).
    [Connection_reset] is deliberately distinct from [Retry_exhausted]:
    a reset is positive evidence the peer is up but forgot the
    connection, while retry exhaustion is silence. *)
type abort_reason =
  | Retry_exhausted
  | Handshake_failed
  | Close_timeout
  | Peer_stalled
  | Misbehaving_peer
  | Connection_reset

val abort_reason_to_string : abort_reason -> string

(** Verdict of a keepalive probe cycle (see {!start_keepalive}):
    [Peer_alive] — an outstanding probe was answered; [Peer_reset] — a
    probe was answered with RST (half-open connection: the peer
    restarted), the connection aborts with {!Connection_reset};
    [Peer_silent] — the probe budget was exhausted without an answer,
    the connection aborts with {!Retry_exhausted}. *)
type keepalive_verdict = Peer_alive | Peer_reset | Peer_silent

val keepalive_verdict_to_string : keepalive_verdict -> string

type t

(** [create sim clock config ~local_port ~wire_out] builds an endpoint.
    [wire_out] injects a datagram into the network (usually
    [Link.send]). *)
val create :
  Ilp_memsim.Sim.t ->
  Ilp_netsim.Simclock.t ->
  config ->
  local_port:int ->
  wire_out:(Ilp_netsim.Datagram.t -> unit) ->
  t

(** Feed a datagram from the network (bind this via {!Demux.bind}). *)
val handle_datagram : t -> Ilp_netsim.Datagram.t -> unit

val connect : t -> remote_port:int -> unit
val listen : t -> unit

(** Half-close after all queued data is acknowledged. *)
val close : t -> unit

(** Tear the socket down as a crashing host does: no FIN, no abort
    callback — every queue, ring reservation and timer is dropped
    immediately ([Simclock.pending_count ~owner:(timer_owner t)] is 0
    afterwards).  The socket answers later segments with RST (it is a
    dead connection, not a cleanly closed one) and cannot be reused. *)
val destroy : t -> unit

(** True after {!destroy}. *)
val destroyed : t -> bool

(** The {!Ilp_netsim.Simclock} owner id tagging every timer this socket
    schedules — assert [Simclock.pending_count ~owner = 0] after
    {!destroy} or an abort to prove timer hygiene. *)
val timer_owner : t -> int

(** [start_keepalive t ?interval_us ?probes ~on_result ()] monitors an
    established connection for a half-open peer: every [interval_us]
    (default 50ms) of further silence sends one probe (an
    already-acknowledged garbage byte, the persist probe's wire shape).
    Any inbound segment answers an outstanding probe with [Peer_alive]
    (and the monitor keeps running); an acceptable RST reports
    [Peer_reset] and aborts {!Connection_reset}; [probes] (default 3)
    unanswered probes report [Peer_silent] and abort {!Retry_exhausted}.
    Terminal verdicts fire [on_result] before the abort callback. *)
val start_keepalive :
  t ->
  ?interval_us:float ->
  ?probes:int ->
  on_result:(keepalive_verdict -> unit) ->
  unit ->
  unit

val stop_keepalive : t -> unit

(** [reset_for dgram] is the RST a crashed host's address answers [dgram]
    with while the host is down and no socket exists at all: [None] for
    malformed input and for resets (never reset a reset), otherwise the
    RFC 793 reset echoing the segment's acknowledgement (or, for a SYN,
    acknowledging it with [SEQ=0]).  Used by the netsim crash plan's
    reset responder; sockets answer for themselves via their own receive
    path. *)
val reset_for : Ilp_netsim.Datagram.t -> Ilp_netsim.Datagram.t option

val state : t -> state
val local_port : t -> int

(** See module preamble.  [fill mem ~dst] must write exactly [len] bytes at
    [dst] and may return the payload checksum accumulator. *)
val send_message :
  t ->
  len:int ->
  fill:(Ilp_memsim.Mem.t -> dst:int -> Ilp_checksum.Internet.acc option) ->
  (unit, send_error) result

(** [send_stream t ?seg_unit ~len ~fill] queues a [len]-byte TSDU for
    pipelined streaming: the socket cuts it into MSS-sized segments,
    keeps as many in flight as the sliding window allows, and calls
    [fill mem ~dst ~off ~len] once per segment to produce bytes
    [off, off+len) of the TSDU directly in the retransmission ring (one
    fused ILP pass per segment when [fill] returns the payload checksum
    accumulator).  Segment lengths are multiples of [seg_unit] (default
    1; a cipher-block-aligned engine passes its block size), and [len]
    must be a positive multiple of [seg_unit] no larger than what a
    segment can describe.  The final segment carries PSH; the receiver
    reassembles in order and delivers the whole TSDU to [on_message].
    Up to [max_pending_streams] TSDUs queue behind one another
    ([Buffer_full] beyond that); [send_message] also reports
    [Buffer_full] while a stream is pending, so single-message and
    streamed traffic never interleave within a connection. *)
val send_stream :
  t ->
  ?seg_unit:int ->
  len:int ->
  fill:
    (Ilp_memsim.Mem.t -> dst:int -> off:int -> len:int ->
    Ilp_checksum.Internet.acc option) ->
  (unit, send_error) result

(** TSDUs accepted by {!send_stream} and not yet fully transmitted. *)
val pending_streams : t -> int

(** Send-ring wrap count (see {!Ring.wraps}) — witnesses that a
    streaming transfer cycled the retransmission buffer. *)
val ring_wraps : t -> int

val set_rx_processing : t -> rx_processing -> unit

(** [set_rx_framing t on] enables the v2 ("Reverso") framed receive: the
    peer prefixes every streamed TSDU with a cleartext {!Framing} prelude
    carrying the TSDU's engine wire length, which this receiver parses
    (and covers with the segment checksum) to learn each segment's final
    placement offset before decryption.  With the extent known,
    out-of-order segments are verified on arrival and landed at their
    final [dst_off] through the engine handler — no stash blit, no drain
    re-copy.  Requires an engine-backed {!rx_processing} ([Rx_raw]
    sockets ignore the flag).  Both endpoints must agree: a framed
    sender's bytes are not parseable by an unframed receiver and vice
    versa — the RPC layer negotiates this per connection. *)
val set_rx_framing : t -> bool -> unit

val rx_framing : t -> bool

(** [set_on_message t f] — [f ~src ~len] fires once per TSDU.  For a
    single-segment message (PSH with nothing reassembling), [src] is the
    payload address in the receive staging area, exactly as before
    streaming existed.  For a streamed TSDU it fires on the PSH segment
    with the complete reassembled message: under [Rx_raw] [src] is the
    socket's own reassembly buffer; under the engine-backed handlers the
    handler has already placed each segment at its [dst_off] and [src]
    is the reassembly base those offsets are relative to. *)
val set_on_message : t -> (src:int -> len:int -> unit) -> unit

(** [set_on_abort t f] — [f reason] fires once when retry exhaustion tears
    the connection down ({!failure} is set before the callback runs). *)
val set_on_abort : t -> (abort_reason -> unit) -> unit

(** Why the stack aborted this connection, if it did.  [None] after a
    clean lifecycle; set at the moment the state becomes [Closed] through
    retry exhaustion. *)
val failure : t -> abort_reason option

(** The per-reason drop ledger (every reason, in {!drop_reasons} order). *)
val drops : t -> (drop_reason * int) list

val drop_count : t -> drop_reason -> int
val drops_total : t -> int

(** Bytes sent but not yet acknowledged. *)
val bytes_in_flight : t -> int

(** Free contiguous-capable space in the send ring. *)
val send_space : t -> int

(** Current congestion window in bytes. *)
val congestion_window : t -> int

(** The window most recently advertised by the peer. *)
val peer_window : t -> int

(** The window this endpoint currently advertises. *)
val advertised_window : t -> int

(** Usable send window right now: [min peer_window cwnd - bytes_in_flight],
    clamped to >= 0 (a peer may legally shrink its window below what is
    already in flight). *)
val send_window_space : t -> int

(** [set_advertised_window t w] throttles what this endpoint advertises
    (clamped to [0, recv_window]).  Models a slow or stopped reader: a
    window of 0 makes a conforming sender hold data and run its persist
    timer. *)
val set_advertised_window : t -> int -> unit

type stats = {
  segments_sent : int;
  segments_received : int;
  bytes_sent : int;  (** payload bytes, first transmissions *)
  bytes_delivered : int;
  retransmissions : int;
  checksum_failures : int;
  out_of_order : int;
  ooo_placed : int;
      (** out-of-order segments verified and landed at their final TSDU
          offset by the v2 framed receive (subset of [out_of_order]) —
          each one skipped the stash blit and the drain re-copy *)
  duplicates : int;
  acks_sent : int;
  ip_errors : int;  (** datagrams dropped by the kernel's IP validation *)
  fast_retransmits : int;  (** recoveries triggered by duplicate acks *)
  persist_probes : int;  (** zero-window probes sent by the persist timer *)
  peak_in_flight : int;
      (** most payload bytes simultaneously unacknowledged — more than
          one MSS witnesses a pipelined window *)
  rto_fallbacks : int;
      (** retransmission-timer firings with data outstanding — recovery
          episodes fast retransmit / SACK could not finish *)
  sack_blocks_rx : int;
      (** valid SACK blocks accepted into the scoreboard *)
  sack_blocks_tx : int;  (** SACK blocks this receiver put on acks *)
  sack_invalid : int;
      (** SACK blocks rejected: empty/inverted range, beyond [snd_nxt],
          or overlapping another block of the same ack (excepting the
          RFC 2883 D-SACK form — a first block contained in a later one
          reports a duplicate, and counts as spurious instead) *)
  sack_retransmits : int;
      (** hole retransmissions driven by the scoreboard (subset of
          [retransmissions]) *)
  spurious_retransmits : int;
      (** retransmissions the peer reported as duplicates via D-SACK *)
  rst_tx : int;
      (** resets this socket emitted for segments addressed to it while
          dead (aborted or destroyed) *)
  rst_rx : int;  (** resets received (acceptable or not) *)
  keepalive_probes : int;  (** keepalive probes sent *)
}

val stats : t -> stats

(** Resolved out-of-order stash capacity in segments (after the
    [ooo_slots = 0] auto-sizing rule). *)
val ooo_capacity : t -> int

(** Cycles spent in the send-side system copy (user to kernel boundary)
    since the last call, in microseconds — lets the harness separate
    "packet processing" from "system copy" as the paper's figure 3 does. *)
val take_syscopy_send_us : t -> float
