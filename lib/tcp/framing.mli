(** The v2 ("Reverso") stream framing: a cleartext [seg_unit]-sized
    prelude in front of every streamed TSDU carrying the TSDU's wire
    length, so the receiver knows each segment's final placement offset
    — and the TSDU's extent — before any decryption runs.  This is the
    wire-format half of the single-copy receive path: with the extent
    known up front, the fused rx pass can decrypt out-of-order segments
    straight into the placement buffer at their final TSDU offset
    instead of staging them for a later re-copy.

    Framing is negotiated per connection by the RPC layer (a flag word
    on the control request); an unframed connection's wire bytes are
    untouched. *)

(** First prelude word for a [prelude_len]-byte prelude: the magic tag
    with the length in the low byte. *)
val word0 : prelude_len:int -> int

(** [parse_word0 w] is [Some prelude_len] when [w] is a valid framing
    word ([None] otherwise). *)
val parse_word0 : int -> int option

val min_prelude : int

(** [framed_stream ~seg_unit ~stream_len ~checksummed ~fill_range] wraps
    an engine range filler (its TSDU [stream_len] bytes long, every range
    [seg_unit]-aligned) into the framed stream for
    [Socket.send_stream]: [(total_len, fill)] where
    [total_len = seg_unit + stream_len] and [fill] writes the prelude
    (charged stores) ahead of the engine's bytes.  [checksummed] marks a
    [fill_range] that returns positional checksum accumulators (ILP
    mode); the prelude's accumulator is then folded in positionally. *)
val framed_stream :
  seg_unit:int ->
  stream_len:int ->
  checksummed:bool ->
  fill_range:
    (Ilp_memsim.Mem.t ->
    dst:int ->
    off:int ->
    len:int ->
    Ilp_checksum.Internet.acc option) ->
  int
  * (Ilp_memsim.Mem.t ->
    dst:int ->
    off:int ->
    len:int ->
    Ilp_checksum.Internet.acc option)
