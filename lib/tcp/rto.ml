type t = {
  initial_us : float;
  min_us : float;
  max_us : float;
  mutable srtt : float option;
  mutable rttvar : float;
  mutable shift : int;  (* backoff exponent *)
}

let create ?(initial_us = 500_000.0) ?(min_us = 10_000.0) ?(max_us = 64_000_000.0) () =
  { initial_us; min_us; max_us; srtt = None; rttvar = 0.0; shift = 0 }

let sample t rtt =
  (match t.srtt with
  | None ->
      t.srtt <- Some rtt;
      t.rttvar <- rtt /. 2.0
  | Some srtt ->
      let err = rtt -. srtt in
      t.rttvar <- t.rttvar +. ((Float.abs err -. t.rttvar) /. 4.0);
      t.srtt <- Some (srtt +. (err /. 8.0)));
  t.shift <- 0

let base_timeout t =
  match t.srtt with
  | None -> t.initial_us
  | Some srtt -> srtt +. (4.0 *. t.rttvar)

let timeout_us t =
  let v = base_timeout t *. float_of_int (1 lsl t.shift) in
  Float.min t.max_us (Float.max t.min_us v)

let backoff t = if t.shift < 12 then t.shift <- t.shift + 1
let reset_backoff t = t.shift <- 0
let srtt_us t = t.srtt
