let padding n = (4 - (n land 3)) land 3
let padded n = n + padding n

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let uint32 t v =
    if v < 0 || v > 0xffff_ffff then invalid_arg "Xdr.Enc.uint32: out of range";
    Buffer.add_int32_be t (Int32.of_int v)

  let int32 t v =
    if v < -0x8000_0000 || v > 0x7fff_ffff then invalid_arg "Xdr.Enc.int32: out of range";
    uint32 t (v land 0xffff_ffff)

  let hyper t v = Buffer.add_int64_be t v
  let bool t b = uint32 t (if b then 1 else 0)

  let pad t n =
    for _ = 1 to padding n do
      Buffer.add_char t '\000'
    done

  let fixed_opaque t s =
    Buffer.add_string t s;
    pad t (String.length s)

  let opaque t s =
    uint32 t (String.length s);
    fixed_opaque t s

  let raw t s = Buffer.add_string t s

  let length = Buffer.length
  let contents = Buffer.contents
end

module Dec = struct
  type t = { data : string; mutable pos : int }

  exception Error of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
  let of_string data = { data; pos = 0 }

  let sub data ~pos =
    if pos < 0 || pos > String.length data then fail "Xdr.Dec.sub: position %d" pos;
    { data; pos }

  let need t n =
    if t.pos + n > String.length t.data then
      fail "truncated XDR input: need %d bytes at %d, have %d" n t.pos
        (String.length t.data - t.pos)

  let uint32 t =
    need t 4;
    let v = Int32.to_int (String.get_int32_be t.data t.pos) land 0xffff_ffff in
    t.pos <- t.pos + 4;
    v

  let int32 t =
    let v = uint32 t in
    if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

  let hyper t =
    need t 8;
    let v = String.get_int64_be t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let bool t =
    match uint32 t with
    | 0 -> false
    | 1 -> true
    | v -> fail "invalid XDR boolean %d" v

  let fixed_opaque t n =
    if n < 0 then fail "negative opaque length";
    need t (padded n);
    let s = String.sub t.data t.pos n in
    for i = n to padded n - 1 do
      if t.data.[t.pos + i] <> '\000' then fail "nonzero XDR padding"
    done;
    t.pos <- t.pos + padded n;
    s

  let opaque t =
    let n = uint32 t in
    fixed_opaque t n

  let pos t = t.pos
  let remaining t = String.length t.data - t.pos
  let expect_end t = if remaining t <> 0 then fail "%d trailing bytes" (remaining t)
end
