(** XDR (RFC 1014) external data representation: primitive encoders and
    decoders.

    All quantities are big-endian and every item occupies a multiple of
    4 bytes — the 4-byte processing unit that makes marshalling one of the
    paper's word-oriented data manipulation functions. *)

(** [padding n] is the number of zero bytes after [n] payload bytes
    (0..3). *)
val padding : int -> int

(** [padded n] is [n + padding n]. *)
val padded : int -> int

module Enc : sig
  type t

  val create : unit -> t
  val int32 : t -> int -> unit

  (** [uint32] accepts 0 .. 2^32-1. *)
  val uint32 : t -> int -> unit

  val hyper : t -> int64 -> unit
  val bool : t -> bool -> unit

  (** [fixed_opaque e s] emits the bytes of [s] plus padding (length is
      implied by the type, not transmitted). *)
  val fixed_opaque : t -> string -> unit

  (** [opaque e s] emits a length word, the bytes and padding (also the
      encoding of [string<>]). *)
  val opaque : t -> string -> unit

  (** [raw e s] appends bytes verbatim, with no padding — for callers that
      manage alignment themselves (the ILP stub layout). *)
  val raw : t -> string -> unit

  val length : t -> int
  val contents : t -> string
end

module Dec : sig
  type t

  exception Error of string
  (** Raised on truncated or malformed input. *)

  val of_string : string -> t

  (** [sub d ~pos] starts decoding at byte [pos]. *)
  val sub : string -> pos:int -> t

  val int32 : t -> int
  val uint32 : t -> int
  val hyper : t -> int64
  val bool : t -> bool
  val fixed_opaque : t -> int -> string
  val opaque : t -> string
  val pos : t -> int
  val remaining : t -> int

  (** [expect_end d] raises {!Error} if any input remains. *)
  val expect_end : t -> unit
end
