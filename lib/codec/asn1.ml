type ty =
  | Int
  | Uint
  | Hyper
  | Bool
  | Enum of string array
  | Fixed_opaque of int
  | Opaque
  | Str
  | Seq of (string * ty) list
  | Seq_of of ty
  | Choice of (string * ty) array
  | Option of ty

type value =
  | VInt of int
  | VHyper of int64
  | VBool of bool
  | VEnum of int
  | VBytes of string
  | VStr of string
  | VSeq of value list
  | VList of value list
  | VChoice of int * value
  | VNone
  | VSome of value

let rec check ty v =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match (ty, v) with
  | Int, VInt n when n >= -0x8000_0000 && n <= 0x7fff_ffff -> Ok ()
  | Int, VInt n -> err "int out of 32-bit range: %d" n
  | Uint, VInt n when n >= 0 && n <= 0xffff_ffff -> Ok ()
  | Uint, VInt n -> err "unsigned int out of range: %d" n
  | Hyper, VHyper _ -> Ok ()
  | Bool, VBool _ -> Ok ()
  | Enum names, VEnum i when i >= 0 && i < Array.length names -> Ok ()
  | Enum names, VEnum i -> err "enum value %d out of range 0..%d" i (Array.length names - 1)
  | Fixed_opaque n, VBytes s when String.length s = n -> Ok ()
  | Fixed_opaque n, VBytes s ->
      err "fixed opaque: expected %d bytes, got %d" n (String.length s)
  | Opaque, VBytes _ -> Ok ()
  | Str, VStr _ -> Ok ()
  | Seq fields, VSeq vs ->
      if List.length fields <> List.length vs then
        err "sequence: expected %d fields, got %d" (List.length fields) (List.length vs)
      else
        List.fold_left2
          (fun acc (name, fty) fv ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
                match check fty fv with
                | Ok () -> Ok ()
                | Error e -> err "field %s: %s" name e))
          (Ok ()) fields vs
  | Seq_of ety, VList vs ->
      List.fold_left
        (fun acc v -> match acc with Error _ -> acc | Ok () -> check ety v)
        (Ok ()) vs
  | Choice arms, VChoice (i, v) ->
      if i < 0 || i >= Array.length arms then err "choice arm %d out of range" i
      else check (snd arms.(i)) v
  | Option _, VNone -> Ok ()
  | Option ety, VSome v -> check ety v
  | _, _ -> err "value does not match type"

let rec equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VHyper x, VHyper y -> Int64.equal x y
  | VBool x, VBool y -> x = y
  | VEnum x, VEnum y -> x = y
  | VBytes x, VBytes y | VStr x, VStr y -> String.equal x y
  | VSeq xs, VSeq ys | VList xs, VList ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | VChoice (i, x), VChoice (j, y) -> i = j && equal x y
  | VNone, VNone -> true
  | VSome x, VSome y -> equal x y
  | _, _ -> false

let rec pp_ty ppf = function
  | Int -> Format.pp_print_string ppf "INTEGER"
  | Uint -> Format.pp_print_string ppf "UNSIGNED"
  | Hyper -> Format.pp_print_string ppf "HYPER"
  | Bool -> Format.pp_print_string ppf "BOOLEAN"
  | Enum names ->
      Format.fprintf ppf "ENUMERATED {%s}" (String.concat ", " (Array.to_list names))
  | Fixed_opaque n -> Format.fprintf ppf "OPAQUE[%d]" n
  | Opaque -> Format.pp_print_string ppf "OPAQUE"
  | Str -> Format.pp_print_string ppf "STRING"
  | Seq fields ->
      Format.fprintf ppf "SEQUENCE {@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (n, t) -> Format.fprintf ppf "%s %a" n pp_ty t))
        fields
  | Seq_of t -> Format.fprintf ppf "SEQUENCE OF %a" pp_ty t
  | Choice arms ->
      Format.fprintf ppf "CHOICE {@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (n, t) -> Format.fprintf ppf "%s %a" n pp_ty t))
        (Array.to_list arms)
  | Option t -> Format.fprintf ppf "%a OPTIONAL" pp_ty t

let rec pp_value ppf = function
  | VInt n -> Format.pp_print_int ppf n
  | VHyper n -> Format.fprintf ppf "%LdL" n
  | VBool b -> Format.pp_print_bool ppf b
  | VEnum i -> Format.fprintf ppf "enum(%d)" i
  | VBytes s -> Format.fprintf ppf "bytes(%d)" (String.length s)
  | VStr s -> Format.fprintf ppf "%S" s
  | VSeq vs ->
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_value)
        vs
  | VList vs ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_value)
        vs
  | VChoice (i, v) -> Format.fprintf ppf "choice %d: %a" i pp_value v
  | VNone -> Format.pp_print_string ppf "none"
  | VSome v -> Format.fprintf ppf "some %a" pp_value v

let int_exn = function VInt n -> n | _ -> invalid_arg "Asn1.int_exn"
let str_exn = function VStr s -> s | _ -> invalid_arg "Asn1.str_exn"
let bytes_exn = function VBytes s -> s | _ -> invalid_arg "Asn1.bytes_exn"
let seq_exn = function VSeq vs -> vs | _ -> invalid_arg "Asn1.seq_exn"
