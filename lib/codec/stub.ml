type t = { ty : Asn1.ty }

let compile ty = { ty }
let ty t = t.ty

let rec encode enc (ty : Asn1.ty) (v : Asn1.value) =
  match (ty, v) with
  | (Int | Uint), VInt n ->
      if n >= 0 then Xdr.Enc.uint32 enc (n land 0xffff_ffff) else Xdr.Enc.int32 enc n
  | Hyper, VHyper n -> Xdr.Enc.hyper enc n
  | Bool, VBool b -> Xdr.Enc.bool enc b
  | Enum _, VEnum i -> Xdr.Enc.uint32 enc i
  | Fixed_opaque _, VBytes s -> Xdr.Enc.fixed_opaque enc s
  | Opaque, VBytes s -> Xdr.Enc.opaque enc s
  | Str, VStr s -> Xdr.Enc.opaque enc s
  | Seq fields, VSeq vs -> List.iter2 (fun (_, fty) fv -> encode enc fty fv) fields vs
  | Seq_of ety, VList vs ->
      Xdr.Enc.uint32 enc (List.length vs);
      List.iter (encode enc ety) vs
  | Choice arms, VChoice (i, av) ->
      Xdr.Enc.uint32 enc i;
      encode enc (snd arms.(i)) av
  | Option _, VNone -> Xdr.Enc.bool enc false
  | Option ety, VSome ov ->
      Xdr.Enc.bool enc true;
      encode enc ety ov
  | _ -> invalid_arg "Stub: value does not match type"

let rec decode dec (ty : Asn1.ty) : Asn1.value =
  match ty with
  | Int -> VInt (Xdr.Dec.int32 dec)
  | Uint -> VInt (Xdr.Dec.uint32 dec)
  | Hyper -> VHyper (Xdr.Dec.hyper dec)
  | Bool -> VBool (Xdr.Dec.bool dec)
  | Enum names ->
      let i = Xdr.Dec.uint32 dec in
      if i >= Array.length names then
        raise (Xdr.Dec.Error (Printf.sprintf "enum value %d out of range" i));
      VEnum i
  | Fixed_opaque n -> VBytes (Xdr.Dec.fixed_opaque dec n)
  | Opaque -> VBytes (Xdr.Dec.opaque dec)
  | Str -> VStr (Xdr.Dec.opaque dec)
  | Seq fields -> VSeq (List.map (fun (_, fty) -> decode dec fty) fields)
  | Seq_of ety ->
      let n = Xdr.Dec.uint32 dec in
      if n > 0xff_ffff then raise (Xdr.Dec.Error "unreasonable array length");
      VList (List.init n (fun _ -> decode dec ety))
  | Choice arms ->
      let i = Xdr.Dec.uint32 dec in
      if i >= Array.length arms then
        raise (Xdr.Dec.Error (Printf.sprintf "choice arm %d out of range" i));
      VChoice (i, decode dec (snd arms.(i)))
  | Option ety -> if Xdr.Dec.bool dec then VSome (decode dec ety) else VNone

let check_exn ty v =
  match Asn1.check ty v with
  | Ok () -> ()
  | Error e -> invalid_arg ("Stub.marshal: " ^ e)

let marshal_into t v enc =
  check_exn t.ty v;
  encode enc t.ty v

let marshal t v =
  let enc = Xdr.Enc.create () in
  marshal_into t v enc;
  Xdr.Enc.contents enc

let unmarshal_from t dec = decode dec t.ty

let unmarshal t s =
  let dec = Xdr.Dec.of_string s in
  let v = decode dec t.ty in
  Xdr.Dec.expect_end dec;
  v

let rec size_of (ty : Asn1.ty) (v : Asn1.value) =
  match (ty, v) with
  | (Int | Uint | Bool | Enum _), _ -> 4
  | Hyper, _ -> 8
  | Fixed_opaque n, _ -> Xdr.padded n
  | (Opaque | Str), (VBytes s | VStr s) -> 4 + Xdr.padded (String.length s)
  | Seq fields, VSeq vs ->
      List.fold_left2 (fun acc (_, fty) fv -> acc + size_of fty fv) 0 fields vs
  | Seq_of ety, VList vs -> List.fold_left (fun acc v -> acc + size_of ety v) 4 vs
  | Choice arms, VChoice (i, av) -> 4 + size_of (snd arms.(i)) av
  | Option _, VNone -> 4
  | Option ety, VSome ov -> 4 + size_of ety ov
  | _ -> invalid_arg "Stub.size: value does not match type"

let size t v =
  check_exn t.ty v;
  size_of t.ty v
