type source =
  | Immediate of Asn1.value
  | From_memory of { addr : int; len : int }

type segment = Gen of string | App of { addr : int; len : int }

type t = { ty : Asn1.ty }

let compile ty = { ty }
let ty t = t.ty

exception Layout_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Layout_error s)) fmt

type state = {
  mutable segments : segment list;  (* reversed *)
  mutable gen : Xdr.Enc.t;
  sources : source Queue.t;
}

let flush st =
  if Xdr.Enc.length st.gen > 0 then begin
    st.segments <- Gen (Xdr.Enc.contents st.gen) :: st.segments;
    st.gen <- Xdr.Enc.create ()
  end

let next_source st =
  match Queue.take_opt st.sources with
  | Some s -> s
  | None -> fail "not enough sources for the message type"

let encode_immediate st fty v =
  (match Asn1.check fty v with
  | Ok () -> ()
  | Error e -> fail "immediate value does not inhabit its field: %s" e);
  let stub = Stub.compile fty in
  Stub.marshal_into stub v st.gen

(* A memory-resident variable-length field: generated length word, the
   in-place bytes, generated XDR padding. *)
let memory_field st ~with_length ~addr ~len =
  if len < 0 then fail "negative memory field length";
  if with_length then Xdr.Enc.uint32 st.gen len;
  flush st;
  st.segments <- App { addr; len } :: st.segments;
  Xdr.Enc.raw st.gen (String.make (Xdr.padding len) '\000')

let rec walk st (fty : Asn1.ty) =
  match fty with
  | Asn1.Seq fields -> List.iter (fun (_, f) -> walk st f) fields
  | Asn1.Int | Asn1.Uint | Asn1.Hyper | Asn1.Bool | Asn1.Enum _ | Asn1.Seq_of _
  | Asn1.Choice _ | Asn1.Option _ -> (
      match next_source st with
      | Immediate v -> encode_immediate st fty v
      | From_memory _ ->
          fail "From_memory is only valid for opaque and string fields")
  | Asn1.Opaque | Asn1.Str -> (
      match next_source st with
      | Immediate v -> encode_immediate st fty v
      | From_memory { addr; len } -> memory_field st ~with_length:true ~addr ~len)
  | Asn1.Fixed_opaque n -> (
      match next_source st with
      | Immediate v -> encode_immediate st fty v
      | From_memory { addr; len } ->
          if len <> n then fail "fixed opaque of %d bytes given %d" n len;
          memory_field st ~with_length:false ~addr ~len)

let layout t sources =
  let st =
    { segments = []; gen = Xdr.Enc.create (); sources = Queue.of_seq (List.to_seq sources) }
  in
  match
    walk st t.ty;
    if not (Queue.is_empty st.sources) then fail "too many sources for the message type";
    flush st;
    List.rev st.segments
  with
  | segs -> Ok segs
  | exception Layout_error e -> Error e

let total_len segs =
  List.fold_left
    (fun acc -> function Gen s -> acc + String.length s | App a -> acc + a.len)
    0 segs

let flatten mem segs =
  String.concat ""
    (List.map
       (function
         | Gen s -> s
         | App { addr; len } ->
             Bytes.to_string (Ilp_memsim.Mem.peek_bytes mem ~pos:addr ~len))
       segs)
