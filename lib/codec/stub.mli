(** The stub compiler: from an ASN.1-lite description to marshalling code.

    This plays the role of MAVROS in the paper: given a message type, it
    produces the (un)marshalling routines the application calls.  The
    routines work on the XDR representation produced by {!Xdr}. *)

type t

(** [compile ty] builds the stubs for [ty]. *)
val compile : Asn1.ty -> t

val ty : t -> Asn1.ty

(** [marshal t v] type-checks [v] against the description and returns its
    XDR encoding.  Raises [Invalid_argument] when the value does not
    inhabit the type. *)
val marshal : t -> Asn1.value -> string

(** [marshal_into t v enc] appends the encoding to an existing encoder
    (used to place a message after an RPC header). *)
val marshal_into : t -> Asn1.value -> Xdr.Enc.t -> unit

(** [unmarshal t s] decodes a complete message; raises {!Xdr.Dec.Error} on
    malformed input (including trailing bytes). *)
val unmarshal : t -> string -> Asn1.value

(** [unmarshal_from t dec] decodes from the current position of [dec],
    leaving any following bytes unconsumed. *)
val unmarshal_from : t -> Xdr.Dec.t -> Asn1.value

(** [size t v] is [String.length (marshal t v)] without building the
    encoding. *)
val size : t -> Asn1.value -> int
