(** ASN.1-lite: the message-description algebra our stub compiler consumes.

    The paper describes its request and reply formats in ASN.1 and derives
    marshalling code with the MAVROS stub compiler; the generated code uses
    the XDR external representation.  This module gives the same workflow
    in library form: describe a message type as a {!ty}, then
    {!Stub.compile} it into marshalling routines. *)

type ty =
  | Int  (** 32-bit signed, XDR [int] *)
  | Uint  (** 32-bit unsigned *)
  | Hyper  (** 64-bit signed *)
  | Bool
  | Enum of string array  (** named alternatives, encoded as an int *)
  | Fixed_opaque of int  (** exactly n bytes *)
  | Opaque  (** variable-length byte string *)
  | Str  (** variable-length text *)
  | Seq of (string * ty) list  (** SEQUENCE / XDR struct *)
  | Seq_of of ty  (** SEQUENCE OF / variable-length array *)
  | Choice of (string * ty) array  (** CHOICE / discriminated union *)
  | Option of ty  (** OPTIONAL / XDR optional-data *)

type value =
  | VInt of int
  | VHyper of int64
  | VBool of bool
  | VEnum of int
  | VBytes of string  (** for [Fixed_opaque] and [Opaque] *)
  | VStr of string
  | VSeq of value list
  | VList of value list
  | VChoice of int * value
  | VNone
  | VSome of value

(** [check ty v] verifies that [v] inhabits [ty] (field counts, enum and
    choice ranges, fixed-opaque lengths, 32-bit integer range). *)
val check : ty -> value -> (unit, string) result

(** [equal a b] is structural equality on values. *)
val equal : value -> value -> bool

val pp_ty : Format.formatter -> ty -> unit
val pp_value : Format.formatter -> value -> unit

(** Accessors that raise [Invalid_argument] on the wrong constructor —
    convenient when unpicking a just-unmarshalled value. *)
val int_exn : value -> int

val str_exn : value -> string
val bytes_exn : value -> string
val seq_exn : value -> value list
