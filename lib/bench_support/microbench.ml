open Ilp_memsim
module Internet = Ilp_checksum.Internet

type outcome = { sequential_mbps : float; fused_mbps : float }

let array_len = 20 (* integers, as in the paper's introduction *)
let bytes_len = array_len * 4

let simulated ?(machine = Config.ss10_30) () =
  let sim = Sim.create machine in
  let src = Alloc.alloc sim.Sim.alloc ~align:8 bytes_len in
  let dst = Alloc.alloc sim.Sim.alloc ~align:8 bytes_len in
  for i = 0 to array_len - 1 do
    Mem.poke_u32 sim.Sim.mem (src + (4 * i)) (i * 2654435761)
  done;
  let marshal = Ilp_core.Dmf.marshalling sim ~name:"e0-marshal" () in
  let reps = 2000 in
  (* Sequential: the marshalling pass writes the XDR buffer, then the
     checksum pass reads it back. *)
  let run_sequential () =
    Ilp_core.Pipeline.run_pass sim marshal ~src ~dst ~len:bytes_len ();
    ignore
      (Internet.checksum_mem sim.Sim.mem ~pos:dst ~len:bytes_len ~acc:Internet.empty)
  in
  (* Fused: one loop marshals and folds the checksum while the words are
     in registers. *)
  let cell = ref Internet.empty in
  let tap block ~off ~len =
    cell := Internet.add_bytes !cell block ~off ~len;
    Machine.compute sim.Sim.machine (Internet.ops ~len)
  in
  let spec = Ilp_core.Pipeline.spec ~read_unit:4 ~write_unit:4 ~tap [ marshal ] in
  let run_fused () =
    cell := Internet.empty;
    Ilp_core.Pipeline.run_fused sim spec ~src ~dst ~len:bytes_len
  in
  let time f =
    Sim.cold_start sim;
    for _ = 1 to reps do
      f ()
    done;
    Machine.micros sim.Sim.machine
  in
  let t_seq = time run_sequential in
  let t_fused = time run_fused in
  let mbps t = float_of_int (bytes_len * reps * 8) /. t in
  { sequential_mbps = mbps t_seq; fused_mbps = mbps t_fused }

(* ------------------------------------------------------------------ *)
(* Wall-clock version: real OCaml code, real memory, Bechamel timing.  *)

let wall_src = Array.init array_len (fun i -> (i * 2654435761) land 0xffffffff)

let marshal_into buf =
  for i = 0 to array_len - 1 do
    Bytes.set_int32_be buf (4 * i) (Int32.of_int wall_src.(i))
  done

let checksum_of buf =
  let sum = ref 0 in
  for i = 0 to (bytes_len / 2) - 1 do
    sum := !sum + Bytes.get_uint16_be buf (2 * i);
    if !sum > 0xffff then sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let wall_sequential buf () =
  marshal_into buf;
  Sys.opaque_identity (checksum_of buf)

let wall_fused buf () =
  let sum = ref 0 in
  for i = 0 to array_len - 1 do
    let v = wall_src.(i) in
    Bytes.set_int32_be buf (4 * i) (Int32.of_int v);
    sum := !sum + (v lsr 16) + (v land 0xffff);
    if !sum > 0xffff then sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  Sys.opaque_identity (lnot !sum land 0xffff)

(* Run a grouped Bechamel benchmark and return ns/run per test name
   (matched by suffix, since Bechamel prefixes group names). *)
let bechamel_ns ~quota_s tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second quota_s) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  fun name ->
    match
      Hashtbl.fold
        (fun k v acc ->
          if
            String.length k >= String.length name
            && String.sub k (String.length k - String.length name)
                 (String.length name)
               = name
          then Some v
          else acc)
        results None
    with
    | Some est -> (
        match Bechamel.Analyze.OLS.estimates est with
        | Some (ns :: _) -> ns
        | Some [] | None -> nan)
    | None -> nan

let wall_clock ?(quota_s = 0.5) () =
  let open Bechamel in
  let buf = Bytes.create bytes_len in
  let tests =
    Test.make_grouped ~name:"e0"
      [ Test.make ~name:"sequential" (Staged.stage (wall_sequential buf));
        Test.make ~name:"fused" (Staged.stage (wall_fused buf)) ]
  in
  let ns_per_run = bechamel_ns ~quota_s tests in
  let mbps ns = float_of_int (bytes_len * 8) /. (ns /. 1000.0) in
  { sequential_mbps = mbps (ns_per_run "sequential");
    fused_mbps = mbps (ns_per_run "fused") }

let ciphers_wall_clock ?(quota_s = 0.5) () =
  let open Bechamel in
  let block_count = 128 in
  let buf =
    Bytes.init (8 * block_count) (fun i -> Char.chr ((i * 131) land 0xff))
  in
  let key = "wallbenc" in
  let safer6 = Ilp_cipher.Safer.expand_key ~rounds:6 key in
  let safer1 = Ilp_cipher.Safer.expand_key ~rounds:1 key in
  let simplified = Ilp_cipher.Safer_simplified.expand_key key in
  let des = Ilp_cipher.Des.expand_key key in
  let sweep f () =
    for b = 0 to block_count - 1 do
      f buf (b * 8)
    done
  in
  let cases =
    [ ("simple", sweep Ilp_cipher.Simple_cipher.encrypt_block);
      ("safer-simplified", sweep (Ilp_cipher.Safer_simplified.encrypt_block simplified));
      ("safer-k64-1round", sweep (Ilp_cipher.Safer.encrypt_block safer1));
      ("safer-k64-6rounds", sweep (Ilp_cipher.Safer.encrypt_block safer6));
      ("des", sweep (Ilp_cipher.Des.encrypt_block des)) ]
  in
  let tests =
    Test.make_grouped ~name:"ciphers"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) cases)
  in
  let ns_per_run = bechamel_ns ~quota_s tests in
  List.map
    (fun (name, _) ->
      (name, float_of_int (8 * block_count * 8) /. (ns_per_run name /. 1000.0)))
    cases
