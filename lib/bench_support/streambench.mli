(** The [ilpbench stream] driver: goodput of the streaming TCP data path
    — MSS segmentation, pipelined sliding window and congestion control —
    across an impaired simulated link, versus a stop-and-wait baseline.

    One {!transfer} moves [total_bytes] of incompressible payload as a
    sequence of [tsdu_payload]-byte TSDUs through
    [Ilp_tcp.Socket.send_stream]: the engine's
    {!Ilp_core.Engine.prepare_stream_segments} produces each MSS-sized
    segment with one fused marshal+encrypt+checksum pass straight into
    the retransmission ring, the link delays (and optionally drops)
    datagrams, and the receiver reassembles, decrypts and verifies every
    byte.  Elapsed time is {e simulated} time, so goodput depends on the
    configured RTT and loss — not on this host.

    [Stop_and_wait] is the degenerate window: the receiver advertises
    exactly one MSS, so precisely one segment is ever in flight — the
    latency-bound baseline a pipelined window must beat.

    {!run} sweeps a mode x RTT x loss grid and {!check} gates the result
    (the CI stream-smoke job): pipelined goodput at least 4x stop-and-wait
    on the clean 10 ms-RTT cell, every cell byte-exact.  With
    [~sack_compare:true] the sweep adds a pipelined NewReno (SACK-off)
    baseline and {!check} additionally gates SACK loss recovery: at
    least [min_sack_ratio] (default 2x) the NewReno goodput on the
    10 ms / 5%-loss cell with strictly fewer RTO fallbacks, and a
    byte-identical wire on the clean cell (SACK must cost nothing when
    nothing is lost).  Results serialise to BENCH_stream.json. *)

type mode = Pipelined | Stop_and_wait

val mode_name : mode -> string

type config = {
  total_bytes : int;  (** application payload to move *)
  tsdu_payload : int;  (** payload bytes per TSDU (many MSS each) *)
  mss : int;  (** TCP maximum segment size (multiple of 8) *)
  rtt_us : float;  (** simulated round-trip time *)
  loss_rate : float;  (** independent datagram loss probability *)
  seed : int;
  machine : Ilp_memsim.Config.t;
  mode : mode;
  sack : bool;  (** SACK loss recovery on the data connection *)
  native : bool;
      (** native fast-path kernels (the default for benchmarking; the
          simulated backend charges every byte through the memory
          simulator and is only practical for small tests) *)
  deadline_us : float;  (** simulated-time budget for the transfer *)
}

(** 2 MiB in 32 KiB TSDUs, MSS 1448, clean 10 ms RTT, pipelined,
    native, on the SS10/30 model. *)
val default_config : config

type outcome = {
  ok : bool;  (** every TSDU delivered in order, byte-exact *)
  error : string option;
  payload_bytes : int;  (** bytes verified at the receiver *)
  tsdus : int;  (** TSDUs delivered *)
  elapsed_us : float;  (** simulated time, handshake excluded *)
  goodput_mbps : float;  (** payload_bytes * 8 / elapsed_us *)
  segments : int;
  retransmissions : int;
  fast_retransmits : int;
  rto_fallbacks : int;
      (** retransmission timeouts — the recovery of last resort SACK is
          meant to avoid *)
  peak_in_flight : int;
      (** most payload bytes simultaneously unacknowledged: > one MSS
          only under a pipelined window *)
  ring_wraps : int;
      (** send-ring wrap-arounds — a multi-megabyte transfer must cycle
          the ring *)
  final_cwnd : int;  (** congestion window when the transfer finished *)
  wire_digest : int;
      (** rolling digest over every datagram offered to the wire (both
          directions, send order): equal digests mean byte-identical
          wires *)
}

(** Run one transfer.  Raises [Invalid_argument] on a malformed config
    (non-positive sizes, MSS not a multiple of 8, ...). *)
val transfer : config -> outcome

type point = {
  p_mode : mode;
  p_sack : bool;
  p_rtt_us : float;
  p_loss : float;
  p_out : outcome;
}

type result = {
  cfg : config;  (** grid base; each point overrides mode/sack/rtt/loss *)
  points : point list;
  gate_ratio : float;
      (** pipelined / stop-and-wait goodput on the clean 10 ms cell
          (0 when the grid lacks that cell) *)
  sack_ratio : float;
      (** pipelined SACK / NewReno goodput on the 10 ms, 5%-loss cell
          (0 unless the run carried both variants) *)
}

(** Sweep the grid: both modes x RTT {2, 10 ms} x loss {0, 1%, 5%, 10%}.
    [quick] shrinks the transfer and the grid for CI.  [sack_compare]
    adds a pipelined sweep with SACK inverted (a NewReno baseline under
    the default config), enabling the SACK gates in {!check}. *)
val run : ?quick:bool -> ?sack_compare:bool -> ?config:config -> unit -> result

(** The stream gates: every cell byte-exact, stop-and-wait strictly
    serial (peak_in_flight = 1), pipelined cells actually pipelined, and
    [gate_ratio >= min_ratio] (default 4.0).  When the run carried both
    SACK variants (see {!run}): [sack_ratio >= min_sack_ratio] (default
    2.0), strictly fewer RTO fallbacks with SACK on the lossy gate cell,
    and equal [wire_digest] on the clean cell. *)
val check :
  ?min_ratio:float -> ?min_sack_ratio:float -> result ->
  (unit, string list) Stdlib.result

val to_json : result -> string
val write_json : result -> path:string -> unit
val print_table : result -> unit
