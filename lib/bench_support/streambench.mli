(** The [ilpbench stream] driver: goodput of the streaming TCP data path
    — MSS segmentation, pipelined sliding window and congestion control —
    across an impaired simulated link, versus a stop-and-wait baseline.

    One {!transfer} moves [total_bytes] of incompressible payload as a
    sequence of [tsdu_payload]-byte TSDUs through
    [Ilp_tcp.Socket.send_stream]: the engine's
    {!Ilp_core.Engine.prepare_stream_segments} produces each MSS-sized
    segment with one fused marshal+encrypt+checksum pass straight into
    the retransmission ring, the link delays (and optionally drops)
    datagrams, and the receiver reassembles, decrypts and verifies every
    byte.  Elapsed time is {e simulated} time, so goodput depends on the
    configured RTT and loss — not on this host.

    [Stop_and_wait] is the degenerate window: the receiver advertises
    exactly one MSS, so precisely one segment is ever in flight — the
    latency-bound baseline a pipelined window must beat.

    {!run} sweeps a mode x RTT x loss grid and {!check} gates the result
    (the CI stream-smoke job): pipelined goodput at least 4x stop-and-wait
    on the clean 10 ms-RTT cell, every cell byte-exact.  Results
    serialise to BENCH_stream.json. *)

type mode = Pipelined | Stop_and_wait

val mode_name : mode -> string

type config = {
  total_bytes : int;  (** application payload to move *)
  tsdu_payload : int;  (** payload bytes per TSDU (many MSS each) *)
  mss : int;  (** TCP maximum segment size (multiple of 8) *)
  rtt_us : float;  (** simulated round-trip time *)
  loss_rate : float;  (** independent datagram loss probability *)
  seed : int;
  machine : Ilp_memsim.Config.t;
  mode : mode;
  native : bool;
      (** native fast-path kernels (the default for benchmarking; the
          simulated backend charges every byte through the memory
          simulator and is only practical for small tests) *)
  deadline_us : float;  (** simulated-time budget for the transfer *)
}

(** 2 MiB in 32 KiB TSDUs, MSS 1448, clean 10 ms RTT, pipelined,
    native, on the SS10/30 model. *)
val default_config : config

type outcome = {
  ok : bool;  (** every TSDU delivered in order, byte-exact *)
  error : string option;
  payload_bytes : int;  (** bytes verified at the receiver *)
  tsdus : int;  (** TSDUs delivered *)
  elapsed_us : float;  (** simulated time, handshake excluded *)
  goodput_mbps : float;  (** payload_bytes * 8 / elapsed_us *)
  segments : int;
  retransmissions : int;
  fast_retransmits : int;
  peak_in_flight : int;
      (** most payload bytes simultaneously unacknowledged: > one MSS
          only under a pipelined window *)
  ring_wraps : int;
      (** send-ring wrap-arounds — a multi-megabyte transfer must cycle
          the ring *)
  final_cwnd : int;  (** congestion window when the transfer finished *)
}

(** Run one transfer.  Raises [Invalid_argument] on a malformed config
    (non-positive sizes, MSS not a multiple of 8, ...). *)
val transfer : config -> outcome

type point = { p_mode : mode; p_rtt_us : float; p_loss : float; p_out : outcome }

type result = {
  cfg : config;  (** grid base; each point overrides mode/rtt/loss *)
  points : point list;
  gate_ratio : float;
      (** pipelined / stop-and-wait goodput on the clean 10 ms cell
          (0 when the grid lacks that cell) *)
}

(** Sweep the grid: both modes x RTT {2, 10 ms} x loss {0, 1%, 5%}.
    [quick] shrinks the transfer and the grid for CI. *)
val run : ?quick:bool -> ?config:config -> unit -> result

(** The stream gates: every cell byte-exact, stop-and-wait strictly
    serial (peak_in_flight = 1), pipelined cells actually pipelined, and
    [gate_ratio >= min_ratio] (default 4.0). *)
val check : ?min_ratio:float -> result -> (unit, string list) Stdlib.result

val to_json : result -> string
val write_json : result -> path:string -> unit
val print_table : result -> unit
