(** One runner per reproduced table/figure/ablation (the experiment index
    of DESIGN.md).  Each prints a paper-versus-measured table on stdout.
    Runs are cached, so regenerating several figures that share a
    configuration costs one simulation. *)

(** E0: the intro micro-experiment (simulated and wall-clock). *)
val e0 : unit -> unit

(** Figure 6: receive packet processing, 1 kB packets, all machines. *)
val f6 : unit -> unit

(** Figure 7: send packet processing, 1 kB packets, all machines. *)
val f7 : unit -> unit

(** Figure 8: throughput, 1 kB packets, all machines. *)
val f8 : unit -> unit

(** Figure 9: throughput versus packet size, four machines. *)
val f9 : unit -> unit

(** Figure 10: packet processing versus packet size, four machines. *)
val f10 : unit -> unit

(** Figure 11: processing with simplified SAFER vs simple encryption. *)
val f11 : unit -> unit

(** Figure 12: throughput including the kernel-TCP profile. *)
val f12 : unit -> unit

(** Figure 13: memory accesses, normalised to the paper's 10.7 MB. *)
val f13 : unit -> unit

(** Figure 14: cache misses and miss ratios. *)
val f14 : unit -> unit

(** Table 1: the full machines x sizes grid. *)
val t1 : unit -> unit

(** Ablation: macro inlining vs function calls (section 3.2.1). *)
val a1 : unit -> unit

(** Ablation: LCM-sized stores vs the cipher's natural byte stores
    (section 2.2). *)
val a2 : unit -> unit

(** Ablation: trailer-placed length field (section 5). *)
val a4 : unit -> unit

(** Ablation: receive-side manipulation placement (section 3.2.3). *)
val a5 : unit -> unit

(** Ablation: uniform processing-unit sizes (section 5). *)
val a6 : unit -> unit

(** Wall-clock Bechamel benchmark of the pure cipher kernels. *)
val wall : unit -> unit

(** Wall-clock {!Wallbench} trajectory of the native fast path (separate
    versus fused send/receive); writes BENCH_wall.json. *)
val wallpath : unit -> unit

(** The full Table 1 grid, paper and measured, as CSV (for plotting). *)
val t1_csv : unit -> string

(** All of the above, in order. *)
val all : unit -> unit

(** Names accepted by {!run_named}. *)
val names : string list

val run_named : string -> (unit, string) result
