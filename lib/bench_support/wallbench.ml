module Internet = Ilp_checksum.Internet
module Cipher = Ilp_fastpath.Cipher
module Wire = Ilp_fastpath.Wire
module Trace = Ilp_obs.Trace
module M = Ilp_obs.Metrics

type side = {
  send_ns : float;
  recv_ns : float;
  minor_words : float;
  minor_words_rx : float;
}

type point = {
  len : int;
  reps : int;
  separate : side;
  ilp : side;
  speedup : float;
}

type result = {
  cipher : string;
  trials : int;
  warmup : int;
  points : point list;
}

let key = "\x3a\x91\x5c\x07\xee\x42\xb8\x1d"

let cipher_names = [ "simple"; "safer-simplified"; "safer-k64"; "des" ]

let cipher_of_name = function
  | "simple" -> Ok Cipher.Simple
  | "safer-simplified" | "simplified" ->
      Ok (Cipher.Safer_simplified (Ilp_cipher.Safer_simplified.expand_key key))
  | "safer" | "safer-k64" ->
      Ok (Cipher.Safer (Ilp_cipher.Safer.expand_key ~rounds:6 key))
  | "des" -> Ok (Cipher.Des (Ilp_cipher.Des.expand_key key))
  | other ->
      Error
        (Printf.sprintf "unknown cipher %S (try: %s)" other
           (String.concat ", " cipher_names))

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* Median ns per message over [trials] samples, [warmup] discarded. *)
let time_median ~trials ~warmup ~reps f =
  let sample () =
    let t0 = now_ns () in
    for _ = 1 to reps do
      f ()
    done;
    (now_ns () -. t0) /. float_of_int reps
  in
  for _ = 1 to warmup do
    ignore (sample ())
  done;
  let samples = Array.init trials (fun _ -> sample ()) in
  Array.sort compare samples;
  Report.percentile_sorted samples 0.5

(* Repetitions so one trial runs for at least [budget_ns]: double a probe
   count until the probe takes >= 1/4 of the budget, then scale. *)
let calibrate ~budget_ns f =
  let rec probe k =
    let t0 = now_ns () in
    for _ = 1 to k do
      f ()
    done;
    let dt = now_ns () -. t0 in
    if dt >= budget_ns /. 4.0 || k >= 1 lsl 20 then
      max 1 (int_of_float (float_of_int k *. budget_ns /. dt))
    else probe (k * 2)
  in
  probe 1

(* The two paths must agree before we time them; a benchmark of kernels
   producing different bytes would compare nothing. *)
let cross_check wire ~src ~len =
  let d1 = Bytes.create len and d2 = Bytes.create len in
  let a1 = Wire.send_separate wire ~src ~src_off:0 ~len ~dst:d1 ~dst_off:0 in
  let a2 = Wire.send_ilp wire ~src ~src_off:0 ~len ~dst:d2 ~dst_off:0 in
  if not (Bytes.equal d1 d2) then
    failwith "Wallbench: separate and ILP send disagree on wire bytes";
  if Internet.finish a1 <> Internet.finish a2 then
    failwith "Wallbench: separate and ILP send disagree on checksum";
  let p1 = Bytes.create len and p2 = Bytes.create len in
  let c1 = Bytes.copy d1 in
  let r1 = Wire.recv_separate wire ~src:c1 ~src_off:0 ~len ~dst:p1 ~dst_off:0 in
  let r2 = Wire.recv_ilp wire ~src:d2 ~src_off:0 ~len ~dst:p2 ~dst_off:0 in
  if not (Bytes.equal p1 p2 && Bytes.equal p1 (Bytes.sub src 0 len)) then
    failwith "Wallbench: receive paths do not invert the send path";
  if Internet.finish r1 <> Internet.finish r2 then
    failwith "Wallbench: separate and ILP receive disagree on checksum";
  d1

let bench_point wire ~trials ~warmup ~src len =
  let ciphertext = cross_check wire ~src ~len in
  let dst = Bytes.create len in
  let staged = Bytes.create len in
  let sink = ref Internet.empty in
  let send_sep () =
    sink := Wire.send_separate wire ~src ~src_off:0 ~len ~dst ~dst_off:0
  in
  let send_ilp () =
    sink := Wire.send_ilp wire ~src ~src_off:0 ~len ~dst ~dst_off:0
  in
  (* [recv_separate] decrypts its source in place, so each repetition
     restores the pristine ciphertext first; the ILP side pays the same
     blit to keep the comparison about the traversal structure. *)
  let recv_sep () =
    Bytes.blit ciphertext 0 staged 0 len;
    sink := Wire.recv_separate wire ~src:staged ~src_off:0 ~len ~dst ~dst_off:0
  in
  let recv_ilp () =
    Bytes.blit ciphertext 0 staged 0 len;
    sink := Wire.recv_ilp wire ~src:staged ~src_off:0 ~len ~dst ~dst_off:0
  in
  let budget_ns = 2e6 in
  let reps = calibrate ~budget_ns send_sep in
  let t f = time_median ~trials ~warmup ~reps f in
  (* Allocation rate: minor-heap words per message (send + recv), via
     [Gc.minor_words] deltas — the GC-pressure side of the single-copy
     story, alongside the latency medians. *)
  let mw f =
    let n = 64 in
    f ();
    let w0 = Gc.minor_words () in
    for _ = 1 to n do
      f ()
    done;
    (Gc.minor_words () -. w0) /. float_of_int n
  in
  let separate =
    let tx = mw send_sep and rx = mw recv_sep in
    { send_ns = t send_sep; recv_ns = t recv_sep;
      minor_words = tx +. rx; minor_words_rx = rx }
  in
  let ilp =
    let tx = mw send_ilp and rx = mw recv_ilp in
    { send_ns = t send_ilp; recv_ns = t recv_ilp;
      minor_words = tx +. rx; minor_words_rx = rx }
  in
  ignore (Sys.opaque_identity !sink);
  let speedup =
    (separate.send_ns +. separate.recv_ns) /. (ilp.send_ns +. ilp.recv_ns)
  in
  { len; reps; separate; ilp; speedup }

let default_sizes = [ 1024; 8192; 65536; 524288 ]

let run ?(cipher = Cipher.Simple) ?(sizes = default_sizes) ?(trials = 9)
    ?(warmup = 3) () =
  if sizes = [] then invalid_arg "Wallbench.run: no sizes";
  List.iter
    (fun n ->
      if n <= 0 || n mod 8 <> 0 then
        invalid_arg
          (Printf.sprintf "Wallbench.run: size %d is not a positive multiple of 8" n))
    sizes;
  if trials < 1 || warmup < 0 then invalid_arg "Wallbench.run: bad trials/warmup";
  let max_len = List.fold_left max 0 sizes in
  let wire = Wire.create ~cipher ~max_len () in
  let src = Bytes.init max_len (fun i -> Char.chr ((i * 131 + 17) land 0xff)) in
  let points =
    List.map (bench_point wire ~trials ~warmup ~src) (List.sort compare sizes)
  in
  { cipher = Cipher.name cipher; trials; warmup; points }

(* ------------------------------------------------------------------ *)
(* JSON trajectory (hand-rolled; the container has no JSON library).  *)

let json_side b name s =
  Buffer.add_string b
    (Printf.sprintf
       "\"%s\": {\"send_ns\": %.1f, \"recv_ns\": %.1f, \"total_ns\": %.1f, \
        \"minor_words_per_msg\": %.1f, \"minor_words_rx_per_msg\": %.1f}"
       name s.send_ns s.recv_ns (s.send_ns +. s.recv_ns) s.minor_words
       s.minor_words_rx)

(* ------------------------------------------------------------------ *)
(* Per-stage time share (the --trace table): run the same kernels with
   the span tracer on and aggregate span durations by stage.  Separate
   spans are real wall-clock intervals; ILP spans carry the fused loop's
   whole duration on encrypt/decrypt with the fused-away stages at zero,
   so the table shows exactly where the traversal time went and what
   fusion collapsed. *)

type stage_cell = { stage_label : string; sep_ns : float; ilp_ns : float }

type stage_point = {
  s_len : int;
  s_reps : int;
  cells : stage_cell list;
  sep_total_ns : float;
  ilp_total_ns : float;
}

let stage_order =
  Trace.
    [ Send_marshal; Send_encrypt; Send_ring_copy; Send_checksum; Recv_checksum;
      Recv_decrypt; Recv_unmarshal ]

let collect_stage_ns ~reps =
  let acc = Hashtbl.create 8 in
  List.iter
    (fun (s : Trace.span_rec) ->
      if not s.Trace.is_instant then
        let cur = try Hashtbl.find acc s.Trace.stage with Not_found -> 0.0 in
        Hashtbl.replace acc s.Trace.stage (cur +. s.Trace.dur))
    (Trace.spans ());
  fun stage ->
    (try Hashtbl.find acc stage with Not_found -> 0.0)
    *. 1000.0 /. float_of_int reps

let stages ?(cipher = Cipher.Simple) ?(sizes = [ 4096; 65536 ]) ?(reps = 256) ()
    =
  if sizes = [] then invalid_arg "Wallbench.stages: no sizes";
  List.iter
    (fun n ->
      if n <= 0 || n mod 8 <> 0 then
        invalid_arg
          (Printf.sprintf
             "Wallbench.stages: size %d is not a positive multiple of 8" n))
    sizes;
  if reps < 1 then invalid_arg "Wallbench.stages: bad reps";
  let max_len = List.fold_left max 0 sizes in
  let wire = Wire.create ~cipher ~max_len () in
  let src = Bytes.init max_len (fun i -> Char.chr ((i * 131 + 17) land 0xff)) in
  let was_enabled = Trace.enabled () in
  Trace.set_clock (fun () -> now_ns () /. 1000.0);
  let points =
    List.map
      (fun len ->
        let ciphertext = cross_check wire ~src ~len in
        let dst = Bytes.create len in
        let staged = Bytes.create len in
        let sink = ref Internet.empty in
        let one ~ilp () =
          if ilp then
            sink := Wire.send_ilp wire ~src ~src_off:0 ~len ~dst ~dst_off:0
          else
            sink := Wire.send_separate wire ~src ~src_off:0 ~len ~dst ~dst_off:0;
          Bytes.blit ciphertext 0 staged 0 len;
          if ilp then
            sink := Wire.recv_ilp wire ~src:staged ~src_off:0 ~len ~dst ~dst_off:0
          else
            sink :=
              Wire.recv_separate wire ~src:staged ~src_off:0 ~len ~dst ~dst_off:0
        in
        let run_mode ~ilp =
          let f = one ~ilp in
          for _ = 1 to max 8 (reps / 8) do
            f () (* warm *)
          done;
          Trace.enable ~capacity:(max 1024 ((reps * 8) + 64)) ();
          for _ = 1 to reps do
            ignore (Trace.begin_packet ());
            f ()
          done;
          let get = collect_stage_ns ~reps in
          Trace.disable ();
          get
        in
        let sep = run_mode ~ilp:false in
        let ilp = run_mode ~ilp:true in
        ignore (Sys.opaque_identity !sink);
        let cells =
          List.map
            (fun st ->
              { stage_label = Trace.stage_cat st ^ "/" ^ Trace.stage_name st;
                sep_ns = sep st;
                ilp_ns = ilp st })
            stage_order
        in
        let total f = List.fold_left (fun a c -> a +. f c) 0.0 cells in
        { s_len = len;
          s_reps = reps;
          cells;
          sep_total_ns = total (fun c -> c.sep_ns);
          ilp_total_ns = total (fun c -> c.ilp_ns) })
      (List.sort compare sizes)
  in
  if not was_enabled then Trace.disable ();
  points

let print_stage_tables points =
  List.iter
    (fun p ->
      Report.note "%d-byte messages, per-stage wall time (mean over %d msgs)
"
        p.s_len p.s_reps;
      let pct total ns = if total <= 0.0 then 0.0 else 100.0 *. ns /. total in
      Report.table
        ~header:[ "stage"; "sep ns/msg"; "sep %"; "ilp ns/msg"; "ilp %" ]
        (List.map
           (fun c ->
             [ c.stage_label;
               Printf.sprintf "%.0f" c.sep_ns;
               Printf.sprintf "%.1f" (pct p.sep_total_ns c.sep_ns);
               Printf.sprintf "%.0f" c.ilp_ns;
               Printf.sprintf "%.1f" (pct p.ilp_total_ns c.ilp_ns) ])
           p.cells
        @ [ [ "total";
              Printf.sprintf "%.0f" p.sep_total_ns;
              "100.0";
              Printf.sprintf "%.0f" p.ilp_total_ns;
              "100.0" ] ]);
      Report.note
        "ilp fused stages (0 ns) ran inside the fused pass; their time is \
         attributed to send/encrypt and recv/decrypt\n\n")
    points

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"benchmark\": \"wall\",\n  \"unit\": \"ns_per_msg\",\n\
       \  \"cipher\": \"%s\",\n  \"trials\": %d,\n  \"warmup\": %d,\n\
       \  \"points\": [\n"
       r.cipher r.trials r.warmup);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "    {\"len\": %d, \"reps\": %d, " p.len p.reps);
      json_side b "separate" p.separate;
      Buffer.add_string b ", ";
      json_side b "ilp" p.ilp;
      Buffer.add_string b (Printf.sprintf ", \"speedup\": %.3f}" p.speedup))
    r.points;
  Buffer.add_string b "\n  ],\n  \"obs\": ";
  Buffer.add_string b (M.to_json (M.snapshot M.default));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write_json r ~path =
  let oc = open_out path in
  output_string oc (to_json r);
  close_out oc

let print_table r =
  let ns = Printf.sprintf "%.0f" in
  Report.table
    ~header:
      [ "bytes"; "sep send ns"; "ilp send ns"; "sep recv ns"; "ilp recv ns";
        "speedup"; "sep mw/msg"; "ilp mw/msg"; "sep rx mw"; "ilp rx mw" ]
    (List.map
       (fun p ->
         [ string_of_int p.len;
           ns p.separate.send_ns;
           ns p.ilp.send_ns;
           ns p.separate.recv_ns;
           ns p.ilp.recv_ns;
           Printf.sprintf "%.2fx" p.speedup;
           ns p.separate.minor_words;
           ns p.ilp.minor_words;
           ns p.separate.minor_words_rx;
           ns p.ilp.minor_words_rx ])
       r.points);
  Report.note "cipher %s, median of %d trials (%d warmup), host wall-clock\n"
    r.cipher r.trials r.warmup
