type t1_row = {
  platform : string;
  size : int;
  tput_ilp : float;
  tput_non : float;
  send_ilp : int;
  recv_ilp : int;
  send_non : int;
  recv_non : int;
}

let r platform size tput_ilp tput_non send_ilp recv_ilp send_non recv_non =
  { platform; size; tput_ilp; tput_non; send_ilp; recv_ilp; send_non; recv_non }

let table1 =
  [ (* SUN SPARCstation 10-30, SunOS 4.1.3 *)
    r "SS10-30" 256 1.74 1.58 128 118 124 141;
    r "SS10-30" 512 3.22 2.58 187 176 201 228;
    r "SS10-30" 768 4.35 4.15 260 263 289 280;
    r "SS10-30" 1024 5.43 4.95 311 300 369 356;
    r "SS10-30" 1280 6.02 4.30 374 363 468 456;
    (* SUN SPARCstation 10-41 *)
    r "SS10-41" 256 2.34 2.19 103 90 101 123;
    r "SS10-41" 512 4.35 3.67 149 144 169 182;
    r "SS10-41" 768 5.53 5.27 192 194 248 241;
    r "SS10-41" 1024 6.68 5.95 248 249 315 312;
    r "SS10-41" 1280 8.39 6.88 304 300 379 379;
    (* SUN SPARCstation 10-51 *)
    r "SS10-51" 256 3.02 2.64 77 72 91 88;
    r "SS10-51" 512 5.41 4.69 124 116 147 147;
    r "SS10-51" 768 7.78 7.01 158 158 202 195;
    r "SS10-51" 1024 9.23 8.35 194 206 241 240;
    r "SS10-51" 1280 9.48 8.65 239 248 301 310;
    (* SUN SPARCstation 20-60, Solaris 2.3 *)
    r "SS20-60" 256 3.45 3.26 65 61 82 79;
    r "SS20-60" 512 7.17 6.52 98 96 112 110;
    r "SS20-60" 768 9.05 8.09 130 141 159 155;
    r "SS20-60" 1024 10.44 8.86 162 163 212 204;
    r "SS20-60" 1280 11.66 9.61 199 199 253 256;
    (* DEC AXP 3000/500, 150 MHz, OSF/1 1.3 *)
    r "AXP3000/500" 256 2.52 2.53 100 73 103 73;
    r "AXP3000/500" 512 4.43 4.30 135 109 149 120;
    r "AXP3000/500" 768 6.07 5.72 174 156 195 163;
    r "AXP3000/500" 1024 7.40 6.95 214 195 252 195;
    r "AXP3000/500" 1280 8.59 8.07 252 227 302 237;
    (* DEC AXP 3000/600, 175 MHz, OSF/1 2.1 *)
    r "AXP3000/600" 256 2.57 2.59 85 74 86 73;
    r "AXP3000/600" 512 4.36 4.39 122 93 137 109;
    r "AXP3000/600" 768 6.36 6.12 146 127 162 140;
    r "AXP3000/600" 1024 7.83 7.52 187 160 214 167;
    r "AXP3000/600" 1280 8.98 8.56 227 191 256 201;
    (* DEC AXP 3000/800, 200 MHz, OSF/1 2.1 *)
    r "AXP3000/800" 256 3.51 3.46 69 55 70 54;
    r "AXP3000/800" 512 5.98 5.90 100 85 107 80;
    r "AXP3000/800" 768 8.02 7.46 127 110 150 114;
    r "AXP3000/800" 1024 9.78 9.30 164 139 189 151;
    r "AXP3000/800" 1280 11.44 10.72 193 165 244 183 ]

let table1_row ~platform ~size =
  List.find_opt (fun row -> row.platform = platform && row.size = size) table1

type f11 = { send_non : int; send_ilp : int; recv_non : int; recv_ilp : int }

let f11_simplified = { send_non = 366; send_ilp = 313; recv_non = 355; recv_ilp = 299 }
let f11_simple = { send_non = 220; send_ilp = 150; recv_non = 158; recv_ilp = 94 }

type f12 = { non_ilp : float; ilp : float; kernel : float }

let f12_simplified = { non_ilp = 5.1; ilp = 5.5; kernel = 6.8 }
let f12_simple = { non_ilp = 6.7; ilp = 7.5; kernel = 9.7 }

type f13 = {
  send_reads_non : float;
  send_reads_saved : float;
  send_writes_saved : float;
  recv_reads_non : float;
  recv_reads_saved : float;
  recv_writes_saved : float;
}

let f13_simplified =
  { send_reads_non = 58.0;
    send_reads_saved = 13.7;
    send_writes_saved = 12.0;
    recv_reads_non = 53.5;
    recv_reads_saved = 8.4;
    recv_writes_saved = 8.3 }

let recv_miss_ratio_non = 0.047
let recv_miss_ratio_ilp = 0.187
let send_byte_misses_non = 0.03
let send_byte_misses_ilp = 2.0
let recv_write_misses_non = 3.6
let recv_write_misses_ilp = 11.0
let e0_sequential_mbps = 70.0
let e0_fused_mbps = 100.0
