open Ilp_memsim
module Engine = Ilp_core.Engine
module Workload = Ilp_app.Workload
module Mt = Ilp_fastpath.Memtraffic
module Pool = Ilp_fastpath.Pool
module Trace = Ilp_obs.Trace
module M = Ilp_obs.Metrics
module Recorder = Ilp_obs.Recorder

type lane = {
  copied : float;
  copied_tx : float;
  copied_rx : float;
  allocated : float;
  alloc_blocks : float;
  minor_words : float;
  major_bytes : float;
  pool_balanced : bool;
}

type point = {
  len : int;
  wire_len : int;
  mode : Engine.mode;
  native : bool;
  msgs : int;
  legacy : lane;
  pooled : lane;
}

type result = {
  points : point list;
  disabled_trace_minor_words : float;
      (* minor-heap words per instrumentation call with tracing disabled *)
}

type config = { sizes : int list; native_msgs : int; sim_msgs : int }

let default_config = { sizes = [ 1024; 8192; 65536 ]; native_msgs = 64; sim_msgs = 4 }
let quick_config = { sizes = [ 1024; 65536 ]; native_msgs = 16; sim_msgs = 2 }

let key = "\x3a\x91\x5c\x07\xee\x42\xb8\x1d"

(* Ratio of the legacy quantity to the pooled one; a pooled lane that
   allocates nothing at all reports a large finite factor rather than
   infinity so the JSON stays well-formed. *)
let ratio legacy pooled =
  if pooled > 0.0 then legacy /. pooled else if legacy > 0.0 then 1.0e9 else 1.0

(* One (payload size, mode, backend, data path) cell: a fresh world, one
   engine, one staged message sent and received [msgs] times.  Returns the
   per-message averages of the Memtraffic ledger (host bytes the data path
   actually moved) and of the GC counters (allocation pressure). *)
let measure_lane ~mode ~native ~data_path ~payload_len ~msgs =
  let sim = Sim.create Config.ss10_30 in
  let cipher = Ilp_cipher.Safer_simplified.charged sim ~key () in
  let backend =
    if native then
      Engine.Native
        (Ilp_fastpath.Cipher.Safer_simplified
           (Ilp_cipher.Safer_simplified.expand_key key))
    else Engine.Simulated
  in
  let eng =
    Engine.create sim ~cipher ~mode ~backend ~max_message:(payload_len + 256)
      ~data_path ()
  in
  let payload = Workload.generate ~len:payload_len ~seed:7 in
  let payload_addr = Workload.install sim payload in
  let prepared = Engine.prepare_send eng ~prefix:"" ~payload_addr ~payload_len in
  let wire_len = prepared.Engine.len in
  let dst = Alloc.alloc sim.Sim.alloc ~align:64 wire_len in
  let mem = sim.Sim.mem in
  let one () =
    ignore (prepared.Engine.fill mem ~dst);
    (match mode with
    | Engine.Ilp -> (
        match Engine.rx_integrated eng mem ~src:dst ~dst_off:0 ~len:wire_len with
        | Ok _ -> ()
        | Error e -> failwith ("Memtrace: rx_integrated: " ^ e))
    | Engine.Separate -> (
        match Engine.rx_separate eng mem ~src:dst ~dst_off:0 ~len:wire_len with
        | Ok () -> ()
        | Error e -> failwith ("Memtrace: rx_separate: " ^ e)));
    match data_path with
    | Engine.Legacy -> (
        match Engine.read_plaintext eng ~len:wire_len with
        | Ok s -> ignore (Sys.opaque_identity (String.length s))
        | Error e -> failwith ("Memtrace: read_plaintext: " ^ e))
    | Engine.Pooled -> (
        match Engine.read_plaintext_pooled eng ~len:wire_len with
        | Ok (buf, _) ->
            ignore (Sys.opaque_identity (Bytes.length buf));
            Engine.release_plaintext eng buf
        | Error e -> failwith ("Memtrace: read_plaintext_pooled: " ^ e))
  in
  (* Warm-up message: draws the staging buffer, populates the pool's size
     classes and forces lazy tables, so the measured window sees the
     steady state. *)
  one ();
  Mt.reset ();
  let mw0 = Gc.minor_words () in
  let ab0 = Gc.allocated_bytes () in
  for _ = 1 to msgs do
    one ()
  done;
  let minor_words = (Gc.minor_words () -. mw0) /. float_of_int msgs in
  let major_bytes = (Gc.allocated_bytes () -. ab0) /. float_of_int msgs in
  let snap = Mt.snapshot () in
  Engine.destroy eng;
  let pool_balanced = Pool.outstanding (Engine.pool eng) = 0 in
  let per total = float_of_int total /. float_of_int msgs in
  ( { copied = per (Mt.copied_total snap);
      copied_tx = per (Mt.copied_tx_total snap);
      copied_rx = per (Mt.copied_rx_total snap);
      allocated = per (Mt.allocated_total snap);
      alloc_blocks = per (Mt.alloc_blocks_total snap);
      minor_words;
      major_bytes;
      pool_balanced },
    wire_len )

(* The observability overhead probe: with tracing disabled, a burst of
   representative instrumentation calls (guarded clock read, span,
   instant, begin_packet, counter bump, histogram observe, and a flight
   recorder note — which is always on — must allocate nothing.
   [Gc.minor_words] itself boxes its float result, so the per-call
   figure is gated against a small epsilon rather than exact zero. *)
let measure_disabled_tracing () =
  if Trace.enabled () then Trace.disable ();
  let c = M.counter M.default "memtrace.disabled_probe" in
  let h = M.histogram M.default "memtrace.disabled_probe_hist" in
  let n = 10_000 in
  let one () =
    let t0 = if Trace.enabled () then Trace.now () else 0.0 in
    Trace.span Trace.Send_marshal ~packet:(Trace.current_packet ()) ~ts:t0
      ~dur:0.0;
    Trace.instant Trace.Tcp_retransmit ~packet:0 ~ts:0.0;
    ignore (Trace.begin_packet ());
    Recorder.note Recorder.State ~conn:0 ~arg:0 ~ts:t0;
    M.inc c 1;
    M.observe h 42
  in
  for _ = 1 to 64 do
    one ()
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to n do
    one ()
  done;
  let per_call = (Gc.minor_words () -. w0) /. float_of_int n in
  (* The probe filled the flight-recorder ring with synthetic notes;
     clear them so a later dump shows real connection events only. *)
  Recorder.clear ();
  per_call

let run ?(config = default_config) () =
  if config.sizes = [] then invalid_arg "Memtrace.run: no sizes";
  List.iter
    (fun n ->
      if n < 64 || n mod 8 <> 0 then
        invalid_arg
          (Printf.sprintf
             "Memtrace.run: size %d must be a multiple of 8, at least 64" n))
    config.sizes;
  if config.native_msgs < 1 || config.sim_msgs < 1 then
    invalid_arg "Memtrace.run: message counts must be positive";
  let points =
    List.concat_map
      (fun len ->
        List.concat_map
          (fun mode ->
            List.map
              (fun native ->
                let msgs =
                  if native then config.native_msgs else config.sim_msgs
                in
                let legacy, wire_len =
                  measure_lane ~mode ~native ~data_path:Engine.Legacy
                    ~payload_len:len ~msgs
                in
                let pooled, _ =
                  measure_lane ~mode ~native ~data_path:Engine.Pooled
                    ~payload_len:len ~msgs
                in
                { len; wire_len; mode; native; msgs; legacy; pooled })
              [ false; true ])
          [ Engine.Separate; Engine.Ilp ])
      (List.sort compare config.sizes)
  in
  { points; disabled_trace_minor_words = measure_disabled_tracing () }

let mode_name = function Engine.Ilp -> "ilp" | Engine.Separate -> "separate"
let backend_name native = if native then "native" else "sim"

let copied_ratio p = ratio p.legacy.copied p.pooled.copied
let tx_copied_ratio p = ratio p.legacy.copied_tx p.pooled.copied_tx
let rx_copied_ratio p = ratio p.legacy.copied_rx p.pooled.copied_rx
let minor_words_ratio p = ratio p.legacy.minor_words p.pooled.minor_words

(* The acceptance gates: at the largest size, the pooled path moves at
   most half the host bytes of the legacy path — overall AND on the
   receive direction alone, where the contiguous zero-copy placement is
   the whole point (native lanes, where the ledger covers the whole data
   path) — and allocates at most half the minor-heap words (simulated
   lanes, whose per-block staging allocations are minor-heap traffic);
   and every lane's pool balances (an rx placement buffer that is
   acquired but never released — e.g. leaked across an abort — shows up
   here as an imbalance). *)
let check r =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if r.disabled_trace_minor_words > 0.01 then
    fail
      "disabled tracing allocates %.4f minor words per instrumentation call \
       (must be allocation-free)"
      r.disabled_trace_minor_words;
  let largest = List.fold_left (fun a p -> max a p.len) 0 r.points in
  List.iter
    (fun p ->
      if not (p.legacy.pool_balanced && p.pooled.pool_balanced) then
        fail "%d/%s/%s: pool not balanced at exit" p.len (mode_name p.mode)
          (backend_name p.native);
      if p.len = largest then
        if p.native then begin
          if copied_ratio p < 2.0 then
            fail "%d/%s/native: bytes-copied ratio %.2f < 2.0 (legacy %.0f, pooled %.0f)"
              p.len (mode_name p.mode) (copied_ratio p) p.legacy.copied
              p.pooled.copied;
          if rx_copied_ratio p < 2.0 then
            fail
              "%d/%s/native: rx bytes-copied ratio %.2f < 2.0 (legacy %.0f, \
               pooled %.0f)"
              p.len (mode_name p.mode) (rx_copied_ratio p) p.legacy.copied_rx
              p.pooled.copied_rx
        end
        else if minor_words_ratio p < 2.0 then
          fail "%d/%s/sim: minor-words ratio %.2f < 2.0 (legacy %.0f, pooled %.0f)"
            p.len (mode_name p.mode) (minor_words_ratio p) p.legacy.minor_words
            p.pooled.minor_words)
    r.points;
  match !failures with [] -> Ok () | fs -> Error (List.rev fs)

(* ------------------------------------------------------------------ *)
(* JSON trajectory (hand-rolled; the container has no JSON library).  *)

let json_lane b name l =
  Buffer.add_string b
    (Printf.sprintf
       "\"%s\": {\"copied_bytes\": %.1f, \"copied_tx_bytes\": %.1f, \
        \"copied_rx_bytes\": %.1f, \"allocated_bytes\": %.1f, \
        \"alloc_blocks\": %.2f, \"minor_words\": %.1f, \"major_bytes\": %.1f, \
        \"pool_balanced\": %b}"
       name l.copied l.copied_tx l.copied_rx l.allocated l.alloc_blocks
       l.minor_words l.major_bytes l.pool_balanced)

let to_json r =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "{\n  \"benchmark\": \"mem\",\n  \"unit\": \"per_msg\",\n  \"points\": [\n";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"len\": %d, \"wire_len\": %d, \"mode\": \"%s\", \
            \"backend\": \"%s\", \"msgs\": %d, "
           p.len p.wire_len (mode_name p.mode) (backend_name p.native) p.msgs);
      json_lane b "legacy" p.legacy;
      Buffer.add_string b ", ";
      json_lane b "pooled" p.pooled;
      Buffer.add_string b
        (Printf.sprintf
           ", \"copied_ratio\": %.2f, \"tx_copied_ratio\": %.2f, \
            \"rx_copied_ratio\": %.2f, \"minor_words_ratio\": %.2f}"
           (copied_ratio p) (tx_copied_ratio p) (rx_copied_ratio p)
           (minor_words_ratio p)))
    r.points;
  Buffer.add_string b
    (Printf.sprintf "\n  ],\n  \"disabled_trace_minor_words_per_call\": %.4f,\n"
       r.disabled_trace_minor_words);
  Buffer.add_string b "  \"obs\": ";
  Buffer.add_string b (M.to_json (M.snapshot M.default));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write_json r ~path =
  let oc = open_out path in
  output_string oc (to_json r);
  close_out oc

let print_table r =
  let f1 = Printf.sprintf "%.0f" in
  Report.table
    ~header:
      [ "bytes"; "mode"; "backend"; "copy B legacy"; "copy B pooled"; "ratio";
        "rx B legacy"; "rx B pooled"; "rx ratio"; "mw legacy"; "mw pooled";
        "ratio" ]
    (List.map
       (fun p ->
         [ string_of_int p.len;
           mode_name p.mode;
           backend_name p.native;
           f1 p.legacy.copied;
           f1 p.pooled.copied;
           Printf.sprintf "%.1fx" (copied_ratio p);
           f1 p.legacy.copied_rx;
           f1 p.pooled.copied_rx;
           Printf.sprintf "%.1fx" (rx_copied_ratio p);
           f1 p.legacy.minor_words;
           f1 p.pooled.minor_words;
           Printf.sprintf "%.1fx" (minor_words_ratio p) ])
       r.points);
  Report.note
    "host bytes copied per message (Memtraffic ledger; total and receive \
     direction) and GC minor words per message; legacy = pre-pool data path, \
     pooled = single-copy\n"
