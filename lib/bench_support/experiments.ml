open Ilp_memsim
module Ft = Ilp_app.File_transfer
module Engine = Ilp_core.Engine
module Linkage = Ilp_core.Linkage

(* ------------------------------------------------------------------ *)
(* Cached measurement *)

let cache : (string, Ft.result) Hashtbl.t = Hashtbl.create 64

let cipher_tag = function
  | Ft.Safer_simplified -> "saferS"
  | Ft.Simple_encryption -> "simple"
  | Ft.Safer_full r -> Printf.sprintf "safer%d" r
  | Ft.Des -> "des"

let measure ?(cipher = Ft.Safer_simplified) ?(copies = 8)
    ?(linkage = Linkage.Macro) ?(coalesce = false)
    ?(header_style = Engine.Leading) ?(rx_placement = Engine.Early)
    ?(uniform_units = false) ~machine ~mode ~size () =
  let key =
    Printf.sprintf "%s/%s/%s/%d/%d/%b/%b/%s/%d/%d" machine.Config.name
      (match mode with Engine.Ilp -> "ilp" | Engine.Separate -> "sep")
      (cipher_tag cipher) size copies coalesce uniform_units
      (match linkage with
      | Linkage.Macro -> "macro"
      | Linkage.Function_calls n -> Printf.sprintf "call%d" n)
      (match header_style with Engine.Leading -> 0 | Engine.Trailer -> 1)
      (match rx_placement with Engine.Early -> 0 | Engine.Late -> 1)
  in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let setup =
        { (Ft.default_setup ~machine ~mode) with
          Ft.cipher;
          copies;
          max_reply = size;
          linkage;
          coalesce_writes = coalesce;
          header_style;
          rx_placement;
          uniform_units }
      in
      let r = Ft.run setup in
      (if not r.Ft.ok then
         let why = Option.value r.Ft.error ~default:"unknown" in
         failwith (Printf.sprintf "experiment %s failed: %s" key why));
      Hashtbl.replace cache key r;
      r

let send_us r = Ft.mean r.Ft.send_us
let recv_us r = Ft.mean r.Ft.recv_us
let proc_us r = send_us r +. recv_us r

let both ~machine ~size =
  ( measure ~machine ~mode:Engine.Ilp ~size (),
    measure ~machine ~mode:Engine.Separate ~size () )

(* ------------------------------------------------------------------ *)

let e0 () =
  Report.banner "E0 - intro micro-experiment: XDR(20 ints) + checksum";
  let sim = Microbench.simulated () in
  let wall = Microbench.wall_clock () in
  Report.table
    ~header:[ "variant"; "paper Mbit/s"; "simulated Mbit/s"; "wall-clock Mbit/s" ]
    [ [ "sequential";
        Report.mbps Paper_data.e0_sequential_mbps;
        Report.mbps sim.Microbench.sequential_mbps;
        Report.mbps wall.Microbench.sequential_mbps ];
      [ "fused (ILP)";
        Report.mbps Paper_data.e0_fused_mbps;
        Report.mbps sim.Microbench.fused_mbps;
        Report.mbps wall.Microbench.fused_mbps ] ];
  Report.note "paper gain: %+.0f%%  simulated: %+.0f%%  wall-clock: %+.0f%%\n"
    (100.0 *. ((Paper_data.e0_fused_mbps /. Paper_data.e0_sequential_mbps) -. 1.0))
    (100.0 *. ((sim.Microbench.fused_mbps /. sim.Microbench.sequential_mbps) -. 1.0))
    (100.0 *. ((wall.Microbench.fused_mbps /. wall.Microbench.sequential_mbps) -. 1.0))

let paper_row machine size =
  match Paper_data.table1_row ~platform:machine.Config.name ~size with
  | Some r -> r
  | None -> failwith ("no paper data for " ^ machine.Config.name)

let processing_figure ~title ~pick_paper_ilp ~pick_paper_non ~pick_ours () =
  Report.banner title;
  let rows =
    List.map
      (fun machine ->
        let ilp, non = both ~machine ~size:1024 in
        let p = paper_row machine 1024 in
        [ machine.Config.name;
          Report.vs ~paper:(float_of_int (pick_paper_non p)) ~ours:(pick_ours non);
          Report.vs ~paper:(float_of_int (pick_paper_ilp p)) ~ours:(pick_ours ilp);
          Printf.sprintf "%.0f%% / %.0f%%"
            (Report.pct_gain
               ~base:(float_of_int (pick_paper_non p))
               ~better:(float_of_int (pick_paper_ilp p)))
            (Report.pct_gain ~base:(pick_ours non) ~better:(pick_ours ilp)) ])
      Config.all
  in
  Report.table
    ~header:[ "machine"; "non-ILP us (paper -> ours)"; "ILP us (paper -> ours)";
              "gain paper/ours" ]
    rows

let f6 =
  processing_figure ~title:"Figure 6 - receive packet processing, 1 kB"
    ~pick_paper_ilp:(fun p -> p.Paper_data.recv_ilp)
    ~pick_paper_non:(fun p -> p.Paper_data.recv_non)
    ~pick_ours:recv_us

let f7 =
  processing_figure ~title:"Figure 7 - send packet processing, 1 kB"
    ~pick_paper_ilp:(fun p -> p.Paper_data.send_ilp)
    ~pick_paper_non:(fun p -> p.Paper_data.send_non)
    ~pick_ours:send_us

let f8 () =
  Report.banner "Figure 8 - throughput, 1 kB packets";
  let rows =
    List.map
      (fun machine ->
        let ilp, non = both ~machine ~size:1024 in
        let p = paper_row machine 1024 in
        let ours mode_r =
          Platforms.throughput_mbps machine ~size:1024 ~proc_us:(proc_us mode_r)
        in
        [ machine.Config.name;
          Report.vs ~paper:p.Paper_data.tput_non ~ours:(ours non);
          Report.vs ~paper:p.Paper_data.tput_ilp ~ours:(ours ilp) ])
      Config.all
  in
  Report.table
    ~header:
      [ "machine"; "non-ILP Mbit/s (paper -> ours)"; "ILP Mbit/s (paper -> ours)" ]
    rows

let sizes = [ 256; 512; 768; 1024; 1280 ]

let f9 () =
  Report.banner "Figure 9 - throughput vs packet size";
  List.iter
    (fun machine ->
      Report.note "\n-- %s --\n" machine.Config.name;
      let rows =
        List.map
          (fun size ->
            let ilp, non = both ~machine ~size in
            let p = paper_row machine size in
            let ours r = Platforms.throughput_mbps machine ~size ~proc_us:(proc_us r) in
            [ string_of_int size;
              Report.vs ~paper:p.Paper_data.tput_non ~ours:(ours non);
              Report.vs ~paper:p.Paper_data.tput_ilp ~ours:(ours ilp) ])
          sizes
      in
      Report.table
        ~header:[ "size"; "non-ILP Mbit/s"; "ILP Mbit/s" ]
        rows)
    Config.figure9

let f10 () =
  Report.banner "Figure 10 - packet processing vs packet size";
  List.iter
    (fun machine ->
      Report.note "\n-- %s --\n" machine.Config.name;
      let rows =
        List.map
          (fun size ->
            let ilp, non = both ~machine ~size in
            let p = paper_row machine size in
            [ string_of_int size;
              Report.vs ~paper:(float_of_int p.Paper_data.send_non) ~ours:(send_us non);
              Report.vs ~paper:(float_of_int p.Paper_data.send_ilp) ~ours:(send_us ilp);
              Report.vs ~paper:(float_of_int p.Paper_data.recv_non) ~ours:(recv_us non);
              Report.vs ~paper:(float_of_int p.Paper_data.recv_ilp) ~ours:(recv_us ilp) ])
          sizes
      in
      Report.table
        ~header:[ "size"; "send non-ILP"; "send ILP"; "recv non-ILP"; "recv ILP" ]
        rows)
    Config.figure9

let f11 () =
  Report.banner
    "Figure 11 - packet processing, simplified SAFER vs simple encryption (SS10-30, 1 kB)";
  let machine = Config.ss10_30 in
  let row name cipher (paper : Paper_data.f11) =
    let ilp = measure ~machine ~mode:Engine.Ilp ~cipher ~size:1024 () in
    let non = measure ~machine ~mode:Engine.Separate ~cipher ~size:1024 () in
    [ [ name ^ " send";
        Report.vs ~paper:(float_of_int paper.Paper_data.send_non) ~ours:(send_us non);
        Report.vs ~paper:(float_of_int paper.Paper_data.send_ilp) ~ours:(send_us ilp) ];
      [ name ^ " recv";
        Report.vs ~paper:(float_of_int paper.Paper_data.recv_non) ~ours:(recv_us non);
        Report.vs ~paper:(float_of_int paper.Paper_data.recv_ilp) ~ours:(recv_us ilp) ] ]
  in
  Report.table
    ~header:[ "cipher / path"; "non-ILP us (paper -> ours)"; "ILP us (paper -> ours)" ]
    (row "simplified SAFER" Ft.Safer_simplified Paper_data.f11_simplified
    @ row "simple encryption" Ft.Simple_encryption Paper_data.f11_simple)

let f12 () =
  Report.banner "Figure 12 - throughput incl. kernel TCP (SS10-30, 1 kB)";
  let machine = Config.ss10_30 in
  let row name cipher (paper : Paper_data.f12) =
    let ilp = measure ~machine ~mode:Engine.Ilp ~cipher ~size:1024 () in
    let non = measure ~machine ~mode:Engine.Separate ~cipher ~size:1024 () in
    let t r = Platforms.throughput_mbps machine ~size:1024 ~proc_us:(proc_us r) in
    (* Kernel TCP: same (non-ILP) manipulations, kernel overhead profile. *)
    let kernel =
      Platforms.kernel_throughput_mbps machine ~size:1024 ~proc_us:(proc_us non)
    in
    [ name;
      Report.vs ~paper:paper.Paper_data.non_ilp ~ours:(t non);
      Report.vs ~paper:paper.Paper_data.ilp ~ours:(t ilp);
      Report.vs ~paper:paper.Paper_data.kernel ~ours:kernel ]
  in
  Report.table
    ~header:[ "cipher"; "non-ILP Mbit/s"; "ILP Mbit/s"; "kernel-TCP Mbit/s" ]
    [ row "simplified SAFER" Ft.Safer_simplified Paper_data.f12_simplified;
      row "simple encryption" Ft.Simple_encryption Paper_data.f12_simple ]

let paper_volume = 10.7e6

(* Bigger transfer for the memory-system figures, normalised to the
   paper's 10.7 MB. *)
let mem_run ~mode ~cipher =
  let r = measure ~machine:Config.ss10_30 ~mode ~cipher ~size:1024 ~copies:16 () in
  let scale = paper_volume /. float_of_int r.Ft.payload_bytes in
  (r, scale)

let f13 () =
  Report.banner "Figure 13 - memory accesses per 10.7 MB transferred (SS10-30, 1 kB)";
  let line name cipher =
    let ilp, s_ilp = mem_run ~mode:Engine.Ilp ~cipher in
    let non, s_non = mem_run ~mode:Engine.Separate ~cipher in
    let get (r : Ft.result) scale stats kind =
      float_of_int (Stats.accesses stats kind) *. scale |> fun v -> ignore r; v
    in
    [ [ name ^ " send reads";
        Report.millions (get non s_non non.Ft.send_stats Stats.Read);
        Report.millions (get ilp s_ilp ilp.Ft.send_stats Stats.Read) ];
      [ name ^ " send writes";
        Report.millions (get non s_non non.Ft.send_stats Stats.Write);
        Report.millions (get ilp s_ilp ilp.Ft.send_stats Stats.Write) ];
      [ name ^ " recv reads";
        Report.millions (get non s_non non.Ft.recv_stats Stats.Read);
        Report.millions (get ilp s_ilp ilp.Ft.recv_stats Stats.Read) ];
      [ name ^ " recv writes";
        Report.millions (get non s_non non.Ft.recv_stats Stats.Write);
        Report.millions (get ilp s_ilp ilp.Ft.recv_stats Stats.Write) ] ]
  in
  Report.table
    ~header:[ "series"; "non-ILP x1e6"; "ILP x1e6" ]
    (line "simplified SAFER" Ft.Safer_simplified
    @ line "simple encryption" Ft.Simple_encryption);
  let p = Paper_data.f13_simplified in
  Report.note
    "paper anchors (simplified SAFER): send reads %.1fe6 -> %.1fe6 saved %.1fe6;\n\
     recv reads %.1fe6, saved %.1fe6; write savings: send %.1fe6, recv %.1fe6\n"
    p.Paper_data.send_reads_non
    (p.Paper_data.send_reads_non -. p.Paper_data.send_reads_saved)
    p.Paper_data.send_reads_saved p.Paper_data.recv_reads_non
    p.Paper_data.recv_reads_saved p.Paper_data.send_writes_saved
    p.Paper_data.recv_writes_saved

let f14 () =
  Report.banner "Figure 14 - cache misses per 10.7 MB (SS10-30, 1 kB)";
  let line name cipher =
    let ilp, s_ilp = mem_run ~mode:Engine.Ilp ~cipher in
    let non, s_non = mem_run ~mode:Engine.Separate ~cipher in
    let miss stats kind scale = float_of_int (Stats.misses stats kind ~level:1) *. scale in
    let miss1 stats scale =
      float_of_int (Stats.misses_of_size stats Stats.Write ~size:1 ~level:1) *. scale
    in
    [ [ name ^ " send read misses";
        Report.millions (miss non.Ft.send_stats Stats.Read s_non);
        Report.millions (miss ilp.Ft.send_stats Stats.Read s_ilp) ];
      [ name ^ " send write misses";
        Report.millions (miss non.Ft.send_stats Stats.Write s_non);
        Report.millions (miss ilp.Ft.send_stats Stats.Write s_ilp) ];
      [ name ^ " send 1-byte write misses";
        Report.millions (miss1 non.Ft.send_stats s_non);
        Report.millions (miss1 ilp.Ft.send_stats s_ilp) ];
      [ name ^ " recv write misses";
        Report.millions (miss non.Ft.recv_stats Stats.Write s_non);
        Report.millions (miss ilp.Ft.recv_stats Stats.Write s_ilp) ];
      [ name ^ " recv miss ratio %";
        Printf.sprintf "%.1f" (100.0 *. Stats.data_miss_ratio non.Ft.recv_stats);
        Printf.sprintf "%.1f" (100.0 *. Stats.data_miss_ratio ilp.Ft.recv_stats) ] ]
  in
  Report.table
    ~header:[ "series"; "non-ILP"; "ILP" ]
    (line "simplified SAFER" Ft.Safer_simplified
    @ line "simple encryption" Ft.Simple_encryption);
  Report.note
    "paper (simplified SAFER): recv miss ratio %.1f%% -> %.1f%%; recv write misses \
     %.1fe6 -> %.1fe6; send 1-byte misses %.2fe6 -> %.1fe6\n"
    (100.0 *. Paper_data.recv_miss_ratio_non)
    (100.0 *. Paper_data.recv_miss_ratio_ilp)
    Paper_data.recv_write_misses_non Paper_data.recv_write_misses_ilp
    Paper_data.send_byte_misses_non Paper_data.send_byte_misses_ilp;
  (* The paper's section 4.2 atom paragraph: memory-system time on the
     AXP 3000/500. *)
  let axp = Config.axp3000_500 in
  let ilp = measure ~machine:axp ~mode:Engine.Ilp ~size:1024 ~copies:16 () in
  let non = measure ~machine:axp ~mode:Engine.Separate ~size:1024 ~copies:16 () in
  Report.note "\nAXP 3000/500 memory-system time (atom, section 4.2):\n";
  Report.table
    ~header:[ "path"; "ILP / non-ILP stall ratio (paper)"; "ours" ]
    [ [ "send"; "0.494s / 0.539s = 0.92";
        Printf.sprintf "%.2f" (ilp.Ft.send_stall_us /. non.Ft.send_stall_us) ];
      [ "receive"; "0.292s / 0.295s = 0.99";
        Printf.sprintf "%.2f" (ilp.Ft.recv_stall_us /. non.Ft.recv_stall_us) ] ];
  Report.note
    "I-cache share of the ILP run's memory-system time: %.0f%% (paper: 24-28%%)\n"
    (100.0 *. ilp.Ft.ifetch_stall_us
    /. (ilp.Ft.send_stall_us +. ilp.Ft.recv_stall_us))

let t1 () =
  Report.banner "Table 1 - full grid (paper -> ours)";
  List.iter
    (fun machine ->
      Report.note "\n-- %s --\n" machine.Config.name;
      let rows =
        List.map
          (fun size ->
            let ilp, non = both ~machine ~size in
            let p = paper_row machine size in
            let t r = Platforms.throughput_mbps machine ~size ~proc_us:(proc_us r) in
            [ string_of_int size;
              Report.vs ~paper:p.Paper_data.tput_ilp ~ours:(t ilp);
              Report.vs ~paper:p.Paper_data.tput_non ~ours:(t non);
              Report.vs ~paper:(float_of_int p.Paper_data.send_ilp) ~ours:(send_us ilp);
              Report.vs ~paper:(float_of_int p.Paper_data.recv_ilp) ~ours:(recv_us ilp);
              Report.vs ~paper:(float_of_int p.Paper_data.send_non) ~ours:(send_us non);
              Report.vs ~paper:(float_of_int p.Paper_data.recv_non) ~ours:(recv_us non) ])
          sizes
      in
      Report.table
        ~header:
          [ "size"; "tput ILP"; "tput non"; "send ILP us"; "recv ILP us";
            "send non us"; "recv non us" ]
        rows)
    Config.all

let a1 () =
  Report.banner "Ablation A1 - macro inlining vs function calls (SS10-30, 1 kB)";
  let machine = Config.ss10_30 in
  let non = measure ~machine ~mode:Engine.Separate ~size:1024 () in
  let macro = measure ~machine ~mode:Engine.Ilp ~size:1024 () in
  let calls =
    measure ~machine ~mode:Engine.Ilp ~linkage:Linkage.function_calls ~size:1024 ()
  in
  Report.table
    ~header:[ "variant"; "send us"; "recv us"; "gain vs non-ILP" ]
    [ [ "non-ILP"; Report.us (send_us non); Report.us (recv_us non); "-" ];
      [ "ILP, macros";
        Report.us (send_us macro);
        Report.us (recv_us macro);
        Printf.sprintf "%.0f%%" (Report.pct_gain ~base:(proc_us non) ~better:(proc_us macro)) ];
      [ "ILP, function calls";
        Report.us (send_us calls);
        Report.us (recv_us calls);
        Printf.sprintf "%.0f%%" (Report.pct_gain ~base:(proc_us non) ~better:(proc_us calls)) ] ];
  Report.note
    "paper: substituting macros by function calls loses all ILP benefit (3.2.1)\n"

let a2 () =
  Report.banner "Ablation A2 - store sizing: cipher byte stores vs LCM stores (SS10-30, 1 kB)";
  let machine = Config.ss10_30 in
  let plain = measure ~machine ~mode:Engine.Ilp ~size:1024 ~copies:16 () in
  let lcm = measure ~machine ~mode:Engine.Ilp ~coalesce:true ~size:1024 ~copies:16 () in
  let wm (r : Ft.result) = Stats.misses r.Ft.recv_stats Stats.Write ~level:1 in
  Report.table
    ~header:[ "variant"; "send us"; "recv us"; "recv write misses" ]
    [ [ "byte-wise stores (as measured in the paper)";
        Report.us (send_us plain); Report.us (recv_us plain);
        string_of_int (wm plain) ];
      [ "Le = LCM stores (the section 2.2 remedy)";
        Report.us (send_us lcm); Report.us (recv_us lcm);
        string_of_int (wm lcm) ] ]

let a4 () =
  Report.banner "Ablation A4 - trailer length field (section 5), ILP mode";
  let line machine =
    let leading = measure ~machine ~mode:Engine.Ilp ~size:1024 () in
    let trailer =
      measure ~machine ~mode:Engine.Ilp ~header_style:Engine.Trailer ~size:1024 ()
    in
    let imiss (r : Ft.result) = Stats.misses r.Ft.total_stats Stats.Ifetch ~level:1 in
    [ [ machine.Config.name ^ " leading";
        Report.us (send_us leading); Report.us (recv_us leading);
        string_of_int (imiss leading) ];
      [ machine.Config.name ^ " trailer";
        Report.us (send_us trailer); Report.us (recv_us trailer);
        string_of_int (imiss trailer) ] ]
  in
  Report.table
    ~header:[ "variant"; "send us"; "recv us"; "I-cache misses (total)" ]
    (line Config.ss10_30 @ line Config.axp3000_800)

let a5 () =
  Report.banner "Ablation A5 - receive placement (section 3.2.3), ILP mode (SS10-30, 1 kB)";
  let machine = Config.ss10_30 in
  let early = measure ~machine ~mode:Engine.Ilp ~size:1024 () in
  let late =
    measure ~machine ~mode:Engine.Ilp ~rx_placement:Engine.Late ~size:1024 ()
  in
  Report.table
    ~header:[ "placement"; "recv us"; "send us" ]
    [ [ "early: integrated right after the system copy (the paper's choice)";
        Report.us (recv_us early); Report.us (send_us early) ];
      [ "late: deferred to delivery, TCP checksums separately";
        Report.us (recv_us late); Report.us (send_us late) ] ];
  Report.note
    "paper: both placements measured within ~5 us of each other; reproduced --
     the late placement's separate TCP checksum pass is offset by dropping the
     fused loop's checksum tap and its register pressure.  Both the paper and
     this stack default to early placement: checksum errors are then known
     before TCP control processing, so nothing needs rolling back.
"

let a6 () =
  Report.banner
    "Ablation A6 - uniform processing unit sizes (section 5), ILP mode (SS10-30, 1 kB)";
  let machine = Config.ss10_30 in
  let mixed = measure ~machine ~mode:Engine.Ilp ~size:1024 () in
  let uniform = measure ~machine ~mode:Engine.Ilp ~uniform_units:true ~size:1024 () in
  Report.table
    ~header:[ "variant"; "send us"; "recv us" ]
    [ [ "mixed units (XDR 4 B, cipher 8 B; the measured system)";
        Report.us (send_us mixed); Report.us (recv_us mixed) ];
      [ "uniform units (both 8 B)";
        Report.us (send_us uniform); Report.us (recv_us uniform) ] ];
  Report.note
    "section 5 suggests uniform unit sizes as an ILP-friendly protocol\n\
     feature: one marshalling invocation per cipher block saves per-unit\n\
     dispatch in the fused loop.\n"

let wall () =
  Report.banner "Wall-clock cipher kernels (Bechamel, this host)";
  let results = Microbench.ciphers_wall_clock () in
  Report.table
    ~header:[ "cipher"; "Mbit/s (host)"; "paper (SPARCstation 10)" ]
    (List.map
       (fun (name, mbps) ->
         let paper =
           match name with
           | "safer-simplified" -> "~50"
           | "safer-k64-1round" -> "~25"
           | "des" -> "0.5-1"
           | _ -> "-"
         in
         [ name; Report.mbps mbps; paper ])
       results);
  Report.note
    "the ordering simple >> simplified >> 1-round SAFER >> 6-round >> DES is the
     paper's cipher-cost hierarchy; absolute numbers are this host's.
"

let wallpath () =
  Report.banner "Wall-clock fast path (native send/receive kernels, this host)";
  let r = Wallbench.run () in
  Wallbench.print_table r;
  Wallbench.write_json r ~path:"BENCH_wall.json";
  Report.note "wrote BENCH_wall.json\n"

(* Machine-readable export of the full grid, for plotting. *)
let t1_csv () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "machine,size,paper_tput_ilp,ours_tput_ilp,paper_tput_non,ours_tput_non,paper_send_ilp_us,ours_send_ilp_us,paper_recv_ilp_us,ours_recv_ilp_us,paper_send_non_us,ours_send_non_us,paper_recv_non_us,ours_recv_non_us\n";
  List.iter
    (fun machine ->
      List.iter
        (fun size ->
          let ilp, non = both ~machine ~size in
          let p = paper_row machine size in
          let t r = Platforms.throughput_mbps machine ~size ~proc_us:(proc_us r) in
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%.2f,%.2f,%.2f,%.2f,%d,%.1f,%d,%.1f,%d,%.1f,%d,%.1f\n"
               machine.Config.name size p.Paper_data.tput_ilp (t ilp)
               p.Paper_data.tput_non (t non) p.Paper_data.send_ilp (send_us ilp)
               p.Paper_data.recv_ilp (recv_us ilp) p.Paper_data.send_non
               (send_us non) p.Paper_data.recv_non (recv_us non)))
        sizes)
    Config.all;
  Buffer.contents buf

let all () =
  e0 (); f6 (); f7 (); f8 (); f9 (); f10 (); f11 (); f12 (); f13 (); f14 ();
  t1 (); a1 (); a2 (); a4 (); a5 (); a6 (); wall (); wallpath ()

let names =
  [ "e0"; "f6"; "f7"; "f8"; "f9"; "f10"; "f11"; "f12"; "f13"; "f14"; "t1";
    "a1"; "a2"; "a4"; "a5"; "a6"; "wall"; "wallpath"; "all" ]

let run_named = function
  | "e0" -> Ok (e0 ())
  | "f6" -> Ok (f6 ())
  | "f7" -> Ok (f7 ())
  | "f8" -> Ok (f8 ())
  | "f9" -> Ok (f9 ())
  | "f10" -> Ok (f10 ())
  | "f11" -> Ok (f11 ())
  | "f12" -> Ok (f12 ())
  | "f13" -> Ok (f13 ())
  | "f14" -> Ok (f14 ())
  | "t1" -> Ok (t1 ())
  | "a1" -> Ok (a1 ())
  | "a2" -> Ok (a2 ())
  | "a4" -> Ok (a4 ())
  | "a5" -> Ok (a5 ())
  | "a6" -> Ok (a6 ())
  | "wall" -> Ok (wall ())
  | "wallpath" -> Ok (wallpath ())
  | "all" -> Ok (all ())
  | other -> Error (Printf.sprintf "unknown experiment %S" other)
