let banner s =
  let line = String.make (String.length s + 8) '=' in
  Printf.printf "\n%s\n==  %s  ==\n%s\n" line s line

let note fmt = Printf.printf fmt

let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)))
    all;
  let print_row r =
    List.iteri
      (fun i cell ->
        let pad = String.make (width.(i) - String.length cell) ' ' in
        if i = 0 then Printf.printf "%s%s" cell pad
        else Printf.printf "  %s%s" pad cell)
      r;
    print_newline ()
  in
  print_row header;
  let rule = List.mapi (fun i _ -> String.make width.(i) '-') header in
  print_row rule;
  List.iter print_row rows

let vs ~paper ~ours =
  let delta =
    if paper = 0.0 then 0.0 else (ours -. paper) /. paper *. 100.0
  in
  Printf.sprintf "%.1f -> %.1f (%+.0f%%)" paper ours delta

(* q-quantile of an already-sorted sample array by nearest rank: the
   q=0.5 case picks index n/2, exactly the upper-median convention the
   wall benchmark has always used. *)
let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Report.percentile_sorted: empty sample";
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Report.percentile_sorted: q must be in [0, 1]";
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let us v = Printf.sprintf "%.1f" v
let mbps v = Printf.sprintf "%.2f" v
let millions v = Printf.sprintf "%.1f" (v /. 1.0e6)
let pct_gain ~base ~better = if base = 0.0 then 0.0 else (base -. better) /. base *. 100.0
