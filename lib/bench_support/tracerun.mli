(** The [ilpbench trace] driver: run traced simulated transfers (one ILP,
    one separate, one ILP with replies streamed as pipelined MSS-sized
    segments) and export the {!Ilp_obs.Trace} ring as Chrome
    [trace_event] JSON plus a plain-text timeline.

    Chain validation: a send chain is complete when one packet id carries
    all four send manipulation spans (marshal, encrypt, checksum,
    ring-copy), a receive chain when one id carries all three receive
    spans (checksum, decrypt, unmarshal).  [complete] requires at least
    one of each, plus at least one pair of overlapping [tcp.segment]
    spans from the streamed leg (the visual signature of the pipelined
    window) — the CI trace-smoke gate. *)

type result = {
  recorded : int;  (** spans recorded, including evicted *)
  dropped : int;  (** spans evicted by ring wrap-around *)
  packets : int;  (** distinct traced packet ids *)
  send_chains : int;
  recv_chains : int;
  segment_spans : int;  (** [tcp.segment] lifetimes recorded *)
  pipelined_overlaps : int;
      (** segment spans overlapping another — in flight together *)
  json : string;  (** Chrome trace_event JSON *)
  timeline : string list;  (** plain-text tail of the span timeline *)
  metrics : Ilp_obs.Metrics.snapshot;
      (** registry delta over the traced run *)
}

(** Raises [Failure] if a transfer fails.  [quick] shrinks the transfers
    for CI.  Tracing is disabled again on exit. *)
val run : ?quick:bool -> unit -> result

val complete : result -> bool

(** Write [r.json] to [path] (conventionally TRACE.json). *)
val write_json : result -> path:string -> unit

val summary_lines : result -> string list
