(** Memory-traffic benchmark: the {!Ilp_fastpath.Memtraffic} ledger and
    the GC counters, per message, for the pooled (single-copy) versus
    legacy (per-message allocation) data paths.

    This is the paper's thesis applied to the host implementation itself:
    protocol cost is dominated by memory traffic, so the benchmark counts
    bytes moved rather than (only) time.  Each point runs one engine in a
    fresh simulated world, sends and receives the same message [msgs]
    times, and averages:

    - the ledger's host-bytes-copied / allocated per message — meaningful
      on the {e native} backend, where the ledger instruments the whole
      data path (wire kernels, ring staging, TSDU hand-off);
    - GC minor words and allocated bytes per message — the headline for
      the {e simulated} backend, whose legacy lane allocates a small
      staging block per processed block (thousands of minor-heap
      allocations per large message) while the pooled lane allocates
      none.

    Results serialise to the BENCH_mem.json trajectory consumed by
    EXPERIMENTS.md §MEM and checked by the CI perf-smoke job. *)

type lane = {
  copied : float;  (** ledger: host bytes copied per message *)
  copied_tx : float;  (** the send-direction share of [copied] *)
  copied_rx : float;
      (** the receive-direction share of [copied] — the quantity the
          contiguous zero-copy receive path is built to shrink *)
  allocated : float;  (** ledger: freshly allocated host bytes per message *)
  alloc_blocks : float;  (** ledger: fresh allocations per message *)
  minor_words : float;  (** GC minor-heap words per message *)
  major_bytes : float;  (** GC allocated bytes (all heaps) per message *)
  pool_balanced : bool;
      (** acquired = released at lane exit (engine destroyed) *)
}

type point = {
  len : int;  (** payload bytes *)
  wire_len : int;  (** encrypted on-the-wire bytes *)
  mode : Ilp_core.Engine.mode;
  native : bool;
  msgs : int;  (** messages averaged over *)
  legacy : lane;
  pooled : lane;
}

type result = {
  points : point list;
  disabled_trace_minor_words : float;
      (** minor-heap words allocated per disabled-path instrumentation
          call (span + instant + begin_packet + counter + histogram);
          gated near zero by {!check} *)
}

type config = {
  sizes : int list;  (** payload sizes; multiples of 8, at least 64 *)
  native_msgs : int;
  sim_msgs : int;  (** fewer: every simulated byte is charged *)
}

(** 1 KiB / 8 KiB / 64 KiB, 64 native and 4 simulated messages. *)
val default_config : config

(** 1 KiB / 64 KiB with fewer messages — the CI smoke variant. *)
val quick_config : config

(** Run the matrix: sizes x (separate, ilp) x (sim, native), each with a
    legacy and a pooled lane.  Raises [Invalid_argument] on a bad config,
    [Failure] if any lane rejects its own message. *)
val run : ?config:config -> unit -> result

val copied_ratio : point -> float
(** Legacy over pooled bytes-copied (large finite value when the pooled
    lane copies nothing). *)

(** Per-direction splits of {!copied_ratio}. *)
val tx_copied_ratio : point -> float

val rx_copied_ratio : point -> float
val minor_words_ratio : point -> float

(** The acceptance gates: at the largest size, bytes-copied ratio >= 2 on
    the native lanes — overall and on the receive direction alone — and
    minor-words ratio >= 2 on the simulated lanes; every lane's pool
    balanced (a leaked rx placement buffer fails here); and disabled-path
    tracing allocation-free.  [Error] lists each violated gate. *)
val check : result -> (unit, string list) Stdlib.result

(** Serialise to the BENCH_mem.json schema (hand-rolled writer).
    Includes an ["obs"] key carrying an {!Ilp_obs.Metrics} snapshot. *)
val to_json : result -> string

val write_json : result -> path:string -> unit

(** Aligned console table of the points (via {!Report}). *)
val print_table : result -> unit
