type overhead = { base_us : float; per_byte_us : float }

(* Least-squares fit of overhead = base + per_byte * size over a
   platform's five Table 1 ILP rows. *)
let fit platform =
  let rows =
    List.filter (fun r -> r.Paper_data.platform = platform) Paper_data.table1
  in
  if rows = [] then raise Not_found;
  let points =
    List.map
      (fun (r : Paper_data.t1_row) ->
        let total_us = float_of_int (r.size * 8) /. r.tput_ilp in
        let proc_us = float_of_int (r.send_ilp + r.recv_ilp) in
        (float_of_int r.size, total_us -. proc_us))
      rows
  in
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  let slope = if denom = 0.0 then 0.0 else ((n *. sxy) -. (sx *. sy)) /. denom in
  let base = (sy -. (slope *. sx)) /. n in
  { base_us = base; per_byte_us = slope }

let cache : (string, overhead) Hashtbl.t = Hashtbl.create 8

let overhead (machine : Ilp_memsim.Config.t) =
  let name = machine.Ilp_memsim.Config.name in
  match Hashtbl.find_opt cache name with
  | Some o -> o
  | None ->
      let o = fit name in
      Hashtbl.replace cache name o;
      o

let overhead_us machine ~size =
  let o = overhead machine in
  o.base_us +. (o.per_byte_us *. float_of_int size)

let throughput_mbps machine ~size ~proc_us =
  let total = proc_us +. overhead_us machine ~size in
  if total <= 0.0 then 0.0 else float_of_int (size * 8) /. total

(* Figure 12's kernel-TCP bar on the SS10-30 reaches 6.8 Mbit/s with the
   simplified cipher where the non-ILP user-level build reaches 5.1: with
   identical data manipulation cost, the whole difference is overhead.
   Solving 8192/tput = proc + f * overhead for the figure's bars gives
   f ~= 0.55. *)
let kernel_overhead_factor = 0.55

let kernel_throughput_mbps machine ~size ~proc_us =
  let total = proc_us +. (kernel_overhead_factor *. overhead_us machine ~size) in
  if total <= 0.0 then 0.0 else float_of_int (size * 8) /. total
