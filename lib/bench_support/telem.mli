(** Continuous-telemetry runner behind [ilpbench report]: the overload
    soak with a Simclock-driven periodic {!Ilp_obs.Timeseries} sampler
    attached, plus the gates that make it CI-able. *)

type config = {
  soak : Ilp_app.Soak.overload_config;
  interval_us : float;  (** virtual time between samples *)
  capacity : int;  (** sample-ring slots; also bounds the tick chain *)
  slos : Ilp_obs.Timeseries.slo list;
}

val default_slos : Ilp_obs.Timeseries.slo list
val default_config : config
val quick_config : config

type result = {
  outcome : Ilp_app.Soak.overload_outcome;
  ts : Ilp_obs.Timeseries.t;
  base : Ilp_obs.Metrics.snapshot;
  final : Ilp_obs.Metrics.snapshot;
}

val run : ?log:(string -> unit) -> ?config:config -> unit -> result
(** Run the overload soak with the sampler attached via [on_clock]; a
    final sample is taken after the soak settles, so the sampled deltas
    cover the whole run. *)

val conservation_failures : result -> string list
(** Counter names whose [base + sum-of-sampled-deltas] does not equal
    the final registry value (must be empty). *)

val check : result -> (unit, string list) Stdlib.result
(** Gates: soak invariants hold, at least two samples, counter
    conservation, zero SLO breaches. *)

val dashboard_lines : result -> string list
val summary_lines : result -> string list
val to_json : result -> string
val write_json : result -> path:string -> unit

val flight_lines : unit -> string list
(** Current flight-recorder dump (see {!Ilp_obs.Recorder.dump}). *)

val write_flight : path:string -> unit
