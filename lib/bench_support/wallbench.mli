(** Wall-clock benchmark of the {!Ilp_fastpath} send/receive kernels:
    the separate four-pass stack versus the fused ILP loop, timed for
    real on this host (no simulation) at several message sizes.

    Each point is a median-of-[trials] measurement (after [warmup]
    discarded trials) of ns per message, with the per-trial repetition
    count auto-calibrated so one trial runs for at least ~2 ms.  Before
    any timing, both paths are cross-checked to produce byte-identical
    wire data and matching checksums — a benchmark of two kernels that
    disagree would be meaningless.

    Results serialise to the machine-readable [BENCH_wall.json]
    trajectory file consumed by plotting scripts (see EXPERIMENTS.md). *)

type side = {
  send_ns : float;  (** median ns per message, send direction *)
  recv_ns : float;  (** median ns per message, receive direction *)
  minor_words : float;
      (** minor-heap words allocated per message (send + recv), via
          [Gc.minor_words] deltas — the allocation-rate companion to the
          latency medians *)
  minor_words_rx : float;
      (** the receive-direction share of [minor_words] — the direction
          the contiguous zero-copy receive path targets *)
}

type point = {
  len : int;  (** message bytes (multiple of the 8-byte cipher block) *)
  reps : int;  (** calibrated repetitions per trial *)
  separate : side;
  ilp : side;
  speedup : float;
      (** separate total / ILP total (send + recv); > 1 means the fused
          loop is faster *)
}

type result = {
  cipher : string;
  trials : int;
  warmup : int;
  points : point list;
}

(** The ciphers [run] accepts, instantiated with a fixed benchmark key. *)
val cipher_names : string list

val cipher_of_name : string -> (Ilp_fastpath.Cipher.t, string) Stdlib.result

(** Run the benchmark.  [sizes] defaults to [1024; 8192; 65536; 524288]
    bytes; every size must be a positive multiple of 8.  [trials]
    defaults to 9 (median taken), [warmup] to 3.  Raises [Failure] if
    the separate and ILP kernels disagree on wire bytes or checksum. *)
val run :
  ?cipher:Ilp_fastpath.Cipher.t ->
  ?sizes:int list ->
  ?trials:int ->
  ?warmup:int ->
  unit ->
  result

(* ---- per-stage time share (the [--trace] table) ---- *)

type stage_cell = { stage_label : string; sep_ns : float; ilp_ns : float }

type stage_point = {
  s_len : int;
  s_reps : int;
  cells : stage_cell list;
  sep_total_ns : float;
  ilp_total_ns : float;
}

(** Run the kernels with the {!Ilp_obs.Trace} span tracer enabled and
    aggregate wall time per stage.  Separate-path rows are real measured
    intervals; ILP rows attribute the whole fused pass to encrypt/decrypt
    with the fused-away stages at zero, so the table shows what fusion
    collapsed.  Restores the tracer state on exit. *)
val stages :
  ?cipher:Ilp_fastpath.Cipher.t ->
  ?sizes:int list ->
  ?reps:int ->
  unit ->
  stage_point list

val print_stage_tables : stage_point list -> unit

(** Serialise to the BENCH_wall.json schema (hand-rolled writer; the
    container has no JSON library).  Includes an ["obs"] key carrying a
    {!Ilp_obs.Metrics} snapshot of the process-wide registry. *)
val to_json : result -> string

(** [write_json r ~path] writes {!to_json} output to [path]. *)
val write_json : result -> path:string -> unit

(** Aligned console table of the points (via {!Report}). *)
val print_table : result -> unit
