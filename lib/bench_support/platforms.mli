(** The per-platform system-overhead model.

    The paper's throughput includes work the simulator deliberately does
    not model — sockets and system calls, IP and driver processing, task
    switches, interrupt handling, background load.  The paper itself
    treats this as a roughly size-linear platform cost ("data
    manipulations of the ILP implementation consume approximately the
    same time as the system operations").

    For each platform we fit [overhead(size) = base + per_byte * size] by
    least squares over the paper's own Table 1 ILP rows:
    [overhead_i = packet_bits_i / throughput_i - (send_i + recv_i)].
    The fit uses only paper data — none of our measurements — so measured
    processing-time deviations show up honestly in the reproduced
    throughput figures. *)

type overhead = { base_us : float; per_byte_us : float }

(** Raises [Not_found] for a machine absent from Table 1. *)
val overhead : Ilp_memsim.Config.t -> overhead

val overhead_us : Ilp_memsim.Config.t -> size:int -> float

(** [throughput_mbps machine ~size ~proc_us] converts measured per-packet
    processing (send + receive, microseconds) into end-to-end Mbit/s
    under the platform's overhead model. *)
val throughput_mbps : Ilp_memsim.Config.t -> size:int -> proc_us:float -> float

(** The kernel-TCP profile of figure 12: same data manipulations, but the
    protocol runs in the kernel, so acknowledgements never cross the
    user/kernel boundary and per-packet overhead shrinks.  The factor is
    fitted once against the figure's SS10-30 bars. *)
val kernel_overhead_factor : float

val kernel_throughput_mbps :
  Ilp_memsim.Config.t -> size:int -> proc_us:float -> float
