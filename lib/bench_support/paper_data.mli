(** The paper's published numbers, transcribed for paper-vs-measured
    reporting and for fitting the per-platform system-overhead model.

    Table 1 (annex) is transcribed in full.  For figures 11-14 the values
    stated in the running text are used where the figure encoding is
    ambiguous in the source; EXPERIMENTS.md discusses the residual
    uncertainty. *)

type t1_row = {
  platform : string;
  size : int;  (** packet size in bytes *)
  tput_ilp : float;  (** Mbit/s *)
  tput_non : float;
  send_ilp : int;  (** packet processing, microseconds *)
  recv_ilp : int;
  send_non : int;
  recv_non : int;
}

(** All 35 rows of Table 1. *)
val table1 : t1_row list

val table1_row : platform:string -> size:int -> t1_row option

(** Figure 11 (SS10-30, 1 kB): packet processing with the two ciphers. *)
type f11 = { send_non : int; send_ilp : int; recv_non : int; recv_ilp : int }

val f11_simplified : f11
val f11_simple : f11

(** Figure 12 (SS10-30, 1 kB): throughput including the kernel-TCP build.
    The per-bar assignment is reconstructed from the text's constraints
    (kernel fastest; simple-encryption gap larger than simplified's). *)
type f12 = { non_ilp : float; ilp : float; kernel : float }

val f12_simplified : f12
val f12_simple : f12

(** Figure 13/14 anchors stated in the text (per 10.7 Mbyte transferred,
    in millions). *)
type f13 = {
  send_reads_non : float;
  send_reads_saved : float;  (** 13.7e6 fewer 4-byte reads *)
  send_writes_saved : float;
  recv_reads_non : float;
  recv_reads_saved : float;
  recv_writes_saved : float;
}

val f13_simplified : f13

(** Section 4.2: receive-side first-level data-cache miss ratios. *)
val recv_miss_ratio_non : float

val recv_miss_ratio_ilp : float

(** Section 4.2: send-side 1-byte cache misses (millions per 10.7 MB). *)
val send_byte_misses_non : float

val send_byte_misses_ilp : float

(** Receive-side write misses (millions): 3.6 non-ILP vs 11.0 ILP. *)
val recv_write_misses_non : float

val recv_write_misses_ilp : float

(** Section 1: the intro micro-experiment, Mbit/s. *)
val e0_sequential_mbps : float

val e0_fused_mbps : float
