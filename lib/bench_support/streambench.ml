module Link = Ilp_netsim.Link
module Simclock = Ilp_netsim.Simclock
module Demux = Ilp_netsim.Demux
module Datagram = Ilp_netsim.Datagram
module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine
module Sim = Ilp_memsim.Sim
module M = Ilp_obs.Metrics

type mode = Pipelined | Stop_and_wait

let mode_name = function
  | Pipelined -> "pipelined"
  | Stop_and_wait -> "stop-and-wait"

type config = {
  total_bytes : int;
  tsdu_payload : int;
  mss : int;
  rtt_us : float;
  loss_rate : float;
  seed : int;
  machine : Ilp_memsim.Config.t;
  mode : mode;
  sack : bool;
  native : bool;
  deadline_us : float;
}

let default_config =
  { total_bytes = 2 * 1024 * 1024;
    tsdu_payload = 32 * 1024;
    mss = 1448;
    rtt_us = 10_000.0;
    loss_rate = 0.0;
    seed = 1;
    machine = Ilp_memsim.Config.ss10_30;
    mode = Pipelined;
    sack = true;
    native = true;
    deadline_us = 300_000_000.0 }

type outcome = {
  ok : bool;
  error : string option;
  payload_bytes : int;
  tsdus : int;
  elapsed_us : float;
  goodput_mbps : float;
  segments : int;
  retransmissions : int;
  fast_retransmits : int;
  rto_fallbacks : int;
  peak_in_flight : int;
  ring_wraps : int;
  final_cwnd : int;
  wire_digest : int;
}

let key = "strmBENC"

(* The pipelined receive window.  8-aligned and within the 16-bit field
   the TCP header can carry, so what the peer sees is what we set. *)
let wide_window = 65528

let validate cfg =
  if cfg.total_bytes <= 0 then invalid_arg "Streambench: total_bytes must be positive";
  if cfg.tsdu_payload <= 0 then
    invalid_arg "Streambench: tsdu_payload must be positive";
  if cfg.mss < 64 || cfg.mss mod 8 <> 0 then
    invalid_arg "Streambench: mss must be a multiple of 8, >= 64";
  if cfg.rtt_us <= 0.0 then invalid_arg "Streambench: rtt_us must be positive";
  if cfg.loss_rate < 0.0 || cfg.loss_rate >= 1.0 then
    invalid_arg "Streambench: loss_rate must be in [0, 1)";
  if cfg.deadline_us <= 0.0 then
    invalid_arg "Streambench: deadline_us must be positive"

let transfer cfg =
  validate cfg;
  let sim =
    Sim.create ~mem_size:(cfg.total_bytes + (4 * 1024 * 1024)) cfg.machine
  in
  let clock = Simclock.create () in
  let demux = Demux.create () in
  let link = ref None in
  (* Rolling FNV-1a-style digest over every datagram offered to the wire
     (ports and payload, both directions, send order).  Two transfers
     whose wires are byte-identical have equal digests — the SACK-off vs
     SACK-on clean-link gate. *)
  let digest = ref 0x1505 in
  let wire_out d =
    let h = ref !digest in
    let mix b = h := (!h lxor b) * 0x01000193 land 0x3FFFFFFFFFFFFFF in
    mix d.Datagram.src_port;
    mix d.Datagram.dst_port;
    String.iter (fun c -> mix (Char.code c)) d.Datagram.payload;
    digest := !h;
    Link.send (Option.get !link) d
  in
  link :=
    Some
      (Link.create clock ~delay_us:(cfg.rtt_us /. 2.0) ~loss_rate:cfg.loss_rate
         ~seed:cfg.seed ~deliver:(Demux.deliver demux) ());
  let backend () =
    if cfg.native then
      Engine.Native
        (Ilp_fastpath.Cipher.Safer_simplified
           (Ilp_cipher.Safer_simplified.expand_key key))
    else Engine.Simulated
  in
  (* One TSDU per engine message; the engine's [max_message] bounds both
     the send staging and the receiver's reassembly area. *)
  let max_message = cfg.tsdu_payload + 64 in
  let mk_engine () =
    Engine.create sim
      ~cipher:(Ilp_cipher.Safer_simplified.charged sim ~key ())
      ~mode:Engine.Ilp ~backend:(backend ()) ~max_message ()
  in
  let tx_eng = mk_engine () and rx_eng = mk_engine () in
  let tx_cfg =
    { Socket.default_config with
      mss = cfg.mss;
      send_buffer = 128 * 1024;
      recv_window = wide_window;
      (* The default RTO floor suits the paper's 50 us loopback.  On a
         long constant-delay path the RTT estimator's variance decays to
         zero and the timeout converges on srtt = RTT exactly — racing
         every ack and retransmitting spuriously.  Real stacks impose a
         minimum RTO far above the RTT (RFC 6298 suggests one full
         second); scale ours with the configured RTT. *)
      rto_initial_us = Float.max Socket.default_config.Socket.rto_initial_us (3.0 *. cfg.rtt_us);
      rto_min_us = Float.max Socket.default_config.Socket.rto_min_us (1.5 *. cfg.rtt_us);
      (* ooo_slots is left at 0: the socket auto-sizes the reassembly
         stash to the whole pipelined flight (recv_window / mss + 4). *)
      sack = cfg.sack }
  in
  let rx_cfg =
    { tx_cfg with
      recv_window =
        (* Stop-and-wait is the degenerate window: the receiver never
           lets more than one MSS be outstanding. *)
        (match cfg.mode with Pipelined -> wide_window | Stop_and_wait -> cfg.mss)
    }
  in
  let tx = Socket.create sim clock tx_cfg ~local_port:7001 ~wire_out in
  let rx = Socket.create sim clock rx_cfg ~local_port:7002 ~wire_out in
  Demux.bind demux ~port:7001 (Socket.handle_datagram tx);
  Demux.bind demux ~port:7002 (Socket.handle_datagram rx);
  (match Engine.rx_style rx_eng with
  | Engine.Rx_integrated_style f -> Socket.set_rx_processing rx (Socket.Rx_integrated f)
  | Engine.Rx_deferred_style f -> Socket.set_rx_processing rx (Socket.Rx_separate f));
  let contents = Ilp_app.Workload.generate ~len:cfg.total_bytes ~seed:cfg.seed in
  let addr = Ilp_app.Workload.install sim contents in
  let n = (cfg.total_bytes + cfg.tsdu_payload - 1) / cfg.tsdu_payload in
  let chunk_len i = min cfg.tsdu_payload (cfg.total_bytes - (i * cfg.tsdu_payload)) in
  let failed = ref None in
  let fail msg = if !failed = None then failed := Some msg in
  Socket.set_on_abort tx (fun r -> fail ("sender: " ^ Socket.abort_reason_to_string r));
  Socket.set_on_abort rx (fun r -> fail ("receiver: " ^ Socket.abort_reason_to_string r));
  let delivered = ref 0 and payload = ref 0 in
  let t_done = ref 0.0 in
  Socket.set_on_message rx (fun ~src:_ ~len ->
      match Engine.read_plaintext rx_eng ~len with
      | Error e -> fail ("decode: " ^ e)
      | Ok s ->
          let i = !delivered in
          if i >= n then fail "receiver: TSDU past the end of the transfer"
          else begin
            let cl = chunk_len i in
            (* Leading header style: 4-byte length field, then the
               marshalled body, then alignment padding. *)
            if String.length s < 4 + cl
               || String.sub s 4 cl <> String.sub contents (i * cfg.tsdu_payload) cl
            then fail (Printf.sprintf "receiver: TSDU %d not byte-exact" i)
            else begin
              delivered := i + 1;
              payload := !payload + cl;
              if !delivered = n then t_done := Simclock.now clock
            end
          end);
  let next = ref 0 in
  let send_next () =
    let i = !next in
    let ps =
      Engine.prepare_stream_segments tx_eng
        [ Engine.Seg_app { addr = addr + (i * cfg.tsdu_payload); len = chunk_len i } ]
    in
    match
      Socket.send_stream tx ~seg_unit:ps.Engine.seg_unit ~len:ps.Engine.stream_len
        ~fill:ps.Engine.fill_range
    with
    | Ok () ->
        incr next;
        true
    | Error Socket.Buffer_full -> false
    | Error e ->
        fail
          ("sender: "
          ^ (match e with
            | Socket.Not_established -> "not established"
            | Socket.Message_too_big -> "message too big"
            | Socket.Buffer_full -> "buffer full"
            | Socket.Window_full -> "window full"));
        false
  in
  (* Handshake (not measured). *)
  Socket.listen rx;
  Socket.connect tx ~remote_port:7002;
  Simclock.run_until_idle clock;
  if Socket.state tx <> Socket.Established then
    fail "handshake did not complete";
  let t0 = Simclock.now clock in
  let step = 200.0 in
  let guard = ref (int_of_float (cfg.deadline_us /. step) + 16) in
  while
    !failed = None && !delivered < n && !guard > 0
    && Simclock.now clock -. t0 < cfg.deadline_us
  do
    decr guard;
    while !next < n && send_next () do () done;
    Simclock.advance clock step
  done;
  if !failed = None && !delivered < n then fail "deadline exceeded";
  let stats = Socket.stats tx in
  let elapsed = if !delivered = n then !t_done -. t0 else Simclock.now clock -. t0 in
  let final_cwnd = Socket.congestion_window tx in
  let ring_wraps = Socket.ring_wraps tx in
  Engine.destroy tx_eng;
  Engine.destroy rx_eng;
  { ok = !failed = None && !delivered = n;
    error = !failed;
    payload_bytes = !payload;
    tsdus = !delivered;
    elapsed_us = elapsed;
    goodput_mbps =
      (if elapsed > 0.0 then float_of_int !payload *. 8.0 /. elapsed else 0.0);
    segments = stats.Socket.segments_sent;
    retransmissions = stats.Socket.retransmissions;
    fast_retransmits = stats.Socket.fast_retransmits;
    rto_fallbacks = stats.Socket.rto_fallbacks;
    peak_in_flight = stats.Socket.peak_in_flight;
    ring_wraps;
    final_cwnd;
    wire_digest = !digest }

type point = {
  p_mode : mode;
  p_sack : bool;
  p_rtt_us : float;
  p_loss : float;
  p_out : outcome;
}

type result = {
  cfg : config;
  points : point list;
  gate_ratio : float;
  sack_ratio : float;
}

let gate_rtt_us = 10_000.0
let sack_gate_loss = 0.05

let run ?(quick = false) ?(sack_compare = false) ?config () =
  let cfg =
    match config with
    | Some c -> c
    | None ->
        if quick then { default_config with total_bytes = 256 * 1024 }
        else default_config
  in
  let grid =
    if quick then [ (gate_rtt_us, 0.0); (gate_rtt_us, sack_gate_loss) ]
    else
      [ (2_000.0, 0.0); (gate_rtt_us, 0.0); (gate_rtt_us, 0.01);
        (gate_rtt_us, sack_gate_loss); (gate_rtt_us, 0.10) ]
  in
  (* The base matrix runs both modes with the configured SACK setting;
     [sack_compare] adds a pipelined NewReno (SACK-off) sweep so the SACK
     gates have their baseline. *)
  let cells =
    List.concat_map
      (fun mode -> List.map (fun (r, l) -> (mode, cfg.sack, r, l)) grid)
      [ Pipelined; Stop_and_wait ]
    @
    if sack_compare then
      List.map (fun (r, l) -> (Pipelined, not cfg.sack, r, l)) grid
    else []
  in
  let points =
    List.map
      (fun (mode, sack, rtt_us, loss) ->
        let out = transfer { cfg with mode; sack; rtt_us; loss_rate = loss } in
        { p_mode = mode; p_sack = sack; p_rtt_us = rtt_us; p_loss = loss;
          p_out = out })
      cells
  in
  let cell mode sack loss =
    List.find_opt
      (fun p ->
        p.p_mode = mode && p.p_sack = sack && p.p_rtt_us = gate_rtt_us
        && p.p_loss = loss)
      points
  in
  let gate_ratio =
    match (cell Pipelined cfg.sack 0.0, cell Stop_and_wait cfg.sack 0.0) with
    | Some p, Some s when s.p_out.goodput_mbps > 0.0 ->
        p.p_out.goodput_mbps /. s.p_out.goodput_mbps
    | _ -> 0.0
  in
  let sack_ratio =
    match (cell Pipelined true sack_gate_loss, cell Pipelined false sack_gate_loss) with
    | Some w, Some wo when wo.p_out.goodput_mbps > 0.0 ->
        w.p_out.goodput_mbps /. wo.p_out.goodput_mbps
    | _ -> 0.0
  in
  { cfg; points; gate_ratio; sack_ratio }

let check ?(min_ratio = 4.0) ?(min_sack_ratio = 2.0) r =
  let failures = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun p ->
      let tag =
        Printf.sprintf "%s%s rtt=%.0fms loss=%.0f%%" (mode_name p.p_mode)
          (if p.p_sack then "+sack" else "")
          (p.p_rtt_us /. 1000.0) (p.p_loss *. 100.0)
      in
      if not p.p_out.ok then
        bad "%s: not byte-exact: %s" tag
          (Option.value p.p_out.error ~default:"unknown");
      (match p.p_mode with
      | Stop_and_wait ->
          if p.p_out.peak_in_flight > r.cfg.mss then
            bad "%s: %d bytes in flight under a one-MSS window" tag
              p.p_out.peak_in_flight
      | Pipelined ->
          if p.p_out.ok && p.p_out.peak_in_flight <= r.cfg.mss then
            bad "%s: never had more than one segment in flight" tag))
    r.points;
  if r.gate_ratio < min_ratio then
    bad "pipelined goodput is %.2fx stop-and-wait at %.0f ms RTT (floor %.2fx)"
      r.gate_ratio (gate_rtt_us /. 1000.0) min_ratio;
  (* The SACK gates bind only when the run carried the NewReno baseline
     (run ~sack_compare:true). *)
  let cell mode sack loss =
    List.find_opt
      (fun p ->
        p.p_mode = mode && p.p_sack = sack && p.p_rtt_us = gate_rtt_us
        && p.p_loss = loss)
      r.points
  in
  (match (cell Pipelined true sack_gate_loss, cell Pipelined false sack_gate_loss) with
  | Some w, Some wo ->
      if r.sack_ratio < min_sack_ratio then
        bad
          "SACK goodput is %.2fx NewReno at %.0f ms RTT / %.0f%% loss (floor \
           %.2fx)"
          r.sack_ratio (gate_rtt_us /. 1000.0) (sack_gate_loss *. 100.0)
          min_sack_ratio;
      if w.p_out.rto_fallbacks >= wo.p_out.rto_fallbacks then
        bad
          "SACK took %d RTO fallbacks vs NewReno's %d at %.0f%% loss (must be \
           strictly fewer)"
          w.p_out.rto_fallbacks wo.p_out.rto_fallbacks (sack_gate_loss *. 100.0)
  | _ -> ());
  (match (cell Pipelined true 0.0, cell Pipelined false 0.0) with
  | Some w, Some wo ->
      if w.p_out.wire_digest <> wo.p_out.wire_digest then
        bad
          "clean-link wire differs with SACK on vs off (digest %x vs %x): \
           options leaked onto an unimpaired connection"
          w.p_out.wire_digest wo.p_out.wire_digest
  | _ -> ());
  if !failures = [] then Ok () else Error (List.rev !failures)

let print_table r =
  Report.banner "streaming TCP goodput (simulated time)";
  Report.table
    ~header:
      [ "mode"; "sack"; "rtt ms"; "loss %"; "goodput Mbit/s"; "rexmit";
        "fast rx"; "rto"; "peak flight"; "wraps"; "ok" ]
    (List.map
       (fun p ->
         [ mode_name p.p_mode;
           (if p.p_sack then "on" else "off");
           Printf.sprintf "%.0f" (p.p_rtt_us /. 1000.0);
           Printf.sprintf "%.0f" (p.p_loss *. 100.0);
           Printf.sprintf "%.3f" p.p_out.goodput_mbps;
           string_of_int p.p_out.retransmissions;
           string_of_int p.p_out.fast_retransmits;
           string_of_int p.p_out.rto_fallbacks;
           string_of_int p.p_out.peak_in_flight;
           string_of_int p.p_out.ring_wraps;
           (if p.p_out.ok then "yes"
            else "NO: " ^ Option.value p.p_out.error ~default:"?") ])
       r.points);
  Report.note "pipelined / stop-and-wait at %.0f ms RTT, no loss: %.2fx\n"
    (gate_rtt_us /. 1000.0) r.gate_ratio;
  if r.sack_ratio > 0.0 then
    Report.note "SACK / NewReno at %.0f ms RTT, %.0f%% loss: %.2fx\n"
      (gate_rtt_us /. 1000.0) (sack_gate_loss *. 100.0) r.sack_ratio

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"benchmark\": \"stream\",\n  \"unit\": \"mbit_per_s\",\n\
       \  \"total_bytes\": %d,\n  \"tsdu_payload\": %d,\n  \"mss\": %d,\n\
       \  \"gate_ratio\": %.3f,\n  \"sack_ratio\": %.3f,\n  \"points\": [\n"
       r.cfg.total_bytes r.cfg.tsdu_payload r.cfg.mss r.gate_ratio
       r.sack_ratio);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"sack\": %b, \"rtt_us\": %.0f, \
            \"loss\": %.3f, \"ok\": %b, \"goodput_mbps\": %.4f, \
            \"elapsed_us\": %.0f, \"payload_bytes\": %d, \"tsdus\": %d, \
            \"segments\": %d, \"retransmissions\": %d, \
            \"fast_retransmits\": %d, \"rto_fallbacks\": %d, \
            \"peak_in_flight\": %d, \"ring_wraps\": %d, \"final_cwnd\": %d, \
            \"wire_digest\": %d}"
           (mode_name p.p_mode) p.p_sack p.p_rtt_us p.p_loss p.p_out.ok
           p.p_out.goodput_mbps p.p_out.elapsed_us p.p_out.payload_bytes
           p.p_out.tsdus p.p_out.segments p.p_out.retransmissions
           p.p_out.fast_retransmits p.p_out.rto_fallbacks
           p.p_out.peak_in_flight p.p_out.ring_wraps p.p_out.final_cwnd
           p.p_out.wire_digest))
    r.points;
  Buffer.add_string b "\n  ],\n  \"obs\": ";
  Buffer.add_string b (M.to_json (M.snapshot M.default));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write_json r ~path =
  let oc = open_out path in
  output_string oc (to_json r);
  close_out oc
