(** Perf-regression detector: compare the current [BENCH_*.json]
    trajectories against a committed baseline with tolerance bands.

    Indicators per family: wall-clock speedups per payload size (wide
    band — real time is noisy), the deterministic mem copied/minor-words
    ratios per point and the disabled-instrumentation allocation figure,
    and the deterministic stream gate ratio and per-point goodputs.  An
    indicator present in the baseline but absent from the current run is
    itself a regression (a silently dropped benchmark point); a family
    file absent from the baseline directory is skipped. *)

(** Minimal JSON reader for the hand-rolled writers in this repo (the
    container has no JSON library). *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_string : string -> (json, string) result
val parse_file : string -> (json, string) result
val member : string -> json -> json option

type verdict = {
  v_key : string;
  v_baseline : float;
  v_current : float;
  v_tol : float;
  v_ok : bool;
}

type report = {
  verdicts : verdict list;
  missing_current : string list;
  files_compared : string list;
  files_skipped : string list;
}

val run :
  ?tolerance:float ->
  ?wall_tolerance:float ->
  baseline_dir:string ->
  current_dir:string ->
  unit ->
  (report, string) result
(** Compare each committed [BENCH_*.json] under [baseline_dir] against
    its counterpart under [current_dir].  [tolerance] (default 0.10)
    bands the deterministic mem/stream indicators, [wall_tolerance]
    (default 0.30) the noisy wall-clock speedups.  [Error] means a
    comparison could not even run (current file missing or unparsable —
    treated as failure by the CLI). *)

val regressions : report -> verdict list
val passed : report -> bool
(** No regressed indicator and no baseline indicator missing from the
    current run. *)

val verdict_line : verdict -> string
val report_lines : report -> string list
