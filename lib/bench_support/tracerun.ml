open Ilp_memsim
module Ft = Ilp_app.File_transfer
module Engine = Ilp_core.Engine
module Trace = Ilp_obs.Trace
module M = Ilp_obs.Metrics

type result = {
  recorded : int;
  dropped : int;
  packets : int;
  send_chains : int;
  recv_chains : int;
  segment_spans : int;
  pipelined_overlaps : int;
  json : string;
  timeline : string list;
  metrics : M.snapshot;  (* diff over the traced run *)
}

(* Stage-presence bitmask per packet; a send chain is complete when all
   four send manipulation spans carry the same packet id, a receive chain
   when all three receive spans do. *)
let bit = function
  | Trace.Send_marshal -> 1
  | Trace.Send_encrypt -> 2
  | Trace.Send_checksum -> 4
  | Trace.Send_ring_copy -> 8
  | Trace.Recv_checksum -> 16
  | Trace.Recv_decrypt -> 32
  | Trace.Recv_unmarshal -> 64
  | _ -> 0

let send_full = 1 lor 2 lor 4 lor 8
let recv_full = 16 lor 32 lor 64

(* Overlapping tcp.segment spans witness the pipelined window: a segment
   transmitted before an earlier one was acknowledged. *)
let analyse_segments () =
  let segs =
    List.filter
      (fun (s : Trace.span_rec) ->
        s.Trace.stage = Trace.Tcp_segment && not s.Trace.is_instant)
      (Trace.spans ())
  in
  let overlapping (s1 : Trace.span_rec) =
    List.exists
      (fun (s2 : Trace.span_rec) ->
        s1 != s2
        && s2.Trace.ts <= s1.Trace.ts
        && s1.Trace.ts < s2.Trace.ts +. s2.Trace.dur)
      segs
  in
  ( List.length segs,
    List.fold_left (fun acc s -> if overlapping s then acc + 1 else acc) 0 segs )

let analyse () =
  let masks = Hashtbl.create 128 in
  List.iter
    (fun (s : Trace.span_rec) ->
      if s.Trace.packet > 0 && not s.Trace.is_instant then begin
        let b = bit s.Trace.stage in
        if b <> 0 then
          let cur = try Hashtbl.find masks s.Trace.packet with Not_found -> 0 in
          Hashtbl.replace masks s.Trace.packet (cur lor b)
      end)
    (Trace.spans ());
  Hashtbl.fold
    (fun _ m (p, sc, rc) ->
      ( p + 1,
        (if m land send_full = send_full then sc + 1 else sc),
        if m land recv_full = recv_full then rc + 1 else rc ))
    masks (0, 0, 0)

(* One ILP and one separate transfer on the simulated SS10/30, traced end
   to end, so the exported ring shows both the fused and the four-pass
   span shapes.  Timestamps are simulated microseconds ([Machine.micros])
   throughout — the transfers run on the simulated backend. *)
let run ?(quick = false) () =
  let machine = Config.ss10_30 in
  let before = M.snapshot M.default in
  Trace.enable ~capacity:(if quick then 8192 else 65536) ();
  let go ?mss mode =
    let setup =
      { (Ft.default_setup ~machine ~mode) with
        Ft.file_len = (if quick then 1024 else 4096);
        copies = (if quick then 2 else 4);
        max_reply = 512;
        mss }
    in
    let r = Ft.run setup in
    if not r.Ft.ok then begin
      Trace.disable ();
      failwith
        ("Tracerun: transfer failed: "
        ^ Option.value r.Ft.error ~default:"unknown")
    end
  in
  go Engine.Ilp;
  go Engine.Separate;
  (* A streamed leg: replies wider than the MSS travel as pipelined
     segments, so the exported trace shows overlapping tcp.segment
     lifetimes — the visual signature of the sliding window. *)
  go ~mss:128 Engine.Ilp;
  Trace.disable ();
  let segment_spans, pipelined_overlaps = analyse_segments () in
  let packets, send_chains, recv_chains = analyse () in
  { recorded = Trace.recorded ();
    dropped = Trace.dropped ();
    packets;
    send_chains;
    recv_chains;
    segment_spans;
    pipelined_overlaps;
    json = Trace.to_chrome_json ();
    timeline = Trace.timeline ~tail:24 ();
    metrics = M.diff (M.snapshot M.default) before }

let complete r =
  r.send_chains > 0 && r.recv_chains > 0 && r.segment_spans > 0
  && r.pipelined_overlaps > 0

let write_json r ~path =
  let oc = open_out path in
  output_string oc r.json;
  close_out oc

let summary_lines r =
  [ Printf.sprintf "spans recorded   %d (%d evicted by ring wrap)" r.recorded
      r.dropped;
    Printf.sprintf "packets traced   %d" r.packets;
    Printf.sprintf
      "send chains      %d complete (marshal+encrypt+checksum+ring-copy)"
      r.send_chains;
    Printf.sprintf
      "recv chains      %d complete (checksum+decrypt+unmarshal)"
      r.recv_chains;
    Printf.sprintf "segment spans    %d (%d overlapping: pipelined window)"
      r.segment_spans r.pipelined_overlaps ]
