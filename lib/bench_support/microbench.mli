(** The introduction's micro-experiment (E0): XDR-marshalling a 20-integer
    array combined with the TCP checksum, sequential versus fused — the
    Clark & Tennenhouse-style loop experiment whose ~40-50% gain the rest
    of the paper deflates.

    Two versions are provided: a {e simulated} one on the SS10-30 model
    (same cost accounting as the main experiments) and a {e wall-clock}
    one in plain OCaml measured with Bechamel.  The wall-clock version is
    a sanity check only: OCaml boxing/GC and a 2020s memory hierarchy
    dampen word-level fusion (the repro caveat), so its absolute ratio is
    expected to be smaller. *)

type outcome = { sequential_mbps : float; fused_mbps : float }

(** Simulated, on the given machine (default SS10-30). *)
val simulated : ?machine:Ilp_memsim.Config.t -> unit -> outcome

(** Wall-clock, via Bechamel ([quota] seconds per case, default 0.5). *)
val wall_clock : ?quota_s:float -> unit -> outcome

(** Wall-clock throughput of the pure cipher kernels (Bechamel, one
    [Test.make] per cipher): name and Mbit/s on the host machine.
    The paper's ordering — simple >> simplified SAFER >> full SAFER >>
    DES — should survive three decades of hardware. *)
val ciphers_wall_clock : ?quota_s:float -> unit -> (string * float) list
