(** Console reporting for the reproduction harness: aligned tables and
    paper-versus-measured cells. *)

(** Section banner ("==== Figure 6 ... ===="). *)
val banner : string -> unit

(** Free-form note line. *)
val note : ('a, out_channel, unit) format -> 'a

(** [table ~header rows] prints an aligned table. *)
val table : header:string list -> string list list -> unit

(** [vs ~paper ~ours] renders "369 -> 342.1 (-7.3%)". *)
val vs : paper:float -> ours:float -> string

(** [percentile_sorted sorted q] is the nearest-rank [q]-quantile of an
    already-sorted array ([q = 0.5] picks index [n/2], the upper-median
    convention of the wall benchmark).  Raises [Invalid_argument] on an
    empty array or out-of-range [q]. *)
val percentile_sorted : float array -> float -> float

val us : float -> string
val mbps : float -> string
val millions : float -> string

(** [pct_gain ~base ~better] is the relative improvement of [better] over
    [base] in percent (positive = better is smaller/faster for times). *)
val pct_gain : base:float -> better:float -> float
