(* Continuous-telemetry runner behind `ilpbench report`: run the
   overload soak (the harshest steady-state workload the repo has) with
   a Simclock-driven periodic sampler attached, derive the time series,
   verify the sampling machinery against the registry, and render the
   dashboard / JSON artifacts.

   The sampler tick is deliberately bounded: it reschedules itself only
   while ring capacity remains, so the soak's trailing
   [Simclock.run_until_idle] drains at most [capacity] extra events
   instead of livelocking on a self-perpetuating timer. *)

module M = Ilp_obs.Metrics
module Ts = Ilp_obs.Timeseries
module Recorder = Ilp_obs.Recorder
module Soak = Ilp_app.Soak
module Simclock = Ilp_netsim.Simclock

type config = {
  soak : Soak.overload_config;
  interval_us : float;
  capacity : int;
  slos : Ts.slo list;
}

(* SLO thresholds for the overload soak's virtual time: the end-to-end
   p99 may legitimately absorb Busy backoff and persist probing, so the
   bound is the soak's own patience; the ack-RTT p99 is Karn-filtered
   clean samples and should stay well under a virtual second even under
   forged-ack chaos. *)
let default_slos =
  [ { Ts.slo_hist = "rpc.latency_us";
      slo_percentile = 0.99;
      slo_limit = 30_000_000 };
    { Ts.slo_hist = "tcp.ack_rtt_us";
      slo_percentile = 0.99;
      slo_limit = 2_000_000 } ]

let default_config =
  { soak = Soak.default_overload_config;
    interval_us = 10_000.0;
    capacity = 512;
    slos = default_slos }

let quick_config =
  { soak = { Soak.default_overload_config with clients = 4 };
    interval_us = 20_000.0;
    capacity = 256;
    slos = default_slos }

type result = {
  outcome : Soak.overload_outcome;
  ts : Ts.t;
  base : M.snapshot;
  final : M.snapshot;  (* registry state after the final sample *)
}

let run ?(log = fun _ -> ()) ?(config = default_config) () =
  let ts =
    Ts.create ~capacity:config.capacity ~slos:config.slos
      ~interval_us:config.interval_us M.default
  in
  let base = Ts.base ts in
  let clock_ref = ref None in
  let attach clock =
    clock_ref := Some clock;
    (* One tick is reserved for the explicit final sample after the
       soak settles, so the periodic chain takes at most capacity-1. *)
    let remaining = ref (config.capacity - 1) in
    let rec tick () =
      Ts.sample ts ~now:(Simclock.now clock);
      if !remaining > 0 then begin
        decr remaining;
        ignore (Simclock.schedule clock ~after:config.interval_us tick)
      end
    in
    if !remaining > 0 then begin
      decr remaining;
      ignore (Simclock.schedule clock ~after:config.interval_us tick)
    end
  in
  let outcome = Soak.run_overload ~log ~on_clock:attach config.soak in
  (* Final sample: the telescoped sample deltas must now account for
     every counter bump of the whole soak. *)
  (match !clock_ref with
  | Some clock -> Ts.sample ts ~now:(Simclock.now clock)
  | None -> ());
  { outcome; ts; base; final = M.snapshot M.default }

(* Conservation: base + (sum of consecutive sampled deltas) must equal
   the final registry value for every counter — a dropped or corrupted
   sample slot breaks the telescoping.  Returns the offending names. *)
let conservation_failures r =
  List.filter_map
    (fun (name, v) ->
      match v with
      | M.Counter final ->
          let base =
            match M.find r.base name with Some (M.Counter n) -> n | _ -> 0
          in
          if base + Ts.delta_sum r.ts name <> final then Some name else None
      | _ -> None)
    r.final

let check r =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if not (Soak.overload_invariants_hold r.outcome) then
    fail "overload soak invariants violated";
  if Ts.taken r.ts < 2 then
    fail "sampler took %d samples (need at least 2)" (Ts.taken r.ts);
  (match conservation_failures r with
  | [] -> ()
  | names ->
      fail "sampled counter deltas do not sum to the registry: %s"
        (String.concat ", " names));
  List.iter
    (fun (slo, n) ->
      if n > 0 then
        fail "SLO breached: %s %s > %d (%d samples in breach)" slo.Ts.slo_hist
          (Ts.slo_gauge_name slo) slo.Ts.slo_limit n)
    (Ts.breaches r.ts);
  match !failures with [] -> Ok () | fs -> Error (List.rev fs)

let dashboard_lines r = Ts.dashboard r.ts

let summary_lines r =
  Soak.overload_summary_lines r.outcome
  @ [ Printf.sprintf "sampler: %d samples taken, %d retained, interval %.0f us"
        (Ts.taken r.ts) (Ts.count r.ts) (Ts.interval_us r.ts) ]

let to_json r = Ts.to_json r.ts

let write_json r ~path =
  let oc = open_out path in
  output_string oc (to_json r);
  close_out oc

let flight_lines () = Recorder.dump ()

let write_flight ~path =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) (flight_lines ());
  close_out oc
