(* Perf-regression detector: compare the current BENCH_wall / BENCH_mem /
   BENCH_stream JSON trajectories against a committed baseline with
   per-family tolerance bands.

   The container has no JSON library, and every writer in this repo
   hand-rolls its output — so the reader side is a small recursive-
   descent parser over exactly the JSON subset those writers emit
   (objects, arrays, strings with simple escapes, numbers, booleans,
   null).  Indicators are chosen for signal-to-noise: the wall
   benchmark's speedups are real wall-clock and get a wide band; the
   mem ratios and stream goodputs are deterministic (simulated machine,
   virtual time) and get a tight one. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> parse_error "expected %c at %d, found %c" c !pos x
    | None -> parse_error "expected %c at %d, found end of input" c !pos
  in
  let parse_str () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then parse_error "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
             if !pos + 4 > n then parse_error "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code = int_of_string ("0x" ^ hex) in
             (* The writers only emit ASCII; decode the BMP point as a
                raw byte when it fits, '?' otherwise. *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else Buffer.add_char b '?'
         | c -> parse_error "bad escape \\%c" c);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_num () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> parse_error "bad number %S at %d" lit start
  in
  let parse_lit lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else parse_error "bad literal at %d" !pos
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some '"' -> Str (parse_str ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_str () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> parse_error "expected , or } at %d" !pos
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> parse_error "expected , or ] at %d" !pos
          in
          Arr (elements [])
        end
    | Some 't' -> parse_lit "true" (Bool true)
    | Some 'f' -> parse_lit "false" (Bool false)
    | Some 'n' -> parse_lit "null" Null
    | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_num ()
                else parse_error "unexpected %c at %d" c !pos
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_error "trailing garbage at %d" !pos;
    Ok v
  with Parse_error e -> Error e

let parse_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> parse_string s

(* ---- accessors ---- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let num_member key j =
  match member key j with Some (Num f) -> Some f | _ -> None

let str_member key j =
  match member key j with Some (Str s) -> Some s | _ -> None

let arr_member key j =
  match member key j with Some (Arr l) -> l | _ -> []

(* ---- indicators ----

   An indicator is one gated scalar extracted from a benchmark file,
   identified by a stable key so baseline and current line up even if
   point order changes. *)

type direction = Higher_better | Lower_better

type indicator = {
  key : string;
  value : float;
  direction : direction;
  tol : float;  (* fractional tolerance band *)
  slack : float;  (* absolute slack added on top of the band *)
}

let wall_indicators ~wall_tol j =
  List.filter_map
    (fun p ->
      match (num_member "len" p, num_member "speedup" p) with
      | Some len, Some speedup ->
          Some
            { key = Printf.sprintf "wall.speedup[len=%.0f]" len;
              value = speedup;
              direction = Higher_better;
              tol = wall_tol;
              slack = 0.0 }
      | _ -> None)
    (arr_member "points" j)

let mem_indicators ~tol j =
  let points =
    List.filter_map
      (fun p ->
        match
          (num_member "len" p, str_member "mode" p, str_member "backend" p)
        with
        | Some len, Some mode, Some backend ->
            let pick name =
              match num_member name p with
              | Some v ->
                  [ { key =
                        Printf.sprintf "mem.%s[len=%.0f,%s,%s]" name len mode
                          backend;
                      value = v;
                      direction = Higher_better;
                      tol;
                      slack = 0.0 } ]
              | None -> []
            in
            (* Native lanes gate host-bytes ratios (the ledger covers the
               whole data path there); simulated lanes gate the GC ratio. *)
            Some
              (if backend = "native" then
                 pick "copied_ratio" @ pick "rx_copied_ratio"
               else pick "minor_words_ratio")
        | _ -> None)
      (arr_member "points" j)
  in
  let disabled =
    match num_member "disabled_trace_minor_words_per_call" j with
    | Some v ->
        [ { key = "mem.disabled_trace_minor_words_per_call";
            value = v;
            direction = Lower_better;
            tol;
            (* The absolute gate is 0.01 words/call; give the comparison
               the same absolute slack so 0-vs-0.004 noise never trips. *)
            slack = 0.01 } ]
    | None -> []
  in
  List.concat points @ disabled

let stream_indicators ~tol j =
  let gate =
    match num_member "gate_ratio" j with
    | Some v ->
        [ { key = "stream.gate_ratio";
            value = v;
            direction = Higher_better;
            tol;
            slack = 0.0 } ]
    | None -> []
  in
  let points =
    List.filter_map
      (fun p ->
        match
          ( str_member "mode" p,
            num_member "rtt_us" p,
            num_member "loss" p,
            num_member "goodput_mbps" p )
        with
        | Some mode, Some rtt, Some loss, Some goodput ->
            Some
              { key =
                  Printf.sprintf "stream.goodput[%s,rtt=%.0f,loss=%.3f]" mode
                    rtt loss;
                value = goodput;
                direction = Higher_better;
                tol;
                slack = 0.0 }
        | _ -> None)
      (arr_member "points" j)
  in
  gate @ points

(* ---- comparison ---- *)

type verdict = {
  v_key : string;
  v_baseline : float;
  v_current : float;
  v_tol : float;
  v_ok : bool;
}

type report = {
  verdicts : verdict list;
  missing_current : string list;
      (* indicator in the baseline, absent from the current run: a
         silently dropped benchmark point is itself a regression *)
  files_compared : string list;
  files_skipped : string list;  (* absent from the baseline directory *)
}

let compare_indicators ~baseline ~current =
  let current_tbl = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace current_tbl i.key i) current;
  let verdicts, missing =
    List.fold_left
      (fun (vs, missing) b ->
        match Hashtbl.find_opt current_tbl b.key with
        | None -> (vs, b.key :: missing)
        | Some c ->
            let ok =
              match b.direction with
              | Higher_better ->
                  c.value >= (b.value *. (1.0 -. b.tol)) -. b.slack
              | Lower_better ->
                  c.value <= (b.value *. (1.0 +. b.tol)) +. b.slack
            in
            ( { v_key = b.key;
                v_baseline = b.value;
                v_current = c.value;
                v_tol = b.tol;
                v_ok = ok }
              :: vs,
              missing ))
      ([], []) baseline
  in
  (List.rev verdicts, List.rev missing)

let benchmark_files ~tol ~wall_tol =
  [ ("BENCH_wall.json", wall_indicators ~wall_tol);
    ("BENCH_mem.json", mem_indicators ~tol);
    ("BENCH_stream.json", stream_indicators ~tol) ]

let run ?(tolerance = 0.10) ?(wall_tolerance = 0.30) ~baseline_dir
    ~current_dir () =
  let tol = tolerance and wall_tol = wall_tolerance in
  let rec go files acc =
    match files with
    | [] ->
        let verdicts, missing, compared, skipped = acc in
        Ok
          { verdicts = List.rev verdicts;
            missing_current = List.rev missing;
            files_compared = List.rev compared;
            files_skipped = List.rev skipped }
    | (file, extract) :: rest -> (
        let verdicts, missing, compared, skipped = acc in
        let base_path = Filename.concat baseline_dir file in
        if not (Sys.file_exists base_path) then
          (* No committed baseline for this family: nothing to gate. *)
          go rest (verdicts, missing, compared, file :: skipped)
        else
          let cur_path = Filename.concat current_dir file in
          if not (Sys.file_exists cur_path) then
            Error
              (Printf.sprintf
                 "%s has a committed baseline but is missing from %s" file
                 current_dir)
          else
            match (parse_file base_path, parse_file cur_path) with
            | Error e, _ -> Error (Printf.sprintf "%s (baseline): %s" file e)
            | _, Error e -> Error (Printf.sprintf "%s (current): %s" file e)
            | Ok bj, Ok cj ->
                let vs, miss =
                  compare_indicators ~baseline:(extract bj)
                    ~current:(extract cj)
                in
                go rest
                  ( List.rev_append vs verdicts,
                    List.rev_append miss missing,
                    file :: compared,
                    skipped ))
  in
  go (benchmark_files ~tol ~wall_tol) ([], [], [], [])

let regressions r = List.filter (fun v -> not v.v_ok) r.verdicts

let passed r = regressions r = [] && r.missing_current = []

let delta_pct v =
  if v.v_baseline = 0.0 then 0.0
  else (v.v_current -. v.v_baseline) /. v.v_baseline *. 100.0

let verdict_line v =
  Printf.sprintf "%-50s %10.3f -> %10.3f  %+6.1f%% (band %.0f%%)  %s" v.v_key
    v.v_baseline v.v_current (delta_pct v) (v.v_tol *. 100.0)
    (if v.v_ok then "ok" else "REGRESSION")

let report_lines r =
  let lines = List.map verdict_line r.verdicts in
  let missing =
    List.map
      (fun k -> Printf.sprintf "%-50s missing from current run  REGRESSION" k)
      r.missing_current
  in
  let skipped =
    List.map
      (fun f -> Printf.sprintf "%s: no committed baseline, skipped" f)
      r.files_skipped
  in
  let summary =
    let n_reg = List.length (regressions r) + List.length r.missing_current in
    if n_reg = 0 then
      Printf.sprintf "regress: %d indicators within tolerance (%s)"
        (List.length r.verdicts)
        (String.concat ", " r.files_compared)
    else Printf.sprintf "regress: %d REGRESSED indicators" n_reg
  in
  lines @ missing @ skipped @ [ summary ]
