open Ilp_codec

type request = {
  file_name : string;
  copies : int;
  max_reply : int;
  req_id : int;
  start_copy : int;
  start_offset : int;
}

let request ?(req_id = 0) ?(start_copy = 0) ?(start_offset = 0) ~file_name
    ~copies ~max_reply () =
  { file_name; copies; max_reply; req_id; start_copy; start_offset }

(* A request with no idempotency id and no resume point marshals in the
   original three-field form, so a stack that never crashes puts bytes on
   the wire identical to the pre-fault-model stack. *)
let request_is_v1 r = r.req_id = 0 && r.start_copy = 0 && r.start_offset = 0

type probe = { p_file_name : string; p_offset : int; p_crc : int; p_req_id : int }

type ctrl = Request of request | Probe of probe

type status = Ok | Not_found | Refused | Busy

type reply_header = {
  status : status;
  copy : int;
  file_offset : int;
  total_len : int;
  data_len : int;
}

let request_ty : Asn1.ty =
  Seq [ ("fileName", Str); ("copies", Int); ("maxReply", Int) ]

(* The resumable form: idempotency id plus resume point.  The three
   control-message forms are distinguished on the wire by the number of
   integer words after the file name — 2 (v1 request), 3 (CRC probe),
   5 (v2 request) — so no tag word is needed and the v1 encoding stays
   untouched. *)
let request_ty_v2 : Asn1.ty =
  Seq
    [ ("fileName", Str);
      ("copies", Int);
      ("maxReply", Int);
      ("reqId", Uint);
      ("startCopy", Uint);
      ("startOffset", Uint) ]

(* "Does file [fileName]'s prefix [0, offset) fold to CRC32 [crc]?" —
   the client's resume handshake.  The reply is a data-less standard
   reply header: [Ok] verifies the prefix, [Refused] rejects it (the
   restarted server's file differs), [Not_found] as usual. *)
let probe_ty : Asn1.ty =
  Seq [ ("fileName", Str); ("offset", Uint); ("crc", Uint); ("reqId", Uint) ]

(* Capability flags, negotiated per connection on the first control
   message.  Bit 0: the client receives v2 ("Reverso") framed streams —
   the server must prefix every reply TSDU on this connection with the
   {!Ilp_tcp.Framing} prelude. *)
let flag_rx_framing = 0x1

(* The flagged forms append one flag word, extending the tag-free
   word-count dispatch: 2 (v1 request), 3 (probe), 4 (flagged probe),
   5 (v2 request), 6 (flagged request).  There is no flagged v1 request —
   a flag word after the v1 fields would collide with the probe's three
   words — so a flagged request always marshals the full v2 field set
   (its resume fields may simply be zero).  A client negotiating framing
   has already left v1 byte-identity behind, so nothing is lost. *)
let request_ty_flagged : Asn1.ty =
  Seq
    [ ("fileName", Str);
      ("copies", Int);
      ("maxReply", Int);
      ("reqId", Uint);
      ("startCopy", Uint);
      ("startOffset", Uint);
      ("flags", Uint) ]

let probe_ty_flagged : Asn1.ty =
  Seq
    [ ("fileName", Str); ("offset", Uint); ("crc", Uint); ("reqId", Uint);
      ("flags", Uint) ]

let status_names = [| "ok"; "notFound"; "refused"; "busy" |]

let reply_ty : Asn1.ty =
  Seq
    [ ("status", Enum status_names);
      ("copy", Int);
      ("fileOffset", Int);
      ("totalLen", Int);
      ("data", Opaque) ]

let request_stub = Stub.compile request_ty
let request_stub_v2 = Stub.compile request_ty_v2
let probe_stub = Stub.compile probe_ty
let reply_stub = Stub.compile reply_ty

let status_to_enum = function Ok -> 0 | Not_found -> 1 | Refused -> 2 | Busy -> 3

let status_of_enum = function
  | 0 -> Some Ok
  | 1 -> Some Not_found
  | 2 -> Some Refused
  | 3 -> Some Busy
  | _ -> None

let encode_request r =
  if request_is_v1 r then
    Stub.marshal request_stub
      (VSeq [ VStr r.file_name; VInt r.copies; VInt r.max_reply ])
  else
    Stub.marshal request_stub_v2
      (VSeq
         [ VStr r.file_name; VInt r.copies; VInt r.max_reply; VInt r.req_id;
           VInt r.start_copy; VInt r.start_offset ])

let encode_probe p =
  Stub.marshal probe_stub
    (VSeq [ VStr p.p_file_name; VInt p.p_offset; VInt p.p_crc; VInt p.p_req_id ])

(* The ILP-extended stubs (section 2.1): field layouts compiled from the
   same descriptions, with the bulk data field left in application memory
   for the fused loop. *)
let request_ilp = Stub_ilp.compile request_ty
let request_ilp_v2 = Stub_ilp.compile request_ty_v2
let request_ilp_flagged = Stub_ilp.compile request_ty_flagged
let probe_ilp = Stub_ilp.compile probe_ty
let probe_ilp_flagged = Stub_ilp.compile probe_ty_flagged
let reply_ilp = Stub_ilp.compile reply_ty

let to_engine_segments segs =
  List.map
    (function
      | Stub_ilp.Gen s -> Ilp_core.Engine.Seg_gen s
      | Stub_ilp.App { addr; len } -> Ilp_core.Engine.Seg_app { addr; len })
    segs

let request_segments ?(flags = 0) r =
  let layout =
    if flags <> 0 then
      Stub_ilp.layout request_ilp_flagged
        [ Stub_ilp.Immediate (VStr r.file_name);
          Stub_ilp.Immediate (VInt r.copies);
          Stub_ilp.Immediate (VInt r.max_reply);
          Stub_ilp.Immediate (VInt r.req_id);
          Stub_ilp.Immediate (VInt r.start_copy);
          Stub_ilp.Immediate (VInt r.start_offset);
          Stub_ilp.Immediate (VInt flags) ]
    else if request_is_v1 r then
      Stub_ilp.layout request_ilp
        [ Stub_ilp.Immediate (VStr r.file_name);
          Stub_ilp.Immediate (VInt r.copies);
          Stub_ilp.Immediate (VInt r.max_reply) ]
    else
      Stub_ilp.layout request_ilp_v2
        [ Stub_ilp.Immediate (VStr r.file_name);
          Stub_ilp.Immediate (VInt r.copies);
          Stub_ilp.Immediate (VInt r.max_reply);
          Stub_ilp.Immediate (VInt r.req_id);
          Stub_ilp.Immediate (VInt r.start_copy);
          Stub_ilp.Immediate (VInt r.start_offset) ]
  in
  match layout with
  | Ok segs -> to_engine_segments segs
  | Error e -> invalid_arg ("Messages.request_segments: " ^ e)

let probe_segments ?(flags = 0) p =
  let fields =
    [ Stub_ilp.Immediate (VStr p.p_file_name);
      Stub_ilp.Immediate (VInt p.p_offset);
      Stub_ilp.Immediate (VInt p.p_crc);
      Stub_ilp.Immediate (VInt p.p_req_id) ]
  in
  match
    if flags <> 0 then
      Stub_ilp.layout probe_ilp_flagged
        (fields @ [ Stub_ilp.Immediate (VInt flags) ])
    else Stub_ilp.layout probe_ilp fields
  with
  | Ok segs -> to_engine_segments segs
  | Error e -> invalid_arg ("Messages.probe_segments: " ^ e)

let reply_segments h ~payload_addr =
  match
    Stub_ilp.layout reply_ilp
      [ Stub_ilp.Immediate (VEnum (status_to_enum h.status));
        Stub_ilp.Immediate (VInt h.copy);
        Stub_ilp.Immediate (VInt h.file_offset);
        Stub_ilp.Immediate (VInt h.total_len);
        Stub_ilp.From_memory { addr = payload_addr; len = h.data_len } ]
  with
  | Ok segs -> to_engine_segments segs
  | Error e -> invalid_arg ("Messages.reply_segments: " ^ e)

(* Plaintexts are [length field (4B) ^ marshalled message ^ padding]; the
   length field covers itself plus the marshalled bytes (the XDR padding
   of a trailing opaque overlaps the 8-byte alignment area, so decoding
   starts at offset 4 of the padded plaintext and simply does not consume
   the tail). *)
let decoder_of_plaintext ~length_at_end plaintext =
  if String.length plaintext < 8 then Error "plaintext too short"
  else
    let b = Bytes.unsafe_of_string plaintext in
    let pos = if length_at_end then String.length plaintext - 4 else 0 in
    let enc_len = Int32.to_int (Bytes.get_int32_be b pos) land 0xffff_ffff in
    if enc_len < 4 || enc_len > String.length plaintext then
      Error (Printf.sprintf "bad length field %d" enc_len)
    else Ok (Xdr.Dec.sub plaintext ~pos:(if length_at_end then 0 else 4))

let decode_request ?(length_at_end = false) plaintext =
  match decoder_of_plaintext ~length_at_end plaintext with
  | Error _ as e -> e
  | Ok dec -> (
      match Stub.unmarshal_from request_stub dec with
      | VSeq [ VStr file_name; VInt copies; VInt max_reply ] ->
          Ok
            { file_name; copies; max_reply; req_id = 0; start_copy = 0;
              start_offset = 0 }
      | _ -> Error "request: unexpected shape"
      | exception Xdr.Dec.Error e -> Error e)

let reply_prefix h =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.uint32 enc (status_to_enum h.status);
  Xdr.Enc.int32 enc h.copy;
  Xdr.Enc.int32 enc h.file_offset;
  Xdr.Enc.int32 enc h.total_len;
  (* The opaque's length word; the payload bytes follow in the stream. *)
  Xdr.Enc.uint32 enc h.data_len;
  Xdr.Enc.contents enc

(* ------------------------------------------------------------------ *)
(* In-place decoders over pooled TSDU buffers (the single-copy receive
   path).  A [View] is a cursor over [buf.[0..limit-1]] with exactly
   {!Xdr.Dec}'s semantics — same bounds discipline, same error strings —
   but no [String.sub] per field: opaque fields come back as spans into
   the buffer.  Equivalence with the string decoders is property-tested
   (test_rpc). *)

module View = struct
  type t = { buf : Bytes.t; limit : int; mutable pos : int }

  exception Error of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
  let make buf ~pos ~limit = { buf; limit; pos }

  let need t n =
    if t.pos + n > t.limit then
      fail "truncated XDR input: need %d bytes at %d, have %d" n t.pos
        (t.limit - t.pos)

  let uint32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) land 0xffff_ffff in
    t.pos <- t.pos + 4;
    v

  let int32 t =
    let v = uint32 t in
    if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

  (* Length word, padding check, cursor advance — but the payload stays
     put: the result is its (offset, length) span in the buffer. *)
  let opaque_span t =
    let n = uint32 t in
    need t (Xdr.padded n);
    for i = n to Xdr.padded n - 1 do
      if Bytes.get t.buf (t.pos + i) <> '\000' then fail "nonzero XDR padding"
    done;
    let off = t.pos in
    t.pos <- t.pos + Xdr.padded n;
    (off, n)

  let enum t names =
    let i = uint32 t in
    if i >= Array.length names then fail "enum value %d out of range" i;
    i
end

(* Mirror of {!decoder_of_plaintext} over a buffer span.  Also reports
   where the marshalled body ends, so the control-message dispatch can
   count the integer words that follow the file name. *)
let view_decoder ~length_at_end buf ~len =
  if len < 8 || len > Bytes.length buf then Error "plaintext too short"
  else
    let pos = if length_at_end then len - 4 else 0 in
    let enc_len = Int32.to_int (Bytes.get_int32_be buf pos) land 0xffff_ffff in
    if enc_len < 4 || enc_len > len then
      Error (Printf.sprintf "bad length field %d" enc_len)
    else
      (* [enc_len] covers the 4-byte length field plus the marshalled
         bytes, so the body spans [4, enc_len) with the length in front
         and [0, enc_len - 4) with it at the end. *)
      let body_end = if length_at_end then enc_len - 4 else enc_len in
      Ok (View.make buf ~pos:(if length_at_end then 0 else 4) ~limit:len, body_end)

(* The control forms share a leading file name and differ only in how
   many integer words follow it: 2 (v1 request), 3 (CRC probe),
   4 (flagged probe), 5 (v2 request), 6 (flagged request) — the flagged
   forms end in a capability flag word, returned alongside the message
   (0 for the unflagged forms).  [crc_trailer] marks that the engine's
   end-to-end CRC32 trailer word sits inside the length-field-covered
   region (it was already verified upstream) so it is not counted as
   body. *)
let decode_ctrl_bytes ?(length_at_end = false) ?(crc_trailer = false) buf ~len =
  match view_decoder ~length_at_end buf ~len with
  | Error e -> Error e
  | Ok (v, raw_body_end) -> (
      let body_end = raw_body_end - (if crc_trailer then 4 else 0) in
      match
        let off, n = View.opaque_span v in
        let file_name = Bytes.sub_string v.View.buf off n in
        if v.View.pos > body_end || (body_end - v.View.pos) mod 4 <> 0 then
          View.fail "ctrl: malformed body";
        match (body_end - v.View.pos) / 4 with
        | 2 ->
            let copies = View.int32 v in
            let max_reply = View.int32 v in
            ( Request
                { file_name; copies; max_reply; req_id = 0; start_copy = 0;
                  start_offset = 0 },
              0 )
        | 3 ->
            let p_offset = View.uint32 v in
            let p_crc = View.uint32 v in
            let p_req_id = View.uint32 v in
            (Probe { p_file_name = file_name; p_offset; p_crc; p_req_id }, 0)
        | 4 ->
            let p_offset = View.uint32 v in
            let p_crc = View.uint32 v in
            let p_req_id = View.uint32 v in
            let flags = View.uint32 v in
            ( Probe { p_file_name = file_name; p_offset; p_crc; p_req_id },
              flags )
        | 5 ->
            let copies = View.int32 v in
            let max_reply = View.int32 v in
            let req_id = View.uint32 v in
            let start_copy = View.uint32 v in
            let start_offset = View.uint32 v in
            ( Request
                { file_name; copies; max_reply; req_id; start_copy;
                  start_offset },
              0 )
        | 6 ->
            let copies = View.int32 v in
            let max_reply = View.int32 v in
            let req_id = View.uint32 v in
            let start_copy = View.uint32 v in
            let start_offset = View.uint32 v in
            let flags = View.uint32 v in
            ( Request
                { file_name; copies; max_reply; req_id; start_copy;
                  start_offset },
              flags )
        | k -> View.fail "ctrl: unexpected shape (%d trailing words)" k
      with
      | c -> Ok c
      | exception View.Error e -> Error e)

let decode_ctrl ?(length_at_end = false) ?(crc_trailer = false) plaintext =
  decode_ctrl_bytes ~length_at_end ~crc_trailer
    (Bytes.unsafe_of_string plaintext)
    ~len:(String.length plaintext)

(* Exactly {!decode_request}'s leniency (no trailing-word dispatch), so
   the view/copy equivalence property holds field for field — the server
   parses through {!decode_ctrl_bytes} instead. *)
let decode_request_bytes ?(length_at_end = false) buf ~len =
  match view_decoder ~length_at_end buf ~len with
  | Error e -> Error e
  | Ok (v, _body_end) -> (
      match
        let off, n = View.opaque_span v in
        let file_name = Bytes.sub_string v.View.buf off n in
        let copies = View.int32 v in
        let max_reply = View.int32 v in
        { file_name; copies; max_reply; req_id = 0; start_copy = 0;
          start_offset = 0 }
      with
      | r -> Ok r
      | exception View.Error e -> Error e)

let decode_reply_view ?(length_at_end = false) buf ~len =
  match view_decoder ~length_at_end buf ~len with
  | Error e -> Error e
  | Ok (v, _body_end) -> (
      match
        let st = View.enum v status_names in
        let copy = View.int32 v in
        let file_offset = View.int32 v in
        let total_len = View.int32 v in
        let data_off, data_len = View.opaque_span v in
        (st, copy, file_offset, total_len, data_off, data_len)
      with
      | st, copy, file_offset, total_len, data_off, data_len -> (
          match status_of_enum st with
          | Some status ->
              Ok ({ status; copy; file_offset; total_len; data_len }, data_off)
          | None -> Error "reply: bad status")
      | exception View.Error e -> Error e)

let decode_reply ?(length_at_end = false) plaintext =
  match decoder_of_plaintext ~length_at_end plaintext with
  | Error _ as e -> e
  | Ok dec -> (
      match Stub.unmarshal_from reply_stub dec with
      | VSeq [ VEnum st; VInt copy; VInt file_offset; VInt total_len; VBytes data ]
        -> (
          match status_of_enum st with
          | Some status ->
              Ok
                ( { status; copy; file_offset; total_len;
                    data_len = String.length data },
                  data )
          | None -> Error "reply: bad status")
      | _ -> Error "reply: unexpected shape"
      | exception Xdr.Dec.Error e -> Error e)
