open Ilp_codec

type request = { file_name : string; copies : int; max_reply : int }

type status = Ok | Not_found | Refused | Busy

type reply_header = {
  status : status;
  copy : int;
  file_offset : int;
  total_len : int;
  data_len : int;
}

let request_ty : Asn1.ty =
  Seq [ ("fileName", Str); ("copies", Int); ("maxReply", Int) ]

let status_names = [| "ok"; "notFound"; "refused"; "busy" |]

let reply_ty : Asn1.ty =
  Seq
    [ ("status", Enum status_names);
      ("copy", Int);
      ("fileOffset", Int);
      ("totalLen", Int);
      ("data", Opaque) ]

let request_stub = Stub.compile request_ty
let reply_stub = Stub.compile reply_ty

let status_to_enum = function Ok -> 0 | Not_found -> 1 | Refused -> 2 | Busy -> 3

let status_of_enum = function
  | 0 -> Some Ok
  | 1 -> Some Not_found
  | 2 -> Some Refused
  | 3 -> Some Busy
  | _ -> None

let encode_request r =
  Stub.marshal request_stub
    (VSeq [ VStr r.file_name; VInt r.copies; VInt r.max_reply ])

(* The ILP-extended stubs (section 2.1): field layouts compiled from the
   same descriptions, with the bulk data field left in application memory
   for the fused loop. *)
let request_ilp = Stub_ilp.compile request_ty
let reply_ilp = Stub_ilp.compile reply_ty

let to_engine_segments segs =
  List.map
    (function
      | Stub_ilp.Gen s -> Ilp_core.Engine.Seg_gen s
      | Stub_ilp.App { addr; len } -> Ilp_core.Engine.Seg_app { addr; len })
    segs

let request_segments r =
  match
    Stub_ilp.layout request_ilp
      [ Stub_ilp.Immediate (VStr r.file_name);
        Stub_ilp.Immediate (VInt r.copies);
        Stub_ilp.Immediate (VInt r.max_reply) ]
  with
  | Ok segs -> to_engine_segments segs
  | Error e -> invalid_arg ("Messages.request_segments: " ^ e)

let reply_segments h ~payload_addr =
  match
    Stub_ilp.layout reply_ilp
      [ Stub_ilp.Immediate (VEnum (status_to_enum h.status));
        Stub_ilp.Immediate (VInt h.copy);
        Stub_ilp.Immediate (VInt h.file_offset);
        Stub_ilp.Immediate (VInt h.total_len);
        Stub_ilp.From_memory { addr = payload_addr; len = h.data_len } ]
  with
  | Ok segs -> to_engine_segments segs
  | Error e -> invalid_arg ("Messages.reply_segments: " ^ e)

(* Plaintexts are [length field (4B) ^ marshalled message ^ padding]; the
   length field covers itself plus the marshalled bytes (the XDR padding
   of a trailing opaque overlaps the 8-byte alignment area, so decoding
   starts at offset 4 of the padded plaintext and simply does not consume
   the tail). *)
let decoder_of_plaintext ~length_at_end plaintext =
  if String.length plaintext < 8 then Error "plaintext too short"
  else
    let b = Bytes.unsafe_of_string plaintext in
    let pos = if length_at_end then String.length plaintext - 4 else 0 in
    let enc_len = Int32.to_int (Bytes.get_int32_be b pos) land 0xffff_ffff in
    if enc_len < 4 || enc_len > String.length plaintext then
      Error (Printf.sprintf "bad length field %d" enc_len)
    else Ok (Xdr.Dec.sub plaintext ~pos:(if length_at_end then 0 else 4))

let decode_request ?(length_at_end = false) plaintext =
  match decoder_of_plaintext ~length_at_end plaintext with
  | Error _ as e -> e
  | Ok dec -> (
      match Stub.unmarshal_from request_stub dec with
      | VSeq [ VStr file_name; VInt copies; VInt max_reply ] ->
          Ok { file_name; copies; max_reply }
      | _ -> Error "request: unexpected shape"
      | exception Xdr.Dec.Error e -> Error e)

let reply_prefix h =
  let enc = Xdr.Enc.create () in
  Xdr.Enc.uint32 enc (status_to_enum h.status);
  Xdr.Enc.int32 enc h.copy;
  Xdr.Enc.int32 enc h.file_offset;
  Xdr.Enc.int32 enc h.total_len;
  (* The opaque's length word; the payload bytes follow in the stream. *)
  Xdr.Enc.uint32 enc h.data_len;
  Xdr.Enc.contents enc

(* ------------------------------------------------------------------ *)
(* In-place decoders over pooled TSDU buffers (the single-copy receive
   path).  A [View] is a cursor over [buf.[0..limit-1]] with exactly
   {!Xdr.Dec}'s semantics — same bounds discipline, same error strings —
   but no [String.sub] per field: opaque fields come back as spans into
   the buffer.  Equivalence with the string decoders is property-tested
   (test_rpc). *)

module View = struct
  type t = { buf : Bytes.t; limit : int; mutable pos : int }

  exception Error of string

  let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
  let make buf ~pos ~limit = { buf; limit; pos }

  let need t n =
    if t.pos + n > t.limit then
      fail "truncated XDR input: need %d bytes at %d, have %d" n t.pos
        (t.limit - t.pos)

  let uint32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_be t.buf t.pos) land 0xffff_ffff in
    t.pos <- t.pos + 4;
    v

  let int32 t =
    let v = uint32 t in
    if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

  (* Length word, padding check, cursor advance — but the payload stays
     put: the result is its (offset, length) span in the buffer. *)
  let opaque_span t =
    let n = uint32 t in
    need t (Xdr.padded n);
    for i = n to Xdr.padded n - 1 do
      if Bytes.get t.buf (t.pos + i) <> '\000' then fail "nonzero XDR padding"
    done;
    let off = t.pos in
    t.pos <- t.pos + Xdr.padded n;
    (off, n)

  let enum t names =
    let i = uint32 t in
    if i >= Array.length names then fail "enum value %d out of range" i;
    i
end

(* Mirror of {!decoder_of_plaintext} over a buffer span. *)
let view_decoder ~length_at_end buf ~len =
  if len < 8 || len > Bytes.length buf then Error "plaintext too short"
  else
    let pos = if length_at_end then len - 4 else 0 in
    let enc_len = Int32.to_int (Bytes.get_int32_be buf pos) land 0xffff_ffff in
    if enc_len < 4 || enc_len > len then
      Error (Printf.sprintf "bad length field %d" enc_len)
    else Ok (View.make buf ~pos:(if length_at_end then 0 else 4) ~limit:len)

let decode_request_bytes ?(length_at_end = false) buf ~len =
  match view_decoder ~length_at_end buf ~len with
  | Error _ as e -> e
  | Ok v -> (
      match
        let off, n = View.opaque_span v in
        let file_name = Bytes.sub_string v.View.buf off n in
        let copies = View.int32 v in
        let max_reply = View.int32 v in
        { file_name; copies; max_reply }
      with
      | r -> Ok r
      | exception View.Error e -> Error e)

let decode_reply_view ?(length_at_end = false) buf ~len =
  match view_decoder ~length_at_end buf ~len with
  | Error _ as e -> e
  | Ok v -> (
      match
        let st = View.enum v status_names in
        let copy = View.int32 v in
        let file_offset = View.int32 v in
        let total_len = View.int32 v in
        let data_off, data_len = View.opaque_span v in
        (st, copy, file_offset, total_len, data_off, data_len)
      with
      | st, copy, file_offset, total_len, data_off, data_len -> (
          match status_of_enum st with
          | Some status ->
              Ok ({ status; copy; file_offset; total_len; data_len }, data_off)
          | None -> Error "reply: bad status")
      | exception View.Error e -> Error e)

let decode_reply ?(length_at_end = false) plaintext =
  match decoder_of_plaintext ~length_at_end plaintext with
  | Error _ as e -> e
  | Ok dec -> (
      match Stub.unmarshal_from reply_stub dec with
      | VSeq [ VEnum st; VInt copy; VInt file_offset; VInt total_len; VBytes data ]
        -> (
          match status_of_enum st with
          | Some status ->
              Ok
                ( { status; copy; file_offset; total_len;
                    data_len = String.length data },
                  data )
          | None -> Error "reply: bad status")
      | _ -> Error "reply: unexpected shape"
      | exception Xdr.Dec.Error e -> Error e)
