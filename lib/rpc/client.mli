(** The file-transfer client.

    Sends a request over the control connection and reassembles the
    requested copies of the file from the reply stream on the data
    connection, verifying every payload byte against the expected
    contents.  Reply processing (decrypt/unmarshal, fused or separate) is
    configured on the data socket from the engine's mode at creation.

    Failure is typed: a transport teardown (retry exhaustion or a stalled
    peer window on either connection) is an [Aborted] failure carrying the
    socket's reason; a server that sheds the request past the client's
    retry budget is [Server_busy]; a malformed or mismatching reply a
    [Protocol] failure — the transfer never silently stalls as a bare
    [Closed] socket.

    A [Busy] reply from the server is not a terminal failure: given a
    clock, the client re-issues the request after a jittered exponential
    backoff, up to [max_attempts] and a total [deadline_us]; past either
    bound the failure becomes [Server_busy].  After an abort the
    application may hand the client a freshly connected socket pair with
    {!reconnect}, which re-issues the outstanding request and restarts the
    transfer. *)

type t

(** Why the transfer failed: the transport gave up, the server shed the
    request past the retry budget, or the reply stream itself was
    unusable. *)
type failure =
  | Aborted of Ilp_tcp.Socket.abort_reason
  | Server_busy
  | Protocol of string

val failure_to_string : failure -> string

(** Backoff policy for retrying a [Busy]-shed request: attempt [n]
    (1-based) waits [min max_backoff_us (base_backoff_us * 2^(n-1))] plus
    a jitter of up to half that, drawn from the client's own seeded
    stream. *)
type retry_policy = {
  max_attempts : int;
  base_backoff_us : float;
  max_backoff_us : float;
  deadline_us : float;  (** total time budget across all retries *)
}

(** 8 attempts, 500 us doubling to a 50 ms ceiling, 5 s total. *)
val default_retry : retry_policy

(** [create ~engine ~ctrl ~data ()] — without [clock], a [Busy] reply is
    an immediate [Server_busy] failure (no timer to retry on); with it,
    retries follow [retry].  [seed] (default 1) drives the jitter and the
    idempotency-id space (clients sharing a server need distinct seeds).
    [idempotent] (default false) stamps every request with a fresh
    idempotency id so a restarted server's dedup cache can answer
    replays; off, requests marshal in the original id-less form,
    byte-identical to the pre-fault-model wire encoding.

    [framed] (default false) negotiates the v2 ("Reverso") framed
    receive: every control message carries {!Messages.flag_rx_framing}
    (flagged wire forms), the data socket parses a {!Ilp_tcp.Framing}
    prelude in front of each reply TSDU, and the server prefixes each
    reply accordingly — the prelude is what lets the receive path land
    out-of-order segments at their final TSDU offset.  Off, every wire
    byte is identical to the unframed protocol. *)
val create :
  ?clock:Ilp_netsim.Simclock.t ->
  ?retry:retry_policy ->
  ?seed:int ->
  ?idempotent:bool ->
  ?framed:bool ->
  engine:Ilp_core.Engine.t ->
  ctrl:Ilp_tcp.Socket.t ->
  data:Ilp_tcp.Socket.t ->
  unit ->
  t

(** [request_file t ~name ~copies ~max_reply ~expected] sends the request;
    [expected] is the file's true contents, used to verify the replies.
    Resets the retry budget. *)
val request_file :
  t ->
  name:string ->
  copies:int ->
  max_reply:int ->
  expected:string ->
  (unit, Ilp_tcp.Socket.send_error) result

(** What a {!reconnect} decided to do. *)
type reconnect_summary = {
  resumed_from : (int * int) option;
      (** [(copy, offset)] the transfer continues from — never byte zero
          when a verified prefix exists; [None] means from scratch (or
          nothing left to re-issue) *)
  bytes_verified : int;  (** payload bytes already received and verified,
                             all kept across the reconnect *)
  retries_consumed : int;  (** cumulative backoff retries spent so far *)
}

(** [reconnect t ~ctrl ~data] resumes after an abort on a new (already
    connected and established) socket pair: rewires receive processing
    and failure reporting, clears the failure state and the pending
    retry timer, and picks up the outstanding request where it left off.
    With a partial mid-copy prefix, a CRC probe first verifies the
    prefix against the (possibly restarted) server's file; the resume
    request then continues at the verified offset under a fresh
    idempotency id.  With nothing received, the request is re-issued
    under the {e same} id, so a server that already executed it answers
    from its dedup cache.  Counted once per call in
    [rpc.client.reconnects]. *)
val reconnect :
  t ->
  ctrl:Ilp_tcp.Socket.t ->
  data:Ilp_tcp.Socket.t ->
  (reconnect_summary, Ilp_tcp.Socket.send_error) result

(** All [copies] fully received with every byte verified (and no abort,
    shed exhaustion or error recorded). *)
val transfer_complete : t -> bool

(** The typed failure, if any: a recorded transport abort wins over
    [Server_busy], which wins over protocol errors; [None] while the
    transfer is clean (including while a backoff retry is pending). *)
val failure : t -> failure option

(** Payload bytes received and verified so far. *)
val bytes_received : t -> int

val replies_received : t -> int

(** Verification or decoding failures (empty on a clean run). *)
val errors : t -> string list

(** The server reported Not_found / Refused. *)
val rejected : t -> bool

(** Times {!reconnect} was invoked. *)
val reconnects : t -> int

(** Resume requests actually sent (transfers continued from a nonzero
    copy/offset, or re-issued under a fresh id after a dedup replay). *)
val resumes : t -> int

(** The {!Ilp_netsim.Simclock} owner id tagging the client's backoff
    retry timer ([Simclock.anonymous] when created without a clock) —
    pending count must be 0 after an abort or reconnect. *)
val timer_owner : t -> int

(** [Busy] replies received (each either triggers a backoff retry or, past
    the budget, the [Server_busy] failure). *)
val busy_replies : t -> int

(** Backoff retries scheduled so far. *)
val retries : t -> int
