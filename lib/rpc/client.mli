(** The file-transfer client.

    Sends a request over the control connection and reassembles the
    requested copies of the file from the reply stream on the data
    connection, verifying every payload byte against the expected
    contents.  Reply processing (decrypt/unmarshal, fused or separate) is
    configured on the data socket from the engine's mode at creation. *)

type t

val create :
  engine:Ilp_core.Engine.t ->
  ctrl:Ilp_tcp.Socket.t ->
  data:Ilp_tcp.Socket.t ->
  t

(** [request_file t ~name ~copies ~max_reply ~expected] sends the request;
    [expected] is the file's true contents, used to verify the replies. *)
val request_file :
  t ->
  name:string ->
  copies:int ->
  max_reply:int ->
  expected:string ->
  (unit, Ilp_tcp.Socket.send_error) result

(** All [copies] fully received with every byte verified. *)
val transfer_complete : t -> bool

(** Payload bytes received and verified so far. *)
val bytes_received : t -> int

val replies_received : t -> int

(** Verification or decoding failures (empty on a clean run). *)
val errors : t -> string list

(** The server reported Not_found / Refused. *)
val rejected : t -> bool
