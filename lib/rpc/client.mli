(** The file-transfer client.

    Sends a request over the control connection and reassembles the
    requested copies of the file from the reply stream on the data
    connection, verifying every payload byte against the expected
    contents.  Reply processing (decrypt/unmarshal, fused or separate) is
    configured on the data socket from the engine's mode at creation.

    Failure is typed: a transport teardown (retry exhaustion on either
    connection) is an [Aborted] failure carrying the socket's reason, a
    malformed or mismatching reply a [Protocol] failure — the transfer
    never silently stalls as a bare [Closed] socket.  After an abort the
    application may hand the client a freshly connected socket pair with
    {!reconnect}, which re-issues the outstanding request and restarts the
    transfer. *)

type t

(** Why the transfer failed: the transport gave up, or the reply stream
    itself was unusable. *)
type failure =
  | Aborted of Ilp_tcp.Socket.abort_reason
  | Protocol of string

val failure_to_string : failure -> string

val create :
  engine:Ilp_core.Engine.t ->
  ctrl:Ilp_tcp.Socket.t ->
  data:Ilp_tcp.Socket.t ->
  t

(** [request_file t ~name ~copies ~max_reply ~expected] sends the request;
    [expected] is the file's true contents, used to verify the replies. *)
val request_file :
  t ->
  name:string ->
  copies:int ->
  max_reply:int ->
  expected:string ->
  (unit, Ilp_tcp.Socket.send_error) result

(** [reconnect t ~ctrl ~data] resumes after an abort on a new (already
    connected and established) socket pair: rewires receive processing and
    failure reporting, clears the failure state, and re-issues the last
    request, restarting its transfer from the beginning. *)
val reconnect :
  t ->
  ctrl:Ilp_tcp.Socket.t ->
  data:Ilp_tcp.Socket.t ->
  (unit, Ilp_tcp.Socket.send_error) result

(** All [copies] fully received with every byte verified (and no abort or
    error recorded). *)
val transfer_complete : t -> bool

(** The typed failure, if any: a recorded transport abort wins over
    protocol errors; [None] while the transfer is clean. *)
val failure : t -> failure option

(** Payload bytes received and verified so far. *)
val bytes_received : t -> int

val replies_received : t -> int

(** Verification or decoding failures (empty on a clean run). *)
val errors : t -> string list

(** The server reported Not_found / Refused. *)
val rejected : t -> bool

(** Times {!reconnect} was invoked. *)
val reconnects : t -> int
