module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine

type transfer = {
  expected : string;
  copies : int;
  mutable received : int array;  (* bytes received per copy *)
}

type t = {
  engine : Engine.t;
  ctrl : Socket.t;
  data : Socket.t;
  mutable transfer : transfer option;
  mutable bytes_received : int;
  mutable replies_received : int;
  mutable errors : string list;
  mutable rejected : bool;
}

let error t fmt = Printf.ksprintf (fun s -> t.errors <- s :: t.errors) fmt

let handle_reply t ~len =
  t.replies_received <- t.replies_received + 1;
  let plaintext = Engine.read_plaintext t.engine ~len in
  let length_at_end = Engine.header_style t.engine = Engine.Trailer in
  match Messages.decode_reply ~length_at_end plaintext with
  | Error e -> error t "undecodable reply: %s" e
  | Ok (hdr, data) -> (
      match hdr.Messages.status with
      | Messages.Not_found | Messages.Refused -> t.rejected <- true
      | Messages.Ok -> (
          match t.transfer with
          | None -> error t "unsolicited reply"
          | Some tr ->
              let off = hdr.Messages.file_offset in
              let copy = hdr.Messages.copy in
              if copy < 0 || copy >= tr.copies then error t "bad copy index %d" copy
              else if off < 0 || off + String.length data > String.length tr.expected
              then error t "reply out of bounds: offset %d len %d" off (String.length data)
              else if String.sub tr.expected off (String.length data) <> data then
                error t "payload mismatch at offset %d (copy %d)" off copy
              else begin
                tr.received.(copy) <- tr.received.(copy) + String.length data;
                t.bytes_received <- t.bytes_received + String.length data
              end))

let create ~engine ~ctrl ~data =
  let t =
    { engine;
      ctrl;
      data;
      transfer = None;
      bytes_received = 0;
      replies_received = 0;
      errors = [];
      rejected = false }
  in
  (match Engine.rx_style engine with
  | Engine.Rx_integrated_style f -> Socket.set_rx_processing data (Socket.Rx_integrated f)
  | Engine.Rx_deferred_style f -> Socket.set_rx_processing data (Socket.Rx_separate f));
  Socket.set_on_message data (fun ~src:_ ~len -> handle_reply t ~len);
  t

let request_file t ~name ~copies ~max_reply ~expected =
  t.transfer <- Some { expected; copies; received = Array.make copies 0 };
  t.bytes_received <- 0;
  t.replies_received <- 0;
  t.rejected <- false;
  let body =
    Messages.request_segments { Messages.file_name = name; copies; max_reply }
  in
  let prepared = Engine.prepare_send_segments t.engine body in
  Socket.send_message t.ctrl ~len:prepared.Engine.len ~fill:prepared.Engine.fill

let transfer_complete t =
  match t.transfer with
  | None -> false
  | Some tr ->
      (not t.rejected)
      && t.errors = []
      && Array.for_all (fun n -> n = String.length tr.expected) tr.received

let bytes_received t = t.bytes_received
let replies_received t = t.replies_received
let errors t = List.rev t.errors
let rejected t = t.rejected
