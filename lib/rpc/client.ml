module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine

type transfer = {
  expected : string;
  copies : int;
  mutable received : int array;  (* bytes received per copy *)
}

type failure =
  | Aborted of Socket.abort_reason
  | Protocol of string

let failure_to_string = function
  | Aborted r -> "transport aborted: " ^ Socket.abort_reason_to_string r
  | Protocol e -> "protocol failure: " ^ e

type request_params = {
  name : string;
  req_copies : int;
  max_reply : int;
  req_expected : string;
}

type t = {
  engine : Engine.t;
  mutable ctrl : Socket.t;
  mutable data : Socket.t;
  mutable transfer : transfer option;
  mutable last_request : request_params option;
  mutable bytes_received : int;
  mutable replies_received : int;
  mutable errors : string list;
  mutable rejected : bool;
  mutable aborted : Socket.abort_reason option;
  mutable reconnects : int;
}

let error t fmt = Printf.ksprintf (fun s -> t.errors <- s :: t.errors) fmt

let handle_reply t ~len =
  t.replies_received <- t.replies_received + 1;
  match Engine.read_plaintext t.engine ~len with
  | Error e -> error t "unreadable reply: %s" e
  | Ok plaintext -> (
      let length_at_end = Engine.header_style t.engine = Engine.Trailer in
      match Messages.decode_reply ~length_at_end plaintext with
      | Error e -> error t "undecodable reply: %s" e
      | Ok (hdr, data) -> (
          match hdr.Messages.status with
          | Messages.Not_found | Messages.Refused -> t.rejected <- true
          | Messages.Ok -> (
              match t.transfer with
              | None -> error t "unsolicited reply"
              | Some tr ->
                  let off = hdr.Messages.file_offset in
                  let copy = hdr.Messages.copy in
                  if copy < 0 || copy >= tr.copies then error t "bad copy index %d" copy
                  else if off < 0 || off + String.length data > String.length tr.expected
                  then error t "reply out of bounds: offset %d len %d" off (String.length data)
                  else if String.sub tr.expected off (String.length data) <> data then
                    error t "payload mismatch at offset %d (copy %d)" off copy
                  else begin
                    tr.received.(copy) <- tr.received.(copy) + String.length data;
                    t.bytes_received <- t.bytes_received + String.length data
                  end)))

(* Both connections feed the same failure slot: losing either one ends the
   transfer, and the first recorded reason is the one reported. *)
let wire_sockets t =
  (match Engine.rx_style t.engine with
  | Engine.Rx_integrated_style f -> Socket.set_rx_processing t.data (Socket.Rx_integrated f)
  | Engine.Rx_deferred_style f -> Socket.set_rx_processing t.data (Socket.Rx_separate f));
  Socket.set_on_message t.data (fun ~src:_ ~len -> handle_reply t ~len);
  let record reason = if t.aborted = None then t.aborted <- Some reason in
  Socket.set_on_abort t.ctrl record;
  Socket.set_on_abort t.data record

let create ~engine ~ctrl ~data =
  let t =
    { engine;
      ctrl;
      data;
      transfer = None;
      last_request = None;
      bytes_received = 0;
      replies_received = 0;
      errors = [];
      rejected = false;
      aborted = None;
      reconnects = 0 }
  in
  wire_sockets t;
  t

let request_file t ~name ~copies ~max_reply ~expected =
  t.transfer <- Some { expected; copies; received = Array.make copies 0 };
  t.last_request <- Some { name; req_copies = copies; max_reply; req_expected = expected };
  t.bytes_received <- 0;
  t.replies_received <- 0;
  t.rejected <- false;
  let body =
    Messages.request_segments { Messages.file_name = name; copies; max_reply }
  in
  let prepared = Engine.prepare_send_segments t.engine body in
  Socket.send_message t.ctrl ~len:prepared.Engine.len ~fill:prepared.Engine.fill

let reconnect t ~ctrl ~data =
  t.ctrl <- ctrl;
  t.data <- data;
  wire_sockets t;
  t.aborted <- None;
  t.errors <- [];
  t.reconnects <- t.reconnects + 1;
  match t.last_request with
  | None -> Ok ()
  | Some p ->
      request_file t ~name:p.name ~copies:p.req_copies ~max_reply:p.max_reply
        ~expected:p.req_expected

let transfer_complete t =
  match t.transfer with
  | None -> false
  | Some tr ->
      (not t.rejected)
      && t.errors = []
      && t.aborted = None
      && Array.for_all (fun n -> n = String.length tr.expected) tr.received

let failure t =
  match t.aborted with
  | Some r -> Some (Aborted r)
  | None -> (
      match List.rev t.errors with [] -> None | e :: _ -> Some (Protocol e))

let bytes_received t = t.bytes_received
let replies_received t = t.replies_received
let errors t = List.rev t.errors
let rejected t = t.rejected
let reconnects t = t.reconnects
