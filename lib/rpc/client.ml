module Simclock = Ilp_netsim.Simclock
module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine
module M = Ilp_obs.Metrics
module Recorder = Ilp_obs.Recorder

let m_busy_replies = M.counter M.default "rpc.client.busy_replies"
let m_retries = M.counter M.default "rpc.client.retries"
let m_reconnects = M.counter M.default "rpc.client.reconnects"
let m_resumes = M.counter M.default "rpc.client.resumes"

(* End-to-end request latency: from [request_file] (or a re-issue after
   reconnect) to the moment every copy of the transfer is verified.
   Only clocked clients observe it — without a Simclock there is no
   meaningful end-to-end time. *)
let m_latency = M.histogram M.default "rpc.latency_us"

type transfer = {
  expected : string;
  copies : int;
  mutable received : int array;  (* bytes received per copy *)
}

type failure =
  | Aborted of Socket.abort_reason
  | Server_busy
  | Protocol of string

let failure_to_string = function
  | Aborted r -> "transport aborted: " ^ Socket.abort_reason_to_string r
  | Server_busy -> "server busy: shed and retries exhausted"
  | Protocol e -> "protocol failure: " ^ e

type retry_policy = {
  max_attempts : int;
  base_backoff_us : float;
  max_backoff_us : float;
  deadline_us : float;
}

let default_retry =
  { max_attempts = 8;
    base_backoff_us = 500.0;
    max_backoff_us = 50_000.0;
    deadline_us = 5_000_000.0 }

type request_params = {
  name : string;
  req_copies : int;
  max_reply : int;
  req_expected : string;
}

type reconnect_summary = {
  resumed_from : (int * int) option;
      (* (copy, offset) the transfer will continue from; None = from scratch *)
  bytes_verified : int;
  retries_consumed : int;
}

type t = {
  engine : Engine.t;
  clock : Simclock.t option;
  retry : retry_policy;
  prng : int ref;
  owner : int;  (* Simclock owner tag on the backoff retry timer *)
  use_ids : bool;
  framed : bool;
      (* negotiate v2 ("Reverso") framed streams: every control message
         carries the framing flag and the data socket parses preludes *)
  mutable next_req_id : int;
  mutable cur_req_id : int;  (* id of the in-flight request; 0 = v1 *)
  mutable ctrl : Socket.t;
  mutable data : Socket.t;
  mutable transfer : transfer option;
  mutable last_request : request_params option;
  mutable awaiting_probe : bool;  (* a CRC resume probe is outstanding *)
  mutable resume_target : (int * int) option;  (* (copy, offset) it guards *)
  mutable bytes_received : int;
  mutable replies_received : int;
  mutable errors : string list;
  mutable rejected : bool;
  mutable aborted : Socket.abort_reason option;
  mutable reconnects : int;
  mutable resumes : int;
  mutable busy_replies : int;
  mutable retries : int;
  mutable attempts : int;  (* attempts since the last fresh request *)
  mutable first_attempt_at : float option;
  mutable busy_failed : bool;
  mutable retry_timer : Simclock.timer option;
  mutable request_started_at : float option;
}

let error t fmt = Printf.ksprintf (fun s -> t.errors <- s :: t.errors) fmt

(* A private xorshift for retry jitter, seeded at creation so runs are
   reproducible. *)
let prng_next st =
  let x = !st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  st := if x = 0 then 1 else x;
  !st

let prng_float st = float_of_int (prng_next st land 0xffffff) /. 16777216.0

(* Flight-recorder identity and timestamps: client events are keyed by
   the control socket's local port; unclocked clients stamp 0. *)
let rec_conn t = Socket.local_port t.ctrl

let rec_ts t =
  match t.clock with Some c -> Simclock.now c | None -> 0.0

let fresh_id t =
  let id = t.next_req_id in
  t.next_req_id <- id + 1;
  id

(* First incomplete (copy, received-bytes) pair — the resume point; [None]
   when every copy is fully received.  [received.(c)] is a verified
   contiguous prefix (enforced below), so it doubles as the offset. *)
let resume_point t =
  match t.transfer with
  | None -> None
  | Some tr ->
      let len = String.length tr.expected in
      let rec find c =
        if c >= tr.copies then None
        else if tr.received.(c) < len then Some (c, tr.received.(c))
        else find (c + 1)
      in
      find 0

let send_ctrl t body =
  let prepared = Engine.prepare_send_segments t.engine body in
  Socket.send_message t.ctrl ~len:prepared.Engine.len ~fill:prepared.Engine.fill

(* Every control message a framing-negotiated client sends carries the
   flag — the first one a (possibly restarted) server sees on a
   connection may be a request or a probe, and the server must know
   before building its first reply. *)
let ctrl_flags t = if t.framed then Messages.flag_rx_framing else 0

(* A from-scratch issue: resets the transfer state (the server will
   execute from byte zero).  Keeps [cur_req_id]: a retry of the same
   logical request carries the same idempotency id. *)
let issue t p =
  t.transfer <-
    Some
      { expected = p.req_expected;
        copies = p.req_copies;
        received = Array.make p.req_copies 0 };
  t.bytes_received <- 0;
  t.replies_received <- 0;
  t.rejected <- false;
  send_ctrl t
    (Messages.request_segments ~flags:(ctrl_flags t)
       (Messages.request ~req_id:t.cur_req_id ~file_name:p.name
          ~copies:p.req_copies ~max_reply:p.max_reply ()))

(* A Busy reply (or a full send window on a retry) backs off and re-issues
   the request: exponential backoff with jitter, bounded by attempts and a
   total deadline.  Past either bound the failure becomes typed
   [Server_busy] — never an untyped stall. *)
let rec schedule_retry t =
  match (t.clock, t.last_request) with
  | None, _ | _, None -> t.busy_failed <- true
  | Some clock, Some p ->
      let now = Simclock.now clock in
      let started =
        match t.first_attempt_at with
        | Some s -> s
        | None ->
            t.first_attempt_at <- Some now;
            now
      in
      if
        t.attempts >= t.retry.max_attempts
        || now -. started >= t.retry.deadline_us
      then t.busy_failed <- true
      else begin
        t.attempts <- t.attempts + 1;
        t.retries <- t.retries + 1;
        M.inc m_retries 1;
        Recorder.note Recorder.Retry ~conn:(rec_conn t) ~arg:t.attempts ~ts:now;
        let backoff =
          min t.retry.max_backoff_us
            (t.retry.base_backoff_us
            *. (2.0 ** float_of_int (t.attempts - 1)))
        in
        let jitter = backoff *. 0.5 *. prng_float t.prng in
        t.retry_timer <-
          Some
            (Simclock.schedule clock ~owner:t.owner ~after:(backoff +. jitter)
               (fun () ->
                 t.retry_timer <- None;
                 if (not t.busy_failed) && t.aborted = None then
                   match issue t p with
                   | Ok () -> ()
                   | Error
                       ( Socket.Window_full | Socket.Buffer_full
                       | Socket.Not_established ) ->
                       schedule_retry t
                   | Error Socket.Message_too_big ->
                       error t "request does not fit one segment"))
      end

(* Resume the transfer at [(start_copy, start_offset)] under a fresh
   idempotency id — fresh because a resume is a new logical request: the
   previous id may be cached on the server, and a cached answer would be
   a data-less status, not the missing bytes. *)
let rec start_resume t ~start_copy ~start_offset =
  match t.last_request with
  | None -> Ok ()
  | Some p -> (
      t.cur_req_id <- (if t.use_ids then fresh_id t else 0);
      t.rejected <- false;
      match
        send_ctrl t
          (Messages.request_segments ~flags:(ctrl_flags t)
             (Messages.request ~req_id:t.cur_req_id ~start_copy ~start_offset
                ~file_name:p.name ~copies:p.req_copies ~max_reply:p.max_reply ()))
      with
      | Ok () ->
          t.resumes <- t.resumes + 1;
          M.inc m_resumes 1;
          Recorder.note Recorder.Resume ~conn:(rec_conn t) ~arg:start_offset
            ~ts:(rec_ts t);
          Ok ()
      | Error
          ( Socket.Window_full | Socket.Buffer_full | Socket.Not_established )
        as e -> (
          match t.clock with
          | Some clock ->
              t.retry_timer <-
                Some
                  (Simclock.schedule clock ~owner:t.owner
                     ~after:t.retry.base_backoff_us (fun () ->
                       t.retry_timer <- None;
                       if t.aborted = None then
                         ignore (start_resume t ~start_copy ~start_offset)));
              Ok ()
          | None -> e)
      | Error Socket.Message_too_big as e ->
          error t "resume request does not fit one segment";
          e)

(* Allocation-free slice equality:
   [expected.[off..off+len-1] = data.[doff..doff+len-1]] without the
   [String.sub] the legacy compare paid per chunk.  Bounds are the
   caller's responsibility. *)
let slice_matches expected ~off data ~doff ~len =
  let rec go i =
    i = len
    || (String.unsafe_get expected (off + i) = String.unsafe_get data (doff + i)
       && go (i + 1))
  in
  go 0

(* Status dispatch shared by both data paths; the payload is the span
   [data.[doff..doff+dlen-1]] (a whole decoded string on the legacy path,
   a window into the pooled TSDU buffer on the single-copy path). *)
let consume_reply t hdr ~data ~doff ~dlen =
  match hdr.Messages.status with
  | Messages.Not_found | Messages.Refused ->
      t.awaiting_probe <- false;
      t.resume_target <- None;
      t.rejected <- true
  | Messages.Busy ->
      t.busy_replies <- t.busy_replies + 1;
      M.inc m_busy_replies 1;
      schedule_retry t
  | Messages.Ok when dlen = 0 ->
      (* A data-less Ok is pure control: the verdict of an outstanding
         CRC resume probe, or a status-only answer (the server's dedup
         cache replaying an executed id, or a resume-at-EOF ack). *)
      if t.awaiting_probe then begin
        t.awaiting_probe <- false;
        match t.resume_target with
        | Some (c, off) ->
            (* Prefix verified against the restarted server's file:
               resume exactly there, never from byte zero. *)
            t.resume_target <- None;
            ignore (start_resume t ~start_copy:c ~start_offset:off)
        | None -> ()
      end
      else (
        (* A replayed id's cached status carries no data: whatever bytes
           that execution sent are gone.  Re-issue from the verified
           prefix under a fresh id (which cannot be cached, so it will
           execute). *)
        match resume_point t with
        | None -> ()  (* transfer already complete — nothing to redo *)
        | Some (c, off) -> ignore (start_resume t ~start_copy:c ~start_offset:off))
  | Messages.Ok -> (
      match t.transfer with
      | None -> error t "unsolicited reply"
      | Some tr ->
          let off = hdr.Messages.file_offset in
          let copy = hdr.Messages.copy in
          if copy < 0 || copy >= tr.copies then error t "bad copy index %d" copy
          else if off < 0 || off + dlen > String.length tr.expected then
            error t "reply out of bounds: offset %d len %d" off dlen
          else if off <> tr.received.(copy) then
            (* Strict contiguity: TCP delivers in order and the server
               sends each copy sequentially from the requested resume
               point, so any gap or overlap (e.g. a restarted server
               wrongly re-sending from byte zero) is a protocol error,
               not something to paper over. *)
            error t "non-contiguous reply: offset %d, expected %d (copy %d)"
              off tr.received.(copy) copy
          else if not (slice_matches tr.expected ~off data ~doff ~len:dlen) then
            error t "payload mismatch at offset %d (copy %d)" off copy
          else begin
            tr.received.(copy) <- tr.received.(copy) + dlen;
            t.bytes_received <- t.bytes_received + dlen;
            (* Transfer just completed: observe the end-to-end latency
               once, against the clock the request was issued under. *)
            let len = String.length tr.expected in
            if tr.received.(copy) = len then
              match (t.request_started_at, t.clock) with
              | Some started, Some clock
                when Array.for_all (fun n -> n = len) tr.received ->
                  t.request_started_at <- None;
                  M.observe m_latency
                    (int_of_float (Simclock.now clock -. started))
              | _ -> ()
          end)

let handle_reply t ~len =
  t.replies_received <- t.replies_received + 1;
  let length_at_end = Engine.header_style t.engine = Engine.Trailer in
  match Engine.data_path t.engine with
  | Engine.Legacy -> (
      match Engine.read_plaintext t.engine ~len with
      | Error e -> error t "unreadable reply: %s" e
      | Ok plaintext -> (
          match Messages.decode_reply ~length_at_end plaintext with
          | Error e -> error t "undecodable reply: %s" e
          | Ok (hdr, data) ->
              consume_reply t hdr ~data ~doff:0 ~dlen:(String.length data)))
  | Engine.Pooled -> (
      (* Single-copy: the TSDU lands in a pooled buffer, the reply is
         decoded in place, the payload compared in place, and the buffer
         released on every path — including decode errors. *)
      match Engine.read_plaintext_pooled t.engine ~len with
      | Error e -> error t "unreadable reply: %s" e
      | Ok (buf, plen) ->
          (match Messages.decode_reply_view ~length_at_end buf ~len:plen with
          | Error e -> error t "undecodable reply: %s" e
          | Ok (hdr, data_off) ->
              consume_reply t hdr
                ~data:(Bytes.unsafe_to_string buf)
                ~doff:data_off ~dlen:hdr.Messages.data_len);
          Engine.release_plaintext t.engine buf)

(* Both connections feed the same failure slot: losing either one ends the
   transfer, and the first recorded reason is the one reported. *)
let wire_sockets t =
  (match Engine.rx_style t.engine with
  | Engine.Rx_integrated_style f -> Socket.set_rx_processing t.data (Socket.Rx_integrated f)
  | Engine.Rx_deferred_style f -> Socket.set_rx_processing t.data (Socket.Rx_separate f));
  (* Covers reconnection too: a fresh data socket must parse preludes
     from its very first reply. *)
  Socket.set_rx_framing t.data t.framed;
  Socket.set_on_message t.data (fun ~src:_ ~len -> handle_reply t ~len);
  let record reason =
    if t.aborted = None then t.aborted <- Some reason;
    (* The transfer is over on this socket pair: a pending backoff retry
       would only re-issue into a dead connection. *)
    Option.iter Simclock.cancel t.retry_timer;
    t.retry_timer <- None
  in
  Socket.set_on_abort t.ctrl record;
  Socket.set_on_abort t.data record

let create ?clock ?(retry = default_retry) ?(seed = 1) ?(idempotent = false)
    ?(framed = false) ~engine ~ctrl ~data () =
  let t =
    { engine;
      clock;
      retry;
      prng = ref (((seed * 0x9e3779b1) lxor 0x2545f491) lor 1);
      owner =
        (match clock with
        | Some c -> Simclock.fresh_owner c
        | None -> Simclock.anonymous);
      use_ids = idempotent;
      framed;
      (* Nonzero, and disjoint between clients created with distinct
         seeds — the dedup cache is keyed on the id alone. *)
      next_req_id = ((seed land 0x3ff) * 0x100000) + 1;
      cur_req_id = 0;
      ctrl;
      data;
      transfer = None;
      last_request = None;
      awaiting_probe = false;
      resume_target = None;
      bytes_received = 0;
      replies_received = 0;
      errors = [];
      rejected = false;
      aborted = None;
      reconnects = 0;
      resumes = 0;
      busy_replies = 0;
      retries = 0;
      attempts = 0;
      first_attempt_at = None;
      busy_failed = false;
      retry_timer = None;
      request_started_at = None }
  in
  wire_sockets t;
  t

let request_file t ~name ~copies ~max_reply ~expected =
  let p = { name; req_copies = copies; max_reply; req_expected = expected } in
  t.last_request <- Some p;
  t.attempts <- 0;
  t.first_attempt_at <- None;
  t.busy_failed <- false;
  t.awaiting_probe <- false;
  t.resume_target <- None;
  t.cur_req_id <- (if t.use_ids then fresh_id t else 0);
  t.request_started_at <-
    (match t.clock with Some c -> Some (Simclock.now c) | None -> None);
  issue t p

let reconnect t ~ctrl ~data =
  t.ctrl <- ctrl;
  t.data <- data;
  wire_sockets t;
  Option.iter Simclock.cancel t.retry_timer;
  t.retry_timer <- None;
  t.aborted <- None;
  t.errors <- [];
  t.awaiting_probe <- false;
  t.resume_target <- None;
  (* A new connection epoch gets a fresh retry budget; [retries] keeps
     the cumulative count for the summary. *)
  t.attempts <- 0;
  t.first_attempt_at <- None;
  t.busy_failed <- false;
  t.reconnects <- t.reconnects + 1;
  M.inc m_reconnects 1;
  Recorder.note Recorder.Reconnect ~conn:(rec_conn t) ~arg:t.reconnects
    ~ts:(rec_ts t);
  let summary resumed_from =
    { resumed_from;
      bytes_verified = t.bytes_received;
      retries_consumed = t.retries }
  in
  match t.last_request with
  | None -> Ok (summary None)
  | Some p -> (
      match resume_point t with
      | None ->
          (* Every copy already verified: nothing to re-issue. *)
          Ok (summary None)
      | Some (0, 0) -> (
          (* Nothing received yet.  Re-issue under the SAME id: if the
             lost server had already executed it, the restarted one
             answers from the dedup cache (a data-less Ok) and the
             client then resumes under a fresh id; if not, it simply
             executes. *)
          match issue t p with
          | Ok () -> Ok (summary None)
          | Error _ as e -> e)
      | Some (c, 0) -> (
          (* Crash landed exactly on a copy boundary: no partial prefix
             to verify, resume directly. *)
          match start_resume t ~start_copy:c ~start_offset:0 with
          | Ok () -> Ok (summary (Some (c, 0)))
          | Error _ as e -> e)
      | Some (c, off) -> (
          (* Verify the received prefix against the (possibly restarted)
             server's file before resuming mid-copy: probe with the
             prefix CRC; the verdict arrives as a data-less reply and
             triggers the resume request. *)
          t.awaiting_probe <- true;
          t.resume_target <- Some (c, off);
          let crc =
            Ilp_checksum.Crc32.finish
              (Ilp_checksum.Crc32.fold_string ~crc:Ilp_checksum.Crc32.init
                 p.req_expected ~off:0 ~len:off)
          in
          let probe =
            { Messages.p_file_name = p.name;
              p_offset = off;
              p_crc = crc;
              p_req_id = (if t.use_ids then fresh_id t else 0) }
          in
          match send_ctrl t (Messages.probe_segments ~flags:(ctrl_flags t) probe) with
          | Ok () -> Ok (summary (Some (c, off)))
          | Error _ as e ->
              t.awaiting_probe <- false;
              t.resume_target <- None;
              e))

let transfer_complete t =
  match t.transfer with
  | None -> false
  | Some tr ->
      (not t.rejected)
      && (not t.busy_failed)
      && t.errors = []
      && t.aborted = None
      && Array.for_all (fun n -> n = String.length tr.expected) tr.received

let failure t =
  match t.aborted with
  | Some r -> Some (Aborted r)
  | None ->
      if t.busy_failed then Some Server_busy
      else
        match List.rev t.errors with [] -> None | e :: _ -> Some (Protocol e)

let bytes_received t = t.bytes_received
let replies_received t = t.replies_received
let errors t = List.rev t.errors
let rejected t = t.rejected
let reconnects t = t.reconnects
let resumes t = t.resumes
let busy_replies t = t.busy_replies
let retries t = t.retries
let timer_owner t = t.owner
