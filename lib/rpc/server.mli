(** The file-transfer server.

    Listens for requests on a control connection, segments the requested
    file into reply messages of at most [max_reply] payload bytes (one
    TSDU = one TPDU: each reply is one TCP segment) and streams them over
    the data connection, respecting TCP's window and ring-buffer
    back-pressure by retrying on the simulated clock — the paper's
    "if there is not enough TCP buffer, all data manipulations are delayed
    until there is enough buffer space available again". *)

type t

(** [create ~clock ~engine ~ctrl ~data] wires a server: [ctrl] is the
    inbound request connection (its receive processing is configured from
    [engine]'s mode), [data] the outbound reply connection.
    [retry_us] (default 150) is the back-pressure retry interval. *)
val create :
  clock:Ilp_netsim.Simclock.t ->
  engine:Ilp_core.Engine.t ->
  ctrl:Ilp_tcp.Socket.t ->
  data:Ilp_tcp.Socket.t ->
  ?retry_us:float ->
  unit ->
  t

(** [add_file t ~name ~addr ~len] registers a file whose contents live in
    simulated memory at [addr]. *)
val add_file : t -> name:string -> addr:int -> len:int -> unit

(** Replies queued but not yet accepted by TCP. *)
val pending_replies : t -> int

val replies_sent : t -> int

(** Replies discarded because the data connection died (aborted or
    closed) before they could be sent; the drain loop stops instead of
    retrying forever. *)
val replies_abandoned : t -> int

val requests_received : t -> int

(** Requests whose plaintext could not be read or decoded (answered with
    an error reply, counted, never raised). *)
val bad_requests : t -> int

(** [set_reply_probe t ~before ~after] instruments the send path:
    [before] fires just before each send attempt (snapshot point for
    attributing memory accesses), [after ~wire_len ~elapsed_us
    ~syscopy_us] after each successfully queued reply with the simulated
    time the send path consumed (the paper's "send packet processing")
    and the portion spent in the user-to-kernel system copy. *)
val set_reply_probe :
  t ->
  before:(unit -> unit) ->
  after:(wire_len:int -> elapsed_us:float -> syscopy_us:float -> unit) ->
  unit
