(** The file-transfer server.

    Serves many concurrent clients: each {!attach} registers one
    ctrl/data connection pair under its own connection id, with its own
    reply queue and drain loop on the simulated clock — a slow or dead
    client stalls only its own queue, never its neighbours'.

    Each admitted request is segmented into reply messages of at most
    [max_reply] payload bytes (one TSDU = one TPDU: each reply is one TCP
    segment) and streamed over that connection's data socket, respecting
    TCP's window and ring-buffer back-pressure by retrying on the clock —
    the paper's "if there is not enough TCP buffer, all data manipulations
    are delayed until there is enough buffer space available again".

    {2 Admission control and load shedding}

    Back-pressure alone lets one greedy or stalled client balloon the
    server, so budgets ({!limits}) bound the damage: concurrent
    connections, queued reply bytes per connection and across the server,
    and request age at drain time.  A request that would exceed a budget
    is {e shed}: answered with a small typed [Busy] reply (or [Refused]
    when it could never fit), counted in a per-reason ledger ({!sheds}),
    and never queued — so queue growth is bounded by construction and the
    client learns to back off rather than time out. *)

type t

(** Why a request was shed rather than served. *)
type shed_reason =
  | Too_many_connections  (** arrived on an unadmitted connection *)
  | Conn_queue_full  (** would exceed this connection's queued-bytes budget *)
  | Server_queue_full  (** would exceed the server-wide queued-bytes budget *)
  | Request_too_old
      (** still queued past [max_request_age_us]; its remaining segments
          are dropped and one [Busy] sent instead *)
  | Oversized_request
      (** could never fit the per-connection budget; answered [Refused]
          (permanent), not [Busy] *)

val shed_reasons : shed_reason list
val shed_reason_to_string : shed_reason -> string

type limits = {
  max_connections : int;  (** concurrent admitted connection pairs *)
  max_conn_queue_bytes : int;  (** queued reply payload bytes per connection *)
  max_total_queue_bytes : int;  (** queued reply payload bytes server-wide *)
  max_request_age_us : float;  (** age at which queued segments are shed *)
}

(** 64 connections, 256 KiB per connection, 1 MiB total, 60 s age. *)
val default_limits : limits

(** [create ~clock ~engine ()] builds a server with no connections;
    [retry_us] (default 150) is the per-connection back-pressure retry
    interval. *)
val create :
  clock:Ilp_netsim.Simclock.t ->
  engine:Ilp_core.Engine.t ->
  ?retry_us:float ->
  ?limits:limits ->
  unit ->
  t

(** [attach t ~ctrl ~data] registers a connection pair and returns its
    connection id: [ctrl] is the inbound request connection (its receive
    processing is configured from the engine's mode), [data] the outbound
    reply connection.  Beyond [max_connections] the pair is still wired
    but unadmitted: every request on it is shed with [Busy] until a slot
    frees up (a live connection dies or is {!detach}ed).  Both sockets'
    abort callbacks are claimed: either one dying abandons the
    connection's queue and frees its slot. *)
val attach : t -> ctrl:Ilp_tcp.Socket.t -> data:Ilp_tcp.Socket.t -> int

(** Remove a connection, abandoning anything still queued for it. *)
val detach : t -> id:int -> unit

(** [add_file t ~name ~addr ~len] registers a file whose contents live in
    simulated memory at [addr]. *)
val add_file : t -> name:string -> addr:int -> len:int -> unit

(** Replies queued but not yet accepted by TCP, across all connections. *)
val pending_replies : t -> int

(** Live admitted connections. *)
val connections : t -> int

(** Reply payload bytes currently queued across all connections. *)
val queued_bytes : t -> int

(** High-water mark of {!queued_bytes} — must never exceed
    [max_total_queue_bytes] if the budgets hold. *)
val peak_queued_bytes : t -> int

val replies_sent : t -> int

(** Replies discarded because their connection died (aborted or closed)
    before they could be sent; the drain loop stops instead of retrying
    forever. *)
val replies_abandoned : t -> int

(** Status-only replies (Busy, Refused, Not_found) discarded the same
    way — a shed whose typed answer never reached the client because the
    connection itself died first. *)
val statuses_abandoned : t -> int

val requests_received : t -> int

(** Requests whose plaintext could not be read or decoded (answered with
    an error reply, counted, never raised). *)
val bad_requests : t -> int

(** The per-reason shed ledger (every reason, in {!shed_reasons} order). *)
val sheds : t -> (shed_reason * int) list

val shed_count : t -> shed_reason -> int
val sheds_total : t -> int

(** [set_reply_probe t ~before ~after] instruments the send path:
    [before] fires just before each send attempt (snapshot point for
    attributing memory accesses), [after ~wire_len ~elapsed_us
    ~syscopy_us] after each successfully queued reply with the simulated
    time the send path consumed (the paper's "send packet processing")
    and the portion spent in the user-to-kernel system copy. *)
val set_reply_probe :
  t ->
  before:(unit -> unit) ->
  after:(wire_len:int -> elapsed_us:float -> syscopy_us:float -> unit) ->
  unit
