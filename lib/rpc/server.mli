(** The file-transfer server.

    Serves many concurrent clients: each {!attach} registers one
    ctrl/data connection pair under its own connection id, with its own
    reply queue and drain loop on the simulated clock — a slow or dead
    client stalls only its own queue, never its neighbours'.

    Each admitted request is segmented into reply messages of at most
    [max_reply] payload bytes (one TSDU = one TPDU: each reply is one TCP
    segment) and streamed over that connection's data socket, respecting
    TCP's window and ring-buffer back-pressure by retrying on the clock —
    the paper's "if there is not enough TCP buffer, all data manipulations
    are delayed until there is enough buffer space available again".

    {2 Admission control and load shedding}

    Back-pressure alone lets one greedy or stalled client balloon the
    server, so budgets ({!limits}) bound the damage: concurrent
    connections, queued reply bytes per connection and across the server,
    and request age at drain time.  A request that would exceed a budget
    is {e shed}: answered with a small typed [Busy] reply (or [Refused]
    when it could never fit), counted in a per-reason ledger ({!sheds}),
    and never queued — so queue growth is bounded by construction and the
    client learns to back off rather than time out. *)

type t

(** Why a request was shed rather than served. *)
type shed_reason =
  | Too_many_connections  (** arrived on an unadmitted connection *)
  | Conn_queue_full  (** would exceed this connection's queued-bytes budget *)
  | Server_queue_full  (** would exceed the server-wide queued-bytes budget *)
  | Request_too_old
      (** still queued past [max_request_age_us]; its remaining segments
          are dropped and one [Busy] sent instead *)
  | Oversized_request
      (** could never fit the per-connection budget; answered [Refused]
          (permanent), not [Busy] *)

val shed_reasons : shed_reason list
val shed_reason_to_string : shed_reason -> string

type limits = {
  max_connections : int;  (** concurrent admitted connection pairs *)
  max_conn_queue_bytes : int;  (** queued reply payload bytes per connection *)
  max_total_queue_bytes : int;  (** queued reply payload bytes server-wide *)
  max_request_age_us : float;  (** age at which queued segments are shed *)
}

(** 64 connections, 256 KiB per connection, 1 MiB total, 60 s age. *)
val default_limits : limits

(** {2 Crash-surviving state}

    The state a node crash does {e not} erase: the served files and the
    bounded at-most-once dedup cache keyed by request idempotency id,
    together with its conservation ledger.  A restarted server instance
    is built over the same store ([create ~store]), so a replayed id is
    answered from the cache (a data-less status reply) instead of being
    re-executed. *)

type store

(** [create_store ()] — [dedup_cap] (default 1024, must be >= 1) bounds
    the dedup cache; eviction is FIFO by insertion. *)
val create_store : ?dedup_cap:int -> unit -> store

(** Replays answered from the dedup cache. *)
val dedup_hits : store -> int

(** Id-carrying requests admitted and executed (their terminal status was
    cached). *)
val executions : store -> int

(** Id-carrying requests decoded, across all server instances over this
    store. *)
val id_requests_seen : store -> int

(** Id-carrying requests shed or rejected without caching (a retry with
    the same id is free to succeed).  Conservation law, holding at every
    instant: [executions + dedup_hits + dedup_sheds = id_requests_seen]. *)
val dedup_sheds : store -> int

(** Ids currently cached (bounded by [dedup_cap]). *)
val dedup_cached : store -> int

(** [create ~clock ~engine ()] builds a server with no connections;
    [retry_us] (default 150) is the per-connection back-pressure retry
    interval.  [store] (fresh by default) carries the crash-surviving
    state; pass a previous instance's store to model a restart. *)
val create :
  clock:Ilp_netsim.Simclock.t ->
  engine:Ilp_core.Engine.t ->
  ?retry_us:float ->
  ?limits:limits ->
  ?store:store ->
  unit ->
  t

(** This instance's crash-surviving state (to thread into the replacement
    instance after a simulated crash). *)
val store : t -> store

(** Node crash: every connection dies with the process — queues
    abandoned (counted in {!replies_abandoned} / {!statuses_abandoned}),
    drain timers cancelled.  The sockets themselves belong to the
    harness, which destroys them separately. *)
val shutdown : t -> unit

(** The {!Ilp_netsim.Simclock} owner id tagging every drain timer this
    instance schedules — [Simclock.pending_count ~owner] must be 0 after
    {!shutdown}. *)
val timer_owner : t -> int

(** [attach t ~ctrl ~data] registers a connection pair and returns its
    connection id: [ctrl] is the inbound request connection (its receive
    processing is configured from the engine's mode), [data] the outbound
    reply connection.  Beyond [max_connections] the pair is still wired
    but unadmitted: every request on it is shed with [Busy] until a slot
    frees up (a live connection dies or is {!detach}ed).  Both sockets'
    abort callbacks are claimed: either one dying abandons the
    connection's queue and frees its slot. *)
val attach : t -> ctrl:Ilp_tcp.Socket.t -> data:Ilp_tcp.Socket.t -> int

(** Remove a connection, abandoning anything still queued for it. *)
val detach : t -> id:int -> unit

(** [add_file t ~name ~addr ~len] registers a file whose contents live in
    simulated memory at [addr]. *)
val add_file : t -> name:string -> addr:int -> len:int -> unit

(** Replies queued but not yet accepted by TCP, across all connections. *)
val pending_replies : t -> int

(** Live admitted connections. *)
val connections : t -> int

(** Reply payload bytes currently queued across all connections. *)
val queued_bytes : t -> int

(** High-water mark of {!queued_bytes} — must never exceed
    [max_total_queue_bytes] if the budgets hold. *)
val peak_queued_bytes : t -> int

val replies_sent : t -> int

(** Replies discarded because their connection died (aborted or closed)
    before they could be sent; the drain loop stops instead of retrying
    forever. *)
val replies_abandoned : t -> int

(** Status-only replies (Busy, Refused, Not_found) discarded the same
    way — a shed whose typed answer never reached the client because the
    connection itself died first. *)
val statuses_abandoned : t -> int

val requests_received : t -> int

(** Requests whose plaintext could not be read or decoded (answered with
    an error reply, counted, never raised), plus decodable requests with
    an out-of-range resume point or probe offset. *)
val bad_requests : t -> int

(** CRC resume probes received (answered with a data-less [Ok] when the
    stored file's prefix matches, [Refused] otherwise). *)
val probes_received : t -> int

(** The per-reason shed ledger (every reason, in {!shed_reasons} order). *)
val sheds : t -> (shed_reason * int) list

val shed_count : t -> shed_reason -> int
val sheds_total : t -> int

(** [set_reply_probe t ~before ~after] instruments the send path:
    [before] fires just before each send attempt (snapshot point for
    attributing memory accesses), [after ~wire_len ~elapsed_us
    ~syscopy_us] after each successfully queued reply with the simulated
    time the send path consumed (the paper's "send packet processing")
    and the portion spent in the user-to-kernel system copy. *)
val set_reply_probe :
  t ->
  before:(unit -> unit) ->
  after:(wire_len:int -> elapsed_us:float -> syscopy_us:float -> unit) ->
  unit
