module Simclock = Ilp_netsim.Simclock
module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine
module Machine = Ilp_memsim.Machine
module M = Ilp_obs.Metrics
module Trace = Ilp_obs.Trace

type file = { addr : int; len : int }

type segment = { copy : int; offset : int; seg_len : int; file : file }

(* A queued reply item: either a data segment of an admitted request
   (tagged with its request id and admission time, so stale requests can
   be shed at drain time), or a small status-only reply.  Status items
   bypass the byte budgets — they are the shedding mechanism itself and
   must always be deliverable. *)
type item =
  | Data of { seg : segment; req_id : int; enqueued_at : float }
  | Status of Messages.status

type shed_reason =
  | Too_many_connections
  | Conn_queue_full
  | Server_queue_full
  | Request_too_old
  | Oversized_request

let shed_reasons =
  [ Too_many_connections; Conn_queue_full; Server_queue_full; Request_too_old;
    Oversized_request ]

let shed_reason_index = function
  | Too_many_connections -> 0
  | Conn_queue_full -> 1
  | Server_queue_full -> 2
  | Request_too_old -> 3
  | Oversized_request -> 4

let shed_reason_to_string = function
  | Too_many_connections -> "too_many_connections"
  | Conn_queue_full -> "conn_queue_full"
  | Server_queue_full -> "server_queue_full"
  | Request_too_old -> "request_too_old"
  | Oversized_request -> "oversized_request"

type limits = {
  max_connections : int;
  max_conn_queue_bytes : int;
  max_total_queue_bytes : int;
  max_request_age_us : float;
}

(* Unified-registry mirrors of the bespoke server ledgers below; every
   bump site updates both (the conservation test relies on it). *)
let m_requests_received = M.counter M.default "rpc.requests_received"
let m_bad_requests = M.counter M.default "rpc.bad_requests"
let m_replies_sent = M.counter M.default "rpc.replies_sent"
let m_replies_abandoned = M.counter M.default "rpc.replies_abandoned"
let m_statuses_abandoned = M.counter M.default "rpc.statuses_abandoned"
let g_connections = M.gauge M.default "rpc.connections"
let g_queued_bytes = M.gauge M.default "rpc.queued_bytes"

let m_sheds =
  Array.of_list
    (List.map
       (fun r -> M.counter M.default ("rpc.shed." ^ shed_reason_to_string r))
       shed_reasons)

let default_limits =
  { max_connections = 64;
    max_conn_queue_bytes = 256 * 1024;
    max_total_queue_bytes = 1024 * 1024;
    max_request_age_us = 60_000_000.0 }

type conn = {
  id : int;
  ctrl : Socket.t;
  data : Socket.t;
  queue : item Queue.t;
  admitted : bool;
  mutable queued_bytes : int;
  mutable draining : bool;
  mutable dead : bool;
}

type t = {
  clock : Simclock.t;
  engine : Engine.t;
  retry_us : float;
  limits : limits;
  files : (string, file) Hashtbl.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn_id : int;
  mutable next_req_id : int;
  mutable live_connections : int;
  mutable total_queued_bytes : int;
  mutable peak_queued_bytes : int;
  shed_ledger : int array;
  mutable replies_sent : int;
  mutable replies_abandoned : int;
  mutable statuses_abandoned : int;
  mutable requests_received : int;
  mutable bad_requests : int;
  mutable probe_before : unit -> unit;
  mutable probe_after : wire_len:int -> elapsed_us:float -> syscopy_us:float -> unit;
}

let machine t = (Engine.sim t.engine).Ilp_memsim.Sim.machine

let count_shed t reason =
  t.shed_ledger.(shed_reason_index reason) <-
    t.shed_ledger.(shed_reason_index reason) + 1;
  M.inc m_sheds.(shed_reason_index reason) 1;
  if Trace.enabled () then
    Trace.instant ~arg:(shed_reason_index reason) Trace.Rpc_shed
      ~packet:(Trace.current_packet ())
      ~ts:(Machine.micros (machine t))

let charge_queue t conn bytes =
  conn.queued_bytes <- conn.queued_bytes + bytes;
  t.total_queued_bytes <- t.total_queued_bytes + bytes;
  M.set g_queued_bytes t.total_queued_bytes;
  if t.total_queued_bytes > t.peak_queued_bytes then
    t.peak_queued_bytes <- t.total_queued_bytes

let release_queue t conn bytes =
  conn.queued_bytes <- conn.queued_bytes - bytes;
  t.total_queued_bytes <- t.total_queued_bytes - bytes;
  M.set g_queued_bytes t.total_queued_bytes

let item_bytes = function Data { seg; _ } -> seg.seg_len | Status _ -> 0

(* A connection whose sockets died (abort or close) will never accept its
   queued replies: abandon them, free the admission slot, and stop the
   drain loop instead of rescheduling forever. *)
let mark_dead t conn =
  if not conn.dead then begin
    conn.dead <- true;
    if conn.admitted then begin
      t.live_connections <- t.live_connections - 1;
      M.set g_connections t.live_connections
    end;
    let abandoned = Queue.length conn.queue in
    Queue.iter
      (fun item ->
        release_queue t conn (item_bytes item);
        match item with
        | Data _ ->
            t.replies_abandoned <- t.replies_abandoned + 1;
            M.inc m_replies_abandoned 1
        | Status _ ->
            t.statuses_abandoned <- t.statuses_abandoned + 1;
            M.inc m_statuses_abandoned 1)
      conn.queue;
    Queue.clear conn.queue;
    conn.draining <- false;
    if Trace.enabled () && abandoned > 0 then
      Trace.instant ~arg:abandoned Trace.Rpc_abandon
        ~packet:(Trace.current_packet ())
        ~ts:(Machine.micros (machine t))
  end

let send_reply t conn hdr ~payload_addr =
  let body = Messages.reply_segments hdr ~payload_addr in
  let ps = Engine.prepare_stream_segments t.engine body in
  let wire_len = ps.Engine.stream_len in
  t.probe_before ();
  let before = Machine.micros (machine t) in
  ignore (Socket.take_syscopy_send_us conn.data);
  let sent =
    (* Replies that fit one segment take the legacy single-TPDU path
       (byte- and charge-identical to a whole-message prepare); a reply
       larger than the connection's MSS streams as a pipelined TSDU of
       MSS-sized segments instead of being dropped. *)
    match
      Socket.send_message conn.data ~len:wire_len ~fill:(fun mem ~dst ->
          ps.Engine.fill_range mem ~dst ~off:0 ~len:wire_len)
    with
    | Error Socket.Message_too_big ->
        Socket.send_stream conn.data ~seg_unit:ps.Engine.seg_unit ~len:wire_len
          ~fill:ps.Engine.fill_range
    | r -> r
  in
  match sent with
  | Ok () ->
      let elapsed_us = Machine.micros (machine t) -. before in
      let syscopy_us = Socket.take_syscopy_send_us conn.data in
      t.replies_sent <- t.replies_sent + 1;
      M.inc m_replies_sent 1;
      t.probe_after ~wire_len ~elapsed_us ~syscopy_us;
      `Sent
  | Error (Socket.Buffer_full | Socket.Window_full | Socket.Not_established) ->
      `Backpressure
  | Error Socket.Message_too_big ->
      (* Still too big for the stream path (exceeds the engine's
         [max_message]): drop the reply rather than loop forever. *)
      `Drop

let send_segment t conn seg =
  send_reply t conn
    { Messages.status = Messages.Ok;
      copy = seg.copy;
      file_offset = seg.offset;
      total_len = seg.file.len;
      data_len = seg.seg_len }
    ~payload_addr:(seg.file.addr + seg.offset)

let send_status t conn status =
  send_reply t conn
    { Messages.status; copy = 0; file_offset = 0; total_len = 0; data_len = 0 }
    ~payload_addr:0

(* Drop every remaining data segment of [req_id] from the queue (it is
   being shed as a whole) and answer with one Busy instead. *)
let shed_request t conn ~req_id =
  let keep = Queue.create () in
  Queue.iter
    (fun item ->
      match item with
      | Data d when d.req_id = req_id -> release_queue t conn d.seg.seg_len
      | _ -> Queue.add item keep)
    conn.queue;
  Queue.clear conn.queue;
  Queue.transfer keep conn.queue;
  Queue.add (Status Messages.Busy) conn.queue

let rec drain t conn =
  if Socket.failure conn.data <> None || Socket.state conn.data = Socket.Closed
  then mark_dead t conn
  else
    match Queue.peek_opt conn.queue with
    | None -> conn.draining <- false
    | Some (Status st) -> (
        match send_status t conn st with
        | `Sent | `Drop ->
            ignore (Queue.pop conn.queue);
            drain t conn
        | `Backpressure -> reschedule t conn)
    | Some (Data { seg; req_id; enqueued_at }) ->
        if
          Simclock.now t.clock -. enqueued_at > t.limits.max_request_age_us
        then begin
          count_shed t Request_too_old;
          shed_request t conn ~req_id;
          drain t conn
        end
        else (
          match send_segment t conn seg with
          | `Sent | `Drop ->
              ignore (Queue.pop conn.queue);
              release_queue t conn seg.seg_len;
              drain t conn
          | `Backpressure -> reschedule t conn)

and reschedule t conn =
  conn.draining <- true;
  ignore (Simclock.schedule t.clock ~after:t.retry_us (fun () -> drain t conn))

let kick t conn = if not conn.draining then drain t conn

let enqueue_status t conn status =
  if not conn.dead then begin
    Queue.add (Status status) conn.queue;
    kick t conn
  end

let handle_request t conn ~len =
  t.requests_received <- t.requests_received + 1;
  M.inc m_requests_received 1;
  match
    let length_at_end = Engine.header_style t.engine = Engine.Trailer in
    match Engine.data_path t.engine with
    | Engine.Legacy ->
        Result.bind (Engine.read_plaintext t.engine ~len)
          (Messages.decode_request ~length_at_end)
    | Engine.Pooled ->
        (* Single-copy: decode the request in place from a pooled TSDU
           buffer, released as soon as the decode finishes (the request's
           fields are scalars plus the short file name). *)
        Result.bind (Engine.read_plaintext_pooled t.engine ~len)
          (fun (buf, plen) ->
            let r = Messages.decode_request_bytes ~length_at_end buf ~len:plen in
            Engine.release_plaintext t.engine buf;
            r)
  with
  | Error _ ->
      t.bad_requests <- t.bad_requests + 1;
      M.inc m_bad_requests 1;
      enqueue_status t conn Messages.Not_found
  | Ok req ->
      if not conn.admitted then begin
        count_shed t Too_many_connections;
        enqueue_status t conn Messages.Busy
      end
      else (
        match Hashtbl.find_opt t.files req.Messages.file_name with
        | None -> enqueue_status t conn Messages.Not_found
        | Some file ->
            let request_bytes = req.Messages.copies * file.len in
            if request_bytes > t.limits.max_conn_queue_bytes then begin
              (* Could never fit: permanent refusal, not a retryable shed. *)
              count_shed t Oversized_request;
              enqueue_status t conn Messages.Refused
            end
            else if
              conn.queued_bytes + request_bytes > t.limits.max_conn_queue_bytes
            then begin
              count_shed t Conn_queue_full;
              enqueue_status t conn Messages.Busy
            end
            else if
              t.total_queued_bytes + request_bytes > t.limits.max_total_queue_bytes
            then begin
              count_shed t Server_queue_full;
              enqueue_status t conn Messages.Busy
            end
            else begin
              let req_id = t.next_req_id in
              t.next_req_id <- t.next_req_id + 1;
              let enqueued_at = Simclock.now t.clock in
              let max_reply = max 16 req.Messages.max_reply in
              for copy = 0 to req.Messages.copies - 1 do
                let offset = ref 0 in
                while !offset < file.len do
                  let seg_len = min max_reply (file.len - !offset) in
                  Queue.add
                    (Data
                       { seg = { copy; offset = !offset; seg_len; file };
                         req_id;
                         enqueued_at })
                    conn.queue;
                  charge_queue t conn seg_len;
                  offset := !offset + seg_len
                done
              done;
              kick t conn
            end)

let create ~clock ~engine ?(retry_us = 150.0) ?(limits = default_limits) () =
  { clock;
    engine;
    retry_us;
    limits;
    files = Hashtbl.create 4;
    conns = Hashtbl.create 8;
    next_conn_id = 0;
    next_req_id = 0;
    live_connections = 0;
    total_queued_bytes = 0;
    peak_queued_bytes = 0;
    shed_ledger = Array.make (List.length shed_reasons) 0;
    replies_sent = 0;
    replies_abandoned = 0;
    statuses_abandoned = 0;
    requests_received = 0;
    bad_requests = 0;
    probe_before = (fun () -> ());
    probe_after = (fun ~wire_len:_ ~elapsed_us:_ ~syscopy_us:_ -> ()) }

let attach t ~ctrl ~data =
  let id = t.next_conn_id in
  t.next_conn_id <- id + 1;
  let admitted = t.live_connections < t.limits.max_connections in
  let conn =
    { id; ctrl; data; queue = Queue.create (); admitted;
      queued_bytes = 0; draining = false; dead = false }
  in
  if admitted then begin
    t.live_connections <- t.live_connections + 1;
    M.set g_connections t.live_connections
  end;
  Hashtbl.replace t.conns id conn;
  (* Requests arrive through the same manipulation stack as any message. *)
  (match Engine.rx_style t.engine with
  | Engine.Rx_integrated_style f -> Socket.set_rx_processing ctrl (Socket.Rx_integrated f)
  | Engine.Rx_deferred_style f -> Socket.set_rx_processing ctrl (Socket.Rx_separate f));
  Socket.set_on_message ctrl (fun ~src:_ ~len -> handle_request t conn ~len);
  (* Either socket dying ends the connection: abandon its queue and free
     the admission slot so a waiting client can be served. *)
  Socket.set_on_abort ctrl (fun _ -> mark_dead t conn);
  Socket.set_on_abort data (fun _ -> mark_dead t conn);
  id

let detach t ~id =
  match Hashtbl.find_opt t.conns id with
  | None -> ()
  | Some conn ->
      mark_dead t conn;
      Hashtbl.remove t.conns id

let add_file t ~name ~addr ~len = Hashtbl.replace t.files name { addr; len }

let pending_replies t =
  Hashtbl.fold (fun _ conn acc -> acc + Queue.length conn.queue) t.conns 0

let connections t = t.live_connections
let queued_bytes t = t.total_queued_bytes
let peak_queued_bytes t = t.peak_queued_bytes
let replies_sent t = t.replies_sent
let replies_abandoned t = t.replies_abandoned
let statuses_abandoned t = t.statuses_abandoned
let requests_received t = t.requests_received
let bad_requests t = t.bad_requests
let shed_count t reason = t.shed_ledger.(shed_reason_index reason)
let sheds t = List.map (fun r -> (r, shed_count t r)) shed_reasons
let sheds_total t = Array.fold_left ( + ) 0 t.shed_ledger

let set_reply_probe t ~before ~after =
  t.probe_before <- before;
  t.probe_after <- after
