module Simclock = Ilp_netsim.Simclock
module Socket = Ilp_tcp.Socket
module Framing = Ilp_tcp.Framing
module Engine = Ilp_core.Engine
module Machine = Ilp_memsim.Machine
module M = Ilp_obs.Metrics
module Trace = Ilp_obs.Trace
module Recorder = Ilp_obs.Recorder

type file = { addr : int; len : int }

type segment = { copy : int; offset : int; seg_len : int; file : file }

(* A queued reply item: either a data segment of an admitted request
   (tagged with its request id and admission time, so stale requests can
   be shed at drain time), or a small data-less reply carrying just a
   header (status sheds, probe verdicts, dedup replays).  Header items
   bypass the byte budgets — they are the shedding mechanism itself and
   must always be deliverable. *)
type item =
  | Data of { seg : segment; req_id : int; enqueued_at : float }
  | Status of Messages.reply_header

type shed_reason =
  | Too_many_connections
  | Conn_queue_full
  | Server_queue_full
  | Request_too_old
  | Oversized_request

let shed_reasons =
  [ Too_many_connections; Conn_queue_full; Server_queue_full; Request_too_old;
    Oversized_request ]

let shed_reason_index = function
  | Too_many_connections -> 0
  | Conn_queue_full -> 1
  | Server_queue_full -> 2
  | Request_too_old -> 3
  | Oversized_request -> 4

let shed_reason_to_string = function
  | Too_many_connections -> "too_many_connections"
  | Conn_queue_full -> "conn_queue_full"
  | Server_queue_full -> "server_queue_full"
  | Request_too_old -> "request_too_old"
  | Oversized_request -> "oversized_request"

(* Decode shed-reason args in flight-recorder dumps. *)
let () =
  Recorder.set_arg_printer Recorder.Shed (fun i ->
      match List.nth_opt shed_reasons i with
      | Some r -> shed_reason_to_string r
      | None -> string_of_int i)

type limits = {
  max_connections : int;
  max_conn_queue_bytes : int;
  max_total_queue_bytes : int;
  max_request_age_us : float;
}

(* Unified-registry mirrors of the bespoke server ledgers below; every
   bump site updates both (the conservation test relies on it). *)
let m_requests_received = M.counter M.default "rpc.requests_received"
let m_bad_requests = M.counter M.default "rpc.bad_requests"
let m_dedup_hits = M.counter M.default "rpc.server.dedup_hits"
let m_executions = M.counter M.default "rpc.server.executions"
let m_probes = M.counter M.default "rpc.server.probes"
let m_replies_sent = M.counter M.default "rpc.replies_sent"
let m_replies_abandoned = M.counter M.default "rpc.replies_abandoned"
let m_statuses_abandoned = M.counter M.default "rpc.statuses_abandoned"
let g_connections = M.gauge M.default "rpc.connections"
let g_queued_bytes = M.gauge M.default "rpc.queued_bytes"

let m_sheds =
  Array.of_list
    (List.map
       (fun r -> M.counter M.default ("rpc.shed." ^ shed_reason_to_string r))
       shed_reasons)

let default_limits =
  { max_connections = 64;
    max_conn_queue_bytes = 256 * 1024;
    max_total_queue_bytes = 1024 * 1024;
    max_request_age_us = 60_000_000.0 }

type conn = {
  id : int;
  ctrl : Socket.t;
  data : Socket.t;
  queue : item Queue.t;
  admitted : bool;
  mutable queued_bytes : int;
  mutable draining : bool;
  mutable drain_timer : Simclock.timer option;
  mutable dead : bool;
  mutable framed : bool;
      (* the client negotiated v2 framed streams (a flagged control
         message carried [Messages.flag_rx_framing]); every reply TSDU
         on this connection gets a [Framing] prelude *)
}

(* The state a node crash does NOT erase: the served files (they live on
   disk) and the at-most-once dedup cache with its conservation ledger.
   A restarted server instance is built over the same store, so a replay
   of an already-executed idempotency id is answered from the cache
   instead of re-executed.  The cache is bounded: FIFO eviction at
   [dedup_cap] ids. *)
type store = {
  s_files : (string, file) Hashtbl.t;
  dedup_cap : int;
  dedup : (int, Messages.status) Hashtbl.t;
  dedup_order : int Queue.t;
  mutable dedup_hits : int;
  mutable executions : int;
  mutable id_requests_seen : int;  (* id-carrying requests decoded *)
  mutable dedup_sheds : int;  (* id-carrying requests shed, not cached *)
}

let create_store ?(dedup_cap = 1024) () =
  if dedup_cap < 1 then invalid_arg "Server.create_store: dedup_cap must be >= 1";
  { s_files = Hashtbl.create 4;
    dedup_cap;
    dedup = Hashtbl.create 64;
    dedup_order = Queue.create ();
    dedup_hits = 0;
    executions = 0;
    id_requests_seen = 0;
    dedup_sheds = 0 }

(* Cache the terminal status of an executed request.  Sheds (Busy) and
   rejections are never cached: they are re-derivable and a retry with
   the same id must be free to succeed. *)
let store_cache_put st ~req_id status =
  if not (Hashtbl.mem st.dedup req_id) then begin
    if Queue.length st.dedup_order >= st.dedup_cap then begin
      let evicted = Queue.pop st.dedup_order in
      Hashtbl.remove st.dedup evicted
    end;
    Hashtbl.replace st.dedup req_id status;
    Queue.add req_id st.dedup_order
  end

type t = {
  clock : Simclock.t;
  engine : Engine.t;
  retry_us : float;
  limits : limits;
  owner : int;  (* Simclock owner tag on every drain timer *)
  store : store;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn_id : int;
  mutable next_req_id : int;
  mutable live_connections : int;
  mutable total_queued_bytes : int;
  mutable peak_queued_bytes : int;
  shed_ledger : int array;
  mutable replies_sent : int;
  mutable replies_abandoned : int;
  mutable statuses_abandoned : int;
  mutable requests_received : int;
  mutable bad_requests : int;
  mutable probes_received : int;
  mutable probe_before : unit -> unit;
  mutable probe_after : wire_len:int -> elapsed_us:float -> syscopy_us:float -> unit;
}

let machine t = (Engine.sim t.engine).Ilp_memsim.Sim.machine

let count_shed t reason =
  t.shed_ledger.(shed_reason_index reason) <-
    t.shed_ledger.(shed_reason_index reason) + 1;
  M.inc m_sheds.(shed_reason_index reason) 1;
  (* Sheds can precede admission, so there may be no connection yet;
     conn 0 stands for "the server itself". *)
  Recorder.note Recorder.Shed ~conn:0 ~arg:(shed_reason_index reason)
    ~ts:(Machine.micros (machine t));
  if Trace.enabled () then
    Trace.instant ~arg:(shed_reason_index reason) Trace.Rpc_shed
      ~packet:(Trace.current_packet ())
      ~ts:(Machine.micros (machine t))

let charge_queue t conn bytes =
  conn.queued_bytes <- conn.queued_bytes + bytes;
  t.total_queued_bytes <- t.total_queued_bytes + bytes;
  M.set g_queued_bytes t.total_queued_bytes;
  if t.total_queued_bytes > t.peak_queued_bytes then
    t.peak_queued_bytes <- t.total_queued_bytes

let release_queue t conn bytes =
  conn.queued_bytes <- conn.queued_bytes - bytes;
  t.total_queued_bytes <- t.total_queued_bytes - bytes;
  M.set g_queued_bytes t.total_queued_bytes

let item_bytes = function Data { seg; _ } -> seg.seg_len | Status _ -> 0

(* A connection whose sockets died (abort or close) will never accept its
   queued replies: abandon them, free the admission slot, and stop the
   drain loop instead of rescheduling forever. *)
let mark_dead t conn =
  if not conn.dead then begin
    conn.dead <- true;
    Option.iter Simclock.cancel conn.drain_timer;
    conn.drain_timer <- None;
    if conn.admitted then begin
      t.live_connections <- t.live_connections - 1;
      M.set g_connections t.live_connections
    end;
    let abandoned = Queue.length conn.queue in
    Queue.iter
      (fun item ->
        release_queue t conn (item_bytes item);
        match item with
        | Data _ ->
            t.replies_abandoned <- t.replies_abandoned + 1;
            M.inc m_replies_abandoned 1
        | Status _ ->
            t.statuses_abandoned <- t.statuses_abandoned + 1;
            M.inc m_statuses_abandoned 1)
      conn.queue;
    Queue.clear conn.queue;
    conn.draining <- false;
    if abandoned > 0 then
      Recorder.note Recorder.Abandon ~conn:(Socket.local_port conn.ctrl)
        ~arg:abandoned ~ts:(Machine.micros (machine t));
    if Trace.enabled () && abandoned > 0 then
      Trace.instant ~arg:abandoned Trace.Rpc_abandon
        ~packet:(Trace.current_packet ())
        ~ts:(Machine.micros (machine t))
  end

let send_reply t conn hdr ~payload_addr =
  let body = Messages.reply_segments hdr ~payload_addr in
  let ps = Engine.prepare_stream_segments t.engine body in
  let wire_len = ps.Engine.stream_len in
  (* Framed connections put [seg_unit] prelude bytes on the wire ahead
     of the TSDU; the throughput probe sees what actually went out. *)
  let sent_len =
    if conn.framed then ps.Engine.seg_unit + wire_len else wire_len
  in
  t.probe_before ();
  let before = Machine.micros (machine t) in
  ignore (Socket.take_syscopy_send_us conn.data);
  let sent =
    if conn.framed then begin
      (* A framing-negotiated connection: every reply TSDU — even one
         that would fit a single segment — goes out as a framed stream,
         because the peer's receive path parses a prelude at the start
         of each TSDU. *)
      let total, fill =
        Framing.framed_stream ~seg_unit:ps.Engine.seg_unit
          ~stream_len:wire_len
          ~checksummed:(Engine.mode t.engine = Engine.Ilp)
          ~fill_range:ps.Engine.fill_range
      in
      Socket.send_stream conn.data ~seg_unit:ps.Engine.seg_unit ~len:total
        ~fill
    end
    else
      (* Replies that fit one segment take the legacy single-TPDU path
         (byte- and charge-identical to a whole-message prepare); a reply
         larger than the connection's MSS streams as a pipelined TSDU of
         MSS-sized segments instead of being dropped. *)
      match
        Socket.send_message conn.data ~len:wire_len ~fill:(fun mem ~dst ->
            ps.Engine.fill_range mem ~dst ~off:0 ~len:wire_len)
      with
      | Error Socket.Message_too_big ->
          Socket.send_stream conn.data ~seg_unit:ps.Engine.seg_unit
            ~len:wire_len ~fill:ps.Engine.fill_range
      | r -> r
  in
  match sent with
  | Ok () ->
      let elapsed_us = Machine.micros (machine t) -. before in
      let syscopy_us = Socket.take_syscopy_send_us conn.data in
      t.replies_sent <- t.replies_sent + 1;
      M.inc m_replies_sent 1;
      t.probe_after ~wire_len:sent_len ~elapsed_us ~syscopy_us;
      `Sent
  | Error (Socket.Buffer_full | Socket.Window_full | Socket.Not_established) ->
      `Backpressure
  | Error Socket.Message_too_big ->
      (* Still too big for the stream path (exceeds the engine's
         [max_message]): drop the reply rather than loop forever. *)
      `Drop

let send_segment t conn seg =
  send_reply t conn
    { Messages.status = Messages.Ok;
      copy = seg.copy;
      file_offset = seg.offset;
      total_len = seg.file.len;
      data_len = seg.seg_len }
    ~payload_addr:(seg.file.addr + seg.offset)

let status_hdr ?(copy = 0) ?(file_offset = 0) ?(total_len = 0) status =
  { Messages.status; copy; file_offset; total_len; data_len = 0 }

let send_status t conn hdr = send_reply t conn hdr ~payload_addr:0

(* Drop every remaining data segment of [req_id] from the queue (it is
   being shed as a whole) and answer with one Busy instead. *)
let shed_request t conn ~req_id =
  let keep = Queue.create () in
  Queue.iter
    (fun item ->
      match item with
      | Data d when d.req_id = req_id -> release_queue t conn d.seg.seg_len
      | _ -> Queue.add item keep)
    conn.queue;
  Queue.clear conn.queue;
  Queue.transfer keep conn.queue;
  Queue.add (Status (status_hdr Messages.Busy)) conn.queue

let rec drain t conn =
  conn.drain_timer <- None;
  if Socket.failure conn.data <> None || Socket.state conn.data = Socket.Closed
  then mark_dead t conn
  else
    match Queue.peek_opt conn.queue with
    | None -> conn.draining <- false
    | Some (Status hdr) -> (
        match send_status t conn hdr with
        | `Sent | `Drop ->
            ignore (Queue.pop conn.queue);
            drain t conn
        | `Backpressure -> reschedule t conn)
    | Some (Data { seg; req_id; enqueued_at }) ->
        if
          Simclock.now t.clock -. enqueued_at > t.limits.max_request_age_us
        then begin
          count_shed t Request_too_old;
          shed_request t conn ~req_id;
          drain t conn
        end
        else (
          match send_segment t conn seg with
          | `Sent | `Drop ->
              ignore (Queue.pop conn.queue);
              release_queue t conn seg.seg_len;
              drain t conn
          | `Backpressure -> reschedule t conn)

and reschedule t conn =
  conn.draining <- true;
  conn.drain_timer <-
    Some
      (Simclock.schedule t.clock ~owner:t.owner ~after:t.retry_us (fun () ->
           drain t conn))

let kick t conn = if not conn.draining then drain t conn

let enqueue_hdr t conn hdr =
  if not conn.dead then begin
    Queue.add (Status hdr) conn.queue;
    kick t conn
  end

let enqueue_status t conn status = enqueue_hdr t conn (status_hdr status)

(* Pure CRC32 over the stored file's prefix — the server's side of the
   client's resume handshake.  Uncharged: the probe models a disk/page
   cache read, not a data manipulation on the measured path. *)
let file_prefix_crc t file ~len =
  let mem = (Engine.sim t.engine).Ilp_memsim.Sim.mem in
  let raw = Ilp_memsim.Mem.raw mem in
  Ilp_checksum.Crc32.finish
    (Ilp_checksum.Crc32.fold_bytes ~crc:Ilp_checksum.Crc32.init raw
       ~off:file.addr ~len)

let handle_probe t conn p =
  t.probes_received <- t.probes_received + 1;
  M.inc m_probes 1;
  match Hashtbl.find_opt t.store.s_files p.Messages.p_file_name with
  | None -> enqueue_status t conn Messages.Not_found
  | Some file ->
      let hdr st =
        status_hdr ~file_offset:p.Messages.p_offset ~total_len:file.len st
      in
      if p.Messages.p_offset < 0 || p.Messages.p_offset > file.len then begin
        t.bad_requests <- t.bad_requests + 1;
        M.inc m_bad_requests 1;
        enqueue_hdr t conn (hdr Messages.Refused)
      end
      else if file_prefix_crc t file ~len:p.Messages.p_offset = p.Messages.p_crc
      then enqueue_hdr t conn (hdr Messages.Ok)
      else enqueue_hdr t conn (hdr Messages.Refused)

let handle_req t conn req =
  let idd = req.Messages.req_id <> 0 in
  if idd then t.store.id_requests_seen <- t.store.id_requests_seen + 1;
  (* An id-carrying request that is shed or rejected is NOT cached (a
     retry with the same id must be free to succeed), but it is counted,
     so the conservation law [executions + dedup_hits + dedup_sheds =
     id_requests_seen] holds at every instant. *)
  let shed_idd () = if idd then t.store.dedup_sheds <- t.store.dedup_sheds + 1 in
  match
    if idd then Hashtbl.find_opt t.store.dedup req.Messages.req_id else None
  with
  | Some cached ->
      (* At-most-once replay: answer from the cache with a data-less
         status; the work is not re-executed. *)
      t.store.dedup_hits <- t.store.dedup_hits + 1;
      M.inc m_dedup_hits 1;
      enqueue_status t conn cached
  | None ->
      if not conn.admitted then begin
        count_shed t Too_many_connections;
        shed_idd ();
        enqueue_status t conn Messages.Busy
      end
      else (
        match Hashtbl.find_opt t.store.s_files req.Messages.file_name with
        | None ->
            shed_idd ();
            enqueue_status t conn Messages.Not_found
        | Some file ->
            let start_copy = req.Messages.start_copy in
            let start_offset = req.Messages.start_offset in
            if
              start_copy < 0 || start_offset < 0 || start_offset > file.len
              || (start_copy > 0 && start_copy >= req.Messages.copies)
            then begin
              (* A resume point outside the file is a malformed request,
                 not a load shed. *)
              t.bad_requests <- t.bad_requests + 1;
              M.inc m_bad_requests 1;
              shed_idd ();
              enqueue_status t conn Messages.Refused
            end
            else
              let request_bytes =
                (req.Messages.copies - start_copy) * file.len - start_offset
              in
              if request_bytes > t.limits.max_conn_queue_bytes then begin
                (* Could never fit: permanent refusal, not a retryable shed. *)
                count_shed t Oversized_request;
                shed_idd ();
                enqueue_status t conn Messages.Refused
              end
              else if
                conn.queued_bytes + request_bytes > t.limits.max_conn_queue_bytes
              then begin
                count_shed t Conn_queue_full;
                shed_idd ();
                enqueue_status t conn Messages.Busy
              end
              else if
                t.total_queued_bytes + request_bytes
                > t.limits.max_total_queue_bytes
              then begin
                count_shed t Server_queue_full;
                shed_idd ();
                enqueue_status t conn Messages.Busy
              end
              else begin
                if idd then begin
                  t.store.executions <- t.store.executions + 1;
                  M.inc m_executions 1;
                  store_cache_put t.store ~req_id:req.Messages.req_id Messages.Ok
                end;
                if request_bytes <= 0 then
                  (* Nothing left to send (resume point at EOF): still
                     answer, so the client is never left waiting. *)
                  enqueue_hdr t conn
                    (status_hdr ~copy:start_copy ~file_offset:start_offset
                       ~total_len:file.len Messages.Ok)
                else begin
                  let req_id = t.next_req_id in
                  t.next_req_id <- t.next_req_id + 1;
                  let enqueued_at = Simclock.now t.clock in
                  let max_reply = max 16 req.Messages.max_reply in
                  for copy = start_copy to req.Messages.copies - 1 do
                    let offset =
                      ref (if copy = start_copy then start_offset else 0)
                    in
                    while !offset < file.len do
                      let seg_len = min max_reply (file.len - !offset) in
                      Queue.add
                        (Data
                           { seg = { copy; offset = !offset; seg_len; file };
                             req_id;
                             enqueued_at })
                        conn.queue;
                      charge_queue t conn seg_len;
                      offset := !offset + seg_len
                    done
                  done;
                  kick t conn
                end
              end)

let handle_request t conn ~len =
  t.requests_received <- t.requests_received + 1;
  M.inc m_requests_received 1;
  match
    let length_at_end = Engine.header_style t.engine = Engine.Trailer in
    let crc_trailer = Engine.crc32 t.engine in
    match Engine.data_path t.engine with
    | Engine.Legacy ->
        Result.bind (Engine.read_plaintext t.engine ~len)
          (Messages.decode_ctrl ~length_at_end ~crc_trailer)
    | Engine.Pooled ->
        (* Single-copy: decode the request in place from a pooled TSDU
           buffer, released as soon as the decode finishes (the request's
           fields are scalars plus the short file name). *)
        Result.bind (Engine.read_plaintext_pooled t.engine ~len)
          (fun (buf, plen) ->
            let r =
              Messages.decode_ctrl_bytes ~length_at_end ~crc_trailer buf
                ~len:plen
            in
            Engine.release_plaintext t.engine buf;
            r)
  with
  | Error _ ->
      t.bad_requests <- t.bad_requests + 1;
      M.inc m_bad_requests 1;
      enqueue_status t conn Messages.Not_found
  | Ok (c, flags) ->
      (* A flagged control message negotiates capabilities for the whole
         connection — before any reply is built, so even this message's
         own reply honours them.  A reconnecting client's first message
         may be a probe, hence probes carry the flag word too. *)
      if flags land Messages.flag_rx_framing <> 0 then conn.framed <- true;
      (match c with
      | Messages.Probe p -> handle_probe t conn p
      | Messages.Request req -> handle_req t conn req)

let create ~clock ~engine ?(retry_us = 150.0) ?(limits = default_limits)
    ?(store = create_store ()) () =
  { clock;
    engine;
    retry_us;
    limits;
    owner = Simclock.fresh_owner clock;
    store;
    conns = Hashtbl.create 8;
    next_conn_id = 0;
    next_req_id = 0;
    live_connections = 0;
    total_queued_bytes = 0;
    peak_queued_bytes = 0;
    shed_ledger = Array.make (List.length shed_reasons) 0;
    replies_sent = 0;
    replies_abandoned = 0;
    statuses_abandoned = 0;
    requests_received = 0;
    bad_requests = 0;
    probes_received = 0;
    probe_before = (fun () -> ());
    probe_after = (fun ~wire_len:_ ~elapsed_us:_ ~syscopy_us:_ -> ()) }

let attach t ~ctrl ~data =
  let id = t.next_conn_id in
  t.next_conn_id <- id + 1;
  let admitted = t.live_connections < t.limits.max_connections in
  let conn =
    { id; ctrl; data; queue = Queue.create (); admitted;
      queued_bytes = 0; draining = false; drain_timer = None; dead = false;
      framed = false }
  in
  if admitted then begin
    t.live_connections <- t.live_connections + 1;
    M.set g_connections t.live_connections
  end;
  Hashtbl.replace t.conns id conn;
  (* Requests arrive through the same manipulation stack as any message. *)
  (match Engine.rx_style t.engine with
  | Engine.Rx_integrated_style f -> Socket.set_rx_processing ctrl (Socket.Rx_integrated f)
  | Engine.Rx_deferred_style f -> Socket.set_rx_processing ctrl (Socket.Rx_separate f));
  Socket.set_on_message ctrl (fun ~src:_ ~len -> handle_request t conn ~len);
  (* Either socket dying ends the connection: abandon its queue and free
     the admission slot so a waiting client can be served. *)
  Socket.set_on_abort ctrl (fun _ -> mark_dead t conn);
  Socket.set_on_abort data (fun _ -> mark_dead t conn);
  id

let detach t ~id =
  match Hashtbl.find_opt t.conns id with
  | None -> ()
  | Some conn ->
      mark_dead t conn;
      Hashtbl.remove t.conns id

let add_file t ~name ~addr ~len =
  Hashtbl.replace t.store.s_files name { addr; len }

(* Node crash: every connection dies with the process — queues abandoned,
   drain timers cancelled.  The [store] survives; a new instance built
   over it (Rpc_server.create ~store) is the restarted server. *)
let shutdown t =
  Hashtbl.iter (fun _ conn -> mark_dead t conn) t.conns;
  Hashtbl.reset t.conns

let pending_replies t =
  Hashtbl.fold (fun _ conn acc -> acc + Queue.length conn.queue) t.conns 0

let connections t = t.live_connections
let queued_bytes t = t.total_queued_bytes
let peak_queued_bytes t = t.peak_queued_bytes
let replies_sent t = t.replies_sent
let replies_abandoned t = t.replies_abandoned
let statuses_abandoned t = t.statuses_abandoned
let requests_received t = t.requests_received
let bad_requests t = t.bad_requests
let probes_received t = t.probes_received
let timer_owner t = t.owner
let store t = t.store
let dedup_hits st = st.dedup_hits
let executions st = st.executions
let id_requests_seen st = st.id_requests_seen
let dedup_sheds st = st.dedup_sheds
let dedup_cached st = Hashtbl.length st.dedup
let shed_count t reason = t.shed_ledger.(shed_reason_index reason)
let sheds t = List.map (fun r -> (r, shed_count t r)) shed_reasons
let sheds_total t = Array.fold_left ( + ) 0 t.shed_ledger

let set_reply_probe t ~before ~after =
  t.probe_before <- before;
  t.probe_after <- after
