module Simclock = Ilp_netsim.Simclock
module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine
module Machine = Ilp_memsim.Machine

type file = { addr : int; len : int }

type segment = { copy : int; offset : int; seg_len : int; file : file }

type t = {
  clock : Simclock.t;
  engine : Engine.t;
  ctrl : Socket.t;
  data : Socket.t;
  retry_us : float;
  files : (string, file) Hashtbl.t;
  queue : segment Queue.t;
  mutable draining : bool;
  mutable replies_sent : int;
  mutable replies_abandoned : int;
  mutable requests_received : int;
  mutable bad_requests : int;
  mutable probe_before : unit -> unit;
  mutable probe_after : wire_len:int -> elapsed_us:float -> syscopy_us:float -> unit;
}

let machine t = (Engine.sim t.engine).Ilp_memsim.Sim.machine

let send_segment t seg =
  (* The ILP-extended stub lays the reply out: generated header fields,
     the file bytes left in place for the integrated loop. *)
  let body =
    Messages.reply_segments
      { Messages.status = Messages.Ok;
        copy = seg.copy;
        file_offset = seg.offset;
        total_len = seg.file.len;
        data_len = seg.seg_len }
      ~payload_addr:(seg.file.addr + seg.offset)
  in
  let prepared = Engine.prepare_send_segments t.engine body in
  t.probe_before ();
  let before = Machine.micros (machine t) in
  ignore (Socket.take_syscopy_send_us t.data);
  match Socket.send_message t.data ~len:prepared.Engine.len ~fill:prepared.Engine.fill with
  | Ok () ->
      let elapsed_us = Machine.micros (machine t) -. before in
      let syscopy_us = Socket.take_syscopy_send_us t.data in
      t.replies_sent <- t.replies_sent + 1;
      t.probe_after ~wire_len:prepared.Engine.len ~elapsed_us ~syscopy_us;
      `Sent
  | Error (Socket.Buffer_full | Socket.Window_full | Socket.Not_established) ->
      `Backpressure
  | Error Socket.Message_too_big ->
      (* Configuration error: drop the segment rather than loop forever. *)
      `Drop

let rec drain t =
  (* A dead data connection (aborted by retry exhaustion, or closed) will
     never accept these replies: abandon the queue instead of rescheduling
     forever, which would livelock the simulation. *)
  if Socket.failure t.data <> None || Socket.state t.data = Socket.Closed then begin
    t.replies_abandoned <- t.replies_abandoned + Queue.length t.queue;
    Queue.clear t.queue;
    t.draining <- false
  end
  else
    match Queue.peek_opt t.queue with
    | None -> t.draining <- false
    | Some seg -> (
        match send_segment t seg with
        | `Sent | `Drop ->
            ignore (Queue.pop t.queue);
            drain t
        | `Backpressure ->
            t.draining <- true;
            ignore (Simclock.schedule t.clock ~after:t.retry_us (fun () -> drain t)))

let send_error_reply t =
  (* A single Not_found reply with no data. *)
  let body =
    Messages.reply_segments
      { Messages.status = Messages.Not_found;
        copy = 0;
        file_offset = 0;
        total_len = 0;
        data_len = 0 }
      ~payload_addr:0
  in
  let prepared = Engine.prepare_send_segments t.engine body in
  ignore (Socket.send_message t.data ~len:prepared.Engine.len ~fill:prepared.Engine.fill)

let handle_request t ~len =
  t.requests_received <- t.requests_received + 1;
  match
    let length_at_end = Engine.header_style t.engine = Engine.Trailer in
    Result.bind (Engine.read_plaintext t.engine ~len)
      (Messages.decode_request ~length_at_end)
  with
  | Error _ ->
      t.bad_requests <- t.bad_requests + 1;
      send_error_reply t
  | Ok req -> (
      match Hashtbl.find_opt t.files req.Messages.file_name with
      | None -> send_error_reply t
      | Some file ->
          let max_reply = max 16 req.Messages.max_reply in
          for copy = 0 to req.Messages.copies - 1 do
            let offset = ref 0 in
            while !offset < file.len do
              let seg_len = min max_reply (file.len - !offset) in
              Queue.add { copy; offset = !offset; seg_len; file } t.queue;
              offset := !offset + seg_len
            done
          done;
          if not t.draining then drain t)

let create ~clock ~engine ~ctrl ~data ?(retry_us = 150.0) () =
  let t =
    { clock;
      engine;
      ctrl;
      data;
      retry_us;
      files = Hashtbl.create 4;
      queue = Queue.create ();
      draining = false;
      replies_sent = 0;
      replies_abandoned = 0;
      requests_received = 0;
      bad_requests = 0;
      probe_before = (fun () -> ());
      probe_after = (fun ~wire_len:_ ~elapsed_us:_ ~syscopy_us:_ -> ()) }
  in
  (* Requests arrive through the same manipulation stack as any message. *)
  (match Engine.rx_style engine with
  | Engine.Rx_integrated_style f -> Socket.set_rx_processing ctrl (Socket.Rx_integrated f)
  | Engine.Rx_deferred_style f -> Socket.set_rx_processing ctrl (Socket.Rx_separate f));
  Socket.set_on_message ctrl (fun ~src:_ ~len -> handle_request t ~len);
  t

let add_file t ~name ~addr ~len = Hashtbl.replace t.files name { addr; len }
let pending_replies t = Queue.length t.queue
let replies_sent t = t.replies_sent
let replies_abandoned t = t.replies_abandoned
let requests_received t = t.requests_received
let bad_requests t = t.bad_requests
let set_reply_probe t ~before ~after =
  t.probe_before <- before;
  t.probe_after <- after
