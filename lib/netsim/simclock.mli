(** Virtual time and timers for the simulated network.

    Time is measured in microseconds as a float.  Events fire in timestamp
    order (FIFO among equal timestamps).  The clock only moves when
    {!advance} or {!run_until_idle} is called, so protocol tests are fully
    deterministic. *)

type t

(** Raised by {!run_until_idle} when the event budget is exhausted without
    the clock going idle — almost always a timer-rescheduling loop in the
    code under test.  The payload is the budget that was exceeded. *)
exception Livelock of int

(** [create ?event_budget ()] makes a clock.  [event_budget] (default
    1_000_000, must be positive) is the default livelock guard for
    {!run_until_idle}; raise it for long soak runs. *)
val create : ?event_budget:int -> unit -> t

(** Current virtual time in microseconds. *)
val now : t -> float

type timer

(** The owner tag carried by events scheduled without an explicit [?owner]
    (its value is [0]).  Infrastructure events (link deliveries, test
    driders) normally stay anonymous; stateful components that must prove
    they cancelled everything on teardown tag their timers with a fresh
    owner id. *)
val anonymous : int

(** Allocate a fresh, never-reused owner id (always positive) for tagging
    scheduled events.  Used by components (e.g. a TCP socket) so tests can
    assert [pending_count t ~owner = 0] after teardown. *)
val fresh_owner : t -> int

(** [schedule t ?owner ~after f] runs [f] once, [after] microseconds from
    now (clamped to now for negative values).  [owner] (default
    {!anonymous}) tags the event for {!pending_count} audits. *)
val schedule : t -> ?owner:int -> after:float -> (unit -> unit) -> timer

val cancel : timer -> unit
val is_pending : timer -> bool

(** [advance t dt] moves time forward by [dt] microseconds, firing every
    event that falls due (including events scheduled by fired events within
    the window). *)
val advance : t -> float -> unit

(** [run_until_idle ?max_events t] keeps jumping to the next pending event
    until none remain.  Raises {!Livelock} after [max_events] (default: the
    clock's [event_budget]) firings. *)
val run_until_idle : ?max_events:int -> t -> unit

(** Number of pending (uncancelled, unfired) events. *)
val pending : t -> int

(** [pending_count t ~owner] counts pending events tagged with [owner].
    After a component with owner id [o] is destroyed,
    [pending_count t ~owner:o] must be [0] or the component leaked a timer
    (a ghost firing waiting to happen). *)
val pending_count : t -> owner:int -> int
