(** Virtual time and timers for the simulated network.

    Time is measured in microseconds as a float.  Events fire in timestamp
    order (FIFO among equal timestamps).  The clock only moves when
    {!advance} or {!run_until_idle} is called, so protocol tests are fully
    deterministic. *)

type t

(** Raised by {!run_until_idle} when the event budget is exhausted without
    the clock going idle — almost always a timer-rescheduling loop in the
    code under test.  The payload is the budget that was exceeded. *)
exception Livelock of int

(** [create ?event_budget ()] makes a clock.  [event_budget] (default
    1_000_000, must be positive) is the default livelock guard for
    {!run_until_idle}; raise it for long soak runs. *)
val create : ?event_budget:int -> unit -> t

(** Current virtual time in microseconds. *)
val now : t -> float

type timer

(** [schedule t ~after f] runs [f] once, [after] microseconds from now
    (clamped to now for negative values). *)
val schedule : t -> after:float -> (unit -> unit) -> timer

val cancel : timer -> unit
val is_pending : timer -> bool

(** [advance t dt] moves time forward by [dt] microseconds, firing every
    event that falls due (including events scheduled by fired events within
    the window). *)
val advance : t -> float -> unit

(** [run_until_idle ?max_events t] keeps jumping to the next pending event
    until none remain.  Raises {!Livelock} after [max_events] (default: the
    clock's [event_budget]) firings. *)
val run_until_idle : ?max_events:int -> t -> unit

(** Number of pending (uncancelled, unfired) events. *)
val pending : t -> int
