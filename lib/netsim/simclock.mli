(** Virtual time and timers for the simulated network.

    Time is measured in microseconds as a float.  Events fire in timestamp
    order (FIFO among equal timestamps).  The clock only moves when
    {!advance} or {!run_until_idle} is called, so protocol tests are fully
    deterministic. *)

type t

val create : unit -> t

(** Current virtual time in microseconds. *)
val now : t -> float

type timer

(** [schedule t ~after f] runs [f] once, [after] microseconds from now
    (clamped to now for negative values). *)
val schedule : t -> after:float -> (unit -> unit) -> timer

val cancel : timer -> unit
val is_pending : timer -> bool

(** [advance t dt] moves time forward by [dt] microseconds, firing every
    event that falls due (including events scheduled by fired events within
    the window). *)
val advance : t -> float -> unit

(** [run_until_idle ?max_events t] keeps jumping to the next pending event
    until none remain.  Raises [Failure] after [max_events] (default
    1_000_000) firings — a livelock guard for tests. *)
val run_until_idle : ?max_events:int -> t -> unit

(** Number of pending (uncancelled, unfired) events. *)
val pending : t -> int
