(** The kernel-part datagram service.

    The paper's user-level TCP rides on a kernel component with "similar
    functionality as UDP without checksum": it carries TCP segments between
    user processes and demultiplexes arriving packets to the right
    connection.  A datagram is a source/destination port pair and the wire
    bytes of a whole TPDU. *)

type t = { src_port : int; dst_port : int; payload : string }

val create : src_port:int -> dst_port:int -> payload:string -> t

(** Payload length in bytes. *)
val length : t -> int

val pp : Format.formatter -> t -> unit
