(** Kernel-side port demultiplexing.

    "On the receiving side, the kernel part demultiplexes IP packets to the
    corresponding user-level TCP connection, i.e. to the corresponding
    application."  Packets for unbound ports are counted and dropped. *)

type t

val create : unit -> t

(** [bind t ~port handler] routes datagrams addressed to [port] to
    [handler].  Raises [Invalid_argument] if the port is taken. *)
val bind : t -> port:int -> (Datagram.t -> unit) -> unit

val unbind : t -> port:int -> unit

(** [deliver t dgram] routes by destination port. *)
val deliver : t -> Datagram.t -> unit

(** [alloc_port t] returns an unused ephemeral port (>= 32768). *)
val alloc_port : t -> int

(** Datagrams dropped for lack of a bound port. *)
val unroutable : t -> int
