(* A small deterministic splitmix64-style generator so that impairment
   patterns are reproducible across runs and platforms. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int (seed lxor 0x9e3779b9) }

  let next t =
    t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* Uniform float in [0, 1). *)
  let float t =
    let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
    float_of_int bits /. 9007199254740992.0
end

type t = {
  clock : Simclock.t;
  delay_us : float;
  jitter_us : float;
  loss_rate : float;
  dup_rate : float;
  prng : Prng.t;
  deliver : Datagram.t -> unit;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
}

let create clock ?(delay_us = 50.0) ?(jitter_us = 0.0) ?(loss_rate = 0.0)
    ?(dup_rate = 0.0) ?(seed = 42) ~deliver () =
  if loss_rate < 0.0 || loss_rate > 1.0 then invalid_arg "Link.create: loss_rate";
  if dup_rate < 0.0 || dup_rate > 1.0 then invalid_arg "Link.create: dup_rate";
  { clock; delay_us; jitter_us; loss_rate; dup_rate;
    prng = Prng.create seed; deliver;
    sent = 0; delivered = 0; dropped = 0; duplicated = 0 }

let enqueue t dgram =
  let extra = if t.jitter_us > 0.0 then Prng.float t.prng *. t.jitter_us else 0.0 in
  ignore
    (Simclock.schedule t.clock ~after:(t.delay_us +. extra) (fun () ->
         t.delivered <- t.delivered + 1;
         t.deliver dgram))

let send t dgram =
  t.sent <- t.sent + 1;
  if t.loss_rate > 0.0 && Prng.float t.prng < t.loss_rate then
    t.dropped <- t.dropped + 1
  else begin
    enqueue t dgram;
    if t.dup_rate > 0.0 && Prng.float t.prng < t.dup_rate then begin
      t.duplicated <- t.duplicated + 1;
      enqueue t dgram
    end
  end

let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let duplicated t = t.duplicated
