(* A small deterministic splitmix64-style generator so that impairment
   patterns are reproducible across runs and platforms. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int (seed lxor 0x9e3779b9) }

  let next t =
    t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* Uniform float in [0, 1). *)
  let float t =
    let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
    float_of_int bits /. 9007199254740992.0

  (* Uniform int in [0, bound). *)
  let int t bound = int_of_float (float t *. float_of_int bound)
end

(* Unified-registry mirrors of the per-link [n_*] fields below: every
   bump site updates both, so process-wide totals in [Metrics] always
   equal the sum of per-link [stats] (the conservation test relies on
   this). *)
module M = Ilp_obs.Metrics

let m_sent = M.counter M.default "link.sent"
let m_delivered = M.counter M.default "link.delivered"
let m_dropped = M.counter M.default "link.dropped"
let m_duplicated = M.counter M.default "link.duplicated"
let m_corrupted = M.counter M.default "link.corrupted"
let m_truncated = M.counter M.default "link.truncated"
let m_padded = M.counter M.default "link.padded"
let m_burst_dropped = M.counter M.default "link.burst_dropped"
let m_delay_spikes = M.counter M.default "link.delay_spikes"
let m_tampered = M.counter M.default "link.tampered"

type gilbert = {
  p_enter_bad : float;  (* per-packet P(good -> bad) *)
  p_exit_bad : float;   (* per-packet P(bad -> good) *)
  loss_in_bad : float;  (* per-packet loss probability while in bad state *)
}

type impairments = {
  delay_us : float;
  jitter_us : float;
  loss_rate : float;
  dup_rate : float;
  corrupt_rate : float;
  corrupt_bits : int;
  truncate_rate : float;
  pad_rate : float;
  pad_max : int;
  delay_spike_rate : float;
  delay_spike_us : float;
  gilbert : gilbert option;
}

let fault_free =
  { delay_us = 50.0; jitter_us = 0.0; loss_rate = 0.0; dup_rate = 0.0;
    corrupt_rate = 0.0; corrupt_bits = 1; truncate_rate = 0.0;
    pad_rate = 0.0; pad_max = 0; delay_spike_rate = 0.0;
    delay_spike_us = 0.0; gilbert = None }

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  corrupted : int;
  truncated : int;
  padded : int;
  burst_dropped : int;
  delay_spikes : int;
  tampered : int;
}

type t = {
  clock : Simclock.t;
  imp : impairments;
  prng : Prng.t;
  deliver : Datagram.t -> unit;
  impair_only : Datagram.t -> bool;
  tamper : (Datagram.t -> Datagram.t list) option;
  mutable in_bad_state : bool;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable n_duplicated : int;
  mutable n_corrupted : int;
  mutable n_truncated : int;
  mutable n_padded : int;
  mutable n_burst_dropped : int;
  mutable n_delay_spikes : int;
  mutable n_tampered : int;
}

let check_rate name r =
  if r < 0.0 || r > 1.0 then invalid_arg ("Link.create: " ^ name)

let validate imp =
  check_rate "loss_rate" imp.loss_rate;
  check_rate "dup_rate" imp.dup_rate;
  check_rate "corrupt_rate" imp.corrupt_rate;
  check_rate "truncate_rate" imp.truncate_rate;
  check_rate "pad_rate" imp.pad_rate;
  check_rate "delay_spike_rate" imp.delay_spike_rate;
  if imp.corrupt_bits < 1 then invalid_arg "Link.create: corrupt_bits";
  if imp.pad_max < 0 then invalid_arg "Link.create: pad_max";
  (match imp.gilbert with
  | None -> ()
  | Some g ->
      check_rate "gilbert.p_enter_bad" g.p_enter_bad;
      check_rate "gilbert.p_exit_bad" g.p_exit_bad;
      check_rate "gilbert.loss_in_bad" g.loss_in_bad)

let create clock ?(delay_us = 50.0) ?(jitter_us = 0.0) ?(loss_rate = 0.0)
    ?(dup_rate = 0.0) ?(seed = 42) ?impairments
    ?(impair_only = fun _ -> true) ?tamper ~deliver () =
  let imp =
    match impairments with
    | Some imp -> imp
    | None -> { fault_free with delay_us; jitter_us; loss_rate; dup_rate }
  in
  validate imp;
  { clock; imp; prng = Prng.create seed; deliver; impair_only; tamper;
    in_bad_state = false;
    n_sent = 0; n_delivered = 0; n_dropped = 0; n_duplicated = 0;
    n_corrupted = 0; n_truncated = 0; n_padded = 0;
    n_burst_dropped = 0; n_delay_spikes = 0; n_tampered = 0 }

(* Flip [bits] randomly chosen bits of the payload.  A one-bit flip is
   always caught by the Internet checksum; multi-bit flips can collide. *)
let corrupt_payload t payload bits =
  let b = Bytes.of_string payload in
  let len = Bytes.length b in
  for _ = 1 to bits do
    let bit = Prng.int t.prng (len * 8) in
    let byte = bit lsr 3 in
    Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (bit land 7))))
  done;
  Bytes.to_string b

(* Mutate the wire bytes according to the impairment draws.  Draw order is
   fixed (corrupt, truncate, pad) so a given seed produces one trace. *)
let mangle t payload =
  let imp = t.imp in
  let payload =
    if imp.corrupt_rate > 0.0 && String.length payload > 0
       && Prng.float t.prng < imp.corrupt_rate then begin
      t.n_corrupted <- t.n_corrupted + 1;
      M.inc m_corrupted 1;
      corrupt_payload t payload imp.corrupt_bits
    end
    else payload
  in
  let payload =
    if imp.truncate_rate > 0.0 && String.length payload > 0
       && Prng.float t.prng < imp.truncate_rate then begin
      t.n_truncated <- t.n_truncated + 1;
      M.inc m_truncated 1;
      String.sub payload 0 (Prng.int t.prng (String.length payload))
    end
    else payload
  in
  if imp.pad_rate > 0.0 && imp.pad_max > 0
     && Prng.float t.prng < imp.pad_rate then begin
    t.n_padded <- t.n_padded + 1;
    M.inc m_padded 1;
    let extra = 1 + Prng.int t.prng imp.pad_max in
    payload ^ String.init extra (fun _ -> Char.chr (Int64.to_int (Prng.next t.prng) land 0xff))
  end
  else payload

(* Two-state Gilbert-Elliott channel: returns true when the burst model
   drops this packet.  State transitions are drawn per packet. *)
let gilbert_drops t =
  match t.imp.gilbert with
  | None -> false
  | Some g ->
      if t.in_bad_state then begin
        if Prng.float t.prng < g.p_exit_bad then t.in_bad_state <- false
      end
      else if Prng.float t.prng < g.p_enter_bad then t.in_bad_state <- true;
      t.in_bad_state && Prng.float t.prng < g.loss_in_bad

let enqueue t dgram =
  let imp = t.imp in
  let extra =
    if imp.jitter_us > 0.0 then Prng.float t.prng *. imp.jitter_us else 0.0
  in
  let extra =
    if imp.delay_spike_rate > 0.0 && Prng.float t.prng < imp.delay_spike_rate
    then begin
      t.n_delay_spikes <- t.n_delay_spikes + 1;
      M.inc m_delay_spikes 1;
      extra +. imp.delay_spike_us
    end
    else extra
  in
  ignore
    (Simclock.schedule t.clock ~after:(imp.delay_us +. extra) (fun () ->
         t.n_delivered <- t.n_delivered + 1;
         M.inc m_delivered 1;
         t.deliver dgram))

(* Run one datagram through the impairment pipeline.  Datagrams outside
   [impair_only]'s scope skip every draw (so a direction filter leaves
   the seeded random stream of the impaired direction untouched) and are
   delivered after the base delay. *)
let send_one t dgram =
  if not (t.impair_only dgram) then
    ignore
      (Simclock.schedule t.clock ~after:t.imp.delay_us (fun () ->
           t.n_delivered <- t.n_delivered + 1;
           M.inc m_delivered 1;
           t.deliver dgram))
  else if t.imp.loss_rate > 0.0 && Prng.float t.prng < t.imp.loss_rate then begin
    t.n_dropped <- t.n_dropped + 1;
    M.inc m_dropped 1
  end
  else if gilbert_drops t then begin
    t.n_dropped <- t.n_dropped + 1;
    t.n_burst_dropped <- t.n_burst_dropped + 1;
    M.inc m_dropped 1;
    M.inc m_burst_dropped 1
  end
  else begin
    let payload = mangle t dgram.Datagram.payload in
    let dgram =
      if payload == dgram.Datagram.payload then dgram
      else { dgram with Datagram.payload }
    in
    enqueue t dgram;
    if t.imp.dup_rate > 0.0 && Prng.float t.prng < t.imp.dup_rate then begin
      t.n_duplicated <- t.n_duplicated + 1;
      M.inc m_duplicated 1;
      enqueue t dgram
    end
  end

let send t dgram =
  t.n_sent <- t.n_sent + 1;
  M.inc m_sent 1;
  match t.tamper with
  | None -> send_one t dgram
  | Some f ->
      (* The tamper hook is a lying peer's NIC, not the wire: it runs
         before any impairment, may rewrite, drop ([]) or inject extra
         datagrams, and each of its outputs then takes the normal
         impairment path.  Only actual rewrites count as tampering. *)
      let out = f dgram in
      (match out with
      | [ d ] when d == dgram -> ()
      | _ ->
          t.n_tampered <- t.n_tampered + 1;
          M.inc m_tampered 1);
      List.iter (send_one t) out

let sent t = t.n_sent
let delivered t = t.n_delivered
let dropped t = t.n_dropped
let duplicated t = t.n_duplicated

let stats t =
  { sent = t.n_sent; delivered = t.n_delivered; dropped = t.n_dropped;
    duplicated = t.n_duplicated; corrupted = t.n_corrupted;
    truncated = t.n_truncated; padded = t.n_padded;
    burst_dropped = t.n_burst_dropped; delay_spikes = t.n_delay_spikes;
    tampered = t.n_tampered }

let add_stats a b =
  { sent = a.sent + b.sent; delivered = a.delivered + b.delivered;
    dropped = a.dropped + b.dropped; duplicated = a.duplicated + b.duplicated;
    corrupted = a.corrupted + b.corrupted; truncated = a.truncated + b.truncated;
    padded = a.padded + b.padded; burst_dropped = a.burst_dropped + b.burst_dropped;
    delay_spikes = a.delay_spikes + b.delay_spikes;
    tampered = a.tampered + b.tampered }

let zero_stats =
  { sent = 0; delivered = 0; dropped = 0; duplicated = 0; corrupted = 0;
    truncated = 0; padded = 0; burst_dropped = 0; delay_spikes = 0;
    tampered = 0 }
