type t = { src_port : int; dst_port : int; payload : string }

let create ~src_port ~dst_port ~payload =
  if src_port < 0 || src_port > 0xffff || dst_port < 0 || dst_port > 0xffff then
    invalid_arg "Datagram.create: port out of range";
  { src_port; dst_port; payload }

let length t = String.length t.payload

let pp ppf t =
  Format.fprintf ppf "%d -> %d (%d bytes)" t.src_port t.dst_port (length t)
