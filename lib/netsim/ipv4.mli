(** Minimal IPv4: the layer the paper's kernel part hands TCP segments to
    ("for sending data, the main task of the kernel part is to pass the
    messages received from the user-level TCP to IP").

    Fixed 20-byte headers (no options), the RFC 1071 header checksum, and
    no fragmentation — the stack keeps one TSDU in one TPDU in one
    datagram, as the ALF design demands; a too-big packet is a send-time
    error, not a fragmentation event. *)

type t = {
  tos : int;
  total_len : int;  (** header + payload, bytes *)
  ident : int;
  ttl : int;
  protocol : int;
  src : int;  (** 32-bit address *)
  dst : int;
}

val header_len : int
(** 20 bytes. *)

val protocol_tcp : int
(** 6 *)

(** The loopback addresses used by the simulated hosts. *)
val loopback : int

val make :
  ?tos:int -> ?ident:int -> ?ttl:int -> ?protocol:int -> src:int -> dst:int ->
  payload_len:int -> unit -> t

(** [encapsulate t payload] is the wire datagram payload: header (with a
    correct checksum) followed by [payload]. *)
val encapsulate : t -> string -> string

(** [decapsulate wire] validates version, header length, total length and
    header checksum, returning the header and the payload. *)
val decapsulate : string -> (t * string, string) result

(** [header_checksum bytes] computes the checksum of a 20-byte header
    string with its checksum field zeroed (exposed for tests). *)
val header_checksum : string -> int
