type t = {
  handlers : (int, Datagram.t -> unit) Hashtbl.t;
  mutable next_ephemeral : int;
  mutable unroutable : int;
}

let create () = { handlers = Hashtbl.create 16; next_ephemeral = 32768; unroutable = 0 }

let bind t ~port handler =
  if Hashtbl.mem t.handlers port then
    invalid_arg (Printf.sprintf "Demux.bind: port %d already bound" port);
  Hashtbl.replace t.handlers port handler

let unbind t ~port = Hashtbl.remove t.handlers port

let deliver t (dgram : Datagram.t) =
  match Hashtbl.find_opt t.handlers dgram.Datagram.dst_port with
  | Some handler -> handler dgram
  | None -> t.unroutable <- t.unroutable + 1

let alloc_port t =
  let rec go () =
    let p = t.next_ephemeral in
    t.next_ephemeral <- (if p >= 65535 then 32768 else p + 1);
    if Hashtbl.mem t.handlers p then go () else p
  in
  go ()

let unroutable t = t.unroutable
