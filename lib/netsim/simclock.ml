module Key = struct
  type t = { at : float; seq : int }

  let compare a b =
    match Float.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c
end

type event = { owner : int; fn : unit -> unit }

module Events = Map.Make (Key)

type t = {
  mutable now : float;
  mutable events : event Events.t;
  mutable next_seq : int;
  mutable next_owner : int;
  event_budget : int;
}

type timer = { clock : t; key : Key.t; mutable live : bool }

exception Livelock of int

let () =
  Printexc.register_printer (function
    | Livelock n ->
        Some (Printf.sprintf "Simclock.Livelock(%d events without going idle)" n)
    | _ -> None)

let create ?(event_budget = 1_000_000) () =
  if event_budget <= 0 then invalid_arg "Simclock.create: event_budget";
  { now = 0.0; events = Events.empty; next_seq = 0; next_owner = 1; event_budget }

let now t = t.now

let anonymous = 0

let fresh_owner t =
  let o = t.next_owner in
  t.next_owner <- t.next_owner + 1;
  o

let schedule t ?(owner = anonymous) ~after f =
  let at = t.now +. Float.max 0.0 after in
  let key = { Key.at; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  t.events <- Events.add key { owner; fn = f } t.events;
  { clock = t; key; live = true }

let cancel timer =
  if timer.live then begin
    timer.live <- false;
    timer.clock.events <- Events.remove timer.key timer.clock.events
  end

let is_pending timer = timer.live && Events.mem timer.key timer.clock.events

let fire_next t =
  match Events.min_binding_opt t.events with
  | None -> false
  | Some (key, ev) ->
      t.events <- Events.remove key t.events;
      t.now <- Float.max t.now key.Key.at;
      ev.fn ();
      true

let advance t dt =
  if dt < 0.0 then invalid_arg "Simclock.advance: negative step";
  let horizon = t.now +. dt in
  let rec loop () =
    match Events.min_binding_opt t.events with
    | Some (key, ev) when key.Key.at <= horizon ->
        t.events <- Events.remove key t.events;
        t.now <- Float.max t.now key.Key.at;
        ev.fn ();
        loop ()
    | Some _ | None -> t.now <- horizon
  in
  loop ()

let run_until_idle ?max_events t =
  let budget =
    match max_events with Some n -> n | None -> t.event_budget
  in
  let fired = ref 0 in
  while fire_next t do
    incr fired;
    if !fired > budget then raise (Livelock budget)
  done

let pending t = Events.cardinal t.events

let pending_count t ~owner =
  Events.fold (fun _ ev n -> if ev.owner = owner then n + 1 else n) t.events 0
