type t = {
  tos : int;
  total_len : int;
  ident : int;
  ttl : int;
  protocol : int;
  src : int;
  dst : int;
}

let header_len = 20
let protocol_tcp = 6
let loopback = 0x7f_00_00_01

let make ?(tos = 0) ?(ident = 0) ?(ttl = 64) ?(protocol = protocol_tcp) ~src ~dst
    ~payload_len () =
  { tos; total_len = header_len + payload_len; ident; ttl; protocol; src; dst }

(* One's-complement sum of 16-bit big-endian words (the header is always
   an even number of bytes). *)
let sum16 b ~len =
  let s = ref 0 in
  for i = 0 to (len / 2) - 1 do
    s := !s + Bytes.get_uint16_be b (2 * i);
    if !s > 0xffff then s := (!s land 0xffff) + (!s lsr 16)
  done;
  !s

let header_checksum s =
  let b = Bytes.of_string s in
  Bytes.set_uint16_be b 10 0;
  lnot (sum16 b ~len:header_len) land 0xffff

let encode t =
  let b = Bytes.create header_len in
  Bytes.set_uint8 b 0 0x45 (* version 4, IHL 5 *);
  Bytes.set_uint8 b 1 t.tos;
  Bytes.set_uint16_be b 2 t.total_len;
  Bytes.set_uint16_be b 4 t.ident;
  Bytes.set_uint16_be b 6 0x4000 (* DF: this stack never fragments *);
  Bytes.set_uint8 b 8 t.ttl;
  Bytes.set_uint8 b 9 t.protocol;
  Bytes.set_uint16_be b 10 0;
  Bytes.set_int32_be b 12 (Int32.of_int (t.src land 0xffff_ffff));
  Bytes.set_int32_be b 16 (Int32.of_int (t.dst land 0xffff_ffff));
  let ck = lnot (sum16 b ~len:header_len) land 0xffff in
  Bytes.set_uint16_be b 10 ck;
  Bytes.unsafe_to_string b

let encapsulate t payload =
  if t.total_len <> header_len + String.length payload then
    invalid_arg "Ipv4.encapsulate: total_len disagrees with payload";
  encode t ^ payload

let decapsulate wire =
  let n = String.length wire in
  if n < header_len then Error "short IP datagram"
  else
    let b = Bytes.unsafe_of_string wire in
    let vihl = Bytes.get_uint8 b 0 in
    if vihl <> 0x45 then Error (Printf.sprintf "unsupported version/IHL 0x%02x" vihl)
    else
      let total_len = Bytes.get_uint16_be b 2 in
      if total_len <> n then
        Error (Printf.sprintf "total length %d but datagram has %d bytes" total_len n)
      else if sum16 (Bytes.sub b 0 header_len) ~len:header_len <> 0xffff then
        Error "bad IP header checksum"
      else
        Ok
          ( { tos = Bytes.get_uint8 b 1;
              total_len;
              ident = Bytes.get_uint16_be b 4;
              ttl = Bytes.get_uint8 b 8;
              protocol = Bytes.get_uint8 b 9;
              src = Int32.to_int (Bytes.get_int32_be b 12) land 0xffff_ffff;
              dst = Int32.to_int (Bytes.get_int32_be b 16) land 0xffff_ffff },
            String.sub wire header_len (n - header_len) )
