(** Process-level fault injection: kill and restart a simulated host.

    A crash plan models one host's lifecycle against the virtual clock:
    at each scheduled moment (an absolute list of times, or the Nth
    packet the host receives) the host {e crashes} — the [kill] callback
    tears down its sockets, servers and timers — and after [down_us] of
    downtime it {e restarts} via the [revive] callback.  While the host
    is down its address either black-holes traffic or answers every
    segment with RST (the restarted-kernel behaviour), selected by
    {!down_behaviour}.

    The plan never touches protocol state itself: the harness supplies
    [kill]/[revive], and wires {!guard} in front of the host's demux
    handlers.  All plan timers are tagged with a private
    {!Simclock.fresh_owner} id so harnesses can audit them. *)

type schedule =
  | At_times of float list
      (** crash at each offset (microseconds from creation) *)
  | On_packet of int
      (** crash when the guarded host receives its Nth packet (counted
          since the last restart, so the plan re-arms after a revive);
          the triggering packet dies with the host *)

type down_behaviour =
  | Blackhole  (** segments to a dead host vanish *)
  | Respond of {
      reply : Datagram.t -> Datagram.t option;
          (** e.g. [Tcp.Socket.reset_for]: the RST for an arriving
              segment, [None] to stay silent *)
      send : Datagram.t -> unit;  (** path back toward the sender *)
    }

type t

(** [create clock ?max_crashes ~schedule ~down_us ~behaviour ~kill
    ~revive ()].  [max_crashes] (default unlimited) bounds how many times
    the host dies; [down_us] must be positive. *)
val create :
  Simclock.t ->
  ?max_crashes:int ->
  schedule:schedule ->
  down_us:float ->
  behaviour:down_behaviour ->
  kill:(unit -> unit) ->
  revive:(unit -> unit) ->
  unit ->
  t

(** [seeded_times ~seed ~crashes ~horizon_us] draws [crashes] crash
    offsets in [0.1, 1.0) of the horizon from the soak harnesses'
    xorshift generator — the same seed always yields the same schedule. *)
val seeded_times : seed:int -> crashes:int -> horizon_us:float -> float list

(** [guard t ~deliver] wraps a demux handler for one of the host's
    ports: packets reach [deliver] only while the host is up (and feed
    the [On_packet] trigger); while it is down they are swallowed and,
    under [Respond], answered. *)
val guard : t -> deliver:(Datagram.t -> unit) -> Datagram.t -> unit

val is_up : t -> bool

val crashes : t -> int
(** Crashes executed so far. *)

val swallowed : t -> int
(** Datagrams that died with the host (including the [On_packet]
    trigger packet). *)

val resets : t -> int
(** RST replies sent while down (always 0 under [Blackhole]). *)

val timer_owner : t -> int
(** The owner id tagging the plan's own crash/revive timers. *)

val stop : t -> unit
(** Cancel every pending crash and revive timer (end of a soak
    iteration); the host stays in whatever state it is in. *)
