(** A loopback link with programmable impairments.

    The paper ran client and server on the same machine over UDP in
    loopback mode, so the fault-free configuration is a fixed small delay.
    The adversarial configurations model everything a hostile wire can do
    to a datagram: independent loss, bursty loss (a two-state
    Gilbert–Elliott channel), duplication, jitter-induced reordering,
    seeded bit corruption, truncation, trailing-garbage padding, and delay
    spikes.  All randomness comes from one seeded deterministic generator,
    so a given seed produces exactly one delivery trace, and every
    impairment applied is counted. *)

type t

(** Two-state Gilbert–Elliott burst-loss channel.  The link starts in the
    good state (no extra loss); each packet first draws a state transition
    ([p_enter_bad] from good, [p_exit_bad] from bad) and is then lost with
    probability [loss_in_bad] while the channel is bad. *)
type gilbert = {
  p_enter_bad : float;
  p_exit_bad : float;
  loss_in_bad : float;
}

(** The full impairment model.  Rates are per-datagram probabilities in
    [0, 1].  A corrupted datagram has [corrupt_bits] (≥ 1) uniformly chosen
    bits flipped; a truncated one is cut to a uniform length below its own;
    a padded one gains 1..[pad_max] random trailing bytes; a delay spike
    adds [delay_spike_us] on top of the base delay and jitter. *)
type impairments = {
  delay_us : float;
  jitter_us : float;
  loss_rate : float;
  dup_rate : float;
  corrupt_rate : float;
  corrupt_bits : int;
  truncate_rate : float;
  pad_rate : float;
  pad_max : int;
  delay_spike_rate : float;
  delay_spike_us : float;
  gilbert : gilbert option;
}

(** 50 us fixed delay and no impairments — the paper's loopback wire.
    [Link.create clock ~impairments:Link.fault_free] behaves exactly like
    [Link.create clock] with default arguments. *)
val fault_free : impairments

(** [create clock ~deliver] builds a link whose packets are handed to
    [deliver] after [delay_us] (default 50).  [loss_rate], [dup_rate]
    (defaults 0) are probabilities per packet; [jitter_us] (default 0) adds
    uniform random extra delay, which reorders packets when larger than the
    inter-packet gap.  [seed] fixes the random stream.  [impairments], when
    given, supersedes the individual rate arguments and enables the full
    adversarial model.

    [impair_only] (default: everything) scopes the impairment model to
    matching datagrams — e.g. only the ack direction of a connection;
    non-matching datagrams consume no random draws and are delivered
    after the base delay, so the impaired direction's trace for a given
    seed is independent of the other direction's traffic.

    [tamper] models a lying peer's NIC rather than the wire: it runs on
    every datagram before any impairment draw and returns the datagrams
    actually offered to the network (identity to pass through, [[]] to
    swallow, a rewritten copy or extra injected datagrams to forge).
    Each output then takes the normal impairment path.  Every
    non-identity outcome is counted in [stats.tampered].

    Raises [Invalid_argument] on out-of-range rates. *)
val create :
  Simclock.t ->
  ?delay_us:float ->
  ?jitter_us:float ->
  ?loss_rate:float ->
  ?dup_rate:float ->
  ?seed:int ->
  ?impairments:impairments ->
  ?impair_only:(Datagram.t -> bool) ->
  ?tamper:(Datagram.t -> Datagram.t list) ->
  deliver:(Datagram.t -> unit) ->
  unit ->
  t

(** [send t dgram] queues a datagram for (possible, possibly mangled)
    delivery. *)
val send : t -> Datagram.t -> unit

(** Counters for assertions in tests. *)
val sent : t -> int

val delivered : t -> int
val dropped : t -> int
val duplicated : t -> int

(** Every impairment the link has applied, by kind.  [dropped] counts all
    losses; [burst_dropped] is the subset due to the Gilbert–Elliott
    channel; [tampered] counts datagrams the [tamper] hook rewrote,
    swallowed or multiplied (forged injections included). *)
type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  duplicated : int;
  corrupted : int;
  truncated : int;
  padded : int;
  burst_dropped : int;
  delay_spikes : int;
  tampered : int;
}

val stats : t -> stats
val zero_stats : stats
val add_stats : stats -> stats -> stats
