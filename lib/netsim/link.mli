(** A loopback link with programmable impairments.

    The paper ran client and server on the same machine over UDP in
    loopback mode, so the fault-free configuration is a fixed small delay.
    Loss, duplication and jitter-induced reordering are provided for the
    protocol tests (TCP must deliver the exact byte stream under them);
    all randomness comes from a seeded deterministic generator. *)

type t

(** [create clock ~deliver] builds a link whose packets are handed to
    [deliver] after [delay_us] (default 50).  [loss_rate], [dup_rate]
    (defaults 0) are probabilities per packet; [jitter_us] (default 0) adds
    uniform random extra delay, which reorders packets when larger than the
    inter-packet gap.  [seed] fixes the random stream. *)
val create :
  Simclock.t ->
  ?delay_us:float ->
  ?jitter_us:float ->
  ?loss_rate:float ->
  ?dup_rate:float ->
  ?seed:int ->
  deliver:(Datagram.t -> unit) ->
  unit ->
  t

(** [send t dgram] queues a datagram for (possible) delivery. *)
val send : t -> Datagram.t -> unit

(** Counters for assertions in tests. *)
val sent : t -> int

val delivered : t -> int
val dropped : t -> int
val duplicated : t -> int
