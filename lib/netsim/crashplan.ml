module M = Ilp_obs.Metrics

let m_crashes = M.counter M.default "netsim.crashes"
let m_swallowed = M.counter M.default "netsim.crash_swallowed"
let m_resets = M.counter M.default "netsim.crash_resets"

type schedule = At_times of float list | On_packet of int

type down_behaviour =
  | Blackhole
  | Respond of {
      reply : Datagram.t -> Datagram.t option;
      send : Datagram.t -> unit;
    }

type t = {
  clock : Simclock.t;
  owner : int;
  down_us : float;
  max_crashes : int;
  behaviour : down_behaviour;
  kill : unit -> unit;
  revive : unit -> unit;
  packet_trigger : int;  (* 0 = timed schedule only *)
  mutable up : bool;
  mutable crashes : int;
  mutable packets_seen : int;  (* since the last restart *)
  mutable swallowed : int;
  mutable resets : int;
  mutable revive_timer : Simclock.timer option;
  mutable crash_timers : Simclock.timer list;
  mutable stopped : bool;
}

(* The same xorshift generator the soak harnesses use: fully determined
   by the seed, so a crash schedule reproduces exactly per seed. *)
let seeded_times ~seed ~crashes ~horizon_us =
  if crashes < 0 then invalid_arg "Crashplan.seeded_times: crashes < 0";
  if horizon_us <= 0.0 then
    invalid_arg "Crashplan.seeded_times: horizon_us must be positive";
  let state = ref (if seed = 0 then 0x9E3779B9 else seed land 0x3FFFFFFF) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) land 0x3FFFFFFF in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) land 0x3FFFFFFF in
    state := x;
    x
  in
  List.init crashes (fun _ ->
      let u = float_of_int (next ()) /. float_of_int 0x40000000 in
      (* Keep crashes away from time zero so a connection exists to
         kill: draw from [0.1, 1.0) of the horizon. *)
      horizon_us *. (0.1 +. (0.9 *. u)))
  |> List.sort compare

let crash t =
  if t.up && (not t.stopped) && t.crashes < t.max_crashes then begin
    t.up <- false;
    t.crashes <- t.crashes + 1;
    M.inc m_crashes 1;
    t.packets_seen <- 0;
    t.kill ();
    let timer =
      Simclock.schedule t.clock ~owner:t.owner ~after:t.down_us (fun () ->
          t.revive_timer <- None;
          if not t.stopped then begin
            t.up <- true;
            t.revive ()
          end)
    in
    t.revive_timer <- Some timer
  end

let create clock ?(max_crashes = max_int) ~schedule ~down_us
    ~behaviour ~kill ~revive () =
  if down_us <= 0.0 then invalid_arg "Crashplan.create: down_us must be positive";
  let t =
    { clock;
      owner = Simclock.fresh_owner clock;
      down_us;
      max_crashes;
      behaviour;
      kill;
      revive;
      packet_trigger = (match schedule with On_packet n -> n | At_times _ -> 0);
      up = true;
      crashes = 0;
      packets_seen = 0;
      swallowed = 0;
      resets = 0;
      revive_timer = None;
      crash_timers = [];
      stopped = false }
  in
  (match schedule with
  | At_times times ->
      t.crash_timers <-
        List.map
          (fun after ->
            if after < 0.0 then
              invalid_arg "Crashplan.create: negative crash time";
            Simclock.schedule clock ~owner:t.owner ~after (fun () -> crash t))
          times
  | On_packet n ->
      if n < 1 then invalid_arg "Crashplan.create: On_packet needs n >= 1");
  t

let is_up t = t.up
let crashes t = t.crashes
let swallowed t = t.swallowed
let resets t = t.resets
let timer_owner t = t.owner

(* Wrap a host's demux handler: while the host is up, packets flow (and
   feed the Nth-packet trigger); while it is down, its address black-holes
   or answers with RST, exactly as a dead machine's network stack would. *)
let guard t ~deliver dgram =
  if t.up then begin
    if t.packet_trigger > 0 then begin
      t.packets_seen <- t.packets_seen + 1;
      if t.packets_seen >= t.packet_trigger then crash t
    end;
    (* The packet that triggers the crash is lost with the host (it was
       in the NIC ring of a machine that just died). *)
    if t.up then deliver dgram
    else begin
      t.swallowed <- t.swallowed + 1;
      M.inc m_swallowed 1
    end
  end
  else
    match t.behaviour with
    | Blackhole ->
        t.swallowed <- t.swallowed + 1;
        M.inc m_swallowed 1
    | Respond { reply; send } -> (
        t.swallowed <- t.swallowed + 1;
        M.inc m_swallowed 1;
        match reply dgram with
        | None -> ()
        | Some r ->
            t.resets <- t.resets + 1;
            M.inc m_resets 1;
            send r)

let stop t =
  t.stopped <- true;
  Option.iter Simclock.cancel t.revive_timer;
  t.revive_timer <- None;
  List.iter Simclock.cancel t.crash_timers;
  t.crash_timers <- []
