let paper_file_len = 15 * 1024

let generate ~len ~seed =
  if len < 0 then invalid_arg "Workload.generate";
  let state = ref (seed lxor 0x2545F491) in
  String.init len (fun _ ->
      (* xorshift32 *)
      let s = !state land 0xffffffff in
      let s = s lxor (s lsl 13) land 0xffffffff in
      let s = s lxor (s lsr 17) in
      let s = s lxor (s lsl 5) land 0xffffffff in
      state := s;
      Char.chr (s land 0xff))

let install (sim : Ilp_memsim.Sim.t) contents =
  let addr = Ilp_memsim.Alloc.alloc sim.alloc ~align:64 (String.length contents) in
  Ilp_memsim.Mem.poke_string sim.mem ~pos:addr contents;
  addr
