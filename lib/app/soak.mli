(** The chaos soak harness.

    Drives many randomized file transfers — cycling through both ILP
    modes, both backends, all four ciphers and both header styles — each
    under a freshly drawn adversarial impairment configuration (loss,
    bursts, corruption, truncation, padding, duplication, reordering,
    delay spikes), and checks the robustness invariant on every one:

    {e the file arrives byte-exact, or the transfer fails with a typed
    error — never silent corruption, never an escaped exception.}

    Everything is derived from [config.seed], so a failing iteration can
    be replayed exactly. *)

type config = {
  seed : int;
  iterations : int;
  file_len : int;
  copies : int;
  max_reply : int;
  machine : Ilp_memsim.Config.t;
  intensity : float;  (** scales all impairment rates; 1.0 = full chaos *)
  deadline_us : float;  (** virtual-time budget per transfer *)
}

(** 512 iterations of a 512-byte file in 256-byte messages on the SS10/30
    model at full intensity. *)
val default_config : config

type outcome = {
  iterations : int;
  completed : int;
  failed : int;
      (** transfers that ended with a typed error (expected under
          impairment) *)
  escaped_exceptions : int;
      (** invariant violation: an exception crossed the stack *)
  silent_corruptions : int;
      (** invariant violation: reported success without byte-exact
          delivery, or failure with no typed error *)
  retransmissions : int;
  checksum_drops : int;
  replies_abandoned : int;
  drops : (Ilp_tcp.Socket.drop_reason * int) list;
  link : Ilp_netsim.Link.stats;
}

(** Zero escaped exceptions and zero silent corruptions. *)
val invariants_hold : outcome -> bool

(** [run ?log cfg] executes the soak; [log] receives one line per
    noteworthy iteration (typed failures and any invariant violation).
    Raises [Invalid_argument] on an out-of-range config (negative
    iterations, intensity outside [0, 10], non-positive sizes or
    deadline). *)
val run : ?log:(string -> unit) -> config -> outcome

(** Human-readable ledger of the whole run. *)
val summary_lines : outcome -> string list
