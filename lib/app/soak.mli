(** The chaos soak harness.

    Drives many randomized file transfers — cycling through both ILP
    modes, both backends, all four ciphers and both header styles — each
    under a freshly drawn adversarial impairment configuration (loss,
    bursts, corruption, truncation, padding, duplication, reordering,
    delay spikes), and checks the robustness invariant on every one:

    {e the file arrives byte-exact, or the transfer fails with a typed
    error — never silent corruption, never an escaped exception.}

    Everything is derived from [config.seed], so a failing iteration can
    be replayed exactly. *)

type config = {
  seed : int;
  iterations : int;
  file_len : int;
  copies : int;
  max_reply : int;
  machine : Ilp_memsim.Config.t;
  intensity : float;  (** scales all impairment rates; 1.0 = full chaos *)
  deadline_us : float;  (** virtual-time budget per transfer *)
}

(** 512 iterations of a 512-byte file in 256-byte messages on the SS10/30
    model at full intensity. *)
val default_config : config

type outcome = {
  iterations : int;
  completed : int;
  failed : int;
      (** transfers that ended with a typed error (expected under
          impairment) *)
  escaped_exceptions : int;
      (** invariant violation: an exception crossed the stack *)
  silent_corruptions : int;
      (** invariant violation: reported success without byte-exact
          delivery, or failure with no typed error *)
  retransmissions : int;
  checksum_drops : int;
  replies_abandoned : int;
  drops : (Ilp_tcp.Socket.drop_reason * int) list;
  link : Ilp_netsim.Link.stats;
  pool_leaks : int;
      (** invariant violation: buffers still outstanding from any
          iteration's pool after engine teardown *)
}

(** Zero escaped exceptions, zero silent corruptions, zero pool leaks. *)
val invariants_hold : outcome -> bool

(** [run ?log cfg] executes the soak; [log] receives one line per
    noteworthy iteration (typed failures and any invariant violation).
    Raises [Invalid_argument] on an out-of-range config (negative
    iterations, intensity outside [0, 10], non-positive sizes or
    deadline). *)
val run : ?log:(string -> unit) -> config -> outcome

(** Human-readable ledger of the whole run. *)
val summary_lines : outcome -> string list

(** {2 Overload soak}

    Many concurrent clients with mixed personas against one shared
    multi-connection server, exercising admission control, load shedding
    and the zero-window persist machinery.  The graceful-degradation
    invariant: every request ends in byte-exact delivery or a typed
    outcome (client- or server-side), honest clients always complete,
    queue budgets are never exceeded, and every shed appears both in the
    server's ledger and as a typed client-visible reply. *)

type persona =
  | Honest  (** requests the file and reads replies promptly *)
  | Slow_reader
      (** advertises a zero receive window at first, reopens mid-run: the
          server's persist probes must discover the reopening and the
          transfer must still complete *)
  | Dead_reader
      (** never reopens its window: the server must abort the connection
          [Peer_stalled], abandon its queue and free the admission slot *)
  | Oversized
      (** requests more than the per-connection byte budget could ever
          hold: permanently refused *)
  | Streaming
      (** data connection MSS smaller than one reply, so every reply is
          segmented and pipelined through [Socket.send_stream]; must still
          complete byte-exact *)
  | Shrinking_window
      (** shrinks its advertised window below the sender's bytes in
          flight mid-transfer, reopens later; the clamped send window
          must recover the transfer *)
  | Lying_receiver
      (** reads honestly, but its NIC forges the feedback channel: every
          pure ack gains a SACK block for data the server never sent and
          is duplicated (dupack forgery).  The server must reject every
          forged block — counted in [Socket.stats.sack_invalid] — and
          the transfer must still complete byte-exact *)

val persona_name : persona -> string

(** Clients are assigned personas by cycling this 8-entry pattern
    (1 honest, 2 slow readers, 1 streaming, 1 shrinking-window, 1 dead
    reader, 1 oversized, 1 lying receiver). *)
val persona_pattern : persona array

type overload_config = {
  seed : int;
  clients : int;
  file_len : int;
  machine : Ilp_memsim.Config.t;
  deadline_us : float;  (** virtual-time budget for the whole soak *)
}

(** 8 clients around a 2 kB file on the SS10/30 model. *)
val default_overload_config : overload_config

type overload_outcome = {
  clients : int;
  completed : int;
  typed_failures : int;
  escaped_exceptions : int;
  silent_outcomes : int;
      (** invariant violation: a client ended neither complete nor with a
          typed client- or server-side outcome *)
  honest_incomplete : int;
      (** invariant violation: an honest or slow-reader client did not
          finish byte-exact *)
  budget_violations : int;
      (** invariant violation: peak queued bytes exceeded the global cap *)
  ledger_mismatch : bool;
      (** invariant violation: the server's shed ledger does not equal the
          typed shed outcomes the clients observed *)
  peak_queued_bytes : int;
  queue_cap : int;
  busy_replies : int;
  client_retries : int;
  persist_probes : int;
  peer_stalled_aborts : int;
  replies_abandoned : int;
  forged_acks : int;
      (** datagrams the lying receivers' NICs rewrote ([Link.stats.tampered]) *)
  forged_rejections : int;
      (** forged SACK blocks the server rejected plus typed
          [Misbehaving_peer] aborts, summed over the lying receivers *)
  forgery_unpunished : bool;
      (** invariant violation: feedback was forged but the server neither
          rejected a block nor aborted the peer *)
  sheds : (Ilp_rpc.Server.shed_reason * int) list;
  pool_leaks : int;
      (** invariant violation: buffers outstanding from the run's shared
          pool after every engine was destroyed *)
}

(** No escaped exceptions, no silent outcomes, no incomplete honest
    client, budgets respected, ledger consistent, pool balanced. *)
val overload_invariants_hold : overload_outcome -> bool

(** [run_overload ?log ?on_clock cfg] builds one shared world — one
    server, [clients] concurrent connection pairs — staggers every
    client's request, drives the simulated clock until all clients
    settle (or [deadline_us]), and classifies each.  [log] receives one
    verdict line per client.  [on_clock] receives the world's shared
    [Simclock] after setup has drained and before the requests are
    scheduled — the telemetry sampler attaches its periodic tick there.
    Raises [Invalid_argument] on an out-of-range config. *)
val run_overload :
  ?log:(string -> unit) ->
  ?on_clock:(Ilp_netsim.Simclock.t -> unit) ->
  overload_config ->
  overload_outcome

val overload_summary_lines : overload_outcome -> string list

(** {2 Crash soak}

    Seeded node crash/restart faults against single transfers: a
    {!Ilp_netsim.Crashplan} kills the server host mid-transfer (on a
    timed schedule or its Nth received packet; the dead address either
    answers RST or black-holes), restarts it after a seeded downtime,
    and a recovery supervisor hands the client fresh connections to
    resume over.  The fault-model invariant, per seed:

    {e the file arrives byte-exact — possibly resumed across restarts
    from a CRC-verified prefix, never from byte zero — or the client
    holds a typed failure; every crash teardown leaves zero owned
    timers; the at-most-once dedup ledger and the buffer pool balance.} *)

type crash_config = {
  seed : int;
  transfers : int;  (** independent seeded crash/restart transfers *)
  file_len : int;
  machine : Ilp_memsim.Config.t;
  deadline_us : float;  (** virtual-time budget per transfer *)
}

(** 64 transfers of a 2 kB file on the SS10/30 model. *)
val default_crash_config : crash_config

type crash_outcome = {
  transfers : int;
  completed : int;
  resumed_completed : int;
      (** completed byte-exact after at least one reconnect *)
  typed_failures : int;
  escaped_exceptions : int;
      (** invariant violation: an exception crossed the stack *)
  silent_outcomes : int;
      (** invariant violation: a transfer ended neither complete nor
          typed within the deadline — a crash that was never surfaced *)
  restarts_from_zero : int;
      (** invariant violation: a resume re-started from byte zero while
          a verified prefix existed *)
  stale_timers : int;
      (** invariant violation: owned timers still pending after a crash
          teardown (server shutdown, socket destroy, or plan stop) *)
  dedup_violations : int;
      (** invariant violation: [executions + dedup_hits + dedup_sheds
          <> id_requests_seen] on some iteration's store *)
  crashes : int;
  resets_while_down : int;  (** RSTs the dead address answered with *)
  swallowed : int;  (** datagrams that died with the host *)
  keepalive_probes : int;
  reset_aborts : int;  (** sockets aborted [Connection_reset] *)
  reconnects : int;
  resumes : int;  (** resume requests actually sent *)
  dedup_hits : int;
  executions : int;
  crc_probes : int;  (** CRC prefix probes the servers answered *)
  pool_leaks : int;
      (** invariant violation: buffers outstanding after teardown *)
}

(** No escaped exceptions, no silent outcomes, no restart-from-zero, no
    stale timers, dedup ledger conserved, pool balanced. *)
val crash_invariants_hold : crash_outcome -> bool

(** [run_crash ?log cfg] executes [cfg.transfers] independent seeded
    crash/restart transfers; [log] receives one verdict line per
    transfer.  Raises [Invalid_argument] on an out-of-range config. *)
val run_crash : ?log:(string -> unit) -> crash_config -> crash_outcome

val crash_summary_lines : crash_outcome -> string list
