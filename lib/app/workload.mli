(** Workload generation: deterministic file contents for the transfer
    experiments (the paper uses a 15 kbyte file sent repeatedly). *)

(** [generate ~len ~seed] is a reproducible pseudo-random byte string —
    incompressible-ish content so no stage can shortcut on zeros. *)
val generate : len:int -> seed:int -> string

(** [install sim contents] places the file in simulated memory and returns
    its address. *)
val install : Ilp_memsim.Sim.t -> string -> int

(** The paper's file size: 15 kbytes. *)
val paper_file_len : int
