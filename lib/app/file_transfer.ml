open Ilp_memsim
module Simclock = Ilp_netsim.Simclock
module Link = Ilp_netsim.Link
module Demux = Ilp_netsim.Demux
module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine
module Rpc_server = Ilp_rpc.Server
module Rpc_client = Ilp_rpc.Client

type cipher_choice =
  | Safer_simplified
  | Simple_encryption
  | Safer_full of int
  | Des

type setup = {
  machine : Config.t;
  cipher : cipher_choice;
  mode : Engine.mode;
  linkage : Ilp_core.Linkage.t;
  coalesce_writes : bool;
  header_style : Engine.header_style;
  rx_placement : Engine.rx_placement;
  uniform_units : bool;
  native : bool;
  crc : bool;
  data_path : Engine.data_path;
  pool : Ilp_fastpath.Pool.t option;
  framing : bool;
      (* negotiate the v2 ("Reverso") framed receive on the data
         connection; off (the default) keeps every wire byte identical
         to the unframed protocol *)
  file_len : int;
  copies : int;
  max_reply : int;
  mss : int option;
      (* [None]: one TSDU per TPDU (mss = max_message, the paper's ALF
         shape).  [Some m]: segment streaming — replies wider than [m]
         wire bytes travel as pipelined MSS-sized segments. *)
  loss_rate : float;
  seed : int;
  impairments : Link.impairments option;
  deadline_us : float;
}

let default_setup ~machine ~mode =
  { machine;
    cipher = Safer_simplified;
    mode;
    linkage = Ilp_core.Linkage.Macro;
    coalesce_writes = false;
    header_style = Engine.Leading;
    rx_placement = Engine.Early;
    uniform_units = false;
    native = false;
    crc = false;
    data_path = Engine.Pooled;
    pool = None;
    framing = false;
    file_len = Workload.paper_file_len;
    copies = 8;
    max_reply = 1024;
    mss = None;
    loss_rate = 0.0;
    seed = 1;
    impairments = None;
    deadline_us = 2_000_000_000.0 }

type result = {
  ok : bool;
  error : string option;
  n_replies : int;
  payload_bytes : int;
  wire_bytes : int;
  send_us : float array;
  send_syscopy_us : float array;
  recv_us : float array;
  send_stall_us : float;
  recv_stall_us : float;
  ifetch_stall_us : float;
  total_machine_us : float;
  send_stats : Stats.t;
  recv_stats : Stats.t;
  total_stats : Stats.t;
  retransmissions : int;
  checksum_failures : int;
  client_failure : string option;
  drops : (Socket.drop_reason * int) list;
  replies_abandoned : int;
  link_stats : Link.stats;
  pool_leaks : int;
}

let key = "\x3a\x91\x5c\x07\xee\x42\xb8\x1d"

let make_cipher sim = function
  | Safer_simplified -> Ilp_cipher.Safer_simplified.charged sim ~key ()
  | Simple_encryption -> Ilp_cipher.Simple_cipher.charged sim
  | Safer_full rounds -> Ilp_cipher.Safer.charged sim ~rounds ~key ()
  | Des -> Ilp_cipher.Des.charged sim ~key ()

(* The native twin of [make_cipher]: same algorithm, same key, expanded
   into ordinary OCaml data for the un-simulated fast path. *)
let make_fastpath_cipher = function
  | Safer_simplified ->
      Ilp_fastpath.Cipher.Safer_simplified (Ilp_cipher.Safer_simplified.expand_key key)
  | Simple_encryption -> Ilp_fastpath.Cipher.Simple
  | Safer_full rounds ->
      Ilp_fastpath.Cipher.Safer (Ilp_cipher.Safer.expand_key ~rounds key)
  | Des -> Ilp_fastpath.Cipher.Des (Ilp_cipher.Des.expand_key key)

let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

(* Ports of the four endpoints. *)
let srv_ctrl_port = 5000
let cli_ctrl_port = 5001
let srv_data_port = 5002
let cli_data_port = 5003

let run setup =
  let sim = Sim.create setup.machine in
  let machine = sim.Sim.machine in
  let clock = Simclock.create () in
  let demux = Demux.create () in
  let link = ref None in
  let wire_out d = Link.send (Option.get !link) d in
  link :=
    Some
      (Link.create clock ~delay_us:50.0 ~loss_rate:setup.loss_rate
         ~seed:setup.seed ?impairments:setup.impairments
         ~deliver:(Demux.deliver demux) ());
  (* Shared machine, one engine (and one cipher instance) per process. *)
  let srv_cipher = make_cipher sim setup.cipher in
  let cli_cipher = make_cipher sim setup.cipher in
  let max_message = 2048 in
  let backend () =
    if setup.native then Engine.Native (make_fastpath_cipher setup.cipher)
    else Engine.Simulated
  in
  (* One buffer pool shared by both endpoints of the run: staging buffers
     and TSDU buffers recirculate instead of being allocated per message,
     and a single outstanding-count audits the whole process. *)
  let pool =
    match setup.pool with Some p -> p | None -> Ilp_fastpath.Pool.create ()
  in
  let srv_engine =
    Engine.create sim ~cipher:srv_cipher ~mode:setup.mode ~backend:(backend ())
      ~linkage:setup.linkage
      ~max_message ~coalesce_writes:setup.coalesce_writes
      ~header_style:setup.header_style ~rx_placement:setup.rx_placement
      ~uniform_units:setup.uniform_units ~crc32:setup.crc
      ~data_path:setup.data_path ~pool ()
  in
  let cli_engine =
    Engine.create sim ~cipher:cli_cipher ~mode:setup.mode ~backend:(backend ())
      ~linkage:setup.linkage
      ~max_message ~coalesce_writes:setup.coalesce_writes
      ~header_style:setup.header_style ~rx_placement:setup.rx_placement
      ~uniform_units:setup.uniform_units ~crc32:setup.crc
      ~data_path:setup.data_path ~pool ()
  in
  (* Teardown: return staging buffers, then audit pool balance.  With a
     caller-shared pool the count includes the caller's own outstanding
     buffers, so pass [pool = None] (the default) for a self-contained
     audit. *)
  let pool_leaks () =
    Engine.destroy srv_engine;
    Engine.destroy cli_engine;
    Ilp_fastpath.Pool.outstanding pool
  in
  let mss =
    match setup.mss with None -> max_message | Some m -> min m max_message
  in
  let scfg = { Socket.default_config with mss } in
  let srv_ctrl = Socket.create sim clock scfg ~local_port:srv_ctrl_port ~wire_out in
  let cli_ctrl = Socket.create sim clock scfg ~local_port:cli_ctrl_port ~wire_out in
  let srv_data = Socket.create sim clock scfg ~local_port:srv_data_port ~wire_out in
  let cli_data = Socket.create sim clock scfg ~local_port:cli_data_port ~wire_out in
  let server = Rpc_server.create ~clock ~engine:srv_engine () in
  ignore (Rpc_server.attach server ~ctrl:srv_ctrl ~data:srv_data);
  let client =
    Rpc_client.create ~clock ~engine:cli_engine ~framed:setup.framing
      ~ctrl:cli_ctrl ~data:cli_data ()
  in
  (* Measurement buckets. *)
  let send_us = ref [] and send_syscopy_us = ref [] and recv_us = ref [] in
  let send_stall = ref 0.0 and recv_stall = ref 0.0 in
  let stall_mark = ref 0.0 in
  let wire_bytes = ref 0 in
  let send_stats = Stats.create () and recv_stats = Stats.create () in
  (* Every instrumented site snapshots the global ledger before its own
     work and accumulates the difference into its bucket; un-instrumented
     work (control connections, handshakes) stays out of both buckets. *)
  let snapshot = ref (Stats.copy (Machine.stats machine)) in
  let mark () =
    snapshot := Stats.copy (Machine.stats machine);
    stall_mark := Machine.stall_micros machine
  in
  let settle bucket =
    Stats.accumulate ~into:bucket
      (Stats.diff (Machine.stats machine) !snapshot)
  in
  let settle_stall cell = cell := !cell +. (Machine.stall_micros machine -. !stall_mark) in
  Rpc_server.set_reply_probe server ~before:mark
    ~after:(fun ~wire_len ~elapsed_us ~syscopy_us ->
      settle send_stats;
      settle_stall send_stall;
      wire_bytes := !wire_bytes + wire_len;
      send_us := elapsed_us :: !send_us;
      send_syscopy_us := syscopy_us :: !send_syscopy_us);
  (* Demux wiring; the client data port is wrapped to time the receive
     path of each delivered reply, the server data port (acks) accounts to
     the send side. *)
  Demux.bind demux ~port:srv_ctrl_port (Socket.handle_datagram srv_ctrl);
  Demux.bind demux ~port:cli_ctrl_port (Socket.handle_datagram cli_ctrl);
  Demux.bind demux ~port:srv_data_port (fun d ->
      mark ();
      Socket.handle_datagram srv_data d;
      settle send_stats;
      settle_stall send_stall);
  Demux.bind demux ~port:cli_data_port (fun d ->
      let delivered = (Socket.stats cli_data).Socket.bytes_delivered in
      let before = Machine.micros machine in
      mark ();
      Socket.handle_datagram cli_data d;
      settle recv_stats;
      settle_stall recv_stall;
      if (Socket.stats cli_data).Socket.bytes_delivered > delivered then
        recv_us := (Machine.micros machine -. before) :: !recv_us);
  let file_contents = Workload.generate ~len:setup.file_len ~seed:setup.seed in
  let file_addr = Workload.install sim file_contents in
  Rpc_server.add_file server ~name:"paper.dat" ~addr:file_addr ~len:setup.file_len;
  (* Connection setup (not measured). *)
  Socket.listen srv_ctrl;
  Socket.listen cli_data;
  Socket.connect cli_ctrl ~remote_port:srv_ctrl_port;
  Socket.connect srv_data ~remote_port:cli_data_port;
  Simclock.run_until_idle clock;
  let all_sockets = [ srv_ctrl; cli_ctrl; srv_data; cli_data ] in
  let drops () =
    List.map
      (fun r ->
        (r, List.fold_left (fun acc s -> acc + Socket.drop_count s r) 0 all_sockets))
      Socket.drop_reasons
  in
  let client_failure () =
    Option.map Rpc_client.failure_to_string (Rpc_client.failure client)
  in
  let socket_failures () =
    List.filter_map
      (fun (name, s) ->
        Option.map
          (fun r -> name ^ " " ^ Socket.abort_reason_to_string r)
          (Socket.failure s))
      [ ("srv_ctrl", srv_ctrl); ("cli_ctrl", cli_ctrl); ("srv_data", srv_data);
        ("cli_data", cli_data) ]
  in
  let early_failure error =
    { ok = false;
      error = Some error;
      n_replies = 0;
      payload_bytes = 0;
      wire_bytes = 0;
      send_us = [||];
      send_syscopy_us = [||];
      recv_us = [||];
      send_stall_us = 0.0;
      recv_stall_us = 0.0;
      ifetch_stall_us = 0.0;
      total_machine_us = 0.0;
      send_stats;
      recv_stats;
      total_stats = Stats.copy (Machine.stats machine);
      retransmissions = 0;
      checksum_failures = 0;
      client_failure = client_failure ();
      drops = drops ();
      replies_abandoned = Rpc_server.replies_abandoned server;
      link_stats = Link.stats (Option.get !link);
      pool_leaks = pool_leaks () }
  in
  let established s = Socket.state s = Socket.Established in
  if
    not
      (established srv_ctrl && established cli_ctrl && established srv_data
      && established cli_data)
  then
    early_failure
      (match socket_failures () with
      | [] -> "connection setup failed"
      | fs -> "connection setup failed: " ^ String.concat "; " fs)
  else begin
    (* Exclude setup from the measurement; keep the caches warm as in the
       repeated transfers of the paper. *)
    Machine.reset_counters machine;
    mark ();
    match
      Rpc_client.request_file client ~name:"paper.dat" ~copies:setup.copies
        ~max_reply:setup.max_reply ~expected:file_contents
    with
    | Error _ -> early_failure "request refused by TCP"
    | Ok () ->
    (* Drive the world until the transfer completes or stalls. *)
    let deadline = setup.deadline_us in
    let rec pump guard =
      if guard = 0 then ()
      else if Rpc_client.transfer_complete client then ()
      else if Simclock.now clock > deadline then ()
      else begin
        Simclock.advance clock 5_000.0;
        if Simclock.pending clock = 0 && not (Rpc_client.transfer_complete client)
        then ()
        else pump (guard - 1)
      end
    in
    pump 2_000_000;
    let total_machine_us = Machine.micros machine in
    let total_stats = Stats.copy (Machine.stats machine) in
    let srv_stats = Socket.stats srv_data in
    let cli_stats = Socket.stats cli_data in
    let ok = Rpc_client.transfer_complete client in
    let error =
      if ok then None
      else
        match client_failure () with
        | Some f -> Some f
        | None ->
            Some
              (Printf.sprintf "incomplete transfer: %d / %d bytes"
                 (Rpc_client.bytes_received client)
                 (setup.file_len * setup.copies))
    in
    { ok;
      error;
      n_replies = Rpc_client.replies_received client;
      payload_bytes = Rpc_client.bytes_received client;
      wire_bytes = !wire_bytes;
      send_us = Array.of_list (List.rev !send_us);
      send_syscopy_us = Array.of_list (List.rev !send_syscopy_us);
      recv_us = Array.of_list (List.rev !recv_us);
      send_stall_us = !send_stall;
      recv_stall_us = !recv_stall;
      ifetch_stall_us =
        Machine.ifetch_stall_cycles machine /. setup.machine.Config.clock_mhz;
      total_machine_us;
      send_stats;
      recv_stats;
      total_stats;
      retransmissions = srv_stats.Socket.retransmissions;
      checksum_failures = cli_stats.Socket.checksum_failures;
      client_failure = client_failure ();
      drops = drops ();
      replies_abandoned = Rpc_server.replies_abandoned server;
      link_stats = Link.stats (Option.get !link);
      pool_leaks = pool_leaks () }
  end
