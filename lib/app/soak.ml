module Link = Ilp_netsim.Link
module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine
module Ft = File_transfer

(* A private xorshift64 so soak schedules are reproducible without
   touching the link's own stream. *)
let prng_create seed = ref ((seed * 0x9e3779b1) lor 1)

let prng_next st =
  let x = !st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  st := if x = 0 then 1 else x;
  !st

let prng_float st = float_of_int (prng_next st land 0xffffff) /. 16777216.0
let prng_int st bound = prng_next st mod bound

type config = {
  seed : int;
  iterations : int;
  file_len : int;
  copies : int;
  max_reply : int;
  machine : Ilp_memsim.Config.t;
  intensity : float;
  deadline_us : float;
}

let default_config =
  { seed = 1;
    iterations = 512;
    file_len = 512;
    copies = 1;
    max_reply = 256;
    machine = Ilp_memsim.Config.ss10_30;
    intensity = 1.0;
    deadline_us = 120_000_000.0 }

type outcome = {
  iterations : int;
  completed : int;
  failed : int;  (** transfers that ended with a typed error (expected under impairment) *)
  escaped_exceptions : int;  (** invariant violation: an exception crossed the stack *)
  silent_corruptions : int;
      (** invariant violation: reported success without byte-exact delivery,
          or failure with no typed error *)
  retransmissions : int;
  checksum_drops : int;
  replies_abandoned : int;
  drops : (Socket.drop_reason * int) list;
  link : Link.stats;
}

let invariants_hold o = o.escaped_exceptions = 0 && o.silent_corruptions = 0

let ciphers = [| Ft.Safer_simplified; Ft.Simple_encryption; Ft.Safer_full 6; Ft.Des |]

let cipher_name = function
  | Ft.Safer_simplified -> "safer-simplified"
  | Ft.Simple_encryption -> "simple"
  | Ft.Safer_full _ -> "safer-k64"
  | Ft.Des -> "des"

(* Draw one randomized impairment configuration.  Rates are scaled by
   [intensity]; every draw comes from the soak's own seeded stream, so a
   soak run is exactly reproducible from its seed. *)
let draw_impairments st ~intensity =
  (* Clamped so any intensity in Soak.run's accepted range still yields a
     valid probability. *)
  let r scale = min 1.0 (scale *. prng_float st *. intensity) in
  let gilbert =
    if prng_float st < 0.35 then
      Some
        { Link.p_enter_bad = min 1.0 (0.02 +. r 0.05);
          p_exit_bad = 0.25;
          loss_in_bad = min 1.0 (0.4 +. r 0.4) }
    else None
  in
  { Link.delay_us = 20.0 +. (80.0 *. prng_float st);
    jitter_us = (if prng_float st < 0.5 then 0.0 else 200.0 *. prng_float st);
    loss_rate = r 0.15;
    dup_rate = r 0.1;
    corrupt_rate = r 0.2;
    corrupt_bits = 1 + prng_int st 4;
    truncate_rate = r 0.06;
    pad_rate = r 0.06;
    pad_max = 12;
    delay_spike_rate = r 0.04;
    delay_spike_us = 2_000.0;
    gilbert }

(* One transfer under one impairment draw.  The soak invariant: the file
   arrives byte-exact, or the run reports a typed error — never silent
   corruption, never an escaped exception. *)
let run ?(log = fun _ -> ()) (cfg : config) =
  if cfg.iterations < 0 then invalid_arg "Soak.run: iterations must be >= 0";
  if cfg.intensity < 0.0 || cfg.intensity > 10.0 then
    invalid_arg "Soak.run: intensity must be in [0, 10]";
  if cfg.file_len <= 0 || cfg.copies <= 0 || cfg.max_reply <= 0 then
    invalid_arg "Soak.run: file_len, copies and max_reply must be positive";
  if cfg.deadline_us <= 0.0 then invalid_arg "Soak.run: deadline_us must be positive";
  let st = prng_create cfg.seed in
  let completed = ref 0
  and failed = ref 0
  and escaped = ref 0
  and silent = ref 0
  and retransmissions = ref 0
  and checksum_drops = ref 0
  and abandoned = ref 0 in
  let drop_totals = Array.make (List.length Socket.drop_reasons) 0 in
  let link_total = ref Link.zero_stats in
  for i = 0 to cfg.iterations - 1 do
    let mode = if i land 1 = 0 then Engine.Separate else Engine.Ilp in
    let native = (i lsr 1) land 1 = 1 in
    let cipher = ciphers.((i lsr 2) land 3) in
    let header_style = if (i lsr 4) land 1 = 0 then Engine.Leading else Engine.Trailer in
    let imp = draw_impairments st ~intensity:cfg.intensity in
    let setup =
      { (Ft.default_setup ~machine:cfg.machine ~mode) with
        Ft.cipher;
        native;
        header_style;
        file_len = cfg.file_len;
        copies = cfg.copies;
        max_reply = cfg.max_reply;
        seed = (cfg.seed * 7919) + i;
        impairments = Some imp;
        deadline_us = cfg.deadline_us }
    in
    let tag verdict =
      Printf.sprintf "iter %4d  %-8s %-7s %-16s %s" i
        (match mode with Engine.Ilp -> "ilp" | Engine.Separate -> "separate")
        (if native then "native" else "sim")
        (cipher_name cipher) verdict
    in
    (match Ft.run setup with
    | r ->
        retransmissions := !retransmissions + r.Ft.retransmissions;
        checksum_drops := !checksum_drops + r.Ft.checksum_failures;
        abandoned := !abandoned + r.Ft.replies_abandoned;
        List.iteri
          (fun j (_, n) -> drop_totals.(j) <- drop_totals.(j) + n)
          r.Ft.drops;
        link_total := Link.add_stats !link_total r.Ft.link_stats;
        if r.Ft.ok then begin
          if r.Ft.payload_bytes <> cfg.file_len * cfg.copies then begin
            incr silent;
            log (tag "SILENT CORRUPTION: success without byte-exact delivery")
          end
          else incr completed
        end
        else begin
          match r.Ft.error with
          | Some e ->
              incr failed;
              log (tag ("failed (typed): " ^ e))
          | None ->
              incr silent;
              log (tag "SILENT FAILURE: no typed error reported")
        end
    | exception e ->
        incr escaped;
        log (tag ("ESCAPED EXCEPTION: " ^ Printexc.to_string e)))
  done;
  { iterations = cfg.iterations;
    completed = !completed;
    failed = !failed;
    escaped_exceptions = !escaped;
    silent_corruptions = !silent;
    retransmissions = !retransmissions;
    checksum_drops = !checksum_drops;
    replies_abandoned = !abandoned;
    drops =
      List.mapi (fun j r -> (r, drop_totals.(j))) Socket.drop_reasons;
    link = !link_total }

let summary_lines o =
  let l = o.link in
  [ Printf.sprintf "iterations            %d" o.iterations;
    Printf.sprintf "byte-exact transfers  %d" o.completed;
    Printf.sprintf "typed failures        %d" o.failed;
    Printf.sprintf "escaped exceptions    %d" o.escaped_exceptions;
    Printf.sprintf "silent corruptions    %d" o.silent_corruptions;
    Printf.sprintf "wire: %d sent, %d delivered, %d lost (%d burst), %d duplicated"
      l.Link.sent l.Link.delivered l.Link.dropped l.Link.burst_dropped
      l.Link.duplicated;
    Printf.sprintf "wire: %d corrupted, %d truncated, %d padded, %d delay spikes"
      l.Link.corrupted l.Link.truncated l.Link.padded l.Link.delay_spikes;
    Printf.sprintf "tcp:  %d retransmissions, %d replies abandoned"
      o.retransmissions o.replies_abandoned;
    "tcp drops: "
    ^ String.concat ", "
        (List.map
           (fun (r, n) -> Printf.sprintf "%s %d" (Socket.drop_reason_to_string r) n)
           o.drops) ]
