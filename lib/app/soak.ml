module Link = Ilp_netsim.Link
module Simclock = Ilp_netsim.Simclock
module Demux = Ilp_netsim.Demux
module Crashplan = Ilp_netsim.Crashplan
module Datagram = Ilp_netsim.Datagram
module Ipv4 = Ilp_netsim.Ipv4
module Socket = Ilp_tcp.Socket
module Tcp_header = Ilp_tcp.Tcp_header
module Engine = Ilp_core.Engine
module Rpc_server = Ilp_rpc.Server
module Rpc_client = Ilp_rpc.Client
module Sim = Ilp_memsim.Sim
module Ft = File_transfer

(* A private xorshift64 so soak schedules are reproducible without
   touching the link's own stream. *)
let prng_create seed = ref ((seed * 0x9e3779b1) lor 1)

let prng_next st =
  let x = !st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  st := if x = 0 then 1 else x;
  !st

let prng_float st = float_of_int (prng_next st land 0xffffff) /. 16777216.0
let prng_int st bound = prng_next st mod bound

type config = {
  seed : int;
  iterations : int;
  file_len : int;
  copies : int;
  max_reply : int;
  machine : Ilp_memsim.Config.t;
  intensity : float;
  deadline_us : float;
}

let default_config =
  { seed = 1;
    iterations = 512;
    file_len = 512;
    copies = 1;
    max_reply = 256;
    machine = Ilp_memsim.Config.ss10_30;
    intensity = 1.0;
    deadline_us = 120_000_000.0 }

type outcome = {
  iterations : int;
  completed : int;
  failed : int;  (** transfers that ended with a typed error (expected under impairment) *)
  escaped_exceptions : int;  (** invariant violation: an exception crossed the stack *)
  silent_corruptions : int;
      (** invariant violation: reported success without byte-exact delivery,
          or failure with no typed error *)
  retransmissions : int;
  checksum_drops : int;
  replies_abandoned : int;
  drops : (Socket.drop_reason * int) list;
  link : Link.stats;
  pool_leaks : int;
      (** invariant violation: buffers still outstanding from any
          iteration's pool after engine teardown *)
}

let invariants_hold o =
  o.escaped_exceptions = 0 && o.silent_corruptions = 0 && o.pool_leaks = 0

let ciphers = [| Ft.Safer_simplified; Ft.Simple_encryption; Ft.Safer_full 6; Ft.Des |]

let cipher_name = function
  | Ft.Safer_simplified -> "safer-simplified"
  | Ft.Simple_encryption -> "simple"
  | Ft.Safer_full _ -> "safer-k64"
  | Ft.Des -> "des"

(* Draw one randomized impairment configuration.  Rates are scaled by
   [intensity]; every draw comes from the soak's own seeded stream, so a
   soak run is exactly reproducible from its seed. *)
let draw_impairments st ~intensity =
  (* Clamped so any intensity in Soak.run's accepted range still yields a
     valid probability. *)
  let r scale = min 1.0 (scale *. prng_float st *. intensity) in
  let gilbert =
    if prng_float st < 0.35 then
      Some
        { Link.p_enter_bad = min 1.0 (0.02 +. r 0.05);
          p_exit_bad = 0.25;
          loss_in_bad = min 1.0 (0.4 +. r 0.4) }
    else None
  in
  { Link.delay_us = 20.0 +. (80.0 *. prng_float st);
    jitter_us = (if prng_float st < 0.5 then 0.0 else 200.0 *. prng_float st);
    loss_rate = r 0.15;
    dup_rate = r 0.1;
    corrupt_rate = r 0.2;
    corrupt_bits = 1 + prng_int st 4;
    truncate_rate = r 0.06;
    pad_rate = r 0.06;
    pad_max = 12;
    delay_spike_rate = r 0.04;
    delay_spike_us = 2_000.0;
    gilbert }

(* One transfer under one impairment draw.  The soak invariant: the file
   arrives byte-exact, or the run reports a typed error — never silent
   corruption, never an escaped exception. *)
let run ?(log = fun _ -> ()) (cfg : config) =
  if cfg.iterations < 0 then invalid_arg "Soak.run: iterations must be >= 0";
  if cfg.intensity < 0.0 || cfg.intensity > 10.0 then
    invalid_arg "Soak.run: intensity must be in [0, 10]";
  if cfg.file_len <= 0 || cfg.copies <= 0 || cfg.max_reply <= 0 then
    invalid_arg "Soak.run: file_len, copies and max_reply must be positive";
  if cfg.deadline_us <= 0.0 then invalid_arg "Soak.run: deadline_us must be positive";
  let st = prng_create cfg.seed in
  let completed = ref 0
  and failed = ref 0
  and escaped = ref 0
  and silent = ref 0
  and retransmissions = ref 0
  and checksum_drops = ref 0
  and abandoned = ref 0
  and pool_leaks = ref 0 in
  let drop_totals = Array.make (List.length Socket.drop_reasons) 0 in
  let link_total = ref Link.zero_stats in
  for i = 0 to cfg.iterations - 1 do
    let mode = if i land 1 = 0 then Engine.Separate else Engine.Ilp in
    let native = (i lsr 1) land 1 = 1 in
    let cipher = ciphers.((i lsr 2) land 3) in
    let header_style = if (i lsr 4) land 1 = 0 then Engine.Leading else Engine.Trailer in
    let crc = (i lsr 5) land 1 = 1 in
    let data_path = if (i lsr 6) land 1 = 1 then Engine.Legacy else Engine.Pooled in
    let framing = (i lsr 7) land 1 = 1 in
    let imp = draw_impairments st ~intensity:cfg.intensity in
    let setup =
      { (Ft.default_setup ~machine:cfg.machine ~mode) with
        Ft.cipher;
        native;
        header_style;
        crc;
        data_path;
        framing;
        file_len = cfg.file_len;
        copies = cfg.copies;
        max_reply = cfg.max_reply;
        seed = (cfg.seed * 7919) + i;
        impairments = Some imp;
        deadline_us = cfg.deadline_us }
    in
    let tag verdict =
      Printf.sprintf "iter %4d  %-8s %-7s %-16s %-6s %-6s %-6s %s" i
        (match mode with Engine.Ilp -> "ilp" | Engine.Separate -> "separate")
        (if native then "native" else "sim")
        (cipher_name cipher)
        (if crc then "crc32" else "-")
        (match data_path with Engine.Pooled -> "pooled" | Engine.Legacy -> "legacy")
        (if framing then "framed" else "-")
        verdict
    in
    (match Ft.run setup with
    | r ->
        retransmissions := !retransmissions + r.Ft.retransmissions;
        checksum_drops := !checksum_drops + r.Ft.checksum_failures;
        abandoned := !abandoned + r.Ft.replies_abandoned;
        List.iteri
          (fun j (_, n) -> drop_totals.(j) <- drop_totals.(j) + n)
          r.Ft.drops;
        link_total := Link.add_stats !link_total r.Ft.link_stats;
        if r.Ft.pool_leaks <> 0 then begin
          pool_leaks := !pool_leaks + r.Ft.pool_leaks;
          log (tag (Printf.sprintf "POOL LEAK: %d buffers outstanding" r.Ft.pool_leaks))
        end;
        if r.Ft.ok then begin
          if r.Ft.payload_bytes <> cfg.file_len * cfg.copies then begin
            incr silent;
            log (tag "SILENT CORRUPTION: success without byte-exact delivery")
          end
          else incr completed
        end
        else begin
          match r.Ft.error with
          | Some e ->
              incr failed;
              log (tag ("failed (typed): " ^ e))
          | None ->
              incr silent;
              log (tag "SILENT FAILURE: no typed error reported")
        end
    | exception e ->
        incr escaped;
        log (tag ("ESCAPED EXCEPTION: " ^ Printexc.to_string e)))
  done;
  { iterations = cfg.iterations;
    completed = !completed;
    failed = !failed;
    escaped_exceptions = !escaped;
    silent_corruptions = !silent;
    retransmissions = !retransmissions;
    checksum_drops = !checksum_drops;
    replies_abandoned = !abandoned;
    drops =
      List.mapi (fun j r -> (r, drop_totals.(j))) Socket.drop_reasons;
    link = !link_total;
    pool_leaks = !pool_leaks }

(* ------------------------------------------------------------------ *)
(* Overload soak: many concurrent clients against one shared server *)

type persona =
  | Honest
  | Slow_reader
  | Dead_reader
  | Oversized
  | Streaming
  | Shrinking_window
  | Lying_receiver

let persona_name = function
  | Honest -> "honest"
  | Slow_reader -> "slow-reader"
  | Dead_reader -> "dead-reader"
  | Oversized -> "oversized"
  | Streaming -> "streaming"
  | Shrinking_window -> "shrink-window"
  | Lying_receiver -> "lying-recv"

(* Honest clients must complete; slow readers misbehave transiently and
   must still complete (the persist machinery recovers them); dead
   readers and oversized requesters are shed with typed outcomes.
   Streaming clients use a data connection whose MSS is smaller than one
   reply, so every reply travels as pipelined segments — and must still
   arrive byte-exact.  Shrinking-window clients yank their advertised
   window below the sender's bytes in flight mid-transfer and reopen it
   later; the clamped send window must recover them.  Lying receivers
   read honestly but their NIC forges the feedback channel (SACK blocks
   for data never sent, duplicated acks); the server must reject every
   forged block and still deliver byte-exact. *)
let persona_must_complete = function
  | Honest | Slow_reader | Streaming | Shrinking_window | Lying_receiver ->
      true
  | Dead_reader | Oversized -> false

let persona_pattern =
  [| Honest; Slow_reader; Streaming; Dead_reader; Lying_receiver; Oversized;
     Shrinking_window; Slow_reader |]

type overload_config = {
  seed : int;
  clients : int;
  file_len : int;
  machine : Ilp_memsim.Config.t;
  deadline_us : float;
}

let default_overload_config =
  { seed = 1;
    clients = 8;
    file_len = 2048;
    machine = Ilp_memsim.Config.ss10_30;
    deadline_us = 30_000_000.0 }

type overload_outcome = {
  clients : int;
  completed : int;
  typed_failures : int;
  escaped_exceptions : int;
  silent_outcomes : int;
      (** invariant violation: a client ended neither complete nor with a
          typed client- or server-side outcome *)
  honest_incomplete : int;
      (** invariant violation: an honest or slow-reader client did not
          finish byte-exact *)
  budget_violations : int;
      (** invariant violation: peak queued bytes exceeded the global cap *)
  ledger_mismatch : bool;
      (** invariant violation: sheds in the server ledger do not equal the
          typed shed outcomes the clients observed *)
  peak_queued_bytes : int;
  queue_cap : int;
  busy_replies : int;
  client_retries : int;
  persist_probes : int;
  peer_stalled_aborts : int;
  replies_abandoned : int;
  forged_acks : int;
  forged_rejections : int;
  forgery_unpunished : bool;
      (** invariant violation: a lying receiver's NIC forged feedback but
          the server neither rejected a block nor aborted the peer *)
  sheds : (Rpc_server.shed_reason * int) list;
  pool_leaks : int;
      (** invariant violation: buffers outstanding from the run's shared
          pool after every engine was destroyed *)
}

let overload_invariants_hold o =
  o.escaped_exceptions = 0 && o.silent_outcomes = 0 && o.honest_incomplete = 0
  && o.budget_violations = 0
  && (not o.ledger_mismatch)
  && (not o.forgery_unpunished)
  && o.pool_leaks = 0

type overload_client = {
  idx : int;
  persona : persona;
  client : Rpc_client.t;
  cli_data : Socket.t;
  srv_data : Socket.t;
  mutable local_refused : bool;
}

let run_overload ?(log = fun _ -> ()) ?on_clock (cfg : overload_config) =
  if cfg.clients < 1 then invalid_arg "Soak.run_overload: clients must be >= 1";
  if cfg.file_len < 64 then invalid_arg "Soak.run_overload: file_len must be >= 64";
  if cfg.deadline_us <= 0.0 then
    invalid_arg "Soak.run_overload: deadline_us must be positive";
  let max_reply = max 64 (cfg.file_len / 8) in
  let limits =
    { Rpc_server.max_connections = cfg.clients + 2;
      max_conn_queue_bytes = 2 * cfg.file_len;
      (* Tight enough that concurrent honest requests contend and the
         Busy/retry path actually runs. *)
      max_total_queue_bytes = cfg.file_len * ((cfg.clients / 4) + 1);
      max_request_age_us = 60_000_000.0 }
  in
  let empty_outcome =
    { clients = cfg.clients;
      completed = 0;
      typed_failures = 0;
      escaped_exceptions = 1;
      silent_outcomes = 0;
      honest_incomplete = 0;
      budget_violations = 0;
      ledger_mismatch = false;
      peak_queued_bytes = 0;
      queue_cap = limits.Rpc_server.max_total_queue_bytes;
      busy_replies = 0;
      client_retries = 0;
      persist_probes = 0;
      peer_stalled_aborts = 0;
      replies_abandoned = 0;
      forged_acks = 0;
      forged_rejections = 0;
      forgery_unpunished = false;
      sheds = [];
      pool_leaks = 0 }
  in
  match
    let sim = Sim.create cfg.machine in
    let clock = Simclock.create () in
    let demux = Demux.create () in
    let link = ref None in
    let wire_out d = Link.send (Option.get !link) d in
    (* The lying receivers' data ports (their acks travel cli_data ->
       srv_data); the port plan below assigns 4 consecutive ports per
       client starting at 1000, cli_data being the fourth. *)
    let liar_ports = Hashtbl.create 4 in
    for i = 0 to cfg.clients - 1 do
      if persona_pattern.(i mod Array.length persona_pattern) = Lying_receiver
      then Hashtbl.replace liar_ports (1000 + (4 * i) + 3) ()
    done;
    (* A lying receiver's NIC: every pure ack it emits gains a SACK block
       claiming data the server never sent, and goes out twice (dupack
       forgery).  Runs before the wire, so the forged bytes carry a valid
       TCP checksum — the server must reject them on semantics (block
       beyond [snd_nxt]), not syntax. *)
    let forge_ack dgram =
      if not (Hashtbl.mem liar_ports dgram.Datagram.src_port) then [ dgram ]
      else
        match Ipv4.decapsulate dgram.Datagram.payload with
        | Error _ -> [ dgram ]
        | Ok (ip, seg) -> (
            match Tcp_header.of_string seg ~pos:0 with
            | Error _ -> [ dgram ]
            | Ok h ->
                let pure_ack =
                  Tcp_header.has h Tcp_header.ack_flag
                  && (not (Tcp_header.has h Tcp_header.syn))
                  && (not (Tcp_header.has h Tcp_header.fin))
                  && (not (Tcp_header.has h Tcp_header.rst))
                  && String.length seg = Tcp_header.wire_size h
                in
                if not pure_ack then [ dgram ]
                else begin
                  let lie = h.Tcp_header.ack + 1_000_000 in
                  let h' =
                    { h with Tcp_header.sack = [ (lie, lie + 1448) ] }
                  in
                  let h' =
                    { h' with
                      Tcp_header.checksum =
                        Tcp_header.checksum h'
                          ~payload_acc:Ilp_checksum.Internet.empty
                          ~payload_len:0 }
                  in
                  let seg' = Tcp_header.to_string h' in
                  let ip' =
                    Ipv4.make ~ident:ip.Ipv4.ident ~protocol:ip.Ipv4.protocol
                      ~src:ip.Ipv4.src ~dst:ip.Ipv4.dst
                      ~payload_len:(String.length seg') ()
                  in
                  let forged =
                    Datagram.create ~src_port:dgram.Datagram.src_port
                      ~dst_port:dgram.Datagram.dst_port
                      ~payload:(Ipv4.encapsulate ip' seg')
                  in
                  [ forged; forged ]
                end)
    in
    link :=
      Some
        (Link.create clock ~delay_us:30.0 ~seed:cfg.seed ~tamper:forge_ack
           ~deliver:(Demux.deliver demux) ());
    let key = "soakOVRL" in
    (* One pool shared by the server and every client engine, and a list
       of all engines so teardown can audit pool balance for the run. *)
    let pool = Ilp_fastpath.Pool.create () in
    let engines = ref [] in
    let engine () =
      let e =
        Engine.create sim
          ~cipher:(Ilp_cipher.Safer_simplified.charged sim ~key ())
          ~mode:Engine.Ilp ~crc32:true ~pool ()
      in
      engines := e :: !engines;
      e
    in
    (* Small buffers so the reply queue holds real bytes (the budgets
       bind); a stall deadline short enough to detect dead readers within
       the run yet past the persist-backoff probe at ~635 ms of virtual
       time, so the latest slow-reader reopening is still discovered. *)
    let cfg_sock =
      { Socket.default_config with
        mss = max_reply + 256;
        send_buffer = max 1024 (cfg.file_len / 2);
        recv_window = max 1024 (cfg.file_len / 2);
        stall_deadline_us = 1_500_000.0 }
    in
    let server = Rpc_server.create ~clock ~engine:(engine ()) ~limits () in
    let file = Workload.generate ~len:cfg.file_len ~seed:3 in
    let addr = Workload.install sim file in
    Rpc_server.add_file server ~name:"soak.bin" ~addr ~len:cfg.file_len;
    (* Generous retry coverage (~1.2 s of cumulative backoff): a shed
       honest client must outlast both queue contention and the slowest
       slow-reader discovery before giving up. *)
    let retry =
      { Rpc_client.max_attempts = 40;
        base_backoff_us = 500.0;
        max_backoff_us = 30_000.0;
        deadline_us = 5_000_000.0 }
    in
    let mk ?(sock = cfg_sock) port =
      let s = Socket.create sim clock sock ~local_port:port ~wire_out in
      Demux.bind demux ~port (Socket.handle_datagram s);
      s
    in
    let world =
      List.init cfg.clients (fun i ->
          let base = 1000 + (4 * i) in
          let persona = persona_pattern.(i mod Array.length persona_pattern) in
          (* Streaming clients force segment streaming: the data MSS is
             well below one reply's wire length, so the server's replies
             go out through [Socket.send_stream] as pipelined TPDUs. *)
          let data_sock =
            match persona with
            | Streaming -> { cfg_sock with Socket.mss = 96 }
            | Honest | Slow_reader | Dead_reader | Oversized
            | Shrinking_window | Lying_receiver ->
                cfg_sock
          in
          let srv_ctrl = mk base and cli_ctrl = mk (base + 1) in
          let srv_data = mk ~sock:data_sock (base + 2)
          and cli_data = mk ~sock:data_sock (base + 3) in
          ignore (Rpc_server.attach server ~ctrl:srv_ctrl ~data:srv_data);
          (* Slow and dead readers advertise a zero receive window from
             the start; slow ones reopen later, dead ones never do. *)
          (match persona with
          | Slow_reader | Dead_reader -> Socket.set_advertised_window cli_data 0
          | Honest | Oversized | Streaming | Shrinking_window
          | Lying_receiver ->
              ());
          Socket.listen srv_ctrl;
          Socket.listen cli_data;
          Socket.connect cli_ctrl ~remote_port:base;
          Socket.connect srv_data ~remote_port:(base + 3);
          (* Streaming personas also negotiate the v2 framed receive, so
             the overload soak drives final-placement reassembly through
             small-MSS pipelining, forged feedback and window games. *)
          let client =
            Rpc_client.create ~clock ~retry ~seed:(cfg.seed + i)
              ~framed:(persona = Streaming)
              ~engine:(engine ()) ~ctrl:cli_ctrl ~data:cli_data ()
          in
          { idx = i; persona; client; cli_data; srv_data; local_refused = false })
    in
    Simclock.run_until_idle clock;
    (* The telemetry hook attaches here — after handshakes have drained
       (so a periodic sampler is not burned before the workload exists)
       and before the requests are scheduled. *)
    Option.iter (fun f -> f clock) on_clock;
    (* Stagger the requests slightly, reopen the slow readers mid-run. *)
    List.iter
      (fun c ->
        let copies = match c.persona with Oversized -> 3 | _ -> 1 in
        ignore
          (Simclock.schedule clock
             ~after:(200.0 *. float_of_int c.idx)
             (fun () ->
               match
                 Rpc_client.request_file c.client ~name:"soak.bin" ~copies
                   ~max_reply ~expected:file
               with
               | Ok () -> ()
               | Error _ -> c.local_refused <- true));
        match c.persona with
        | Slow_reader ->
            ignore
              (Simclock.schedule clock
                 ~after:(100_000.0 +. (37_000.0 *. float_of_int c.idx))
                 (fun () ->
                   Socket.set_advertised_window c.cli_data
                     cfg_sock.Socket.recv_window))
        | Shrinking_window ->
            (* Shrink below the sender's likely bytes in flight while the
               transfer is in full swing, then reopen.  The clamped
               send-window arithmetic must park the sender (no crash, no
               byte past the shrunken edge) and resume it on reopen. *)
            ignore
              (Simclock.schedule clock
                 ~after:(30_000.0 +. (11_000.0 *. float_of_int c.idx))
                 (fun () -> Socket.set_advertised_window c.cli_data 64));
            ignore
              (Simclock.schedule clock
                 ~after:(400_000.0 +. (29_000.0 *. float_of_int c.idx))
                 (fun () ->
                   Socket.set_advertised_window c.cli_data
                     cfg_sock.Socket.recv_window))
        | Honest | Dead_reader | Oversized | Streaming | Lying_receiver -> ())
      world;
    let settled c =
      c.local_refused
      || Rpc_client.transfer_complete c.client
      || Rpc_client.rejected c.client
      || Rpc_client.failure c.client <> None
      || Rpc_client.errors c.client <> []
      || Socket.failure c.srv_data <> None
    in
    let guard = ref 400_000 in
    while
      (not (List.for_all settled world))
      && Simclock.now clock < cfg.deadline_us
      && !guard > 0
    do
      decr guard;
      Simclock.advance clock 1_000.0
    done;
    Simclock.run_until_idle clock;
    let completed = ref 0
    and typed = ref 0
    and silent = ref 0
    and honest_incomplete = ref 0 in
    List.iter
      (fun c ->
        let complete =
          Rpc_client.transfer_complete c.client
          && Rpc_client.errors c.client = []
        in
        let client_typed =
          c.local_refused
          || Rpc_client.rejected c.client
          || Rpc_client.failure c.client <> None
          || Rpc_client.errors c.client <> []
        in
        let server_typed = Socket.failure c.srv_data <> None in
        let verdict =
          if complete then begin
            incr completed;
            "completed byte-exact"
          end
          else if client_typed || server_typed then begin
            incr typed;
            if client_typed then
              match Rpc_client.failure c.client with
              | Some f -> "typed: " ^ Rpc_client.failure_to_string f
              | None ->
                  if Rpc_client.rejected c.client then "typed: rejected"
                  else if c.local_refused then "typed: local refusal"
                  else "typed: " ^ String.concat "; " (Rpc_client.errors c.client)
            else
              "typed (server side): "
              ^ Socket.abort_reason_to_string
                  (Option.get (Socket.failure c.srv_data))
          end
          else begin
            incr silent;
            "SILENT: neither complete nor typed"
          end
        in
        if persona_must_complete c.persona && not complete then
          incr honest_incomplete;
        log
          (Printf.sprintf "client %2d  %-11s %s  (busy %d, retries %d)" c.idx
             (persona_name c.persona) verdict
             (Rpc_client.busy_replies c.client)
             (Rpc_client.retries c.client)))
      world;
    let busy =
      List.fold_left (fun a c -> a + Rpc_client.busy_replies c.client) 0 world
    in
    let refused =
      List.fold_left
        (fun a c -> a + if Rpc_client.rejected c.client then 1 else 0)
        0 world
    in
    let retries =
      List.fold_left (fun a c -> a + Rpc_client.retries c.client) 0 world
    in
    let probes =
      List.fold_left
        (fun a c -> a + (Socket.stats c.srv_data).Socket.persist_probes)
        0 world
    in
    let stalled =
      List.fold_left
        (fun a c ->
          a
          + if Socket.failure c.srv_data = Some Socket.Peer_stalled then 1 else 0)
        0 world
    in
    let forged_acks = (Link.stats (Option.get !link)).Link.tampered in
    (* Forged feedback must leave a trace: SACK blocks rejected by the
       server's validator, or (for optimistic-ack forgeries) a typed
       [Misbehaving_peer] abort.  Silent acceptance is the violation. *)
    let forged_rejections =
      List.fold_left
        (fun a c ->
          let s = Socket.stats c.srv_data in
          a + s.Socket.sack_invalid
          + if Socket.failure c.srv_data = Some Socket.Misbehaving_peer then 1
            else 0)
        0 world
    in
    let peak = Rpc_server.peak_queued_bytes server in
    List.iter Engine.destroy !engines;
    let pool_leaks = Ilp_fastpath.Pool.outstanding pool in
    { clients = cfg.clients;
      completed = !completed;
      typed_failures = !typed;
      escaped_exceptions = 0;
      silent_outcomes = !silent;
      honest_incomplete = !honest_incomplete;
      budget_violations =
        (if peak > limits.Rpc_server.max_total_queue_bytes then 1 else 0);
      (* Every shed must be accounted for: seen by a client as Busy or a
         refusal, or attributably lost because the shed connection itself
         died before the status could be delivered. *)
      ledger_mismatch =
        Rpc_server.sheds_total server
        <> busy + refused + Rpc_server.statuses_abandoned server;
      peak_queued_bytes = peak;
      queue_cap = limits.Rpc_server.max_total_queue_bytes;
      busy_replies = busy;
      client_retries = retries;
      persist_probes = probes;
      peer_stalled_aborts = stalled;
      replies_abandoned = Rpc_server.replies_abandoned server;
      forged_acks;
      forged_rejections;
      forgery_unpunished = forged_acks > 0 && forged_rejections = 0;
      sheds = Rpc_server.sheds server;
      pool_leaks }
  with
  | o -> o
  | exception (Invalid_argument _ as e) -> raise e
  | exception e ->
      log ("ESCAPED EXCEPTION: " ^ Printexc.to_string e);
      empty_outcome

let overload_summary_lines o =
  [ Printf.sprintf "clients               %d" o.clients;
    Printf.sprintf "byte-exact transfers  %d" o.completed;
    Printf.sprintf "typed outcomes        %d" o.typed_failures;
    Printf.sprintf "escaped exceptions    %d" o.escaped_exceptions;
    Printf.sprintf "silent outcomes       %d" o.silent_outcomes;
    Printf.sprintf "honest incomplete     %d" o.honest_incomplete;
    Printf.sprintf "queued bytes          peak %d of cap %d%s" o.peak_queued_bytes
      o.queue_cap
      (if o.budget_violations > 0 then "  VIOLATED" else "");
    Printf.sprintf "shedding              %d busy replies, %d client retries%s"
      o.busy_replies o.client_retries
      (if o.ledger_mismatch then "  LEDGER MISMATCH" else "");
    "shed ledger:          "
    ^ String.concat ", "
        (List.map
           (fun (r, n) ->
             Printf.sprintf "%s %d" (Rpc_server.shed_reason_to_string r) n)
           o.sheds);
    Printf.sprintf "zero-window           %d persist probes, %d peer-stalled aborts"
      o.persist_probes o.peer_stalled_aborts;
    Printf.sprintf "lying receivers       %d forged acks, %d rejections%s"
      o.forged_acks o.forged_rejections
      (if o.forgery_unpunished then "  UNPUNISHED" else "");
    Printf.sprintf "server                %d replies abandoned" o.replies_abandoned;
    Printf.sprintf "buffer pool           %d leaks%s" o.pool_leaks
      (if o.pool_leaks > 0 then "  VIOLATED" else "") ]

(* ------------------------------------------------------------------ *)
(* Crash soak: seeded node crash/restart faults against one transfer *)

type crash_config = {
  seed : int;
  transfers : int;
  file_len : int;
  machine : Ilp_memsim.Config.t;
  deadline_us : float;
}

let default_crash_config =
  { seed = 1;
    transfers = 64;
    file_len = 2048;
    machine = Ilp_memsim.Config.ss10_30;
    deadline_us = 30_000_000.0 }

type crash_outcome = {
  transfers : int;
  completed : int;
  resumed_completed : int;
  typed_failures : int;
  escaped_exceptions : int;
  silent_outcomes : int;
  restarts_from_zero : int;
  stale_timers : int;
  dedup_violations : int;
  crashes : int;
  resets_while_down : int;
  swallowed : int;
  keepalive_probes : int;
  reset_aborts : int;
  reconnects : int;
  resumes : int;
  dedup_hits : int;
  executions : int;
  crc_probes : int;
  pool_leaks : int;
}

let crash_invariants_hold o =
  o.escaped_exceptions = 0 && o.silent_outcomes = 0
  && o.restarts_from_zero = 0 && o.stale_timers = 0
  && o.dedup_violations = 0 && o.pool_leaks = 0

(* One transfer against a server that dies and comes back on a seeded
   schedule.  The fault-model invariant, per seed: the file arrives
   byte-exact (possibly resumed across restarts) or the client holds a
   typed failure — a crash never ends in a silent hang; a resume never
   restarts from byte zero when a verified prefix exists; the dedup
   ledger and the buffer pool balance; every crash teardown leaves zero
   owned timers on the clock. *)
let run_crash ?(log = fun _ -> ()) (cfg : crash_config) =
  if cfg.transfers < 0 then
    invalid_arg "Soak.run_crash: transfers must be >= 0";
  if cfg.file_len < 64 then
    invalid_arg "Soak.run_crash: file_len must be >= 64";
  if cfg.deadline_us <= 0.0 then
    invalid_arg "Soak.run_crash: deadline_us must be positive";
  let st = prng_create cfg.seed in
  let completed = ref 0
  and resumed_completed = ref 0
  and typed = ref 0
  and escaped = ref 0
  and silent = ref 0
  and restarts_zero = ref 0
  and stale = ref 0
  and dedup_viol = ref 0
  and crashes = ref 0
  and resets = ref 0
  and swallowed = ref 0
  and ka_probes = ref 0
  and reset_aborts = ref 0
  and reconnects = ref 0
  and resumes = ref 0
  and dedup_hits = ref 0
  and executions = ref 0
  and crc_probes = ref 0
  and pool_leaks = ref 0 in
  for i = 0 to cfg.transfers - 1 do
    let mode = if i land 1 = 0 then Engine.Ilp else Engine.Separate in
    let data_path =
      if (i lsr 1) land 1 = 0 then Engine.Pooled else Engine.Legacy
    in
    let crc = (i lsr 2) land 1 = 0 in
    let copies = if (i lsr 3) land 1 = 0 then 1 else 2 in
    let framing = (i lsr 4) land 1 = 1 in
    (* The seeded fault draw: trigger (wall-clock offsets or the Nth
       packet the server receives), downtime, crash count, and whether
       the dead address answers RST or black-holes. *)
    let on_packet = prng_float st < 0.7 in
    let trigger_n = 5 + prng_int st 10 in
    let down_us = 4_000.0 +. (26_000.0 *. prng_float st) in
    let max_crashes = 1 + prng_int st 2 in
    let rst_while_down = prng_float st < 0.5 in
    let crash_times =
      Crashplan.seeded_times
        ~seed:((cfg.seed * 8191) + i)
        ~crashes:max_crashes ~horizon_us:6_000.0
    in
    let tag verdict =
      Printf.sprintf "xfer %3d  %-8s %-6s %-6s copies %d  %-9s %-9s  %s" i
        (match mode with Engine.Ilp -> "ilp" | Engine.Separate -> "separate")
        (match data_path with
        | Engine.Pooled -> "pooled"
        | Engine.Legacy -> "legacy")
        (if framing then "framed" else "-")
        copies
        (if on_packet then Printf.sprintf "pkt %d" trigger_n else "timed")
        (if rst_while_down then "rst" else "blackhole")
        verdict
    in
    match
      let sim = Sim.create cfg.machine in
      let clock = Simclock.create () in
      let demux = Demux.create () in
      let link = ref None in
      let wire_out d = Link.send (Option.get !link) d in
      link :=
        Some
          (Link.create clock ~delay_us:40.0 ~seed:(cfg.seed + i)
             ~deliver:(Demux.deliver demux) ());
      let pool = Ilp_fastpath.Pool.create () in
      let engines = ref [] in
      let engine () =
        let e =
          Engine.create sim
            ~cipher:(Ilp_cipher.Safer_simplified.charged sim ~key:"soakCRSH" ())
            ~mode ~crc32:crc ~data_path ~pool ()
        in
        engines := e :: !engines;
        e
      in
      let max_reply = 256 in
      let cfg_sock =
        { Socket.default_config with
          mss = max_reply + 256;
          stall_deadline_us = 2_000_000.0 }
      in
      let file = Workload.generate ~len:cfg.file_len ~seed:(5 + i) in
      let addr = Workload.install sim file in
      (* The crash-surviving state: files and the dedup cache outlive
         every server instance. *)
      let store = Rpc_server.create_store () in
      let server = ref None in
      let srv_socks = ref [] in
      let probes_total = ref 0 in
      let stale_here = ref 0 in
      let kill () =
        (match !server with
        | Some s ->
            probes_total := !probes_total + Rpc_server.probes_received s;
            Rpc_server.shutdown s;
            if
              Simclock.pending_count clock ~owner:(Rpc_server.timer_owner s)
              <> 0
            then incr stale_here;
            server := None
        | None -> ());
        List.iter
          (fun s ->
            Socket.destroy s;
            if Simclock.pending_count clock ~owner:(Socket.timer_owner s) <> 0
            then incr stale_here)
          !srv_socks;
        srv_socks := []
      in
      let revive () =
        server := Some (Rpc_server.create ~clock ~engine:(engine ()) ~store ())
      in
      revive ();
      Rpc_server.add_file (Option.get !server) ~name:"crash.bin" ~addr
        ~len:cfg.file_len;
      let plan =
        Crashplan.create clock ~max_crashes
          ~schedule:
            (if on_packet then Crashplan.On_packet trigger_n
             else Crashplan.At_times crash_times)
          ~down_us
          ~behaviour:
            (if rst_while_down then
               Crashplan.Respond { reply = Socket.reset_for; send = wire_out }
             else Crashplan.Blackhole)
          ~kill ~revive ()
      in
      let all_socks = ref [] in
      let gen = ref 0 in
      (* Stand up one connection generation: fresh ports both sides, the
         server's two guarded by the crash plan, the pair attached to the
         current server instance. *)
      let establish () =
        let base = 1000 + (4 * !gen) in
        incr gen;
        let mk port = Socket.create sim clock cfg_sock ~local_port:port ~wire_out in
        let srv_ctrl = mk base and cli_ctrl = mk (base + 1) in
        let srv_data = mk (base + 2) and cli_data = mk (base + 3) in
        Demux.bind demux ~port:base
          (Crashplan.guard plan ~deliver:(Socket.handle_datagram srv_ctrl));
        Demux.bind demux ~port:(base + 2)
          (Crashplan.guard plan ~deliver:(Socket.handle_datagram srv_data));
        Demux.bind demux ~port:(base + 1) (Socket.handle_datagram cli_ctrl);
        Demux.bind demux ~port:(base + 3) (Socket.handle_datagram cli_data);
        ignore
          (Rpc_server.attach (Option.get !server) ~ctrl:srv_ctrl ~data:srv_data);
        srv_socks := [ srv_ctrl; srv_data ];
        all_socks := srv_ctrl :: cli_ctrl :: srv_data :: cli_data :: !all_socks;
        Socket.listen srv_ctrl;
        Socket.listen cli_data;
        Socket.connect cli_ctrl ~remote_port:base;
        Socket.connect srv_data ~remote_port:(base + 3);
        (cli_ctrl, cli_data)
      in
      let watch_data d =
        (* Half-open detection: a crashed-and-restarted (or still dead)
           server answers the probe with RST or stays silent; either way
           the client gets a typed abort instead of a silent hang. *)
        Socket.start_keepalive d ~interval_us:15_000.0 ~probes:3
          ~on_result:(fun _ -> ())
          ()
      in
      let c0, d0 = establish () in
      let cur = ref (c0, d0) in
      (* Framed transfers must survive crashes too: the reconnect probe
         carries the framing flag, so a restarted server frames its very
         first reply on the new connection. *)
      let client =
        Rpc_client.create ~clock ~seed:(cfg.seed + (2 * i) + 1) ~idempotent:true
          ~framed:framing ~engine:(engine ()) ~ctrl:c0 ~data:d0 ()
      in
      let hs = ref 2_000 in
      while
        (Socket.state c0 <> Socket.Established
        || Socket.state d0 <> Socket.Established)
        && Socket.failure c0 = None
        && Socket.failure d0 = None
        && !hs > 0
      do
        decr hs;
        Simclock.advance clock 100.0
      done;
      let local_refused = ref false in
      (match
         Rpc_client.request_file client ~name:"crash.bin" ~copies ~max_reply
           ~expected:file
       with
      | Ok () -> watch_data d0
      | Error _ -> local_refused := true);
      (* The recovery supervisor, run between clock steps: when the
         client holds a typed failure and the server host is back up,
         stand up a new generation and resume via Rpc_client.reconnect.
         A generation that cannot establish (the host crashed again
         mid-handshake) is torn down and retried. *)
      let max_generations = max_crashes + 4 in
      let pending = ref None in
      let retire (c, d) =
        if not (Socket.destroyed c) then Socket.destroy c;
        if not (Socket.destroyed d) then Socket.destroy d
      in
      let terminal () =
        !local_refused
        || Rpc_client.transfer_complete client
        || Rpc_client.rejected client
        || Rpc_client.errors client <> []
        || (Rpc_client.failure client <> None
           && !pending = None
           && !gen >= max_generations)
      in
      let guard_steps = ref 200_000 in
      while
        (not (terminal ()))
        && Simclock.now clock < cfg.deadline_us
        && !guard_steps > 0
      do
        decr guard_steps;
        Simclock.advance clock 500.0;
        match !pending with
        | Some ((c, d), since) ->
            if
              Socket.state c = Socket.Established
              && Socket.state d = Socket.Established
            then begin
              (match Rpc_client.reconnect client ~ctrl:c ~data:d with
              | Ok s ->
                  (match s.Rpc_client.resumed_from with
                  | Some (0, 0) when s.Rpc_client.bytes_verified > 0 ->
                      incr restarts_zero
                  | None
                    when s.Rpc_client.bytes_verified > 0
                         && not (Rpc_client.transfer_complete client) ->
                      incr restarts_zero
                  | _ -> ());
                  retire !cur;
                  cur := (c, d);
                  watch_data d
              | Error _ -> retire (c, d));
              pending := None
            end
            else if
              Socket.failure c <> None
              || Socket.failure d <> None
              || Simclock.now clock > since +. 3_000_000.0
            then begin
              retire (c, d);
              pending := None
            end
        | None ->
            if
              (not (Rpc_client.transfer_complete client))
              && Rpc_client.failure client <> None
              && Crashplan.is_up plan
              && !server <> None
              && !gen < max_generations
            then pending := Some (establish (), Simclock.now clock)
      done;
      (* Teardown: cancel the plan, flatten every endpoint, drain the
         wire, then audit the clock, the dedup ledger and the pool. *)
      Crashplan.stop plan;
      if Simclock.pending_count clock ~owner:(Crashplan.timer_owner plan) <> 0
      then incr stale_here;
      (match !server with
      | Some s ->
          probes_total := !probes_total + Rpc_server.probes_received s;
          Rpc_server.shutdown s
      | None -> ());
      List.iter
        (fun s -> if not (Socket.destroyed s) then Socket.destroy s)
        !all_socks;
      Simclock.run_until_idle clock;
      let complete =
        Rpc_client.transfer_complete client && Rpc_client.errors client = []
      in
      let client_typed =
        !local_refused
        || Rpc_client.rejected client
        || Rpc_client.failure client <> None
        || Rpc_client.errors client <> []
      in
      let verdict =
        if complete then begin
          if Rpc_client.bytes_received client <> copies * cfg.file_len then begin
            incr silent;
            "SILENT CORRUPTION: complete without byte-exact delivery"
          end
          else begin
            incr completed;
            if Rpc_client.reconnects client > 0 then begin
              incr resumed_completed;
              "completed byte-exact (resumed)"
            end
            else "completed byte-exact"
          end
        end
        else if client_typed then begin
          incr typed;
          match Rpc_client.failure client with
          | Some f -> "typed: " ^ Rpc_client.failure_to_string f
          | None ->
              if Rpc_client.rejected client then "typed: rejected"
              else if !local_refused then "typed: local refusal"
              else "typed: " ^ String.concat "; " (Rpc_client.errors client)
        end
        else begin
          incr silent;
          "SILENT: neither complete nor typed past the deadline"
        end
      in
      if
        Rpc_server.executions store + Rpc_server.dedup_hits store
        + Rpc_server.dedup_sheds store
        <> Rpc_server.id_requests_seen store
      then begin
        incr dedup_viol;
        log (tag "DEDUP LEDGER MISMATCH")
      end;
      if !stale_here > 0 then begin
        stale := !stale + !stale_here;
        log (tag (Printf.sprintf "STALE TIMERS: %d owners" !stale_here))
      end;
      crashes := !crashes + Crashplan.crashes plan;
      resets := !resets + Crashplan.resets plan;
      swallowed := !swallowed + Crashplan.swallowed plan;
      reconnects := !reconnects + Rpc_client.reconnects client;
      resumes := !resumes + Rpc_client.resumes client;
      dedup_hits := !dedup_hits + Rpc_server.dedup_hits store;
      executions := !executions + Rpc_server.executions store;
      crc_probes := !crc_probes + !probes_total;
      List.iter
        (fun s ->
          ka_probes := !ka_probes + (Socket.stats s).Socket.keepalive_probes;
          if Socket.failure s = Some Socket.Connection_reset then
            incr reset_aborts)
        !all_socks;
      List.iter Engine.destroy !engines;
      let leaked = Ilp_fastpath.Pool.outstanding pool in
      if leaked <> 0 then begin
        pool_leaks := !pool_leaks + leaked;
        log (tag (Printf.sprintf "POOL LEAK: %d buffers outstanding" leaked))
      end;
      log (tag verdict)
    with
    | () -> ()
    | exception (Invalid_argument _ as e) -> raise e
    | exception e ->
        incr escaped;
        log (tag ("ESCAPED EXCEPTION: " ^ Printexc.to_string e))
  done;
  { transfers = cfg.transfers;
    completed = !completed;
    resumed_completed = !resumed_completed;
    typed_failures = !typed;
    escaped_exceptions = !escaped;
    silent_outcomes = !silent;
    restarts_from_zero = !restarts_zero;
    stale_timers = !stale;
    dedup_violations = !dedup_viol;
    crashes = !crashes;
    resets_while_down = !resets;
    swallowed = !swallowed;
    keepalive_probes = !ka_probes;
    reset_aborts = !reset_aborts;
    reconnects = !reconnects;
    resumes = !resumes;
    dedup_hits = !dedup_hits;
    executions = !executions;
    crc_probes = !crc_probes;
    pool_leaks = !pool_leaks }

let crash_summary_lines o =
  [ Printf.sprintf "transfers             %d" o.transfers;
    Printf.sprintf "byte-exact transfers  %d (%d resumed across a restart)"
      o.completed o.resumed_completed;
    Printf.sprintf "typed outcomes        %d" o.typed_failures;
    Printf.sprintf "escaped exceptions    %d" o.escaped_exceptions;
    Printf.sprintf "silent outcomes       %d%s" o.silent_outcomes
      (if o.silent_outcomes > 0 then "  VIOLATED" else "");
    Printf.sprintf "restarts from zero    %d%s" o.restarts_from_zero
      (if o.restarts_from_zero > 0 then "  VIOLATED" else "");
    Printf.sprintf "stale timers          %d%s" o.stale_timers
      (if o.stale_timers > 0 then "  VIOLATED" else "");
    Printf.sprintf "dedup ledger          %d hits, %d executions, %d violations%s"
      o.dedup_hits o.executions o.dedup_violations
      (if o.dedup_violations > 0 then "  VIOLATED" else "");
    Printf.sprintf "crashes               %d (%d RSTs while down, %d swallowed)"
      o.crashes o.resets_while_down o.swallowed;
    Printf.sprintf "recovery              %d reconnects, %d resumes, %d CRC probes"
      o.reconnects o.resumes o.crc_probes;
    Printf.sprintf "half-open detection   %d keepalive probes, %d reset aborts"
      o.keepalive_probes o.reset_aborts;
    Printf.sprintf "buffer pool           %d leaks%s" o.pool_leaks
      (if o.pool_leaks > 0 then "  VIOLATED" else "") ]

let summary_lines o =
  let l = o.link in
  [ Printf.sprintf "iterations            %d" o.iterations;
    Printf.sprintf "byte-exact transfers  %d" o.completed;
    Printf.sprintf "typed failures        %d" o.failed;
    Printf.sprintf "escaped exceptions    %d" o.escaped_exceptions;
    Printf.sprintf "silent corruptions    %d" o.silent_corruptions;
    Printf.sprintf "wire: %d sent, %d delivered, %d lost (%d burst), %d duplicated"
      l.Link.sent l.Link.delivered l.Link.dropped l.Link.burst_dropped
      l.Link.duplicated;
    Printf.sprintf "wire: %d corrupted, %d truncated, %d padded, %d delay spikes"
      l.Link.corrupted l.Link.truncated l.Link.padded l.Link.delay_spikes;
    Printf.sprintf "tcp:  %d retransmissions, %d replies abandoned"
      o.retransmissions o.replies_abandoned;
    Printf.sprintf "pool: %d leaks%s" o.pool_leaks
      (if o.pool_leaks > 0 then "  VIOLATED" else "");
    "tcp drops: "
    ^ String.concat ", "
        (List.map
           (fun (r, n) -> Printf.sprintf "%s %d" (Socket.drop_reason_to_string r) n)
           o.drops) ]
