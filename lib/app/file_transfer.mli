(** The complete measured system: file transfer over
    marshalling/encryption/user-level TCP on a simulated workstation,
    reproducing the experiment of the paper's section 4.

    One {!run} builds a whole world — machine, memory, clock, loopback
    link, kernel demultiplexer, four TCP endpoints (a control connection
    client→server for requests and a data connection server→client for
    replies, each uni-directional as in the paper), a data-manipulation
    engine per process — transfers [copies] copies of a [file_len]-byte
    file in [max_reply]-byte messages, verifies every payload byte, and
    returns per-packet processing times plus the memory-access ledgers
    attributed to the send path, the receive path and everything else. *)

type cipher_choice =
  | Safer_simplified  (** the paper's main experiment *)
  | Simple_encryption  (** the section 4.1 comparison *)
  | Safer_full of int  (** real SAFER K-64 with this many rounds *)
  | Des  (** the "too complex to benefit" baseline *)

type setup = {
  machine : Ilp_memsim.Config.t;
  cipher : cipher_choice;
  mode : Ilp_core.Engine.mode;
  linkage : Ilp_core.Linkage.t;
  coalesce_writes : bool;  (** the section 2.2 LCM store-sizing remedy *)
  header_style : Ilp_core.Engine.header_style;
      (** leading length field (the paper's system) or the section 5
          trailer alternative *)
  rx_placement : Ilp_core.Engine.rx_placement;
      (** receive manipulations right after the system copy (the paper's
          choice) or deferred to delivery time (section 3.2.3) *)
  uniform_units : bool;
      (** widen marshalling to the cipher block (section 5's "uniform
          processing unit sizes") *)
  native : bool;
      (** run the data manipulations through the un-simulated
          {!Ilp_fastpath} kernels; wire bytes are identical but the
          simulated cycle counters only cover the protocol machinery *)
  crc : bool;
      (** enable the end-to-end CRC32 TSDU trailer on both engines
          (closes the 16-bit checksum collision hole) *)
  data_path : Ilp_core.Engine.data_path;
      (** host-side buffering discipline: [Pooled] (the default) is the
          single-copy path, [Legacy] the pre-pool per-message allocation
          baseline *)
  pool : Ilp_fastpath.Pool.t option;
      (** share a caller-owned buffer pool between both engines; [None]
          (the default) creates a fresh pool, making [pool_leaks] a
          self-contained audit *)
  framing : bool;
      (** negotiate the v2 ("Reverso") framed receive: the client flags
          its control messages, the server prefixes each reply TSDU with
          an {!Ilp_tcp.Framing} prelude, and the client's data socket
          lands out-of-order segments at their final TSDU offset; off
          (the default) keeps every wire byte identical to the unframed
          protocol *)
  file_len : int;
  copies : int;
  max_reply : int;  (** application payload bytes per message *)
  mss : int option;
      (** TCP maximum segment size: [None] (the default) sizes segments to
          the engine's maximum message so every reply is one TPDU (the
          paper's ALF shape); [Some m] caps segments at [m] wire bytes, so
          replies wider than that travel as pipelined MSS-sized segments
          through {!Ilp_tcp.Socket.send_stream} *)
  loss_rate : float;
  seed : int;
  impairments : Ilp_netsim.Link.impairments option;
      (** full adversarial wire model; [None] (the default) is the legacy
          50 us loopback with [loss_rate] applied *)
  deadline_us : float;
      (** virtual-time budget for the transfer (default 2e9 us); an
          impaired transfer that cannot finish by then reports a typed
          error *)
}

(** The paper's configuration: simplified SAFER, 15 kB file, 1 kB
    messages, 8 copies, no loss, on the given machine and mode. *)
val default_setup :
  machine:Ilp_memsim.Config.t -> mode:Ilp_core.Engine.mode -> setup

type result = {
  ok : bool;  (** transfer completed with every byte verified *)
  error : string option;
  n_replies : int;
  payload_bytes : int;  (** application bytes transferred (all copies) *)
  wire_bytes : int;  (** encrypted message bytes carried by TCP *)
  send_us : float array;
      (** per-reply send packet processing: marshal, encrypt, copy/ILP
          loop, checksum, header, and the synchronous user-to-kernel
          system copy that [tcp_output] triggers *)
  send_syscopy_us : float array;
      (** the system-copy portion of [send_us], also available alone *)
  recv_us : float array;
      (** per-reply receive packet processing (system copy, checksum,
          decrypt, unmarshal, TCP control) *)
  send_stall_us : float;
      (** total memory-system time of the send path (the paper's "atom"
          quantity) *)
  recv_stall_us : float;
  ifetch_stall_us : float;
      (** total instruction-fetch stall time (whole run) *)
  total_machine_us : float;  (** every cycle spent during the transfer *)
  send_stats : Ilp_memsim.Stats.t;  (** ledger of the send path *)
  recv_stats : Ilp_memsim.Stats.t;  (** ledger of the receive path *)
  total_stats : Ilp_memsim.Stats.t;
  retransmissions : int;
  checksum_failures : int;
  client_failure : string option;
      (** the client's typed failure (transport abort or protocol error),
          rendered; [None] on success *)
  drops : (Ilp_tcp.Socket.drop_reason * int) list;
      (** per-reason drop ledger summed over all four endpoints *)
  replies_abandoned : int;
      (** replies the server discarded because the data connection died *)
  link_stats : Ilp_netsim.Link.stats;
      (** every impairment the wire actually applied *)
  pool_leaks : int;
      (** buffers still outstanding from the run's pool after both engines
          were destroyed — must be 0 (every acquired buffer released)
          unless the caller shared its own [pool] *)
}

val run : setup -> result

(** Mean of an array (0 when empty) — convenience for reporting. *)
val mean : float array -> float
