(** Flight recorder: always-on ring of the last N significant
    per-connection events.

    Complements {!Trace} (opt-in, high-volume span tracer) with a cheap
    always-on event log aimed at post-mortems: when a soak invariant
    fails or a connection aborts, the retained tail shows what the
    connection did last — state transitions, retransmits, probes,
    resets, sheds — without having had tracing enabled in advance.

    [note] is zero-allocation on both the enabled and the disabled
    path: it is a handful of array stores (float stores into a float
    array are unboxed), and the [arg] parameter is a required labelled
    [int] precisely so no [Some] boxing sneaks in at call sites. *)

type event =
  | State            (** TCP state transition; [arg] encodes the new state *)
  | Retransmit       (** RTO retransmission *)
  | Fast_retransmit  (** triple-duplicate-ACK retransmission *)
  | Sack_retransmit  (** SACK-driven retransmission *)
  | Persist_probe    (** zero-window persist probe sent *)
  | Zero_window      (** send stalled on a zero receive window *)
  | Keepalive        (** keepalive probe sent *)
  | Rst_tx           (** RST sent *)
  | Rst_rx           (** RST received *)
  | Abort            (** connection aborted; [arg] encodes the reason *)
  | Shed             (** server shed a request; [arg] encodes the reason *)
  | Abandon          (** server abandoned queued replies for a dead conn *)
  | Retry            (** client scheduled a retry; [arg] = attempt number *)
  | Reconnect        (** client reconnected after a failure *)
  | Resume           (** client resumed a transfer after reconnect *)

val event_name : event -> string

val note : event -> conn:int -> arg:int -> ts:float -> unit
(** Record an event for connection [conn] (by convention the local TCP
    port, or 0 when no connection applies) at timestamp [ts]
    (microseconds of the component's clock).  Never allocates; callers
    with no argument to convey pass [~arg:0]. *)

val set_arg_printer : event -> (int -> string) -> unit
(** Install a decoder for an event's [arg] encoding, used by [dump].
    Components register theirs at module initialisation. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val capacity : unit -> int
val resize : int -> unit
(** Replace the ring with one of the given capacity and clear it. *)

val clear : unit -> unit
val noted : unit -> int
(** Events ever noted (including overwritten ones). *)

val count : unit -> int
(** Events currently retained. *)

val dropped : unit -> int

type entry = { event : event; conn : int; arg : int; ts : float }

val entries : ?conn:int -> unit -> entry list
(** Retained entries, oldest first, optionally filtered to one
    connection. *)

val last : conn:int -> int -> entry list
(** The last [n] retained entries for [conn], oldest first. *)

val entry_line : entry -> string

val dump : ?conn:int -> unit -> string list
(** Human-readable dump: a header line (retained/noted/dropped counts)
    followed by one line per entry. *)
