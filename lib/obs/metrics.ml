type counter = { mutable c : int }
type gauge = { mutable g : int }
type histogram = { mutable count : int; mutable sum : int; buckets : int array }

type entry = Ec of counter | Eg of gauge | Eh of histogram

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable names : string list; (* reverse registration order *)
}

let create () = { tbl = Hashtbl.create 64; names = [] }
let default = create ()

(* 63 buckets cover every non-negative OCaml int: bucket 0 is <= 0,
   bucket i >= 1 is [2^(i-1), 2^i - 1]. *)
let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let n = ref v and b = ref 0 in
    while !n > 0 do
      n := !n lsr 1;
      incr b
    done;
    !b
  end

let bucket_bounds i =
  if i < 0 || i >= n_buckets then invalid_arg "Metrics.bucket_bounds";
  if i = 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let kind_name = function
  | Ec _ -> "counter"
  | Eg _ -> "gauge"
  | Eh _ -> "histogram"

let register t name make wrap unwrap =
  match Hashtbl.find_opt t.tbl name with
  | Some e -> (
      match unwrap e with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name
               (kind_name e)))
  | None ->
      let v = make () in
      Hashtbl.add t.tbl name (wrap v);
      t.names <- name :: t.names;
      v

let counter t name =
  register t name
    (fun () -> { c = 0 })
    (fun c -> Ec c)
    (function Ec c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () -> { g = 0 })
    (fun g -> Eg g)
    (function Eg g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun () -> { count = 0; sum = 0; buckets = Array.make n_buckets 0 })
    (fun h -> Eh h)
    (function Eh h -> Some h | _ -> None)

let inc c n = c.c <- c.c + n
let counter_value c = c.c
let set g v = g.g <- v
let add_gauge g n = g.g <- g.g + n
let gauge_value g = g.g

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

(* ---- snapshots ---- *)

type hist = { count : int; sum : int; buckets : int array }

type value = Counter of int | Gauge of int | Histogram of hist

type snapshot = (string * value) list

let snapshot t =
  List.rev_map
    (fun name ->
      let v =
        match Hashtbl.find t.tbl name with
        | Ec c -> Counter c.c
        | Eg g -> Gauge g.g
        | Eh h ->
            Histogram { count = h.count; sum = h.sum; buckets = Array.copy h.buckets }
      in
      (name, v))
    t.names

let find snap name = List.assoc_opt name snap

(* Percentile estimate from a log2 histogram.  The raw observations are
   gone; we locate the bucket holding the q-th ranked one and
   interpolate linearly across the bucket's [lo, hi] span.  Exact for
   bucket 0 (a single value); within the bucket's factor-of-2 width
   otherwise.  Interpolation runs in float so the top bucket, whose
   [hi] is [max_int], cannot overflow. *)
let percentile h q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.percentile: q must be in [0, 1]";
  if h.count = 0 then 0
  else begin
    let target =
      let t = int_of_float (ceil (q *. float_of_int h.count)) in
      if t < 1 then 1 else if t > h.count then h.count else t
    in
    let rec locate i seen =
      let n = h.buckets.(i) in
      if seen + n >= target then begin
        let lo, hi = bucket_bounds i in
        let rank = target - seen in (* 1 .. n within this bucket *)
        let frac =
          if n = 1 then 0.5
          else float_of_int (rank - 1) /. float_of_int (n - 1)
        in
        (* Interpolate in float and clamp: bucket 62 spans up to
           max_int, where rounding of the span can overflow an integer
           [lo + frac * (hi - lo)]. *)
        let est = float_of_int lo +. (frac *. (float_of_int hi -. float_of_int lo)) in
        if est <= float_of_int lo then lo
        else if est >= float_of_int hi then hi
        else int_of_float est
      end
      else locate (i + 1) (seen + n)
    in
    locate 0 0
  end

let counter_diff later earlier name =
  let get s = match find s name with Some (Counter n) -> n | _ -> 0 in
  get later - get earlier

let combine_hist op a b =
  Histogram
    { count = op a.count b.count;
      sum = op a.sum b.sum;
      buckets = Array.init n_buckets (fun i -> op a.buckets.(i) b.buckets.(i)) }

(* Shared shape of [merge] and [diff]: walk [base]'s names in order,
   combining with [other] where present; [extra] appends names only in
   [other] (merge) or drops them (diff). *)
let combine ~op ~gauge_pick ~extra base other =
  let combined =
    List.map
      (fun (name, v) ->
        match (v, find other name) with
        | Counter a, Some (Counter b) -> (name, Counter (op a b))
        | Gauge a, Some (Gauge b) -> (name, Gauge (gauge_pick a b))
        | Histogram a, Some (Histogram b) -> (name, combine_hist op a b)
        | v, _ -> (name, v))
      base
  in
  if not extra then combined
  else
    combined
    @ List.filter (fun (name, _) -> find base name = None) other

let merge a b = combine ~op:( + ) ~gauge_pick:(fun _ b -> b) ~extra:true a b

let diff later earlier =
  combine ~op:( - ) ~gauge_pick:(fun a _ -> a) ~extra:false later earlier

(* ---- rendering ---- *)

let hist_buckets_line buckets =
  let b = Buffer.create 64 in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if Buffer.length b > 0 then Buffer.add_char b ' ';
        let lo, hi = bucket_bounds i in
        Buffer.add_string b (Printf.sprintf "[%d,%d]=%d" lo hi n)
      end)
    buckets;
  Buffer.contents b

let render snap =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Buffer.add_string b (Printf.sprintf "%-40s %d\n" name n)
      | Gauge n ->
          Buffer.add_string b (Printf.sprintf "%-40s %d (gauge)\n" name n)
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf "%-40s count=%d sum=%d\n" name h.count h.sum);
          if h.count > 0 then
            Buffer.add_string b ("  " ^ hist_buckets_line h.buckets ^ "\n"))
    snap;
  Buffer.contents b

let to_json snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      match v with
      | Counter n -> Buffer.add_string b (Printf.sprintf "\"%s\": %d" name n)
      | Gauge n -> Buffer.add_string b (Printf.sprintf "\"%s\": %d" name n)
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf "\"%s\": {\"count\": %d, \"sum\": %d, \"buckets\": {"
               name h.count h.sum);
          let first = ref true in
          Array.iteri
            (fun i n ->
              if n > 0 then begin
                if not !first then Buffer.add_string b ", ";
                first := false;
                let lo, _ = bucket_bounds i in
                Buffer.add_string b (Printf.sprintf "\"%d\": %d" lo n)
              end)
            h.buckets;
          Buffer.add_string b "}}")
    snap;
  Buffer.add_string b "}";
  Buffer.contents b

let reset t =
  Hashtbl.iter
    (fun _ e ->
      match e with
      | Ec c -> c.c <- 0
      | Eg g -> g.g <- 0
      | Eh h ->
          h.count <- 0;
          h.sum <- 0;
          Array.fill h.buckets 0 n_buckets 0)
    t.tbl
