type stage =
  | Send_marshal
  | Send_encrypt
  | Send_checksum
  | Send_ring_copy
  | Send_link
  | Recv_checksum
  | Recv_decrypt
  | Recv_unmarshal
  | Tcp_retransmit
  | Tcp_persist_probe
  | Tcp_zero_window
  | Tcp_abort
  | Tcp_segment
  | Tcp_ack
  | Tcp_sack
  | Tcp_sack_rexmit
  | Rpc_shed
  | Rpc_abandon
  | Tcp_rst
  | Tcp_keepalive

let all_stages =
  [ Send_marshal; Send_encrypt; Send_checksum; Send_ring_copy; Send_link;
    Recv_checksum; Recv_decrypt; Recv_unmarshal; Tcp_retransmit;
    Tcp_persist_probe; Tcp_zero_window; Tcp_abort; Tcp_segment; Tcp_ack;
    Tcp_sack; Tcp_sack_rexmit; Rpc_shed; Rpc_abandon; Tcp_rst; Tcp_keepalive ]

let stage_index = function
  | Send_marshal -> 0
  | Send_encrypt -> 1
  | Send_checksum -> 2
  | Send_ring_copy -> 3
  | Send_link -> 4
  | Recv_checksum -> 5
  | Recv_decrypt -> 6
  | Recv_unmarshal -> 7
  | Tcp_retransmit -> 8
  | Tcp_persist_probe -> 9
  | Tcp_zero_window -> 10
  | Tcp_abort -> 11
  | Tcp_segment -> 12
  | Tcp_ack -> 13
  | Tcp_sack -> 14
  | Tcp_sack_rexmit -> 15
  | Rpc_shed -> 16
  | Rpc_abandon -> 17
  | Tcp_rst -> 18
  | Tcp_keepalive -> 19

let stage_of_index = Array.of_list all_stages

let stage_name = function
  | Send_marshal -> "marshal"
  | Send_encrypt -> "encrypt"
  | Send_checksum -> "checksum"
  | Send_ring_copy -> "ring-copy"
  | Send_link -> "link"
  | Recv_checksum -> "checksum"
  | Recv_decrypt -> "decrypt"
  | Recv_unmarshal -> "unmarshal"
  | Tcp_retransmit -> "retransmit"
  | Tcp_persist_probe -> "persist-probe"
  | Tcp_zero_window -> "zero-window"
  | Tcp_abort -> "abort"
  | Tcp_segment -> "segment"
  | Tcp_ack -> "ack"
  | Tcp_sack -> "sack"
  | Tcp_sack_rexmit -> "sack-rexmit"
  | Rpc_shed -> "shed"
  | Rpc_abandon -> "abandon"
  | Tcp_rst -> "rst"
  | Tcp_keepalive -> "keepalive"

let stage_cat = function
  | Send_marshal | Send_encrypt | Send_checksum | Send_ring_copy | Send_link ->
      "send"
  | Recv_checksum | Recv_decrypt | Recv_unmarshal -> "recv"
  | Tcp_retransmit | Tcp_persist_probe | Tcp_zero_window | Tcp_abort
  | Tcp_segment | Tcp_ack | Tcp_sack | Tcp_sack_rexmit | Tcp_rst
  | Tcp_keepalive ->
      "tcp"
  | Rpc_shed | Rpc_abandon -> "rpc"

(* Chrome thread lane per category so the four event families render as
   separate rows. *)
let cat_tid = function "send" -> 1 | "recv" -> 2 | "tcp" -> 3 | _ -> 4

(* ---- the ring ----

   Parallel preallocated arrays; [next] is the next write slot, [total]
   the number of events ever recorded.  Recording is a few array stores
   (float stores into a float array are unboxed), so the enabled path
   does not allocate either. *)

let on = ref false
let cap = ref 0
let r_stage = ref [||]
let r_packet = ref [||]
let r_arg = ref [||]
let r_kind = ref [||] (* 0 = span, 1 = instant *)
let r_ts = ref (Array.make 0 0.0)
let r_dur = ref (Array.make 0 0.0)
let next = ref 0
let total = ref 0
let packet_seq = ref 0
let cur_packet = ref 0

let enabled () = !on
let capacity () = !cap

let clear () =
  next := 0;
  total := 0;
  packet_seq := 0;
  cur_packet := 0

let enable ?(capacity = 16384) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be positive";
  if capacity <> !cap then begin
    cap := capacity;
    r_stage := Array.make capacity 0;
    r_packet := Array.make capacity 0;
    r_arg := Array.make capacity 0;
    r_kind := Array.make capacity 0;
    r_ts := Array.make capacity 0.0;
    r_dur := Array.make capacity 0.0
  end;
  clear ();
  on := true

let disable () = on := false

let begin_packet () =
  if not !on then 0
  else begin
    incr packet_seq;
    cur_packet := !packet_seq;
    !packet_seq
  end

let current_packet () = !cur_packet

let record stage ~packet ~ts ~dur ~arg ~kind =
  let i = !next in
  !r_stage.(i) <- stage_index stage;
  !r_packet.(i) <- packet;
  !r_arg.(i) <- arg;
  !r_kind.(i) <- kind;
  !r_ts.(i) <- ts;
  !r_dur.(i) <- dur;
  next := if i + 1 = !cap then 0 else i + 1;
  incr total

let span ?(arg = 0) stage ~packet ~ts ~dur =
  if !on then record stage ~packet ~ts ~dur ~arg ~kind:0

let instant ?(arg = 0) stage ~packet ~ts =
  if !on then record stage ~packet ~ts ~dur:0.0 ~arg ~kind:1

let clock = ref (fun () -> 0.0)
let set_clock f = clock := f
let now () = !clock ()

(* ---- reading ---- *)

type span_rec = {
  stage : stage;
  packet : int;
  ts : float;
  dur : float;
  arg : int;
  is_instant : bool;
}

let recorded () = !total
let count () = min !total !cap
let dropped () = !total - count ()

let nth_oldest i =
  (* index into the ring of the i-th oldest retained event *)
  let oldest = if !total <= !cap then 0 else !next in
  (oldest + i) mod !cap

let spans () =
  let n = count () in
  List.init n (fun i ->
      let j = nth_oldest i in
      { stage = stage_of_index.(!r_stage.(j));
        packet = !r_packet.(j);
        ts = !r_ts.(j);
        dur = !r_dur.(j);
        arg = !r_arg.(j);
        is_instant = !r_kind.(j) = 1 })

let to_chrome_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let n = count () in
  for i = 0 to n - 1 do
    let j = nth_oldest i in
    if i > 0 then Buffer.add_string b ",\n";
    let stage = stage_of_index.(!r_stage.(j)) in
    let cat = stage_cat stage in
    if !r_kind.(j) = 1 then
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"s\": \"g\", \
            \"ts\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": {\"packet\": %d, \
            \"arg\": %d}}"
           (stage_name stage) cat !r_ts.(j) (cat_tid cat) !r_packet.(j)
           !r_arg.(j))
    else
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \
            \"dur\": %.3f, \"pid\": 1, \"tid\": %d, \"args\": {\"packet\": %d, \
            \"fused\": %d}}"
           (stage_name stage) cat !r_ts.(j) !r_dur.(j) (cat_tid cat)
           !r_packet.(j) !r_arg.(j))
  done;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let timeline ?tail () =
  let lines =
    List.map
      (fun s ->
        if s.is_instant then
          Printf.sprintf "pkt %-5d %-4s %-13s ts %12.3f            arg=%d"
            s.packet (stage_cat s.stage) (stage_name s.stage) s.ts s.arg
        else
          Printf.sprintf
            "pkt %-5d %-4s %-13s ts %12.3f dur %9.3f%s" s.packet
            (stage_cat s.stage) (stage_name s.stage) s.ts s.dur
            (if s.arg = 1 then " (fused)" else ""))
      (spans ())
  in
  match tail with
  | None -> lines
  | Some k ->
      let n = List.length lines in
      if n <= k then lines else List.filteri (fun i _ -> i >= n - k) lines
