(** Typed metrics registry: counters, gauges and log2-bucketed histograms.

    One process-wide registry ([default]) unifies the bespoke ledgers kept
    by [Link], [Tcp.Socket], [Rpc.Server], [Pool] and [Memtraffic].  Each
    component registers its instruments once at module initialisation and
    bumps them alongside its existing mutable record, so the historical
    public stats accessors keep working while [snapshot]/[render] expose a
    single unified surface.

    Instruments are monotonic for the life of the process (counters and
    histograms only ever grow; [reset] exists for tests).  Callers that
    want per-run figures take a snapshot before and after and [diff]. *)

type t
(** A registry. *)

type counter
(** Monotonically increasing integer. [inc] never allocates. *)

type gauge
(** Point-in-time integer level; [set]/[add] overwrite or adjust it. *)

type histogram
(** Fixed log2 buckets: bucket 0 holds values [<= 0]; bucket [i >= 1]
    holds values in [[2^(i-1), 2^i - 1]].  [observe] never allocates. *)

val create : unit -> t
val default : t
(** The process-wide registry used by all stack components. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram
(** Find-or-create by name.  Raises [Invalid_argument] if the name is
    already registered as a different instrument kind. *)

val inc : counter -> int -> unit
val counter_value : counter -> int
val set : gauge -> int -> unit
val add_gauge : gauge -> int -> unit
val gauge_value : gauge -> int
val observe : histogram -> int -> unit

val n_buckets : int
val bucket_of : int -> int
(** Bucket index a value falls into. *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] range of a bucket. *)

(* ---- snapshots ---- *)

type hist = { count : int; sum : int; buckets : int array }

type value = Counter of int | Gauge of int | Histogram of hist

type snapshot = (string * value) list
(** Registration order; stable across snapshots of the same registry. *)

val snapshot : t -> snapshot
val find : snapshot -> string -> value option
val percentile : hist -> float -> int
(** [percentile h q] estimates the [q]-quantile ([0.0 <= q <= 1.0]) of
    the observations recorded in [h]: the bucket holding the q-th
    ranked observation is located and the estimate interpolated
    linearly across its [(lo, hi)] span.  Returns [0] for an empty
    histogram.  Raises [Invalid_argument] if [q] is out of range. *)

val counter_diff : snapshot -> snapshot -> string -> int
(** [counter_diff later earlier name]: delta of a counter between two
    snapshots; a name absent from a snapshot counts as 0. *)

val merge : snapshot -> snapshot -> snapshot
(** Counters and histograms add; for gauges the second snapshot wins.
    Names keep the first snapshot's order, new names append. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: counters and histograms subtract, gauges keep
    the later value.  Names ordered as in [later]. *)

val render : snapshot -> string
(** Stable plain-text rendering, one instrument per line (histograms add
    an indented bucket line when non-empty). *)

val to_json : snapshot -> string
(** Hand-rolled JSON object keyed by instrument name. *)

val reset : t -> unit
(** Zero every instrument (registrations survive).  Test use only. *)
