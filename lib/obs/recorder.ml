(* Flight recorder: an always-on ring of the last N significant
   connection events (state transitions, retransmits, aborts, sheds,
   resets).  Unlike [Trace] — which is an opt-in, high-volume span
   tracer — the recorder is cheap enough to leave enabled everywhere:
   noting an event is four array stores and two integer bumps, with no
   allocation on either the enabled or disabled path.  When a soak
   invariant fails or a connection aborts, [dump] turns the retained
   tail into a self-contained post-mortem. *)

type event =
  | State
  | Retransmit
  | Fast_retransmit
  | Sack_retransmit
  | Persist_probe
  | Zero_window
  | Keepalive
  | Rst_tx
  | Rst_rx
  | Abort
  | Shed
  | Abandon
  | Retry
  | Reconnect
  | Resume

let all_events =
  [ State; Retransmit; Fast_retransmit; Sack_retransmit; Persist_probe;
    Zero_window; Keepalive; Rst_tx; Rst_rx; Abort; Shed; Abandon; Retry;
    Reconnect; Resume ]

let event_index = function
  | State -> 0
  | Retransmit -> 1
  | Fast_retransmit -> 2
  | Sack_retransmit -> 3
  | Persist_probe -> 4
  | Zero_window -> 5
  | Keepalive -> 6
  | Rst_tx -> 7
  | Rst_rx -> 8
  | Abort -> 9
  | Shed -> 10
  | Abandon -> 11
  | Retry -> 12
  | Reconnect -> 13
  | Resume -> 14

let n_events = List.length all_events
let event_of_index = Array.of_list all_events

let event_name = function
  | State -> "state"
  | Retransmit -> "retransmit"
  | Fast_retransmit -> "fast-rexmit"
  | Sack_retransmit -> "sack-rexmit"
  | Persist_probe -> "persist-probe"
  | Zero_window -> "zero-window"
  | Keepalive -> "keepalive"
  | Rst_tx -> "rst-tx"
  | Rst_rx -> "rst-rx"
  | Abort -> "abort"
  | Shed -> "shed"
  | Abandon -> "abandon"
  | Retry -> "retry"
  | Reconnect -> "reconnect"
  | Resume -> "resume"

(* Components install decoders for their [arg] encodings at module
   initialisation (e.g. TCP state numbers, shed-reason indices), so the
   recorder itself stays dependency-free. *)
let arg_printers : (int -> string) option array = Array.make n_events None
let set_arg_printer ev f = arg_printers.(event_index ev) <- Some f

let arg_string ev arg =
  match arg_printers.(event_index ev) with
  | Some f -> f arg
  | None -> if arg = 0 then "" else string_of_int arg

(* ---- the ring ----

   Same idiom as [Trace]: parallel preallocated arrays, [next] is the
   write slot, [total] counts events ever noted.  Float stores into a
   float array are unboxed, so [note] never allocates. *)

let default_capacity = 4096

let on = ref true
let cap = ref default_capacity
let r_event = ref (Array.make default_capacity 0)
let r_conn = ref (Array.make default_capacity 0)
let r_arg = ref (Array.make default_capacity 0)
let r_ts = ref (Array.make default_capacity 0.0)
let next = ref 0
let total = ref 0

let enabled () = !on
let capacity () = !cap
let enable () = on := true
let disable () = on := false

let clear () =
  next := 0;
  total := 0

let resize capacity =
  if capacity < 1 then invalid_arg "Recorder.resize: capacity must be positive";
  if capacity <> !cap then begin
    cap := capacity;
    r_event := Array.make capacity 0;
    r_conn := Array.make capacity 0;
    r_arg := Array.make capacity 0;
    r_ts := Array.make capacity 0.0
  end;
  clear ()

let note ev ~conn ~arg ~ts =
  if !on then begin
    let i = !next in
    !r_event.(i) <- event_index ev;
    !r_conn.(i) <- conn;
    !r_arg.(i) <- arg;
    !r_ts.(i) <- ts;
    next := if i + 1 = !cap then 0 else i + 1;
    incr total
  end

(* ---- reading ---- *)

type entry = { event : event; conn : int; arg : int; ts : float }

let noted () = !total
let count () = min !total !cap
let dropped () = !total - count ()

let nth_oldest i =
  let oldest = if !total <= !cap then 0 else !next in
  (oldest + i) mod !cap

let entries ?conn () =
  let n = count () in
  let all =
    List.init n (fun i ->
        let j = nth_oldest i in
        { event = event_of_index.(!r_event.(j));
          conn = !r_conn.(j);
          arg = !r_arg.(j);
          ts = !r_ts.(j) })
  in
  match conn with
  | None -> all
  | Some c -> List.filter (fun e -> e.conn = c) all

let last ~conn n =
  let es = entries ~conn () in
  let len = List.length es in
  if len <= n then es else List.filteri (fun i _ -> i >= len - n) es

let entry_line e =
  let arg = arg_string e.event e.arg in
  Printf.sprintf "conn %-5d ts %12.1f  %-13s %s" e.conn e.ts
    (event_name e.event) arg

let dump ?conn () =
  let es = entries ?conn () in
  let header =
    Printf.sprintf "flight recorder: %d retained / %d noted (%d dropped)%s"
      (count ()) (noted ()) (dropped ())
      (match conn with
      | None -> ""
      | Some c -> Printf.sprintf ", filtered to conn %d" c)
  in
  header :: List.map entry_line es
