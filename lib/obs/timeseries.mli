(** Time-series sampler over a {!Metrics} registry.

    A sampler owns a preallocated ring of sample slots.  A component
    with a clock (the telemetry runner attaches one to the overload
    soak's [Simclock]) calls [sample] at a fixed virtual-time interval;
    each call refreshes the SLO percentile gauges and breach counters
    first — so the stored snapshot includes them — then snapshots the
    whole registry into the ring.  Rates, percentile series, sparkline
    dashboards and JSON are derived lazily at read time.

    Sampling allocates (a snapshot is a list); the zero-allocation
    guarantee of the observability layer applies to the instruments
    being sampled ({!Metrics}, {!Trace}, {!Recorder}), not to taking a
    sample.  A sampler that is never invoked costs nothing. *)

type slo = {
  slo_hist : string;  (** name of the latency histogram to gate on *)
  slo_percentile : float;  (** e.g. [0.99] *)
  slo_limit : int;  (** inclusive upper bound for the percentile *)
}

type t

val create :
  ?capacity:int -> ?slos:slo list -> ?interval_us:float -> Metrics.t -> t
(** Capture the base snapshot of [registry] and allocate the sample
    ring.  Defaults: [capacity = 512] samples, no SLOs, nominal
    [interval_us = 50_000.].  The interval is advisory — [sample] is
    driven externally — but is used to derive the rate of the first
    sample and reported in the JSON export. *)

val sample : t -> now:float -> unit
(** Take one sample at timestamp [now] (microseconds): refresh SLO
    gauges ([<hist>.p50/.p90/.p99] plus the SLO's own quantile) and
    breach counters ([<hist>.slo_breaches]), then snapshot the registry
    into the ring, overwriting the oldest slot when full. *)

val interval_us : t -> float
val capacity : t -> int
val taken : t -> int
(** Samples ever taken (including overwritten ones). *)

val count : t -> int
(** Samples currently retained. *)

val base : t -> Metrics.snapshot
val slos : t -> slo list
val samples : t -> (float * Metrics.snapshot) list
(** Retained [(ts_us, snapshot)] pairs, oldest first. *)

val slo_gauge_name : slo -> string
(** e.g. ["rpc.latency_us.p99"]. *)

val slo_breach_name : slo -> string

val breaches : t -> (slo * int) list
(** Per-SLO breach counts as of the latest sample. *)

val total_breaches : t -> int

val delta_sum : t -> string -> int
(** Sum of consecutive per-sample deltas of a counter (base to first
    sample, then sample to sample).  The conservation property tested
    in [test_obs] is [base + delta_sum t name = final registry value]
    once a final sample has been taken. *)

val counter_names : t -> string list
(** Counter names present in the latest sample. *)

val rates : t -> string -> float array
(** Per-sample rate (events per second of sampled time) of a counter,
    derived from consecutive deltas. *)

val sparkline : float array -> string
(** Unicode sparkline of the values, scaled to their min..max range. *)

val dashboard : ?width:int -> t -> string list
(** Text dashboard: one sparkline per active instrument (counters as
    rates, gauges as levels, histograms as p50/p90/p99 series) plus one
    verdict line per SLO.  [width] caps the number of points shown
    (most recent kept; default 60). *)

val to_json : t -> string
(** Hand-rolled JSON export: sample timestamps, per-instrument series
    (counters with cumulative values and rates, gauges, histogram
    percentile tracks) and SLO verdicts. *)
