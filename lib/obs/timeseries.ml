(* Time-series sampler over a [Metrics] registry.

   A sampler owns a preallocated ring of sample slots; something with a
   clock (a soak harness, the telemetry runner) calls [sample] at a
   fixed virtual-time interval.  Each sample first refreshes the SLO
   percentile gauges and breach counters — so the stored snapshot
   includes them — then snapshots the whole registry into the ring.
   Derivations (counter rates, histogram percentiles, sparklines, JSON)
   happen only at read time. *)

module M = Metrics

type slo = { slo_hist : string; slo_percentile : float; slo_limit : int }

type t = {
  registry : M.t;
  interval_us : float;
  capacity : int;
  slos : slo list;
  base : M.snapshot;
  s_ts : float array;
  s_snap : M.snapshot array;
  mutable next : int;
  mutable taken : int;
}

let percentile_suffix q =
  (* 0.5 -> "p50", 0.99 -> "p99", 0.999 -> "p99.9" *)
  let pct = q *. 100.0 in
  if Float.is_integer pct then Printf.sprintf "p%.0f" pct
  else Printf.sprintf "p%g" pct

let slo_gauge_name s = s.slo_hist ^ "." ^ percentile_suffix s.slo_percentile
let slo_breach_name s = s.slo_hist ^ ".slo_breaches"

let create ?(capacity = 512) ?(slos = []) ?(interval_us = 50_000.0) registry =
  if capacity < 1 then
    invalid_arg "Timeseries.create: capacity must be positive";
  if interval_us <= 0.0 then
    invalid_arg "Timeseries.create: interval_us must be positive";
  { registry;
    interval_us;
    capacity;
    slos;
    base = M.snapshot registry;
    s_ts = Array.make capacity 0.0;
    s_snap = Array.make capacity [];
    next = 0;
    taken = 0 }

let interval_us t = t.interval_us
let capacity t = t.capacity
let taken t = t.taken
let count t = min t.taken t.capacity
let base t = t.base
let slos t = t.slos

(* The standard dashboard percentiles; SLO-specific quantiles are added
   on top when an SLO names one outside this set. *)
let dashboard_quantiles = [ 0.50; 0.90; 0.99 ]

let refresh_slo_instruments t =
  if t.slos <> [] then begin
    let snap = M.snapshot t.registry in
    List.iter
      (fun s ->
        match M.find snap s.slo_hist with
        | Some (M.Histogram h) ->
            List.iter
              (fun q ->
                let name = s.slo_hist ^ "." ^ percentile_suffix q in
                M.set (M.gauge t.registry name) (M.percentile h q))
              (if List.mem s.slo_percentile dashboard_quantiles then
                 dashboard_quantiles
               else s.slo_percentile :: dashboard_quantiles);
            let p = M.percentile h s.slo_percentile in
            if h.M.count > 0 && p > s.slo_limit then
              M.inc (M.counter t.registry (slo_breach_name s)) 1
            else ignore (M.counter t.registry (slo_breach_name s))
        | _ ->
            (* Histogram not registered yet (no observations): still
               materialise the instruments so snapshots are stable. *)
            List.iter
              (fun q ->
                ignore
                  (M.gauge t.registry (s.slo_hist ^ "." ^ percentile_suffix q)))
              dashboard_quantiles;
            ignore (M.counter t.registry (slo_breach_name s)))
      t.slos
  end

let sample t ~now =
  refresh_slo_instruments t;
  let i = t.next in
  t.s_ts.(i) <- now;
  t.s_snap.(i) <- M.snapshot t.registry;
  t.next <- (if i + 1 = t.capacity then 0 else i + 1);
  t.taken <- t.taken + 1

let nth_oldest t i =
  let oldest = if t.taken <= t.capacity then 0 else t.next in
  (oldest + i) mod t.capacity

let samples t =
  List.init (count t) (fun i ->
      let j = nth_oldest t i in
      (t.s_ts.(j), t.s_snap.(j)))

(* Sum of consecutive counter deltas (base -> s1 -> ... -> sN).  By
   telescoping this equals [last - base] when no sample was corrupted;
   the conservation tests assert [base + delta_sum = final registry
   value]. *)
let delta_sum t name =
  let ss = samples t in
  let rec go prev acc = function
    | [] -> acc
    | (_, snap) :: rest ->
        go snap (acc + M.counter_diff snap prev name) rest
  in
  go t.base 0 ss

let counter_names t =
  match samples t with
  | [] -> []
  | ss ->
      let _, last = List.nth ss (List.length ss - 1) in
      List.filter_map
        (fun (name, v) -> match v with M.Counter _ -> Some name | _ -> None)
        last

let breaches t =
  List.map
    (fun s ->
      let n =
        match samples t with
        | [] -> 0
        | ss ->
            let _, last = List.nth ss (List.length ss - 1) in
            (match M.find last (slo_breach_name s) with
            | Some (M.Counter n) -> n
            | _ -> 0)
      in
      (s, n))
    t.slos

let total_breaches t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (breaches t)

(* ---- derived series ---- *)

(* A series is the per-sample evolution of one scalar: counters as
   cumulative values plus rates per second, gauges as levels,
   histograms as the dashboard percentiles of the cumulative
   distribution at each sample. *)

let counter_at snap name =
  match M.find snap name with Some (M.Counter n) -> n | _ -> 0

let gauge_at snap name =
  match M.find snap name with Some (M.Gauge n) -> n | _ -> 0

let hist_at snap name =
  match M.find snap name with Some (M.Histogram h) -> Some h | _ -> None

let rates t name =
  let ss = Array.of_list (samples t) in
  let n = Array.length ss in
  Array.init n (fun i ->
      let prev_ts, prev_snap =
        if i = 0 then
          (* base snapshot has no timestamp; assume one interval *)
          (fst ss.(0) -. t.interval_us, t.base)
        else ss.(i - 1)
      in
      let ts, snap = ss.(i) in
      let dt_s = (ts -. prev_ts) /. 1_000_000.0 in
      if dt_s <= 0.0 then 0.0
      else
        float_of_int (counter_at snap name - counter_at prev_snap name)
        /. dt_s)

(* ---- sparklines ---- *)

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  let n = Array.length values in
  if n = 0 then ""
  else begin
    let lo = Array.fold_left min values.(0) values in
    let hi = Array.fold_left max values.(0) values in
    let b = Buffer.create (n * 3) in
    Array.iter
      (fun v ->
        let level =
          if hi <= lo then 0
          else
            let f = (v -. lo) /. (hi -. lo) in
            let l = int_of_float (f *. 7.0 +. 0.5) in
            if l < 0 then 0 else if l > 7 then 7 else l
        in
        Buffer.add_string b spark_levels.(level))
      values;
    Buffer.contents b
  end

let dashboard ?(width = 60) t =
  let ss = samples t in
  match ss with
  | [] -> [ "timeseries: no samples" ]
  | _ ->
      let ss_arr = Array.of_list ss in
      let n = Array.length ss_arr in
      let _, last = ss_arr.(n - 1) in
      let first_ts = fst ss_arr.(0) and last_ts = fst ss_arr.(n - 1) in
      let condense values =
        (* Squeeze the whole run into [width] columns, keeping the max
           of each bucket so short bursts survive the downsampling. *)
        let len = Array.length values in
        if len <= width then values
        else
          Array.init width (fun i ->
              let lo = i * len / width and hi = (i + 1) * len / width in
              let m = ref values.(lo) in
              for j = lo + 1 to hi - 1 do
                if values.(j) > !m then m := values.(j)
              done;
              !m)
      in
      (* Gauges like [rpc.latency_us.p99] are derived from a histogram
         by the SLO refresh; the histogram branch already renders those
         tracks, so skip the duplicate gauge rows. *)
      let derived_from_hist name =
        match String.rindex_opt name '.' with
        | Some i when i + 1 < String.length name && name.[i + 1] = 'p' -> (
            match M.find last (String.sub name 0 i) with
            | Some (M.Histogram _) -> true
            | _ -> false)
        | _ -> false
      in
      let header =
        Printf.sprintf
          "timeseries: %d samples (%d taken) every %.0f us, ts %.0f..%.0f us"
          n t.taken t.interval_us first_ts last_ts
      in
      let lines = ref [] in
      let add line = lines := line :: !lines in
      (* counters as rates *)
      List.iter
        (fun (name, v) ->
          match v with
          | M.Counter total when total - counter_at t.base name > 0 ->
              let r = rates t name in
              let peak = Array.fold_left max 0.0 r in
              add
                (Printf.sprintf "%-38s %s  peak %.0f/s, total %d" name
                   (sparkline (condense r)) peak total)
          | M.Gauge _ when not (derived_from_hist name) ->
              let values =
                condense
                  (Array.map
                     (fun (_, snap) -> float_of_int (gauge_at snap name))
                     ss_arr)
              in
              let any = Array.exists (fun v -> v <> 0.0) values in
              if any then
                add
                  (Printf.sprintf "%-38s %s  last %d" name (sparkline values)
                     (gauge_at last name))
          | M.Histogram h when h.M.count > 0 ->
              List.iter
                (fun q ->
                  let values =
                    condense
                      (Array.map
                         (fun (_, snap) ->
                           match hist_at snap name with
                           | Some h -> float_of_int (M.percentile h q)
                           | None -> 0.0)
                         ss_arr)
                  in
                  add
                    (Printf.sprintf "%-38s %s  last %d"
                       (name ^ "." ^ percentile_suffix q) (sparkline values)
                       (match hist_at last name with
                       | Some h -> M.percentile h q
                       | None -> 0)))
                dashboard_quantiles
          | _ -> ())
        last;
      (* SLO verdicts *)
      List.iter
        (fun (s, n) ->
          add
            (Printf.sprintf "slo %-34s %s <= %d: %s" (slo_gauge_name s)
               (percentile_suffix s.slo_percentile) s.slo_limit
               (if n = 0 then "ok" else Printf.sprintf "%d breaches" n)))
        (breaches t);
      header :: List.rev !lines

(* ---- JSON export ---- *)

let add_float_array b values =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" v)
      else Buffer.add_string b (Printf.sprintf "%.3f" v))
    values;
  Buffer.add_char b ']'

let add_int_array b values =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (string_of_int v))
    values;
  Buffer.add_char b ']'

let to_json t =
  let ss = Array.of_list (samples t) in
  let n = Array.length ss in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"interval_us\": %.0f,\n  \"samples\": %d,\n  \"taken\": %d,\n"
       t.interval_us n t.taken);
  Buffer.add_string b "  \"ts_us\": ";
  add_float_array b (Array.map fst ss);
  Buffer.add_string b ",\n  \"series\": {";
  let last = if n = 0 then [] else snd ss.(n - 1) in
  let first_series = ref true in
  let sep () =
    if !first_series then first_series := false else Buffer.add_char b ',';
    Buffer.add_string b "\n    "
  in
  List.iter
    (fun (name, v) ->
      match v with
      | M.Counter _ ->
          sep ();
          Buffer.add_string b
            (Printf.sprintf "\"%s\": {\"kind\": \"counter\", \"values\": " name);
          add_int_array b (Array.map (fun (_, s) -> counter_at s name) ss);
          Buffer.add_string b ", \"rate_per_s\": ";
          add_float_array b (rates t name);
          Buffer.add_char b '}'
      | M.Gauge _ ->
          sep ();
          Buffer.add_string b
            (Printf.sprintf "\"%s\": {\"kind\": \"gauge\", \"values\": " name);
          add_int_array b (Array.map (fun (_, s) -> gauge_at s name) ss);
          Buffer.add_char b '}'
      | M.Histogram _ ->
          sep ();
          Buffer.add_string b
            (Printf.sprintf "\"%s\": {\"kind\": \"histogram\"" name);
          List.iter
            (fun q ->
              Buffer.add_string b
                (Printf.sprintf ", \"%s\": " (percentile_suffix q));
              add_int_array b
                (Array.map
                   (fun (_, s) ->
                     match hist_at s name with
                     | Some h -> M.percentile h q
                     | None -> 0)
                   ss))
            dashboard_quantiles;
          Buffer.add_string b ", \"count\": ";
          add_int_array b
            (Array.map
               (fun (_, s) ->
                 match hist_at s name with Some h -> h.M.count | None -> 0)
               ss);
          Buffer.add_char b '}')
    last;
  Buffer.add_string b "\n  },\n  \"slos\": [";
  List.iteri
    (fun i (s, breaches) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"hist\": \"%s\", \"percentile\": %g, \"limit_us\": %d, \
            \"breaches\": %d}"
           s.slo_hist s.slo_percentile s.slo_limit breaches))
    (breaches t);
  Buffer.add_string b "]\n}\n";
  Buffer.contents b
