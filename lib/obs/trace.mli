(** Low-overhead per-packet span tracer.

    A single process-wide ring of preallocated parallel arrays records
    spans (a stage with a start timestamp and duration) and instants
    (point events).  When tracing is disabled every recording entry point
    is a single mutable-flag test and allocates nothing, so the data-path
    hot loops can stay instrumented permanently.  When the ring is full
    the oldest spans are evicted.

    Timestamps are supplied by the caller in microseconds.  On the
    simulated machine the natural clock is [Machine.micros] (simulated
    CPU time); native/wall users install a monotonic clock via
    [set_clock].  The tracer itself never charges the simulated machine,
    so enabling it cannot change simulated costs or wire bytes. *)

type stage =
  | Send_marshal
  | Send_encrypt
  | Send_checksum
  | Send_ring_copy
  | Send_link
  | Recv_checksum
  | Recv_decrypt
  | Recv_unmarshal
  | Tcp_retransmit
  | Tcp_persist_probe
  | Tcp_zero_window
  | Tcp_abort
  | Tcp_segment
      (** lifetime of one data segment: first transmission to cumulative
          acknowledgement (simulated-clock timestamps; [arg] = payload
          bytes).  Overlapping [tcp.segment] spans are the visual
          signature of a pipelined window. *)
  | Tcp_ack
      (** an acknowledgement advancing [snd_una] ([arg] = bytes newly
          acknowledged) *)
  | Tcp_sack
      (** a pure ack carrying SACK blocks left the receiver
          ([arg] = block count, D-SACK included) *)
  | Tcp_sack_rexmit
      (** the sender's scoreboard inferred a hole lost and retransmitted
          it ([arg] = sequence number) *)
  | Rpc_shed
  | Rpc_abandon
  | Tcp_rst
      (** a reset segment crossed this endpoint ([arg] = 1 for an RST
          sent, 0 for one received) *)
  | Tcp_keepalive
      (** a keepalive probe left, or its verdict landed
          ([arg] = unanswered probe count) *)

val all_stages : stage list
val stage_name : stage -> string
val stage_cat : stage -> string
(** Category: ["send"], ["recv"], ["tcp"] or ["rpc"]. *)

val enabled : unit -> bool
val enable : ?capacity:int -> unit -> unit
(** Switch tracing on with a fresh ring of [capacity] spans
    (default 16384).  Clears previously recorded spans. *)

val disable : unit -> unit
(** Switch recording off.  Recorded spans remain readable. *)

val clear : unit -> unit
val capacity : unit -> int

val begin_packet : unit -> int
(** Allocate the next packet id and make it current.  Returns 0 (and does
    nothing) when tracing is disabled. *)

val current_packet : unit -> int
(** Packet id of the most recent [begin_packet] (0 before any). *)

val span : ?arg:int -> stage -> packet:int -> ts:float -> dur:float -> unit
(** Record a complete span.  No-op (and allocation-free) when disabled.
    [arg] is a free integer annotation; the engine uses [arg = 1] to mark
    a stage that was fused into another loop (zero attributed duration
    because the work happened inside the fused pass). *)

val instant : ?arg:int -> stage -> packet:int -> ts:float -> unit
(** Record a point event (TCP/RPC control events). *)

val set_clock : (unit -> float) -> unit
(** Install the microsecond clock used by native (uncharged) code paths
    that have no simulated machine to read.  Defaults to a constant 0. *)

val now : unit -> float
(** Read the installed clock. *)

(* ---- reading the ring ---- *)

type span_rec = {
  stage : stage;
  packet : int;
  ts : float;
  dur : float;
  arg : int;
  is_instant : bool;
}

val spans : unit -> span_rec list
(** Oldest first; at most [capacity] entries. *)

val recorded : unit -> int
(** Total events recorded since [enable]/[clear], including evicted. *)

val dropped : unit -> int
(** Events evicted by ring wrap-around. *)

val to_chrome_json : unit -> string
(** Chrome [trace_event] JSON (one [traceEvents] array of ["X"] complete
    and ["i"] instant events), loadable in chrome://tracing / Perfetto. *)

val timeline : ?tail:int -> unit -> string list
(** Plain-text per-packet timeline, oldest first; [tail] keeps only the
    last [tail] lines. *)
