(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    Included as the paper's canonical example of an {e ordering-constrained}
    data manipulation (its section 2.2): a CRC must see the bytes in serial
    order, so the part-B/C/A reordering of the send path cannot be applied
    to it, although it can still live inside an in-order ILP loop.

    The charged variant keeps its 1 KB lookup table in simulated memory, so
    its cache footprint competes with the other stages' tables — one of the
    data-manipulation characteristics the paper shows can erase ILP
    gains. *)

type t
(** A CRC instance whose lookup table lives in simulated memory. *)

val create : Ilp_memsim.Mem.t -> Ilp_memsim.Alloc.t -> t

(** [update_mem t ~crc mem ~pos ~len] advances [crc] over simulated memory,
    charging byte reads, table reads and compute. *)
val update_mem : t -> crc:int -> Ilp_memsim.Mem.t -> pos:int -> len:int -> int

(** [update_block t ~crc b ~off ~len] advances [crc] over register-resident
    bytes; only table reads and compute are charged (ILP-loop form). *)
val update_block : t -> crc:int -> Bytes.t -> off:int -> len:int -> int

(** [update_host t ~crc mem ~pos b ~off ~len] advances [crc] over host
    bytes [b+off..] while charging exactly as {!update_mem} would for the
    simulated region [mem+pos..] — for data that logically lives at a
    simulated address but is held in an engine-owned host placement
    buffer.  Charge-identical to {!update_mem} over the same [pos]/[len]. *)
val update_host :
  t -> crc:int -> Ilp_memsim.Mem.t -> pos:int -> Bytes.t -> off:int -> len:int -> int

(** Pure reference implementation (no simulation, no charges). *)
val string_crc : string -> int

(** Pure incremental folds (no simulation, no charges): advance an
    accumulator over one segment of a scattered message, so the CRC of
    an iovec-style stream needs no contiguous rendering.  Feed {!init},
    chain segments, finalize with {!finish}; folding the concatenation
    equals folding the pieces. *)
val fold_string : crc:int -> string -> off:int -> len:int -> int

val fold_bytes : crc:int -> Bytes.t -> off:int -> len:int -> int

val init : int
(** Initial accumulator (all ones pre-conditioning is internal: feed [init],
    finalize with {!finish}). *)

val finish : int -> int
