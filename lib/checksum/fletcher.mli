(** Fletcher-32 checksum (as used by OSI TP4).

    A table-free alternative to CRC-32 with strictly sequential state, kept
    as a second example of an ordering-constrained manipulation whose ALU
    cost sits between the Internet checksum and a block cipher. *)

(** [update ~s1 ~s2 b ~off ~len] folds register-resident bytes and returns
    the new state pair.  Pure; cost model is {!ops}. *)
val update : s1:int -> s2:int -> Bytes.t -> off:int -> len:int -> int * int

(** [finish (s1, s2)] is the 32-bit checksum. *)
val finish : int * int -> int

val string_sum : string -> int

(** ALU ops per [len] bytes (two adds and a modulo amortised per byte). *)
val ops : len:int -> int
