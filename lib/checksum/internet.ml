(* The accumulator is packed into an immediate — partial sum in the high
   bits, byte-parity in bit 0 — so extending it (once per block in the
   fused ILP loop) allocates nothing; a record here costs a minor-heap
   block per update. *)
type acc = int

let pack sum odd = (sum lsl 1) lor (if odd then 1 else 0)
let acc_sum (a : acc) = a lsr 1
let acc_odd (a : acc) = a land 1 = 1

let empty = 0

let rec fold16 s = if s > 0xffff then fold16 ((s land 0xffff) + (s lsr 16)) else s

let add_byte acc b =
  if acc_odd acc then pack (acc_sum acc + b) false
  else pack (acc_sum acc + (b lsl 8)) true

let byteswap16 v = ((v land 0xff) lsl 8) lor (v lsr 8)

external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

let add_bytes_unsafe acc b ~off ~len =
  let i = ref off in
  let stop = off + len in
  let sum = ref (acc_sum acc) in
  let odd = ref (acc_odd acc) in
  if !odd && !i < stop then begin
    (* A byte at odd parity lands in the low-order half of its word. *)
    sum := !sum + Char.code (Bytes.unsafe_get b !i);
    odd := false;
    incr i
  end;
  if stop - !i >= 8 then begin
    (* Word loop: four 16-bit lanes per load, accumulated in native byte
       order as two 32-bit halves of one register.  One's-complement
       addition commutes, so the lanes may be reordered freely and the
       folded result byte-swapped once at the end. *)
    let wsum = ref 0 in
    let words = ref 0 in
    while stop - !i >= 8 do
      let w = unsafe_get_64 b !i in
      let lo = Int64.to_int (Int64.logand w 0xFFFF_FFFFL) in
      let hi = Int64.to_int (Int64.shift_right_logical w 32) in
      wsum := !wsum + lo + hi;
      i := !i + 8;
      incr words;
      (* Each word adds < 2^33; an end-around carry every 2^16 words keeps
         the total below 2^50, inside the 63-bit int. *)
      if !words land 0xffff = 0 then
        wsum := (!wsum land 0xffff_ffff) + (!wsum lsr 32)
    done;
    let folded = fold16 ((!wsum land 0xffff_ffff) + (!wsum lsr 32)) in
    sum := !sum + (if Sys.big_endian then folded else byteswap16 folded)
  end;
  while stop - !i >= 2 do
    sum :=
      !sum
      + (Char.code (Bytes.unsafe_get b !i) lsl 8)
      + Char.code (Bytes.unsafe_get b (!i + 1));
    i := !i + 2
  done;
  (* Parity is even here: any leading odd byte was consumed above, and the
     2-byte loop preserves evenness. *)
  if !i < stop then begin
    sum := !sum + (Char.code (Bytes.unsafe_get b !i) lsl 8);
    odd := true
  end;
  pack (fold16 !sum) !odd

let add_bytes acc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Internet.add_bytes";
  add_bytes_unsafe acc b ~off ~len

let add_string acc s = add_bytes acc (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let add_u16 acc v =
  if acc_odd acc then invalid_arg "Internet.add_u16: unaligned accumulator";
  pack (fold16 (acc_sum acc + (v land 0xffff))) false

let combine a b ~len_b =
  let fb = fold16 (acc_sum b) in
  let fb = if acc_odd a then byteswap16 fb else fb in
  pack (fold16 (acc_sum a + fb)) (acc_odd a <> (len_b land 1 = 1))

let finish acc = lnot (fold16 (acc_sum acc)) land 0xffff

let checksum_string s = finish (add_string empty s)

let ops ~len = (len + 1) / 2 * 2

let checksum_mem mem ~pos ~len ~acc =
  let machine = Ilp_memsim.Mem.machine mem in
  let acc = ref acc in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 2 do
    let v = Ilp_memsim.Mem.get_u16 mem !i in
    (* add + carry fold + loop bookkeeping *)
    Ilp_memsim.Machine.compute machine 3;
    acc :=
      (if acc_odd !acc then
         add_byte (add_byte !acc (v lsr 8)) (v land 0xff)
       else pack (fold16 (acc_sum !acc + v)) false);
    i := !i + 2
  done;
  if !i < stop then begin
    let v = Ilp_memsim.Mem.get_u8 mem !i in
    Ilp_memsim.Machine.compute machine 2;
    acc := add_byte !acc v
  end;
  !acc

let verify_string s = fold16 (acc_sum (add_string empty s)) = 0xffff
