type acc = { sum : int; odd : bool }

let empty = { sum = 0; odd = false }

let fold16 sum =
  let s = ref sum in
  while !s > 0xffff do
    s := (!s land 0xffff) + (!s lsr 16)
  done;
  !s

let add_byte acc b =
  if acc.odd then { sum = acc.sum + b; odd = false }
  else { sum = acc.sum + (b lsl 8); odd = true }

let add_bytes acc b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Internet.add_bytes";
  let acc = ref acc in
  (* Fast path: aligned 16-bit words. *)
  let i = ref off in
  let stop = off + len in
  if !acc.odd && !i < stop then begin
    acc := add_byte !acc (Char.code (Bytes.get b !i));
    incr i
  end;
  while stop - !i >= 2 do
    acc := { sum = !acc.sum + Bytes.get_uint16_be b !i; odd = false };
    i := !i + 2
  done;
  while !i < stop do
    acc := add_byte !acc (Char.code (Bytes.get b !i));
    incr i
  done;
  (* Keep the running sum bounded so it never overflows an OCaml int. *)
  { !acc with sum = fold16 !acc.sum }

let add_string acc s = add_bytes acc (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let add_u16 acc v =
  if acc.odd then invalid_arg "Internet.add_u16: unaligned accumulator";
  { sum = fold16 (acc.sum + (v land 0xffff)); odd = false }

let byteswap16 v = ((v land 0xff) lsl 8) lor (v lsr 8)

let combine a b ~len_b =
  let fb = fold16 b.sum in
  let fb = if a.odd then byteswap16 fb else fb in
  { sum = fold16 (a.sum + fb); odd = a.odd <> (len_b land 1 = 1) }

let finish acc = lnot (fold16 acc.sum) land 0xffff

let checksum_string s = finish (add_string empty s)

let ops ~len = (len + 1) / 2 * 2

let checksum_mem mem ~pos ~len ~acc =
  let machine = Ilp_memsim.Mem.machine mem in
  let acc = ref acc in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 2 do
    let v = Ilp_memsim.Mem.get_u16 mem !i in
    (* add + carry fold + loop bookkeeping *)
    Ilp_memsim.Machine.compute machine 3;
    acc :=
      (if !acc.odd then
         add_byte (add_byte !acc (v lsr 8)) (v land 0xff)
       else { sum = fold16 (!acc.sum + v); odd = false });
    i := !i + 2
  done;
  if !i < stop then begin
    let v = Ilp_memsim.Mem.get_u8 mem !i in
    Ilp_memsim.Machine.compute machine 2;
    acc := add_byte !acc v
  end;
  !acc

let verify_string s = fold16 (add_string empty s).sum = 0xffff
