(** RFC 1071 Internet checksum (the TCP/UDP checksum).

    Two forms are provided, matching the two implementation styles measured
    in the paper.  The {e pure} form folds over bytes already held in
    registers — this is what runs inside the fused ILP loop, where the data
    was just produced by the previous manipulation and costs no memory
    access.  The {e charged} form walks simulated memory in 2-byte units —
    this is the separate checksum pass of the non-ILP [tcp_output].

    The checksum is not ordering-constrained: blocks may be summed in any
    order provided each block's byte-parity position is respected, which is
    exactly the property the paper's part-B/C/A send processing relies
    on. *)

type acc
(** A partial one's-complement sum plus the parity of the number of bytes
    folded so far (odd-length blocks make the following byte a low-order
    byte). *)

val empty : acc

(** [add_bytes acc b ~off ~len] folds [len] bytes of [b] starting at
    [off]. *)
val add_bytes : acc -> Bytes.t -> off:int -> len:int -> acc

(** [add_bytes_unsafe acc b ~off ~len] is [add_bytes] without the bounds
    check.  The word loop folds eight bytes per 64-bit load (four 16-bit
    lanes accumulated in 32-bit halves with an end-around carry), so this
    is the form the native fast path uses on large runs.  The caller must
    guarantee [0 <= off], [0 <= len] and [off + len <= Bytes.length b]. *)
val add_bytes_unsafe : acc -> Bytes.t -> off:int -> len:int -> acc

val add_string : acc -> string -> acc

(** [add_u16 acc v] folds one aligned 16-bit big-endian word. *)
val add_u16 : acc -> int -> acc

(** [combine a b ~len_b] appends a sum [b] computed over [len_b] bytes to
    [a]; equivalent to folding [b]'s bytes after [a]'s. *)
val combine : acc -> acc -> len_b:int -> acc

(** One's-complement fold and complement: the 16-bit value stored in the
    TCP header. *)
val finish : acc -> int

(** [checksum_string s] is the checksum of a whole string. *)
val checksum_string : string -> int

(** [ops ~len] is the ALU cost model for summing [len] register-resident
    bytes (one add plus one carry fold per 16-bit word). *)
val ops : len:int -> int

(** [checksum_mem mem ~pos ~len ~acc] walks simulated memory in 2-byte
    units, charging reads and compute, and returns the extended
    accumulator.  [pos] need not be even but byte-parity of the walk starts
    even. *)
val checksum_mem : Ilp_memsim.Mem.t -> pos:int -> len:int -> acc:acc -> acc

(** [verify_string s] is [true] iff the data including its checksum field
    sums to [0xffff] (i.e. to zero in one's complement). *)
val verify_string : string -> bool
