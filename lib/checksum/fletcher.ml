(* Classic Fletcher-32 over 8-bit data with deferred modulo: sums stay small
   enough that reducing every 5802 bytes suffices; we reduce per call. *)

let reduce (s1, s2) = (s1 mod 65535, s2 mod 65535)

let update ~s1 ~s2 b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Fletcher.update";
  let s1 = ref s1 and s2 = ref s2 in
  for i = off to off + len - 1 do
    s1 := !s1 + Char.code (Bytes.get b i);
    s2 := !s2 + !s1;
    if !s2 > max_int / 2 then begin
      s1 := !s1 mod 65535;
      s2 := !s2 mod 65535
    end
  done;
  reduce (!s1, !s2)

let finish (s1, s2) = (s2 lsl 16) lor s1

let string_sum s =
  let b = Bytes.unsafe_of_string s in
  finish (update ~s1:0 ~s2:0 b ~off:0 ~len:(String.length s))

let ops ~len = 3 * len
