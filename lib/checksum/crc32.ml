let polynomial = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := polynomial lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

type t = { mem : Ilp_memsim.Mem.t; table_base : int }

let create mem alloc =
  let base = Ilp_memsim.Alloc.alloc alloc ~align:64 (256 * 4) in
  let tbl = Lazy.force table in
  Array.iteri (fun i v -> Ilp_memsim.Mem.poke_u32 mem (base + (i * 4)) v) tbl;
  { mem; table_base = base }

let init = 0xffffffff
let finish crc = crc lxor 0xffffffff

let step t crc byte =
  let idx = (crc lxor byte) land 0xff in
  (* One charged 4-byte table read per input byte. *)
  let e = Ilp_memsim.Mem.get_u32 t.mem (t.table_base + (idx * 4)) in
  Ilp_memsim.Machine.compute (Ilp_memsim.Mem.machine t.mem) 3;
  e lxor (crc lsr 8)

let update_mem t ~crc mem ~pos ~len =
  let c = ref crc in
  for i = pos to pos + len - 1 do
    c := step t !c (Ilp_memsim.Mem.get_u8 mem i)
  done;
  !c

let update_host t ~crc mem ~pos b ~off ~len =
  let machine = Ilp_memsim.Mem.machine mem in
  let c = ref crc in
  for i = 0 to len - 1 do
    (* Same charge sequence as [update_mem] — a byte read at the simulated
       address, then the table read and compute inside [step] — but the
       byte value itself comes from the host buffer. *)
    Ilp_memsim.Machine.read machine ~addr:(pos + i) ~size:1;
    c := step t !c (Char.code (Bytes.get b (off + i)))
  done;
  !c

let update_block t ~crc b ~off ~len =
  let c = ref crc in
  for i = off to off + len - 1 do
    c := step t !c (Char.code (Bytes.get b i))
  done;
  !c

let fold_string ~crc s ~off ~len =
  let tbl = Lazy.force table in
  let c = ref crc in
  for i = off to off + len - 1 do
    c := tbl.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c

let fold_bytes ~crc b ~off ~len =
  let tbl = Lazy.force table in
  let c = ref crc in
  for i = off to off + len - 1 do
    c := tbl.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c

let string_crc s = finish (fold_string ~crc:init s ~off:0 ~len:(String.length s))
