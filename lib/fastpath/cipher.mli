(** Native cipher kernels for the fast path.

    A value of type {!t} selects one of the stack's four ciphers with its
    expanded key held in ordinary OCaml data (no simulated memory, no
    charging).  All kernels work in batches — N blocks per call — so the
    per-block closure dispatch the charged stack pays is gone, and the
    simple cipher runs eight bytes per 64-bit register operation
    (SIMD-within-a-register). *)

type t =
  | Simple
  | Safer_simplified of Ilp_cipher.Safer_simplified.key
  | Safer of Ilp_cipher.Safer.key
  | Des of Ilp_cipher.Des.key

val name : t -> string

val block_len : t -> int
(** 8 for every cipher in the stack. *)

(** [encrypt_blocks t b ~off ~count] transforms [count] consecutive 8-byte
    blocks of [b] in place.  Byte-compatible with the charged cipher of the
    same name: the wire output of the native path is identical to the
    simulated one. *)
val encrypt_blocks : t -> Bytes.t -> off:int -> count:int -> unit

val decrypt_blocks : t -> Bytes.t -> off:int -> count:int -> unit
