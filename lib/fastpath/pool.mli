(** A size-classed, reusable buffer pool for the single-copy data path.

    Buffers live in power-of-two size classes (64 B to 16 MiB).
    {!acquire} returns a buffer of capacity at least the requested
    length — a recycled one when the class has a free buffer, a fresh
    allocation otherwise ({e pool-exhaustion fallback}: the pool degrades
    to plain allocation, it never fails).  {!release} returns a buffer to
    its class; past [class_cap] retained buffers per class it is dropped
    to the GC instead, bounding the pool's footprint.

    Every acquire and release is counted, so a harness can assert the
    zero-leak invariant [outstanding = 0] in one comparison. *)

type t

(** [create ?class_cap ()] — [class_cap] (default 8) bounds the free
    buffers retained per size class; [0] disables reuse entirely (every
    acquire is a fresh allocation — useful to exercise the exhaustion
    fallback). *)
val create : ?class_cap:int -> unit -> t

(** [acquire t len] returns a buffer with [Bytes.length >= len] (the
    class size, so callers must track their own logical length).
    Requests beyond the largest class are served with an exactly-sized
    fresh allocation.  Raises [Invalid_argument] on negative [len]. *)
val acquire : t -> int -> Bytes.t

(** Return a buffer to the pool.  Safe to call with any buffer; ones that
    are not exactly class-sized (or whose class is full) are dropped to
    the GC and counted. *)
val release : t -> Bytes.t -> unit

type stats = {
  acquired : int;
  released : int;
  outstanding : int;  (** acquired - released; 0 means no leaks *)
  fresh_allocs : int;  (** acquires served by a fresh allocation *)
  dropped : int;  (** releases not retained (class full or odd-sized) *)
}

val stats : t -> stats

(** [acquired - released] — the zero-leak assertion value. *)
val outstanding : t -> int
