(** The native send/receive data movement, in both of the paper's styles.

    The {e separate} functions reproduce the non-ILP stack's four memory
    traversals — marshal copy, encrypt pass, TCP ring copy, checksum pass —
    each touching every byte of the message.  The {e ILP} functions fuse
    the same manipulations into one traversal: each cache-resident chunk is
    copied, encrypted and checksummed before the loop moves on, so the
    message crosses the memory system once.  Both produce byte-identical
    wire data and the same Internet checksum; only the wall-clock cost
    differs, which is what [ilpbench wall] measures.

    [len] must be a multiple of the cipher block (8 bytes); offsets and
    lengths are bounds-checked on entry. *)

type t

(** [create ~cipher ~max_len] builds a fast path instance.  [max_len]
    bounds the message length of [send_separate] (it sizes the staging
    buffer that stands in for the protocol stack's intermediate buffer). *)
val create : cipher:Cipher.t -> max_len:int -> t

val cipher : t -> Cipher.t
val max_len : t -> int

(** [send_separate t ~src ~src_off ~len ~dst ~dst_off] runs the four-pass
    send: word-copy [src] into the staging buffer (marshal), encrypt the
    staging buffer in place, word-copy it into [dst] (the ring), then
    checksum [dst].  Returns the payload checksum accumulator. *)
val send_separate :
  t -> src:Bytes.t -> src_off:int -> len:int -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc

(** [send_ilp t ~src ~src_off ~len ~dst ~dst_off] runs the fused send: one
    pass over the message in cache-sized chunks, each chunk copied into
    [dst], encrypted there and folded into the checksum while still
    resident.  Same wire bytes and checksum as [send_separate]. *)
val send_ilp :
  t -> src:Bytes.t -> src_off:int -> len:int -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc

(** [recv_separate t ~src ~src_off ~len ~dst ~dst_off] runs the separate
    receive: checksum [src], decrypt [src] in place, word-copy the
    plaintext to [dst] (the application buffer).  [src] is consumed, as in
    the real stack where the staging buffer is decrypted in place. *)
val recv_separate :
  t -> src:Bytes.t -> src_off:int -> len:int -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc

(** [recv_ilp t ~src ~src_off ~len ~dst ~dst_off] fuses the receive:
    per chunk, fold the ciphertext into the checksum, copy it to [dst] and
    decrypt it there.  [src] is left intact. *)
val recv_ilp :
  t -> src:Bytes.t -> src_off:int -> len:int -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc
