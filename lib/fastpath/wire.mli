(** The native send/receive data movement, in both of the paper's styles.

    The {e separate} functions reproduce the non-ILP stack's four memory
    traversals — marshal copy, encrypt pass, TCP ring copy, checksum pass —
    each touching every byte of the message.  The {e ILP} functions fuse
    the same manipulations into one traversal: each cache-resident chunk is
    copied, encrypted and checksummed before the loop moves on, so the
    message crosses the memory system once.  Both produce byte-identical
    wire data and the same Internet checksum; only the wall-clock cost
    differs, which is what [ilpbench wall] measures.

    The [sendv_*] variants take the marshal output as an iovec-style
    scatter list and assemble it directly at the destination — the
    single-copy path: no intermediate rendering of the plaintext.

    Every function feeds the {!Memtraffic} ledger (bytes copied, bytes
    transformed in place, bytes checksummed), so [ilpbench mem] can count
    the traversal structure it claims.

    [len] must be a multiple of the cipher block (8 bytes); offsets and
    lengths are bounds-checked on entry. *)

type t

(** [create ~cipher ?pool ~max_len ()] builds a fast path instance.
    [max_len] bounds the message length of the separate-path sends (it
    sizes the staging buffer that stands in for the protocol stack's
    intermediate buffer).  The staging buffer is drawn {e lazily} — only
    when a separate-path send first needs it — from [pool] when given,
    and returned to the pool by {!release} (engine teardown). *)
val create : cipher:Cipher.t -> ?pool:Pool.t -> max_len:int -> unit -> t

val cipher : t -> Cipher.t
val max_len : t -> int

(** Return the staging buffer (if ever drawn) to the pool.  Idempotent;
    a later separate-path send simply draws a fresh one. *)
val release : t -> unit

(** [send_separate t ~src ~src_off ~len ~dst ~dst_off] runs the four-pass
    send: word-copy [src] into the staging buffer (marshal), encrypt the
    staging buffer in place, word-copy it into [dst] (the ring), then
    checksum [dst].  Returns the payload checksum accumulator. *)
val send_separate :
  t -> src:Bytes.t -> src_off:int -> len:int -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc

(** [send_ilp t ~src ~src_off ~len ~dst ~dst_off] runs the fused send: one
    pass over the message in cache-sized chunks, each chunk copied into
    [dst], encrypted there and folded into the checksum while still
    resident.  Same wire bytes and checksum as [send_separate]. *)
val send_ilp :
  t -> src:Bytes.t -> src_off:int -> len:int -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc

(** [recv_separate t ~src ~src_off ~len ~dst ~dst_off] runs the separate
    receive: checksum [src], decrypt [src] in place, word-copy the
    plaintext to [dst] (the application buffer).  [src] is consumed, as in
    the real stack where the staging buffer is decrypted in place. *)
val recv_separate :
  t -> src:Bytes.t -> src_off:int -> len:int -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc

(** [recv_ilp t ~src ~src_off ~len ~dst ~dst_off] fuses the receive:
    per chunk, fold the ciphertext into the checksum, copy it to [dst] and
    decrypt it there.  [src] is left intact. *)
val recv_ilp :
  t -> src:Bytes.t -> src_off:int -> len:int -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc

(** {2 Scatter-gather (single-copy) sends} *)

(** One run of an outgoing message: bytes in a buffer (e.g. application
    memory read in place) or an immediate string (stub-generated header
    runs).  Segment boundaries are arbitrary. *)
type iovec =
  | Io_bytes of { buf : Bytes.t; off : int; len : int }
  | Io_string of { s : string; off : int; len : int }

val iovec_len : iovec list -> int

(** [sendv_ilp t ~iov ~dst ~dst_off] — the fused scatter-gather send:
    gathers the iovec list directly at [dst] in cache-sized chunks, each
    chunk encrypted and checksummed while resident.  The message's only
    copy is the gather itself.  The total length must be a multiple of 8.
    Byte- and checksum-identical to rendering [iov] contiguously and
    calling {!send_ilp}. *)
val sendv_ilp :
  t -> iov:iovec list -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc

(** [sendv_separate t ~iov ~dst ~dst_off] — the four-pass equivalent:
    gather into the staging buffer, encrypt in place, copy to [dst],
    checksum [dst].  Wire-identical to {!sendv_ilp}. *)
val sendv_separate :
  t -> iov:iovec list -> dst:Bytes.t -> dst_off:int ->
  Ilp_checksum.Internet.acc
