(** Word-at-a-time memory access for the native fast path.

    The simulated stack moves data byte-at-a-time so the memory simulator
    can charge each access; these primitives are the un-simulated
    complement: unaligned 64-bit loads and stores compiled to single
    machine instructions, plus a word-wise copy used as the native XDR
    marshalling move. *)

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
(** Unaligned 64-bit load; no bounds check. *)

external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
(** Unaligned 64-bit store; no bounds check. *)

(** [blit ~src ~src_off ~dst ~dst_off ~len] copies [len] bytes a word at a
    time with a byte tail.  Bounds-checked once at entry.  The regions must
    not overlap (the fast path always copies between distinct buffers). *)
val blit :
  src:Bytes.t -> src_off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit
