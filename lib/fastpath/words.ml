external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let blit ~src ~src_off ~dst ~dst_off ~len =
  if
    len < 0 || src_off < 0 || dst_off < 0
    || src_off + len > Bytes.length src
    || dst_off + len > Bytes.length dst
  then invalid_arg "Words.blit";
  let words = len lsr 3 in
  for k = 0 to words - 1 do
    let o = k lsl 3 in
    set64 dst (dst_off + o) (get64 src (src_off + o))
  done;
  for i = words lsl 3 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i) (Bytes.unsafe_get src (src_off + i))
  done
