(* Global per-layer byte counters for the host data path.  Plain ints,
   bumped from the hot loops, so the ledger itself adds no allocation and
   no indirection — the same spirit as the paper's atom/cachesim counts,
   but for the un-simulated (native) lane and the engine's host-side
   buffer management. *)

type layer = Marshal | Cipher | Checksum | Tcp | Rpc | Pool

let n_layers = 6

let layer_index = function
  | Marshal -> 0
  | Cipher -> 1
  | Checksum -> 2
  | Tcp -> 3
  | Rpc -> 4
  | Pool -> 5

let layer_name = function
  | Marshal -> "marshal"
  | Cipher -> "cipher"
  | Checksum -> "checksum"
  | Tcp -> "tcp"
  | Rpc -> "rpc"
  | Pool -> "pool"

let layers = [ Marshal; Cipher; Checksum; Tcp; Rpc; Pool ]

let reads = Array.make n_layers 0
let writes = Array.make n_layers 0
let copies = Array.make n_layers 0
let allocs = Array.make n_layers 0
let alloc_blocks = Array.make n_layers 0

(* Mirror counters in the unified metrics registry.  Unlike the arrays
   above these are never [reset]: they are cumulative for the process,
   and per-run consumers diff snapshots. *)
module M = Ilp_obs.Metrics

let metric kind =
  Array.of_list
    (List.map
       (fun l -> M.counter M.default ("mem." ^ layer_name l ^ "." ^ kind))
       layers)

let m_reads = metric "read_bytes"
let m_writes = metric "written_bytes"
let m_copies = metric "copied_bytes"
let m_allocs = metric "allocated_bytes"
let m_alloc_blocks = metric "alloc_blocks"

let read l n =
  let i = layer_index l in
  reads.(i) <- reads.(i) + n;
  M.inc m_reads.(i) n

let write l n =
  let i = layer_index l in
  writes.(i) <- writes.(i) + n;
  M.inc m_writes.(i) n

let copied l n =
  let i = layer_index l in
  reads.(i) <- reads.(i) + n;
  writes.(i) <- writes.(i) + n;
  copies.(i) <- copies.(i) + n;
  M.inc m_reads.(i) n;
  M.inc m_writes.(i) n;
  M.inc m_copies.(i) n

let inplace l n =
  let i = layer_index l in
  reads.(i) <- reads.(i) + n;
  writes.(i) <- writes.(i) + n;
  M.inc m_reads.(i) n;
  M.inc m_writes.(i) n

let alloc l n =
  let i = layer_index l in
  allocs.(i) <- allocs.(i) + n;
  alloc_blocks.(i) <- alloc_blocks.(i) + 1;
  M.inc m_allocs.(i) n;
  M.inc m_alloc_blocks.(i) 1

type snapshot = {
  s_reads : int array;
  s_writes : int array;
  s_copies : int array;
  s_allocs : int array;
  s_alloc_blocks : int array;
}

let snapshot () =
  { s_reads = Array.copy reads;
    s_writes = Array.copy writes;
    s_copies = Array.copy copies;
    s_allocs = Array.copy allocs;
    s_alloc_blocks = Array.copy alloc_blocks }

let diff later earlier =
  let d a b = Array.init n_layers (fun i -> a.(i) - b.(i)) in
  { s_reads = d later.s_reads earlier.s_reads;
    s_writes = d later.s_writes earlier.s_writes;
    s_copies = d later.s_copies earlier.s_copies;
    s_allocs = d later.s_allocs earlier.s_allocs;
    s_alloc_blocks = d later.s_alloc_blocks earlier.s_alloc_blocks }

let reset () =
  Array.fill reads 0 n_layers 0;
  Array.fill writes 0 n_layers 0;
  Array.fill copies 0 n_layers 0;
  Array.fill allocs 0 n_layers 0;
  Array.fill alloc_blocks 0 n_layers 0

let total a = Array.fold_left ( + ) 0 a

let reads_total s = total s.s_reads
let writes_total s = total s.s_writes
let copied_total s = total s.s_copies
let allocated_total s = total s.s_allocs
let alloc_blocks_total s = total s.s_alloc_blocks

let of_layer s l =
  let i = layer_index l in
  (s.s_reads.(i), s.s_writes.(i), s.s_copies.(i), s.s_allocs.(i))
