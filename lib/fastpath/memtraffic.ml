(* Global per-layer byte counters for the host data path.  Plain ints,
   bumped from the hot loops, so the ledger itself adds no allocation and
   no indirection — the same spirit as the paper's atom/cachesim counts,
   but for the un-simulated (native) lane and the engine's host-side
   buffer management. *)

type layer = Marshal | Cipher | Checksum | Tcp | Rpc | Pool

let n_layers = 6

let layer_index = function
  | Marshal -> 0
  | Cipher -> 1
  | Checksum -> 2
  | Tcp -> 3
  | Rpc -> 4
  | Pool -> 5

let layer_name = function
  | Marshal -> "marshal"
  | Cipher -> "cipher"
  | Checksum -> "checksum"
  | Tcp -> "tcp"
  | Rpc -> "rpc"
  | Pool -> "pool"

let layers = [ Marshal; Cipher; Checksum; Tcp; Rpc; Pool ]

let reads = Array.make n_layers 0
let writes = Array.make n_layers 0
let copies = Array.make n_layers 0
let allocs = Array.make n_layers 0
let alloc_blocks = Array.make n_layers 0

(* Receive-direction sub-ledger.  The arrays above stay the totals — both
   directions bump them, so every pre-existing consumer keeps its meaning
   — and the [_rx] arrays count the receive-side share, charged by the
   [*_rx] entry points the rx code paths call.  The send share is the
   difference. *)
let reads_rx = Array.make n_layers 0
let writes_rx = Array.make n_layers 0
let copies_rx = Array.make n_layers 0
let allocs_rx = Array.make n_layers 0
let alloc_blocks_rx = Array.make n_layers 0

(* Mirror counters in the unified metrics registry.  Unlike the arrays
   above these are never [reset]: they are cumulative for the process,
   and per-run consumers diff snapshots. *)
module M = Ilp_obs.Metrics

let metric kind =
  Array.of_list
    (List.map
       (fun l -> M.counter M.default ("mem." ^ layer_name l ^ "." ^ kind))
       layers)

let m_reads = metric "read_bytes"
let m_writes = metric "written_bytes"
let m_copies = metric "copied_bytes"
let m_allocs = metric "allocated_bytes"
let m_alloc_blocks = metric "alloc_blocks"

let metric_rx kind =
  Array.of_list
    (List.map
       (fun l -> M.counter M.default ("mem.rx." ^ layer_name l ^ "." ^ kind))
       layers)

let m_reads_rx = metric_rx "read_bytes"
let m_writes_rx = metric_rx "written_bytes"
let m_copies_rx = metric_rx "copied_bytes"
let m_allocs_rx = metric_rx "allocated_bytes"
let m_alloc_blocks_rx = metric_rx "alloc_blocks"

let read l n =
  let i = layer_index l in
  reads.(i) <- reads.(i) + n;
  M.inc m_reads.(i) n

let write l n =
  let i = layer_index l in
  writes.(i) <- writes.(i) + n;
  M.inc m_writes.(i) n

let copied l n =
  let i = layer_index l in
  reads.(i) <- reads.(i) + n;
  writes.(i) <- writes.(i) + n;
  copies.(i) <- copies.(i) + n;
  M.inc m_reads.(i) n;
  M.inc m_writes.(i) n;
  M.inc m_copies.(i) n

let inplace l n =
  let i = layer_index l in
  reads.(i) <- reads.(i) + n;
  writes.(i) <- writes.(i) + n;
  M.inc m_reads.(i) n;
  M.inc m_writes.(i) n

let alloc l n =
  let i = layer_index l in
  allocs.(i) <- allocs.(i) + n;
  alloc_blocks.(i) <- alloc_blocks.(i) + 1;
  M.inc m_allocs.(i) n;
  M.inc m_alloc_blocks.(i) 1

let read_rx l n =
  read l n;
  let i = layer_index l in
  reads_rx.(i) <- reads_rx.(i) + n;
  M.inc m_reads_rx.(i) n

let write_rx l n =
  write l n;
  let i = layer_index l in
  writes_rx.(i) <- writes_rx.(i) + n;
  M.inc m_writes_rx.(i) n

let copied_rx l n =
  copied l n;
  let i = layer_index l in
  reads_rx.(i) <- reads_rx.(i) + n;
  writes_rx.(i) <- writes_rx.(i) + n;
  copies_rx.(i) <- copies_rx.(i) + n;
  M.inc m_reads_rx.(i) n;
  M.inc m_writes_rx.(i) n;
  M.inc m_copies_rx.(i) n

let inplace_rx l n =
  inplace l n;
  let i = layer_index l in
  reads_rx.(i) <- reads_rx.(i) + n;
  writes_rx.(i) <- writes_rx.(i) + n;
  M.inc m_reads_rx.(i) n;
  M.inc m_writes_rx.(i) n

let alloc_rx l n =
  alloc l n;
  let i = layer_index l in
  allocs_rx.(i) <- allocs_rx.(i) + n;
  alloc_blocks_rx.(i) <- alloc_blocks_rx.(i) + 1;
  M.inc m_allocs_rx.(i) n;
  M.inc m_alloc_blocks_rx.(i) 1

type snapshot = {
  s_reads : int array;
  s_writes : int array;
  s_copies : int array;
  s_allocs : int array;
  s_alloc_blocks : int array;
  s_reads_rx : int array;
  s_writes_rx : int array;
  s_copies_rx : int array;
  s_allocs_rx : int array;
  s_alloc_blocks_rx : int array;
}

let snapshot () =
  { s_reads = Array.copy reads;
    s_writes = Array.copy writes;
    s_copies = Array.copy copies;
    s_allocs = Array.copy allocs;
    s_alloc_blocks = Array.copy alloc_blocks;
    s_reads_rx = Array.copy reads_rx;
    s_writes_rx = Array.copy writes_rx;
    s_copies_rx = Array.copy copies_rx;
    s_allocs_rx = Array.copy allocs_rx;
    s_alloc_blocks_rx = Array.copy alloc_blocks_rx }

let diff later earlier =
  let d a b = Array.init n_layers (fun i -> a.(i) - b.(i)) in
  { s_reads = d later.s_reads earlier.s_reads;
    s_writes = d later.s_writes earlier.s_writes;
    s_copies = d later.s_copies earlier.s_copies;
    s_allocs = d later.s_allocs earlier.s_allocs;
    s_alloc_blocks = d later.s_alloc_blocks earlier.s_alloc_blocks;
    s_reads_rx = d later.s_reads_rx earlier.s_reads_rx;
    s_writes_rx = d later.s_writes_rx earlier.s_writes_rx;
    s_copies_rx = d later.s_copies_rx earlier.s_copies_rx;
    s_allocs_rx = d later.s_allocs_rx earlier.s_allocs_rx;
    s_alloc_blocks_rx = d later.s_alloc_blocks_rx earlier.s_alloc_blocks_rx }

let reset () =
  Array.fill reads 0 n_layers 0;
  Array.fill writes 0 n_layers 0;
  Array.fill copies 0 n_layers 0;
  Array.fill allocs 0 n_layers 0;
  Array.fill alloc_blocks 0 n_layers 0;
  Array.fill reads_rx 0 n_layers 0;
  Array.fill writes_rx 0 n_layers 0;
  Array.fill copies_rx 0 n_layers 0;
  Array.fill allocs_rx 0 n_layers 0;
  Array.fill alloc_blocks_rx 0 n_layers 0

let total a = Array.fold_left ( + ) 0 a

let reads_total s = total s.s_reads
let writes_total s = total s.s_writes
let copied_total s = total s.s_copies
let allocated_total s = total s.s_allocs
let alloc_blocks_total s = total s.s_alloc_blocks
let copied_rx_total s = total s.s_copies_rx
let allocated_rx_total s = total s.s_allocs_rx
let copied_tx_total s = copied_total s - copied_rx_total s
let allocated_tx_total s = allocated_total s - allocated_rx_total s

let of_layer s l =
  let i = layer_index l in
  (s.s_reads.(i), s.s_writes.(i), s.s_copies.(i), s.s_allocs.(i))

let of_layer_rx s l =
  let i = layer_index l in
  (s.s_reads_rx.(i), s.s_writes_rx.(i), s.s_copies_rx.(i), s.s_allocs_rx.(i))
