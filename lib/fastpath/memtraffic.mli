(** The memory-traffic ledger: global per-layer counters of the bytes the
    host data path reads, writes, copies and allocates.

    The paper's claim is that ILP wins by {e reducing memory accesses};
    the simulated backend proves it with charged cycles, and this ledger
    proves the same for the native lane and for the engine's host-side
    buffer management (where the cost shows up as copies and GC churn
    rather than simulated stalls).  Counters are plain module-global ints
    — bumping one from a hot loop allocates nothing — and are sampled
    with {!snapshot}/{!diff} around a measured region, exactly like the
    simulator's {!Ilp_memsim.Stats} ledger.

    Accounting convention: a blit is a {e copy} (read + write + copy), an
    in-place transform such as a cipher pass is read + write only, a
    checksum fold is read only, and every fresh [Bytes.create] on the
    data path is an {e alloc}.  The headline "bytes copied per TSDU"
    figure of [ilpbench mem] is {!copied_total}. *)

type layer = Marshal | Cipher | Checksum | Tcp | Rpc | Pool

val layer_name : layer -> string
val layers : layer list

(** [read l n] — the layer read [n] bytes (e.g. a checksum fold). *)
val read : layer -> int -> unit

(** [write l n] — the layer wrote [n] bytes it did not read. *)
val write : layer -> int -> unit

(** [copied l n] — the layer moved [n] bytes (read + write + copy). *)
val copied : layer -> int -> unit

(** [inplace l n] — the layer transformed [n] bytes in place. *)
val inplace : layer -> int -> unit

(** [alloc l n] — the layer allocated a fresh [n]-byte buffer. *)
val alloc : layer -> int -> unit

(** {1 Receive-direction charges}

    The plain entry points above are direction-blind totals.  Receive-path
    code charges through the [_rx] variants instead: each bumps the totals
    {e and} a receive-side sub-ledger, mirrored as [mem.rx.<layer>.<kind>]
    metrics, so per-direction consumers ([ilpbench mem] tx/rx columns and
    gates) can split the ledger.  The send share of any counter is
    total minus rx. *)

val read_rx : layer -> int -> unit
val write_rx : layer -> int -> unit
val copied_rx : layer -> int -> unit
val inplace_rx : layer -> int -> unit
val alloc_rx : layer -> int -> unit

type snapshot

val snapshot : unit -> snapshot

(** [diff later earlier] — counter deltas over a measured region. *)
val diff : snapshot -> snapshot -> snapshot

(** Zero all counters (fresh benchmark run). *)
val reset : unit -> unit

val reads_total : snapshot -> int
val writes_total : snapshot -> int
val copied_total : snapshot -> int
val allocated_total : snapshot -> int
val alloc_blocks_total : snapshot -> int

(** Per-direction splits of {!copied_total} / {!allocated_total}: the rx
    figures sum the [_rx] charges, the tx figures are the remainder. *)
val copied_rx_total : snapshot -> int

val copied_tx_total : snapshot -> int
val allocated_rx_total : snapshot -> int
val allocated_tx_total : snapshot -> int

(** [(reads, writes, copies, allocs)] of one layer. *)
val of_layer : snapshot -> layer -> int * int * int * int

(** The receive-side share of {!of_layer}. *)
val of_layer_rx : snapshot -> layer -> int * int * int * int
