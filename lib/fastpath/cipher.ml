type t =
  | Simple
  | Safer_simplified of Ilp_cipher.Safer_simplified.key
  | Safer of Ilp_cipher.Safer.key
  | Des of Ilp_cipher.Des.key

let name = function
  | Simple -> "simple"
  | Safer_simplified _ -> "SAFER-simplified"
  | Safer _ -> "SAFER-K64"
  | Des _ -> "DES"

let block_len _ = 8

(* The simple cipher vectorised in a 64-bit register: encrypt is
   [(b xor 0x55) + 0x3c mod 256] per byte.  The per-byte add uses the
   carry-isolation identity: with the addend's high bit clear, the low
   seven bits of each byte can be summed directly and the high bit fixed
   up with xor, so no carry crosses a byte boundary. *)

let x55 = 0x5555_5555_5555_5555L
let c3c = 0x3C3C_3C3C_3C3C_3C3CL
let h80 = 0x8080_8080_8080_8080L
let l7f = 0x7F7F_7F7F_7F7F_7F7FL

let simple_encrypt b ~off ~count =
  for k = 0 to count - 1 do
    let i = off + (k lsl 3) in
    let x = Int64.logxor (Words.get64 b i) x55 in
    let s =
      Int64.logxor (Int64.add (Int64.logand x l7f) c3c) (Int64.logand x h80)
    in
    Words.set64 b i s
  done

(* Decrypt is [(b - 0x3c) mod 256, then xor 0x55]: per-byte subtract via
   borrow isolation (set each byte's high bit so the low-bits subtraction
   cannot borrow across, then repair the high bit: it flips exactly when
   the original high bit was clear). *)
let simple_decrypt b ~off ~count =
  for k = 0 to count - 1 do
    let i = off + (k lsl 3) in
    let x = Words.get64 b i in
    let d =
      Int64.logxor
        (Int64.sub (Int64.logor x h80) c3c)
        (Int64.logand (Int64.lognot x) h80)
    in
    Words.set64 b i (Int64.logxor d x55)
  done

let check name b ~off ~count =
  if off < 0 || count < 0 || off + (count * 8) > Bytes.length b then
    invalid_arg (name ^ ": block run out of bounds")

let encrypt_blocks t b ~off ~count =
  check "Ilp_fastpath.Cipher.encrypt_blocks" b ~off ~count;
  match t with
  | Simple -> simple_encrypt b ~off ~count
  | Safer_simplified key -> Ilp_cipher.Safer_simplified.encrypt_blocks key b ~off ~count
  | Safer key -> Ilp_cipher.Safer.encrypt_blocks key b ~off ~count
  | Des key -> Ilp_cipher.Des.encrypt_blocks key b ~off ~count

let decrypt_blocks t b ~off ~count =
  check "Ilp_fastpath.Cipher.decrypt_blocks" b ~off ~count;
  match t with
  | Simple -> simple_decrypt b ~off ~count
  | Safer_simplified key -> Ilp_cipher.Safer_simplified.decrypt_blocks key b ~off ~count
  | Safer key -> Ilp_cipher.Safer.decrypt_blocks key b ~off ~count
  | Des key -> Ilp_cipher.Des.decrypt_blocks key b ~off ~count
