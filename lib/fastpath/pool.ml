(* Size-classed reusable buffer pool.  Free lists hold power-of-two-sized
   Bytes values; acquire rounds the request up to its class and reuses a
   free buffer when one is available, falling back to a fresh allocation
   when the class is empty (pool exhaustion is a performance event, never
   a failure).  Release returns a buffer to its class, dropping it to the
   GC when the class is already at capacity.  The acquired/released
   counters make leak assertions one subtraction. *)

module M = Ilp_obs.Metrics

(* Process-wide mirrors of the per-pool counters below; conservation over
   all pools, diffed per run by consumers. *)
let m_acquired = M.counter M.default "pool.acquired"
let m_released = M.counter M.default "pool.released"
let m_fresh = M.counter M.default "pool.fresh_allocs"
let m_dropped = M.counter M.default "pool.dropped"
let m_acquire_bytes = M.histogram M.default "pool.acquire_bytes"

let min_size = 64
let n_classes = 19 (* 64 B .. 16 MiB *)

let max_size = min_size lsl (n_classes - 1)

type stats = {
  acquired : int;
  released : int;
  outstanding : int;
  fresh_allocs : int;  (* acquires the free lists could not serve *)
  dropped : int;  (* releases past class capacity (or oversized) *)
}

type t = {
  free : Bytes.t list array;
  counts : int array;
  class_cap : int;
  mutable acquired : int;
  mutable released : int;
  mutable fresh_allocs : int;
  mutable dropped : int;
}

let create ?(class_cap = 8) () =
  if class_cap < 0 then invalid_arg "Pool.create: class_cap must be >= 0";
  { free = Array.make n_classes [];
    counts = Array.make n_classes 0;
    class_cap;
    acquired = 0;
    released = 0;
    fresh_allocs = 0;
    dropped = 0 }

let class_size i = min_size lsl i

(* Smallest class holding [len] bytes. *)
let class_index len =
  let rec go i = if class_size i >= len || i = n_classes - 1 then i else go (i + 1) in
  go 0

let fresh t len =
  t.fresh_allocs <- t.fresh_allocs + 1;
  M.inc m_fresh 1;
  Memtraffic.alloc Memtraffic.Pool len;
  Bytes.create len

let acquire t len =
  if len < 0 then invalid_arg "Pool.acquire: negative length";
  t.acquired <- t.acquired + 1;
  M.inc m_acquired 1;
  M.observe m_acquire_bytes len;
  if len > max_size then fresh t len
  else
    let i = class_index len in
    match t.free.(i) with
    | b :: rest ->
        t.free.(i) <- rest;
        t.counts.(i) <- t.counts.(i) - 1;
        b
    | [] -> fresh t (class_size i)

let release t b =
  t.released <- t.released + 1;
  M.inc m_released 1;
  let n = Bytes.length b in
  if n < min_size || n > max_size then begin
    t.dropped <- t.dropped + 1;
    M.inc m_dropped 1
  end
  else
    let i = class_index n in
    (* Only exact class-sized buffers rejoin a free list: an odd-sized
       stranger would silently shrink the class's capacity guarantee. *)
    if n <> class_size i || t.counts.(i) >= t.class_cap then begin
      t.dropped <- t.dropped + 1;
      M.inc m_dropped 1
    end
    else begin
      t.free.(i) <- b :: t.free.(i);
      t.counts.(i) <- t.counts.(i) + 1
    end

let stats t =
  { acquired = t.acquired;
    released = t.released;
    outstanding = t.acquired - t.released;
    fresh_allocs = t.fresh_allocs;
    dropped = t.dropped }

let outstanding t = t.acquired - t.released
