module Internet = Ilp_checksum.Internet

type t = {
  cipher : Cipher.t;
  staging : Bytes.t;  (* the separate path's intermediate protocol buffer *)
  max_len : int;
}

let create ~cipher ~max_len =
  if max_len < 0 then invalid_arg "Wire.create: max_len";
  { cipher; staging = Bytes.create max_len; max_len }

let cipher t = t.cipher
let max_len t = t.max_len

(* Chunk of the fused loop: big enough to amortise loop setup, small
   enough that a chunk written by one manipulation is still cache-resident
   when the next one reads it — the ILP premise applied at L1 scale. *)
let chunk = 4096

let check name ~src ~src_off ~len ~dst ~dst_off =
  if
    len < 0 || src_off < 0 || dst_off < 0
    || src_off + len > Bytes.length src
    || dst_off + len > Bytes.length dst
  then invalid_arg (name ^ ": out of bounds");
  if len mod 8 <> 0 then invalid_arg (name ^ ": length not a multiple of 8")

let send_separate t ~src ~src_off ~len ~dst ~dst_off =
  check "Wire.send_separate" ~src ~src_off ~len ~dst ~dst_off;
  if len > t.max_len then invalid_arg "Wire.send_separate: longer than max_len";
  (* Pass 1: marshal — move the message into the protocol buffer. *)
  Words.blit ~src ~src_off ~dst:t.staging ~dst_off:0 ~len;
  (* Pass 2: encrypt the protocol buffer in place. *)
  Cipher.encrypt_blocks t.cipher t.staging ~off:0 ~count:(len / 8);
  (* Pass 3: the TCP send copy into the ring. *)
  Words.blit ~src:t.staging ~src_off:0 ~dst ~dst_off ~len;
  (* Pass 4: the tcp_output checksum walk. *)
  Internet.add_bytes_unsafe Internet.empty dst ~off:dst_off ~len

let send_ilp t ~src ~src_off ~len ~dst ~dst_off =
  check "Wire.send_ilp" ~src ~src_off ~len ~dst ~dst_off;
  let acc = ref Internet.empty in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk (len - !pos) in
    let d = dst_off + !pos in
    Words.blit ~src ~src_off:(src_off + !pos) ~dst ~dst_off:d ~len:n;
    Cipher.encrypt_blocks t.cipher dst ~off:d ~count:(n / 8);
    acc := Internet.add_bytes_unsafe !acc dst ~off:d ~len:n;
    pos := !pos + n
  done;
  !acc

let recv_separate t ~src ~src_off ~len ~dst ~dst_off =
  check "Wire.recv_separate" ~src ~src_off ~len ~dst ~dst_off;
  (* Pass 1: the tcp_input checksum walk. *)
  let acc = Internet.add_bytes_unsafe Internet.empty src ~off:src_off ~len in
  (* Pass 2: decrypt the staged segment in place. *)
  Cipher.decrypt_blocks t.cipher src ~off:src_off ~count:(len / 8);
  (* Pass 3: unmarshal — copy the plaintext up to the application. *)
  Words.blit ~src ~src_off ~dst ~dst_off ~len;
  acc

let recv_ilp t ~src ~src_off ~len ~dst ~dst_off =
  check "Wire.recv_ilp" ~src ~src_off ~len ~dst ~dst_off;
  let acc = ref Internet.empty in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk (len - !pos) in
    let s = src_off + !pos and d = dst_off + !pos in
    acc := Internet.add_bytes_unsafe !acc src ~off:s ~len:n;
    Words.blit ~src ~src_off:s ~dst ~dst_off:d ~len:n;
    Cipher.decrypt_blocks t.cipher dst ~off:d ~count:(n / 8);
    pos := !pos + n
  done;
  !acc
