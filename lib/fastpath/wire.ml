module Internet = Ilp_checksum.Internet
module Mt = Memtraffic
module Trace = Ilp_obs.Trace

type t = {
  cipher : Cipher.t;
  pool : Pool.t option;
  (* The separate path's intermediate protocol buffer, drawn lazily (the
     ILP paths never touch it) and returned on {!release}. *)
  mutable staging : Bytes.t option;
  max_len : int;
}

let create ~cipher ?pool ~max_len () =
  if max_len < 0 then invalid_arg "Wire.create: max_len";
  { cipher; pool; staging = None; max_len }

let cipher t = t.cipher
let max_len t = t.max_len

let staging t =
  match t.staging with
  | Some b -> b
  | None ->
      let b =
        match t.pool with
        | Some p -> Pool.acquire p t.max_len
        | None ->
            Mt.alloc Mt.Marshal t.max_len;
            Bytes.create t.max_len
      in
      t.staging <- Some b;
      b

let release t =
  match t.staging with
  | None -> ()
  | Some b ->
      t.staging <- None;
      (match t.pool with Some p -> Pool.release p b | None -> ())

(* Chunk of the fused loop: big enough to amortise loop setup, small
   enough that a chunk written by one manipulation is still cache-resident
   when the next one reads it — the ILP premise applied at L1 scale. *)
let chunk = 4096

let check name ~src ~src_off ~len ~dst ~dst_off =
  if
    len < 0 || src_off < 0 || dst_off < 0
    || src_off + len > Bytes.length src
    || dst_off + len > Bytes.length dst
  then invalid_arg (name ^ ": out of bounds");
  if len mod 8 <> 0 then invalid_arg (name ^ ": length not a multiple of 8")

(* Trace helpers for the native passes: timestamps come from the
   installed wall clock ([Trace.set_clock]; constant 0 when none), packet
   correlation from the engine's [Trace.begin_packet].  Fused loops emit
   the full stage set with [arg = 1] marking stages whose work happened
   inside the single traversal. *)

let trace_send_passes ~pkt ~t0 ~t1 ~t2 ~t3 ~t4 =
  Trace.span Trace.Send_marshal ~packet:pkt ~ts:t0 ~dur:(t1 -. t0);
  Trace.span Trace.Send_encrypt ~packet:pkt ~ts:t1 ~dur:(t2 -. t1);
  Trace.span Trace.Send_ring_copy ~packet:pkt ~ts:t2 ~dur:(t3 -. t2);
  Trace.span Trace.Send_checksum ~packet:pkt ~ts:t3 ~dur:(t4 -. t3)

let trace_send_fused ~pkt ~t0 ~t1 =
  Trace.span ~arg:1 Trace.Send_marshal ~packet:pkt ~ts:t0 ~dur:0.0;
  Trace.span ~arg:1 Trace.Send_encrypt ~packet:pkt ~ts:t0 ~dur:(t1 -. t0);
  Trace.span ~arg:1 Trace.Send_checksum ~packet:pkt ~ts:t1 ~dur:0.0;
  Trace.span ~arg:1 Trace.Send_ring_copy ~packet:pkt ~ts:t1 ~dur:0.0

let send_separate t ~src ~src_off ~len ~dst ~dst_off =
  check "Wire.send_separate" ~src ~src_off ~len ~dst ~dst_off;
  if len > t.max_len then invalid_arg "Wire.send_separate: longer than max_len";
  let tr = Trace.enabled () in
  let buf = staging t in
  let t0 = if tr then Trace.now () else 0.0 in
  (* Pass 1: marshal — move the message into the protocol buffer. *)
  Words.blit ~src ~src_off ~dst:buf ~dst_off:0 ~len;
  Mt.copied Mt.Marshal len;
  let t1 = if tr then Trace.now () else 0.0 in
  (* Pass 2: encrypt the protocol buffer in place. *)
  Cipher.encrypt_blocks t.cipher buf ~off:0 ~count:(len / 8);
  Mt.inplace Mt.Cipher len;
  let t2 = if tr then Trace.now () else 0.0 in
  (* Pass 3: the TCP send copy into the ring. *)
  Words.blit ~src:buf ~src_off:0 ~dst ~dst_off ~len;
  Mt.copied Mt.Tcp len;
  let t3 = if tr then Trace.now () else 0.0 in
  (* Pass 4: the tcp_output checksum walk. *)
  Mt.read Mt.Checksum len;
  let acc = Internet.add_bytes_unsafe Internet.empty dst ~off:dst_off ~len in
  if tr then
    trace_send_passes ~pkt:(Trace.current_packet ()) ~t0 ~t1 ~t2 ~t3
      ~t4:(Trace.now ());
  acc

let send_ilp t ~src ~src_off ~len ~dst ~dst_off =
  check "Wire.send_ilp" ~src ~src_off ~len ~dst ~dst_off;
  let tr = Trace.enabled () in
  let t0 = if tr then Trace.now () else 0.0 in
  let acc = ref Internet.empty in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk (len - !pos) in
    let d = dst_off + !pos in
    Words.blit ~src ~src_off:(src_off + !pos) ~dst ~dst_off:d ~len:n;
    Cipher.encrypt_blocks t.cipher dst ~off:d ~count:(n / 8);
    acc := Internet.add_bytes_unsafe !acc dst ~off:d ~len:n;
    pos := !pos + n
  done;
  Mt.copied Mt.Marshal len;
  Mt.inplace Mt.Cipher len;
  Mt.read Mt.Checksum len;
  if tr then
    trace_send_fused ~pkt:(Trace.current_packet ()) ~t0 ~t1:(Trace.now ());
  !acc

let recv_separate t ~src ~src_off ~len ~dst ~dst_off =
  check "Wire.recv_separate" ~src ~src_off ~len ~dst ~dst_off;
  let tr = Trace.enabled () in
  let t0 = if tr then Trace.now () else 0.0 in
  (* Pass 1: the tcp_input checksum walk. *)
  let acc = Internet.add_bytes_unsafe Internet.empty src ~off:src_off ~len in
  Mt.read_rx Mt.Checksum len;
  let t1 = if tr then Trace.now () else 0.0 in
  (* Pass 2: decrypt the staged segment in place. *)
  Cipher.decrypt_blocks t.cipher src ~off:src_off ~count:(len / 8);
  Mt.inplace_rx Mt.Cipher len;
  let t2 = if tr then Trace.now () else 0.0 in
  (* Pass 3: unmarshal — copy the plaintext up to the application. *)
  Words.blit ~src ~src_off ~dst ~dst_off ~len;
  Mt.copied_rx Mt.Marshal len;
  if tr then begin
    let pkt = Trace.current_packet () and t3 = Trace.now () in
    Trace.span Trace.Recv_checksum ~packet:pkt ~ts:t0 ~dur:(t1 -. t0);
    Trace.span Trace.Recv_decrypt ~packet:pkt ~ts:t1 ~dur:(t2 -. t1);
    Trace.span Trace.Recv_unmarshal ~packet:pkt ~ts:t2 ~dur:(t3 -. t2)
  end;
  acc

let recv_ilp t ~src ~src_off ~len ~dst ~dst_off =
  check "Wire.recv_ilp" ~src ~src_off ~len ~dst ~dst_off;
  let tr = Trace.enabled () in
  let t0 = if tr then Trace.now () else 0.0 in
  let acc = ref Internet.empty in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk (len - !pos) in
    let s = src_off + !pos and d = dst_off + !pos in
    acc := Internet.add_bytes_unsafe !acc src ~off:s ~len:n;
    Words.blit ~src ~src_off:s ~dst ~dst_off:d ~len:n;
    Cipher.decrypt_blocks t.cipher dst ~off:d ~count:(n / 8);
    pos := !pos + n
  done;
  Mt.read_rx Mt.Checksum len;
  Mt.copied_rx Mt.Marshal len;
  Mt.inplace_rx Mt.Cipher len;
  if tr then begin
    let pkt = Trace.current_packet () and t1 = Trace.now () in
    Trace.span ~arg:1 Trace.Recv_checksum ~packet:pkt ~ts:t0 ~dur:0.0;
    Trace.span ~arg:1 Trace.Recv_decrypt ~packet:pkt ~ts:t0 ~dur:(t1 -. t0);
    Trace.span ~arg:1 Trace.Recv_unmarshal ~packet:pkt ~ts:t1 ~dur:0.0
  end;
  !acc

(* ------------------------------------------------------------------ *)
(* Scatter-gather sends: the marshal output described as an iovec list
   and assembled directly at [dst] — the single-copy path.  Segment
   boundaries are arbitrary; only the total must be a block multiple. *)

type iovec =
  | Io_bytes of { buf : Bytes.t; off : int; len : int }
  | Io_string of { s : string; off : int; len : int }

let iovec_len iov =
  List.fold_left
    (fun acc io ->
      acc + match io with Io_bytes b -> b.len | Io_string s -> s.len)
    0 iov

let check_iovec name iov =
  List.iter
    (fun io ->
      let ok =
        match io with
        | Io_bytes b -> b.off >= 0 && b.len >= 0 && b.off + b.len <= Bytes.length b.buf
        | Io_string s -> s.off >= 0 && s.len >= 0 && s.off + s.len <= String.length s.s
      in
      if not ok then invalid_arg (name ^ ": iovec out of bounds"))
    iov

let checkv name iov ~dst ~dst_off =
  check_iovec name iov;
  let total = iovec_len iov in
  if dst_off < 0 || dst_off + total > Bytes.length dst then
    invalid_arg (name ^ ": out of bounds");
  if total mod 8 <> 0 then invalid_arg (name ^ ": length not a multiple of 8");
  total

(* Gather [iov] at [dst+dst_off], invoking [flush pos] whenever a full
   chunk has been gathered since the last flush (and [pos] is therefore
   chunk-aligned relative to the flush cursor). *)
let gather iov ~dst ~dst_off ~flushed ~flush =
  let pos = ref 0 in
  let copy_slices blit len =
    let off = ref 0 in
    while !off < len do
      let room = chunk - (!pos - !flushed) in
      let n = min (len - !off) room in
      blit !off (dst_off + !pos) n;
      pos := !pos + n;
      off := !off + n;
      if !pos - !flushed = chunk then flush !pos
    done
  in
  List.iter
    (fun io ->
      match io with
      | Io_bytes b -> copy_slices (fun o d n -> Bytes.blit b.buf (b.off + o) dst d n) b.len
      | Io_string s ->
          copy_slices (fun o d n -> Bytes.blit_string s.s (s.off + o) dst d n) s.len)
    iov;
  !pos

let sendv_ilp t ~iov ~dst ~dst_off =
  let total = checkv "Wire.sendv_ilp" iov ~dst ~dst_off in
  let tr = Trace.enabled () in
  let t0 = if tr then Trace.now () else 0.0 in
  (* One traversal: each gathered chunk is encrypted and checksummed at
     [dst] while still cache-resident. *)
  let acc = ref Internet.empty in
  let flushed = ref 0 in
  let flush upto =
    if upto > !flushed then begin
      let n = upto - !flushed in
      let d = dst_off + !flushed in
      Cipher.encrypt_blocks t.cipher dst ~off:d ~count:(n / 8);
      acc := Internet.add_bytes_unsafe !acc dst ~off:d ~len:n;
      flushed := upto
    end
  in
  let gathered = gather iov ~dst ~dst_off ~flushed ~flush in
  flush gathered;
  Mt.copied Mt.Marshal total;
  Mt.inplace Mt.Cipher total;
  Mt.read Mt.Checksum total;
  if tr then
    trace_send_fused ~pkt:(Trace.current_packet ()) ~t0 ~t1:(Trace.now ());
  !acc

let sendv_separate t ~iov ~dst ~dst_off =
  let total = checkv "Wire.sendv_separate" iov ~dst ~dst_off in
  if total > t.max_len then invalid_arg "Wire.sendv_separate: longer than max_len";
  let tr = Trace.enabled () in
  let buf = staging t in
  let t0 = if tr then Trace.now () else 0.0 in
  (* Pass 1: marshal — gather the message into the protocol buffer. *)
  let flushed = ref 0 in
  ignore (gather iov ~dst:buf ~dst_off:0 ~flushed ~flush:(fun p -> flushed := p));
  Mt.copied Mt.Marshal total;
  let t1 = if tr then Trace.now () else 0.0 in
  (* Pass 2: encrypt the protocol buffer in place. *)
  Cipher.encrypt_blocks t.cipher buf ~off:0 ~count:(total / 8);
  Mt.inplace Mt.Cipher total;
  let t2 = if tr then Trace.now () else 0.0 in
  (* Pass 3: the TCP send copy into the ring. *)
  Words.blit ~src:buf ~src_off:0 ~dst ~dst_off ~len:total;
  Mt.copied Mt.Tcp total;
  let t3 = if tr then Trace.now () else 0.0 in
  (* Pass 4: the tcp_output checksum walk. *)
  Mt.read Mt.Checksum total;
  let acc = Internet.add_bytes_unsafe Internet.empty dst ~off:dst_off ~len:total in
  if tr then
    trace_send_passes ~pkt:(Trace.current_packet ()) ~t0 ~t1 ~t2 ~t3
      ~t4:(Trace.now ());
  acc
