(** Bump allocator for carving buffers out of a simulated address space.

    There is no [free]: the experiments allocate their working set once
    (application buffer, marshalling buffer, TCP ring, kernel buffer,
    cipher tables) and reuse it, exactly like the measured C programs. *)

type t

(** [create ~base ~limit] manages addresses in \[base, limit). *)
val create : base:int -> limit:int -> t

(** [alloc t ?align n] reserves [n] bytes aligned to [align] (default 8,
    must be a power of two).  Raises [Failure] when the space is
    exhausted. *)
val alloc : t -> ?align:int -> int -> int

(** Address of the next allocation (for introspection in tests). *)
val mark : t -> int

(** Bytes still available. *)
val remaining : t -> int
