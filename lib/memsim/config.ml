type t = {
  name : string;
  clock_mhz : float;
  l1d : Cache.config;
  l1i : Cache.config;
  l2 : Cache.config option;
  l1_hit_ns : float;
  l2_hit_ns : float;
  mem_ns : float;
  store_buffer_ns : float;
  compute_scale : float;
}

(* SuperSPARC: 16 KB 4-way write-through data cache with 32-byte lines,
   20 KB 5-way instruction cache with 64-byte lines.  The data cache does
   NOT allocate on write misses (store-around through the write buffer);
   this is what makes the paper's section 2.2 observation true — writing a
   packet 1-byte-wise into a non-resident area costs one write miss per
   byte, m-byte-wise only one per access. *)
let supersparc_l1d : Cache.config =
  { size = 16 * 1024; line = 32; assoc = 4;
    write_policy = Write_through; write_allocate = false }

let supersparc_l1i : Cache.config =
  { size = 20 * 1024; line = 64; assoc = 5;
    write_policy = Write_back; write_allocate = true }

(* Alpha 21064: 8 KB direct-mapped write-through data and instruction
   caches, 32-byte lines.  The direct mapping is what makes the fused ILP
   loop's code footprint conflict, reproducing the paper's observation that
   instruction cache misses eat 24-28% of memory system time on the AXPs. *)
let alpha_l1d : Cache.config =
  { size = 8 * 1024; line = 32; assoc = 1;
    write_policy = Write_through; write_allocate = false }

let alpha_l1i : Cache.config =
  { size = 8 * 1024; line = 32; assoc = 1;
    write_policy = Write_back; write_allocate = true }

let sparc_l2 : Cache.config =
  { size = 1024 * 1024; line = 128; assoc = 1;
    write_policy = Write_back; write_allocate = true }

let alpha_l2 : Cache.config =
  { size = 512 * 1024; line = 32; assoc = 1;
    write_policy = Write_back; write_allocate = true }

let sparc ~name ~clock_mhz ~l2 =
  { name;
    clock_mhz;
    l1d = supersparc_l1d;
    l1i = supersparc_l1i;
    l2;
    l1_hit_ns = 0.0 (* pipelined; charged via compute *);
    l2_hit_ns = 150.0;
    mem_ns = 420.0;
    store_buffer_ns = 40.0;
    compute_scale = 1.0 }

let alpha ~name ~clock_mhz =
  { name;
    clock_mhz;
    l1d = alpha_l1d;
    l1i = alpha_l1i;
    l2 = Some alpha_l2;
    l1_hit_ns = 0.0;
    l2_hit_ns = 125.0;
    mem_ns = 420.0;
    store_buffer_ns = 40.0;
    (* The 21064 has no byte load/store instructions: every byte access
       compiles to a load-quad / extract / insert / store-quad sequence,
       so the byte-oriented manipulations of this stack cost several
       Alpha operations per abstract op; OSF/1's heavier in-process
       protocol path (the paper: "the operating system on DEC Alpha
       workstations causes a very high overhead") adds to the same
       per-op figure.  2.4 reproduces the paper's Table 1 magnitudes. *)
    compute_scale = 2.4 }

let ss10_30 = sparc ~name:"SS10-30" ~clock_mhz:36.0 ~l2:None
let ss10_41 = sparc ~name:"SS10-41" ~clock_mhz:40.0 ~l2:(Some sparc_l2)
let ss10_51 = sparc ~name:"SS10-51" ~clock_mhz:50.0 ~l2:(Some sparc_l2)
let ss20_60 = sparc ~name:"SS20-60" ~clock_mhz:60.0 ~l2:(Some sparc_l2)
let axp3000_500 = alpha ~name:"AXP3000/500" ~clock_mhz:150.0
let axp3000_600 = alpha ~name:"AXP3000/600" ~clock_mhz:175.0
let axp3000_800 = alpha ~name:"AXP3000/800" ~clock_mhz:200.0

let all =
  [ ss10_30; ss10_41; ss10_51; ss20_60; axp3000_500; axp3000_600; axp3000_800 ]

let figure9 = [ ss10_30; ss10_41; ss20_60; axp3000_800 ]

let by_name name =
  List.find_opt (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name) all

let tiny_l1d : Cache.config =
  { size = 256; line = 16; assoc = 2;
    write_policy = Write_back; write_allocate = true }

let tiny_l1i : Cache.config =
  { size = 256; line = 16; assoc = 1;
    write_policy = Write_back; write_allocate = true }

let custom ?(name = "custom") ?(clock_mhz = 100.0) ?(l1d = tiny_l1d)
    ?(l1i = tiny_l1i) ?(l2 = None) ?(l1_hit_ns = 0.0) ?(l2_hit_ns = 50.0)
    ?(mem_ns = 200.0) ?(store_buffer_ns = 50.0) ?(compute_scale = 1.0) () =
  { name; clock_mhz; l1d; l1i; l2; l1_hit_ns; l2_hit_ns; mem_ns; store_buffer_ns;
    compute_scale }

let ns_to_cycles t ns =
  if ns <= 0.0 then 0 else max 1 (int_of_float (Float.round (ns *. t.clock_mhz /. 1000.0)))

let l1_hit_cycles t = ns_to_cycles t t.l1_hit_ns
let store_buffer_cycles t = ns_to_cycles t t.store_buffer_ns
let l2_hit_cycles t = ns_to_cycles t t.l2_hit_ns
let mem_cycles t = ns_to_cycles t t.mem_ns
