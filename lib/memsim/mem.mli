(** Simulated main memory: a flat byte-addressed space whose typed
    accessors move real bytes {e and} charge the owning {!Machine}.

    All multi-byte accessors use network byte order (big-endian), matching
    the XDR and TCP encodings built on top.  The [peek_*]/[poke_*] variants
    touch the bytes without charging the machine — they model agents other
    than the measured CPU (test setup, the simulated network adapter). *)

type t

(** [create machine ~size] allocates a [size]-byte address space
    \[0, size). *)
val create : Machine.t -> size:int -> t

val machine : t -> Machine.t
val size : t -> int

(** {1 Charged accessors (the measured CPU)} *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_u64 : t -> int -> int64
val set_u64 : t -> int -> int64 -> unit

(** [blit t ~src ~dst ~len ~unit_len] copies [len] bytes as a CPU copy
    loop working in [unit_len]-byte accesses (1, 2, 4 or 8): each unit is
    one charged read plus one charged write plus one ALU op.  A trailing
    fragment shorter than [unit_len] is copied byte-wise.  Overlapping
    ranges copy correctly in the forward direction. *)
val blit : t -> src:int -> dst:int -> len:int -> unit_len:int -> unit

(** {1 Uncharged accessors (everyone else)} *)

val peek_u8 : t -> int -> int
val poke_u8 : t -> int -> int -> unit
val peek_u16 : t -> int -> int
val poke_u16 : t -> int -> int -> unit
val peek_u32 : t -> int -> int
val poke_u32 : t -> int -> int -> unit
val peek_bytes : t -> pos:int -> len:int -> Bytes.t
val poke_bytes : t -> pos:int -> Bytes.t -> unit
val poke_string : t -> pos:int -> string -> unit

(** The backing store itself — the zero-copy uncharged accessor.  Native
    (un-simulated) kernels operate on simulated memory through this
    without per-message staging copies; address arithmetic is the
    caller's.  Like the [peek]/[poke] family, going through it charges
    nothing. *)
val raw : t -> Bytes.t
