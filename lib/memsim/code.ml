type region = { base : int; len : int }

type allocator = { mutable next : int }

(* Instruction addresses live in their own space; the base offset merely
   keeps them visually distinct from data addresses in traces. *)
let allocator () = { next = 0x4000_0000 }

let alloc a ~len =
  if len < 0 then invalid_arg "Code.alloc: negative length";
  let base = a.next in
  (* Align regions to 64 bytes so two regions never share a cache line on
     any of the modelled machines. *)
  a.next <- (base + len + 63) land lnot 63;
  { base; len }

let none = { base = 0; len = 0 }
