(** Access and miss counters for the simulated memory hierarchy.

    The paper's evaluation (its figures 13 and 14) reports memory accesses
    and cache misses broken down by access kind (read / write) and by access
    size (1, 2, 4 or 8 bytes): the size breakdown is what exposes the
    byte-wise behaviour of the simplified SAFER K-64 cipher.  This module is
    the ledger those figures are produced from. *)

type kind =
  | Read   (** data load *)
  | Write  (** data store *)
  | Ifetch (** instruction fetch *)

type t

val create : unit -> t

(** [record_access t kind ~size] counts one access of [size] bytes
    (1, 2, 4 or 8). *)
val record_access : t -> kind -> size:int -> unit

(** [record_miss t kind ~size ~level] counts one miss at cache [level]
    (1 = first-level, 2 = second-level) attributed to an access of
    [size] bytes. *)
val record_miss : t -> kind -> size:int -> level:int -> unit

(** [accesses t kind] is the total number of accesses of that kind;
    [accesses_of_size t kind ~size] restricts to one access size. *)
val accesses : t -> kind -> int

val accesses_of_size : t -> kind -> size:int -> int

(** Misses at a given cache level, summed over sizes or per size. *)
val misses : t -> kind -> level:int -> int

val misses_of_size : t -> kind -> size:int -> level:int -> int

(** [bytes t kind] is the number of bytes moved by all accesses of [kind]. *)
val bytes : t -> kind -> int

(** [miss_ratio t kind ~level] is misses / accesses (0 when no accesses). *)
val miss_ratio : t -> kind -> level:int -> float

(** Combined first-level data-cache miss ratio over reads and writes, as
    reported in the paper's section 4.2. *)
val data_miss_ratio : t -> float

val reset : t -> unit

(** [accumulate ~into t] adds [t]'s counters into [into]. *)
val accumulate : into:t -> t -> unit

val copy : t -> t

(** [diff a b] is the counter-wise difference [a - b]; with [b] a snapshot
    taken before a code region and [a] one taken after, this attributes the
    region's accesses. *)
val diff : t -> t -> t

(** [scale t f] returns a fresh ledger with every counter multiplied by [f]
    and rounded; used to normalise a scaled-down run to the paper's
    10.7 Mbyte transfer volume. *)
val scale : t -> float -> t

val pp : Format.formatter -> t -> unit
