type kind = Read | Write | Ifetch

let kind_index = function Read -> 0 | Write -> 1 | Ifetch -> 2

(* Size classes 1, 2, 4, 8 bytes map to indices 0..3. *)
let size_class size =
  match size with
  | 1 -> 0
  | 2 -> 1
  | 4 -> 2
  | 8 -> 3
  | _ -> invalid_arg (Printf.sprintf "Stats: unsupported access size %d" size)

let class_size = [| 1; 2; 4; 8 |]

let n_kinds = 3
let n_sizes = 4
let n_levels = 2

type t = {
  acc : int array; (* [kind * n_sizes + size_class] *)
  mis : int array; (* [(kind * n_sizes + size_class) * n_levels + level-1] *)
}

let create () =
  { acc = Array.make (n_kinds * n_sizes) 0;
    mis = Array.make (n_kinds * n_sizes * n_levels) 0 }

let record_access t k ~size =
  let i = (kind_index k * n_sizes) + size_class size in
  t.acc.(i) <- t.acc.(i) + 1

let record_miss t k ~size ~level =
  if level < 1 || level > n_levels then invalid_arg "Stats.record_miss: level";
  let i = (((kind_index k * n_sizes) + size_class size) * n_levels) + (level - 1) in
  t.mis.(i) <- t.mis.(i) + 1

let accesses_of_size t k ~size = t.acc.((kind_index k * n_sizes) + size_class size)

let accesses t k =
  let base = kind_index k * n_sizes in
  let sum = ref 0 in
  for s = 0 to n_sizes - 1 do
    sum := !sum + t.acc.(base + s)
  done;
  !sum

let misses_of_size t k ~size ~level =
  t.mis.((((kind_index k * n_sizes) + size_class size) * n_levels) + (level - 1))

let misses t k ~level =
  let sum = ref 0 in
  for s = 0 to n_sizes - 1 do
    sum := !sum + t.mis.((((kind_index k * n_sizes) + s) * n_levels) + (level - 1))
  done;
  !sum

let bytes t k =
  let base = kind_index k * n_sizes in
  let sum = ref 0 in
  for s = 0 to n_sizes - 1 do
    sum := !sum + (t.acc.(base + s) * class_size.(s))
  done;
  !sum

let miss_ratio t k ~level =
  let a = accesses t k in
  if a = 0 then 0.0 else float_of_int (misses t k ~level) /. float_of_int a

let data_miss_ratio t =
  let a = accesses t Read + accesses t Write in
  if a = 0 then 0.0
  else
    float_of_int (misses t Read ~level:1 + misses t Write ~level:1)
    /. float_of_int a

let reset t =
  Array.fill t.acc 0 (Array.length t.acc) 0;
  Array.fill t.mis 0 (Array.length t.mis) 0

let accumulate ~into t =
  Array.iteri (fun i v -> into.acc.(i) <- into.acc.(i) + v) t.acc;
  Array.iteri (fun i v -> into.mis.(i) <- into.mis.(i) + v) t.mis

let copy t = { acc = Array.copy t.acc; mis = Array.copy t.mis }

let diff a b =
  { acc = Array.mapi (fun i v -> v - b.acc.(i)) a.acc;
    mis = Array.mapi (fun i v -> v - b.mis.(i)) a.mis }

let scale t f =
  let round x = int_of_float (Float.round x) in
  { acc = Array.map (fun v -> round (float_of_int v *. f)) t.acc;
    mis = Array.map (fun v -> round (float_of_int v *. f)) t.mis }

let pp ppf t =
  let name = function Read -> "read" | Write -> "write" | Ifetch -> "ifetch" in
  List.iter
    (fun k ->
      Format.fprintf ppf "%-6s accesses=%-10d bytes=%-10d L1-miss=%-8d L2-miss=%-8d@."
        (name k) (accesses t k) (bytes t k)
        (misses t k ~level:1) (misses t k ~level:2))
    [ Read; Write; Ifetch ]
