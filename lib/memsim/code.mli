(** Code regions for instruction-cache modelling.

    Every data-manipulation function owns a region in a dedicated
    instruction address space.  Executing the function on one processing
    unit "fetches" its region through the instruction cache, so a fused
    ILP loop — which interleaves all its stages' regions on every unit —
    thrashes a small direct-mapped instruction cache while the non-ILP
    implementation runs each region hot for a whole buffer pass. *)

type region = private { base : int; len : int }

type allocator

val allocator : unit -> allocator

(** [alloc a ~len] reserves [len] contiguous bytes of instruction space.
    Regions never overlap within an allocator. *)
val alloc : allocator -> len:int -> region

(** A zero-length region: executing it touches no instruction lines.
    Used for stages whose footprint is folded into another stage's. *)
val none : region
