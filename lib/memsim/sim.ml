type t = {
  machine : Machine.t;
  mem : Mem.t;
  alloc : Alloc.t;
  code : Code.allocator;
}

let create ?(mem_size = 4 * 1024 * 1024) config =
  let machine = Machine.create config in
  let mem = Mem.create machine ~size:mem_size in
  (* Skip page 0 so that address 0 can serve as a poison value. *)
  let alloc = Alloc.create ~base:4096 ~limit:mem_size in
  { machine; mem; alloc; code = Code.allocator () }

let reset_counters t = Machine.reset_counters t.machine

let cold_start t =
  Machine.reset_counters t.machine;
  Machine.flush_caches t.machine
