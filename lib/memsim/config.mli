(** Hardware descriptions of the seven workstations used in the paper's
    evaluation, plus a way to build custom machines.

    Geometry sources: the paper's introduction (16 KB data / 20 KB
    instruction first-level caches on SuperSPARC, 8 KB data and instruction
    caches on the Alpha 21064, 512 KB second-level cache on the
    AXP 3000/500) and the machines' published data sheets.  Latencies are
    stored in nanoseconds so that the cycle cost scales with the clock, as
    it did historically: the same DRAM served a 36 MHz SPARC and a 200 MHz
    Alpha. *)

type t = {
  name : string;
  clock_mhz : float;
  l1d : Cache.config;
  l1i : Cache.config;
  l2 : Cache.config option;  (** [None] models the SS10-30 *)
  l1_hit_ns : float;         (** first-level hit latency *)
  l2_hit_ns : float;         (** second-level hit latency *)
  mem_ns : float;            (** main-memory access latency *)
  store_buffer_ns : float;
  (** amortised cost of a store that misses a no-write-allocate cache and
      drains through the write buffer (much cheaper than a read miss, but
      not free — this is why byte-wise stores into uncached areas hurt) *)
  compute_scale : float;
  (** cycles charged per abstract ALU operation; models issue width *)
}

val ss10_30 : t
val ss10_41 : t
val ss10_51 : t
val ss20_60 : t
val axp3000_500 : t
val axp3000_600 : t
val axp3000_800 : t

(** The seven paper machines, in the order of the paper's Table 1. *)
val all : t list

(** The four machines of the paper's figures 9 and 10. *)
val figure9 : t list

val by_name : string -> t option

(** [custom ()] is a small synthetic machine for unit tests: 256-byte
    2-way L1D with 16-byte lines, 256-byte direct-mapped L1I, no L2,
    deliberately tiny so that eviction behaviour is easy to provoke. *)
val custom :
  ?name:string ->
  ?clock_mhz:float ->
  ?l1d:Cache.config ->
  ?l1i:Cache.config ->
  ?l2:Cache.config option ->
  ?l1_hit_ns:float ->
  ?l2_hit_ns:float ->
  ?mem_ns:float ->
  ?store_buffer_ns:float ->
  ?compute_scale:float ->
  unit ->
  t

(** Latencies converted to cycles on this machine's clock (at least 1). *)
val l1_hit_cycles : t -> int

val l2_hit_cycles : t -> int
val mem_cycles : t -> int
val store_buffer_cycles : t -> int
