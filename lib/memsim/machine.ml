type t = {
  cfg : Config.t;
  l1d_write_through : bool;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t option;
  stats : Stats.t;
  (* [cycles; stall; ifetch_stall] — a flat float array is unboxed, so
     charging cycles on the per-byte hot path allocates nothing, where a
     [mutable ... : float] record field boxes every update. *)
  counters : float array;
  l1_hit_cycles : float;
  l2_hit_cycles : float;
  mem_cycles : float;
  store_buffer_cycles : float;
  compute_scale : float;
}

let create cfg =
  { cfg;
    l1d_write_through =
      cfg.Config.l1d.Cache.write_policy = Cache.Write_through;
    l1d = Cache.create cfg.Config.l1d;
    l1i = Cache.create cfg.Config.l1i;
    l2 = Option.map Cache.create cfg.Config.l2;
    stats = Stats.create ();
    counters = Array.make 3 0.0;
    l1_hit_cycles = float_of_int (Config.l1_hit_cycles cfg);
    l2_hit_cycles = float_of_int (Config.l2_hit_cycles cfg);
    mem_cycles = float_of_int (Config.mem_cycles cfg);
    store_buffer_cycles = float_of_int (Config.store_buffer_cycles cfg);
    compute_scale = cfg.Config.compute_scale }

let config t = t.cfg

(* Cost of reaching below the first-level cache: either an L2 access (with
   its own possible miss to memory) or memory directly.  [kind]/[size] are
   only used to attribute second-level misses in the ledger. *)
let charge_stall t kind c =
  let ctr = t.counters in
  ctr.(0) <- ctr.(0) +. c;
  ctr.(1) <- ctr.(1) +. c;
  if kind = Stats.Ifetch then ctr.(2) <- ctr.(2) +. c

(* Write-buffer drain cost for a [size]-byte store.  Computed and charged
   inside one function: a float computed at a call site is boxed to be
   passed as an argument, and on a write-through cache this runs for every
   simulated store. *)
let charge_store_drain t size =
  let c = t.store_buffer_cycles *. float_of_int size /. 4.0 in
  let ctr = t.counters in
  ctr.(0) <- ctr.(0) +. c;
  ctr.(1) <- ctr.(1) +. c

let below_l1 t kind ~size ~addr ~write =
  match t.l2 with
  | None -> charge_stall t kind t.mem_cycles
  | Some l2 ->
      let o = Cache.access l2 ~addr ~write in
      if (Cache.hit o) then charge_stall t kind t.l2_hit_cycles
      else begin
        Stats.record_miss t.stats kind ~size ~level:2;
        charge_stall t kind t.mem_cycles;
        if (Cache.writeback o) then charge_stall t kind t.mem_cycles
      end

let data_access t kind ~addr ~size =
  Stats.record_access t.stats kind ~size;
  let write = kind = Stats.Write in
  (* In a write-through cache every store drains through the write buffer
     whether it hits or misses; the buffer merges consecutive stores to a
     line, so the amortised cost scales with the bytes written
     (store_buffer_ns is the drain cost of a 4-byte store).  A store miss
     is additionally counted in the ledger — that is the quantity the
     paper's cachesim reports — but a byte-wise store stream is only
     marginally slower than a word-wise one, not 4x. *)
  if write && t.l1d_write_through then charge_store_drain t size;
  let line = Cache.line_size t.l1d in
  let first = addr land lnot (line - 1) in
  let last = (addr + size - 1) land lnot (line - 1) in
  (* A [for] loop, not a [ref] cursor: this runs for every simulated
     access and a ref cell is a minor-heap allocation per call. *)
  for j = 0 to (last - first) / line do
    let a = first + (j * line) in
    let o = Cache.access t.l1d ~addr:a ~write in
    if Cache.hit o then charge_stall t kind t.l1_hit_cycles
    else begin
      Stats.record_miss t.stats kind ~size ~level:1;
      if write && not (Cache.filled o) then
        (* Store-around: the drain charge above covers it. *)
        (if not t.l1d_write_through then charge_store_drain t size)
      else begin
        below_l1 t kind ~size ~addr:a ~write:false;
        if Cache.writeback o then below_l1 t Stats.Write ~size ~addr:a ~write:true
      end
    end
  done

let read t ~addr ~size = data_access t Stats.Read ~addr ~size
let write t ~addr ~size = data_access t Stats.Write ~addr ~size

let exec t (region : Code.region) =
  if region.Code.len > 0 then begin
    let line = Cache.line_size t.l1i in
    let first = region.Code.base land lnot (line - 1) in
    let last = (region.Code.base + region.Code.len - 1) land lnot (line - 1) in
    for j = 0 to (last - first) / line do
      let a = first + (j * line) in
      Stats.record_access t.stats Stats.Ifetch ~size:4;
      let o = Cache.access t.l1i ~addr:a ~write:false in
      if not (Cache.hit o) then begin
        Stats.record_miss t.stats Stats.Ifetch ~size:4 ~level:1;
        below_l1 t Stats.Ifetch ~size:4 ~addr:a ~write:false
      end
    done
  end

let compute t ops =
  if ops > 0 then
    t.counters.(0) <- t.counters.(0) +. (float_of_int ops *. t.compute_scale)

let charge_cycles t c = t.counters.(0) <- t.counters.(0) +. c

let charge_micros t us =
  if us <> 0.0 then
    t.counters.(0) <- t.counters.(0) +. (us *. t.cfg.Config.clock_mhz)

let cycles t = t.counters.(0)
let stall_cycles t = t.counters.(1)
let ifetch_stall_cycles t = t.counters.(2)
let stall_micros t = t.counters.(1) /. t.cfg.Config.clock_mhz
let micros t = t.counters.(0) /. t.cfg.Config.clock_mhz
let stats t = t.stats

let reset_counters t =
  Array.fill t.counters 0 3 0.0;
  Stats.reset t.stats

let flush_caches t =
  Cache.flush t.l1d;
  Cache.flush t.l1i;
  Option.iter Cache.flush t.l2
