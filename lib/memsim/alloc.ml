type t = { mutable next : int; limit : int }

let create ~base ~limit =
  if base < 0 || limit < base then invalid_arg "Alloc.create";
  { next = base; limit }

let alloc t ?(align = 8) n =
  if n < 0 then invalid_arg "Alloc.alloc: negative size";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Alloc.alloc: alignment must be a power of two";
  let addr = (t.next + align - 1) land lnot (align - 1) in
  if addr + n > t.limit then
    failwith
      (Printf.sprintf "Alloc.alloc: out of simulated memory (want %d, have %d)" n
         (t.limit - addr));
  t.next <- addr + n;
  addr

let mark t = t.next
let remaining t = t.limit - t.next
