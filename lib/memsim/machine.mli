(** A simulated machine: cache hierarchy, cycle counter and access ledger.

    This is the clock every experiment is measured against.  Data accesses
    move through the first-level data cache, the optional second-level
    cache, and main memory; instruction fetches move through the
    instruction cache; register/ALU work is charged with {!compute}.
    Packet processing time in microseconds is [cycles / clock].

    Cycle charging: a first-level hit costs the configured L1 latency
    (usually 0 — the load pipeline is folded into the instruction's compute
    charge); a miss costs the L2 hit or main-memory latency for the line
    fill, plus a writeback charge when a dirty line is evicted.
    Write-through caches never hold dirty lines; their write traffic is
    assumed absorbed by a write buffer. *)

type t

val create : Config.t -> t
val config : t -> Config.t

(** [read t ~addr ~size] / [write t ~addr ~size] charge one data access of
    [size] bytes (1, 2, 4 or 8) at [addr], splitting across cache lines if
    the access straddles one. *)
val read : t -> addr:int -> size:int -> unit

val write : t -> addr:int -> size:int -> unit

(** [exec t region] fetches a code region through the instruction cache.
    Only misses cost cycles; the execution cost itself is charged by the
    caller via {!compute}. *)
val exec : t -> Code.region -> unit

(** [compute t ops] charges [ops] abstract ALU operations
    ([ops * compute_scale] cycles). *)
val compute : t -> int -> unit

(** [charge_cycles t c] charges raw cycles (fixed control costs). *)
val charge_cycles : t -> float -> unit

(** [charge_micros t us] charges a latency expressed in microseconds
    (per-packet operating-system costs). *)
val charge_micros : t -> float -> unit

val cycles : t -> float
val micros : t -> float

(** Cycles spent stalled on the memory system (cache fills, write-buffer
    drains) — the quantity the paper's [atom] simulations call "memory
    system time". *)
val stall_cycles : t -> float

val stall_micros : t -> float

(** The instruction-fetch share of {!stall_cycles} (the paper observed
    24-28% on the Alphas under ILP). *)
val ifetch_stall_cycles : t -> float

val stats : t -> Stats.t

(** Zero the cycle counter and the ledger, keeping cache contents (used to
    exclude warm-up from a measurement). *)
val reset_counters : t -> unit

(** Invalidate all caches. *)
val flush_caches : t -> unit
