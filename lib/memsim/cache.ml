type write_policy = Write_back | Write_through

type config = {
  size : int;
  line : int;
  assoc : int;
  write_policy : write_policy;
  write_allocate : bool;
}

let direct_mapped ~size ~line =
  { size; line; assoc = 1; write_policy = Write_back; write_allocate = true }

let set_associative ~size ~line ~assoc =
  { size; line; assoc; write_policy = Write_back; write_allocate = true }

type t = {
  cfg : config;
  sets : int;
  line_shift : int;
  (* Way state, indexed [set * assoc + way]. *)
  tags : int array;
  valid : bool array;
  dirty : bool array;
  age : int array; (* larger = more recently used *)
  mutable tick : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  if not (is_power_of_two cfg.line) then invalid_arg "Cache.create: line size";
  if cfg.assoc < 1 then invalid_arg "Cache.create: associativity";
  if cfg.size mod (cfg.line * cfg.assoc) <> 0 then
    invalid_arg "Cache.create: size not divisible by line*assoc";
  let sets = cfg.size / (cfg.line * cfg.assoc) in
  let ways = sets * cfg.assoc in
  { cfg;
    sets;
    line_shift = log2 cfg.line;
    tags = Array.make ways 0;
    valid = Array.make ways false;
    dirty = Array.make ways false;
    age = Array.make ways 0;
    tick = 0 }

let config t = t.cfg

(* Outcomes are packed into an int so that [access] — the innermost loop
   of every simulated byte — allocates nothing.  A record here costs one
   minor-heap block per cache-line touch, which at ~19M words per 64 KiB
   message drowns the data-path allocation signal the memory-traffic
   benchmark exists to measure. *)
type outcome = int

let hit_bit = 1
let writeback_bit = 2
let filled_bit = 4
let hit (o : outcome) = o land hit_bit <> 0
let writeback (o : outcome) = o land writeback_bit <> 0
let filled (o : outcome) = o land filled_bit <> 0

(* No tuples, options or refs below: [access] runs once per cache line of
   every simulated byte, so its helpers return plain ints ([find_way]
   yields -1 for "not resident"). *)

let locate_set t addr = (addr lsr t.line_shift) mod t.sets
let locate_tag t addr = (addr lsr t.line_shift) / t.sets

(* The lookup loops recurse through top-level functions: a [let rec]
   nested inside a function captures its environment and allocates a
   closure on every call. *)

let rec find_from valid tags base tag assoc w =
  if w = assoc then -1
  else if valid.(base + w) && tags.(base + w) = tag then base + w
  else find_from valid tags base tag assoc (w + 1)

let find_way t set tag =
  find_from t.valid t.tags (set * t.cfg.assoc) tag t.cfg.assoc 0

(* Victim selection: an invalid way if any, otherwise the least recently
   used one. *)
let rec victim_from valid age base assoc w best best_key =
  if w = assoc then best
  else
    let i = base + w in
    let key = if valid.(i) then age.(i) else min_int + w in
    if key < best_key then victim_from valid age base assoc (w + 1) i key
    else victim_from valid age base assoc (w + 1) best best_key

let victim_way t set =
  let base = set * t.cfg.assoc in
  victim_from t.valid t.age base t.cfg.assoc 0 base max_int

let touch t i =
  t.tick <- t.tick + 1;
  t.age.(i) <- t.tick

let access t ~addr ~write =
  let set = locate_set t addr in
  let tag = locate_tag t addr in
  let i = find_way t set tag in
  if i >= 0 then begin
    touch t i;
    if write then begin
      match t.cfg.write_policy with
      | Write_back -> t.dirty.(i) <- true
      | Write_through -> ()
    end;
    hit_bit
  end
  else if write && not t.cfg.write_allocate then
    (* Store-around: the write goes straight to the next level. *)
    0
  else begin
    let i = victim_way t set in
    let wb = t.valid.(i) && t.dirty.(i) in
    t.tags.(i) <- tag;
    t.valid.(i) <- true;
    t.dirty.(i) <- (write && t.cfg.write_policy = Write_back);
    touch t i;
    if wb then writeback_bit lor filled_bit else filled_bit
  end

let present t ~addr = find_way t (locate_set t addr) (locate_tag t addr) >= 0

let flush t =
  Array.fill t.valid 0 (Array.length t.valid) false;
  Array.fill t.dirty 0 (Array.length t.dirty) false

let line_size t = t.cfg.line
