type write_policy = Write_back | Write_through

type config = {
  size : int;
  line : int;
  assoc : int;
  write_policy : write_policy;
  write_allocate : bool;
}

let direct_mapped ~size ~line =
  { size; line; assoc = 1; write_policy = Write_back; write_allocate = true }

let set_associative ~size ~line ~assoc =
  { size; line; assoc; write_policy = Write_back; write_allocate = true }

type t = {
  cfg : config;
  sets : int;
  line_shift : int;
  (* Way state, indexed [set * assoc + way]. *)
  tags : int array;
  valid : bool array;
  dirty : bool array;
  age : int array; (* larger = more recently used *)
  mutable tick : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create cfg =
  if not (is_power_of_two cfg.line) then invalid_arg "Cache.create: line size";
  if cfg.assoc < 1 then invalid_arg "Cache.create: associativity";
  if cfg.size mod (cfg.line * cfg.assoc) <> 0 then
    invalid_arg "Cache.create: size not divisible by line*assoc";
  let sets = cfg.size / (cfg.line * cfg.assoc) in
  let ways = sets * cfg.assoc in
  { cfg;
    sets;
    line_shift = log2 cfg.line;
    tags = Array.make ways 0;
    valid = Array.make ways false;
    dirty = Array.make ways false;
    age = Array.make ways 0;
    tick = 0 }

let config t = t.cfg

type outcome = { hit : bool; writeback : bool; filled : bool }

let locate t addr =
  let block = addr lsr t.line_shift in
  let set = block mod t.sets in
  let tag = block / t.sets in
  (set, tag)

let find_way t set tag =
  let base = set * t.cfg.assoc in
  let rec go w =
    if w = t.cfg.assoc then None
    else if t.valid.(base + w) && t.tags.(base + w) = tag then Some (base + w)
    else go (w + 1)
  in
  go 0

(* Victim selection: an invalid way if any, otherwise the least recently
   used one. *)
let victim_way t set =
  let base = set * t.cfg.assoc in
  let best = ref base in
  let best_key = ref max_int in
  for w = 0 to t.cfg.assoc - 1 do
    let i = base + w in
    let key = if t.valid.(i) then t.age.(i) else min_int + w in
    if key < !best_key then begin
      best := i;
      best_key := key
    end
  done;
  !best

let touch t i =
  t.tick <- t.tick + 1;
  t.age.(i) <- t.tick

let access t ~addr ~write =
  let set, tag = locate t addr in
  match find_way t set tag with
  | Some i ->
      touch t i;
      if write then begin
        match t.cfg.write_policy with
        | Write_back -> t.dirty.(i) <- true
        | Write_through -> ()
      end;
      { hit = true; writeback = false; filled = false }
  | None ->
      if write && not t.cfg.write_allocate then
        (* Store-around: the write goes straight to the next level. *)
        { hit = false; writeback = false; filled = false }
      else begin
        let i = victim_way t set in
        let writeback = t.valid.(i) && t.dirty.(i) in
        t.tags.(i) <- tag;
        t.valid.(i) <- true;
        t.dirty.(i) <- (write && t.cfg.write_policy = Write_back);
        touch t i;
        { hit = false; writeback; filled = true }
      end

let present t ~addr =
  let set, tag = locate t addr in
  match find_way t set tag with Some _ -> true | None -> false

let flush t =
  Array.fill t.valid 0 (Array.length t.valid) false;
  Array.fill t.dirty 0 (Array.length t.dirty) false

let line_size t = t.cfg.line
