(** Convenience bundle: one simulated machine with its memory, a data-space
    allocator and an instruction-space allocator.  Every charged component
    (ciphers, checksums, TCP buffers, the ILP engine) is built from one of
    these. *)

type t = {
  machine : Machine.t;
  mem : Mem.t;
  alloc : Alloc.t;
  code : Code.allocator;
}

(** [create config] builds a machine and a [mem_size]-byte address space
    (default 4 MiB — comfortably larger than any experiment's working
    set). *)
val create : ?mem_size:int -> Config.t -> t

(** Zero cycles and counters, keeping memory contents and cache state. *)
val reset_counters : t -> unit

(** Zero counters {e and} invalidate caches (cold-start measurement). *)
val cold_start : t -> unit
