type t = { machine : Machine.t; data : Bytes.t }

let create machine ~size = { machine; data = Bytes.make size '\000' }

let machine t = t.machine
let size t = Bytes.length t.data

let get_u8 t addr =
  Machine.read t.machine ~addr ~size:1;
  Char.code (Bytes.get t.data addr)

let set_u8 t addr v =
  Machine.write t.machine ~addr ~size:1;
  Bytes.set t.data addr (Char.chr (v land 0xff))

let get_u16 t addr =
  Machine.read t.machine ~addr ~size:2;
  Bytes.get_uint16_be t.data addr

let set_u16 t addr v =
  Machine.write t.machine ~addr ~size:2;
  Bytes.set_uint16_be t.data addr (v land 0xffff)

let get_u32 t addr =
  Machine.read t.machine ~addr ~size:4;
  Int32.to_int (Bytes.get_int32_be t.data addr) land 0xffffffff

let set_u32 t addr v =
  Machine.write t.machine ~addr ~size:4;
  Bytes.set_int32_be t.data addr (Int32.of_int (v land 0xffffffff))

let get_u64 t addr =
  Machine.read t.machine ~addr ~size:8;
  Bytes.get_int64_be t.data addr

let set_u64 t addr v =
  Machine.write t.machine ~addr ~size:8;
  Bytes.set_int64_be t.data addr v

let blit t ~src ~dst ~len ~unit_len =
  (match unit_len with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg "Mem.blit: unit_len");
  let full = len / unit_len in
  for i = 0 to full - 1 do
    let off = i * unit_len in
    Machine.read t.machine ~addr:(src + off) ~size:unit_len;
    Machine.write t.machine ~addr:(dst + off) ~size:unit_len;
    Machine.compute t.machine 1;
    Bytes.blit t.data (src + off) t.data (dst + off) unit_len
  done;
  for off = full * unit_len to len - 1 do
    Machine.read t.machine ~addr:(src + off) ~size:1;
    Machine.write t.machine ~addr:(dst + off) ~size:1;
    Machine.compute t.machine 1;
    Bytes.set t.data (dst + off) (Bytes.get t.data (src + off))
  done

let peek_u8 t addr = Char.code (Bytes.get t.data addr)
let poke_u8 t addr v = Bytes.set t.data addr (Char.chr (v land 0xff))
let peek_u16 t addr = Bytes.get_uint16_be t.data addr
let poke_u16 t addr v = Bytes.set_uint16_be t.data addr (v land 0xffff)

let peek_u32 t addr =
  Int32.to_int (Bytes.get_int32_be t.data addr) land 0xffffffff

let poke_u32 t addr v = Bytes.set_int32_be t.data addr (Int32.of_int (v land 0xffffffff))
let peek_bytes t ~pos ~len = Bytes.sub t.data pos len
let raw t = t.data
let poke_bytes t ~pos b = Bytes.blit b 0 t.data pos (Bytes.length b)
let poke_string t ~pos s = Bytes.blit_string s 0 t.data pos (String.length s)
