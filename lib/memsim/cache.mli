(** Set-associative cache model with true-LRU replacement.

    Models a single cache level as tag state only — data contents live in
    {!Mem}; the cache decides hit/miss and eviction.  Both the SuperSPARC
    caches (16 KB 4-way data, 20 KB 5-way instruction) and the Alpha 21064
    caches (8 KB direct-mapped) are instances. *)

type write_policy = Write_back | Write_through

type config = {
  size : int;            (** total capacity in bytes *)
  line : int;            (** line size in bytes, a power of two *)
  assoc : int;           (** ways per set; [size / (line * assoc)] sets *)
  write_policy : write_policy;
  write_allocate : bool; (** allocate a line on a write miss *)
}

(** [direct_mapped ~size ~line] is a convenience write-back, write-allocate
    direct-mapped configuration. *)
val direct_mapped : size:int -> line:int -> config

val set_associative : size:int -> line:int -> assoc:int -> config

type t

(** Raises [Invalid_argument] if the geometry is inconsistent (sizes not
    powers of two, or [size] not divisible by [line * assoc]). *)
val create : config -> t

val config : t -> config

(** Access outcome, packed into an immediate so the per-line hot path
    allocates nothing.  Query it with {!hit}, {!writeback} and
    {!filled}. *)
type outcome = int

val hit : outcome -> bool

(** A dirty line was evicted and must be written to the next level. *)
val writeback : outcome -> bool

(** The access allocated a line (miss with allocate), so the next level
    must be read to fill it. *)
val filled : outcome -> bool

(** [access t ~addr ~write] touches the single line containing [addr].
    The caller is responsible for splitting accesses that straddle lines. *)
val access : t -> addr:int -> write:bool -> outcome

(** [present t ~addr] reports whether the line holding [addr] is resident,
    without updating LRU state. *)
val present : t -> addr:int -> bool

(** Invalidate every line (loses dirtiness; used between experiments). *)
val flush : t -> unit

val line_size : t -> int
