(** Macro inlining versus function calls (section 3.2.1).

    The paper found that replacing the macro-inlined manipulation code with
    function calls (for dynamic adaptability) "results in the loss of all
    performance benefits gained by ILP in the first place": per processing
    unit, per stage, the call sequence (argument setup, save/restore,
    call/return) costs real cycles that the inlined loop does not pay. *)

type t =
  | Macro  (** inlined: no per-call overhead, larger code footprint *)
  | Function_calls of int
      (** indirect calls: the given number of ALU ops per stage invocation
          (register save/restore, argument marshalling, call/return) *)

(** 15 ops — roughly a SPARC V8 call with window overflow amortised. *)
val default_call_ops : int

val function_calls : t

(** Overhead ops charged per stage invocation. *)
val call_ops : t -> int

(** Code-size multiplier for the fused loop region: macro expansion
    duplicates every stage's body at each expansion site, function calls
    share one copy. *)
val code_scale : t -> expansion_sites:int -> int -> int
