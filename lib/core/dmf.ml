type t = {
  name : string;
  unit_len : int;
  code : Ilp_memsim.Code.region;
  transform : Bytes.t -> int -> unit;
}

let create ~name ~unit_len ~code transform =
  if unit_len <= 0 then invalid_arg "Dmf.create: unit_len";
  { name; unit_len; code; transform }

let of_cipher_encrypt (c : Ilp_cipher.Block_cipher.t) =
  { name = c.name ^ "-encrypt";
    unit_len = c.block_len;
    code = c.code_encrypt;
    transform = c.encrypt }

let of_cipher_decrypt (c : Ilp_cipher.Block_cipher.t) =
  { name = c.name ^ "-decrypt";
    unit_len = c.block_len;
    code = c.code_decrypt;
    transform = c.decrypt }

let marshalling (sim : Ilp_memsim.Sim.t) ?(name = "xdr-marshal") ?(ops_per_word = 2)
    ?(unit_len = 4) () =
  if unit_len mod 4 <> 0 then invalid_arg "Dmf.marshalling: unit_len";
  let code = Ilp_memsim.Code.alloc sim.code ~len:896 in
  let machine = sim.Ilp_memsim.Sim.machine in
  (* Per-invocation dispatch (field decode, pointer bump) plus the
     per-word work: this is what uniform unit sizes amortise. *)
  let ops = (ops_per_word * (unit_len / 4)) + 1 in
  { name;
    unit_len;
    code;
    transform = (fun _ _ -> Ilp_memsim.Machine.compute machine ops) }

let identity n =
  { name = "identity";
    unit_len = n;
    code = Ilp_memsim.Code.none;
    transform = (fun _ _ -> ()) }

let apply_over t block ~off ~len =
  if len mod t.unit_len <> 0 then
    invalid_arg (Printf.sprintf "Dmf.apply_over: %d not a multiple of %d" len t.unit_len);
  (* [for] rather than a [ref] cursor: this runs per stage per block of
     every fused simulated message, and a ref cell is an allocation. *)
  for j = 0 to (len / t.unit_len) - 1 do
    t.transform block (off + (j * t.unit_len))
  done
