(** The integrated protocol engine: marshalling + encryption + checksum +
    TCP buffer transfer, in either of the paper's two implementation
    styles.

    One [t] is a configured data-manipulation stack bound to a simulated
    machine.  The send side produces a closure suitable for
    [Ilp_tcp.Socket.send_message]'s [fill] argument; the receive side
    provides the two manipulation callbacks matching
    [Ilp_tcp.Socket.rx_processing].

    {2 Wire format (figure 2 of the paper)}

    {v
    +-------------------+----------------------------+-----------+
    | length field (4B) | marshalled message (XDR)   | alignment |
    +-------------------+----------------------------+-----------+
    <------------------ encrypted, 8-byte aligned ---------------->
    v}

    The marshalled message is [prefix ^ payload]: the prefix holds the
    RPC header and XDR framing words (built by the stub compiler), the
    payload bytes come straight from application memory.

    {2 The two styles}

    [`Separate] (figure 3 left / figure 5 left): marshal into an
    intermediate buffer (read app memory, write buffer), encrypt in place
    (read, write), copy into the TCP ring (read, write); TCP then
    checksums the ring (read) — four read passes and three write passes
    over the message.  On receive: TCP checksums the staging area, then
    decryption in place, then unmarshal-and-copy to application memory.

    [`Ilp] (right columns): one loop reads application memory, marshals,
    encrypts and checksums in registers, and writes ciphertext into the
    TCP ring; the message parts are processed in the B, C, A order of
    {!Parts} so the encrypted length field can be completed last.  On
    receive one loop checksums, decrypts and unmarshals while copying
    from the staging area to application memory. *)

type mode = Ilp | Separate

(** Where the encrypted length field lives (section 5 of the paper):
    [Leading] is the measured system — the field precedes the message, so
    the ILP send loop must process parts in B, C, A order (two macro
    expansion sites: the bulk loop and a shared single-block tail);
    [Trailer] places it last ("trailers for data dependent fields could
    simplify ILP processing"), allowing one sequential expansion. *)
type header_style = Leading | Trailer

(** Where the receive-side manipulations run (section 3.2.3): [Early] is
    directly after the system copy, integrated with the checksum (the
    paper's choice — errors are known before TCP control processing);
    [Late] is close to the application, after TCP has checksummed and
    accepted the segment itself. *)
type rx_placement = Early | Late

(** How the data manipulations are executed.  [Simulated] (the default)
    realises every manipulation byte-at-a-time through the charged memory
    simulator — this is the paper's measurement apparatus.  [Native] runs
    the same manipulations through the un-simulated {!Ilp_fastpath}
    kernels — 64-bit loads and stores on real hardware — producing
    byte-identical wire output; its cost is wall-clock time (measured by
    [ilpbench wall]), so the simulated cycle counters are not meaningful
    for a native engine. *)
type backend = Simulated | Native of Ilp_fastpath.Cipher.t

(** Host-side data-path discipline (the single-copy work).  [Pooled] (the
    default) stages native wire assembly as an iovec scatter list gathered
    directly into the TCP ring, and on receive decrypts each arriving
    segment straight into an engine-owned pool buffer at its final TSDU
    offset — the very buffer {!read_plaintext_pooled} then hands to the
    caller (ownership transfer, no delivery copy).  [Legacy] keeps the
    pre-pool shape — fresh intermediate buffers on every message — as the
    measurable baseline for the {!Ilp_fastpath.Memtraffic} ledger and for
    A/B equivalence tests.  Both paths produce byte-identical wire output
    and charge identical simulated cycles; only host-side copies and
    allocations differ. *)
type data_path = Pooled | Legacy

type t

(** [create sim ~cipher ~mode ()] builds a stack.

    [linkage] (default [Macro]) selects inlined versus function-call
    manipulation code (section 3.2.1).  [max_message] (default 2048)
    bounds the wire size of one message.  [coalesce_writes] (default
    false) applies the section 2.2 remedy — size every store to the
    exchange unit instead of the cipher's natural store width (the A2
    ablation). *)
val create :
  Ilp_memsim.Sim.t ->
  cipher:Ilp_cipher.Block_cipher.t ->
  mode:mode ->
  ?backend:backend ->
  ?linkage:Linkage.t ->
  ?max_message:int ->
  ?coalesce_writes:bool ->
  ?header_style:header_style ->
  ?rx_placement:rx_placement ->
  ?uniform_units:bool ->
  ?crc32:bool ->
  ?data_path:data_path ->
  ?pool:Ilp_fastpath.Pool.t ->
  unit ->
  t
(** [uniform_units] widens the marshalling unit to the cipher block
    (section 5's "uniform processing unit sizes").  [backend] (default
    [Simulated]) selects the execution substrate; a [Native] engine must
    be given the fast-path cipher matching [cipher] for the wire bytes to
    agree.  [crc32] (default false) appends an end-to-end CRC32 trailer
    word to the marshalled body (inside the encrypted length) and verifies
    it in {!read_plaintext} — closing the window where a corruption
    collides in the 16-bit Internet checksum.  The CRC is
    ordering-constrained (section 2.2), so its value is fixed at
    stream-build time like the length field; its serial fold cost is
    charged as one more fused stage in ILP mode and one more pass in
    separate mode.  Both endpoints must agree on this setting.

    [data_path] (default [Pooled]) selects the host-side buffering
    discipline; [pool] supplies a shared buffer pool (e.g. one pool for
    both ends of a connection), otherwise the engine creates its own. *)

val mode : t -> mode
val backend : t -> backend

(** Whether the end-to-end CRC32 trailer is enabled. *)
val crc32 : t -> bool

val header_style : t -> header_style
val rx_placement : t -> rx_placement
val data_path : t -> data_path

(** The engine's buffer pool (created or shared at {!create} time). *)
val pool : t -> Ilp_fastpath.Pool.t

val sim : t -> Ilp_memsim.Sim.t

(** [wire_len t ~prefix_len ~payload_len] is the encrypted on-the-wire
    length of such a message (8-byte aligned, length field included). *)
val wire_len : t -> prefix_len:int -> payload_len:int -> int

type prepared = {
  len : int;  (** wire length, pass to [Socket.send_message] *)
  fill :
    Ilp_memsim.Mem.t -> dst:int -> Ilp_checksum.Internet.acc option;
      (** writes the encrypted message at [dst]; returns the payload
          checksum in ILP mode, [None] in separate mode *)
}

(** [prepare_send t ~prefix ~payload_addr ~payload_len] stages one
    message.  [prefix] must be a multiple of 4 bytes (XDR words); the
    payload is read from simulated memory.  Raises [Invalid_argument]
    when the message exceeds [max_message]. *)
val prepare_send :
  t -> prefix:string -> payload_addr:int -> payload_len:int -> prepared

(** A piece of the marshalled message body: bytes generated in registers
    by the stub code, or a run of application memory the ILP loop reads in
    place.  This is the interface the ILP-extended stub compiler
    ([Ilp_codec.Stub_ilp]) produces. *)
type body_segment = Seg_gen of string | Seg_app of { addr : int; len : int }

(** [prepare_send_segments t body] stages a message with an arbitrary
    interleaving of generated and memory-resident runs — the general form
    of {!prepare_send} (which is the two-segment special case).  The
    encryption length field and alignment are added per the engine's
    header style. *)
val prepare_send_segments : t -> body_segment list -> prepared

(** A message preparable in ranges, for [Ilp_tcp.Socket.send_stream]:
    [fill_range mem ~dst ~off ~len] writes wire bytes [off, off+len) of
    the message at [dst] — one fused marshal+encrypt+checksum pass over
    just that range in ILP mode (returning its positional checksum
    accumulator), the separate passes over the range otherwise
    (returning [None] so TCP checksums the ring itself).  [off] and
    [len] must be multiples of [seg_unit] (ranges may not split a cipher
    block); pass [seg_unit] to [send_stream] and the segmentation
    satisfies this automatically.  Filling ranges in any order produces
    exactly the bytes of the whole-message {!prepared} fill. *)
type prepared_stream = {
  stream_len : int;  (** wire length of the whole message *)
  seg_unit : int;  (** alignment every range must respect *)
  fill_range :
    Ilp_memsim.Mem.t ->
    dst:int ->
    off:int ->
    len:int ->
    Ilp_checksum.Internet.acc option;
}

(** Streaming counterpart of {!prepare_send_segments}. *)
val prepare_stream_segments : t -> body_segment list -> prepared_stream

(** Receive-side manipulation for [Rx_separate]: decrypt the staged
    segment in place and unmarshal-copy the plaintext to the application
    area at byte offset [dst_off] (the segment's position within the TSDU
    being reassembled; 0 for a whole message).  [Error] — a length the
    stack cannot process (not a cipher-block multiple, over
    [max_message], or a reassembly offset that would overflow the
    application area) — rejects the segment; TCP drops and counts it. *)
val rx_separate :
  t ->
  Ilp_memsim.Mem.t ->
  src:int ->
  dst_off:int ->
  len:int ->
  (unit, string) result

(** Receive-side manipulation for [Rx_integrated]: one fused pass; the
    plaintext lands in the application area at [dst_off] and the
    ciphertext checksum accumulator is returned for TCP's accept/reject
    decision.  [Error] as for {!rx_separate}, decided before the loop
    runs. *)
val rx_integrated :
  t ->
  Ilp_memsim.Mem.t ->
  src:int ->
  dst_off:int ->
  len:int ->
  (Ilp_checksum.Internet.acc, string) result

(** Deferred fused decrypt+unmarshal for the [Late] placement (no
    checksum tap: TCP has already verified the segment). *)
val rx_late :
  t ->
  Ilp_memsim.Mem.t ->
  src:int ->
  dst_off:int ->
  len:int ->
  (unit, string) result

(** How a TCP socket should be wired for this engine's mode and
    placement: an integrated handler that returns the payload checksum,
    or a deferred handler run after TCP's own checksum pass. *)
type rx_style =
  | Rx_integrated_style of
      (Ilp_memsim.Mem.t ->
      src:int ->
      dst_off:int ->
      len:int ->
      (Ilp_checksum.Internet.acc, string) result)
  | Rx_deferred_style of
      (Ilp_memsim.Mem.t ->
      src:int ->
      dst_off:int ->
      len:int ->
      (unit, string) result)

val rx_style : t -> rx_style

(** Where receive-side plaintext is placed ([length field ^ marshalled
    message ^ alignment]). *)
val app_rx_base : t -> int

(** Decode the plaintext at {!app_rx_base}: charged read of the length
    field and prefix words, then the marshalled bytes as a string
    (peeked — the caller's stub does the pure decode).  [Error] when the
    decrypted length field is implausible — the fingerprint of a
    checksum-colliding corruption that survived TCP's verdict — or, with
    [crc32] enabled, when the recomputed CRC32 trailer does not match. *)
val read_plaintext : t -> len:int -> (string, string) result

(** Single-copy variant of {!read_plaintext}: identical validation and
    identical charges, but the plaintext lands in a buffer acquired from
    the engine's pool — [Ok (buf, len)] where the TSDU occupies
    [buf.[0..len-1]] (the buffer's capacity is its size class, possibly
    larger).  On the native pooled path the returned buffer {e is} the
    engine's rx placement buffer — the fused receive decrypted every
    segment directly into it at its final TSDU offset, so delivery is an
    ownership transfer with no copy at all.  The caller must hand the
    buffer back with {!release_plaintext} on every path, including after
    decode errors. *)
val read_plaintext_pooled : t -> len:int -> (Bytes.t * int, string) result

(** Return a buffer obtained from {!read_plaintext_pooled} to the pool. *)
val release_plaintext : t -> Bytes.t -> unit

(** Tear down the engine's host-side resources: returns the native fast
    path's staging buffer and any in-flight rx placement buffer to the
    pool (idempotent; a no-op for simulated backends).  Required for
    pool-balance accounting — [Pool.outstanding (pool t) = 0] after all
    TSDUs are released and all engines destroyed. *)
val destroy : t -> unit
