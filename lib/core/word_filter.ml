type t = {
  out_len : int;
  emit : Bytes.t -> int -> unit;
  buf : Bytes.t;
  mutable fill : int;
  mutable emitted : int;
}

let create ~out_len ~emit =
  if out_len <= 0 then invalid_arg "Word_filter.create: out_len";
  { out_len; emit; buf = Bytes.create out_len; fill = 0; emitted = 0 }

let push t b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Word_filter.push";
  let pos = ref off in
  let stop = off + len in
  while !pos < stop do
    let take = min (t.out_len - t.fill) (stop - !pos) in
    Bytes.blit b !pos t.buf t.fill take;
    t.fill <- t.fill + take;
    pos := !pos + take;
    if t.fill = t.out_len then begin
      t.emit t.buf 0;
      t.emitted <- t.emitted + t.out_len;
      t.fill <- 0
    end
  done

let push_string t s = push t (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
let pending t = t.fill

let flush t ~pad =
  if t.fill = 0 then 0
  else begin
    let added = t.out_len - t.fill in
    Bytes.fill t.buf t.fill added pad;
    t.emit t.buf 0;
    t.emitted <- t.emitted + t.out_len;
    t.fill <- 0;
    added
  end

let emitted t = t.emitted
