open Ilp_memsim

type tap_position = Tap_input | Tap_output

type spec = {
  stages : Dmf.t list;
  read_unit : int;
  write_unit : int;
  write_pattern : int list option;
  linkage : Linkage.t;
  loop_code : Code.region;
  tap : (Bytes.t -> off:int -> len:int -> unit) option;
  tap_position : tap_position;
}

let stage_lcm stages = Units.exchange_unit (List.map (fun d -> d.Dmf.unit_len) stages)

let spec ?read_unit ?write_unit ?write_pattern ?(linkage = Linkage.Macro)
    ?(loop_code = Code.none) ?tap ?(tap_position = Tap_output) stages =
  if stages = [] then invalid_arg "Pipeline.spec: no stages";
  let le = stage_lcm stages in
  let read_unit = Option.value read_unit ~default:(min 4 le) in
  let write_unit = Option.value write_unit ~default:le in
  if read_unit <= 0 || write_unit <= 0 then invalid_arg "Pipeline.spec: unit sizes";
  (match write_pattern with
  | None -> ()
  | Some pat ->
      let sum = List.fold_left ( + ) 0 pat in
      if sum <= 0 || le mod sum <> 0 then
        invalid_arg "Pipeline.spec: write_pattern must sum to a divisor of Le");
  { stages; read_unit; write_unit; write_pattern; linkage; loop_code; tap;
    tap_position }

let exchange_len t = stage_lcm t.stages

(* Charged loads of [len] bytes at [src] into [block+off], in [unit]-wide
   accesses (trailing fragment byte-wise), one ALU op per access. *)
let load_block sim ~src block ~off ~len ~unit_len =
  let machine = sim.Sim.machine in
  let mem = sim.Sim.mem in
  let full = len / unit_len in
  for i = 0 to full - 1 do
    Machine.read machine ~addr:(src + (i * unit_len)) ~size:unit_len;
    Machine.compute machine 1
  done;
  for i = full * unit_len to len - 1 do
    Machine.read machine ~addr:(src + i) ~size:1;
    Machine.compute machine 1
  done;
  Bytes.blit (Mem.raw mem) src block off len

(* Charged stores, symmetric to [load_block]. *)
let store_block sim ~dst block ~off ~len ~unit_len =
  let machine = sim.Sim.machine in
  let mem = sim.Sim.mem in
  let full = len / unit_len in
  for i = 0 to full - 1 do
    Machine.write machine ~addr:(dst + (i * unit_len)) ~size:unit_len;
    Machine.compute machine 1
  done;
  for i = full * unit_len to len - 1 do
    Machine.write machine ~addr:(dst + i) ~size:1;
    Machine.compute machine 1
  done;
  Bytes.blit block off (Mem.raw mem) dst len

(* With macro linkage the stages' code is part of the fused loop region
   (the caller sizes [loop_code] accordingly), so only the loop region is
   fetched here; with function calls each stage keeps its own shared code
   region and pays the per-invocation call overhead. *)
(* Explicit recursion over the stage list — a [List.iter] lambda here
   would capture the block and allocate a closure per processed block. *)
let rec apply_stage_list machine call_ops stages block off len =
  match stages with
  | [] -> ()
  | stage :: rest ->
      if call_ops > 0 then begin
        Machine.exec machine stage.Dmf.code;
        Machine.compute machine (call_ops * (len / stage.Dmf.unit_len))
      end;
      Dmf.apply_over stage block ~off ~len;
      apply_stage_list machine call_ops rest block off len

let apply_stages sim t block ~off ~len =
  apply_stage_list sim.Sim.machine (Linkage.call_ops t.linkage) t.stages block
    off len

(* Charged stores following the write pattern, cycling through it; again
   top-level recursion instead of per-block ref cells. *)
let rec pattern_writes machine pattern pat dst pos len =
  if pos < len then
    match pat with
    | [] -> pattern_writes machine pattern pattern dst pos len
    | u :: rest ->
        let u = min u (len - pos) in
        Machine.write machine ~addr:(dst + pos) ~size:u;
        Machine.compute machine 1;
        pattern_writes machine pattern rest dst (pos + u) len

let process_block sim t block ~off ~len ~dst =
  let machine = sim.Sim.machine in
  Machine.exec machine t.loop_code;
  (* Register pressure: a loop that integrates more than two functions
     holds all their live state at once; past the register budget the
     compiler spills to the stack.  Four ops per exchange unit per extra
     integrated function (Abbott & Peterson's scaling limit). *)
  let integrated =
    List.length t.stages + (match t.tap with Some _ -> 1 | None -> 0)
  in
  if integrated > 2 then Machine.compute machine (4 * (integrated - 2));
  (match (t.tap, t.tap_position) with
  | Some tap, Tap_input -> tap block ~off ~len
  | _ -> ());
  apply_stages sim t block ~off ~len;
  (match (t.tap, t.tap_position) with
  | Some tap, Tap_output -> tap block ~off ~len
  | _ -> ());
  match t.write_pattern with
  | None -> store_block sim ~dst block ~off ~len ~unit_len:t.write_unit
  | Some pattern ->
      pattern_writes sim.Sim.machine pattern pattern dst 0 len;
      Bytes.blit block off (Mem.raw sim.Sim.mem) dst len

let run_fused sim t ~src ~dst ~len =
  let le = exchange_len t in
  if len mod le <> 0 then
    invalid_arg
      (Printf.sprintf "Pipeline.run_fused: length %d not a multiple of Le=%d" len le);
  let machine = sim.Sim.machine in
  let block = Bytes.create le in
  let pos = ref 0 in
  while !pos < len do
    (* Loop bookkeeping (pointer updates, bounds test, branch). *)
    Machine.compute machine 1;
    load_block sim ~src:(src + !pos) block ~off:0 ~len:le ~unit_len:t.read_unit;
    process_block sim t block ~off:0 ~len:le ~dst:(dst + !pos);
    pos := !pos + le
  done

let run_pass sim (dmf : Dmf.t) ?read_unit ?write_unit ~src ~dst ~len () =
  let read_unit = Option.value read_unit ~default:(min dmf.Dmf.unit_len 8) in
  let write_unit = Option.value write_unit ~default:(min dmf.Dmf.unit_len 8) in
  if len mod dmf.Dmf.unit_len <> 0 then
    invalid_arg
      (Printf.sprintf "Pipeline.run_pass: length %d not a multiple of %d" len
         dmf.Dmf.unit_len);
  let machine = sim.Sim.machine in
  let block = Bytes.create dmf.Dmf.unit_len in
  let pos = ref 0 in
  while !pos < len do
    (* Loop bookkeeping of this pass — the cost a fused loop pays once. *)
    Machine.compute machine 1;
    Machine.exec machine dmf.Dmf.code;
    load_block sim ~src:(src + !pos) block ~off:0 ~len:dmf.Dmf.unit_len
      ~unit_len:read_unit;
    dmf.Dmf.transform block 0;
    store_block sim ~dst:(dst + !pos) block ~off:0 ~len:dmf.Dmf.unit_len
      ~unit_len:write_unit;
    pos := !pos + dmf.Dmf.unit_len
  done
