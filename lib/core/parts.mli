(** Message-part planning for header/data dependencies (section 3.2.2).

    The marshalled message is prefixed by an encryption header (a 4-byte
    length field) that is itself encrypted, so marshalling starts at
    position α = 4 while the first complete encryption block starts at
    β = 8.  The last block (from γ = total - 8) contains the alignment
    bytes, and only after producing it is the length field known.  The ILP
    loop therefore processes part B (\[β, γ)) first, then part C
    (\[γ, total)), and finally part A (\[0, β)) — which is only legal
    because none of the integrated manipulations is ordering-constrained. *)

type t = {
  total : int;  (** encrypted message length (multiple of the block size) *)
  body_len : int;  (** marshalled bytes, encryption header excluded *)
  enc_header_len : int;  (** the length field, 4 bytes in this stack *)
  alignment : int;  (** zero bytes appended to reach [total] *)
  alpha : int;  (** where marshalling output starts *)
  beta : int;  (** where part B starts *)
  gamma : int;  (** where part C starts *)
}

(** [plan ~body_len] computes the layout for a marshalled message of
    [body_len] bytes behind a 4-byte encryption header, aligned to
    [block_len] (default 8).  Raises [Invalid_argument] if [body_len < 0]
    or [block_len] is not a positive multiple of 4. *)
val plan : ?enc_header_len:int -> ?block_len:int -> body_len:int -> unit -> t

(** The marshalled length stored in the length field:
    [enc_header_len + body_len]. *)
val length_field : t -> int

(** Offset/length of each part.  Parts B and C may be empty (length 0) for
    very short messages; part A is always one block. *)
val part_a : t -> int * int

val part_b : t -> int * int
val part_c : t -> int * int

(** The paper's processing order: B, then C, then A. *)
val in_processing_order : t -> (string * (int * int)) list
