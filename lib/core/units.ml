let rec gcd a b =
  if a < 0 || b < 0 then invalid_arg "Units.gcd: negative argument"
  else if b = 0 then a
  else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b

let exchange_unit ?bus_width lens =
  if lens = [] then invalid_arg "Units.exchange_unit: no unit lengths";
  List.iter
    (fun l -> if l <= 0 then invalid_arg "Units.exchange_unit: non-positive length")
    lens;
  let le = List.fold_left lcm 1 lens in
  match bus_width with
  | None -> le
  | Some w ->
      if w <= 0 then invalid_arg "Units.exchange_unit: non-positive bus width";
      lcm le w

let aligned n ~unit_len =
  if unit_len <= 0 then invalid_arg "Units.aligned: non-positive unit";
  (n + unit_len - 1) / unit_len * unit_len
