type t = Macro | Function_calls of int

let default_call_ops = 15
let function_calls = Function_calls default_call_ops
let call_ops = function Macro -> 0 | Function_calls n -> n

let code_scale t ~expansion_sites len =
  match t with
  | Macro -> len * expansion_sites
  | Function_calls _ -> len
