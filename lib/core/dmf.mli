(** Data manipulation functions — the things ILP integrates.

    A DMF transforms a fixed-size processing unit {e in registers}: the
    transform receives a small scratch [Bytes.t] holding one unit and
    rewrites it in place.  Whatever ALU work and table/key memory traffic
    the function needs is charged by the transform itself (the charged
    ciphers do this); what is deliberately {e not} charged here is the
    movement of the unit between memory and registers — that is the
    driver's job ({!Pipeline}), because deciding who moves the data and in
    what unit sizes is exactly the design space the paper explores. *)

type t = {
  name : string;
  unit_len : int;  (** processing-unit size in bytes (1, 2, 4 or 8) *)
  code : Ilp_memsim.Code.region;
      (** instruction footprint, fetched once per unit processed *)
  transform : Bytes.t -> int -> unit;
      (** [transform block off] rewrites [unit_len] bytes in place *)
}

val create :
  name:string ->
  unit_len:int ->
  code:Ilp_memsim.Code.region ->
  (Bytes.t -> int -> unit) ->
  t

(** Encryption / decryption direction of a charged block cipher. *)
val of_cipher_encrypt : Ilp_cipher.Block_cipher.t -> t

val of_cipher_decrypt : Ilp_cipher.Block_cipher.t -> t

(** [marshalling sim ~name ~ops_per_word ()] is the word manipulation of a
    stub-compiler-generated XDR routine: the data transform is the identity
    (XDR opaque bytes travel unchanged; the byte-order and framing work is
    the per-word ALU charge), the unit is 4 bytes, and the code region
    competes for the instruction cache like any other stage. *)
val marshalling :
  Ilp_memsim.Sim.t -> ?name:string -> ?ops_per_word:int -> ?unit_len:int -> unit -> t
(** [unit_len] (default 4, must be a multiple of 4) widens the
    marshalling unit — the paper's section 5 suggests uniform unit sizes
    across manipulation functions as an ILP-friendly protocol feature. *)

(** [identity n] transforms nothing and charges nothing (tests). *)
val identity : int -> t

(** [apply_over t block ~off ~len] applies the transform to each unit of a
    longer register block; [len] must be a multiple of [unit_len]. *)
val apply_over : t -> Bytes.t -> off:int -> len:int -> unit
