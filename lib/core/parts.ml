type t = {
  total : int;
  body_len : int;
  enc_header_len : int;
  alignment : int;
  alpha : int;
  beta : int;
  gamma : int;
}

let plan ?(enc_header_len = 4) ?(block_len = 8) ~body_len () =
  if body_len < 0 then invalid_arg "Parts.plan: negative body length";
  if block_len <= 0 || block_len mod 4 <> 0 then
    invalid_arg "Parts.plan: block length must be a positive multiple of 4";
  if enc_header_len <= 0 || enc_header_len >= block_len then
    invalid_arg "Parts.plan: encryption header must be shorter than a block";
  let marshalled = enc_header_len + body_len in
  let total = Units.aligned (max marshalled block_len) ~unit_len:block_len in
  { total;
    body_len;
    enc_header_len;
    alignment = total - marshalled;
    alpha = enc_header_len;
    beta = block_len;
    gamma = max block_len (total - block_len) }

let length_field t = t.enc_header_len + t.body_len
let part_a t = (0, t.beta)
let part_b t = (t.beta, max 0 (t.gamma - t.beta))
let part_c t = (t.gamma, t.total - t.gamma)

let in_processing_order t =
  [ ("B", part_b t); ("C", part_c t); ("A", part_a t) ]
