(** Word filters (Abbott & Peterson, section 2.1 of the paper).

    A word filter adapts the unit size between two manipulation functions:
    it accepts input in one unit size and emits output in another,
    buffering the remainder in registers.  The paper's refinement
    (section 2.2) is to size the exchanged unit as the LCM of the adjacent
    functions' units rather than a fixed word, to avoid extra write
    operations; {!Pipeline} uses filters implicitly when its stages have
    different unit lengths, and this standalone module backs the word-filter
    tests and the unit-sizing ablation. *)

type t

(** [create ~out_len ~emit] builds a filter that calls [emit block off] once
    per complete [out_len]-byte output unit. *)
val create : out_len:int -> emit:(Bytes.t -> int -> unit) -> t

(** [push t b ~off ~len] feeds input bytes (any length). *)
val push : t -> Bytes.t -> off:int -> len:int -> unit

val push_string : t -> string -> unit

(** Bytes buffered but not yet emitted (< [out_len]). *)
val pending : t -> int

(** [flush t ~pad] pads the remainder with [pad] bytes to complete a final
    unit (no-op when empty), and returns how many pad bytes were added. *)
val flush : t -> pad:char -> int

(** Total bytes emitted so far. *)
val emitted : t -> int
