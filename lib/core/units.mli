(** Processing-unit arithmetic (section 2.2 of the paper).

    Different manipulation functions work in different unit sizes — XDR
    marshalling in 4-byte words, block encryption in 8-byte blocks, the
    Internet checksum in 2-byte words.  When data passes between functions
    the exchanged unit should be [Le = LCM (Lx, Ly)] (optionally also a
    multiple of the memory-bus width [Ls]) so that no function is forced to
    issue more memory operations than necessary. *)

val gcd : int -> int -> int
(** Greatest common divisor; [gcd 0 n = n].  Arguments must be >= 0. *)

val lcm : int -> int -> int

(** [exchange_unit ?bus_width lens] is the least common multiple of all the
    unit lengths (and of [bus_width] when given) — the paper's [Le].
    Raises [Invalid_argument] on an empty list or non-positive lengths. *)
val exchange_unit : ?bus_width:int -> int list -> int

(** [aligned n ~unit] rounds [n] up to a multiple of [unit]. *)
val aligned : int -> unit_len:int -> int
