(** The two implementation styles the paper compares, over the same DMF
    kernels.

    {!run_pass} is the conventional layered style: one manipulation walks a
    whole buffer, reading and writing memory in its own unit size; a stack
    is a sequence of such passes with intermediate buffers.

    {!run_fused} is the ILP loop: one pass reads each exchange unit
    ([Le = LCM] of all stage units) once, applies every stage while the
    data sits in registers, lets an optional tap observe the stream (the
    TCP checksum), and writes the result once.  The store width of the
    final write is explicit because it is a property of the fused code the
    macro processor emits — a byte-oriented cipher at the end of the chain
    stores bytes, and section 2.2's write-miss arithmetic follows from
    that. *)

type tap_position =
  | Tap_input  (** observe the raw block before any stage (receive side:
                   the checksum covers the ciphertext) *)
  | Tap_output  (** observe the final block (send side: the checksum
                    covers what goes into the TCP buffer) *)

type spec = {
  stages : Dmf.t list;
  read_unit : int;  (** access width used to load the exchange unit *)
  write_unit : int;  (** access width used to store the result *)
  write_pattern : int list option;
      (** explicit store schedule per exchange unit (e.g. [[4; 2; 1; 1]]
          for a partially coalesced byte-oriented cipher output); when
          present it overrides [write_unit] and must sum to a divisor of
          the block length *)
  linkage : Linkage.t;
  loop_code : Ilp_memsim.Code.region;
      (** footprint of the fused loop's glue (tests, address updates) *)
  tap : (Bytes.t -> off:int -> len:int -> unit) option;
  tap_position : tap_position;
}

(** [spec ~stages ...] with defaults: [read_unit = 4], [write_unit] = LCM
    of stage units, [linkage = Macro], no tap, [loop_code = none]. *)
val spec :
  ?read_unit:int ->
  ?write_unit:int ->
  ?write_pattern:int list ->
  ?linkage:Linkage.t ->
  ?loop_code:Ilp_memsim.Code.region ->
  ?tap:(Bytes.t -> off:int -> len:int -> unit) ->
  ?tap_position:tap_position ->
  Dmf.t list ->
  spec

(** The exchange unit [Le] of the spec's stages. *)
val exchange_len : spec -> int

(** [process_block sim spec block ~off ~len ~dst] runs the fused stages on
    a register-resident block (an [Le] multiple) and stores it at [dst]
    with charged [write_unit] stores.  Loading the block is the caller's
    business — message parts assembled from generated header words use
    this directly. *)
val process_block :
  Ilp_memsim.Sim.t -> spec -> Bytes.t -> off:int -> len:int -> dst:int -> unit

(** [run_fused sim spec ~src ~dst ~len] is the ILP loop over a memory
    region: charged [read_unit] loads, fused stages, charged [write_unit]
    stores.  [len] must be a multiple of the exchange unit.  [src] and
    [dst] may coincide. *)
val run_fused : Ilp_memsim.Sim.t -> spec -> src:int -> dst:int -> len:int -> unit

(** [run_pass sim dmf ~src ~dst ~len] is one conventional pass: per
    processing unit, a charged load of [read_unit] accesses, the
    transform, and a charged store of [write_unit] accesses ([dst] may
    equal [src] for in-place manipulation like decryption).  [len] must be
    a multiple of the DMF's unit. *)
val run_pass :
  Ilp_memsim.Sim.t ->
  Dmf.t ->
  ?read_unit:int ->
  ?write_unit:int ->
  src:int ->
  dst:int ->
  len:int ->
  unit ->
  unit
