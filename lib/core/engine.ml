open Ilp_memsim
module Internet = Ilp_checksum.Internet
module Crc32 = Ilp_checksum.Crc32
module Wire = Ilp_fastpath.Wire
module Pool = Ilp_fastpath.Pool
module Mt = Ilp_fastpath.Memtraffic
module Trace = Ilp_obs.Trace
module M = Ilp_obs.Metrics

let m_sends = M.counter M.default "engine.sends"
let m_stream_fills = M.counter M.default "engine.stream_fills"
let m_rx_rejects = M.counter M.default "engine.rx_rejects"

type mode = Ilp | Separate

type header_style = Leading | Trailer

type rx_placement = Early | Late

type backend = Simulated | Native of Ilp_fastpath.Cipher.t

type data_path = Pooled | Legacy

type t = {
  sim : Sim.t;
  cipher : Ilp_cipher.Block_cipher.t;
  backend : backend;
  fastpath : Wire.t option;
  mode : mode;
  header_style : header_style;
  rx_placement : rx_placement;
  linkage : Linkage.t;
  max_message : int;
  coalesce_writes : bool;
  data_path : data_path;
  pool : Pool.t;
  marshal_dmf : Dmf.t;
  unmarshal_dmf : Dmf.t;
  encrypt_dmf : Dmf.t;
  decrypt_dmf : Dmf.t;
  (* Fused-loop code regions: one per macro expansion site on the send
     side (parts B, C, A), one for the receive loop. *)
  send_loops : Code.region array;
  recv_loop : Code.region;
  marshal_buf : int;  (* separate-mode intermediate buffer *)
  app_rx : int;  (* receive-side plaintext area *)
  (* Optional end-to-end CRC32 trailer over the marshalled body — closes
     the 16-bit Internet-checksum collision hole.  The CRC is
     ordering-constrained (section 2.2), so the B/C/A part reordering
     cannot produce it in flight; like the length field, its value is
     computed at stream-build time and carried as one more generated
     segment, while its serial fold cost is charged in whichever style the
     engine runs. *)
  crc : Crc32.t option;
  (* Receive-side placement buffer (native pooled path only): the fused rx
     pass decrypts each arriving segment directly into this pool buffer at
     its final TSDU offset, and [read_plaintext_pooled] hands the buffer
     itself to the caller (ownership transfer, no delivery copy).  [None]
     between TSDUs; drawn lazily from the pool on the first rx call. *)
  mutable rx_dst : Bytes.t option;
  (* Per-stage simulated-microsecond accumulators for the fused loops
     (slot 0 marshal, slot 1 checksum).  Preallocated so tracing adds no
     per-message allocation; float-array stores are unboxed. *)
  tr_acc : float array;
}

let glue_code = 384 (* loop tests, pointer updates, part dispatch *)

let create (sim : Sim.t) ~cipher ~mode ?(backend = Simulated)
    ?(linkage = Linkage.Macro)
    ?(max_message = 2048) ?(coalesce_writes = false) ?(header_style = Leading)
    ?(rx_placement = Early) ?(uniform_units = false) ?(crc32 = false)
    ?(data_path = Pooled) ?pool () =
  (* Section 5: "uniform processing unit sizes for different data
     manipulation functions could be advantageous" — widen marshalling to
     the cipher's block so the fused loop runs one invocation per block. *)
  let munit = if uniform_units then cipher.Ilp_cipher.Block_cipher.block_len else 4 in
  let marshal_dmf = Dmf.marshalling sim ~name:"xdr-marshal" ~unit_len:munit () in
  let unmarshal_dmf = Dmf.marshalling sim ~name:"xdr-unmarshal" ~unit_len:munit () in
  let encrypt_dmf = Dmf.of_cipher_encrypt cipher in
  let decrypt_dmf = Dmf.of_cipher_decrypt cipher in
  let stage_code (d : Dmf.t) = d.Dmf.code.Code.len in
  let send_body = stage_code marshal_dmf + stage_code encrypt_dmf + glue_code in
  let recv_body = stage_code unmarshal_dmf + stage_code decrypt_dmf + glue_code in
  (* Under macro linkage every expansion site carries its own copy of the
     stage bodies; under function calls the loop region is just glue.  The
     trailer layout needs no part reordering, hence a single expansion
     site — one of its advantages. *)
  let site_len body =
    match linkage with Linkage.Macro -> body | Linkage.Function_calls _ -> glue_code
  in
  (* Part B has its own expansion; the single-block tail parts C and A
     share one specialised expansion. *)
  let n_sites = match header_style with Leading -> 2 | Trailer -> 1 in
  let send_loops =
    Array.init n_sites (fun _ -> Code.alloc sim.code ~len:(site_len send_body))
  in
  let recv_loop = Code.alloc sim.code ~len:(site_len recv_body) in
  let marshal_buf = Alloc.alloc sim.alloc ~align:64 max_message in
  let app_rx = Alloc.alloc sim.alloc ~align:64 max_message in
  let pool = match pool with Some p -> p | None -> Pool.create () in
  let fastpath =
    match backend with
    | Simulated -> None
    | Native fc -> Some (Wire.create ~cipher:fc ~pool ~max_len:max_message ())
  in
  let crc = if crc32 then Some (Crc32.create sim.mem sim.alloc) else None in
  { sim; cipher; backend; fastpath; mode; header_style; rx_placement; linkage; max_message;
    coalesce_writes; data_path; pool;
    marshal_dmf; unmarshal_dmf; encrypt_dmf; decrypt_dmf;
    send_loops; recv_loop; marshal_buf; app_rx; crc; rx_dst = None;
    tr_acc = Array.make 2 0.0 }

let mode t = t.mode
let backend t = t.backend
let crc32 t = t.crc <> None
let header_style t = t.header_style
let rx_placement t = t.rx_placement
let data_path t = t.data_path
let pool t = t.pool
let sim t = t.sim
let app_rx_base t = t.app_rx
let machine t = t.sim.Sim.machine
let mem t = t.sim.Sim.mem
let block_len t = t.cipher.Ilp_cipher.Block_cipher.block_len

(* Engine teardown: return the fast path's staging buffer and any
   in-flight rx placement buffer to the pool (a TSDU abandoned mid-
   reassembly by an abort or crash must not leak its buffer).  The
   simulated-memory areas belong to the bump allocator and stay. *)
let destroy t =
  (match t.rx_dst with
  | Some b ->
      t.rx_dst <- None;
      Pool.release t.pool b
  | None -> ());
  match t.fastpath with Some fp -> Wire.release fp | None -> ()

(* Bytes the framing adds beyond the marshalled body: the CRC32 trailer
   when enabled (the 4-byte length field is part of the plan itself). *)
let framing_extra t = if t.crc = None then 0 else 4

let wire_len t ~prefix_len ~payload_len =
  let p =
    Parts.plan ~body_len:(prefix_len + payload_len + framing_extra t) ()
  in
  p.Parts.total

(* Offset and length of the CRC-covered region (the marshalled body)
   within the plaintext; the trailer word itself sits directly after it. *)
let crc_region t ~enc_len =
  let body_off = match t.header_style with Leading -> 4 | Trailer -> 0 in
  (body_off, enc_len - 8)

(* The store schedule of the fused loop's final stage.  A byte-oriented
   cipher ends the send chain with its 2-PHT pair outputs partially
   coalesced ([4; 2; 1; 1] per 8-byte block); on receive the bytes go to
   the unmarshalling function one at a time, which stores them one at a
   time.  Word-oriented manipulations store words.  [coalesce_writes]
   applies the paper's LCM remedy instead. *)
let send_pattern t =
  if t.coalesce_writes then None
  else
    match t.cipher.Ilp_cipher.Block_cipher.store_unit with
    | 1 -> Some [ 4; 2; 1; 1 ]
    | u -> Some [ u ]

let recv_pattern t =
  if t.coalesce_writes then None
  else Some [ t.cipher.Ilp_cipher.Block_cipher.store_unit ]

(* Checksum tap: folds every observed block and charges the fold's ALU
   cost. *)
let checksum_tap t cell =
  fun block ~off ~len ->
    if Trace.enabled () then begin
      let t0 = Machine.micros (machine t) in
      cell := Internet.add_bytes !cell block ~off ~len;
      Machine.compute (machine t) (Internet.ops ~len);
      t.tr_acc.(1) <- t.tr_acc.(1) +. (Machine.micros (machine t) -. t0)
    end
    else begin
      cell := Internet.add_bytes !cell block ~off ~len;
      Machine.compute (machine t) (Internet.ops ~len)
    end

(* ------------------------------------------------------------------ *)
(* The logical plaintext stream of an outgoing message: a sequence of
   generated segments (length field, stub-produced prefix, padding) and
   payload segments read from application memory.  With the default
   leading header the length field comes first; with the trailer style of
   the paper's section 5 it comes last, which lets the ILP loop run
   strictly sequentially. *)

type seg = Gen of string | Payload of { addr : int; len : int }

type stream = { segs : seg array; total : int }

let u32_be v =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int (v land 0xffff_ffff));
  Bytes.unsafe_to_string b

(* Copy [n] stream bytes starting at [pos] into [block+boff], charging
   payload bytes as application-memory reads (word-granular) and
   generated bytes as ALU work.  The charges are identical on both data
   paths; only the host-side copy differs — the pooled path reads the
   backing store directly, the legacy path peeks an intermediate (the
   pre-PR per-block allocation, kept measurable). *)
(* Top-level recursion (not a nested [let rec], which would capture its
   environment and allocate a closure per call): [stream_read] runs once
   per word or cipher block of every simulated message. *)
let rec stream_read_walk t m segs block i seg_start pos boff n =
  if n > 0 then begin
    let seg = segs.(i) in
    let seg_len = match seg with Gen s -> String.length s | Payload p -> p.len in
    if pos >= seg_start + seg_len then
      stream_read_walk t m segs block (i + 1) (seg_start + seg_len) pos boff n
    else begin
      let off_in_seg = pos - seg_start in
      let take = min n (seg_len - off_in_seg) in
      (match seg with
      | Gen src ->
          Bytes.blit_string src off_in_seg block boff take;
          Machine.compute m ((take + 3) / 4)
      | Payload p ->
          let addr = p.addr + off_in_seg in
          let words = take / 4 in
          for k = 0 to words - 1 do
            Machine.read m ~addr:(addr + (k * 4)) ~size:4;
            Machine.compute m 1
          done;
          for k = words * 4 to take - 1 do
            Machine.read m ~addr:(addr + k) ~size:1;
            Machine.compute m 1
          done;
          (match t.data_path with
          | Pooled -> Bytes.blit (Mem.raw (mem t)) addr block boff take
          | Legacy ->
              Mt.alloc Mt.Marshal take;
              Bytes.blit (Mem.peek_bytes (mem t) ~pos:addr ~len:take) 0 block
                boff take));
      stream_read_walk t m segs block i seg_start (pos + take) (boff + take)
        (n - take)
    end
  end

let stream_read t st block ~boff ~pos ~n =
  if pos + n > st.total then invalid_arg "Engine.stream_read: beyond message end";
  stream_read_walk t (machine t) st.segs block 0 0 pos boff n

(* ------------------------------------------------------------------ *)
(* Send *)

type prepared = {
  len : int;
  fill : Mem.t -> dst:int -> Internet.acc option;
}

type body_segment = Seg_gen of string | Seg_app of { addr : int; len : int }

let internal_seg = function
  | Seg_gen s -> Gen s
  | Seg_app { addr; len } -> Payload { addr; len }

let make_stream_of_segments t body =
  let body_len =
    List.fold_left
      (fun acc -> function
        | Seg_gen s -> acc + String.length s
        | Seg_app { len; _ } -> acc + len)
      0 body
  in
  (* The CRC32 trailer, when enabled, rides inside the encrypted length:
     its value is a stream-build-time computation over the logical body
     bytes (it cannot be folded in part order — the CRC is
     ordering-constrained), while its per-byte fold cost is charged by the
     fill paths below.  The pooled path folds the segments in place; the
     legacy path renders them through a Buffer first (the pre-PR copy). *)
  let crc_segs =
    match t.crc with
    | None -> []
    | Some _ ->
        let value =
          match t.data_path with
          | Pooled ->
              let raw = Mem.raw (mem t) in
              Crc32.finish
                (List.fold_left
                   (fun crc -> function
                     | Seg_gen s ->
                         Crc32.fold_string ~crc s ~off:0 ~len:(String.length s)
                     | Seg_app { addr; len } ->
                         Crc32.fold_bytes ~crc raw ~off:addr ~len)
                   Crc32.init body)
          | Legacy ->
              let b = Buffer.create (body_len + 8) in
              List.iter
                (function
                  | Seg_gen s -> Buffer.add_string b s
                  | Seg_app { addr; len } ->
                      Mt.alloc Mt.Checksum len;
                      Buffer.add_bytes b (Mem.peek_bytes (mem t) ~pos:addr ~len))
                body;
              Crc32.string_crc (Buffer.contents b)
        in
        [ Gen (u32_be value) ]
  in
  let framed_len = body_len + framing_extra t in
  let plan = Parts.plan ~body_len:framed_len () in
  if plan.Parts.total > t.max_message then
    invalid_arg
      (Printf.sprintf "Engine.prepare_send: message of %d bytes exceeds maximum %d"
         plan.Parts.total t.max_message);
  let enc_len = Parts.length_field plan in
  let total = plan.Parts.total in
  let body_segs = List.map internal_seg body @ crc_segs in
  let segs =
    match t.header_style with
    | Leading ->
        Array.of_list
          ((Gen (u32_be enc_len) :: body_segs)
          @ [ Gen (String.make plan.Parts.alignment '\000') ])
    | Trailer ->
        (* Length field at the end: padding precedes it so the field sits
           in the last word of the final block. *)
        let pad = total - 4 - framed_len in
        Array.of_list (body_segs @ [ Gen (String.make pad '\000'); Gen (u32_be enc_len) ])
  in
  (plan, { segs; total })

let make_stream t ~prefix ~payload_addr ~payload_len =
  if String.length prefix mod 4 <> 0 then
    invalid_arg "Engine.prepare_send: prefix must be a multiple of 4 bytes";
  make_stream_of_segments t
    [ Seg_gen prefix; Seg_app { addr = payload_addr; len = payload_len } ]

(* Intersection of a part with the wire range [off, off+len): the piece of
   the part a range fill must produce.  Part boundaries and segment
   boundaries are both multiples of the 8-byte plan block, so the
   intersection never splits a cipher block. *)
let inter ~off ~len (p_off, p_len) =
  let s = max p_off off and e = min (p_off + p_len) (off + len) in
  (s, max 0 (e - s))

(* ILP send of wire bytes [off, off+len) at [dst]: parts B, C, A (each
   clipped to the range), each through marshal+encrypt with the checksum
   tap on the ciphertext; the per-part accumulators are recombined in
   positional order A-B-C afterwards (legal: the Internet checksum is not
   ordering-constrained).  The whole-message send is the [off = 0,
   len = total] case; a streaming socket calls this once per MSS-sized
   segment, so every segment gets its own fused pass straight into the
   ring. *)
let fill_ilp_range t plan st ~dst ~off ~len =
  let tr = Trace.enabled () in
  let pkt = if tr then Trace.begin_packet () else 0 in
  let t_start = if tr then Machine.micros (machine t) else 0.0 in
  if tr then begin
    t.tr_acc.(0) <- 0.0;
    t.tr_acc.(1) <- 0.0
  end;
  let bl = block_len t in
  let acc_a = ref Internet.empty
  and acc_b = ref Internet.empty
  and acc_c = ref Internet.empty in
  let block = Bytes.create bl in
  let stages = [ t.marshal_dmf; t.encrypt_dmf ] in
  let part site cell (p_off, p_len) =
    if p_len > 0 then begin
      let spec =
        Pipeline.spec ~read_unit:4 ?write_pattern:(send_pattern t)
          ~linkage:t.linkage ~loop_code:t.send_loops.(site)
          ~tap:(checksum_tap t cell) ~tap_position:Pipeline.Tap_output stages
      in
      let pos = ref p_off in
      while !pos < p_off + p_len do
        Machine.compute (machine t) 1;
        if Trace.enabled () then begin
          let a = Machine.micros (machine t) in
          stream_read t st block ~boff:0 ~pos:!pos ~n:bl;
          t.tr_acc.(0) <- t.tr_acc.(0) +. (Machine.micros (machine t) -. a)
        end
        else stream_read t st block ~boff:0 ~pos:!pos ~n:bl;
        (* CRC32 stage, fused: fold the plaintext block while it is
           register-resident (table reads and compute only).  The trailer
           value itself was fixed at stream-build time; this charges the
           serial fold the fused loop performs. *)
        (match t.crc with
        | None -> ()
        | Some c ->
            if Trace.enabled () then begin
              let a = Machine.micros (machine t) in
              ignore (Crc32.update_block c ~crc:Crc32.init block ~off:0 ~len:bl);
              t.tr_acc.(1) <- t.tr_acc.(1) +. (Machine.micros (machine t) -. a)
            end
            else
              ignore (Crc32.update_block c ~crc:Crc32.init block ~off:0 ~len:bl));
        Pipeline.process_block t.sim spec block ~off:0 ~len:bl
          ~dst:(dst - off + !pos);
        pos := !pos + bl
      done
    end
  in
  (match t.header_style with
  | Leading ->
      part 0 acc_b (inter ~off ~len (Parts.part_b plan));
      part 1 acc_c (inter ~off ~len (Parts.part_c plan));
      part 1 acc_a (inter ~off ~len (Parts.part_a plan))
  | Trailer ->
      (* No dependencies point forward: one sequential pass. *)
      part 0 acc_b (off, len));
  (* Positional recombination A ++ B ++ C (all empty but B for trailer),
     with the in-range length of each part. *)
  let len_b, len_c =
    match t.header_style with
    | Leading ->
        ( snd (inter ~off ~len (Parts.part_b plan)),
          snd (inter ~off ~len (Parts.part_c plan)) )
    | Trailer -> (len, 0)
  in
  let acc = Internet.combine !acc_a !acc_b ~len_b in
  let acc = Internet.combine acc !acc_c ~len_b:len_c in
  if tr then begin
    (* Attribution, not a timeline: the fused loop interleaves the three
       manipulations, so each stage's accumulated simulated time is laid
       out sequentially from the packet start for rendering.  The tap and
       CRC folds land in the checksum slot, the stream reads in marshal,
       and the remainder of the loop (the pipeline) in encrypt; the ring
       copy is fused away (the loop stores straight into the ring). *)
    let t_end = Machine.micros (machine t) in
    let marshal = t.tr_acc.(0) and cs = t.tr_acc.(1) in
    let encrypt = Float.max 0.0 (t_end -. t_start -. marshal -. cs) in
    Trace.span ~arg:1 Trace.Send_marshal ~packet:pkt ~ts:t_start ~dur:marshal;
    Trace.span ~arg:1 Trace.Send_checksum ~packet:pkt ~ts:(t_start +. marshal)
      ~dur:cs;
    Trace.span ~arg:1 Trace.Send_encrypt ~packet:pkt
      ~ts:(t_start +. marshal +. cs) ~dur:encrypt;
    Trace.span ~arg:1 Trace.Send_ring_copy ~packet:pkt ~ts:t_end ~dur:0.0
  end;
  Some acc

let fill_ilp t plan st ~dst = fill_ilp_range t plan st ~dst ~off:0 ~len:st.total

(* Separate send of wire bytes [off, off+len): marshal the range into the
   intermediate buffer (figure 3 step 1), encrypt in place (step 2), copy
   into the TCP ring (step 3, tcp_send); the checksum pass (step 4) is
   TCP's, signalled by returning [None]. *)
let fill_separate_range t plan st ~dst ~off ~len =
  let m = machine t in
  let tr = Trace.enabled () in
  let pkt = if tr then Trace.begin_packet () else 0 in
  let t0 = if tr then Machine.micros m else 0.0 in
  let buf = t.marshal_buf in
  (* Marshalling pass: generate/read the stream, write words. *)
  Machine.exec m t.marshal_dmf.Dmf.code;
  let word = Bytes.create 4 in
  let pos = ref off in
  while !pos < off + len do
    Machine.compute m 1;
    stream_read t st word ~boff:0 ~pos:!pos ~n:4;
    t.marshal_dmf.Dmf.transform word 0;
    Machine.write m ~addr:(buf + !pos - off) ~size:4;
    Machine.compute m 1;
    Mem.poke_bytes (mem t) ~pos:(buf + !pos - off) word;
    pos := !pos + 4
  done;
  let t1 = if tr then Machine.micros m else 0.0 in
  (* CRC32 stage, separate: one more charged pass over the in-range slice
     of the marshalled body in the intermediate buffer (byte reads + table
     reads). *)
  (match t.crc with
  | None -> ()
  | Some c ->
      let region = crc_region t ~enc_len:(Parts.length_field plan) in
      let s, l = inter ~off ~len region in
      if l > 0 then
        ignore
          (Crc32.update_mem c ~crc:Crc32.init (mem t) ~pos:(buf + s - off)
             ~len:l));
  let t2 = if tr then Machine.micros m else 0.0 in
  (* Encryption pass, in place: a byte-oriented cipher loads and stores
     single bytes (the lines are resident from the marshalling pass, so
     these accesses hit — the paper's observation that a careful non-ILP
     implementation has good cache behaviour).  Ranges are cipher-block
     aligned, so per-range encryption matches the whole-message bytes. *)
  let cipher_unit = t.cipher.Ilp_cipher.Block_cipher.store_unit in
  Pipeline.run_pass t.sim t.encrypt_dmf ~read_unit:cipher_unit
    ~write_unit:cipher_unit ~src:buf ~dst:buf ~len ();
  let t3 = if tr then Machine.micros m else 0.0 in
  (* tcp_send: copy into the ring buffer. *)
  Mem.blit (mem t) ~src:buf ~dst ~len ~unit_len:4;
  if tr then begin
    (* Real sequential passes: each span is an actual interval.  The CRC
       fold (when enabled) counts as checksum work; TCP's own Internet
       checksum pass is traced by the socket. *)
    let t4 = Machine.micros m in
    Trace.span Trace.Send_marshal ~packet:pkt ~ts:t0 ~dur:(t1 -. t0);
    (match t.crc with
    | Some _ -> Trace.span Trace.Send_checksum ~packet:pkt ~ts:t1 ~dur:(t2 -. t1)
    | None -> ());
    Trace.span Trace.Send_encrypt ~packet:pkt ~ts:t2 ~dur:(t3 -. t2);
    Trace.span Trace.Send_ring_copy ~packet:pkt ~ts:t3 ~dur:(t4 -. t3)
  end;
  None

let fill_separate t plan st ~dst =
  fill_separate_range t plan st ~dst ~off:0 ~len:st.total

(* ------------------------------------------------------------------ *)
(* Native backend: the same wire format produced by the un-simulated
   Ilp_fastpath kernels (uncharged — native costs are wall-clock, not
   simulated cycles; the Memtraffic ledger counts them instead).

   Legacy path: the logical stream is rendered to a fresh buffer, run
   through the wire codec into a second fresh buffer, and the ciphertext
   poked into the ring — the pre-PR shape, kept as the measurable
   baseline and for A/B equivalence tests.

   Pooled path (single-copy): the stream is described as an iovec scatter
   list over the backing store and assembled by the codec directly into
   the ring at [dst]; in ILP mode the gather, encrypt and checksum happen
   in one traversal.  No intermediate buffer exists. *)

let render_stream t st =
  Mt.alloc Mt.Marshal st.total;
  let out = Bytes.create st.total in
  let pos = ref 0 in
  Array.iter
    (fun seg ->
      match seg with
      | Gen s ->
          Bytes.blit_string s 0 out !pos (String.length s);
          Mt.copied Mt.Marshal (String.length s);
          pos := !pos + String.length s
      | Payload p ->
          Mt.alloc Mt.Marshal p.len;
          Mt.copied Mt.Marshal (2 * p.len);
          Bytes.blit (Mem.peek_bytes (mem t) ~pos:p.addr ~len:p.len) 0 out !pos p.len;
          pos := !pos + p.len)
    st.segs;
  out

(* Legacy range fill: [plain] is the whole rendered plaintext (rendered
   once per message, shared by every range of it). *)
let fill_native_legacy_range t fp plain ~dst ~off ~len =
  Mt.alloc Mt.Tcp len;
  let wire = Bytes.create len in
  match t.mode with
  | Ilp ->
      let acc =
        Wire.send_ilp fp ~src:plain ~src_off:off ~len ~dst:wire ~dst_off:0
      in
      Mem.poke_bytes (mem t) ~pos:dst wire;
      Mt.copied Mt.Tcp len;
      Some acc
  | Separate ->
      (* TCP runs its own checksum pass over the ring, as in the simulated
         separate path; the accumulator computed here is dropped. *)
      ignore (Wire.send_separate fp ~src:plain ~src_off:off ~len ~dst:wire ~dst_off:0);
      Mem.poke_bytes (mem t) ~pos:dst wire;
      Mt.copied Mt.Tcp len;
      None

(* The iovec scatter list describing wire bytes [off, off+len): stream
   segments clipped to the range, payload runs pointing straight into the
   backing store. *)
let iovecs_of_range t st ~off ~len =
  let raw = Mem.raw (mem t) in
  let iovs = ref [] in
  let seg_start = ref 0 in
  Array.iter
    (fun seg ->
      let seg_len =
        match seg with Gen s -> String.length s | Payload p -> p.len
      in
      let s = max !seg_start off and e = min (!seg_start + seg_len) (off + len) in
      if e > s then begin
        let o = s - !seg_start and l = e - s in
        let iov =
          match seg with
          | Gen str -> Wire.Io_string { s = str; off = o; len = l }
          | Payload p -> Wire.Io_bytes { buf = raw; off = p.addr + o; len = l }
        in
        iovs := iov :: !iovs
      end;
      seg_start := !seg_start + seg_len)
    st.segs;
  List.rev !iovs

let fill_native_pooled_range t fp st ~dst ~off ~len =
  let raw = Mem.raw (mem t) in
  let iov = iovecs_of_range t st ~off ~len in
  match t.mode with
  | Ilp -> Some (Wire.sendv_ilp fp ~iov ~dst:raw ~dst_off:dst)
  | Separate ->
      ignore (Wire.sendv_separate fp ~iov ~dst:raw ~dst_off:dst);
      None

let fill_native_range t fp st ~plain ~dst ~off ~len =
  (* Native stage spans are emitted by the Wire codec against the wall
     clock installed via [Trace.set_clock]; the packet id is allocated
     here so TCP's link/checksum events correlate. *)
  if Trace.enabled () then ignore (Trace.begin_packet ());
  match t.data_path with
  | Pooled -> fill_native_pooled_range t fp st ~dst ~off ~len
  | Legacy -> fill_native_legacy_range t fp (Lazy.force plain) ~dst ~off ~len

let fill_native t fp st ~dst =
  fill_native_range t fp st ~plain:(lazy (render_stream t st)) ~dst ~off:0
    ~len:st.total

let prepared_of_stream t (plan, st) =
  let fill _mem ~dst =
    M.inc m_sends 1;
    match t.fastpath with
    | Some fp -> fill_native t fp st ~dst
    | None -> (
        match t.mode with
        | Ilp -> fill_ilp t plan st ~dst
        | Separate -> fill_separate t plan st ~dst)
  in
  { len = st.total; fill }

let prepare_send t ~prefix ~payload_addr ~payload_len =
  prepared_of_stream t (make_stream t ~prefix ~payload_addr ~payload_len)

let prepare_send_segments t body =
  prepared_of_stream t (make_stream_of_segments t body)

(* ------------------------------------------------------------------ *)
(* Streaming send: the same wire message, producible in MSS-sized ranges
   so [Ilp_tcp.Socket.send_stream] can keep a window of segments in
   flight, each filled by one fused pass straight into the ring. *)

type prepared_stream = {
  stream_len : int;
  seg_unit : int;
  fill_range :
    Mem.t -> dst:int -> off:int -> len:int -> Internet.acc option;
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let prepare_stream_segments t body =
  let plan, st = make_stream_of_segments t body in
  (* Segment boundaries must land on cipher blocks (so each segment
     encrypts and decrypts independently to the same bytes as the whole
     message) and on the 8-byte units of the plan and the native codec. *)
  let bl = block_len t in
  let seg_unit = bl * 8 / gcd bl 8 in
  let plain = lazy (render_stream t st) in
  let fill_range mem_ ~dst ~off ~len =
    ignore mem_;
    if off < 0 || len <= 0 || off + len > st.total then
      invalid_arg "Engine.fill_range: range outside the message";
    if off mod seg_unit <> 0 || len mod seg_unit <> 0 then
      invalid_arg "Engine.fill_range: range not aligned to the segment unit";
    if off = 0 then M.inc m_sends 1;
    M.inc m_stream_fills 1;
    match t.fastpath with
    | Some fp -> fill_native_range t fp st ~plain ~dst ~off ~len
    | None -> (
        match t.mode with
        | Ilp -> fill_ilp_range t plan st ~dst ~off ~len
        | Separate -> fill_separate_range t plan st ~dst ~off ~len)
  in
  { stream_len = st.total; seg_unit; fill_range }

(* ------------------------------------------------------------------ *)
(* Receive *)

(* A hostile wire can hand TCP a segment of any length whose checksum
   happens to verify (or, integrated, whose length is checked before the
   verdict), so length validation must reject rather than raise. *)
let check_rx_len t ~dst_off ~len =
  let reject e =
    M.inc m_rx_rejects 1;
    Error e
  in
  if len <= 0 then reject (Printf.sprintf "Engine.rx: empty segment (len %d)" len)
  else if len mod block_len t <> 0 then
    reject
      (Printf.sprintf
         "Engine.rx: segment length %d not a multiple of the %d-byte cipher block"
         len (block_len t))
  else if len > t.max_message then
    reject
      (Printf.sprintf "Engine.rx: segment of %d bytes exceeds maximum %d" len
         t.max_message)
  else if dst_off < 0 || dst_off + len > t.max_message then
    (* A mid-TSDU segment whose reassembly offset would run past the
       application area: the sender and receiver disagree about the
       message size (or a PSH was lost to corruption) — reject rather
       than clobber memory past [app_rx]. *)
    reject
      (Printf.sprintf
         "Engine.rx: reassembly offset %d + segment %d exceeds maximum %d"
         dst_off len t.max_message)
  else Ok ()

(* Native receive helpers.  Legacy: the staged ciphertext is peeked out of
   simulated memory, run through the fast path into a fresh buffer, and
   the plaintext poked into the application area — two intermediates per
   message.  Pooled (the single-copy rx path): the fast path reads the
   staged ciphertext from the backing store and lands the plaintext
   directly in the engine-owned pool buffer at its final TSDU offset —
   the very buffer [read_plaintext_pooled] will hand to the in-place
   decoders, so no delivery copy remains; the separate-path decrypt
   consumes the staging bytes in place exactly as the simulated backend
   does. *)
let rx_placement_buf t =
  match t.rx_dst with
  | Some b -> b
  | None ->
      let b = Pool.acquire t.pool t.max_message in
      t.rx_dst <- Some b;
      b

let rx_native_separate t fp ~src ~dst_off ~len =
  match t.data_path with
  | Pooled ->
      let raw = Mem.raw (mem t) in
      let dst = rx_placement_buf t in
      ignore (Wire.recv_separate fp ~src:raw ~src_off:src ~len ~dst ~dst_off)
  | Legacy ->
      Mt.alloc_rx Mt.Tcp len;
      Mt.copied_rx Mt.Tcp len;
      let staged = Mem.peek_bytes (mem t) ~pos:src ~len in
      Mt.alloc_rx Mt.Marshal len;
      let plain = Bytes.create len in
      ignore (Wire.recv_separate fp ~src:staged ~src_off:0 ~len ~dst:plain ~dst_off:0);
      Mem.poke_bytes (mem t) ~pos:(t.app_rx + dst_off) plain;
      Mt.copied_rx Mt.Rpc len

let rx_native_fused t fp ~src ~dst_off ~len =
  match t.data_path with
  | Pooled ->
      let raw = Mem.raw (mem t) in
      let dst = rx_placement_buf t in
      Wire.recv_ilp fp ~src:raw ~src_off:src ~len ~dst ~dst_off
  | Legacy ->
      Mt.alloc_rx Mt.Tcp len;
      Mt.copied_rx Mt.Tcp len;
      let staged = Mem.peek_bytes (mem t) ~pos:src ~len in
      Mt.alloc_rx Mt.Marshal len;
      let plain = Bytes.create len in
      let acc = Wire.recv_ilp fp ~src:staged ~src_off:0 ~len ~dst:plain ~dst_off:0 in
      Mem.poke_bytes (mem t) ~pos:(t.app_rx + dst_off) plain;
      Mt.copied_rx Mt.Rpc len;
      acc

(* Separate receive (figure 5 left, after TCP's checksum pass): decrypt in
   place on the staging area, then unmarshal-and-copy to the application
   area in words. *)
let rx_separate t _mem ~src ~dst_off ~len =
  match check_rx_len t ~dst_off ~len with
  | Error _ as e -> e
  | Ok () ->
      (match t.fastpath with
      | Some fp -> rx_native_separate t fp ~src ~dst_off ~len
      | None ->
          let tr = Trace.enabled () in
          let t0 = if tr then Machine.micros (machine t) else 0.0 in
          let cipher_unit = t.cipher.Ilp_cipher.Block_cipher.store_unit in
          Pipeline.run_pass t.sim t.decrypt_dmf ~read_unit:cipher_unit
            ~write_unit:cipher_unit ~src ~dst:src ~len ();
          let t1 = if tr then Machine.micros (machine t) else 0.0 in
          Pipeline.run_pass t.sim t.unmarshal_dmf ~read_unit:4 ~write_unit:4 ~src
            ~dst:(t.app_rx + dst_off) ~len ();
          if tr then begin
            (* TCP's own checksum pass was traced by the socket. *)
            let pkt = Trace.current_packet () in
            Trace.span Trace.Recv_decrypt ~packet:pkt ~ts:t0 ~dur:(t1 -. t0);
            Trace.span Trace.Recv_unmarshal ~packet:pkt ~ts:t1
              ~dur:(Machine.micros (machine t) -. t1)
          end);
      Ok ()

(* Integrated receive (figure 5 right): checksum the ciphertext, decrypt
   and unmarshal in one loop, storing plaintext to the application area in
   the cipher's natural store width. *)
let rx_integrated t _mem ~src ~dst_off ~len =
  match check_rx_len t ~dst_off ~len with
  | Error _ as e -> e
  | Ok () -> (
      match t.fastpath with
      | Some fp -> Ok (rx_native_fused t fp ~src ~dst_off ~len)
      | None ->
          let tr = Trace.enabled () in
          let t0 = if tr then Machine.micros (machine t) else 0.0 in
          if tr then t.tr_acc.(1) <- 0.0;
          let cell = ref Internet.empty in
          let spec =
            Pipeline.spec ~read_unit:4 ?write_pattern:(recv_pattern t)
              ~linkage:t.linkage ~loop_code:t.recv_loop
              ~tap:(checksum_tap t cell) ~tap_position:Pipeline.Tap_input
              [ t.decrypt_dmf; t.unmarshal_dmf ]
          in
          Pipeline.run_fused t.sim spec ~src ~dst:(t.app_rx + dst_off) ~len;
          if tr then begin
            (* Attribution of the fused loop: the checksum tap's time in
               its own slot, the rest (decrypt + unmarshal, one loop) laid
               on decrypt, with unmarshal flagged fused. *)
            let t1 = Machine.micros (machine t) in
            let pkt = Trace.current_packet () in
            let cs = t.tr_acc.(1) in
            let rest = Float.max 0.0 (t1 -. t0 -. cs) in
            Trace.span ~arg:1 Trace.Recv_checksum ~packet:pkt ~ts:t0 ~dur:cs;
            Trace.span ~arg:1 Trace.Recv_decrypt ~packet:pkt ~ts:(t0 +. cs)
              ~dur:rest;
            Trace.span ~arg:1 Trace.Recv_unmarshal ~packet:pkt ~ts:t1 ~dur:0.0
          end;
          Ok !cell)

(* Deferred ("close to the application") manipulation for the Late
   placement of section 3.2.3: the fused decrypt+unmarshal loop runs at
   delivery time, after TCP has already checksummed and accepted the
   segment.  The paper's TCP delayed acknowledgements instead of paying a
   second pass; ours refuses to roll back control state, so the Late
   placement buys the extra checksum pass — quantifying why the authors
   chose the early placement. *)
let rx_late t _mem ~src ~dst_off ~len =
  match check_rx_len t ~dst_off ~len with
  | Error _ as e -> e
  | Ok () ->
      (match t.fastpath with
      | Some fp -> ignore (rx_native_fused t fp ~src ~dst_off ~len)
      | None ->
          let tr = Trace.enabled () in
          let t0 = if tr then Machine.micros (machine t) else 0.0 in
          let spec =
            Pipeline.spec ~read_unit:4 ?write_pattern:(recv_pattern t)
              ~linkage:t.linkage ~loop_code:t.recv_loop
              [ t.decrypt_dmf; t.unmarshal_dmf ]
          in
          Pipeline.run_fused t.sim spec ~src ~dst:(t.app_rx + dst_off) ~len;
          if tr then begin
            let t1 = Machine.micros (machine t) in
            let pkt = Trace.current_packet () in
            Trace.span ~arg:1 Trace.Recv_decrypt ~packet:pkt ~ts:t0
              ~dur:(t1 -. t0);
            Trace.span ~arg:1 Trace.Recv_unmarshal ~packet:pkt ~ts:t1 ~dur:0.0
          end);
      Ok ()

type rx_style =
  | Rx_integrated_style of
      (Mem.t ->
      src:int ->
      dst_off:int ->
      len:int ->
      (Internet.acc, string) result)
  | Rx_deferred_style of
      (Mem.t -> src:int -> dst_off:int -> len:int -> (unit, string) result)

let rx_style t =
  match (t.mode, t.rx_placement) with
  | Ilp, Early -> Rx_integrated_style (rx_integrated t)
  | Ilp, Late -> Rx_deferred_style (rx_late t)
  | Separate, _ -> Rx_deferred_style (rx_separate t)

(* Shared validation of the plaintext at [app_rx]: the application reads
   the length field and the RPC header words (charged), rejects an
   implausible decrypted length, and verifies the CRC32 trailer when
   enabled.  Charges are identical for both data paths — pooling changes
   where the TSDU bytes land on the host, not what the simulated CPU
   does.  With the native pooled path the plaintext lives in the engine's
   host placement buffer rather than at [app_rx]; the reads then fetch
   their values from the buffer while charging the same simulated
   accesses at the same [app_rx] addresses, preserving charge identity
   with the legacy path. *)
let validate_plaintext t ~len =
  let m = machine t in
  let get32 addr =
    match t.rx_dst with
    | None -> Mem.get_u32 (mem t) addr
    | Some b ->
        Machine.read m ~addr ~size:4;
        Int32.to_int (Bytes.get_int32_be b (addr - t.app_rx)) land 0xffff_ffff
  in
  let enc_len =
    match t.header_style with
    | Leading -> get32 t.app_rx
    | Trailer -> get32 (t.app_rx + len - 4)
  in
  Machine.compute m 2;
  let hdr_words = min 6 ((len - 4) / 4) in
  for i = 0 to hdr_words - 1 do
    ignore (get32 (t.app_rx + 4 + (i * 4)));
    Machine.compute m 1
  done;
  if enc_len < 4 || enc_len > len then
    (* Decryption of a colliding-checksum segment scrambles the length
       field: reject the message rather than index out of bounds. *)
    Error (Printf.sprintf "Engine.read_plaintext: bad length field %d" enc_len)
  else
    match t.crc with
    | None -> Ok ()
    | Some c ->
        (* End-to-end verification of the CRC32 trailer: recompute the
           serial fold over the plaintext body (charged) and compare.
           This catches corruptions whose 16-bit Internet checksum
           happens to collide. *)
        if enc_len < 8 then
          Error
            (Printf.sprintf
               "Engine.read_plaintext: length field %d too short for crc32 trailer"
               enc_len)
        else begin
          let body_off, crc_len = crc_region t ~enc_len in
          let stored = get32 (t.app_rx + body_off + crc_len) in
          let crc =
            match t.rx_dst with
            | None ->
                Crc32.update_mem c ~crc:Crc32.init (mem t)
                  ~pos:(t.app_rx + body_off) ~len:crc_len
            | Some b ->
                Crc32.update_host c ~crc:Crc32.init (mem t)
                  ~pos:(t.app_rx + body_off) b ~off:body_off ~len:crc_len
          in
          Machine.compute m 2;
          if Crc32.finish crc land 0xffff_ffff <> stored then
            Error "Engine.read_plaintext: crc32 trailer mismatch"
          else Ok ()
        end

let read_plaintext t ~len =
  if len < 4 || len > t.max_message then
    Error (Printf.sprintf "Engine.read_plaintext: implausible segment length %d" len)
  else
    match validate_plaintext t ~len with
    | Error _ as e -> e
    | Ok () -> (
        Mt.alloc_rx Mt.Rpc len;
        Mt.copied_rx Mt.Rpc len;
        match t.rx_dst with
        | Some b -> Ok (Bytes.sub_string b 0 len)
        | None ->
            Ok (Bytes.unsafe_to_string (Mem.peek_bytes (mem t) ~pos:t.app_rx ~len)))

let read_plaintext_pooled t ~len =
  if len < 4 || len > t.max_message then
    Error (Printf.sprintf "Engine.read_plaintext: implausible segment length %d" len)
  else
    match validate_plaintext t ~len with
    | Error _ as e -> e
    | Ok () -> (
        match t.rx_dst with
        | Some buf ->
            (* Single-copy delivery: hand the placement buffer itself to
               the caller.  Ownership transfers — the engine draws a fresh
               buffer from the pool for the next TSDU, and the caller
               returns this one via [release_plaintext]. *)
            t.rx_dst <- None;
            Ok (buf, len)
        | None ->
            let buf = Pool.acquire t.pool len in
            Bytes.blit (Mem.raw (mem t)) t.app_rx buf 0 len;
            Mt.copied_rx Mt.Rpc len;
            Ok (buf, len))

let release_plaintext t buf = Pool.release t.pool buf
