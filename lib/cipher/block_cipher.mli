(** Common interface to charged block ciphers.

    A [t] is a cipher instance bound to one simulated machine: its key
    material and lookup tables live in simulated memory, so encrypting a
    block charges the machine for table reads and ALU work.  The block
    itself is transformed {e in registers} (a small [Bytes.t] scratch): it
    is the caller — the non-ILP pass or the fused ILP loop — that decides
    when and in what unit sizes the block crosses memory, which is the
    whole point of the paper. *)

type blocks_fn = Bytes.t -> int -> int -> unit
(** [f buf off count] transforms [count] consecutive blocks in place
    starting at [off].  Batch kernels amortise per-call setup (scratch
    reuse, key-schedule reads kept in registers) across the run. *)

type t = {
  name : string;
  block_len : int;  (** processing-unit size in bytes; 8 for all paper ciphers *)
  encrypt : Bytes.t -> int -> unit;
      (** [encrypt block off] transforms [block_len] bytes in place *)
  decrypt : Bytes.t -> int -> unit;
  encrypt_blocks : blocks_fn option;
      (** optional batch kernel; [None] falls back to a per-block loop *)
  decrypt_blocks : blocks_fn option;
  code_encrypt : Ilp_memsim.Code.region;
      (** instruction footprint of the encryption kernel *)
  code_decrypt : Ilp_memsim.Code.region;
  store_unit : int;
      (** the widest store the kernel's macro-expanded code emits when its
          output goes straight to memory: 1 for the byte-oriented SAFER
          family (the paper: "they write single bytes into the memory"),
          4 for word-oriented manipulations like the simple cipher *)
}

(** [encrypt_blocks t buf ~off ~count] transforms [count] consecutive
    blocks of [buf] in place, via the cipher's batch kernel when it has
    one and a per-block dispatch loop otherwise.  Bounds-checked. *)
val encrypt_blocks : t -> Bytes.t -> off:int -> count:int -> unit

val decrypt_blocks : t -> Bytes.t -> off:int -> count:int -> unit

(** [roundtrip_ok t] checks [decrypt (encrypt b) = b] on a sample block. *)
val roundtrip_ok : t -> bool

(** [encrypt_string t s] / [decrypt_string t s] apply the cipher in ECB
    mode; [String.length s] must be a multiple of [block_len]. *)
val encrypt_string : t -> string -> string

val decrypt_string : t -> string -> string
