(** Common interface to charged block ciphers.

    A [t] is a cipher instance bound to one simulated machine: its key
    material and lookup tables live in simulated memory, so encrypting a
    block charges the machine for table reads and ALU work.  The block
    itself is transformed {e in registers} (a small [Bytes.t] scratch): it
    is the caller — the non-ILP pass or the fused ILP loop — that decides
    when and in what unit sizes the block crosses memory, which is the
    whole point of the paper. *)

type t = {
  name : string;
  block_len : int;  (** processing-unit size in bytes; 8 for all paper ciphers *)
  encrypt : Bytes.t -> int -> unit;
      (** [encrypt block off] transforms [block_len] bytes in place *)
  decrypt : Bytes.t -> int -> unit;
  code_encrypt : Ilp_memsim.Code.region;
      (** instruction footprint of the encryption kernel *)
  code_decrypt : Ilp_memsim.Code.region;
  store_unit : int;
      (** the widest store the kernel's macro-expanded code emits when its
          output goes straight to memory: 1 for the byte-oriented SAFER
          family (the paper: "they write single bytes into the memory"),
          4 for word-oriented manipulations like the simple cipher *)
}

(** [roundtrip_ok t] checks [decrypt (encrypt b) = b] on a sample block. *)
val roundtrip_ok : t -> bool

(** [encrypt_string t s] / [decrypt_string t s] apply the cipher in ECB
    mode; [String.length s] must be a multiple of [block_len]. *)
val encrypt_string : t -> string -> string

val decrypt_string : t -> string -> string
