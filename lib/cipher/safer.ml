let exp_table =
  let t = Array.make 256 0 in
  let v = ref 1 in
  for i = 0 to 255 do
    t.(i) <- !v land 0xff (* 256 is encoded as 0, at index 128 *);
    v := !v * 45 mod 257
  done;
  t

let log_table =
  let t = Array.make 256 0 in
  Array.iteri (fun i e -> t.(e) <- i) exp_table;
  t

type key = { rounds : int; k : int array (* (2*rounds+1) * 8 round-key bytes *) }

let rotl3 b = ((b lsl 3) lor (b lsr 5)) land 0xff

let expand_key ?(rounds = 6) user =
  if String.length user <> 8 then invalid_arg "Safer.expand_key: key must be 8 bytes";
  if rounds < 1 || rounds > 12 then invalid_arg "Safer.expand_key: rounds";
  let nk = (2 * rounds) + 1 in
  let k = Array.make (nk * 8) 0 in
  let z = Array.init 8 (fun j -> Char.code user.[j]) in
  for j = 0 to 7 do
    k.(j) <- z.(j)
  done;
  for i = 1 to nk - 1 do
    for j = 0 to 7 do
      z.(j) <- rotl3 z.(j)
    done;
    for j = 0 to 7 do
      (* Key bias B_{i+1}(j+1) = exp (exp (9*(i+1) + (j+1))), 1-based as in
         Massey's description. *)
      let bias = exp_table.(exp_table.(((9 * (i + 1)) + j + 1) land 0xff)) in
      k.((i * 8) + j) <- (z.(j) + bias) land 0xff
    done
  done;
  { rounds; k }

let rounds key = key.rounds

(* The round core is shared between the pure and the charged
   implementations: [kread i] fetches round-key byte [i], [exp]/[log] are
   the substitution tables, [ops n] charges [n] ALU operations.  The block
   lives in the array [s] of eight register bytes. *)

let encrypt_core ~kread ~exp ~log ~ops key s =
  let r = key.rounds in
  for i = 0 to r - 1 do
    let k1 = i * 16 and k2 = (i * 16) + 8 in
    (* Mixed XOR/ADD with K_{2i+1}. *)
    s.(0) <- s.(0) lxor kread (k1 + 0);
    s.(1) <- (s.(1) + kread (k1 + 1)) land 0xff;
    s.(2) <- (s.(2) + kread (k1 + 2)) land 0xff;
    s.(3) <- s.(3) lxor kread (k1 + 3);
    s.(4) <- s.(4) lxor kread (k1 + 4);
    s.(5) <- (s.(5) + kread (k1 + 5)) land 0xff;
    s.(6) <- (s.(6) + kread (k1 + 6)) land 0xff;
    s.(7) <- s.(7) lxor kread (k1 + 7);
    (* Nonlinear layer, then mixed ADD/XOR with K_{2i+2}. *)
    s.(0) <- (exp s.(0) + kread (k2 + 0)) land 0xff;
    s.(1) <- log s.(1) lxor kread (k2 + 1);
    s.(2) <- log s.(2) lxor kread (k2 + 2);
    s.(3) <- (exp s.(3) + kread (k2 + 3)) land 0xff;
    s.(4) <- (exp s.(4) + kread (k2 + 4)) land 0xff;
    s.(5) <- log s.(5) lxor kread (k2 + 5);
    s.(6) <- log s.(6) lxor kread (k2 + 6);
    s.(7) <- (exp s.(7) + kread (k2 + 7)) land 0xff;
    ops 32;
    (* Three 2-PHT levels with the Armenian shuffle folded in. *)
    let pht i j =
      let x = s.(i) and y = s.(j) in
      s.(i) <- ((2 * x) + y) land 0xff;
      s.(j) <- (x + y) land 0xff
    in
    pht 0 1; pht 2 3; pht 4 5; pht 6 7;
    pht 0 2; pht 4 6; pht 1 3; pht 5 7;
    pht 0 4; pht 1 5; pht 2 6; pht 3 7;
    ops 36;
    (* Permutation: (a,b,c,d,e,f,g,h) -> (a,e,b,f,c,g,d,h) expressed as the
       two 3-cycles of the reference implementation. *)
    let t = s.(1) in
    s.(1) <- s.(4); s.(4) <- s.(2); s.(2) <- t;
    let t = s.(3) in
    s.(3) <- s.(5); s.(5) <- s.(6); s.(6) <- t;
    ops 8
  done;
  (* Output transform with K_{2r+1}. *)
  let kl = r * 16 in
  s.(0) <- s.(0) lxor kread (kl + 0);
  s.(1) <- (s.(1) + kread (kl + 1)) land 0xff;
  s.(2) <- (s.(2) + kread (kl + 2)) land 0xff;
  s.(3) <- s.(3) lxor kread (kl + 3);
  s.(4) <- s.(4) lxor kread (kl + 4);
  s.(5) <- (s.(5) + kread (kl + 5)) land 0xff;
  s.(6) <- (s.(6) + kread (kl + 6)) land 0xff;
  s.(7) <- s.(7) lxor kread (kl + 7);
  ops 16

let decrypt_core ~kread ~exp ~log ~ops key s =
  let r = key.rounds in
  let sub x k = (x - k) land 0xff in
  (* Invert the output transform. *)
  let kl = r * 16 in
  s.(0) <- s.(0) lxor kread (kl + 0);
  s.(1) <- sub s.(1) (kread (kl + 1));
  s.(2) <- sub s.(2) (kread (kl + 2));
  s.(3) <- s.(3) lxor kread (kl + 3);
  s.(4) <- s.(4) lxor kread (kl + 4);
  s.(5) <- sub s.(5) (kread (kl + 5));
  s.(6) <- sub s.(6) (kread (kl + 6));
  s.(7) <- s.(7) lxor kread (kl + 7);
  ops 16;
  for i = r - 1 downto 0 do
    let k1 = i * 16 and k2 = (i * 16) + 8 in
    (* Invert the permutation: forward sent (a,b,c,d,e,f,g,h) to
       (a,e,b,f,c,g,d,h). *)
    let t = s.(2) in
    s.(2) <- s.(4); s.(4) <- s.(1); s.(1) <- t;
    let t = s.(6) in
    s.(6) <- s.(5); s.(5) <- s.(3); s.(3) <- t;
    ops 8;
    (* Invert the PHT levels, innermost first. *)
    let ipht i j =
      let x = s.(i) and y = s.(j) in
      s.(i) <- (x - y) land 0xff;
      s.(j) <- ((2 * y) - x) land 0xff
    in
    ipht 0 4; ipht 1 5; ipht 2 6; ipht 3 7;
    ipht 0 2; ipht 4 6; ipht 1 3; ipht 5 7;
    ipht 0 1; ipht 2 3; ipht 4 5; ipht 6 7;
    ops 36;
    (* Invert the nonlinear layer and the two key mixings. *)
    s.(0) <- log (sub s.(0) (kread (k2 + 0))) lxor kread (k1 + 0);
    s.(1) <- sub (exp (s.(1) lxor kread (k2 + 1))) (kread (k1 + 1));
    s.(2) <- sub (exp (s.(2) lxor kread (k2 + 2))) (kread (k1 + 2));
    s.(3) <- log (sub s.(3) (kread (k2 + 3))) lxor kread (k1 + 3);
    s.(4) <- log (sub s.(4) (kread (k2 + 4))) lxor kread (k1 + 4);
    s.(5) <- sub (exp (s.(5) lxor kread (k2 + 5))) (kread (k1 + 5));
    s.(6) <- sub (exp (s.(6) lxor kread (k2 + 6))) (kread (k1 + 6));
    s.(7) <- log (sub s.(7) (kread (k2 + 7))) lxor kread (k1 + 7);
    ops 32
  done

(* Run a core on one block through a caller-supplied scratch array, so a
   batch (or a long-lived charged instance) reuses the scratch instead of
   allocating per block. *)
let run_block core s b off =
  for i = 0 to 7 do
    s.(i) <- Char.code (Bytes.get b (off + i))
  done;
  core s;
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr s.(i))
  done

let with_block f b off = run_block f (Array.make 8 0) b off

let pure_exp x = exp_table.(x)
let pure_log x = log_table.(x)
let no_ops (_ : int) = ()

let batch name core b ~off ~count =
  if off < 0 || count < 0 || off + (count * 8) > Bytes.length b then
    invalid_arg (name ^ ": block run out of bounds");
  let s = Array.make 8 0 in
  for i = 0 to count - 1 do
    run_block core s b (off + (i * 8))
  done

let encrypt_blocks key b ~off ~count =
  batch "Safer.encrypt_blocks"
    (encrypt_core ~kread:(Array.get key.k) ~exp:pure_exp ~log:pure_log ~ops:no_ops key)
    b ~off ~count

let decrypt_blocks key b ~off ~count =
  batch "Safer.decrypt_blocks"
    (decrypt_core ~kread:(Array.get key.k) ~exp:pure_exp ~log:pure_log ~ops:no_ops key)
    b ~off ~count

let encrypt_block key b off =
  with_block
    (encrypt_core ~kread:(Array.get key.k) ~exp:pure_exp ~log:pure_log ~ops:no_ops key)
    b off

let decrypt_block key b off =
  with_block
    (decrypt_core ~kread:(Array.get key.k) ~exp:pure_exp ~log:pure_log ~ops:no_ops key)
    b off

let map_string f key s =
  let n = String.length s in
  if n mod 8 <> 0 then invalid_arg "Safer: input not a multiple of 8 bytes";
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    f key b !off;
    off := !off + 8
  done;
  Bytes.unsafe_to_string b

let encrypt_string key s = map_string encrypt_block key s
let decrypt_string key s = map_string decrypt_block key s

let charged (sim : Ilp_memsim.Sim.t) ?(rounds = 6) ~key () =
  let open Ilp_memsim in
  let k = expand_key ~rounds key in
  let exp_base = Alloc.alloc sim.alloc ~align:64 256 in
  let log_base = Alloc.alloc sim.alloc ~align:64 256 in
  let key_base = Alloc.alloc sim.alloc ~align:8 (Array.length k.k) in
  Array.iteri (fun i v -> Mem.poke_u8 sim.mem (exp_base + i) v) exp_table;
  Array.iteri (fun i v -> Mem.poke_u8 sim.mem (log_base + i) v) log_table;
  Array.iteri (fun i v -> Mem.poke_u8 sim.mem (key_base + i) v) k.k;
  let kread i = Mem.get_u8 sim.mem (key_base + i) in
  let exp x = Mem.get_u8 sim.mem (exp_base + x) in
  let log x = Mem.get_u8 sim.mem (log_base + x) in
  let ops n = Machine.compute sim.machine n in
  (* Kernel code footprints: the full cipher is a sizeable unrolled loop;
     sizes approximate the SPARC object code of the reference C version. *)
  let code_encrypt = Code.alloc sim.code ~len:(512 + (rounds * 384)) in
  let code_decrypt = Code.alloc sim.code ~len:(512 + (rounds * 416)) in
  (* One scratch per direction for the instance's lifetime (the simulated
     machine is sequential), instead of an allocation per block. *)
  let s_enc = Array.make 8 0 and s_dec = Array.make 8 0 in
  let enc_core = encrypt_core ~kread ~exp ~log ~ops k in
  let dec_core = decrypt_core ~kread ~exp ~log ~ops k in
  { Block_cipher.name = Printf.sprintf "SAFER-K64/%d" rounds;
    block_len = 8;
    encrypt = (fun b off -> run_block enc_core s_enc b off);
    decrypt = (fun b off -> run_block dec_core s_dec b off);
    encrypt_blocks =
      Some
        (fun b off count ->
          for i = 0 to count - 1 do
            run_block enc_core s_enc b (off + (i * 8))
          done);
    decrypt_blocks =
      Some
        (fun b off count ->
          for i = 0 to count - 1 do
            run_block dec_core s_dec b (off + (i * 8))
          done);
    code_encrypt;
    code_decrypt;
    store_unit = 1 }
