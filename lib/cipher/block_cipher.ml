type t = {
  name : string;
  block_len : int;
  encrypt : Bytes.t -> int -> unit;
  decrypt : Bytes.t -> int -> unit;
  code_encrypt : Ilp_memsim.Code.region;
  code_decrypt : Ilp_memsim.Code.region;
  store_unit : int;
}

let roundtrip_ok t =
  let sample = Bytes.init t.block_len (fun i -> Char.chr ((i * 37 + 11) land 0xff)) in
  let block = Bytes.copy sample in
  t.encrypt block 0;
  t.decrypt block 0;
  Bytes.equal block sample

let map_blocks t f s =
  let n = String.length s in
  if n mod t.block_len <> 0 then
    invalid_arg (t.name ^ ": input not a multiple of the block length");
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    f b !off;
    off := !off + t.block_len
  done;
  Bytes.unsafe_to_string b

let encrypt_string t s = map_blocks t t.encrypt s
let decrypt_string t s = map_blocks t t.decrypt s
