type blocks_fn = Bytes.t -> int -> int -> unit

type t = {
  name : string;
  block_len : int;
  encrypt : Bytes.t -> int -> unit;
  decrypt : Bytes.t -> int -> unit;
  encrypt_blocks : blocks_fn option;
  decrypt_blocks : blocks_fn option;
  code_encrypt : Ilp_memsim.Code.region;
  code_decrypt : Ilp_memsim.Code.region;
  store_unit : int;
}

let check_blocks t buf ~off ~count =
  if off < 0 || count < 0 || off + (count * t.block_len) > Bytes.length buf then
    invalid_arg (t.name ^ ": block run out of bounds")

let run_blocks per_block block_len buf off count =
  for i = 0 to count - 1 do
    per_block buf (off + (i * block_len))
  done

let encrypt_blocks t buf ~off ~count =
  check_blocks t buf ~off ~count;
  match t.encrypt_blocks with
  | Some f -> f buf off count
  | None -> run_blocks t.encrypt t.block_len buf off count

let decrypt_blocks t buf ~off ~count =
  check_blocks t buf ~off ~count;
  match t.decrypt_blocks with
  | Some f -> f buf off count
  | None -> run_blocks t.decrypt t.block_len buf off count

let roundtrip_ok t =
  let sample = Bytes.init t.block_len (fun i -> Char.chr ((i * 37 + 11) land 0xff)) in
  let block = Bytes.copy sample in
  t.encrypt block 0;
  t.decrypt block 0;
  Bytes.equal block sample

let map_blocks t f s =
  let n = String.length s in
  if n mod t.block_len <> 0 then
    invalid_arg (t.name ^ ": input not a multiple of the block length");
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    f b !off;
    off := !off + t.block_len
  done;
  Bytes.unsafe_to_string b

let encrypt_string t s = map_blocks t t.encrypt s
let decrypt_string t s = map_blocks t t.decrypt s
