(** SAFER K-64 (Massey, FSE 1993): the byte-oriented 64-bit block cipher
    the paper's encryption function is derived from.

    The full cipher is provided both as a pure implementation (for
    correctness tests and wall-clock benchmarks) and as a charged
    {!Block_cipher.t} whose exponential/logarithm tables and key schedule
    live in simulated memory — every byte encrypted costs table and key
    reads through the simulated cache, which is precisely the
    data-manipulation characteristic the paper studies.

    Structure per round (bytes [a..h], round keys [K1], [K2]):
    mixed XOR/ADD with [K1]; byte substitution through [exp]/[log] tables
    ([exp x = 45^x mod 257], with 256 encoded as 0); mixed ADD/XOR with
    [K2]; three levels of 2-PHT ([PHT (x, y) = (2x+y mod 256, x+y mod
    256)]) interleaved with the "Armenian shuffle" permutation.  The key
    schedule rotates each key byte left by 3 per round and adds the bias
    [B_i(j) = exp (exp (9i + j))]. *)

type key

(** [expand_key ?rounds k] derives the round keys from the 8-byte user key
    [k].  [rounds] defaults to 6, the value recommended by Massey for
    K-64.  Raises [Invalid_argument] if [k] is not 8 bytes or [rounds] is
    not within \[1, 12\]. *)
val expand_key : ?rounds:int -> string -> key

val rounds : key -> int

(** Pure in-place block transforms on 8 bytes at [off]. *)
val encrypt_block : key -> Bytes.t -> int -> unit

val decrypt_block : key -> Bytes.t -> int -> unit

(** ECB over a string whose length is a multiple of 8 (pure). *)
val encrypt_string : key -> string -> string

val decrypt_string : key -> string -> string

(** [encrypt_blocks key b ~off ~count] transforms [count] consecutive
    8-byte blocks in place, reusing one scratch block across the whole run
    (no per-block closure dispatch or allocation). *)
val encrypt_blocks : key -> Bytes.t -> off:int -> count:int -> unit

val decrypt_blocks : key -> Bytes.t -> off:int -> count:int -> unit

(** The exponent/logarithm tables, exposed for tests and for the simplified
    variant. [exp_table.(128) = 0] encodes 256. *)
val exp_table : int array

val log_table : int array

(** [charged sim ?rounds ~key ()] instantiates the cipher on a simulated
    machine: allocates the tables and the expanded key in simulated memory
    and returns a charged {!Block_cipher.t}. *)
val charged : Ilp_memsim.Sim.t -> ?rounds:int -> key:string -> unit -> Block_cipher.t
