(** The "very simple" encryption of the paper's section 4.1: per-byte
    constant ADD and XOR, no tables, no key vector, similar to the function
    Abbott and Peterson integrated.

    It replaces the simplified SAFER in figures 11-14 to show that a
    manipulation without per-byte memory references roughly doubles the
    relative ILP gain and removes the cache-miss pathology. *)

(** Pure in-place transforms on 8 bytes at the given offset (the 8-byte
    block framing of the stack is kept so the message layout is unchanged). *)
val encrypt_block : Bytes.t -> int -> unit

val decrypt_block : Bytes.t -> int -> unit

val encrypt_string : string -> string
val decrypt_string : string -> string

(** [encrypt_blocks b ~off ~count] transforms [count] consecutive 8-byte
    blocks in one flat byte loop (no per-block dispatch). *)
val encrypt_blocks : Bytes.t -> off:int -> count:int -> unit

val decrypt_blocks : Bytes.t -> off:int -> count:int -> unit

(** [charged sim] returns the charged cipher: ALU ops only, small code
    footprint, no table traffic. *)
val charged : Ilp_memsim.Sim.t -> Block_cipher.t
