let xor_const = 0x55
let add_const = 0x3c

let encrypt_byte b = ((b lxor xor_const) + add_const) land 0xff
let decrypt_byte b = ((b - add_const) land 0xff) lxor xor_const

let block ~f b off =
  for i = off to off + 7 do
    Bytes.set b i (Char.chr (f (Char.code (Bytes.get b i))))
  done

let encrypt_block b off = block ~f:encrypt_byte b off
let decrypt_block b off = block ~f:decrypt_byte b off

let batch name f b ~off ~count =
  if off < 0 || count < 0 || off + (count * 8) > Bytes.length b then
    invalid_arg (name ^ ": block run out of bounds");
  for i = off to off + (count * 8) - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (f (Char.code (Bytes.unsafe_get b i))))
  done

let encrypt_blocks b ~off ~count = batch "Simple_cipher.encrypt_blocks" encrypt_byte b ~off ~count
let decrypt_blocks b ~off ~count = batch "Simple_cipher.decrypt_blocks" decrypt_byte b ~off ~count

let map_string f s =
  let n = String.length s in
  if n mod 8 <> 0 then invalid_arg "Simple_cipher: input not a multiple of 8 bytes";
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    f b !off;
    off := !off + 8
  done;
  Bytes.unsafe_to_string b

let encrypt_string s = map_string encrypt_block s
let decrypt_string s = map_string decrypt_block s

let charged (sim : Ilp_memsim.Sim.t) =
  let open Ilp_memsim in
  let ops n = Machine.compute sim.machine n in
  let code_encrypt = Code.alloc sim.code ~len:192 in
  let code_decrypt = Code.alloc sim.code ~len:192 in
  let charged_block f b off =
    block ~f b off;
    (* Two ALU ops per byte plus loop overhead. *)
    ops 20
  in
  { Block_cipher.name = "simple";
    block_len = 8;
    encrypt = charged_block encrypt_byte;
    decrypt = charged_block decrypt_byte;
    encrypt_blocks =
      Some
        (fun b off count ->
          batch "simple.encrypt_blocks" encrypt_byte b ~off ~count;
          ops (20 * count));
    decrypt_blocks =
      Some
        (fun b off count ->
          batch "simple.decrypt_blocks" decrypt_byte b ~off ~count;
          ops (20 * count));
    code_encrypt;
    code_decrypt;
    store_unit = 4 }
