(** The paper's simplified SAFER K-64 (section 3.1).

    The real cipher is ~100x slower than the rest of the stack, which would
    hide any ILP effect, so the authors reduced it to one operation of each
    type it contains: a mixed ADD/XOR key layer on each byte, a mixed
    logarithm/exponential table substitution on each byte, and a final
    2-PHT on each pair of bytes.  It reaches ~50 Mbit/s on a
    SPARCstation 10 — fast enough that memory behaviour, not ALU work,
    dominates.

    The characteristics that drive the paper's cache analysis are kept:
    the algorithm is byte-oriented, reads a key byte-vector and two 256-byte
    tables for every data byte, and its decryption needs more intermediate
    variables than encryption (modelled as a partial register spill to a
    scratch area in simulated memory). *)

type key

(** [expand_key k] takes the 8-byte user key. *)
val expand_key : string -> key

(** Pure in-place transforms on 8 bytes at the given offset. *)
val encrypt_block : key -> Bytes.t -> int -> unit

val decrypt_block : key -> Bytes.t -> int -> unit

val encrypt_string : key -> string -> string
val decrypt_string : key -> string -> string

(** [encrypt_blocks key b ~off ~count] transforms [count] consecutive
    8-byte blocks in place, reusing one scratch block across the whole run
    (no per-block closure dispatch or allocation). *)
val encrypt_blocks : key -> Bytes.t -> off:int -> count:int -> unit

val decrypt_blocks : key -> Bytes.t -> off:int -> count:int -> unit

(** [charged sim ~key ()] allocates the key vector, the two tables and the
    decryption scratch area in simulated memory and returns the charged
    cipher.  [spill_bytes] (default 4) is how many intermediate bytes the
    decryption kernel spills per block. *)
val charged :
  Ilp_memsim.Sim.t -> ?spill_bytes:int -> key:string -> unit -> Block_cipher.t
