(* Tables from FIPS 46-3.  Entries are 1-based bit positions counted from
   the most significant bit of the input, as in the standard. *)

let ip =
  [| 58; 50; 42; 34; 26; 18; 10; 2; 60; 52; 44; 36; 28; 20; 12; 4;
     62; 54; 46; 38; 30; 22; 14; 6; 64; 56; 48; 40; 32; 24; 16; 8;
     57; 49; 41; 33; 25; 17;  9; 1; 59; 51; 43; 35; 27; 19; 11; 3;
     61; 53; 45; 37; 29; 21; 13; 5; 63; 55; 47; 39; 31; 23; 15; 7 |]

let fp =
  [| 40; 8; 48; 16; 56; 24; 64; 32; 39; 7; 47; 15; 55; 23; 63; 31;
     38; 6; 46; 14; 54; 22; 62; 30; 37; 5; 45; 13; 53; 21; 61; 29;
     36; 4; 44; 12; 52; 20; 60; 28; 35; 3; 43; 11; 51; 19; 59; 27;
     34; 2; 42; 10; 50; 18; 58; 26; 33; 1; 41;  9; 49; 17; 57; 25 |]

let e_table =
  [| 32; 1; 2; 3; 4; 5; 4; 5; 6; 7; 8; 9; 8; 9; 10; 11; 12; 13;
     12; 13; 14; 15; 16; 17; 16; 17; 18; 19; 20; 21; 20; 21; 22; 23; 24; 25;
     24; 25; 26; 27; 28; 29; 28; 29; 30; 31; 32; 1 |]

let p_table =
  [| 16; 7; 20; 21; 29; 12; 28; 17; 1; 15; 23; 26; 5; 18; 31; 10;
     2; 8; 24; 14; 32; 27; 3; 9; 19; 13; 30; 6; 22; 11; 4; 25 |]

let pc1 =
  [| 57; 49; 41; 33; 25; 17;  9;  1; 58; 50; 42; 34; 26; 18;
     10;  2; 59; 51; 43; 35; 27; 19; 11;  3; 60; 52; 44; 36;
     63; 55; 47; 39; 31; 23; 15;  7; 62; 54; 46; 38; 30; 22;
     14;  6; 61; 53; 45; 37; 29; 21; 13;  5; 28; 20; 12;  4 |]

let pc2 =
  [| 14; 17; 11; 24;  1;  5;  3; 28; 15;  6; 21; 10;
     23; 19; 12;  4; 26;  8; 16;  7; 27; 20; 13;  2;
     41; 52; 31; 37; 47; 55; 30; 40; 51; 45; 33; 48;
     44; 49; 39; 56; 34; 53; 46; 42; 50; 36; 29; 32 |]

let shifts = [| 1; 1; 2; 2; 2; 2; 2; 2; 1; 2; 2; 2; 2; 2; 2; 1 |]

let sboxes =
  [| [| 14; 4;13; 1; 2;15;11; 8; 3;10; 6;12; 5; 9; 0; 7;
         0;15; 7; 4;14; 2;13; 1;10; 6;12;11; 9; 5; 3; 8;
         4; 1;14; 8;13; 6; 2;11;15;12; 9; 7; 3;10; 5; 0;
        15;12; 8; 2; 4; 9; 1; 7; 5;11; 3;14;10; 0; 6;13 |];
     [| 15; 1; 8;14; 6;11; 3; 4; 9; 7; 2;13;12; 0; 5;10;
         3;13; 4; 7;15; 2; 8;14;12; 0; 1;10; 6; 9;11; 5;
         0;14; 7;11;10; 4;13; 1; 5; 8;12; 6; 9; 3; 2;15;
        13; 8;10; 1; 3;15; 4; 2;11; 6; 7;12; 0; 5;14; 9 |];
     [| 10; 0; 9;14; 6; 3;15; 5; 1;13;12; 7;11; 4; 2; 8;
        13; 7; 0; 9; 3; 4; 6;10; 2; 8; 5;14;12;11;15; 1;
        13; 6; 4; 9; 8;15; 3; 0;11; 1; 2;12; 5;10;14; 7;
         1;10;13; 0; 6; 9; 8; 7; 4;15;14; 3;11; 5; 2;12 |];
     [|  7;13;14; 3; 0; 6; 9;10; 1; 2; 8; 5;11;12; 4;15;
        13; 8;11; 5; 6;15; 0; 3; 4; 7; 2;12; 1;10;14; 9;
        10; 6; 9; 0;12;11; 7;13;15; 1; 3;14; 5; 2; 8; 4;
         3;15; 0; 6;10; 1;13; 8; 9; 4; 5;11;12; 7; 2;14 |];
     [|  2;12; 4; 1; 7;10;11; 6; 8; 5; 3;15;13; 0;14; 9;
        14;11; 2;12; 4; 7;13; 1; 5; 0;15;10; 3; 9; 8; 6;
         4; 2; 1;11;10;13; 7; 8;15; 9;12; 5; 6; 3; 0;14;
        11; 8;12; 7; 1;14; 2;13; 6;15; 0; 9;10; 4; 5; 3 |];
     [| 12; 1;10;15; 9; 2; 6; 8; 0;13; 3; 4;14; 7; 5;11;
        10;15; 4; 2; 7;12; 9; 5; 6; 1;13;14; 0;11; 3; 8;
         9;14;15; 5; 2; 8;12; 3; 7; 0; 4;10; 1;13;11; 6;
         4; 3; 2;12; 9; 5;15;10;11;14; 1; 7; 6; 0; 8;13 |];
     [|  4;11; 2;14;15; 0; 8;13; 3;12; 9; 7; 5;10; 6; 1;
        13; 0;11; 7; 4; 9; 1;10;14; 3; 5;12; 2;15; 8; 6;
         1; 4;11;13;12; 3; 7;14;10;15; 6; 8; 0; 5; 9; 2;
         6;11;13; 8; 1; 4;10; 7; 9; 5; 0;15;14; 2; 3;12 |];
     [| 13; 2; 8; 4; 6;15;11; 1;10; 9; 3;14; 5; 0;12; 7;
         1;15;13; 8;10; 3; 7; 4;12; 5; 6;11; 0;14; 9; 2;
         7;11; 4; 1; 9;12;14; 2; 0; 6;10;13;15; 3; 5; 8;
         2; 1;14; 7; 4;10; 8;13;15;12; 9; 0; 3; 5; 6;11 |] |]

(* [permute64 v table] picks table.(i)-th bit (1-based from MSB of the
   64-bit value [v]) as output bit i; result in a plain int (tables of
   width <= 56 only). *)
let permute64 (v : int64) table =
  let n = Array.length table in
  let out = ref 0 in
  for i = 0 to n - 1 do
    let bit = Int64.to_int (Int64.logand (Int64.shift_right_logical v (64 - table.(i))) 1L) in
    out := (!out lsl 1) lor bit
  done;
  !out

(* 64-bit source to 64-bit result (IP and FP). *)
let permute64_to64 (v : int64) table =
  let n = Array.length table in
  let out = ref 0L in
  for i = 0 to n - 1 do
    let bit = Int64.logand (Int64.shift_right_logical v (64 - table.(i))) 1L in
    out := Int64.logor (Int64.shift_left !out 1) bit
  done;
  !out

(* Source held in an int of [width] significant bits. *)
let permute v ~width table =
  let n = Array.length table in
  let out = ref 0 in
  for i = 0 to n - 1 do
    let bit = (v lsr (width - table.(i))) land 1 in
    out := (!out lsl 1) lor bit
  done;
  !out

type key = { subkeys : int array (* 16 round keys of 48 bits *) }

let rotl28 v n = ((v lsl n) lor (v lsr (28 - n))) land 0xfffffff

let expand_key user =
  if String.length user <> 8 then invalid_arg "Des.expand_key: key must be 8 bytes";
  let k64 = Bytes.get_int64_be (Bytes.of_string user) 0 in
  let cd = permute64 k64 pc1 in
  let c = ref (cd lsr 28) and d = ref (cd land 0xfffffff) in
  let subkeys =
    Array.map
      (fun s ->
        c := rotl28 !c s;
        d := rotl28 !d s;
        permute ((!c lsl 28) lor !d) ~width:56 pc2)
      shifts
  in
  { subkeys }

(* The Feistel function: expand R to 48 bits, mix the subkey, substitute
   through the S-boxes, permute.  [sbox b i] returns S-box [b] applied to
   the 6-bit value [i]; the charged instance reads simulated memory here. *)
let feistel ~sbox r subkey =
  let x = permute r ~width:32 e_table lxor subkey in
  let out = ref 0 in
  for b = 0 to 7 do
    let six = (x lsr ((7 - b) * 6)) land 0x3f in
    let row = ((six lsr 4) land 2) lor (six land 1) in
    let col = (six lsr 1) land 0xf in
    out := (!out lsl 4) lor sbox b ((row * 16) + col)
  done;
  permute !out ~width:32 p_table

let crypt_core ~sbox ~ops subkeys ~decrypt block =
  let v = permute64_to64 block ip in
  let l = ref (Int64.to_int (Int64.shift_right_logical v 32))
  and r = ref (Int64.to_int (Int64.logand v 0xffffffffL)) in
  ops 140;
  for i = 0 to 15 do
    let k = if decrypt then subkeys.(15 - i) else subkeys.(i) in
    let t = !r in
    r := !l lxor feistel ~sbox t k;
    l := t;
    ops 100
  done;
  (* Swap halves before the final permutation. *)
  let preout =
    Int64.logor (Int64.shift_left (Int64.of_int !r) 32) (Int64.of_int !l)
  in
  ops 140;
  permute64_to64 preout fp

let with_block f b off =
  let v = Bytes.get_int64_be b off in
  Bytes.set_int64_be b off (f v)

let pure_sbox b i = sboxes.(b).(i)
let no_ops (_ : int) = ()

let encrypt_block key b off =
  with_block (crypt_core ~sbox:pure_sbox ~ops:no_ops key.subkeys ~decrypt:false) b off

let decrypt_block key b off =
  with_block (crypt_core ~sbox:pure_sbox ~ops:no_ops key.subkeys ~decrypt:true) b off

(* Batch form: the core closure is built once per run, not per block. *)
let batch name core b ~off ~count =
  if off < 0 || count < 0 || off + (count * 8) > Bytes.length b then
    invalid_arg (name ^ ": block run out of bounds");
  for i = 0 to count - 1 do
    with_block core b (off + (i * 8))
  done

let encrypt_blocks key b ~off ~count =
  batch "Des.encrypt_blocks"
    (crypt_core ~sbox:pure_sbox ~ops:no_ops key.subkeys ~decrypt:false)
    b ~off ~count

let decrypt_blocks key b ~off ~count =
  batch "Des.decrypt_blocks"
    (crypt_core ~sbox:pure_sbox ~ops:no_ops key.subkeys ~decrypt:true)
    b ~off ~count

let map_string f key s =
  let n = String.length s in
  if n mod 8 <> 0 then invalid_arg "Des: input not a multiple of 8 bytes";
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    f key b !off;
    off := !off + 8
  done;
  Bytes.unsafe_to_string b

let encrypt_string key s = map_string encrypt_block key s
let decrypt_string key s = map_string decrypt_block key s

let charged (sim : Ilp_memsim.Sim.t) ~key () =
  let open Ilp_memsim in
  let k = expand_key key in
  (* S-boxes stored as 8 contiguous 64-byte tables. *)
  let sbox_base = Alloc.alloc sim.alloc ~align:64 (8 * 64) in
  Array.iteri
    (fun b tbl -> Array.iteri (fun i v -> Mem.poke_u8 sim.mem (sbox_base + (b * 64) + i) v) tbl)
    sboxes;
  let sbox b i = Mem.get_u8 sim.mem (sbox_base + (b * 64) + i) in
  let ops n = Machine.compute sim.machine n in
  let code_encrypt = Code.alloc sim.code ~len:6144 in
  let code_decrypt = Code.alloc sim.code ~len:6144 in
  let enc_core = crypt_core ~sbox ~ops k.subkeys ~decrypt:false in
  let dec_core = crypt_core ~sbox ~ops k.subkeys ~decrypt:true in
  { Block_cipher.name = "DES";
    block_len = 8;
    encrypt = with_block enc_core;
    decrypt = with_block dec_core;
    encrypt_blocks =
      Some
        (fun b off count ->
          for i = 0 to count - 1 do
            with_block enc_core b (off + (i * 8))
          done);
    decrypt_blocks =
      Some
        (fun b off count ->
          for i = 0 to count - 1 do
            with_block dec_core b (off + (i * 8))
          done);
    code_encrypt;
    code_decrypt;
    store_unit = 4 }
