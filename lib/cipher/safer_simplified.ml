type key = { k : int array (* 8 bytes *) }

let expand_key user =
  if String.length user <> 8 then
    invalid_arg "Safer_simplified.expand_key: key must be 8 bytes";
  { k = Array.init 8 (fun j -> Char.code user.[j]) }

(* One SAFER round reduced to its essence; [kread]/[exp]/[log]/[ops] as in
   {!Safer}.  The mixed patterns follow the full cipher's byte positions. *)

(* The PHT butterflies live at top level: defined inside the core they
   would capture [s] and allocate a closure per block. *)
let pht s i j =
  let x = s.(i) and y = s.(j) in
  s.(i) <- ((2 * x) + y) land 0xff;
  s.(j) <- (x + y) land 0xff

let ipht s i j =
  let x = s.(i) and y = s.(j) in
  s.(i) <- (x - y) land 0xff;
  s.(j) <- ((2 * y) - x) land 0xff

let encrypt_core ~kread ~exp ~log ~ops s =
  s.(0) <- s.(0) lxor kread 0;
  s.(1) <- (s.(1) + kread 1) land 0xff;
  s.(2) <- (s.(2) + kread 2) land 0xff;
  s.(3) <- s.(3) lxor kread 3;
  s.(4) <- s.(4) lxor kread 4;
  s.(5) <- (s.(5) + kread 5) land 0xff;
  s.(6) <- (s.(6) + kread 6) land 0xff;
  s.(7) <- s.(7) lxor kread 7;
  ops 16;
  s.(0) <- exp s.(0);
  s.(1) <- log s.(1);
  s.(2) <- log s.(2);
  s.(3) <- exp s.(3);
  s.(4) <- exp s.(4);
  s.(5) <- log s.(5);
  s.(6) <- log s.(6);
  s.(7) <- exp s.(7);
  ops 8;
  pht s 0 1; pht s 2 3; pht s 4 5; pht s 6 7;
  ops 12

let decrypt_core ~kread ~exp ~log ~ops ~spill s =
  ipht s 0 1; ipht s 2 3; ipht s 4 5; ipht s 6 7;
  ops 12;
  (* Decryption holds more live values than encryption (the paper's stated
     reason for its higher receive-side miss count); the spill hook lets
     the charged instance write intermediates to memory. *)
  spill s;
  s.(0) <- log s.(0);
  s.(1) <- exp s.(1);
  s.(2) <- exp s.(2);
  s.(3) <- log s.(3);
  s.(4) <- log s.(4);
  s.(5) <- exp s.(5);
  s.(6) <- exp s.(6);
  s.(7) <- log s.(7);
  ops 8;
  let sub x k = (x - k) land 0xff in
  s.(0) <- s.(0) lxor kread 0;
  s.(1) <- sub s.(1) (kread 1);
  s.(2) <- sub s.(2) (kread 2);
  s.(3) <- s.(3) lxor kread 3;
  s.(4) <- s.(4) lxor kread 4;
  s.(5) <- sub s.(5) (kread 5);
  s.(6) <- sub s.(6) (kread 6);
  s.(7) <- s.(7) lxor kread 7;
  ops 16

(* Run a core on one block through a caller-supplied scratch array, so a
   batch (or a long-lived charged instance) loads the scratch once instead
   of allocating per block. *)
let run_block core s b off =
  for i = 0 to 7 do
    s.(i) <- Char.code (Bytes.get b (off + i))
  done;
  core s;
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr s.(i))
  done

let with_block f b off = run_block f (Array.make 8 0) b off

let pure_exp x = Safer.exp_table.(x)
let pure_log x = Safer.log_table.(x)
let no_ops (_ : int) = ()
let no_spill (_ : int array) = ()

let check_batch name b ~off ~count =
  if off < 0 || count < 0 || off + (count * 8) > Bytes.length b then
    invalid_arg (name ^ ": block run out of bounds")

let batch name core b ~off ~count =
  check_batch name b ~off ~count;
  let s = Array.make 8 0 in
  for i = 0 to count - 1 do
    run_block core s b (off + (i * 8))
  done

let encrypt_blocks key b ~off ~count =
  batch "Safer_simplified.encrypt_blocks"
    (encrypt_core ~kread:(Array.get key.k) ~exp:pure_exp ~log:pure_log ~ops:no_ops)
    b ~off ~count

let decrypt_blocks key b ~off ~count =
  batch "Safer_simplified.decrypt_blocks"
    (decrypt_core ~kread:(Array.get key.k) ~exp:pure_exp ~log:pure_log ~ops:no_ops
       ~spill:no_spill)
    b ~off ~count

let encrypt_block key b off =
  with_block (encrypt_core ~kread:(Array.get key.k) ~exp:pure_exp ~log:pure_log ~ops:no_ops) b off

let decrypt_block key b off =
  with_block
    (decrypt_core ~kread:(Array.get key.k) ~exp:pure_exp ~log:pure_log ~ops:no_ops
       ~spill:no_spill)
    b off

let map_string f key s =
  let n = String.length s in
  if n mod 8 <> 0 then invalid_arg "Safer_simplified: input not a multiple of 8 bytes";
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    f key b !off;
    off := !off + 8
  done;
  Bytes.unsafe_to_string b

let encrypt_string key s = map_string encrypt_block key s
let decrypt_string key s = map_string decrypt_block key s

let charged (sim : Ilp_memsim.Sim.t) ?(spill_bytes = 4) ~key () =
  let open Ilp_memsim in
  let k = expand_key key in
  let exp_base = Alloc.alloc sim.alloc ~align:64 256 in
  let log_base = Alloc.alloc sim.alloc ~align:64 256 in
  let key_base = Alloc.alloc sim.alloc ~align:8 8 in
  let scratch = Alloc.alloc sim.alloc ~align:8 (max 1 spill_bytes) in
  Array.iteri (fun i v -> Mem.poke_u8 sim.mem (exp_base + i) v) Safer.exp_table;
  Array.iteri (fun i v -> Mem.poke_u8 sim.mem (log_base + i) v) Safer.log_table;
  Array.iteri (fun i v -> Mem.poke_u8 sim.mem (key_base + i) v) k.k;
  let kread i = Mem.get_u8 sim.mem (key_base + i) in
  let exp x = Mem.get_u8 sim.mem (exp_base + x) in
  let log x = Mem.get_u8 sim.mem (log_base + x) in
  let ops n = Machine.compute sim.machine n in
  let spill s =
    for i = 0 to spill_bytes - 1 do
      Mem.set_u8 sim.mem (scratch + i) s.(i);
      s.(i) <- Mem.get_u8 sim.mem (scratch + i)
    done
  in
  let code_encrypt = Code.alloc sim.code ~len:1280 in
  let code_decrypt = Code.alloc sim.code ~len:1600 in
  (* One scratch per direction for the instance's lifetime (the simulated
     machine is sequential), instead of an allocation per block. *)
  let s_enc = Array.make 8 0 and s_dec = Array.make 8 0 in
  let enc_core = encrypt_core ~kread ~exp ~log ~ops in
  let dec_core = decrypt_core ~kread ~exp ~log ~ops ~spill in
  { Block_cipher.name = "SAFER-simplified";
    block_len = 8;
    encrypt = (fun b off -> run_block enc_core s_enc b off);
    decrypt = (fun b off -> run_block dec_core s_dec b off);
    encrypt_blocks =
      Some
        (fun b off count ->
          for i = 0 to count - 1 do
            run_block enc_core s_enc b (off + (i * 8))
          done);
    decrypt_blocks =
      Some
        (fun b off count ->
          for i = 0 to count - 1 do
            run_block dec_core s_dec b (off + (i * 8))
          done);
    code_encrypt;
    code_decrypt;
    store_unit = 1 }
