(** DES (FIPS 46): the baseline cipher the paper measures the simplified
    SAFER against.

    The paper cites DES as the canonical "too complex" data manipulation:
    its processing time hides any ILP gain entirely (Gunningberg et al.),
    and even a fast software implementation only reaches ~1 Mbit/s on a
    SPARCstation 10.  This is a complete implementation (initial/final
    permutation, 16 Feistel rounds, PC1/PC2 key schedule) validated against
    the classic FIPS worked example; the charged instance keeps its S-boxes
    in simulated memory and charges ~240 ALU ops per byte, which lands its
    simulated throughput in the paper's reported range. *)

type key

(** [expand_key k] computes the 16 round keys from the 8-byte key [k]
    (parity bits are ignored, as usual). *)
val expand_key : string -> key

(** Pure in-place transforms on 8 bytes at the given offset. *)
val encrypt_block : key -> Bytes.t -> int -> unit

val decrypt_block : key -> Bytes.t -> int -> unit

val encrypt_string : key -> string -> string
val decrypt_string : key -> string -> string

(** [encrypt_blocks key b ~off ~count] transforms [count] consecutive
    8-byte blocks in place, constructing the round-function closure once
    per run instead of once per block. *)
val encrypt_blocks : key -> Bytes.t -> off:int -> count:int -> unit

val decrypt_blocks : key -> Bytes.t -> off:int -> count:int -> unit

val charged : Ilp_memsim.Sim.t -> key:string -> unit -> Block_cipher.t
