(* The ilpbench command-line interface.

   ilpbench experiments [NAMES...]   regenerate the paper's tables/figures
   ilpbench transfer [OPTIONS]       one configurable measured transfer
   ilpbench machines                 list the modelled workstations *)

open Cmdliner
open Ilp_memsim
module Ft = Ilp_app.File_transfer
module Engine = Ilp_core.Engine
module Linkage = Ilp_core.Linkage

(* ------------------------------------------------------------------ *)
(* experiments *)

let experiments_cmd =
  let names =
    Arg.(value & pos_all string [ "all" ]
         & info [] ~docv:"NAME"
             ~doc:"Experiments to run (e0 f6-f14 t1 a1 a2 a4 a5 wall all).")
  in
  let run names =
    List.fold_left
      (fun acc name ->
        match Ilp_bench.Experiments.run_named name with
        | Ok () -> acc
        | Error msg ->
            Printf.eprintf "%s (available: %s)\n" msg
              (String.concat ", " Ilp_bench.Experiments.names);
            1)
      0 names
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ names)

(* ------------------------------------------------------------------ *)
(* transfer *)

let machine_conv =
  let parse s =
    match Config.by_name s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown machine %S (try: %s)" s
                (String.concat ", "
                   (List.map (fun m -> m.Config.name) Config.all))))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf m.Config.name)

let cipher_conv =
  let parse = function
    | "safer-simplified" | "simplified" -> Ok Ft.Safer_simplified
    | "simple" -> Ok Ft.Simple_encryption
    | "safer" | "safer-k64" -> Ok (Ft.Safer_full 6)
    | "des" -> Ok Ft.Des
    | s -> Error (`Msg (Printf.sprintf "unknown cipher %S" s))
  in
  let print ppf c =
    Format.pp_print_string ppf
      (match c with
      | Ft.Safer_simplified -> "safer-simplified"
      | Ft.Simple_encryption -> "simple"
      | Ft.Safer_full _ -> "safer-k64"
      | Ft.Des -> "des")
  in
  Arg.conv (parse, print)

let transfer_cmd =
  let machine =
    Arg.(value & opt machine_conv Config.ss10_30
         & info [ "machine"; "m" ] ~docv:"NAME" ~doc:"Simulated workstation.")
  in
  let ilp =
    Arg.(value & flag & info [ "ilp" ] ~doc:"Integrated (ILP) implementation.")
  in
  let cipher =
    Arg.(value & opt cipher_conv Ft.Safer_simplified
         & info [ "cipher"; "c" ] ~docv:"CIPHER"
             ~doc:"safer-simplified, simple, safer-k64 or des.")
  in
  let size =
    Arg.(value & opt int 1024
         & info [ "size"; "s" ] ~docv:"BYTES" ~doc:"Payload bytes per message.")
  in
  let copies =
    Arg.(value & opt int 8 & info [ "copies" ] ~docv:"N" ~doc:"File copies to send.")
  in
  let loss =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Datagram loss rate.")
  in
  let trailer =
    Arg.(value & flag & info [ "trailer" ] ~doc:"Trailer-placed length field (section 5).")
  in
  let coalesce =
    Arg.(value & flag
         & info [ "coalesce-writes" ] ~doc:"LCM-sized stores (the section 2.2 remedy).")
  in
  let calls =
    Arg.(value & flag
         & info [ "function-calls" ]
             ~doc:"Function-call linkage instead of macro inlining (section 3.2.1).")
  in
  let late =
    Arg.(value & flag
         & info [ "late" ] ~doc:"Defer receive manipulations to delivery (section 3.2.3).")
  in
  let uniform =
    Arg.(value & flag
         & info [ "uniform-units" ]
             ~doc:"Uniform processing-unit sizes (section 5).")
  in
  let native =
    Arg.(value & flag
         & info [ "native" ]
             ~doc:"Run the data manipulations through the un-simulated \
                   fast-path kernels (wire bytes identical; the simulated \
                   counters then cover only the protocol machinery).")
  in
  let crc =
    Arg.(value & flag
         & info [ "crc32" ]
             ~doc:"End-to-end CRC32 trailer on every message (closes the \
                   16-bit checksum collision hole).")
  in
  let run machine ilp cipher size copies loss trailer coalesce calls late uniform
      native crc =
    let mode = if ilp then Engine.Ilp else Engine.Separate in
    let setup =
      { (Ft.default_setup ~machine ~mode) with
        Ft.cipher;
        max_reply = size;
        copies;
        loss_rate = loss;
        header_style = (if trailer then Engine.Trailer else Engine.Leading);
        coalesce_writes = coalesce;
        linkage = (if calls then Linkage.function_calls else Linkage.Macro);
        rx_placement = (if late then Engine.Late else Engine.Early);
        uniform_units = uniform;
        native;
        crc }
    in
    let r = Ft.run setup in
    Printf.printf "machine      %s (%.0f MHz)\n" machine.Config.name
      machine.Config.clock_mhz;
    Printf.printf "mode         %s%s%s%s%s%s\n"
      (if ilp then "ILP" else "non-ILP")
      (if trailer then ", trailer" else "")
      (if coalesce then ", coalesced stores" else "")
      (if calls then ", function calls" else "")
      (if native then ", native kernels" else "")
      (if crc then ", crc32 trailer" else "");
    Printf.printf "status       %s\n"
      (match r.Ft.error with
      | None -> "transfer complete, every byte verified"
      | Some e -> "FAILED: " ^ e);
    Printf.printf "messages     %d (%d payload bytes, %d wire bytes)\n" r.Ft.n_replies
      r.Ft.payload_bytes r.Ft.wire_bytes;
    Printf.printf "send         %.1f us/packet (%.1f us system copy)\n"
      (Ft.mean r.Ft.send_us) (Ft.mean r.Ft.send_syscopy_us);
    Printf.printf "receive      %.1f us/packet\n" (Ft.mean r.Ft.recv_us);
    Printf.printf "throughput   %.2f Mbit/s (with the %s overhead model)\n"
      (Ilp_bench.Platforms.throughput_mbps machine ~size
         ~proc_us:(Ft.mean r.Ft.send_us +. Ft.mean r.Ft.recv_us))
      machine.Config.name;
    Printf.printf "memory       %d reads, %d writes; recv miss ratio %.1f%%\n"
      (Stats.accesses r.Ft.total_stats Stats.Read)
      (Stats.accesses r.Ft.total_stats Stats.Write)
      (100.0 *. Stats.data_miss_ratio r.Ft.recv_stats);
    Printf.printf "tcp          %d retransmissions, %d checksum failures\n"
      r.Ft.retransmissions r.Ft.checksum_failures;
    if r.Ft.ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "transfer" ~doc:"Run one measured file transfer.")
    Term.(
      const run $ machine $ ilp $ cipher $ size $ copies $ loss $ trailer $ coalesce
      $ calls $ late $ uniform $ native $ crc)

(* ------------------------------------------------------------------ *)
(* wall *)

let wall_cmd =
  let module Wb = Ilp_bench.Wallbench in
  let fp_cipher_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Wb.cipher_of_name s) in
    Arg.conv
      (parse, fun ppf c -> Format.pp_print_string ppf (Ilp_fastpath.Cipher.name c))
  in
  let cipher =
    Arg.(value & opt fp_cipher_conv Ilp_fastpath.Cipher.Simple
         & info [ "cipher"; "c" ] ~docv:"CIPHER"
             ~doc:(Printf.sprintf "One of: %s." (String.concat ", " Wb.cipher_names)))
  in
  let out =
    Arg.(value & opt string "BENCH_wall.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON trajectory output path.")
  in
  let trials =
    Arg.(value & opt int 9
         & info [ "trials" ] ~docv:"K" ~doc:"Trials per point (median taken).")
  in
  let sizes =
    Arg.(value & opt (list int) [ 1024; 8192; 65536; 524288 ]
         & info [ "sizes" ] ~docv:"BYTES,..."
             ~doc:"Message sizes, each a positive multiple of 8.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"CI smoke variant: fewer sizes (1k/8k/64k) and 5 trials.")
  in
  let min_speedup =
    Arg.(value & opt (some float) None
         & info [ "min-speedup" ] ~docv:"X"
             ~doc:"Fail (exit 1) unless the ILP speedup is at least $(docv) \
                   at every size.")
  in
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Also run the kernels under the span tracer and print a \
                   per-stage time-share table (4 KiB and 64 KiB messages).")
  in
  let run cipher out trials sizes quick min_speedup trace =
    let sizes = if quick then [ 1024; 8192; 65536 ] else sizes in
    let trials = if quick then 5 else trials in
    match Wb.run ~cipher ~sizes ~trials () with
    | r ->
        Wb.print_table r;
        if trace then
          Wb.print_stage_tables
            (Wb.stages ~cipher ~sizes:[ 4096; 65536 ]
               ~reps:(if quick then 64 else 256) ());
        Wb.write_json r ~path:out;
        Printf.printf "wrote %s\n" out;
        (match min_speedup with
        | None -> 0
        | Some floor ->
            let slow =
              List.filter (fun p -> p.Wb.speedup < floor) r.Wb.points
            in
            if slow = [] then 0
            else begin
              List.iter
                (fun p ->
                  Printf.eprintf
                    "ilpbench: speedup %.3f at %d bytes is below the %.3f floor\n"
                    p.Wb.speedup p.Wb.len floor)
                slow;
              1
            end)
    | exception Invalid_argument msg ->
        Printf.eprintf "ilpbench: %s\n" msg;
        1
  in
  Cmd.v
    (Cmd.info "wall"
       ~doc:
         "Wall-clock benchmark of the native fast path: separate four-pass \
          stack versus the fused ILP loop, on this host.")
    Term.(const run $ cipher $ out $ trials $ sizes $ quick $ min_speedup $ trace)

(* ------------------------------------------------------------------ *)
(* mem *)

let mem_cmd =
  let module Mtr = Ilp_bench.Memtrace in
  let out =
    Arg.(value & opt string "BENCH_mem.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON trajectory output path.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"CI smoke variant: two sizes, fewer messages per point.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Fail (exit 1) unless the single-copy gates hold: at the \
                   largest size, bytes-copied ratio >= 2 on the native lanes \
                   — overall and on the receive direction alone — and \
                   minor-words ratio >= 2 on the simulated lanes, with \
                   every pool balanced (an unreturned rx placement buffer \
                   fails here) and disabled-path tracing allocation-free — \
                   including across a crash-resumed transfer's aborts.")
  in
  (* The abort-path pool gate: crash-resumed transfers tear sockets and
     server instances down mid-flight; every pooled buffer they held must
     come back.  Run a few seeded crash/restart transfers and demand a
     balanced pool from a non-vacuous run (at least one crash and one
     resumed completion). *)
  let crash_pool_gate () =
    let module Soak = Ilp_app.Soak in
    let cfg =
      { Soak.default_crash_config with Soak.transfers = 6; file_len = 1024 }
    in
    match Soak.run_crash cfg with
    | o ->
        if o.Soak.pool_leaks <> 0 then
          Error
            [ Printf.sprintf
                "crash-resume pool: %d buffers leaked across aborts"
                o.Soak.pool_leaks ]
        else if o.Soak.crashes = 0 || o.Soak.resumed_completed = 0 then
          Error
            [ Printf.sprintf
                "crash-resume pool gate vacuous: %d crashes, %d resumed"
                o.Soak.crashes o.Soak.resumed_completed ]
        else Ok ()
    | exception e ->
        Error [ "crash-resume pool: escaped exception " ^ Printexc.to_string e ]
  in
  let run out quick check_gates =
    let config = if quick then Mtr.quick_config else Mtr.default_config in
    match Mtr.run ~config () with
    | r ->
        Mtr.print_table r;
        Mtr.write_json r ~path:out;
        Printf.printf "wrote %s\n" out;
        if not check_gates then 0
        else begin
          let gates =
            match (Mtr.check r, crash_pool_gate ()) with
            | Ok (), Ok () -> Ok ()
            | Error a, Error b -> Error (a @ b)
            | (Error _ as e), Ok () | Ok (), (Error _ as e) -> e
          in
          match gates with
          | Ok () ->
              print_endline
                "mem gates held: pooled path moves <= half the bytes (on the \
                 receive direction too) and allocates <= half the minor \
                 words; pool balanced across crash-resumed aborts";
              0
          | Error failures ->
              List.iter (fun f -> Printf.eprintf "ilpbench: mem gate: %s\n" f) failures;
              1
        end
    | exception Invalid_argument msg ->
        Printf.eprintf "ilpbench: %s\n" msg;
        2
    | exception Failure msg ->
        Printf.eprintf "ilpbench: %s\n" msg;
        2
  in
  Cmd.v
    (Cmd.info "mem"
       ~doc:
         "Memory-traffic benchmark: host bytes copied and GC allocation per \
          message for the pooled (single-copy) versus legacy data paths, \
          across modes, backends and sizes.")
    Term.(const run $ out $ quick $ check)

(* ------------------------------------------------------------------ *)
(* stream *)

let stream_cmd =
  let module Sb = Ilp_bench.Streambench in
  let out =
    Arg.(value & opt string "BENCH_stream.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"JSON trajectory output path.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"CI smoke variant: a 256 KiB transfer over a smaller grid.")
  in
  let bytes =
    Arg.(value & opt (some int) None
         & info [ "bytes"; "b" ] ~docv:"N"
             ~doc:"Payload bytes per transfer (default: 2 MiB, 256 KiB with \
                   $(b,--quick)).")
  in
  let mss =
    Arg.(value & opt int Sb.default_config.Sb.mss
         & info [ "mss" ] ~docv:"BYTES"
             ~doc:"TCP maximum segment size (multiple of 8).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Link impairment seed.")
  in
  let sack =
    Arg.(value & flag
         & info [ "sack" ]
             ~doc:"Also sweep pipelined transfers with SACK disabled (a \
                   NewReno baseline), enabling the SACK gates under \
                   $(b,--check): SACK goodput at least 2x NewReno at 10 ms \
                   RTT / 5% loss with strictly fewer RTO fallbacks, and a \
                   byte-identical clean-link wire.")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Fail (exit 1) unless the stream gates hold: every grid \
                   cell byte-exact, stop-and-wait strictly serial, and \
                   pipelined goodput at least 4x stop-and-wait on the clean \
                   10 ms-RTT cell (plus the SACK gates with $(b,--sack)).")
  in
  let run out quick bytes mss seed sack_compare check_gates =
    let base =
      { Sb.default_config with
        Sb.total_bytes =
          Option.value bytes
            ~default:
              (if quick then 256 * 1024 else Sb.default_config.Sb.total_bytes);
        mss;
        seed }
    in
    match Sb.run ~quick ~sack_compare ~config:base () with
    | r ->
        Sb.print_table r;
        Sb.write_json r ~path:out;
        Printf.printf "wrote %s\n" out;
        if not check_gates then 0
        else begin
          match Sb.check r with
          | Ok () ->
              print_endline
                ("stream gates held: byte-exact on every cell, pipelined \
                  window >= 4x stop-and-wait at 10 ms RTT"
                ^
                if sack_compare then
                  "; SACK >= 2x NewReno at 5% loss with fewer RTO fallbacks, \
                   clean wire identical"
                else "");
              0
          | Error failures ->
              List.iter
                (fun f -> Printf.eprintf "ilpbench: stream gate: %s\n" f)
                failures;
              1
        end
    | exception Invalid_argument msg ->
        Printf.eprintf "ilpbench: %s\n" msg;
        2
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Streaming-TCP goodput benchmark: multi-megabyte transfers as \
          MSS-segmented pipelined TSDUs versus a stop-and-wait window, \
          across simulated RTT and loss, in simulated time.")
    Term.(const run $ out $ quick $ bytes $ mss $ seed $ sack $ check)

(* ------------------------------------------------------------------ *)
(* export *)

let export_cmd =
  let out =
    Arg.(value & opt string "t1.csv"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  let run out =
    let csv = Ilp_bench.Experiments.t1_csv () in
    let oc = open_out out in
    output_string oc csv;
    close_out oc;
    Printf.printf "wrote %s (%d bytes, paper and measured for 35 grid cells)\n" out
      (String.length csv);
    0
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the full Table 1 grid as CSV.")
    Term.(const run $ out)

(* ------------------------------------------------------------------ *)
(* soak *)

let soak_cmd =
  let module Soak = Ilp_app.Soak in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Soak master seed.")
  in
  let iters =
    Arg.(value & opt int Soak.default_config.Soak.iterations
         & info [ "iters"; "n" ] ~docv:"N" ~doc:"Randomized transfers to run.")
  in
  let size =
    Arg.(value & opt (some int) None
         & info [ "size"; "s" ] ~docv:"BYTES"
             ~doc:"File length per transfer (default: 512 for the chaos soak, \
                   2048 for the overload soak).")
  in
  let machine =
    Arg.(value & opt machine_conv Config.ss10_30
         & info [ "machine"; "m" ] ~docv:"NAME" ~doc:"Simulated workstation.")
  in
  let intensity =
    Arg.(value & opt float 1.0
         & info [ "intensity" ] ~docv:"X"
             ~doc:"Impairment-rate scale; 0 disables all faults, 1 is full chaos.")
  in
  let overload =
    Arg.(value & flag
         & info [ "overload" ]
             ~doc:"Overload soak instead of chaos soak: many concurrent \
                   mixed-persona clients (honest, slow-reader, dead-reader, \
                   oversized) against one shared server, asserting graceful \
                   degradation.")
  in
  let clients =
    Arg.(value & opt int Soak.default_overload_config.Soak.clients
         & info [ "clients" ] ~docv:"N"
             ~doc:"Concurrent clients for the overload soak.")
  in
  let crash =
    Arg.(value & flag
         & info [ "crash" ]
             ~doc:"Crash soak instead of chaos soak: seeded node \
                   crash/restart faults (RST or blackhole while down) \
                   against single transfers, asserting byte-exact-or-typed \
                   outcomes, prefix-verified resumption, dedup conservation \
                   and timer/pool hygiene.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"CI smoke variant of the crash soak: 16 transfers of a \
                   1 kB file.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ] ~doc:"Log every failed iteration, not just \
                                         invariant violations.")
  in
  let filtered_log verbose line =
    (* Invariant violations always print; ordinary typed outcomes only
       under --verbose. *)
    if verbose then print_endline line
    else
      let violation sub =
        let n = String.length sub in
        let rec scan i =
          i + n <= String.length line
          && (String.sub line i n = sub || scan (i + 1))
        in
        scan 0
      in
      if violation "ESCAPED" || violation "SILENT" || violation "VIOLAT" then
        print_endline line
  in
  (* Soaks run with the span tracer on: a violated invariant dumps the
     metrics delta and the trace tail alongside the repro line, so the
     failing run explains itself. *)
  let dump_observability before =
    prerr_endline "--- metrics delta (this run) ---";
    prerr_string
      (Ilp_obs.Metrics.render
         (Ilp_obs.Metrics.diff
            (Ilp_obs.Metrics.snapshot Ilp_obs.Metrics.default)
            before));
    prerr_endline "--- trace tail (last 40 spans) ---";
    List.iter prerr_endline (Ilp_obs.Trace.timeline ~tail:40 ());
    (* The always-on flight recorder: per-connection event tail on
       stderr, the full retained ring to FLIGHT.txt for CI artifacts. *)
    let flight = Ilp_obs.Recorder.dump () in
    prerr_endline "--- flight recorder (last 60 events) ---";
    let n = List.length flight in
    List.iteri (fun i l -> if i = 0 || i > n - 61 then prerr_endline l) flight;
    let oc = open_out "FLIGHT.txt" in
    List.iter (fun l -> output_string oc (l ^ "\n")) flight;
    close_out oc;
    prerr_endline "full flight-recorder dump written to FLIGHT.txt"
  in
  let run_chaos seed iters size machine intensity verbose =
    let cfg =
      { Soak.default_config with
        Soak.seed;
        iterations = iters;
        file_len = Option.value size ~default:Soak.default_config.Soak.file_len;
        machine;
        intensity }
    in
    let before = Ilp_obs.Metrics.snapshot Ilp_obs.Metrics.default in
    Ilp_obs.Trace.enable ~capacity:32768 ();
    match Soak.run ~log:(filtered_log verbose) cfg with
    | o ->
        Ilp_obs.Trace.disable ();
        List.iter print_endline (Soak.summary_lines o);
        if Soak.invariants_hold o then begin
          print_endline
            "soak invariant held: byte-exact or typed failure, every time";
          0
        end
        else begin
          prerr_endline "soak invariant VIOLATED";
          dump_observability before;
          Printf.eprintf "reproduce: ilpbench soak --seed %d -n %d --size %d\n"
            cfg.Soak.seed cfg.Soak.iterations cfg.Soak.file_len;
          1
        end
    | exception Invalid_argument msg ->
        Ilp_obs.Trace.disable ();
        Printf.eprintf "ilpbench: %s\n" msg;
        2
  in
  let run_overload seed clients size machine verbose =
    let cfg =
      { Soak.default_overload_config with
        Soak.seed;
        clients;
        file_len =
          Option.value size ~default:Soak.default_overload_config.Soak.file_len;
        machine }
    in
    let before = Ilp_obs.Metrics.snapshot Ilp_obs.Metrics.default in
    Ilp_obs.Trace.enable ~capacity:32768 ();
    match Soak.run_overload ~log:(filtered_log verbose) cfg with
    | o ->
        Ilp_obs.Trace.disable ();
        List.iter print_endline (Soak.overload_summary_lines o);
        if Soak.overload_invariants_hold o then begin
          print_endline
            "overload invariant held: every request ended byte-exact or typed, \
             budgets respected, honest clients served";
          0
        end
        else begin
          prerr_endline "overload invariant VIOLATED";
          dump_observability before;
          Printf.eprintf
            "reproduce: ilpbench soak --overload --seed %d --clients %d --size %d\n"
            cfg.Soak.seed cfg.Soak.clients cfg.Soak.file_len;
          1
        end
    | exception Invalid_argument msg ->
        Ilp_obs.Trace.disable ();
        Printf.eprintf "ilpbench: %s\n" msg;
        2
  in
  let run_crash seed size machine quick verbose =
    let cfg =
      { Soak.default_crash_config with
        Soak.seed;
        transfers = (if quick then 16 else Soak.default_crash_config.Soak.transfers);
        file_len =
          Option.value size
            ~default:
              (if quick then 1024 else Soak.default_crash_config.Soak.file_len);
        machine }
    in
    let before = Ilp_obs.Metrics.snapshot Ilp_obs.Metrics.default in
    Ilp_obs.Trace.enable ~capacity:32768 ();
    match Soak.run_crash ~log:(filtered_log verbose) cfg with
    | o ->
        Ilp_obs.Trace.disable ();
        List.iter print_endline (Soak.crash_summary_lines o);
        (* A crash soak that never crashed or never resumed is vacuous:
           fail it like a violated invariant so a regression in the fault
           injection itself cannot slip through green. *)
        let exercised = o.Soak.crashes > 0 && o.Soak.resumed_completed > 0 in
        if Soak.crash_invariants_hold o && exercised then begin
          print_endline
            "crash invariant held: every transfer byte-exact or typed, \
             resumes prefix-verified, dedup and timers conserved";
          0
        end
        else begin
          prerr_endline
            (if exercised then "crash invariant VIOLATED"
             else "crash soak VACUOUS: no crash/resume was exercised");
          dump_observability before;
          Printf.eprintf
            "reproduce: ilpbench soak --crash --seed %d --size %d%s\n"
            cfg.Soak.seed cfg.Soak.file_len
            (if quick then " --quick" else "");
          1
        end
    | exception Invalid_argument msg ->
        Ilp_obs.Trace.disable ();
        Printf.eprintf "ilpbench: %s\n" msg;
        2
  in
  let run seed iters size machine intensity overload crash quick clients verbose
      =
    if crash then run_crash seed size machine quick verbose
    else if overload then run_overload seed clients size machine verbose
    else run_chaos seed iters size machine intensity verbose
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Chaos soak: randomized impaired transfers across both modes, both \
          backends and all four ciphers, asserting byte-exact delivery or a \
          typed error on every iteration.  With $(b,--overload): many \
          concurrent mixed-persona clients against one shared server, \
          asserting graceful degradation under load.  With $(b,--crash): \
          seeded node crash/restart faults with resumable exactly-once \
          recovery.")
    Term.(
      const run $ seed $ iters $ size $ machine $ intensity $ overload $ crash
      $ quick $ clients $ verbose)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let module Tr = Ilp_bench.Tracerun in
  let out =
    Arg.(value & opt string "TRACE.json"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Chrome trace_event JSON output path.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ] ~doc:"CI smoke variant: smaller transfers.")
  in
  let timeline =
    Arg.(value & flag
         & info [ "timeline" ] ~doc:"Print the plain-text span timeline tail.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ] ~doc:"Print the metrics-registry delta of the run.")
  in
  let run out quick timeline metrics =
    match Tr.run ~quick () with
    | r ->
        Tr.write_json r ~path:out;
        List.iter print_endline (Tr.summary_lines r);
        if timeline then begin
          print_endline "--- timeline tail ---";
          List.iter print_endline r.Tr.timeline
        end;
        if metrics then begin
          print_endline "--- metrics delta ---";
          print_string (Ilp_obs.Metrics.render r.Tr.metrics)
        end;
        Printf.printf "wrote %s (load in chrome://tracing or Perfetto)\n" out;
        if Tr.complete r then 0
        else begin
          prerr_endline
            "ilpbench: trace is incomplete: need at least one complete send \
             chain (marshal+encrypt+checksum+ring-copy) and one complete \
             receive chain (checksum+decrypt+unmarshal)";
          1
        end
    | exception Failure msg ->
        Printf.eprintf "ilpbench: %s\n" msg;
        2
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace one ILP and one separate simulated transfer per-packet and \
          export Chrome trace_event JSON; fails unless the trace contains \
          complete send and receive span chains.")
    Term.(const run $ out $ quick $ timeline $ metrics)

(* ------------------------------------------------------------------ *)
(* report *)

let report_cmd =
  let module Telem = Ilp_bench.Telem in
  let out =
    Arg.(value & opt string "TELEMETRY.json"
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Time-series JSON output path.")
  in
  let flight_out =
    Arg.(value & opt string "FLIGHT.txt"
         & info [ "flight-out" ] ~docv:"FILE"
             ~doc:"Flight-recorder dump output path.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"CI smoke variant: fewer clients, coarser sampling.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ] ~doc:"Log every soak verdict line.")
  in
  let run out flight_out quick verbose =
    let config = if quick then Telem.quick_config else Telem.default_config in
    let log line = if verbose then print_endline line in
    match Telem.run ~log ~config () with
    | r ->
        Telem.write_json r ~path:out;
        Telem.write_flight ~path:flight_out;
        List.iter print_endline (Telem.summary_lines r);
        print_endline "--- dashboard ---";
        List.iter print_endline (Telem.dashboard_lines r);
        Printf.printf "wrote %s and %s\n" out flight_out;
        (match Telem.check r with
        | Ok () ->
            print_endline
              "telemetry gates passed: soak invariants, sampler conservation, \
               SLOs within bounds";
            0
        | Error fs ->
            List.iter (fun f -> Printf.eprintf "ilpbench report: %s\n" f) fs;
            1)
    | exception Invalid_argument msg ->
        Printf.eprintf "ilpbench: %s\n" msg;
        2
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Continuous-telemetry report: run the overload soak with the \
          periodic registry sampler attached, print the sparkline dashboard, \
          export the JSON time series and the flight-recorder dump, and gate \
          on sampler conservation and the latency SLOs.")
    Term.(const run $ out $ flight_out $ quick $ verbose)

(* ------------------------------------------------------------------ *)
(* regress *)

let regress_cmd =
  let module Regress = Ilp_bench.Regress in
  let baseline =
    Arg.(value & opt string "bench/baseline"
         & info [ "baseline"; "b" ] ~docv:"DIR"
             ~doc:"Directory holding the committed baseline BENCH_*.json.")
  in
  let dir =
    Arg.(value & opt string "."
         & info [ "dir"; "d" ] ~docv:"DIR"
             ~doc:"Directory holding the current BENCH_*.json.")
  in
  let tolerance =
    Arg.(value & opt float 0.10
         & info [ "tolerance" ] ~docv:"FRAC"
             ~doc:"Fractional band for the deterministic mem/stream \
                   indicators.")
  in
  let wall_tolerance =
    Arg.(value & opt float 0.30
         & info [ "wall-tolerance" ] ~docv:"FRAC"
             ~doc:"Fractional band for the noisy wall-clock speedups.")
  in
  let run baseline dir tolerance wall_tolerance =
    match
      Regress.run ~tolerance ~wall_tolerance ~baseline_dir:baseline
        ~current_dir:dir ()
    with
    | Ok report ->
        List.iter print_endline (Regress.report_lines report);
        if Regress.passed report then 0 else 1
    | Error e ->
        Printf.eprintf "ilpbench regress: %s\n" e;
        2
  in
  Cmd.v
    (Cmd.info "regress"
       ~doc:
         "Compare the current BENCH_wall/mem/stream.json against the \
          committed baseline with tolerance bands; exits nonzero on any \
          regressed indicator.")
    Term.(const run $ baseline $ dir $ tolerance $ wall_tolerance)

(* ------------------------------------------------------------------ *)
(* machines *)

let machines_cmd =
  let run () =
    List.iter
      (fun (m : Config.t) ->
        let o = Ilp_bench.Platforms.overhead m in
        Printf.printf "%-12s %4.0f MHz  L1D %2d kB/%d-way  L1I %2d kB  L2 %-6s  overhead %.0f us + %.3f us/B\n"
          m.Config.name m.Config.clock_mhz
          (m.Config.l1d.Cache.size / 1024)
          m.Config.l1d.Cache.assoc
          (m.Config.l1i.Cache.size / 1024)
          (match m.Config.l2 with
          | Some l2 -> Printf.sprintf "%d kB" (l2.Cache.size / 1024)
          | None -> "none")
          o.Ilp_bench.Platforms.base_us o.Ilp_bench.Platforms.per_byte_us)
      Config.all;
    0
  in
  Cmd.v (Cmd.info "machines" ~doc:"List the modelled workstations.") Term.(const run $ const ())

let () =
  let doc = "Reproduction harness for 'Protocol Implementation Using Integrated Layer Processing'" in
  let info = Cmd.info "ilpbench" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ experiments_cmd; transfer_cmd; wall_cmd; mem_cmd; stream_cmd;
            machines_cmd; export_cmd; soak_cmd; trace_cmd; report_cmd;
            regress_cmd ]))
