(* Unit and property tests for the memory-hierarchy simulator. *)

open Ilp_memsim

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_counting () =
  let s = Stats.create () in
  Stats.record_access s Stats.Read ~size:4;
  Stats.record_access s Stats.Read ~size:4;
  Stats.record_access s Stats.Read ~size:1;
  Stats.record_access s Stats.Write ~size:8;
  check "reads" 3 (Stats.accesses s Stats.Read);
  check "writes" 1 (Stats.accesses s Stats.Write);
  check "reads of size 4" 2 (Stats.accesses_of_size s Stats.Read ~size:4);
  check "reads of size 1" 1 (Stats.accesses_of_size s Stats.Read ~size:1);
  check "read bytes" 9 (Stats.bytes s Stats.Read);
  check "write bytes" 8 (Stats.bytes s Stats.Write)

let test_stats_misses () =
  let s = Stats.create () in
  Stats.record_access s Stats.Write ~size:1;
  Stats.record_miss s Stats.Write ~size:1 ~level:1;
  Stats.record_miss s Stats.Write ~size:1 ~level:2;
  check "level 1" 1 (Stats.misses s Stats.Write ~level:1);
  check "level 2" 1 (Stats.misses s Stats.Write ~level:2);
  check "per size" 1 (Stats.misses_of_size s Stats.Write ~size:1 ~level:1);
  checkf "ratio" 1.0 (Stats.miss_ratio s Stats.Write ~level:1);
  checkf "data ratio" 1.0 (Stats.data_miss_ratio s)

let test_stats_ratio_empty () =
  let s = Stats.create () in
  checkf "empty ratio" 0.0 (Stats.miss_ratio s Stats.Read ~level:1);
  checkf "empty data ratio" 0.0 (Stats.data_miss_ratio s)

let test_stats_invalid_size () =
  Alcotest.check_raises "size 3" (Invalid_argument "Stats: unsupported access size 3")
    (fun () -> Stats.record_access (Stats.create ()) Stats.Read ~size:3)

let test_stats_accumulate_diff () =
  let a = Stats.create () and b = Stats.create () in
  Stats.record_access a Stats.Read ~size:4;
  Stats.record_access b Stats.Read ~size:4;
  Stats.record_access b Stats.Read ~size:4;
  Stats.accumulate ~into:a b;
  check "accumulated" 3 (Stats.accesses a Stats.Read);
  let d = Stats.diff a b in
  check "diff" 1 (Stats.accesses d Stats.Read);
  let snap = Stats.copy a in
  Stats.record_access a Stats.Write ~size:1;
  let d2 = Stats.diff a snap in
  check "diff after copy: write delta" 1 (Stats.accesses d2 Stats.Write);
  check "diff after copy: read delta" 0 (Stats.accesses d2 Stats.Read)

let test_stats_scale_reset () =
  let s = Stats.create () in
  for _ = 1 to 10 do
    Stats.record_access s Stats.Read ~size:2
  done;
  let doubled = Stats.scale s 2.0 in
  check "scaled" 20 (Stats.accesses doubled Stats.Read);
  Stats.reset s;
  check "reset" 0 (Stats.accesses s Stats.Read)

(* ------------------------------------------------------------------ *)
(* Cache *)

let dm ~size ~line = Cache.create (Cache.direct_mapped ~size ~line)

let test_cache_cold_miss_then_hit () =
  let c = dm ~size:256 ~line:16 in
  let o1 = Cache.access c ~addr:0 ~write:false in
  checkb "cold miss" false (Cache.hit o1);
  checkb "filled" true (Cache.filled o1);
  let o2 = Cache.access c ~addr:12 ~write:false in
  checkb "same line hits" true (Cache.hit o2);
  let o3 = Cache.access c ~addr:16 ~write:false in
  checkb "next line misses" false (Cache.hit o3)

let test_cache_direct_mapped_conflict () =
  let c = dm ~size:256 ~line:16 in
  ignore (Cache.access c ~addr:0 ~write:false);
  (* 256 bytes direct-mapped: address 256 maps to the same set as 0. *)
  ignore (Cache.access c ~addr:256 ~write:false);
  checkb "original evicted" false (Cache.present c ~addr:0);
  checkb "newcomer present" true (Cache.present c ~addr:256)

let test_cache_lru () =
  let c = Cache.create (Cache.set_associative ~size:64 ~line:16 ~assoc:2) in
  (* 2 sets; addresses 0, 32, 64 share set 0 (line 16, sets 2). *)
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:32 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false) (* refresh 0 *);
  ignore (Cache.access c ~addr:64 ~write:false) (* evicts 32, the LRU *);
  checkb "0 kept" true (Cache.present c ~addr:0);
  checkb "32 evicted" false (Cache.present c ~addr:32);
  checkb "64 present" true (Cache.present c ~addr:64)

let test_cache_writeback_on_dirty_eviction () =
  let c = dm ~size:256 ~line:16 in
  ignore (Cache.access c ~addr:0 ~write:true);
  let o = Cache.access c ~addr:256 ~write:false in
  checkb "dirty eviction writes back" true (Cache.writeback o);
  (* A clean line must not write back. *)
  ignore (Cache.access c ~addr:512 ~write:false);
  let o2 = Cache.access c ~addr:0 ~write:false in
  checkb "clean eviction silent" false (Cache.writeback o2)

let test_cache_store_around () =
  let cfg =
    { (Cache.direct_mapped ~size:256 ~line:16) with
      Cache.write_policy = Cache.Write_through;
      write_allocate = false }
  in
  let c = Cache.create cfg in
  let o = Cache.access c ~addr:0 ~write:true in
  checkb "write miss does not fill" false (Cache.filled o);
  checkb "line still absent" false (Cache.present c ~addr:0);
  (* A read brings the line in; later writes hit. *)
  ignore (Cache.access c ~addr:0 ~write:false);
  let o2 = Cache.access c ~addr:4 ~write:true in
  checkb "write hit after read" true (Cache.hit o2)

let test_cache_write_through_never_dirty () =
  let cfg =
    { (Cache.direct_mapped ~size:256 ~line:16) with
      Cache.write_policy = Cache.Write_through }
  in
  let c = Cache.create cfg in
  ignore (Cache.access c ~addr:0 ~write:true);
  let o = Cache.access c ~addr:256 ~write:false in
  checkb "write-through eviction has no writeback" false (Cache.writeback o)

let test_cache_flush () =
  let c = dm ~size:256 ~line:16 in
  ignore (Cache.access c ~addr:0 ~write:false);
  Cache.flush c;
  checkb "flushed" false (Cache.present c ~addr:0)

let test_cache_bad_geometry () =
  Alcotest.check_raises "line not power of two"
    (Invalid_argument "Cache.create: line size") (fun () ->
      ignore (Cache.create (Cache.direct_mapped ~size:256 ~line:12)));
  Alcotest.check_raises "indivisible size"
    (Invalid_argument "Cache.create: size not divisible by line*assoc") (fun () ->
      ignore (Cache.create (Cache.set_associative ~size:250 ~line:16 ~assoc:2)))

let prop_cache_capacity =
  QCheck.Test.make ~count:100 ~name:"resident lines never exceed capacity"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 4095))
    (fun addrs ->
      let c = Cache.create (Cache.set_associative ~size:256 ~line:16 ~assoc:2) in
      List.iter (fun a -> ignore (Cache.access c ~addr:a ~write:false)) addrs;
      let resident = ref 0 in
      for line = 0 to 255 do
        if Cache.present c ~addr:(line * 16) then incr resident
      done;
      !resident <= 16)

let prop_cache_present_after_read =
  QCheck.Test.make ~count:100 ~name:"a read access makes the line present"
    QCheck.(int_bound 100_000)
    (fun addr ->
      let c = dm ~size:1024 ~line:32 in
      ignore (Cache.access c ~addr ~write:false);
      Cache.present c ~addr)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_machines () =
  check "seven machines" 7 (List.length Config.all);
  check "figure 9 set" 4 (List.length Config.figure9);
  List.iter
    (fun (m : Config.t) ->
      checkb (m.Config.name ^ " clock positive") true (m.Config.clock_mhz > 0.0);
      checkb
        (m.Config.name ^ " L2 hit cheaper than memory")
        true
        (Config.l2_hit_cycles m <= Config.mem_cycles m))
    Config.all

let test_config_by_name () =
  checkb "found" true (Config.by_name "ss10-30" <> None);
  checkb "case insensitive" true (Config.by_name "AXP3000/800" <> None);
  checkb "missing" true (Config.by_name "vax" = None)

let test_config_ss10_30_has_no_l2 () =
  checkb "no L2" true (Config.ss10_30.Config.l2 = None);
  List.iter
    (fun (m : Config.t) ->
      if m.Config.name <> "SS10-30" then
        checkb (m.Config.name ^ " has L2") true (m.Config.l2 <> None))
    Config.all

(* ------------------------------------------------------------------ *)
(* Machine *)

let tiny () = Machine.create (Config.custom ())

let test_machine_read_miss_costs () =
  let m = tiny () in
  Machine.read m ~addr:0 ~size:4;
  let after_miss = Machine.cycles m in
  checkb "miss costs cycles" true (after_miss > 0.0);
  Machine.read m ~addr:4 ~size:4;
  checkf "hit costs nothing extra (l1_hit_ns = 0)" after_miss (Machine.cycles m)

let test_machine_straddling_access () =
  let m = tiny () in
  (* Line size 16: an 8-byte read at 12 touches two lines. *)
  Machine.read m ~addr:12 ~size:8;
  check "two level-1 misses" 2 (Stats.misses (Machine.stats m) Stats.Read ~level:1);
  check "one recorded access" 1 (Stats.accesses (Machine.stats m) Stats.Read)

let test_machine_exec_warm () =
  let m = tiny () in
  let code = Code.allocator () in
  let region = Code.alloc code ~len:64 in
  Machine.exec m region;
  let c1 = Machine.cycles m in
  checkb "cold ifetch costs" true (c1 > 0.0);
  Machine.exec m region;
  checkf "warm ifetch free" c1 (Machine.cycles m)

let test_machine_compute_scale () =
  let m = Machine.create (Config.custom ~compute_scale:2.0 ()) in
  Machine.compute m 10;
  checkf "scaled ops" 20.0 (Machine.cycles m)

let test_machine_charge_micros () =
  let m = Machine.create (Config.custom ~clock_mhz:50.0 ()) in
  Machine.charge_micros m 3.0;
  checkf "micros round trip" 3.0 (Machine.micros m)

let test_machine_reset () =
  let m = tiny () in
  Machine.read m ~addr:0 ~size:4;
  Machine.reset_counters m;
  checkf "cycles zeroed" 0.0 (Machine.cycles m);
  check "stats zeroed" 0 (Stats.accesses (Machine.stats m) Stats.Read);
  (* Cache state survives a counter reset. *)
  Machine.read m ~addr:0 ~size:4;
  check "still warm" 0 (Stats.misses (Machine.stats m) Stats.Read ~level:1)

let test_machine_write_through_drain () =
  (* SS10-30's L1D is write-through: every write costs the drain, hit or
     miss. *)
  let m = Machine.create Config.ss10_30 in
  Machine.read m ~addr:0 ~size:4;
  let base = Machine.cycles m in
  Machine.write m ~addr:0 ~size:4 (* hits (line resident) but drains *);
  checkb "write hit still drains" true (Machine.cycles m > base)

let test_machine_store_around_counts_miss () =
  let m = Machine.create Config.ss10_30 in
  Machine.write m ~addr:4096 ~size:1;
  check "1-byte write miss recorded" 1
    (Stats.misses_of_size (Machine.stats m) Stats.Write ~size:1 ~level:1);
  (* The store did not allocate: a second write misses again. *)
  Machine.write m ~addr:4097 ~size:1;
  check "still missing" 2 (Stats.misses (Machine.stats m) Stats.Write ~level:1)

let test_machine_l2_cheaper_than_memory () =
  let with_l2 = Machine.create Config.ss10_41 in
  let without = Machine.create Config.ss10_30 in
  (* Warm the L2 of the first machine, then miss L1 but hit L2. *)
  Machine.read with_l2 ~addr:0 ~size:4;
  Machine.read without ~addr:0 ~size:4;
  (* Evict from L1 by conflict: SuperSPARC L1D is 16 KB 4-way with 32 B
     lines -> 128 sets; five addresses 4096 bytes apart map to one set. *)
  for i = 1 to 8 do
    Machine.read with_l2 ~addr:(i * 4096) ~size:4;
    Machine.read without ~addr:(i * 4096) ~size:4
  done;
  Machine.reset_counters with_l2;
  Machine.reset_counters without;
  Machine.read with_l2 ~addr:0 ~size:4;
  Machine.read without ~addr:0 ~size:4;
  check "both miss L1" (Stats.misses (Machine.stats without) Stats.Read ~level:1)
    (Stats.misses (Machine.stats with_l2) Stats.Read ~level:1);
  if Stats.misses (Machine.stats with_l2) Stats.Read ~level:1 = 1 then
    checkb "L2 hit cheaper than DRAM" true
      (Machine.cycles with_l2 *. Config.ss10_41.Config.clock_mhz
       /. Config.ss10_30.Config.clock_mhz
      < Machine.cycles without +. 0.001)

(* ------------------------------------------------------------------ *)
(* Mem *)

let test_mem_roundtrips () =
  let sim = Sim.create (Config.custom ()) in
  let mem = sim.Sim.mem in
  Mem.set_u8 mem 100 0xAB;
  check "u8" 0xAB (Mem.get_u8 mem 100);
  Mem.set_u16 mem 102 0xBEEF;
  check "u16" 0xBEEF (Mem.get_u16 mem 102);
  Mem.set_u32 mem 104 0xDEADBEEF;
  check "u32" 0xDEADBEEF (Mem.get_u32 mem 104);
  Mem.set_u64 mem 112 0x0123456789ABCDEFL;
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Mem.get_u64 mem 112)

let test_mem_big_endian () =
  let sim = Sim.create (Config.custom ()) in
  let mem = sim.Sim.mem in
  Mem.set_u32 mem 200 0x01020304;
  check "network byte order" 0x01 (Mem.peek_u8 mem 200);
  check "lsb last" 0x04 (Mem.peek_u8 mem 203)

let test_mem_peek_poke_uncharged () =
  let sim = Sim.create (Config.custom ()) in
  let mem = sim.Sim.mem in
  Mem.poke_u32 mem 300 42;
  ignore (Mem.peek_u32 mem 300);
  Mem.poke_string mem ~pos:308 "hello";
  ignore (Mem.peek_bytes mem ~pos:308 ~len:5);
  checkf "no cycles" 0.0 (Machine.cycles sim.Sim.machine);
  check "no accesses" 0 (Stats.accesses (Machine.stats sim.Sim.machine) Stats.Read)

let test_mem_blit () =
  let sim = Sim.create (Config.custom ()) in
  let mem = sim.Sim.mem in
  Mem.poke_string mem ~pos:400 "abcdefghij";
  Mem.blit mem ~src:400 ~dst:500 ~len:10 ~unit_len:4;
  Alcotest.(check string)
    "copied" "abcdefghij"
    (Bytes.to_string (Mem.peek_bytes mem ~pos:500 ~len:10));
  (* 2 word accesses + 2 byte accesses on each side. *)
  check "reads" 4 (Stats.accesses (Machine.stats sim.Sim.machine) Stats.Read);
  check "writes" 4 (Stats.accesses (Machine.stats sim.Sim.machine) Stats.Write)

let test_mem_blit_overlap_forward () =
  let sim = Sim.create (Config.custom ()) in
  let mem = sim.Sim.mem in
  Mem.poke_string mem ~pos:600 "abcdefgh";
  (* Non-overlapping ranges copy exactly; overlapping d<s forward is fine. *)
  Mem.blit mem ~src:604 ~dst:600 ~len:4 ~unit_len:1;
  Alcotest.(check string)
    "shifted" "efgh"
    (Bytes.to_string (Mem.peek_bytes mem ~pos:600 ~len:4))

let prop_mem_u32_roundtrip =
  QCheck.Test.make ~count:200 ~name:"u32 set/get round trip"
    QCheck.(pair (int_bound 0xffffffff) (int_bound 1000))
    (fun (v, addr) ->
      let sim = Sim.create (Config.custom ()) in
      Mem.set_u32 sim.Sim.mem (addr * 4) v;
      Mem.get_u32 sim.Sim.mem (addr * 4) = v)

(* ------------------------------------------------------------------ *)
(* Alloc *)

let test_alloc_alignment () =
  let a = Alloc.create ~base:1 ~limit:1024 in
  let p1 = Alloc.alloc a ~align:8 10 in
  check "aligned to 8" 0 (p1 mod 8);
  let p2 = Alloc.alloc a ~align:64 1 in
  check "aligned to 64" 0 (p2 mod 64);
  checkb "monotone" true (p2 > p1)

let test_alloc_exhaustion () =
  let a = Alloc.create ~base:0 ~limit:64 in
  ignore (Alloc.alloc a 60);
  checkb "remaining small" true (Alloc.remaining a <= 4);
  (match Alloc.alloc a 100 with
  | _ -> Alcotest.fail "expected exhaustion"
  | exception Failure _ -> ());
  Alcotest.check_raises "bad alignment"
    (Invalid_argument "Alloc.alloc: alignment must be a power of two") (fun () ->
      ignore (Alloc.alloc a ~align:3 1))

let test_sim_cold_start () =
  let sim = Sim.create (Config.custom ()) in
  ignore (Mem.get_u32 sim.Sim.mem 64);
  Sim.cold_start sim;
  checkf "counters cleared" 0.0 (Machine.cycles sim.Sim.machine);
  ignore (Mem.get_u32 sim.Sim.mem 64);
  check "cache flushed too" 1
    (Stats.misses (Machine.stats sim.Sim.machine) Stats.Read ~level:1)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "memsim"
    [ ( "stats",
        [ Alcotest.test_case "counting" `Quick test_stats_counting;
          Alcotest.test_case "misses" `Quick test_stats_misses;
          Alcotest.test_case "empty ratios" `Quick test_stats_ratio_empty;
          Alcotest.test_case "invalid size" `Quick test_stats_invalid_size;
          Alcotest.test_case "accumulate/diff" `Quick test_stats_accumulate_diff;
          Alcotest.test_case "scale/reset" `Quick test_stats_scale_reset ] );
      ( "cache",
        [ Alcotest.test_case "cold miss then hit" `Quick test_cache_cold_miss_then_hit;
          Alcotest.test_case "direct-mapped conflict" `Quick
            test_cache_direct_mapped_conflict;
          Alcotest.test_case "LRU replacement" `Quick test_cache_lru;
          Alcotest.test_case "dirty writeback" `Quick
            test_cache_writeback_on_dirty_eviction;
          Alcotest.test_case "store-around" `Quick test_cache_store_around;
          Alcotest.test_case "write-through never dirty" `Quick
            test_cache_write_through_never_dirty;
          Alcotest.test_case "flush" `Quick test_cache_flush;
          Alcotest.test_case "bad geometry" `Quick test_cache_bad_geometry;
          qc prop_cache_capacity;
          qc prop_cache_present_after_read ] );
      ( "config",
        [ Alcotest.test_case "machines" `Quick test_config_machines;
          Alcotest.test_case "by_name" `Quick test_config_by_name;
          Alcotest.test_case "SS10-30 lacks L2" `Quick test_config_ss10_30_has_no_l2 ] );
      ( "machine",
        [ Alcotest.test_case "read miss costs" `Quick test_machine_read_miss_costs;
          Alcotest.test_case "straddling access" `Quick test_machine_straddling_access;
          Alcotest.test_case "warm ifetch" `Quick test_machine_exec_warm;
          Alcotest.test_case "compute scale" `Quick test_machine_compute_scale;
          Alcotest.test_case "charge micros" `Quick test_machine_charge_micros;
          Alcotest.test_case "reset keeps caches" `Quick test_machine_reset;
          Alcotest.test_case "write-through drain" `Quick
            test_machine_write_through_drain;
          Alcotest.test_case "store-around miss count" `Quick
            test_machine_store_around_counts_miss;
          Alcotest.test_case "L2 cheaper than memory" `Quick
            test_machine_l2_cheaper_than_memory ] );
      ( "mem",
        [ Alcotest.test_case "round trips" `Quick test_mem_roundtrips;
          Alcotest.test_case "big endian" `Quick test_mem_big_endian;
          Alcotest.test_case "peek/poke uncharged" `Quick test_mem_peek_poke_uncharged;
          Alcotest.test_case "blit" `Quick test_mem_blit;
          Alcotest.test_case "blit overlap" `Quick test_mem_blit_overlap_forward;
          qc prop_mem_u32_roundtrip ] );
      ( "alloc",
        [ Alcotest.test_case "alignment" `Quick test_alloc_alignment;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "sim cold start" `Quick test_sim_cold_start ] ) ]
