(* The reproduction harness's own plumbing: paper data, the overhead
   model, reporting, and the micro-benchmark. *)

open Ilp_memsim
module B = Ilp_bench

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_table1_complete () =
  check "35 rows" 35 (List.length B.Paper_data.table1);
  List.iter
    (fun (m : Config.t) ->
      List.iter
        (fun size ->
          match B.Paper_data.table1_row ~platform:m.Config.name ~size with
          | Some row ->
              checkb "throughputs positive" true
                (row.B.Paper_data.tput_ilp > 0.0 && row.B.Paper_data.tput_non > 0.0);
              (* At 1 kB and above ILP always wins in the paper. *)
              if size >= 768 then
                checkb "ILP wins at large sizes" true
                  (row.B.Paper_data.tput_ilp >= row.B.Paper_data.tput_non)
          | None -> Alcotest.failf "missing %s/%d" m.Config.name size)
        [ 256; 512; 768; 1024; 1280 ])
    Config.all

let test_table1_spot_values () =
  (* Two anchor cells quoted in the running text. *)
  match B.Paper_data.table1_row ~platform:"SS10-30" ~size:1024 with
  | None -> Alcotest.fail "missing anchor row"
  | Some r ->
      check "send non-ILP" 369 r.B.Paper_data.send_non;
      check "send ILP" 311 r.B.Paper_data.send_ilp;
      check "recv non-ILP" 356 r.B.Paper_data.recv_non;
      check "recv ILP" 300 r.B.Paper_data.recv_ilp

let test_overhead_fit () =
  List.iter
    (fun (m : Config.t) ->
      let o = B.Platforms.overhead m in
      checkb (m.Config.name ^ " base positive") true (o.B.Platforms.base_us > 0.0);
      (* Reconstructing the paper's own rows with the paper's own
         processing times must land near the paper's throughput. *)
      List.iter
        (fun size ->
          match B.Paper_data.table1_row ~platform:m.Config.name ~size with
          | None -> ()
          | Some row ->
              let proc = float_of_int (row.B.Paper_data.send_ilp + row.B.Paper_data.recv_ilp) in
              let t = B.Platforms.throughput_mbps m ~size ~proc_us:proc in
              let err = Float.abs (t -. row.B.Paper_data.tput_ilp) /. row.B.Paper_data.tput_ilp in
              if err > 0.25 then
                Alcotest.failf "%s/%d: fit error %.0f%%" m.Config.name size (err *. 100.0))
        [ 512; 768; 1024 ])
    Config.all

let test_kernel_profile_faster () =
  let m = Config.ss10_30 in
  let user = B.Platforms.throughput_mbps m ~size:1024 ~proc_us:500.0 in
  let kernel = B.Platforms.kernel_throughput_mbps m ~size:1024 ~proc_us:500.0 in
  checkb "kernel profile is faster" true (kernel > user)

let test_report_helpers () =
  checkb "gain" true (B.Report.pct_gain ~base:100.0 ~better:80.0 = 20.0);
  checkb "vs formats" true (String.length (B.Report.vs ~paper:10.0 ~ours:12.0) > 0)

let test_percentile_sorted () =
  let sorted = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkb "p0 is the minimum" true (B.Report.percentile_sorted sorted 0.0 = 1.0);
  checkb "median matches the old upper-median" true
    (B.Report.percentile_sorted sorted 0.5 = 3.0);
  checkb "p100 is the maximum" true (B.Report.percentile_sorted sorted 1.0 = 4.0);
  (match B.Report.percentile_sorted [||] 0.5 with
  | _ -> Alcotest.fail "expected Invalid_argument on empty"
  | exception Invalid_argument _ -> ());
  match B.Report.percentile_sorted sorted 1.5 with
  | _ -> Alcotest.fail "expected Invalid_argument on q > 1"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Perf-regression gating *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_file dir name contents =
  let oc = open_out (Filename.concat dir name) in
  output_string oc contents;
  close_out oc

let stream_json ~gate ~goodput =
  Printf.sprintf
    {|{ "gate_ratio": %f,
  "points": [
    { "mode": "pipelined", "rtt_us": 2000, "loss": 0.0, "goodput_mbps": %f }
  ] }|}
    gate goodput

let test_regress_identical_passes () =
  let base = temp_dir "regress_base" and cur = temp_dir "regress_cur" in
  let j = stream_json ~gate:40.0 ~goodput:100.0 in
  write_file base "BENCH_stream.json" j;
  write_file cur "BENCH_stream.json" j;
  match B.Regress.run ~baseline_dir:base ~current_dir:cur () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checkb "identical dirs pass" true (B.Regress.passed r);
      check "two stream indicators" 2 (List.length r.B.Regress.verdicts);
      check "wall and mem skipped (no baseline)" 2
        (List.length r.B.Regress.files_skipped);
      checkb "report lines render" true
        (List.length (B.Regress.report_lines r) >= 3)

let test_regress_detects_regression () =
  let base = temp_dir "regress_base" and cur = temp_dir "regress_cur" in
  write_file base "BENCH_stream.json" (stream_json ~gate:40.0 ~goodput:100.0);
  (* goodput down 50% blows the 10% band; gate_ratio UP is fine. *)
  write_file cur "BENCH_stream.json" (stream_json ~gate:44.0 ~goodput:50.0);
  match B.Regress.run ~baseline_dir:base ~current_dir:cur () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checkb "regression fails the run" false (B.Regress.passed r);
      check "exactly one regressed indicator" 1
        (List.length (B.Regress.regressions r));
      (match B.Regress.regressions r with
      | [ v ] ->
          checkb "the goodput point regressed" true
            (v.B.Regress.v_key = "stream.goodput[pipelined,rtt=2000,loss=0.000]")
      | _ -> Alcotest.fail "expected one regression")

let test_regress_within_band_passes () =
  let base = temp_dir "regress_base" and cur = temp_dir "regress_cur" in
  write_file base "BENCH_stream.json" (stream_json ~gate:40.0 ~goodput:100.0);
  write_file cur "BENCH_stream.json" (stream_json ~gate:38.0 ~goodput:95.0);
  match B.Regress.run ~baseline_dir:base ~current_dir:cur () with
  | Error e -> Alcotest.fail e
  | Ok r -> checkb "5% dip within the 10% band" true (B.Regress.passed r)

let test_regress_missing_current () =
  let base = temp_dir "regress_base" and cur = temp_dir "regress_cur" in
  write_file base "BENCH_stream.json" (stream_json ~gate:40.0 ~goodput:100.0);
  (match B.Regress.run ~baseline_dir:base ~current_dir:cur () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing current file must be a hard error");
  (* A baseline indicator silently dropped from the current run is a
     regression, not a pass. *)
  write_file cur "BENCH_stream.json" {|{ "gate_ratio": 40.0, "points": [] }|};
  match B.Regress.run ~baseline_dir:base ~current_dir:cur () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checkb "dropped indicator fails the run" false (B.Regress.passed r);
      check "it is reported as missing" 1
        (List.length r.B.Regress.missing_current)

let test_regress_json_parser () =
  (match B.Regress.parse_string {| { "a": [1, 2.5, true, null, "s
"] } |} with
  | Ok j -> (
      match B.Regress.member "a" j with
      | Some (B.Regress.Arr l) -> check "array arity survives" 5 (List.length l)
      | _ -> Alcotest.fail "member lookup failed")
  | Error e -> Alcotest.fail e);
  match B.Regress.parse_string {| { "a": } |} with
  | Ok _ -> Alcotest.fail "malformed JSON must not parse"
  | Error _ -> ()

let test_microbench_simulated () =
  let o = B.Microbench.simulated () in
  checkb "sequential positive" true (o.B.Microbench.sequential_mbps > 0.0);
  checkb "fusion wins" true
    (o.B.Microbench.fused_mbps > o.B.Microbench.sequential_mbps);
  (* The paper's micro-loop gain is ~40%; ours must at least be a
     double-digit percentage. *)
  checkb "double-digit gain" true
    (o.B.Microbench.fused_mbps /. o.B.Microbench.sequential_mbps > 1.10)

let test_cipher_wall_clock_ordering () =
  let results = B.Microbench.ciphers_wall_clock ~quota_s:0.05 () in
  let get name = List.assoc name results in
  checkb "simple fastest" true (get "simple" > get "safer-simplified");
  checkb "1 round beats 6 rounds" true
    (get "safer-k64-1round" > get "safer-k64-6rounds");
  checkb "DES slowest" true (get "des" < get "safer-simplified")

let test_t1_csv_shape () =
  let csv = B.Experiments.t1_csv () in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check "header + 35 rows" 36 (List.length lines);
  match lines with
  | header :: _ ->
      check "14 columns" 14
        (List.length (String.split_on_char ',' header))
  | [] -> Alcotest.fail "empty csv"

let test_wallbench_points () =
  (* Tiny configuration: the structure and the JSON schema, not timing. *)
  let r = B.Wallbench.run ~sizes:[ 64; 8 ] ~trials:1 ~warmup:0 () in
  check "one point per size" 2 (List.length r.B.Wallbench.points);
  (match r.B.Wallbench.points with
  | p1 :: p2 :: _ ->
      check "sorted by size" 8 p1.B.Wallbench.len;
      check "sorted by size" 64 p2.B.Wallbench.len;
      List.iter
        (fun p ->
          checkb "times positive" true
            (p.B.Wallbench.separate.B.Wallbench.send_ns > 0.0
            && p.B.Wallbench.ilp.B.Wallbench.recv_ns > 0.0);
          checkb "speedup finite" true (Float.is_finite p.B.Wallbench.speedup))
        [ p1; p2 ]
  | _ -> Alcotest.fail "missing points");
  let json = B.Wallbench.to_json r in
  let contains needle =
    let n = String.length needle and m = String.length json in
    let rec at i = i + n <= m && (String.sub json i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle -> checkb ("json has " ^ needle) true (contains needle))
    [ "\"benchmark\": \"wall\""; "\"cipher\": \"simple\""; "\"points\"";
      "\"speedup\""; "\"send_ns\"" ]

let test_wallbench_validation () =
  Alcotest.check_raises "odd size rejected"
    (Invalid_argument "Wallbench.run: size 12 is not a positive multiple of 8")
    (fun () -> ignore (B.Wallbench.run ~sizes:[ 12 ] ()));
  (match B.Wallbench.cipher_of_name "no-such-cipher" with
  | Ok _ -> Alcotest.fail "accepted bogus cipher"
  | Error _ -> ());
  List.iter
    (fun name ->
      match B.Wallbench.cipher_of_name name with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    B.Wallbench.cipher_names

let test_experiment_names () =
  checkb "has all" true (List.mem "all" B.Experiments.names);
  match B.Experiments.run_named "no-such-thing" with
  | Ok () -> Alcotest.fail "accepted bogus name"
  | Error _ -> ()

let () =
  Alcotest.run "bench"
    [ ( "paper data",
        [ Alcotest.test_case "table 1 complete" `Quick test_table1_complete;
          Alcotest.test_case "anchor values" `Quick test_table1_spot_values ] );
      ( "platform model",
        [ Alcotest.test_case "overhead fit" `Quick test_overhead_fit;
          Alcotest.test_case "kernel profile" `Quick test_kernel_profile_faster ] );
      ( "report",
        [ Alcotest.test_case "helpers" `Quick test_report_helpers;
          Alcotest.test_case "percentile_sorted" `Quick test_percentile_sorted ] );
      ( "regress",
        [ Alcotest.test_case "identical dirs pass" `Quick
            test_regress_identical_passes;
          Alcotest.test_case "detects a regression" `Quick
            test_regress_detects_regression;
          Alcotest.test_case "within-band drift passes" `Quick
            test_regress_within_band_passes;
          Alcotest.test_case "missing current data" `Quick
            test_regress_missing_current;
          Alcotest.test_case "json parser" `Quick test_regress_json_parser ] );
      ( "microbench",
        [ Alcotest.test_case "simulated" `Quick test_microbench_simulated ] );
      ( "experiments",
        [ Alcotest.test_case "cipher wall-clock ordering" `Quick
            test_cipher_wall_clock_ordering;
          Alcotest.test_case "t1 csv shape" `Slow test_t1_csv_shape;
          Alcotest.test_case "names" `Quick test_experiment_names ] );
      ( "wallbench",
        [ Alcotest.test_case "points and json" `Quick test_wallbench_points;
          Alcotest.test_case "validation" `Quick test_wallbench_validation ] ) ]
