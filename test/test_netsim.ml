(* Virtual clock, link impairments and kernel demultiplexing. *)

open Ilp_netsim

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Simclock *)

let test_clock_ordering () =
  let clock = Simclock.create () in
  let log = ref [] in
  let ev tag = fun () -> log := tag :: !log in
  ignore (Simclock.schedule clock ~after:30.0 (ev "c"));
  ignore (Simclock.schedule clock ~after:10.0 (ev "a"));
  ignore (Simclock.schedule clock ~after:20.0 (ev "b"));
  Simclock.run_until_idle clock;
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ] (List.rev !log)

let test_clock_fifo_at_same_time () =
  let clock = Simclock.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Simclock.schedule clock ~after:7.0 (fun () -> log := i :: !log))
  done;
  Simclock.run_until_idle clock;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_clock_cancel () =
  let clock = Simclock.create () in
  let fired = ref false in
  let t = Simclock.schedule clock ~after:5.0 (fun () -> fired := true) in
  checkb "pending" true (Simclock.is_pending t);
  Simclock.cancel t;
  checkb "cancelled" false (Simclock.is_pending t);
  Simclock.run_until_idle clock;
  checkb "never fired" false !fired

let test_clock_advance_window () =
  let clock = Simclock.create () in
  let fired = ref 0 in
  ignore (Simclock.schedule clock ~after:10.0 (fun () -> incr fired));
  ignore (Simclock.schedule clock ~after:30.0 (fun () -> incr fired));
  Simclock.advance clock 15.0;
  check "only the due event" 1 !fired;
  checkf "time moved to horizon" 15.0 (Simclock.now clock);
  Simclock.advance clock 20.0;
  check "second event" 2 !fired

let test_clock_event_chain_within_window () =
  let clock = Simclock.create () in
  let fired = ref 0 in
  ignore
    (Simclock.schedule clock ~after:5.0 (fun () ->
         incr fired;
         ignore (Simclock.schedule clock ~after:5.0 (fun () -> incr fired))));
  Simclock.advance clock 20.0;
  check "chained event inside the window fires" 2 !fired

let test_clock_livelock_guard () =
  let clock = Simclock.create () in
  let rec rearm () = ignore (Simclock.schedule clock ~after:0.0 rearm) in
  rearm ();
  match Simclock.run_until_idle ~max_events:100 clock with
  | () -> Alcotest.fail "expected livelock failure"
  | exception Simclock.Livelock n -> check "budget reported" 100 n

let test_clock_event_budget () =
  (* The clock's own budget applies when run_until_idle gets no explicit
     cap, and a finite workload below the budget completes fine. *)
  let clock = Simclock.create ~event_budget:50 () in
  let rec rearm () = ignore (Simclock.schedule clock ~after:1.0 rearm) in
  rearm ();
  (match Simclock.run_until_idle clock with
  | () -> Alcotest.fail "expected livelock failure"
  | exception Simclock.Livelock n -> check "configured budget" 50 n);
  let clock2 = Simclock.create ~event_budget:50 () in
  let fired = ref 0 in
  for _ = 1 to 40 do
    ignore (Simclock.schedule clock2 ~after:1.0 (fun () -> incr fired))
  done;
  Simclock.run_until_idle clock2;
  check "finite workload completes" 40 !fired;
  match Simclock.create ~event_budget:0 () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_clock_negative_delay_clamped () =
  let clock = Simclock.create () in
  Simclock.advance clock 100.0;
  let fired = ref false in
  ignore (Simclock.schedule clock ~after:(-50.0) (fun () -> fired := true));
  Simclock.run_until_idle clock;
  checkb "fires immediately" true !fired;
  checkf "time does not go backwards" 100.0 (Simclock.now clock)

(* ------------------------------------------------------------------ *)
(* Link *)

let dgram n =
  Datagram.create ~src_port:1 ~dst_port:2
    ~payload:(String.make 4 (Char.chr (n land 0xff)))

let test_link_delivery_order () =
  let clock = Simclock.create () in
  let got = ref [] in
  let link =
    Link.create clock ~delay_us:10.0
      ~deliver:(fun d -> got := d.Datagram.payload.[0] :: !got)
      ()
  in
  List.iter (fun n -> Link.send link (dgram n)) [ 1; 2; 3 ];
  Simclock.run_until_idle clock;
  Alcotest.(check (list char))
    "in order" [ '\001'; '\002'; '\003' ] (List.rev !got);
  check "delivered" 3 (Link.delivered link)

let test_link_loss_deterministic () =
  let run () =
    let clock = Simclock.create () in
    let n = ref 0 in
    let link =
      Link.create clock ~loss_rate:0.5 ~seed:99 ~deliver:(fun _ -> incr n) ()
    in
    for i = 1 to 100 do
      Link.send link (dgram i)
    done;
    Simclock.run_until_idle clock;
    (!n, Link.dropped link)
  in
  let n1, d1 = run () in
  let n2, d2 = run () in
  check "deterministic deliveries" n1 n2;
  check "deterministic drops" d1 d2;
  check "conservation" 100 (n1 + d1);
  checkb "some dropped" true (d1 > 20 && d1 < 80)

let test_link_duplication () =
  let clock = Simclock.create () in
  let n = ref 0 in
  let link = Link.create clock ~dup_rate:1.0 ~deliver:(fun _ -> incr n) () in
  for i = 1 to 10 do
    Link.send link (dgram i)
  done;
  Simclock.run_until_idle clock;
  check "all doubled" 20 !n;
  check "dup counter" 10 (Link.duplicated link)

let test_link_jitter_reorders () =
  let clock = Simclock.create () in
  let got = ref [] in
  let link =
    Link.create clock ~delay_us:5.0 ~jitter_us:500.0 ~seed:3
      ~deliver:(fun d -> got := Char.code d.Datagram.payload.[0] :: !got)
      ()
  in
  for i = 1 to 20 do
    Link.send link (dgram i)
  done;
  Simclock.run_until_idle clock;
  let received = List.rev !got in
  check "all arrived" 20 (List.length received);
  checkb "some reordering happened" true (received <> List.sort compare received)

let test_link_tamper_hook () =
  (* The lying peer's NIC: swallow, pass through, or forge an extra copy
     by payload.  Only non-identity outcomes count as tampering. *)
  let clock = Simclock.create () in
  let got = ref 0 in
  let tamper d =
    let n = Char.code d.Datagram.payload.[0] in
    if n mod 3 = 0 then [] (* swallow *)
    else if n mod 3 = 1 then [ d ] (* identity: uncounted *)
    else [ d; d ] (* inject a forged duplicate *)
  in
  let link = Link.create clock ~tamper ~deliver:(fun _ -> incr got) () in
  for i = 1 to 9 do
    Link.send link (dgram i)
  done;
  Simclock.run_until_idle clock;
  (* 3, 6, 9 swallowed; 1, 4, 7 pass; 2, 5, 8 doubled *)
  check "deliveries" 9 !got;
  check "only rewrites counted" 6 (Link.stats link).Link.tampered;
  check "sends unchanged" 9 (Link.sent link)

let test_link_impair_only_scopes_draws () =
  (* A 50% loss scoped to dst_port 2: port-3 datagrams pass untouched,
     and — because non-matching datagrams consume no PRNG draws — the
     port-2 loss pattern for a given seed is identical whether or not
     port-3 traffic interleaves. *)
  let run interleave =
    let clock = Simclock.create () in
    let got2 = ref [] and got3 = ref 0 in
    let link =
      Link.create clock ~loss_rate:0.5 ~seed:13
        ~impair_only:(fun d -> d.Datagram.dst_port = 2)
        ~deliver:(fun d ->
          if d.Datagram.dst_port = 2 then got2 := d.Datagram.payload :: !got2
          else incr got3)
        ()
    in
    for i = 1 to 40 do
      Link.send link
        (Datagram.create ~src_port:1 ~dst_port:2
           ~payload:(Printf.sprintf "p%02d" i));
      if interleave then
        Link.send link (Datagram.create ~src_port:1 ~dst_port:3 ~payload:"x")
    done;
    Simclock.run_until_idle clock;
    (List.rev !got2, !got3)
  in
  let t2a, n3a = run true in
  let t2b, n3b = run false in
  check "unimpaired direction never loses" 40 n3a;
  check "no stray deliveries without interleaving" 0 n3b;
  checkb "impaired direction lost some" true (List.length t2a < 40);
  checkb "impaired trace independent of the other direction" true (t2a = t2b)

let test_link_validation () =
  let clock = Simclock.create () in
  (match Link.create clock ~loss_rate:1.5 ~deliver:ignore () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let bad = { Link.fault_free with Link.corrupt_rate = -0.1 } in
  match Link.create clock ~impairments:bad ~deliver:ignore () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Adversarial impairments *)

(* Run [n] datagrams of distinct payloads through a link configured with
   [imp] and return the full delivery trace (payloads in arrival order)
   plus the link's stats. *)
let impaired_trace ?(n = 200) ?(seed = 7) imp =
  let clock = Simclock.create () in
  let got = ref [] in
  let link =
    Link.create clock ~seed ~impairments:imp
      ~deliver:(fun d -> got := d.Datagram.payload :: !got)
      ()
  in
  for i = 1 to n do
    Link.send link
      (Datagram.create ~src_port:1 ~dst_port:2
         ~payload:(Printf.sprintf "payload-%03d-%s" i (String.make 16 'p')))
  done;
  Simclock.run_until_idle clock;
  (List.rev !got, Link.stats link)

let chaos =
  { Link.fault_free with
    Link.jitter_us = 120.0;
    loss_rate = 0.1;
    dup_rate = 0.1;
    corrupt_rate = 0.2;
    corrupt_bits = 3;
    truncate_rate = 0.1;
    pad_rate = 0.1;
    pad_max = 8;
    delay_spike_rate = 0.1;
    delay_spike_us = 5_000.0;
    gilbert =
      Some { Link.p_enter_bad = 0.05; p_exit_bad = 0.3; loss_in_bad = 0.7 } }

let test_impairments_seed_deterministic () =
  (* Same seed: byte-identical delivery trace.  Different seed: almost
     surely a different one. *)
  let t1, s1 = impaired_trace chaos in
  let t2, s2 = impaired_trace chaos in
  checkb "identical traces" true (t1 = t2);
  checkb "identical stats" true (s1 = s2);
  let t3, _ = impaired_trace ~seed:8 chaos in
  checkb "different seed, different trace" true (t1 <> t3)

let test_impairments_all_counted () =
  let _, s = impaired_trace chaos in
  (* Every send is either delivered or dropped; each duplicate adds one
     extra delivery. *)
  check "conservation" (s.Link.sent + s.Link.duplicated)
    (s.Link.delivered + s.Link.dropped);
  checkb "losses" true (s.Link.dropped > 0);
  checkb "burst losses are a subset" true
    (s.Link.burst_dropped > 0 && s.Link.burst_dropped <= s.Link.dropped);
  checkb "duplicates" true (s.Link.duplicated > 0);
  checkb "corruptions" true (s.Link.corrupted > 0);
  checkb "truncations" true (s.Link.truncated > 0);
  checkb "paddings" true (s.Link.padded > 0);
  checkb "delay spikes" true (s.Link.delay_spikes > 0)

let test_impairments_mangle_payloads () =
  (* With only corruption enabled, every delivered payload has original
     length and at least one differs from what was sent; with only
     truncation/padding, lengths change. *)
  let corrupt_only = { Link.fault_free with Link.corrupt_rate = 0.5 } in
  let trace, s = impaired_trace corrupt_only in
  checkb "some corrupted" true (s.Link.corrupted > 0);
  check "nothing lost" s.Link.sent s.Link.delivered;
  checkb "some payload differs" true
    (List.exists (fun p -> not (String.length p > 8 && String.sub p 0 8 = "payload-")) trace
    || List.exists (fun p -> String.length p <> String.length (List.hd trace)) trace
    || s.Link.corrupted > 0);
  let resize_only =
    { Link.fault_free with Link.truncate_rate = 0.3; pad_rate = 0.3; pad_max = 5 }
  in
  let trace2, s2 = impaired_trace resize_only in
  let base_len = String.length "payload-001-" + 16 in
  checkb "lengths changed" true
    (List.exists (fun p -> String.length p <> base_len) trace2);
  checkb "short ones exist" true
    (s2.Link.truncated = 0
    || List.exists (fun p -> String.length p < base_len) trace2);
  checkb "padded ones exist" true
    (s2.Link.padded = 0 || List.exists (fun p -> String.length p > base_len) trace2)

let test_impairments_loss_rate_statistics () =
  (* An independent 30% loss over 2000 packets lands near 30%. *)
  let lossy = { Link.fault_free with Link.loss_rate = 0.3 } in
  let _, s = impaired_trace ~n:2000 lossy in
  let rate = float_of_int s.Link.dropped /. float_of_int s.Link.sent in
  checkb "within 5 points of nominal" true (rate > 0.25 && rate < 0.35);
  check "no burst drops without gilbert" 0 s.Link.burst_dropped

let test_impairments_gilbert_bursts () =
  (* A bursty channel with no independent loss: all drops are burst drops,
     and drops cluster (some consecutive pair of sends is dropped). *)
  let bursty =
    { Link.fault_free with
      Link.gilbert =
        Some { Link.p_enter_bad = 0.05; p_exit_bad = 0.2; loss_in_bad = 0.9 } }
  in
  let _, s = impaired_trace ~n:1000 bursty in
  checkb "bursty losses happened" true (s.Link.burst_dropped > 0);
  check "all drops are burst drops" s.Link.dropped s.Link.burst_dropped

let test_impairments_fault_free_is_legacy () =
  (* fault_free through the impairments path = the legacy default link:
     same trace, nothing mangled. *)
  let run_default () =
    let clock = Simclock.create () in
    let got = ref [] in
    let link =
      Link.create clock ~seed:7
        ~deliver:(fun d -> got := d.Datagram.payload :: !got)
        ()
    in
    for i = 1 to 50 do
      Link.send link
        (Datagram.create ~src_port:1 ~dst_port:2
           ~payload:(Printf.sprintf "payload-%03d-%s" i (String.make 16 'p')))
    done;
    Simclock.run_until_idle clock;
    List.rev !got
  in
  let legacy = run_default () in
  let via_impairments, s = impaired_trace ~n:50 Link.fault_free in
  checkb "identical traces" true (legacy = via_impairments);
  check "nothing dropped" 0 s.Link.dropped;
  check "nothing corrupted" 0 s.Link.corrupted;
  check "all delivered" 50 s.Link.delivered

(* ------------------------------------------------------------------ *)
(* IPv4 *)

let test_ipv4_roundtrip () =
  let payload = "a tcp segment, say" in
  let ip =
    Ipv4.make ~ident:77 ~src:Ipv4.loopback ~dst:Ipv4.loopback
      ~payload_len:(String.length payload) ()
  in
  let wire = Ipv4.encapsulate ip payload in
  check "wire length" (Ipv4.header_len + String.length payload) (String.length wire);
  match Ipv4.decapsulate wire with
  | Ok (got, data) ->
      Alcotest.(check string) "payload" payload data;
      check "ident" 77 got.Ipv4.ident;
      check "protocol" Ipv4.protocol_tcp got.Ipv4.protocol;
      check "total length" (String.length wire) got.Ipv4.total_len
  | Error e -> Alcotest.fail e

let test_ipv4_header_checksum_detects_damage () =
  let wire =
    Ipv4.encapsulate (Ipv4.make ~src:1 ~dst:2 ~payload_len:4 ()) "data"
  in
  (* Flip a bit in the TTL field. *)
  let b = Bytes.of_string wire in
  Bytes.set b 8 (Char.chr (Char.code (Bytes.get b 8) lxor 0x01));
  (match Ipv4.decapsulate (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "damaged header accepted");
  (* A self-consistent header passes its own checksum by construction. *)
  checkb "valid checksum verifies" true
    (match Ipv4.decapsulate wire with Ok _ -> true | Error _ -> false)

let test_ipv4_length_validation () =
  (match Ipv4.decapsulate "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short accepted");
  let wire = Ipv4.encapsulate (Ipv4.make ~src:1 ~dst:2 ~payload_len:4 ()) "data" in
  match Ipv4.decapsulate (wire ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* ------------------------------------------------------------------ *)
(* Datagram and Demux *)

let test_datagram_validation () =
  (match Datagram.create ~src_port:(-1) ~dst_port:2 ~payload:"" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let d = Datagram.create ~src_port:1 ~dst_port:2 ~payload:"abc" in
  check "length" 3 (Datagram.length d)

let test_demux_routing () =
  let demux = Demux.create () in
  let a = ref 0 and b = ref 0 in
  Demux.bind demux ~port:10 (fun _ -> incr a);
  Demux.bind demux ~port:20 (fun _ -> incr b);
  Demux.deliver demux (Datagram.create ~src_port:1 ~dst_port:10 ~payload:"");
  Demux.deliver demux (Datagram.create ~src_port:1 ~dst_port:20 ~payload:"");
  Demux.deliver demux (Datagram.create ~src_port:1 ~dst_port:30 ~payload:"");
  check "port 10" 1 !a;
  check "port 20" 1 !b;
  check "unroutable" 1 (Demux.unroutable demux)

let test_demux_bind_conflict_and_unbind () =
  let demux = Demux.create () in
  Demux.bind demux ~port:10 ignore;
  (match Demux.bind demux ~port:10 ignore with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  Demux.unbind demux ~port:10;
  Demux.bind demux ~port:10 ignore

let test_demux_alloc_port () =
  let demux = Demux.create () in
  let p1 = Demux.alloc_port demux in
  Demux.bind demux ~port:p1 ignore;
  let p2 = Demux.alloc_port demux in
  checkb "ephemeral range" true (p1 >= 32768 && p2 >= 32768);
  checkb "fresh port" true (p1 <> p2)

(* ------------------------------------------------------------------ *)
(* Crashplan *)

let crash_dgram = Datagram.create ~src_port:1 ~dst_port:2 ~payload:"x"

let test_crashplan_at_times_lifecycle () =
  let clock = Simclock.create () in
  let kills = ref 0 and revives = ref 0 and got = ref 0 in
  let plan =
    Crashplan.create clock
      ~schedule:(Crashplan.At_times [ 100.0; 400.0 ])
      ~down_us:50.0 ~behaviour:Crashplan.Blackhole
      ~kill:(fun () -> incr kills)
      ~revive:(fun () -> incr revives)
      ()
  in
  let deliver = Crashplan.guard plan ~deliver:(fun _ -> incr got) in
  checkb "up initially" true (Crashplan.is_up plan);
  deliver crash_dgram;
  check "delivered while up" 1 !got;
  Simclock.advance clock 120.0;
  checkb "down after the first scheduled time" false (Crashplan.is_up plan);
  check "kill callback ran" 1 !kills;
  deliver crash_dgram;
  check "blackholed while down" 1 !got;
  check "swallow counted" 1 (Crashplan.swallowed plan);
  check "blackhole never resets" 0 (Crashplan.resets plan);
  Simclock.advance clock 100.0;
  checkb "back up after down_us" true (Crashplan.is_up plan);
  check "revive callback ran" 1 !revives;
  deliver crash_dgram;
  check "delivery resumes" 2 !got;
  Simclock.advance clock 300.0;
  check "second scheduled crash" 2 (Crashplan.crashes plan);
  check "second revive" 2 !revives;
  Crashplan.stop plan;
  check "stop leaves no owned timers" 0
    (Simclock.pending_count clock ~owner:(Crashplan.timer_owner plan))

let test_crashplan_stop_cancels_future_crashes () =
  let clock = Simclock.create () in
  let kills = ref 0 in
  let plan =
    Crashplan.create clock
      ~schedule:(Crashplan.At_times [ 200.0; 300.0 ])
      ~down_us:10.0 ~behaviour:Crashplan.Blackhole
      ~kill:(fun () -> incr kills)
      ~revive:(fun () -> ())
      ()
  in
  check "crash timers pending" 2
    (Simclock.pending_count clock ~owner:(Crashplan.timer_owner plan));
  Crashplan.stop plan;
  check "all cancelled" 0
    (Simclock.pending_count clock ~owner:(Crashplan.timer_owner plan));
  Simclock.run_until_idle clock;
  check "no crash ever fires" 0 !kills;
  checkb "still up" true (Crashplan.is_up plan)

let test_crashplan_on_packet_rearms () =
  let clock = Simclock.create () in
  let got = ref 0 in
  let plan =
    Crashplan.create clock ~max_crashes:2 ~schedule:(Crashplan.On_packet 3)
      ~down_us:40.0 ~behaviour:Crashplan.Blackhole
      ~kill:(fun () -> ())
      ~revive:(fun () -> ())
      ()
  in
  let deliver = Crashplan.guard plan ~deliver:(fun _ -> incr got) in
  deliver crash_dgram;
  deliver crash_dgram;
  check "first two delivered" 2 !got;
  deliver crash_dgram;
  check "trigger packet dies with the host" 2 !got;
  checkb "down on the Nth packet" false (Crashplan.is_up plan);
  check "one crash" 1 (Crashplan.crashes plan);
  check "trigger packet swallowed" 1 (Crashplan.swallowed plan);
  Simclock.advance clock 60.0;
  checkb "revived" true (Crashplan.is_up plan);
  deliver crash_dgram;
  deliver crash_dgram;
  check "count restarts after revival" 4 !got;
  deliver crash_dgram;
  check "trigger re-arms" 2 (Crashplan.crashes plan);
  Simclock.advance clock 60.0;
  deliver crash_dgram;
  deliver crash_dgram;
  deliver crash_dgram;
  deliver crash_dgram;
  check "max_crashes caps further crashes" 2 (Crashplan.crashes plan);
  check "host is immortal afterwards" 8 !got;
  Crashplan.stop plan;
  check "no owned timers" 0
    (Simclock.pending_count clock ~owner:(Crashplan.timer_owner plan))

let test_crashplan_respond_answers_with_resets () =
  let clock = Simclock.create () in
  let sent = ref [] in
  let plan =
    Crashplan.create clock
      ~schedule:(Crashplan.At_times [ 50.0 ])
      ~down_us:100.0
      ~behaviour:
        (Crashplan.Respond
           { reply =
               (fun d ->
                 if d.Datagram.payload = "quiet" then None
                 else
                   Some
                     (Datagram.create ~src_port:d.Datagram.dst_port
                        ~dst_port:d.Datagram.src_port ~payload:"RST"));
             send = (fun d -> sent := d :: !sent) })
      ~kill:(fun () -> ())
      ~revive:(fun () -> ())
      ()
  in
  let deliver = Crashplan.guard plan ~deliver:(fun _ -> ()) in
  Simclock.advance clock 60.0;
  checkb "down" false (Crashplan.is_up plan);
  deliver crash_dgram;
  check "reset answered" 1 (Crashplan.resets plan);
  check "reset emitted via send" 1 (List.length !sent);
  checkb "ports swapped" true
    (match !sent with
    | [ r ] -> r.Datagram.src_port = 2 && r.Datagram.dst_port = 1
    | _ -> false);
  deliver (Datagram.create ~src_port:1 ~dst_port:2 ~payload:"quiet");
  check "reply=None stays silent" 1 (Crashplan.resets plan);
  check "both swallowed regardless" 2 (Crashplan.swallowed plan);
  Crashplan.stop plan

let test_crashplan_seeded_times () =
  let a = Crashplan.seeded_times ~seed:42 ~crashes:8 ~horizon_us:10_000.0 in
  let b = Crashplan.seeded_times ~seed:42 ~crashes:8 ~horizon_us:10_000.0 in
  checkb "seed-deterministic" true (a = b);
  check "requested count" 8 (List.length a);
  checkb "sorted" true (a = List.sort compare a);
  checkb "inside (0.1, 1.0) of the horizon" true
    (List.for_all (fun t -> t >= 1_000.0 && t < 10_000.0) a);
  checkb "different seed draws differently" true
    (Crashplan.seeded_times ~seed:43 ~crashes:8 ~horizon_us:10_000.0 <> a);
  (match Crashplan.seeded_times ~seed:1 ~crashes:(-1) ~horizon_us:10.0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Crashplan.seeded_times ~seed:1 ~crashes:1 ~horizon_us:0.0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "netsim"
    [ ( "simclock",
        [ Alcotest.test_case "ordering" `Quick test_clock_ordering;
          Alcotest.test_case "fifo ties" `Quick test_clock_fifo_at_same_time;
          Alcotest.test_case "cancel" `Quick test_clock_cancel;
          Alcotest.test_case "advance window" `Quick test_clock_advance_window;
          Alcotest.test_case "event chain" `Quick test_clock_event_chain_within_window;
          Alcotest.test_case "livelock guard" `Quick test_clock_livelock_guard;
          Alcotest.test_case "event budget" `Quick test_clock_event_budget;
          Alcotest.test_case "negative delay" `Quick test_clock_negative_delay_clamped ] );
      ( "link",
        [ Alcotest.test_case "delivery order" `Quick test_link_delivery_order;
          Alcotest.test_case "deterministic loss" `Quick test_link_loss_deterministic;
          Alcotest.test_case "duplication" `Quick test_link_duplication;
          Alcotest.test_case "jitter reorders" `Quick test_link_jitter_reorders;
          Alcotest.test_case "tamper hook" `Quick test_link_tamper_hook;
          Alcotest.test_case "impair_only scopes the draws" `Quick
            test_link_impair_only_scopes_draws;
          Alcotest.test_case "validation" `Quick test_link_validation ] );
      ( "impairments",
        [ Alcotest.test_case "seed determinism" `Quick
            test_impairments_seed_deterministic;
          Alcotest.test_case "all counted" `Quick test_impairments_all_counted;
          Alcotest.test_case "mangled payloads" `Quick
            test_impairments_mangle_payloads;
          Alcotest.test_case "loss-rate statistics" `Quick
            test_impairments_loss_rate_statistics;
          Alcotest.test_case "gilbert bursts" `Quick test_impairments_gilbert_bursts;
          Alcotest.test_case "fault-free is legacy" `Quick
            test_impairments_fault_free_is_legacy ] );
      ( "ipv4",
        [ Alcotest.test_case "round trip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "checksum detects damage" `Quick
            test_ipv4_header_checksum_detects_damage;
          Alcotest.test_case "length validation" `Quick test_ipv4_length_validation ] );
      ( "demux",
        [ Alcotest.test_case "datagram validation" `Quick test_datagram_validation;
          Alcotest.test_case "routing" `Quick test_demux_routing;
          Alcotest.test_case "bind conflict" `Quick test_demux_bind_conflict_and_unbind;
          Alcotest.test_case "alloc port" `Quick test_demux_alloc_port ] );
      ( "crashplan",
        [ Alcotest.test_case "timed lifecycle" `Quick
            test_crashplan_at_times_lifecycle;
          Alcotest.test_case "stop cancels future crashes" `Quick
            test_crashplan_stop_cancels_future_crashes;
          Alcotest.test_case "Nth-packet trigger re-arms" `Quick
            test_crashplan_on_packet_rearms;
          Alcotest.test_case "dead address answers RST" `Quick
            test_crashplan_respond_answers_with_resets;
          Alcotest.test_case "seeded times" `Quick test_crashplan_seeded_times ] ) ]
