(* Virtual clock, link impairments and kernel demultiplexing. *)

open Ilp_netsim

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Simclock *)

let test_clock_ordering () =
  let clock = Simclock.create () in
  let log = ref [] in
  let ev tag = fun () -> log := tag :: !log in
  ignore (Simclock.schedule clock ~after:30.0 (ev "c"));
  ignore (Simclock.schedule clock ~after:10.0 (ev "a"));
  ignore (Simclock.schedule clock ~after:20.0 (ev "b"));
  Simclock.run_until_idle clock;
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ] (List.rev !log)

let test_clock_fifo_at_same_time () =
  let clock = Simclock.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Simclock.schedule clock ~after:7.0 (fun () -> log := i :: !log))
  done;
  Simclock.run_until_idle clock;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_clock_cancel () =
  let clock = Simclock.create () in
  let fired = ref false in
  let t = Simclock.schedule clock ~after:5.0 (fun () -> fired := true) in
  checkb "pending" true (Simclock.is_pending t);
  Simclock.cancel t;
  checkb "cancelled" false (Simclock.is_pending t);
  Simclock.run_until_idle clock;
  checkb "never fired" false !fired

let test_clock_advance_window () =
  let clock = Simclock.create () in
  let fired = ref 0 in
  ignore (Simclock.schedule clock ~after:10.0 (fun () -> incr fired));
  ignore (Simclock.schedule clock ~after:30.0 (fun () -> incr fired));
  Simclock.advance clock 15.0;
  check "only the due event" 1 !fired;
  checkf "time moved to horizon" 15.0 (Simclock.now clock);
  Simclock.advance clock 20.0;
  check "second event" 2 !fired

let test_clock_event_chain_within_window () =
  let clock = Simclock.create () in
  let fired = ref 0 in
  ignore
    (Simclock.schedule clock ~after:5.0 (fun () ->
         incr fired;
         ignore (Simclock.schedule clock ~after:5.0 (fun () -> incr fired))));
  Simclock.advance clock 20.0;
  check "chained event inside the window fires" 2 !fired

let test_clock_livelock_guard () =
  let clock = Simclock.create () in
  let rec rearm () = ignore (Simclock.schedule clock ~after:0.0 rearm) in
  rearm ();
  match Simclock.run_until_idle ~max_events:100 clock with
  | () -> Alcotest.fail "expected livelock failure"
  | exception Failure _ -> ()

let test_clock_negative_delay_clamped () =
  let clock = Simclock.create () in
  Simclock.advance clock 100.0;
  let fired = ref false in
  ignore (Simclock.schedule clock ~after:(-50.0) (fun () -> fired := true));
  Simclock.run_until_idle clock;
  checkb "fires immediately" true !fired;
  checkf "time does not go backwards" 100.0 (Simclock.now clock)

(* ------------------------------------------------------------------ *)
(* Link *)

let dgram n =
  Datagram.create ~src_port:1 ~dst_port:2
    ~payload:(String.make 4 (Char.chr (n land 0xff)))

let test_link_delivery_order () =
  let clock = Simclock.create () in
  let got = ref [] in
  let link =
    Link.create clock ~delay_us:10.0
      ~deliver:(fun d -> got := d.Datagram.payload.[0] :: !got)
      ()
  in
  List.iter (fun n -> Link.send link (dgram n)) [ 1; 2; 3 ];
  Simclock.run_until_idle clock;
  Alcotest.(check (list char))
    "in order" [ '\001'; '\002'; '\003' ] (List.rev !got);
  check "delivered" 3 (Link.delivered link)

let test_link_loss_deterministic () =
  let run () =
    let clock = Simclock.create () in
    let n = ref 0 in
    let link =
      Link.create clock ~loss_rate:0.5 ~seed:99 ~deliver:(fun _ -> incr n) ()
    in
    for i = 1 to 100 do
      Link.send link (dgram i)
    done;
    Simclock.run_until_idle clock;
    (!n, Link.dropped link)
  in
  let n1, d1 = run () in
  let n2, d2 = run () in
  check "deterministic deliveries" n1 n2;
  check "deterministic drops" d1 d2;
  check "conservation" 100 (n1 + d1);
  checkb "some dropped" true (d1 > 20 && d1 < 80)

let test_link_duplication () =
  let clock = Simclock.create () in
  let n = ref 0 in
  let link = Link.create clock ~dup_rate:1.0 ~deliver:(fun _ -> incr n) () in
  for i = 1 to 10 do
    Link.send link (dgram i)
  done;
  Simclock.run_until_idle clock;
  check "all doubled" 20 !n;
  check "dup counter" 10 (Link.duplicated link)

let test_link_jitter_reorders () =
  let clock = Simclock.create () in
  let got = ref [] in
  let link =
    Link.create clock ~delay_us:5.0 ~jitter_us:500.0 ~seed:3
      ~deliver:(fun d -> got := Char.code d.Datagram.payload.[0] :: !got)
      ()
  in
  for i = 1 to 20 do
    Link.send link (dgram i)
  done;
  Simclock.run_until_idle clock;
  let received = List.rev !got in
  check "all arrived" 20 (List.length received);
  checkb "some reordering happened" true (received <> List.sort compare received)

let test_link_validation () =
  let clock = Simclock.create () in
  match Link.create clock ~loss_rate:1.5 ~deliver:ignore () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* IPv4 *)

let test_ipv4_roundtrip () =
  let payload = "a tcp segment, say" in
  let ip =
    Ipv4.make ~ident:77 ~src:Ipv4.loopback ~dst:Ipv4.loopback
      ~payload_len:(String.length payload) ()
  in
  let wire = Ipv4.encapsulate ip payload in
  check "wire length" (Ipv4.header_len + String.length payload) (String.length wire);
  match Ipv4.decapsulate wire with
  | Ok (got, data) ->
      Alcotest.(check string) "payload" payload data;
      check "ident" 77 got.Ipv4.ident;
      check "protocol" Ipv4.protocol_tcp got.Ipv4.protocol;
      check "total length" (String.length wire) got.Ipv4.total_len
  | Error e -> Alcotest.fail e

let test_ipv4_header_checksum_detects_damage () =
  let wire =
    Ipv4.encapsulate (Ipv4.make ~src:1 ~dst:2 ~payload_len:4 ()) "data"
  in
  (* Flip a bit in the TTL field. *)
  let b = Bytes.of_string wire in
  Bytes.set b 8 (Char.chr (Char.code (Bytes.get b 8) lxor 0x01));
  (match Ipv4.decapsulate (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "damaged header accepted");
  (* A self-consistent header passes its own checksum by construction. *)
  checkb "valid checksum verifies" true
    (match Ipv4.decapsulate wire with Ok _ -> true | Error _ -> false)

let test_ipv4_length_validation () =
  (match Ipv4.decapsulate "short" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short accepted");
  let wire = Ipv4.encapsulate (Ipv4.make ~src:1 ~dst:2 ~payload_len:4 ()) "data" in
  match Ipv4.decapsulate (wire ^ "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* ------------------------------------------------------------------ *)
(* Datagram and Demux *)

let test_datagram_validation () =
  (match Datagram.create ~src_port:(-1) ~dst_port:2 ~payload:"" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let d = Datagram.create ~src_port:1 ~dst_port:2 ~payload:"abc" in
  check "length" 3 (Datagram.length d)

let test_demux_routing () =
  let demux = Demux.create () in
  let a = ref 0 and b = ref 0 in
  Demux.bind demux ~port:10 (fun _ -> incr a);
  Demux.bind demux ~port:20 (fun _ -> incr b);
  Demux.deliver demux (Datagram.create ~src_port:1 ~dst_port:10 ~payload:"");
  Demux.deliver demux (Datagram.create ~src_port:1 ~dst_port:20 ~payload:"");
  Demux.deliver demux (Datagram.create ~src_port:1 ~dst_port:30 ~payload:"");
  check "port 10" 1 !a;
  check "port 20" 1 !b;
  check "unroutable" 1 (Demux.unroutable demux)

let test_demux_bind_conflict_and_unbind () =
  let demux = Demux.create () in
  Demux.bind demux ~port:10 ignore;
  (match Demux.bind demux ~port:10 ignore with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  Demux.unbind demux ~port:10;
  Demux.bind demux ~port:10 ignore

let test_demux_alloc_port () =
  let demux = Demux.create () in
  let p1 = Demux.alloc_port demux in
  Demux.bind demux ~port:p1 ignore;
  let p2 = Demux.alloc_port demux in
  checkb "ephemeral range" true (p1 >= 32768 && p2 >= 32768);
  checkb "fresh port" true (p1 <> p2)

let () =
  Alcotest.run "netsim"
    [ ( "simclock",
        [ Alcotest.test_case "ordering" `Quick test_clock_ordering;
          Alcotest.test_case "fifo ties" `Quick test_clock_fifo_at_same_time;
          Alcotest.test_case "cancel" `Quick test_clock_cancel;
          Alcotest.test_case "advance window" `Quick test_clock_advance_window;
          Alcotest.test_case "event chain" `Quick test_clock_event_chain_within_window;
          Alcotest.test_case "livelock guard" `Quick test_clock_livelock_guard;
          Alcotest.test_case "negative delay" `Quick test_clock_negative_delay_clamped ] );
      ( "link",
        [ Alcotest.test_case "delivery order" `Quick test_link_delivery_order;
          Alcotest.test_case "deterministic loss" `Quick test_link_loss_deterministic;
          Alcotest.test_case "duplication" `Quick test_link_duplication;
          Alcotest.test_case "jitter reorders" `Quick test_link_jitter_reorders;
          Alcotest.test_case "validation" `Quick test_link_validation ] );
      ( "ipv4",
        [ Alcotest.test_case "round trip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "checksum detects damage" `Quick
            test_ipv4_header_checksum_detects_damage;
          Alcotest.test_case "length validation" `Quick test_ipv4_length_validation ] );
      ( "demux",
        [ Alcotest.test_case "datagram validation" `Quick test_datagram_validation;
          Alcotest.test_case "routing" `Quick test_demux_routing;
          Alcotest.test_case "bind conflict" `Quick test_demux_bind_conflict_and_unbind;
          Alcotest.test_case "alloc port" `Quick test_demux_alloc_port ] ) ]
