(* RPC messages and the file-transfer client/server over the full stack. *)

open Ilp_memsim
module Simclock = Ilp_netsim.Simclock
module Link = Ilp_netsim.Link
module Demux = Ilp_netsim.Demux
module Datagram = Ilp_netsim.Datagram
module Socket = Ilp_tcp.Socket
module Engine = Ilp_core.Engine
open Ilp_rpc

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Message formats *)

(* Build a plaintext the way the engine does: length field + message +
   zero alignment to 8 bytes. *)
let plaintext_of ?(length_at_end = false) body =
  let enc_len = 4 + String.length body in
  let total = (enc_len + 7) / 8 * 8 in
  let total = max total 8 in
  let len_word =
    String.init 4 (fun i -> Char.chr ((enc_len lsr ((3 - i) * 8)) land 0xff))
  in
  if length_at_end then
    let pad = String.make (total - String.length body - 4) '\000' in
    body ^ pad ^ len_word
  else len_word ^ body ^ String.make (total - enc_len) '\000'

let test_request_roundtrip () =
  let req =
    Messages.request ~file_name:"paper.dat" ~copies:3 ~max_reply:1024 ()
  in
  let plaintext = plaintext_of (Messages.encode_request req) in
  match Messages.decode_request plaintext with
  | Ok got ->
      check_s "name" req.Messages.file_name got.Messages.file_name;
      check "copies" 3 got.Messages.copies;
      check "max reply" 1024 got.Messages.max_reply
  | Error e -> Alcotest.fail e

let test_request_roundtrip_trailer () =
  let req = Messages.request ~file_name:"f" ~copies:1 ~max_reply:64 () in
  let plaintext = plaintext_of ~length_at_end:true (Messages.encode_request req) in
  match Messages.decode_request ~length_at_end:true plaintext with
  | Ok got -> check_s "name" "f" got.Messages.file_name
  | Error e -> Alcotest.fail e

let test_reply_roundtrip () =
  let hdr =
    { Messages.status = Messages.Ok; copy = 2; file_offset = 4096; total_len = 15360;
      data_len = 7 }
  in
  let body = Messages.reply_prefix hdr ^ "payload" in
  let plaintext = plaintext_of body in
  match Messages.decode_reply plaintext with
  | Ok (got, data) ->
      checkb "header" true (got = hdr);
      check_s "data" "payload" data
  | Error e -> Alcotest.fail e

let test_reply_error_status () =
  let hdr =
    { Messages.status = Messages.Not_found; copy = 0; file_offset = 0; total_len = 0;
      data_len = 0 }
  in
  let plaintext = plaintext_of (Messages.reply_prefix hdr) in
  match Messages.decode_reply plaintext with
  | Ok (got, data) ->
      checkb "status" true (got.Messages.status = Messages.Not_found);
      check_s "no data" "" data
  | Error e -> Alcotest.fail e

let test_decode_garbage () =
  (match Messages.decode_request "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted");
  (match Messages.decode_request (String.make 16 '\xff') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Messages.decode_reply (plaintext_of "\x00\x00\x00\x09garbage.") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad reply accepted"

let test_probe_roundtrip () =
  let probe =
    { Messages.p_file_name = "paper.dat"; p_offset = 1536; p_crc = 0xCAFE42;
      p_req_id = 77 }
  in
  let plaintext = plaintext_of (Messages.encode_probe probe) in
  match Messages.decode_ctrl plaintext with
  | Ok (Messages.Probe got, _) -> checkb "probe fields survive" true (got = probe)
  | Ok (Messages.Request _, _) -> Alcotest.fail "probe dispatched as request"
  | Error e -> Alcotest.fail e

let test_request_v2_roundtrip () =
  let req =
    Messages.request ~req_id:42 ~start_copy:1 ~start_offset:2048
      ~file_name:"paper.dat" ~copies:3 ~max_reply:512 ()
  in
  checkb "fault-model fields force the v2 form" false (Messages.request_is_v1 req);
  let plaintext = plaintext_of (Messages.encode_request req) in
  match Messages.decode_ctrl plaintext with
  | Ok (Messages.Request got, _) ->
      checkb "resume fields survive" true (got = req)
  | Ok (Messages.Probe _, _) -> Alcotest.fail "request dispatched as probe"
  | Error e -> Alcotest.fail e

let test_request_v1_wire_unchanged () =
  (* Zero fault-model fields must marshal in the original three-field
     form: the pre-fault-model fixed layout (XDR string + 2 words), so
     clean traces stay byte-identical. *)
  let req = Messages.request ~file_name:"paper.dat" ~copies:2 ~max_reply:512 () in
  checkb "id-less request is v1" true (Messages.request_is_v1 req);
  let enc = Messages.encode_request req in
  (* "paper.dat" as XDR: 4 (length) + 9 + 3 (pad) = 16; plus copies and
     max_reply words. *)
  check "exactly the three-field layout" 24 (String.length enc);
  let v2 =
    Messages.encode_request
      (Messages.request ~req_id:1 ~file_name:"paper.dat" ~copies:2
         ~max_reply:512 ())
  in
  check "v2 carries three more words" (24 + 12) (String.length v2);
  match Messages.decode_ctrl (plaintext_of enc) with
  | Ok (Messages.Request got, _) ->
      checkb "ctrl dispatch recovers the v1 request" true (got = req)
  | Ok (Messages.Probe _, _) -> Alcotest.fail "v1 request dispatched as probe"
  | Error e -> Alcotest.fail e

(* Build a plaintext the way the engine does when the end-to-end CRC32
   trailer is on: the length word covers body + a 4-byte trailer. *)
let plaintext_with_crc_trailer body =
  let enc_len = 4 + String.length body + 4 in
  let total = max ((enc_len + 7) / 8 * 8) 8 in
  let len_word =
    String.init 4 (fun i -> Char.chr ((enc_len lsr ((3 - i) * 8)) land 0xff))
  in
  len_word ^ body ^ "\xde\xad\xbe\xef" ^ String.make (total - enc_len) '\000'

let test_ctrl_dispatch_with_crc_trailer () =
  (* Regression: the ctrl dispatcher counts trailing integer words after
     the file name; an uncounted CRC trailer adds a phantom word and a v1
     request (2 words) mis-dispatches as a probe (3 words). *)
  let req = Messages.request ~file_name:"paper.dat" ~copies:2 ~max_reply:512 () in
  let plaintext = plaintext_with_crc_trailer (Messages.encode_request req) in
  (match Messages.decode_ctrl ~crc_trailer:true plaintext with
  | Ok (Messages.Request got, _) ->
      checkb "request recovered under the trailer" true (got = req)
  | Ok (Messages.Probe _, _) ->
      Alcotest.fail "crc_trailer:true still dispatched as probe"
  | Error e -> Alcotest.fail e);
  (match Messages.decode_ctrl plaintext with
  | Ok (Messages.Request got, _) when got = req ->
      Alcotest.fail "phantom trailer word went unnoticed"
  | _ -> ());
  (* Probes gain the same immunity. *)
  let probe =
    { Messages.p_file_name = "paper.dat"; p_offset = 64; p_crc = 7; p_req_id = 9 }
  in
  match
    Messages.decode_ctrl ~crc_trailer:true
      (plaintext_with_crc_trailer (Messages.encode_probe probe))
  with
  | Ok (Messages.Probe got, _) -> checkb "probe recovered" true (got = probe)
  | Ok (Messages.Request _, _) -> Alcotest.fail "probe dispatched as request"
  | Error e -> Alcotest.fail e

let u32be n = String.init 4 (fun i -> Char.chr ((n lsr ((3 - i) * 8)) land 0xff))

let test_flagged_ctrl_dispatch () =
  (* The capability flag word rides as one extra trailing integer: 4
     words dispatch as a flagged probe, 6 as a flagged request, and the
     decoder surfaces the flags next to the recovered ctrl. *)
  let req =
    Messages.request ~req_id:7 ~file_name:"paper.dat" ~copies:2 ~max_reply:512 ()
  in
  let flagged = Messages.encode_request req ^ u32be Messages.flag_rx_framing in
  (match Messages.decode_ctrl (plaintext_of flagged) with
  | Ok (Messages.Request got, flags) ->
      checkb "request fields survive the flag word" true (got = req);
      checkb "rx-framing flag surfaced" true
        (flags land Messages.flag_rx_framing <> 0)
  | Ok (Messages.Probe _, _) -> Alcotest.fail "flagged request dispatched as probe"
  | Error e -> Alcotest.fail e);
  (match Messages.decode_ctrl (plaintext_of (Messages.encode_request req)) with
  | Ok (Messages.Request _, flags) -> check "unflagged request: flags 0" 0 flags
  | Ok (Messages.Probe _, _) -> Alcotest.fail "v2 request dispatched as probe"
  | Error e -> Alcotest.fail e);
  let probe =
    { Messages.p_file_name = "paper.dat"; p_offset = 128; p_crc = 0xBEEF; p_req_id = 3 }
  in
  let flagged_p = Messages.encode_probe probe ^ u32be Messages.flag_rx_framing in
  (match Messages.decode_ctrl (plaintext_of flagged_p) with
  | Ok (Messages.Probe got, flags) ->
      checkb "probe fields survive the flag word" true (got = probe);
      checkb "probe carries the flag too" true
        (flags land Messages.flag_rx_framing <> 0)
  | Ok (Messages.Request _, _) -> Alcotest.fail "flagged probe dispatched as request"
  | Error e -> Alcotest.fail e);
  match Messages.decode_ctrl (plaintext_of (Messages.encode_probe probe)) with
  | Ok (Messages.Probe _, flags) -> check "unflagged probe: flags 0" 0 flags
  | Ok (Messages.Request _, _) -> Alcotest.fail "probe dispatched as request"
  | Error e -> Alcotest.fail e

let test_flagged_ctrl_with_crc_trailer () =
  (* Flag word and CRC trailer stack: the dispatcher must discount the
     trailer word before counting, in both flagged forms. *)
  let req =
    Messages.request ~req_id:9 ~start_copy:1 ~start_offset:1024
      ~file_name:"paper.dat" ~copies:4 ~max_reply:256 ()
  in
  let flagged = Messages.encode_request req ^ u32be Messages.flag_rx_framing in
  (match Messages.decode_ctrl ~crc_trailer:true (plaintext_with_crc_trailer flagged) with
  | Ok (Messages.Request got, flags) ->
      checkb "flagged request recovered under the trailer" true (got = req);
      checkb "flags recovered under the trailer" true
        (flags land Messages.flag_rx_framing <> 0)
  | Ok (Messages.Probe _, _) -> Alcotest.fail "dispatched as probe under trailer"
  | Error e -> Alcotest.fail e);
  let probe =
    { Messages.p_file_name = "f.dat"; p_offset = 64; p_crc = 5; p_req_id = 2 }
  in
  let flagged_p = Messages.encode_probe probe ^ u32be Messages.flag_rx_framing in
  match
    Messages.decode_ctrl ~crc_trailer:true (plaintext_with_crc_trailer flagged_p)
  with
  | Ok (Messages.Probe got, flags) ->
      checkb "flagged probe recovered under the trailer" true (got = probe);
      checkb "probe flags recovered" true
        (flags land Messages.flag_rx_framing <> 0)
  | Ok (Messages.Request _, _) -> Alcotest.fail "dispatched as request under trailer"
  | Error e -> Alcotest.fail e

let test_flagged_v1_promotes_to_v2 () =
  (* There is no flagged v1 form — it would collide with the 3-word probe
     — so a flagged marshal of an id-less request must carry the full v2
     field set. *)
  let v1 = Messages.request ~file_name:"paper.dat" ~copies:2 ~max_reply:512 () in
  let v2 =
    Messages.request ~req_id:1 ~file_name:"paper.dat" ~copies:2 ~max_reply:512 ()
  in
  checkb "id-less request is v1" true (Messages.request_is_v1 v1);
  let seg_bytes segs =
    List.fold_left
      (fun a -> function
        | Engine.Seg_gen s -> a + String.length s
        | Engine.Seg_app { len; _ } -> a + len)
      0 segs
  in
  check "flagged v1 marshals as many bytes as flagged v2"
    (seg_bytes (Messages.request_segments ~flags:Messages.flag_rx_framing v2))
    (seg_bytes (Messages.request_segments ~flags:Messages.flag_rx_framing v1));
  check "unflagged v1 keeps the short form"
    (seg_bytes (Messages.request_segments v2) - 12)
    (seg_bytes (Messages.request_segments v1))

let prop_request_roundtrip =
  QCheck.Test.make ~count:150 ~name:"request encode/decode round trip"
    QCheck.(
      triple
        (string_of_size Gen.(int_bound 30))
        (int_range 0 100) (int_range 0 100_000))
    (fun (file_name, copies, max_reply) ->
      let req = Messages.request ~file_name ~copies ~max_reply () in
      let plaintext = plaintext_of (Messages.encode_request req) in
      match Messages.decode_request plaintext with
      | Ok got -> got = req
      | Error _ -> false)

(* The in-place (view) decoders must agree with the copying decoders on
   every input — valid, corrupted, and oversized-buffer (the pooled TSDU
   buffer's capacity is its size class, so [len] does the limiting). *)

(* Wrap a plaintext the way the pooled receive hands it over: in a
   buffer with trailing junk capacity beyond [len]. *)
let pooled_view_of plaintext junk =
  let len = String.length plaintext in
  let buf = Bytes.make (len + junk) '\xe7' in
  Bytes.blit_string plaintext 0 buf 0 len;
  (buf, len)

let flip plaintext pos =
  if String.length plaintext = 0 then plaintext
  else
    let pos = pos mod String.length plaintext in
    String.mapi
      (fun i c -> if i = pos then Char.chr (Char.code c lxor 0x5b) else c)
      plaintext

let prop_request_view_equals_copy =
  QCheck.Test.make ~count:200 ~name:"decode_request_bytes = decode_request"
    QCheck.(
      quad
        (string_of_size Gen.(int_bound 30))
        (int_range 0 100) small_nat (pair bool bool))
    (fun (file_name, copies, corrupt_at, (trailer, corrupt)) ->
      let req = Messages.request ~file_name ~copies ~max_reply:4096 () in
      let plaintext =
        plaintext_of ~length_at_end:trailer (Messages.encode_request req)
      in
      let plaintext = if corrupt then flip plaintext corrupt_at else plaintext in
      let buf, len = pooled_view_of plaintext (corrupt_at land 31) in
      let copy = Messages.decode_request ~length_at_end:trailer plaintext in
      let view =
        Messages.decode_request_bytes ~length_at_end:trailer buf ~len
      in
      match (copy, view) with
      | Ok a, Ok b -> a = b
      | Error a, Error b -> a = b
      | _ -> false)

let prop_reply_view_equals_copy =
  QCheck.Test.make ~count:200 ~name:"decode_reply_view = decode_reply"
    QCheck.(
      quad
        (string_of_size Gen.(int_bound 60))
        small_nat small_nat (pair bool bool))
    (fun (payload, off, corrupt_at, (trailer, corrupt)) ->
      let hdr =
        { Messages.status = Messages.Ok; copy = 1; file_offset = off * 8;
          total_len = String.length payload + (off * 8);
          data_len = String.length payload }
      in
      let plaintext =
        plaintext_of ~length_at_end:trailer (Messages.reply_prefix hdr ^ payload)
      in
      let plaintext = if corrupt then flip plaintext corrupt_at else plaintext in
      let buf, len = pooled_view_of plaintext (corrupt_at land 31) in
      let copy = Messages.decode_reply ~length_at_end:trailer plaintext in
      let view = Messages.decode_reply_view ~length_at_end:trailer buf ~len in
      match (copy, view) with
      | Ok (ha, data), Ok (hb, data_off) ->
          ha = hb
          && data = Bytes.sub_string buf data_off ha.Messages.data_len
      | Error a, Error b -> a = b
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Client/server over the full stack *)

type world = {
  sim : Sim.t;
  clock : Simclock.t;
  demux : Demux.t;
  wire_out : Datagram.t -> unit;
  srv_engine : Engine.t;
  server : Server.t;
  client : Client.t;
  srv_ctrl : Socket.t;
  srv_data : Socket.t;
  cli_ctrl : Socket.t;
  cli_data : Socket.t;
  file : string;
  file_addr : int;
}

let make_world ?(mode = Engine.Ilp) ?(loss_rate = 0.0) ?(file_len = 4096)
    ?(limits = Server.default_limits) ?(mangle = fun _ s -> s)
    ?(idempotent = false) ?(drop = fun (_ : Datagram.t) -> false) () =
  let sim = Sim.create Config.ss10_30 in
  let clock = Simclock.create () in
  let demux = Demux.create () in
  let link = ref None in
  let count = ref 0 in
  let wire_out d =
    if not (drop d) then begin
      incr count;
      let payload = mangle !count d.Datagram.payload in
      Link.send (Option.get !link)
        (Datagram.create ~src_port:d.Datagram.src_port
           ~dst_port:d.Datagram.dst_port ~payload)
    end
  in
  link :=
    Some (Link.create clock ~delay_us:50.0 ~loss_rate ~seed:7
            ~deliver:(Demux.deliver demux) ());
  let key = "rpcTESTk" in
  let srv_engine =
    Engine.create sim ~cipher:(Ilp_cipher.Safer_simplified.charged sim ~key ()) ~mode ()
  in
  let cli_engine =
    Engine.create sim ~cipher:(Ilp_cipher.Safer_simplified.charged sim ~key ()) ~mode ()
  in
  let cfg = { Socket.default_config with mss = 2048 } in
  let srv_ctrl = Socket.create sim clock cfg ~local_port:10 ~wire_out in
  let cli_ctrl = Socket.create sim clock cfg ~local_port:11 ~wire_out in
  let srv_data = Socket.create sim clock cfg ~local_port:12 ~wire_out in
  let cli_data = Socket.create sim clock cfg ~local_port:13 ~wire_out in
  List.iter
    (fun (port, s) -> Demux.bind demux ~port (Socket.handle_datagram s))
    [ (10, srv_ctrl); (11, cli_ctrl); (12, srv_data); (13, cli_data) ];
  let server = Server.create ~clock ~engine:srv_engine ~limits () in
  ignore (Server.attach server ~ctrl:srv_ctrl ~data:srv_data);
  let client =
    Client.create ~clock ~engine:cli_engine ~idempotent ~ctrl:cli_ctrl
      ~data:cli_data ()
  in
  let file = Ilp_app.Workload.generate ~len:file_len ~seed:3 in
  let addr = Ilp_app.Workload.install sim file in
  Server.add_file server ~name:"test.bin" ~addr ~len:file_len;
  Socket.listen srv_ctrl;
  Socket.listen cli_data;
  Socket.connect cli_ctrl ~remote_port:10;
  Socket.connect srv_data ~remote_port:13;
  Simclock.run_until_idle clock;
  { sim; clock; demux; wire_out; srv_engine; server; client; srv_ctrl;
    srv_data; cli_ctrl; cli_data; file; file_addr = addr }

let pump w =
  let guard = ref 50_000 in
  while
    (not (Client.transfer_complete w.client))
    && (not (Client.rejected w.client))
    && Client.errors w.client = []
    && !guard > 0
  do
    decr guard;
    Simclock.advance w.clock 2_000.0
  done;
  Simclock.run_until_idle w.clock

let test_transfer_ilp () =
  let w = make_world ~mode:Engine.Ilp () in
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:2 ~max_reply:1000
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  pump w;
  Alcotest.(check (list string)) "no errors" [] (Client.errors w.client);
  checkb "complete" true (Client.transfer_complete w.client);
  check "bytes" (2 * String.length w.file) (Client.bytes_received w.client);
  check "requests seen" 1 (Server.requests_received w.server);
  check "no pending replies" 0 (Server.pending_replies w.server)

let test_transfer_separate () =
  let w = make_world ~mode:Engine.Separate () in
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  pump w;
  Alcotest.(check (list string)) "no errors" [] (Client.errors w.client);
  checkb "complete" true (Client.transfer_complete w.client)

let test_transfer_under_loss () =
  let w = make_world ~mode:Engine.Ilp ~loss_rate:0.1 () in
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:2 ~max_reply:700
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  pump w;
  Alcotest.(check (list string)) "no errors" [] (Client.errors w.client);
  checkb "complete despite loss" true (Client.transfer_complete w.client)

let test_missing_file_rejected () =
  let w = make_world () in
  (match
     Client.request_file w.client ~name:"nope.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  pump w;
  checkb "rejected" true (Client.rejected w.client);
  checkb "not complete" false (Client.transfer_complete w.client)

let test_odd_sized_tail_segment () =
  (* A file that does not divide evenly by max_reply exercises the short
     final segment (and the alignment machinery). *)
  let w = make_world ~file_len:1000 () in
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:333
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  pump w;
  Alcotest.(check (list string)) "no errors" [] (Client.errors w.client);
  checkb "complete" true (Client.transfer_complete w.client);
  check "segments" 4 (Client.replies_received w.client)

(* ------------------------------------------------------------------ *)
(* Adversarial wire: typed aborts, reconnection, mode equivalence *)

(* Like [pump] but also stops on a typed failure (the abort tests would
   otherwise spin out their whole guard budget). *)
let pump_settle w =
  let guard = ref 50_000 in
  while
    (not (Client.transfer_complete w.client))
    && (not (Client.rejected w.client))
    && Client.failure w.client = None
    && !guard > 0
  do
    decr guard;
    Simclock.advance w.clock 2_000.0
  done;
  Simclock.run_until_idle w.clock

(* A wire that destroys every datagram's IP header once [on] is set: the
   kernel drops each one, so the sender retransmits into the void. *)
let blackhole_mangle on _ s =
  if !on && String.length s > 0 then begin
    let b = Bytes.of_string s in
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
    Bytes.to_string b
  end
  else s

let test_abort_surfaces_to_client () =
  let on = ref false in
  let w = make_world ~mangle:(blackhole_mangle on) () in
  on := true;
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  pump_settle w;
  checkb "typed abort reaches the client" true
    (Client.failure w.client = Some (Client.Aborted Socket.Retry_exhausted));
  checkb "not complete" false (Client.transfer_complete w.client)

let test_reconnect_resumes () =
  let on = ref false in
  let w = make_world ~mangle:(blackhole_mangle on) () in
  on := true;
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  pump_settle w;
  checkb "aborted first" true (Client.failure w.client <> None);
  (* The wire heals; hand the client a freshly connected socket pair (and
     stand the server up again on new ports). *)
  on := false;
  let cfg = { Socket.default_config with mss = 2048 } in
  let mk port = Socket.create w.sim w.clock cfg ~local_port:port ~wire_out:w.wire_out in
  let srv_ctrl = mk 20 and cli_ctrl = mk 21 and srv_data = mk 22 and cli_data = mk 23 in
  List.iter
    (fun (port, s) -> Demux.bind w.demux ~port (Socket.handle_datagram s))
    [ (20, srv_ctrl); (21, cli_ctrl); (22, srv_data); (23, cli_data) ];
  let server2 = Server.create ~clock:w.clock ~engine:w.srv_engine () in
  ignore (Server.attach server2 ~ctrl:srv_ctrl ~data:srv_data);
  Server.add_file server2 ~name:"test.bin" ~addr:w.file_addr
    ~len:(String.length w.file);
  Socket.listen srv_ctrl;
  Socket.listen cli_data;
  Socket.connect cli_ctrl ~remote_port:20;
  Socket.connect srv_data ~remote_port:23;
  Simclock.run_until_idle w.clock;
  (match Client.reconnect w.client ~ctrl:cli_ctrl ~data:cli_data with
  | Ok _summary -> ()
  | Error _ -> Alcotest.fail "reconnect refused");
  pump_settle w;
  checkb "no failure after resume" true (Client.failure w.client = None);
  checkb "complete after resume" true (Client.transfer_complete w.client);
  check "one reconnect" 1 (Client.reconnects w.client);
  check "bytes" (String.length w.file) (Client.bytes_received w.client)

(* ---------------------------------------------------------------- *)
(* Node crash/restart: dedup replay and mid-copy resume *)

(* Kill the original server host: instance state gone (shutdown), NIC
   gone (sockets destroyed) — and prove the teardown left no timers. *)
let crash_server w =
  Server.shutdown w.server;
  check "server drain timers cancelled" 0
    (Simclock.pending_count w.clock ~owner:(Server.timer_owner w.server));
  Socket.destroy w.srv_ctrl;
  Socket.destroy w.srv_data;
  List.iter
    (fun s ->
      check "destroyed socket holds no timers" 0
        (Simclock.pending_count w.clock ~owner:(Socket.timer_owner s)))
    [ w.srv_ctrl; w.srv_data ]

(* Stand the server up again — a fresh instance over [store] — on four
   fresh ports; hand back the new instance and the client-side pair. *)
let restart_generation w ~store ~base =
  let cfg = { Socket.default_config with mss = 2048 } in
  let mk port =
    let s =
      Socket.create w.sim w.clock cfg ~local_port:port ~wire_out:w.wire_out
    in
    Demux.bind w.demux ~port (Socket.handle_datagram s);
    s
  in
  let srv_ctrl = mk base and cli_ctrl = mk (base + 1) in
  let srv_data = mk (base + 2) and cli_data = mk (base + 3) in
  let server2 = Server.create ~clock:w.clock ~engine:w.srv_engine ~store () in
  ignore (Server.attach server2 ~ctrl:srv_ctrl ~data:srv_data);
  Server.add_file server2 ~name:"test.bin" ~addr:w.file_addr
    ~len:(String.length w.file);
  Socket.listen srv_ctrl;
  Socket.listen cli_data;
  Socket.connect cli_ctrl ~remote_port:base;
  Socket.connect srv_data ~remote_port:(base + 3);
  Simclock.run_until_idle w.clock;
  (server2, cli_ctrl, cli_data)

let test_dedup_replay_served_from_cache () =
  (* The doomed instance executes a request whose replies never reach the
     client; after the crash the client re-issues it under the SAME
     idempotency id, and the restarted instance answers from the dedup
     cache instead of re-executing — then the client finishes under a
     fresh id. *)
  let dead = ref false in
  let drop d =
    !dead && (d.Datagram.src_port = 10 || d.Datagram.src_port = 12)
  in
  let w = make_world ~idempotent:true ~file_len:1024 ~drop () in
  dead := true;
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  pump_settle w;
  checkb "client aborted into the void" true
    (Client.failure w.client = Some (Client.Aborted Socket.Retry_exhausted));
  check "nothing received" 0 (Client.bytes_received w.client);
  let store = Server.store w.server in
  check "the lost instance executed it" 1 (Server.executions store);
  crash_server w;
  Socket.destroy w.cli_ctrl;
  Socket.destroy w.cli_data;
  dead := false;
  let server2, cli_ctrl, cli_data = restart_generation w ~store ~base:20 in
  (match Client.reconnect w.client ~ctrl:cli_ctrl ~data:cli_data with
  | Ok s ->
      checkb "same-id re-issue, not a resume" true
        (s.Client.resumed_from = None);
      check "no bytes to keep" 0 s.Client.bytes_verified
  | Error _ -> Alcotest.fail "reconnect refused");
  pump_settle w;
  Alcotest.(check (list string)) "no errors" [] (Client.errors w.client);
  checkb "complete after the dedup replay" true
    (Client.transfer_complete w.client);
  check "bytes" (String.length w.file) (Client.bytes_received w.client);
  check "replay answered from the cache" 1 (Server.dedup_hits store);
  check "executed twice, never under one id" 2 (Server.executions store);
  check "three id-carrying requests seen" 3 (Server.id_requests_seen store);
  check "conservation law" (Server.id_requests_seen store)
    (Server.executions store + Server.dedup_hits store
    + Server.dedup_sheds store);
  check "the fresh-id re-issue counted as a resume" 1 (Client.resumes w.client);
  check "no probe: nothing to verify" 0 (Server.probes_received server2);
  Simclock.run_until_idle w.clock;
  check "client retry timer owner clean" 0
    (Simclock.pending_count w.clock ~owner:(Client.timer_owner w.client))

let test_resume_mid_copy_verifies_prefix () =
  (* A crash mid-copy: the client keeps its verified prefix, CRC-probes
     the restarted server, and resumes at the verified offset — never
     from byte zero. *)
  let dead = ref false in
  let drop _ = !dead in
  let w = make_world ~idempotent:true ~file_len:8192 ~drop () in
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused");
  let guard = ref 10_000 in
  while Client.bytes_received w.client < 2048 && !guard > 0 do
    decr guard;
    Simclock.advance w.clock 100.0
  done;
  let kept = Client.bytes_received w.client in
  checkb "a partial mid-copy prefix exists" true
    (kept >= 2048 && kept < String.length w.file);
  (* The host dies.  The client is pure receiver here, so only its
     half-open detector can notice: keepalive probes into the void. *)
  dead := true;
  Socket.start_keepalive w.cli_data ~interval_us:10_000.0 ~probes:2
    ~on_result:(fun _ -> ()) ();
  let guard = ref 10_000 in
  while Client.failure w.client = None && !guard > 0 do
    decr guard;
    Simclock.advance w.clock 2_000.0
  done;
  checkb "keepalive surfaced the dead peer" true
    (Client.failure w.client <> None);
  Socket.stop_keepalive w.cli_data;
  check "prefix survives the abort" kept (Client.bytes_received w.client);
  crash_server w;
  Socket.destroy w.cli_ctrl;
  Socket.destroy w.cli_data;
  List.iter
    (fun s ->
      check "old client sockets hold no timers" 0
        (Simclock.pending_count w.clock ~owner:(Socket.timer_owner s)))
    [ w.cli_ctrl; w.cli_data ];
  dead := false;
  let store = Server.store w.server in
  let server2, cli_ctrl, cli_data = restart_generation w ~store ~base:20 in
  (match Client.reconnect w.client ~ctrl:cli_ctrl ~data:cli_data with
  | Ok s ->
      checkb "resumes at the verified prefix, not byte zero" true
        (s.Client.resumed_from = Some (0, kept));
      check "every received byte kept" kept s.Client.bytes_verified
  | Error _ -> Alcotest.fail "reconnect refused");
  pump_settle w;
  Alcotest.(check (list string)) "no errors" [] (Client.errors w.client);
  checkb "complete after the resume" true (Client.transfer_complete w.client);
  check "byte-exact overall" (String.length w.file)
    (Client.bytes_received w.client);
  check "the restarted server answered one CRC probe" 1
    (Server.probes_received server2);
  check "one resume request sent" 1 (Client.resumes w.client);
  check "one reconnect" 1 (Client.reconnects w.client);
  Simclock.run_until_idle w.clock;
  check "client retry timer owner clean" 0
    (Simclock.pending_count w.clock ~owner:(Client.timer_owner w.client))

(* The receive-path equivalence property: for any corruption pattern, the
   separate (checksum pass then handler) and integrated (fused
   handler-with-checksum) receive paths must make the same accept/reject
   decision — same final outcome, byte count and typed failure. *)
let prop_rx_modes_equivalent_under_corruption =
  QCheck.Test.make ~count:20
    ~name:"ILP and separate rx accept/reject corrupted segments identically"
    QCheck.(
      pair (int_range 0 1000)
        (list_of_size Gen.(int_range 0 6) (int_range 8 60)))
    (fun (salt, positions) ->
      let outcome mode =
        let mangle n s =
          if List.mem n positions && String.length s > 30 then begin
            let b = Bytes.of_string s in
            let i = 28 + (salt mod (String.length s - 28)) in
            Bytes.set b i
              (Char.chr (Char.code (Bytes.get b i) lxor (1 + (salt land 0x7f))));
            Bytes.to_string b
          end
          else s
        in
        let w = make_world ~mode ~file_len:1024 ~mangle () in
        let req =
          Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:400
            ~expected:w.file
        in
        pump_settle w;
        ( Result.is_ok req,
          Client.transfer_complete w.client,
          Client.rejected w.client,
          Client.bytes_received w.client,
          Option.map Client.failure_to_string (Client.failure w.client) )
      in
      outcome Engine.Separate = outcome Engine.Ilp)

(* ------------------------------------------------------------------ *)
(* Admission control and load shedding *)

let test_oversized_request_refused () =
  (* A request that could never fit the per-connection budget is refused
     permanently (not a retryable Busy), and the shed is in the ledger. *)
  let limits = { Server.default_limits with max_conn_queue_bytes = 1024 } in
  let w = make_world ~file_len:4096 ~limits () in
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused locally");
  pump w;
  checkb "permanently rejected" true (Client.rejected w.client);
  checkb "not complete" false (Client.transfer_complete w.client);
  check "no retries for a permanent refusal" 0 (Client.retries w.client);
  check "ledger: oversized" 1 (Server.shed_count w.server Server.Oversized_request);
  check "nothing queued" 0 (Server.queued_bytes w.server)

let test_unadmitted_connection_busy_until_exhausted () =
  (* With zero admission slots every request is shed Busy; the client
     retries with backoff and eventually surfaces the typed Server_busy
     failure instead of stalling. *)
  let limits = { Server.default_limits with max_connections = 0 } in
  let w = make_world ~limits () in
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused locally");
  pump_settle w;
  checkb "typed Server_busy failure" true
    (Client.failure w.client = Some Client.Server_busy);
  checkb "retried before giving up" true (Client.retries w.client > 0);
  checkb "saw Busy replies" true (Client.busy_replies w.client > 0);
  checkb "every shed in the ledger" true
    (Server.shed_count w.server Server.Too_many_connections
    = Client.busy_replies w.client);
  checkb "not complete" false (Client.transfer_complete w.client)

(* Two clients against one server whose global queue budget only fits one
   request at a time: the second is shed Busy, retries with backoff, and
   completes once the first drains — transient overload degrades to
   delay, not failure. *)
let test_busy_retry_recovers () =
  let sim = Sim.create Config.ss10_30 in
  let clock = Simclock.create () in
  let demux = Demux.create () in
  let link = ref None in
  let wire_out d = Link.send (Option.get !link) d in
  link :=
    Some (Link.create clock ~delay_us:50.0 ~seed:7
            ~deliver:(Demux.deliver demux) ());
  let key = "rpcTESTk" in
  let engine () =
    Engine.create sim ~cipher:(Ilp_cipher.Safer_simplified.charged sim ~key ())
      ~mode:Engine.Ilp ()
  in
  (* Small socket buffers so the server's reply queue holds real bytes
     instead of draining synchronously into TCP. *)
  let cfg =
    { Socket.default_config with mss = 2048; send_buffer = 4096;
      recv_window = 4096 }
  in
  let mk port =
    let s = Socket.create sim clock cfg ~local_port:port ~wire_out in
    Demux.bind demux ~port (Socket.handle_datagram s);
    s
  in
  let file_len = 4096 in
  let copies = 2 in
  let limits =
    { Server.default_limits with
      max_conn_queue_bytes = copies * file_len;
      max_total_queue_bytes = (copies * file_len) + 2048 }
  in
  let server = Server.create ~clock ~engine:(engine ()) ~limits () in
  let file = Ilp_app.Workload.generate ~len:file_len ~seed:3 in
  let addr = Ilp_app.Workload.install sim file in
  Server.add_file server ~name:"test.bin" ~addr ~len:file_len;
  let clients =
    List.map
      (fun i ->
        let base = 30 + (4 * i) in
        let srv_ctrl = mk base and cli_ctrl = mk (base + 1) in
        let srv_data = mk (base + 2) and cli_data = mk (base + 3) in
        ignore (Server.attach server ~ctrl:srv_ctrl ~data:srv_data);
        Socket.listen srv_ctrl;
        Socket.listen cli_data;
        Socket.connect cli_ctrl ~remote_port:base;
        Socket.connect srv_data ~remote_port:(base + 3);
        Client.create ~clock ~engine:(engine ()) ~seed:(i + 1) ~ctrl:cli_ctrl
          ~data:cli_data ())
      [ 0; 1 ]
  in
  Simclock.run_until_idle clock;
  List.iter
    (fun c ->
      match
        Client.request_file c ~name:"test.bin" ~copies ~max_reply:512
          ~expected:file
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "request refused locally")
    clients;
  let settled c =
    Client.transfer_complete c || Client.rejected c || Client.failure c <> None
  in
  let guard = ref 50_000 in
  while (not (List.for_all settled clients)) && !guard > 0 do
    decr guard;
    Simclock.advance clock 2_000.0
  done;
  Simclock.run_until_idle clock;
  List.iteri
    (fun i c ->
      checkb (Printf.sprintf "client %d complete" i) true
        (Client.transfer_complete c);
      check (Printf.sprintf "client %d bytes" i) (copies * file_len)
        (Client.bytes_received c))
    clients;
  let busy = List.fold_left (fun acc c -> acc + Client.busy_replies c) 0 clients in
  checkb "the overflow request was shed Busy at least once" true (busy > 0);
  checkb "shed reason was the global budget" true
    (Server.shed_count server Server.Server_queue_full > 0);
  checkb "budget ceiling respected" true
    (Server.peak_queued_bytes server <= limits.Server.max_total_queue_bytes);
  check "all queues drained" 0 (Server.queued_bytes server)

let test_dead_connection_frees_admission_slot () =
  (* When a connection's sockets die, its queue is abandoned and the
     admission slot is released for the next attach. *)
  let limits = { Server.default_limits with max_connections = 1 } in
  let w = make_world ~limits () in
  check "one admitted" 1 (Server.connections w.server);
  (* A second pair attaches over the budget: not admitted. *)
  let cfg = { Socket.default_config with mss = 2048 } in
  let mk port =
    let s = Socket.create w.sim w.clock cfg ~local_port:port ~wire_out:w.wire_out in
    Demux.bind w.demux ~port (Socket.handle_datagram s);
    s
  in
  let srv_ctrl2 = mk 40 and srv_data2 = mk 42 in
  ignore (Server.attach w.server ~ctrl:srv_ctrl2 ~data:srv_data2);
  check "still one admitted" 1 (Server.connections w.server);
  (* The first client turns into a dead reader: its data socket
     advertises a zero window and never reopens, so the server's data
     socket persists, stalls past the deadline and aborts Peer_stalled —
     which must free the admission slot. *)
  Socket.set_advertised_window w.cli_data 0;
  (match
     Client.request_file w.client ~name:"test.bin" ~copies:1 ~max_reply:512
       ~expected:w.file
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "request refused locally");
  Simclock.run_until_idle w.clock;
  check "slot freed by the Peer_stalled abort" 0 (Server.connections w.server);
  checkb "abandoned replies accounted" true (Server.replies_abandoned w.server > 0);
  let srv_ctrl3 = mk 44 and srv_data3 = mk 46 in
  ignore (Server.attach w.server ~ctrl:srv_ctrl3 ~data:srv_data3);
  check "new connection admitted" 1 (Server.connections w.server)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "rpc"
    [ ( "messages",
        [ Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "request trailer" `Quick test_request_roundtrip_trailer;
          Alcotest.test_case "reply round trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "error status" `Quick test_reply_error_status;
          Alcotest.test_case "garbage" `Quick test_decode_garbage;
          Alcotest.test_case "probe round trip" `Quick test_probe_roundtrip;
          Alcotest.test_case "v2 request round trip" `Quick
            test_request_v2_roundtrip;
          Alcotest.test_case "v1 wire unchanged" `Quick
            test_request_v1_wire_unchanged;
          Alcotest.test_case "flagged ctrl dispatch" `Quick
            test_flagged_ctrl_dispatch;
          Alcotest.test_case "flagged ctrl under CRC trailer" `Quick
            test_flagged_ctrl_with_crc_trailer;
          Alcotest.test_case "flagged v1 promotes to v2" `Quick
            test_flagged_v1_promotes_to_v2;
          Alcotest.test_case "ctrl dispatch under CRC trailer" `Quick
            test_ctrl_dispatch_with_crc_trailer;
          qc prop_request_roundtrip;
          qc prop_request_view_equals_copy;
          qc prop_reply_view_equals_copy ] );
      ( "client-server",
        [ Alcotest.test_case "transfer (ILP)" `Quick test_transfer_ilp;
          Alcotest.test_case "transfer (separate)" `Quick test_transfer_separate;
          Alcotest.test_case "transfer under loss" `Quick test_transfer_under_loss;
          Alcotest.test_case "missing file" `Quick test_missing_file_rejected;
          Alcotest.test_case "odd tail segment" `Quick test_odd_sized_tail_segment ] );
      ( "adversarial",
        [ Alcotest.test_case "abort surfaces to client" `Quick
            test_abort_surfaces_to_client;
          Alcotest.test_case "reconnect resumes" `Quick test_reconnect_resumes;
          Alcotest.test_case "dedup replay served from cache" `Quick
            test_dedup_replay_served_from_cache;
          Alcotest.test_case "mid-copy resume verifies prefix" `Quick
            test_resume_mid_copy_verifies_prefix;
          qc prop_rx_modes_equivalent_under_corruption ] );
      ( "admission",
        [ Alcotest.test_case "oversized request refused" `Quick
            test_oversized_request_refused;
          Alcotest.test_case "unadmitted connection Busy until exhausted" `Quick
            test_unadmitted_connection_busy_until_exhausted;
          Alcotest.test_case "Busy retry recovers after transient overload"
            `Quick test_busy_retry_recovers;
          Alcotest.test_case "dead connection frees admission slot" `Quick
            test_dead_connection_frees_admission_slot ] ) ]
