(* The native (un-simulated) fast path: word-wise blit, SWAR simple
   cipher, batched SAFER/DES kernels, and the fused wire codec.  The load-
   bearing property throughout is byte-identity with the reference
   implementations — the fast path must change timing, never bytes. *)

module FP = Ilp_fastpath
module Internet = Ilp_checksum.Internet
open Ilp_cipher

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let key = "\x3a\x91\x5c\x07\xee\x42\xb8\x1d"

let ciphers () =
  [ FP.Cipher.Simple;
    FP.Cipher.Safer_simplified (Safer_simplified.expand_key key);
    FP.Cipher.Safer (Safer.expand_key key);
    FP.Cipher.Des (Des.expand_key key) ]

(* Reference ECB through the pure string ciphers. *)
let reference_encrypt cipher s =
  match cipher with
  | FP.Cipher.Simple -> Simple_cipher.encrypt_string s
  | FP.Cipher.Safer_simplified k -> Safer_simplified.encrypt_string k s
  | FP.Cipher.Safer k -> Safer.encrypt_string k s
  | FP.Cipher.Des k -> Des.encrypt_string k s

let random_msg len =
  String.init len (fun i -> Char.chr ((i * 131 + 17) land 0xff))

(* ------------------------------------------------------------------ *)
(* Words *)

let prop_blit_equals_bytes_blit =
  QCheck.Test.make ~count:300 ~name:"word blit = Bytes.blit on random slices"
    QCheck.(triple (string_of_size Gen.(int_range 0 120)) small_nat small_nat)
    (fun (s, a, b) ->
      let n = String.length s in
      let off = if n = 0 then 0 else a mod (n + 1) in
      let len = if n - off = 0 then 0 else b mod (n - off + 1) in
      let dst_off = a mod 8 in
      let dst = Bytes.make (dst_off + len + 8) 'x' in
      let expected = Bytes.copy dst in
      FP.Words.blit ~src:(Bytes.of_string s) ~src_off:off ~dst ~dst_off ~len;
      Bytes.blit_string s off expected dst_off len;
      Bytes.equal dst expected)

let test_blit_bounds () =
  let src = Bytes.create 16 and dst = Bytes.create 8 in
  match FP.Words.blit ~src ~src_off:0 ~dst ~dst_off:0 ~len:16 with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Cipher kernels *)

let prop_native_matches_reference =
  QCheck.Test.make ~count:100 ~name:"native kernels = pure ECB (all ciphers)"
    QCheck.(map (fun n -> n * 8) (int_range 0 64))
    (fun len ->
      let s = random_msg len in
      List.for_all
        (fun c ->
          let b = Bytes.of_string s in
          FP.Cipher.encrypt_blocks c b ~off:0 ~count:(len / 8);
          let ok = Bytes.to_string b = reference_encrypt c s in
          FP.Cipher.decrypt_blocks c b ~off:0 ~count:(len / 8);
          ok && Bytes.to_string b = s)
        (ciphers ()))

let test_swar_known_bytes () =
  (* Spot-check the SWAR lanes against the scalar byte function at the
     carry and borrow corners. *)
  let corner = Bytes.of_string "\x00\xff\x7f\x80\x3b\x3c\xc3\x55" in
  let expected =
    let r = Bytes.copy corner in
    Simple_cipher.encrypt_block r 0;
    Bytes.to_string r
  in
  let b = Bytes.copy corner in
  FP.Cipher.encrypt_blocks FP.Cipher.Simple b ~off:0 ~count:1;
  check_s "encrypt corners" expected (Bytes.to_string b);
  FP.Cipher.decrypt_blocks FP.Cipher.Simple b ~off:0 ~count:1;
  check_s "decrypt inverts" (Bytes.to_string corner) (Bytes.to_string b)

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let wire_pair cipher len =
  let fp = FP.Wire.create ~cipher ~max_len:len () in
  let msg = Bytes.of_string (random_msg len) in
  let sep = Bytes.create len and ilp = Bytes.create len in
  let acc_sep = FP.Wire.send_separate fp ~src:msg ~src_off:0 ~len ~dst:sep ~dst_off:0 in
  let acc_ilp = FP.Wire.send_ilp fp ~src:msg ~src_off:0 ~len ~dst:ilp ~dst_off:0 in
  (fp, msg, sep, ilp, acc_sep, acc_ilp)

let test_send_paths_agree () =
  List.iter
    (fun cipher ->
      (* Straddle several fused chunks. *)
      List.iter
        (fun len ->
          let _, msg, sep, ilp, acc_sep, acc_ilp = wire_pair cipher len in
          checkb "wire bytes identical" true (Bytes.equal sep ilp);
          check "checksums agree" (Internet.finish acc_sep) (Internet.finish acc_ilp);
          check_s "wire is the reference ECB"
            (reference_encrypt cipher (Bytes.to_string msg))
            (Bytes.to_string sep))
        [ 0; 8; 4096; 4104; 10000 ])
    (ciphers ())

let test_recv_paths_agree () =
  List.iter
    (fun cipher ->
      List.iter
        (fun len ->
          let fp, msg, sep, _, acc_send, _ = wire_pair cipher len in
          (* ILP receive: non-destructive on the segment. *)
          let out_ilp = Bytes.create len in
          let acc_ilp = FP.Wire.recv_ilp fp ~src:sep ~src_off:0 ~len ~dst:out_ilp ~dst_off:0 in
          checkb "ilp recovers plaintext" true (Bytes.equal out_ilp msg);
          check "ilp checksum = send checksum" (Internet.finish acc_send)
            (Internet.finish acc_ilp);
          (* Separate receive: decrypts the staged copy in place. *)
          let staged = Bytes.copy sep in
          let out_sep = Bytes.create len in
          let acc_sep =
            FP.Wire.recv_separate fp ~src:staged ~src_off:0 ~len ~dst:out_sep ~dst_off:0
          in
          checkb "separate recovers plaintext" true (Bytes.equal out_sep msg);
          check "separate checksum = send checksum" (Internet.finish acc_send)
            (Internet.finish acc_sep))
        [ 0; 8; 4104; 10000 ])
    (ciphers ())

let prop_wire_roundtrip_at_offsets =
  QCheck.Test.make ~count:60 ~name:"wire roundtrip at random offsets"
    QCheck.(triple (map (fun n -> n * 8) (int_range 1 40)) small_nat small_nat)
    (fun (len, a, b) ->
      let src_off = a mod 16 and dst_off = b mod 16 in
      let cipher = FP.Cipher.Safer_simplified (Safer_simplified.expand_key key) in
      let fp = FP.Wire.create ~cipher ~max_len:(len + 32) () in
      let msg = random_msg len in
      let src = Bytes.make (src_off + len) '\000' in
      Bytes.blit_string msg 0 src src_off len;
      let wire = Bytes.make (dst_off + len) '\000' in
      let acc = FP.Wire.send_ilp fp ~src ~src_off ~len ~dst:wire ~dst_off in
      let out = Bytes.create len in
      let acc' = FP.Wire.recv_ilp fp ~src:wire ~src_off:dst_off ~len ~dst:out ~dst_off:0 in
      Bytes.to_string out = msg && Internet.finish acc = Internet.finish acc')

let test_wire_validation () =
  let fp = FP.Wire.create ~cipher:FP.Cipher.Simple ~max_len:64 () in
  let b = Bytes.create 64 in
  (match FP.Wire.send_ilp fp ~src:b ~src_off:0 ~len:12 ~dst:b ~dst_off:0 with
  | _ -> Alcotest.fail "expected Invalid_argument (unaligned)"
  | exception Invalid_argument _ -> ());
  let big = Bytes.create 128 in
  match FP.Wire.send_separate fp ~src:big ~src_off:0 ~len:128 ~dst:big ~dst_off:0 with
  | _ -> Alcotest.fail "expected Invalid_argument (max_len)"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Engine backends: for the same message, a [Native] engine must put
   byte-identical ciphertext on the wire and compute the same checksum as
   the [Simulated] engine it mirrors. *)

module Engine = Ilp_core.Engine
module Sim = Ilp_memsim.Sim
module Mem = Ilp_memsim.Mem
module Alloc = Ilp_memsim.Alloc
module Config = Ilp_memsim.Config

type cipher_kind = K_simple | K_simplified | K_safer | K_des

let charged_of_kind sim = function
  | K_simple -> Simple_cipher.charged sim
  | K_simplified -> Safer_simplified.charged sim ~key ()
  | K_safer -> Safer.charged sim ~key ()
  | K_des -> Des.charged sim ~key ()

let native_of_kind = function
  | K_simple -> FP.Cipher.Simple
  | K_simplified -> FP.Cipher.Safer_simplified (Safer_simplified.expand_key key)
  | K_safer -> FP.Cipher.Safer (Safer.expand_key key)
  | K_des -> FP.Cipher.Des (Des.expand_key key)

(* Build one engine, send one message, return the wire bytes, the fill
   checksum, and the received plaintext (driving the engine's own rx). *)
let one_transfer ~mode ~backend_native kind =
  let sim = Sim.create (Config.custom ()) in
  let cipher = charged_of_kind sim kind in
  let backend =
    if backend_native then Engine.Native (native_of_kind kind) else Engine.Simulated
  in
  let eng = Engine.create sim ~cipher ~mode ~backend () in
  let payload = random_msg 600 in
  let payload_addr = Alloc.alloc sim.Sim.alloc ~align:8 (String.length payload) in
  Mem.poke_string sim.Sim.mem ~pos:payload_addr payload;
  let prepared =
    Engine.prepare_send eng ~prefix:"HDRWORDSABCD" ~payload_addr
      ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  let acc_opt = prepared.Engine.fill sim.Sim.mem ~dst:wire in
  let wire_bytes = Mem.peek_bytes sim.Sim.mem ~pos:wire ~len:prepared.Engine.len in
  let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e in
  (match Engine.rx_style eng with
  | Engine.Rx_integrated_style rx ->
      ignore (ok_or_fail (rx sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len))
  | Engine.Rx_deferred_style rx ->
      ok_or_fail (rx sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len));
  let plaintext = ok_or_fail (Engine.read_plaintext eng ~len:prepared.Engine.len) in
  (Bytes.to_string wire_bytes, acc_opt, plaintext)

let test_backends_byte_identical () =
  List.iter
    (fun kind ->
      List.iter
        (fun mode ->
          let wire_sim, acc_sim, plain_sim =
            one_transfer ~mode ~backend_native:false kind
          in
          let wire_nat, acc_nat, plain_nat =
            one_transfer ~mode ~backend_native:true kind
          in
          checkb "wire bytes identical across backends" true (wire_sim = wire_nat);
          check_s "plaintext identical across backends" plain_sim plain_nat;
          match (mode, acc_sim, acc_nat) with
          | Engine.Ilp, Some a, Some b ->
              check "fill checksums agree" (Internet.finish a) (Internet.finish b)
          | Engine.Separate, None, None -> ()
          | _ -> Alcotest.fail "fill checksum presence differs across backends")
        [ Engine.Ilp; Engine.Separate ])
    [ K_simple; K_simplified; K_safer; K_des ]

let test_native_rx_checksum_agrees () =
  (* The native integrated receive must return the same accumulator the
     native send computed (TCP compares exactly these two). *)
  let sim = Sim.create (Config.custom ()) in
  let cipher = charged_of_kind sim K_simplified in
  let eng =
    Engine.create sim ~cipher ~mode:Engine.Ilp
      ~backend:(Engine.Native (native_of_kind K_simplified)) ()
  in
  let payload = random_msg 512 in
  let payload_addr = Alloc.alloc sim.Sim.alloc ~align:8 (String.length payload) in
  Mem.poke_string sim.Sim.mem ~pos:payload_addr payload;
  let prepared =
    Engine.prepare_send eng ~prefix:"PRFX" ~payload_addr
      ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  let send_acc =
    match prepared.Engine.fill sim.Sim.mem ~dst:wire with
    | Some acc -> acc
    | None -> Alcotest.fail "native ILP fill must return a checksum"
  in
  let rx_acc =
    match Engine.rx_integrated eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len with
    | Ok acc -> acc
    | Error e -> Alcotest.fail e
  in
  check "rx acc = send acc" (Internet.finish send_acc) (Internet.finish rx_acc)

(* ------------------------------------------------------------------ *)
(* Buffer pool *)

let test_pool_reuse () =
  let p = FP.Pool.create () in
  let b1 = FP.Pool.acquire p 100 in
  checkb "capacity covers request" true (Bytes.length b1 >= 100);
  FP.Pool.release p b1;
  let b2 = FP.Pool.acquire p 100 in
  checkb "released buffer is physically recycled" true (b1 == b2);
  FP.Pool.release p b2;
  let s = FP.Pool.stats p in
  check "acquired" 2 s.FP.Pool.acquired;
  check "released" 2 s.FP.Pool.released;
  check "outstanding" 0 s.FP.Pool.outstanding;
  check "one fresh alloc for two acquires" 1 s.FP.Pool.fresh_allocs;
  check "nothing dropped" 0 s.FP.Pool.dropped

let test_pool_exhaustion_fallback () =
  (* class_cap:0 disables retention: the pool degrades to plain
     allocation but still completes every request and stays balanced. *)
  let p = FP.Pool.create ~class_cap:0 () in
  let bufs = List.init 5 (fun _ -> FP.Pool.acquire p 64) in
  List.iter
    (fun b -> checkb "fallback still serves capacity" true (Bytes.length b >= 64))
    bufs;
  List.iter (FP.Pool.release p) bufs;
  let b' = FP.Pool.acquire p 64 in
  List.iter (fun b -> checkb "never recycles at cap 0" true (not (b == b'))) bufs;
  FP.Pool.release p b';
  let s = FP.Pool.stats p in
  check "every acquire was a fresh alloc" 6 s.FP.Pool.fresh_allocs;
  check "every release was dropped" 6 s.FP.Pool.dropped;
  check "no leaks under exhaustion" 0 (FP.Pool.outstanding p)

let test_pool_class_cap_bound () =
  let p = FP.Pool.create ~class_cap:2 () in
  let bufs = List.init 4 (fun _ -> FP.Pool.acquire p 256) in
  List.iter (FP.Pool.release p) bufs;
  let s = FP.Pool.stats p in
  check "class retains at most cap buffers" 2 s.FP.Pool.dropped;
  check "balanced" 0 s.FP.Pool.outstanding

let test_pool_odd_size_dropped () =
  let p = FP.Pool.create () in
  FP.Pool.release p (Bytes.create 100);
  let s = FP.Pool.stats p in
  check "non-class-sized buffer dropped" 1 s.FP.Pool.dropped;
  let b = FP.Pool.acquire p 100 in
  checkb "odd buffer was not retained" true (Bytes.length b > 100);
  FP.Pool.release p b

(* ------------------------------------------------------------------ *)
(* Scatter-gather sends: sendv must be byte- and checksum-identical to
   rendering the iovec contiguously and running the contiguous send. *)

(* Cut [msg] into iovec segments at pseudo-random boundaries derived from
   [seed], alternating bytes-with-offset and string segments. *)
let iovec_of_string msg seed =
  let n = String.length msg in
  let rec cut pos k acc =
    if pos >= n then List.rev acc
    else
      let len = 1 + ((seed * 7 + (k * 13)) mod 97) in
      let len = min len (n - pos) in
      let seg =
        if (k + seed) land 1 = 0 then
          FP.Wire.Io_string { s = msg; off = pos; len }
        else
          let pad = (seed + k) land 7 in
          let buf = Bytes.make (pad + len + 3) '\xaa' in
          Bytes.blit_string msg pos buf pad len;
          FP.Wire.Io_bytes { buf; off = pad; len }
      in
      cut (pos + len) (k + 1) (seg :: acc)
  in
  cut 0 0 []

let prop_sendv_equals_contiguous =
  QCheck.Test.make ~count:80
    ~name:"sendv_{ilp,separate} = contiguous send_ilp on random splits"
    QCheck.(pair (map (fun n -> n * 8) (int_range 0 80)) small_nat)
    (fun (len, seed) ->
      let cipher = FP.Cipher.Safer_simplified (Safer_simplified.expand_key key) in
      let fp = FP.Wire.create ~cipher ~max_len:(max 8 len) () in
      let msg = random_msg len in
      let iov = iovec_of_string msg seed in
      FP.Wire.iovec_len iov = len
      &&
      let flat = Bytes.of_string msg in
      let ref_wire = Bytes.create len in
      let ref_acc =
        FP.Wire.send_ilp fp ~src:flat ~src_off:0 ~len ~dst:ref_wire ~dst_off:0
      in
      let wi = Bytes.create len and ws = Bytes.create len in
      let ai = FP.Wire.sendv_ilp fp ~iov ~dst:wi ~dst_off:0 in
      let as_ = FP.Wire.sendv_separate fp ~iov ~dst:ws ~dst_off:0 in
      Bytes.equal wi ref_wire && Bytes.equal ws ref_wire
      && Internet.finish ai = Internet.finish ref_acc
      && Internet.finish as_ = Internet.finish ref_acc)

(* ------------------------------------------------------------------ *)
(* Staging buffer: drawn lazily from the pool, returned on release. *)

let test_staging_from_pool () =
  let pool = FP.Pool.create () in
  let cipher = FP.Cipher.Simple in
  let fp = FP.Wire.create ~cipher ~pool ~max_len:256 () in
  check "nothing drawn at create" 0 (FP.Pool.outstanding pool);
  let msg = Bytes.of_string (random_msg 64) in
  let dst = Bytes.create 64 in
  (* The ILP paths never stage. *)
  ignore (FP.Wire.send_ilp fp ~src:msg ~src_off:0 ~len:64 ~dst ~dst_off:0);
  ignore
    (FP.Wire.sendv_ilp fp
       ~iov:[ FP.Wire.Io_bytes { buf = msg; off = 0; len = 64 } ]
       ~dst ~dst_off:0);
  check "ILP sends draw nothing" 0 (FP.Pool.outstanding pool);
  ignore (FP.Wire.send_separate fp ~src:msg ~src_off:0 ~len:64 ~dst ~dst_off:0);
  check "first separate send draws the staging buffer" 1
    (FP.Pool.outstanding pool);
  ignore (FP.Wire.send_separate fp ~src:msg ~src_off:0 ~len:64 ~dst ~dst_off:0);
  check "staging buffer is drawn once" 1 (FP.Pool.outstanding pool);
  FP.Wire.release fp;
  check "release returns it" 0 (FP.Pool.outstanding pool);
  FP.Wire.release fp;
  check "release is idempotent" 0 (FP.Pool.outstanding pool);
  (* A later separate send simply redraws. *)
  let out = Bytes.create 64 in
  let acc = FP.Wire.send_separate fp ~src:msg ~src_off:0 ~len:64 ~dst:out ~dst_off:0 in
  check "redraw works" 1 (FP.Pool.outstanding pool);
  checkb "redrawn staging produces correct wire bytes" true (Bytes.equal out dst);
  let acc' = FP.Wire.send_ilp fp ~src:msg ~src_off:0 ~len:64 ~dst ~dst_off:0 in
  check "checksums still agree after redraw" (Internet.finish acc')
    (Internet.finish acc);
  FP.Wire.release fp;
  check "no leaks at teardown" 0 (FP.Pool.outstanding pool)

(* ------------------------------------------------------------------ *)
(* Memtraffic: the per-direction ledger split *)

module Mt = FP.Memtraffic
module M = Ilp_obs.Metrics

let test_memtraffic_rx_split () =
  let before = Mt.snapshot () in
  Mt.copied Mt.Tcp 100;
  Mt.copied_rx Mt.Tcp 40;
  Mt.copied_rx Mt.Cipher 24;
  Mt.alloc Mt.Rpc 64;
  Mt.alloc_rx Mt.Rpc 32;
  Mt.inplace_rx Mt.Cipher 16;
  Mt.read_rx Mt.Checksum 48;
  let d = Mt.diff (Mt.snapshot ()) before in
  (* The rx variants charge both the direction-blind totals and the rx
     sub-ledger; tx is the remainder. *)
  check "copied total" 164 (Mt.copied_total d);
  check "copied rx" 64 (Mt.copied_rx_total d);
  check "copied tx is the remainder" 100 (Mt.copied_tx_total d);
  check "allocated rx" 32 (Mt.allocated_rx_total d);
  check "allocated tx" 64 (Mt.allocated_tx_total d);
  check "reads include rx charges" (100 + 40 + 24 + 16 + 48) (Mt.reads_total d);
  let r, w, c, a = Mt.of_layer d Mt.Tcp in
  check "tcp reads" 140 r;
  check "tcp writes" 140 w;
  check "tcp copies" 140 c;
  check "tcp allocs" 0 a;
  let r, w, c, a = Mt.of_layer_rx d Mt.Tcp in
  check "tcp rx reads" 40 r;
  check "tcp rx writes" 40 w;
  check "tcp rx copies" 40 c;
  check "tcp rx allocs" 0 a;
  let r, w, c, _ = Mt.of_layer_rx d Mt.Cipher in
  check "cipher rx reads (copy + inplace)" 40 r;
  check "cipher rx writes" 40 w;
  check "cipher rx copies" 24 c;
  let r, w, _, _ = Mt.of_layer_rx d Mt.Checksum in
  check "checksum rx fold is read-only" 48 r;
  check "checksum rx fold writes nothing" 0 w

let test_memtraffic_rx_metrics_mirrored () =
  let before = M.snapshot M.default in
  Mt.copied_rx Mt.Tcp 56;
  Mt.alloc_rx Mt.Rpc 16;
  let after = M.snapshot M.default in
  check "rx copied metric" 56 (M.counter_diff after before "mem.rx.tcp.copied_bytes");
  check "direction-blind metric charged too" 56
    (M.counter_diff after before "mem.tcp.copied_bytes");
  check "rx alloc metric" 16
    (M.counter_diff after before "mem.rx.rpc.allocated_bytes");
  check "rx alloc block counted" 1
    (M.counter_diff after before "mem.rx.rpc.alloc_blocks")

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "fastpath"
    [ ( "words",
        [ qc prop_blit_equals_bytes_blit;
          Alcotest.test_case "bounds" `Quick test_blit_bounds ] );
      ( "cipher",
        [ qc prop_native_matches_reference;
          Alcotest.test_case "SWAR corners" `Quick test_swar_known_bytes ] );
      ( "wire",
        [ Alcotest.test_case "send paths agree" `Quick test_send_paths_agree;
          Alcotest.test_case "recv paths agree" `Quick test_recv_paths_agree;
          Alcotest.test_case "validation" `Quick test_wire_validation;
          qc prop_wire_roundtrip_at_offsets;
          qc prop_sendv_equals_contiguous;
          Alcotest.test_case "staging drawn from pool" `Quick
            test_staging_from_pool ] );
      ( "pool",
        [ Alcotest.test_case "acquire/release reuse" `Quick test_pool_reuse;
          Alcotest.test_case "exhaustion fallback (cap 0)" `Quick
            test_pool_exhaustion_fallback;
          Alcotest.test_case "class cap bounds retention" `Quick
            test_pool_class_cap_bound;
          Alcotest.test_case "odd-sized release dropped" `Quick
            test_pool_odd_size_dropped ] );
      ( "memtraffic",
        [ Alcotest.test_case "per-direction ledger split" `Quick
            test_memtraffic_rx_split;
          Alcotest.test_case "rx metrics mirrored" `Quick
            test_memtraffic_rx_metrics_mirrored ] );
      ( "engine backends",
        [ Alcotest.test_case "byte-identical wire output" `Quick
            test_backends_byte_identical;
          Alcotest.test_case "native rx checksum" `Quick
            test_native_rx_checksum_agrees ] ) ]
