(* The unified observability layer: the metrics registry, the span
   tracer, and — the load-bearing property — that instrumenting the stack
   changed nothing: traced and untraced runs put identical bytes on the
   wire and charge identical simulated cycles, the disabled path
   allocates nothing, and every bespoke ledger in the stack agrees
   exactly with its registry mirror after a soak. *)

open Ilp_memsim
module M = Ilp_obs.Metrics
module Trace = Ilp_obs.Trace
module Engine = Ilp_core.Engine
module Socket = Ilp_tcp.Socket
module Link = Ilp_netsim.Link
module Soak = Ilp_app.Soak
module Rpc_server = Ilp_rpc.Server
module Recorder = Ilp_obs.Recorder
module Ts = Ilp_obs.Timeseries

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_counter_and_gauge () =
  let r = M.create () in
  let c = M.counter r "c" in
  M.inc c 1;
  M.inc c 41;
  check "counter accumulates" 42 (M.counter_value c);
  checkb "find-or-create returns the same counter" true (M.counter r "c" == c);
  let g = M.gauge r "g" in
  M.set g 7;
  M.add_gauge g (-3);
  check "gauge set+add" 4 (M.gauge_value g)

let test_kind_mismatch () =
  let r = M.create () in
  ignore (M.counter r "x");
  (match M.gauge r "x" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match M.histogram r "x" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_histogram_buckets () =
  check "v <= 0 lands in bucket 0" 0 (M.bucket_of 0);
  check "negative lands in bucket 0" 0 (M.bucket_of (-37));
  check "1 lands in bucket 1" 1 (M.bucket_of 1);
  check "2 lands in bucket 2" 2 (M.bucket_of 2);
  check "3 lands in bucket 2" 2 (M.bucket_of 3);
  check "4 lands in bucket 3" 3 (M.bucket_of 4);
  check "255 lands in bucket 8" 8 (M.bucket_of 255);
  check "256 lands in bucket 9" 9 (M.bucket_of 256);
  (* Every bucket's own bounds map back to it. *)
  for i = 1 to M.n_buckets - 1 do
    let lo, hi = M.bucket_bounds i in
    check (Printf.sprintf "lo of bucket %d" i) i (M.bucket_of lo);
    check (Printf.sprintf "hi of bucket %d" i) i (M.bucket_of hi)
  done

let test_histogram_merge_and_diff () =
  let r = M.create () in
  let h = M.histogram r "lat" in
  List.iter (M.observe h) [ 1; 2; 3; 100 ];
  let s1 = M.snapshot r in
  List.iter (M.observe h) [ 7; 7 ];
  let s2 = M.snapshot r in
  (match M.find (M.diff s2 s1) "lat" with
  | Some (M.Histogram d) ->
      check "diff count" 2 d.M.count;
      check "diff sum" 14 d.M.sum;
      check "diff bucket of 7" 2 d.M.buckets.(M.bucket_of 7)
  | _ -> Alcotest.fail "diff lost the histogram");
  match M.find (M.merge s1 s1) "lat" with
  | Some (M.Histogram m) ->
      check "merge doubles count" 8 m.M.count;
      check "merge doubles sum" 212 m.M.sum
  | _ -> Alcotest.fail "merge lost the histogram"

let test_golden_render () =
  let r = M.create () in
  M.inc (M.counter r "a.count") 3;
  M.set (M.gauge r "b.level") 7;
  let h = M.histogram r "c.hist" in
  List.iter (M.observe h) [ 1; 2; 3 ];
  let expected =
    "a.count                                  3\n\
     b.level                                  7 (gauge)\n\
     c.hist                                   count=3 sum=6\n\
    \  [1,1]=1 [2,3]=2\n"
  in
  check_s "stable rendering" expected (M.render (M.snapshot r))

let test_counter_diff_absent () =
  let r = M.create () in
  M.inc (M.counter r "present") 5;
  let s = M.snapshot r in
  check "absent name diffs as 0" 0 (M.counter_diff s s "never-registered");
  check "against empty snapshot" 5 (M.counter_diff s [] "present")

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_ring_wraparound () =
  Trace.enable ~capacity:8 ();
  for i = 1 to 12 do
    Trace.span Trace.Send_marshal ~packet:i ~ts:(float_of_int i) ~dur:1.0
  done;
  Trace.disable ();
  let spans = Trace.spans () in
  check "ring keeps capacity spans" 8 (List.length spans);
  check "recorded counts evictions" 12 (Trace.recorded ());
  check "dropped = overflow" 4 (Trace.dropped ());
  (* Oldest first, the first four evicted, none duplicated. *)
  List.iteri
    (fun i (s : Trace.span_rec) -> check "oldest-first order" (i + 5) s.Trace.packet)
    spans

let test_packet_ids () =
  Trace.disable ();
  check "begin_packet disabled is 0" 0 (Trace.begin_packet ());
  Trace.enable ~capacity:16 ();
  let a = Trace.begin_packet () in
  let b = Trace.begin_packet () in
  checkb "ids increase" true (b = a + 1);
  check "current tracks last begin" b (Trace.current_packet ());
  Trace.disable ()

(* ------------------------------------------------------------------ *)
(* Traced vs untraced: identical bytes, identical cycles *)

let make_sim () = Sim.create (Config.custom ())

let install sim s =
  let addr = Alloc.alloc sim.Sim.alloc ~align:8 (String.length s) in
  Mem.poke_string sim.Sim.mem ~pos:addr s;
  addr

let read_back sim addr len =
  Bytes.to_string (Mem.peek_bytes sim.Sim.mem ~pos:addr ~len)

(* One send + one receive through a fresh engine; returns the wire bytes
   and the total simulated cycles the run charged. *)
let send_recv ~mode ~header_style =
  let sim = make_sim () in
  let cipher = Ilp_cipher.Safer_simplified.charged sim ~key:"engineKY" () in
  let eng = Engine.create sim ~cipher ~mode ~header_style () in
  let payload = String.init 333 (fun i -> Char.chr ((i * 11) land 0xff)) in
  let payload_addr = install sim payload in
  let prepared =
    Engine.prepare_send eng ~prefix:"PFXWORDS" ~payload_addr
      ~payload_len:(String.length payload)
  in
  let wire = Alloc.alloc sim.Sim.alloc ~align:8 prepared.Engine.len in
  ignore (prepared.Engine.fill sim.Sim.mem ~dst:wire);
  (match mode with
  | Engine.Ilp -> (
      match Engine.rx_integrated eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
  | Engine.Separate -> (
      match Engine.rx_separate eng sim.Sim.mem ~src:wire ~dst_off:0 ~len:prepared.Engine.len with
      | Ok () -> ()
      | Error e -> Alcotest.fail e));
  (read_back sim wire prepared.Engine.len, Machine.cycles sim.Sim.machine)

let test_tracing_changes_nothing () =
  List.iter
    (fun (mode, style, name) ->
      Trace.disable ();
      let wire_off, cycles_off = send_recv ~mode ~header_style:style in
      Trace.enable ~capacity:4096 ();
      let wire_on, cycles_on = send_recv ~mode ~header_style:style in
      let n_spans = List.length (Trace.spans ()) in
      Trace.disable ();
      check_s (name ^ ": identical wire bytes") wire_off wire_on;
      Alcotest.(check (float 0.0))
        (name ^ ": identical cycle charges")
        cycles_off cycles_on;
      (* ILP: 4 fused send + 3 fused recv spans.  Separate: 3 send passes
         + 2 recv passes — the TCP checksum stage belongs to the socket,
         which this direct engine drive bypasses. *)
      let min_spans = match mode with Engine.Ilp -> 7 | Engine.Separate -> 5 in
      checkb (name ^ ": spans were recorded") true (n_spans >= min_spans))
    [ (Engine.Ilp, Engine.Leading, "ilp/leading");
      (Engine.Ilp, Engine.Trailer, "ilp/trailer");
      (Engine.Separate, Engine.Leading, "separate/leading");
      (Engine.Separate, Engine.Trailer, "separate/trailer") ]

let test_tracing_changes_nothing_framed () =
  (* The framed receive adds prelude parsing, combined checksums and
     final placement to the traced path; instrumenting it must still
     change nothing — identical payload and wire bytes either way. *)
  let module Ft = Ilp_app.File_transfer in
  let setup =
    { (Ft.default_setup ~machine:(Config.custom ()) ~mode:Engine.Ilp) with
      Ft.framing = true;
      mss = Some 256;
      copies = 2 }
  in
  Trace.disable ();
  let off = Ft.run setup in
  Trace.enable ~capacity:65536 ();
  let on = Ft.run setup in
  let n_spans = List.length (Trace.spans ()) in
  Trace.disable ();
  checkb "both framed runs completed" true (off.Ft.ok && on.Ft.ok);
  check "identical payload bytes" off.Ft.payload_bytes on.Ft.payload_bytes;
  check "identical wire bytes" off.Ft.wire_bytes on.Ft.wire_bytes;
  check "identical replies" off.Ft.n_replies on.Ft.n_replies;
  checkb "framed spans were recorded" true (n_spans > 0)

let test_disabled_path_allocation_free () =
  Trace.disable ();
  let c = M.counter M.default "test_obs.probe" in
  let h = M.histogram M.default "test_obs.probe_hist" in
  let n = 10_000 in
  let one () =
    let t0 = if Trace.enabled () then Trace.now () else 0.0 in
    Trace.span Trace.Send_marshal ~packet:(Trace.current_packet ()) ~ts:t0
      ~dur:0.0;
    Trace.instant Trace.Tcp_retransmit ~packet:0 ~ts:0.0;
    ignore (Trace.begin_packet ());
    Recorder.note Recorder.State ~conn:0 ~arg:0 ~ts:0.0;
    M.inc c 1;
    M.observe h 42
  in
  for _ = 1 to 64 do one () done;
  let w0 = Gc.minor_words () in
  for _ = 1 to n do one () done;
  let per_call = (Gc.minor_words () -. w0) /. float_of_int n in
  Recorder.clear ();
  checkb
    (Printf.sprintf "disabled instrumentation allocates (%.4f words/call)"
       per_call)
    true (per_call <= 0.01)

(* ------------------------------------------------------------------ *)
(* Histogram percentiles *)

let hist_of r name =
  match M.find (M.snapshot r) name with
  | Some (M.Histogram h) -> h
  | _ -> Alcotest.fail ("histogram missing from snapshot: " ^ name)

let test_percentile () =
  let r = M.create () in
  let h = M.histogram r "p" in
  check "empty histogram -> 0" 0 (M.percentile (hist_of r "p") 0.99);
  (* Single observation: every quantile lands inside its bucket. *)
  M.observe h 100;
  let lo, hi = M.bucket_bounds (M.bucket_of 100) in
  List.iter
    (fun q ->
      let v = M.percentile (hist_of r "p") q in
      checkb
        (Printf.sprintf "single-obs p%.0f within bucket" (q *. 100.0))
        true
        (v >= lo && v <= hi))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* Quantiles are monotone in q. *)
  for v = 1 to 1000 do
    M.observe h v
  done;
  let hv = hist_of r "p" in
  let prev = ref 0 in
  List.iter
    (fun q ->
      let v = M.percentile hv q in
      checkb (Printf.sprintf "monotone at q=%.2f" q) true (v >= !prev);
      prev := v)
    [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ];
  (* Bucket 62 holds everything up to max_int; interpolation must not
     overflow into a negative result. *)
  let big = M.histogram r "p_big" in
  M.observe big max_int;
  M.observe big (max_int - 1);
  let lo62, _ = M.bucket_bounds (M.n_buckets - 1) in
  let v = M.percentile (hist_of r "p_big") 0.99 in
  checkb "bucket-62 percentile stays in range" true (v >= lo62 && v <= max_int);
  (* Out-of-range quantiles are rejected. *)
  (match M.percentile hv 1.5 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match M.percentile hv (-0.1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_recorder_ring () =
  let saved = Recorder.capacity () in
  Fun.protect
    ~finally:(fun () -> Recorder.resize saved)
    (fun () ->
      Recorder.resize 8;
      check "resize sets capacity" 8 (Recorder.capacity ());
      check "resize clears" 0 (Recorder.count ());
      for i = 1 to 5 do
        Recorder.note Recorder.Retransmit ~conn:1 ~arg:i ~ts:(float_of_int i)
      done;
      Recorder.note Recorder.Abort ~conn:2 ~arg:0 ~ts:6.0;
      check "all retained below capacity" 6 (Recorder.count ());
      check "noted counts everything" 6 (Recorder.noted ());
      check "nothing dropped yet" 0 (Recorder.dropped ());
      check "filter by conn" 5 (List.length (Recorder.entries ~conn:1 ()));
      (match Recorder.last ~conn:1 2 with
      | [ a; b ] ->
          check "last returns the tail" 4 a.Recorder.arg;
          check "last is oldest-first" 5 b.Recorder.arg
      | l -> Alcotest.fail (Printf.sprintf "last returned %d" (List.length l)));
      (* Overflow the ring: oldest entries fall off, counters keep up. *)
      for i = 7 to 15 do
        Recorder.note Recorder.Keepalive ~conn:3 ~arg:i ~ts:(float_of_int i)
      done;
      check "retained capped at capacity" 8 (Recorder.count ());
      check "noted keeps counting" 15 (Recorder.noted ());
      check "dropped = noted - retained" 7 (Recorder.dropped ());
      (match Recorder.entries () with
      | oldest :: _ ->
          checkb "oldest survivor is post-wrap" true (oldest.Recorder.ts >= 8.0)
      | [] -> Alcotest.fail "ring empty after wrap");
      (* Dump: header plus one line per retained entry; the socket
         module's arg printer decodes state indices. *)
      (match Recorder.dump () with
      | header :: lines ->
          check_s "dump header" "flight recorder: 8 retained / 15 noted (7 dropped)"
            header;
          check "dump body lines" 8 (List.length lines)
      | [] -> Alcotest.fail "empty dump");
      Recorder.note Recorder.State ~conn:9 ~arg:0 ~ts:1.0;
      let line =
        match Recorder.last ~conn:9 1 with
        | [ e ] -> Recorder.entry_line e
        | _ -> Alcotest.fail "missing state entry"
      in
      checkb "arg printer decodes the state" true
        (String.length line > 0
        &&
        let has_sub sub =
          let n = String.length line and m = String.length sub in
          let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
          go 0
        in
        has_sub "CLOSED");
      (* Disabled recorder notes nothing. *)
      Recorder.disable ();
      let before = Recorder.noted () in
      Recorder.note Recorder.Rst_tx ~conn:1 ~arg:0 ~ts:0.0;
      Recorder.enable ();
      check "disabled note is dropped" before (Recorder.noted ()))

(* ------------------------------------------------------------------ *)
(* Time series *)

let test_timeseries_ring () =
  let r = M.create () in
  let c = M.counter r "ts.c" in
  let g = M.gauge r "ts.g" in
  let ts = Ts.create ~capacity:4 ~interval_us:10.0 r in
  for i = 1 to 6 do
    M.inc c i;
    M.set g (10 * i);
    Ts.sample ts ~now:(float_of_int i *. 10.0)
  done;
  check "taken counts every sample" 6 (Ts.taken ts);
  check "retained capped at capacity" 4 (Ts.count ts);
  (match Ts.samples ts with
  | (ts0, _) :: _ -> checkb "oldest retained is post-wrap" true (ts0 = 30.0)
  | [] -> Alcotest.fail "no samples");
  (* Telescoping conservation survives the ring wrap: the first
     retained delta is measured against the base snapshot. *)
  check "delta_sum telescopes to final - base" 21 (Ts.delta_sum ts "ts.c");
  let rates = Ts.rates ts "ts.c" in
  check "one rate per retained sample" 4 (Array.length rates);
  checkb "dashboard renders" true (List.length (Ts.dashboard ts) > 1)

let test_timeseries_slo () =
  let r = M.create () in
  let h = M.histogram r "lat" in
  let slo = { Ts.slo_hist = "lat"; slo_percentile = 0.99; slo_limit = 100 } in
  let ts = Ts.create ~capacity:8 ~slos:[ slo ] ~interval_us:10.0 r in
  M.observe h 10;
  Ts.sample ts ~now:10.0;
  check "within limit: no breach" 0 (Ts.total_breaches ts);
  M.observe h 1_000_000;
  Ts.sample ts ~now:20.0;
  checkb "over limit: breach counted" true (Ts.total_breaches ts > 0);
  (* The derived gauge mirrors the registry percentile. *)
  match M.find (snd (List.nth (Ts.samples ts) 1)) "lat.p99" with
  | Some (M.Gauge v) ->
      check "p99 gauge tracks the histogram"
        (M.percentile (hist_of r "lat") 0.99)
        v
  | _ -> Alcotest.fail "lat.p99 gauge missing from sample"

(* The tentpole end-to-end gate: sampling an overload soak through the
   Simclock hook loses nothing — base + sampled deltas = final registry
   value for every counter, and the healthy-run SLOs hold. *)
let test_sampler_conservation_soak () =
  let r = Ilp_bench.Telem.run ~config:Ilp_bench.Telem.quick_config () in
  (match Ilp_bench.Telem.conservation_failures r with
  | [] -> ()
  | names ->
      Alcotest.fail ("sampler lost counts for: " ^ String.concat ", " names));
  checkb "at least two samples" true (Ts.taken r.Ilp_bench.Telem.ts >= 2);
  match Ilp_bench.Telem.check r with
  | Ok () -> ()
  | Error fs -> Alcotest.fail (String.concat "; " fs)

(* ------------------------------------------------------------------ *)
(* Conservation: bespoke ledgers = registry mirrors *)

let d later earlier name = M.counter_diff later earlier name

let test_conservation_chaos_soak () =
  let cfg =
    { Soak.default_config with Soak.iterations = 8; file_len = 256; max_reply = 128 }
  in
  let before = M.snapshot M.default in
  let o = Soak.run cfg in
  let after = M.snapshot M.default in
  checkb "soak invariants hold" true (Soak.invariants_hold o);
  let link = o.Soak.link in
  check "link.sent" link.Link.sent (d after before "link.sent");
  check "link.delivered" link.Link.delivered (d after before "link.delivered");
  check "link.dropped" link.Link.dropped (d after before "link.dropped");
  check "link.duplicated" link.Link.duplicated (d after before "link.duplicated");
  check "link.corrupted" link.Link.corrupted (d after before "link.corrupted");
  check "link.truncated" link.Link.truncated (d after before "link.truncated");
  check "link.padded" link.Link.padded (d after before "link.padded");
  check "link.burst_dropped" link.Link.burst_dropped
    (d after before "link.burst_dropped");
  check "link.delay_spikes" link.Link.delay_spikes
    (d after before "link.delay_spikes");
  List.iter
    (fun (reason, n) ->
      let name = "tcp.drop." ^ Socket.drop_reason_to_string reason in
      check name n (d after before name))
    o.Soak.drops;
  check "rpc.replies_abandoned" o.Soak.replies_abandoned
    (d after before "rpc.replies_abandoned")

let test_conservation_overload_soak () =
  let cfg = Soak.default_overload_config in
  let before = M.snapshot M.default in
  let o = Soak.run_overload cfg in
  let after = M.snapshot M.default in
  checkb "overload invariants hold" true (Soak.overload_invariants_hold o);
  List.iter
    (fun (reason, n) ->
      let name = "rpc.shed." ^ Rpc_server.shed_reason_to_string reason in
      check name n (d after before name))
    o.Soak.sheds;
  check "rpc.client.busy_replies" o.Soak.busy_replies
    (d after before "rpc.client.busy_replies");
  check "rpc.client.retries" o.Soak.client_retries
    (d after before "rpc.client.retries");
  check "tcp.persist_probes" o.Soak.persist_probes
    (d after before "tcp.persist_probes");
  check "rpc.replies_abandoned" o.Soak.replies_abandoned
    (d after before "rpc.replies_abandoned");
  (* The lying-receiver persona: forged acks land in link.tampered, and
     the server's rejections are the socket SACK-invalid counter plus
     any typed Misbehaving_peer abort. *)
  check "link.tampered" o.Soak.forged_acks (d after before "link.tampered");
  check "forged rejections = sack_invalid + misbehaving aborts"
    o.Soak.forged_rejections
    (d after before "tcp.sack_invalid"
    + d after before "tcp.abort.misbehaving_peer")

(* ------------------------------------------------------------------ *)
(* Tracerun: the ilpbench trace driver *)

let test_tracerun_quick_complete () =
  let r = Ilp_bench.Tracerun.run ~quick:true () in
  checkb "at least one complete send and recv chain" true
    (Ilp_bench.Tracerun.complete r);
  check "nothing evicted at this size" 0 r.Ilp_bench.Tracerun.dropped;
  checkb "chrome json shape" true
    (String.length r.Ilp_bench.Tracerun.json > 2
    && String.sub r.Ilp_bench.Tracerun.json 0 15 = "{\"traceEvents\":")

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
          Alcotest.test_case "log2 bucket boundaries" `Quick
            test_histogram_buckets;
          Alcotest.test_case "histogram merge and diff" `Quick
            test_histogram_merge_and_diff;
          Alcotest.test_case "golden render" `Quick test_golden_render;
          Alcotest.test_case "counter_diff of absent names" `Quick
            test_counter_diff_absent ] );
      ( "trace",
        [ Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
          Alcotest.test_case "packet ids" `Quick test_packet_ids ] );
      ( "overhead",
        [ Alcotest.test_case "traced = untraced (bytes and cycles)" `Quick
            test_tracing_changes_nothing;
          Alcotest.test_case "traced = untraced (framed receive)" `Quick
            test_tracing_changes_nothing_framed;
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_disabled_path_allocation_free ] );
      ( "percentile",
        [ Alcotest.test_case "log2 percentile" `Quick test_percentile ] );
      ( "recorder",
        [ Alcotest.test_case "ring, filters, dump" `Quick test_recorder_ring ] );
      ( "timeseries",
        [ Alcotest.test_case "ring wrap and delta conservation" `Quick
            test_timeseries_ring;
          Alcotest.test_case "SLO gauges and breaches" `Quick
            test_timeseries_slo;
          Alcotest.test_case "sampler conservation over overload soak" `Slow
            test_sampler_conservation_soak ] );
      ( "conservation",
        [ Alcotest.test_case "chaos soak ledgers = metrics" `Slow
            test_conservation_chaos_soak;
          Alcotest.test_case "overload ledgers = metrics" `Slow
            test_conservation_overload_soak ] );
      ( "tracerun",
        [ Alcotest.test_case "quick trace has complete chains" `Slow
            test_tracerun_quick_complete ] ) ]
